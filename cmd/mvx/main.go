// Command mvx executes an MVX binary image under the memory-checked
// VM, optionally feeding it an input file.
//
// Usage:
//
//	mvx [-in input.bin] [-max-steps N] [-trace] program.mvx
//
// The exit status mirrors the program: its exit code on clean
// termination, or 3 with a trap report when memcheck fires.
package main

import (
	"flag"
	"fmt"
	"os"

	"codephage/internal/ir"
	"codephage/internal/taint"
	"codephage/internal/vm"
)

func main() {
	inPath := flag.String("in", "", "input file fed to the in_* builtins")
	maxSteps := flag.Int64("max-steps", 0, "instruction budget (0 = default)")
	trace := flag.Bool("trace", false, "run under the taint tracker and report tainted branches/allocations")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvx [-in input.bin] [-max-steps N] [-trace] program.mvx")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.LoadModule(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var input []byte
	if *inPath != "" {
		input, err = os.ReadFile(*inPath)
		if err != nil {
			fatal(err)
		}
	}

	v := vm.New(mod, input)
	v.MaxSteps = *maxSteps
	var tr *taint.Tracker
	if *trace {
		tr = taint.NewTracker(mod, taint.Options{})
		v.Tracer = tr
	}
	r := v.Run()
	for _, o := range r.Output {
		fmt.Println(o)
	}
	if tr != nil {
		fmt.Fprintf(os.Stderr, "tainted branches: %d\n", len(tr.Branches()))
		for _, b := range tr.Branches() {
			fmt.Fprintf(os.Stderr, "  fn%d+%d line %d taken=%v cond=%s\n",
				b.Fn, b.PC, b.Line, b.Taken, b.Cond)
		}
		fmt.Fprintf(os.Stderr, "tainted allocations: %d\n", len(tr.Allocs()))
		for _, a := range tr.Allocs() {
			fmt.Fprintf(os.Stderr, "  fn%d+%d line %d size=%d expr=%s\n",
				a.Fn, a.PC, a.Line, a.Size, a.SizeExpr)
		}
	}
	fmt.Fprintf(os.Stderr, "steps: %d\n", r.Steps)
	if r.Trap != nil {
		fmt.Fprintf(os.Stderr, "TRAP: %v\n", r.Trap)
		os.Exit(3)
	}
	fmt.Fprintf(os.Stderr, "exit: %d\n", r.ExitCode)
	os.Exit(int(r.ExitCode) & 0x7F)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mvx:", err)
	os.Exit(1)
}
