// Command phaged is the Code Phage transfer daemon: a long-running
// HTTP/JSON service that runs donor→recipient check transfers through
// a sharded pool of warm pipeline engines, deduplicates identical
// requests onto one engine run, and serves deterministic Row-style
// reports.
//
// Usage:
//
//	phaged [-addr 127.0.0.1:8347] [-shards N] [-workers N]
//	       [-queue N] [-corpus corpus.json] [-drain 30s]
//	       [-memo-path memo.snap] [-memo-interval 5m|off]
//	       [-patch-dir patches/] [-log-format text|json]
//	       [-debug-addr 127.0.0.1:8348]
//	       [-cluster http://HOST:PORT -peers URL,URL,...]
//	       [-steal-interval 2s]
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// queued and running jobs drain (bounded by -drain), then the process
// exits. In cluster mode the drain first hands the node's ring slice
// and queued jobs off to its peers.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"codephage/internal/cluster"
	"codephage/internal/server"
)

// buildLogger maps -log-format to a structured logger on stderr:
// "" disables request-scoped records (operational lines still go
// through the plain logger), "text" and "json" select the handler.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("log-format: %q is neither text nor json", format)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	workers := flag.Int("workers", 0, "transfer workers per shard (0 = default)")
	queue := flag.Int("queue", 0, "queued jobs per shard (0 = default)")
	corpusPath := flag.String("corpus", "", "persist the donor corpus index here (default: in-memory)")
	memoPath := flag.String("memo-path", "", "persist the solver's warm state (verdict memo + CNF core) here (default: none)")
	patchDir := flag.String("patch-dir", "", "persist verifiable patch artifacts here, content-addressed (default: in-memory)")
	memoInterval := flag.String("memo-interval", "", "periodic warm-state snapshot cadence with -memo-path (0 or empty = 5m default, off = disabled)")
	logFormat := flag.String("log-format", "", "request-scoped structured log format: text or json (default: off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second listener (default: off)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
	clusterSelf := flag.String("cluster", "", "cluster mode: this node's advertised base URL, e.g. http://10.0.0.1:8347")
	peers := flag.String("peers", "", "comma-separated peer base URLs (cluster mode)")
	stealInterval := flag.Duration("steal-interval", 0, "poll cadence for stealing queued work from busier peers (0 = off; cluster mode)")
	flag.Parse()

	interval, err := server.ParseMemoInterval(*memoInterval)
	if err != nil {
		log.Printf("phaged: %v", err)
		os.Exit(2)
	}
	logger, err := buildLogger(*logFormat)
	if err != nil {
		log.Printf("phaged: %v", err)
		os.Exit(2)
	}
	cfg := server.Config{
		Shards:           *shards,
		WorkersPerShard:  *workers,
		QueueDepth:       *queue,
		CorpusPath:       *corpusPath,
		MemoPath:         *memoPath,
		MemoSaveInterval: interval,
		PatchDir:         *patchDir,
		Log:              logger,
		DebugAddr:        *debugAddr,
	}
	if *clusterSelf != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		node := cluster.New(cluster.Config{
			Self:          strings.TrimRight(*clusterSelf, "/"),
			Peers:         peerList,
			Server:        cfg,
			StealInterval: *stealInterval,
			Logf:          log.Printf,
		})
		if err := cluster.ListenAndServe(*addr, node, *drain, log.Printf); err != nil {
			log.Printf("phaged: %v", err)
			os.Exit(1)
		}
		return
	}
	if *peers != "" || *stealInterval != 0 {
		log.Printf("phaged: -peers/-steal-interval require -cluster")
		os.Exit(2)
	}
	if err := server.ListenAndServe(*addr, cfg, *drain, log.Printf); err != nil {
		log.Printf("phaged: %v", err)
		os.Exit(1)
	}
}
