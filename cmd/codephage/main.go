// Command codephage runs the full horizontal code transfer pipeline
// for one Figure 8 error, against one donor or every donor the
// catalogue lists for it — either locally, or against a running phaged
// daemon (-remote), or by becoming one (-serve).
//
// Usage:
//
//	codephage -recipient dillo -target png.c@203 [-donor feh]
//	          [-mode exit|return0] [-o patched.mc] [-v] [-workers N]
//	          [-remote http://127.0.0.1:8347]
//	codephage -serve 127.0.0.1:8347
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/server"
)

func main() {
	recipient := flag.String("recipient", "", "recipient application name")
	target := flag.String("target", "", "error identifier (e.g. png.c@203)")
	donor := flag.String("donor", "", "donor application (default: every catalogued donor)")
	mode := flag.String("mode", "exit", "patch reaction: exit or return0")
	out := flag.String("o", "", "write the final patched source here")
	verbose := flag.Bool("v", false, "print excised and translated checks")
	report := flag.Bool("report", false, "print the full transfer report and patch diff")
	workers := flag.Int("workers", 0, "candidate-validation fan-out (0 = GOMAXPROCS)")
	remote := flag.String("remote", "", "phaged base URL: run the transfer on a daemon instead of in-process")
	serve := flag.String("serve", "", "run as a phaged daemon on this address instead of transferring")
	flag.Parse()

	if *serve != "" {
		runDaemon(*serve)
		return
	}
	if *recipient == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "usage: codephage -recipient <app> -target <id> [-donor <app>] [-mode exit|return0] [-o patched.mc] [-remote URL]")
		fmt.Fprintln(os.Stderr, "       codephage -serve <addr>")
		fmt.Fprintln(os.Stderr, "\navailable targets:")
		for _, t := range apps.Targets() {
			fmt.Fprintf(os.Stderr, "  -recipient %-12s -target %-24s donors: %v\n", t.Recipient, t.ID, t.Donors)
		}
		os.Exit(2)
	}
	tgt, err := apps.TargetByID(*recipient, *target)
	if err != nil {
		fatal(err)
	}
	opts := phage.Options{Workers: *workers}
	switch *mode {
	case "exit":
	case "return0":
		opts.ExitMode = phage.ReturnZero
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	donors := tgt.Donors
	if *donor != "" {
		donors = []string{*donor}
	}
	failed := false
	for _, dn := range donors {
		var ok bool
		if *remote != "" {
			ok = runRemote(*remote, tgt, dn, *mode, *workers, *verbose, *report, *out, dn == donors[len(donors)-1])
		} else {
			ok = runLocal(tgt, dn, opts, *verbose, *report, *out, dn == donors[len(donors)-1])
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// patchView holds the per-patch fields both execution paths print.
type patchView struct {
	fn, patch, excised, translated string
	line                           int32
}

// printRowBody prints the transfer body local and remote mode share:
// the Figure-8 summary columns, each patch, and the overflow verdict.
func printRowBody(row *figure8.Row, patches []patchView, verbose bool) {
	fmt.Printf("  relevant branches: %d, flipped: %s, insertion points: %s, check size: %s\n",
		row.Relevant, row.FlippedString(), row.InsertString(), row.SizeString())
	for i, p := range patches {
		fmt.Printf("  patch %d (before %s line %d):\n    %s\n", i+1, p.fn, p.line, p.patch)
		if verbose {
			fmt.Printf("    excised:    %s\n", p.excised)
			fmt.Printf("    translated: %s\n", p.translated)
		}
	}
	if row.OverflowOK != nil {
		fmt.Printf("  overflow-freedom proven by SMT: %v\n", *row.OverflowOK)
	}
}

// printReportAndDiff prints the full transfer report followed by the
// insertion diff against the recipient's original source.
func printReportAndDiff(recipient, reportText, patchedSource string) {
	rec, _ := apps.ByName(recipient)
	fmt.Println()
	fmt.Print(reportText)
	fmt.Println("patch diff:")
	fmt.Print(phage.Diff(rec.Source, patchedSource))
}

// runLocal executes the transfer in-process through the default engine.
func runLocal(tgt *apps.Target, dn string, opts phage.Options, verbose, report bool, out string, last bool) bool {
	row := figure8.RunRow(tgt, dn, opts)
	if row.Err != nil {
		fmt.Printf("%s/%s <- %s: FAILED: %v\n", tgt.Recipient, tgt.ID, dn, row.Err)
		return false
	}
	fmt.Printf("%s/%s <- %s: %d patch(es) in %s\n",
		tgt.Recipient, tgt.ID, dn, row.UsedChecks, row.GenTime.Round(1e6))
	var patches []patchView
	for _, pr := range row.Result.Rounds {
		patches = append(patches, patchView{
			fn: pr.InsertFn, line: pr.InsertLine, patch: pr.PatchText,
			excised: pr.ExcisedCheck, translated: pr.TranslatedCheck,
		})
	}
	printRowBody(row, patches, verbose)
	if report {
		printReportAndDiff(tgt.Recipient, row.Result.Report(tgt.Recipient, dn), row.Result.FinalSource)
	}
	return writeOut(out, last, row.Result.FinalSource)
}

// runRemote sends the transfer to a phaged daemon and prints the same
// Row-style report local mode does (column formatting reused via
// figure8.Row, whose fields the service report mirrors).
func runRemote(base string, tgt *apps.Target, dn, mode string, workers int, verbose, report bool, out string, last bool) bool {
	cli := &server.Client{BaseURL: base}
	env, err := cli.Transfer(&server.Request{
		Recipient: tgt.Recipient,
		Target:    tgt.ID,
		Donor:     dn,
		Mode:      mode,
		Workers:   workers,
	})
	if err != nil {
		fmt.Printf("%s/%s <- %s: FAILED: %v\n", tgt.Recipient, tgt.ID, dn, err)
		return false
	}
	if env.Status != server.StatusDone {
		fmt.Printf("%s/%s <- %s: FAILED: %s\n", tgt.Recipient, tgt.ID, dn, env.Error)
		return false
	}
	rep := env.Report
	fmt.Printf("%s/%s <- %s: %d patch(es) on %s (job %s, queue %dms, run %dms)\n",
		tgt.Recipient, tgt.ID, dn, rep.UsedChecks, base, env.ID, env.QueueMs, env.RunMs)
	row := &figure8.Row{
		Relevant:   rep.RelevantBranches,
		Flipped:    rep.FlippedBranches,
		Insert:     rep.InsertionPoints,
		CheckSizes: rep.CheckSizes,
		OverflowOK: rep.OverflowFreeProven,
	}
	var patches []patchView
	for _, pr := range rep.Rounds {
		patches = append(patches, patchView{
			fn: pr.InsertFn, line: pr.InsertLine, patch: pr.Patch,
			excised: pr.ExcisedCheck, translated: pr.TranslatedCheck,
		})
	}
	printRowBody(row, patches, verbose)
	if report {
		printReportAndDiff(tgt.Recipient, rep.Text(), rep.PatchedSource)
	}
	return writeOut(out, last, rep.PatchedSource)
}

func writeOut(out string, last bool, src string) bool {
	if out == "" || !last {
		return true
	}
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote patched source to %s\n", out)
	return true
}

// runDaemon serves the phaged API in-process until SIGINT/SIGTERM,
// through the same serve/drain loop cmd/phaged uses.
func runDaemon(addr string) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "codephage: "+format+"\n", args...)
	}
	if err := server.ListenAndServe(addr, server.Config{}, 30*time.Second, logf); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codephage:", err)
	os.Exit(1)
}
