// Command codephage runs the full horizontal code transfer pipeline
// for one Figure 8 error, against one donor or every donor the
// catalogue lists for it.
//
// Usage:
//
//	codephage -recipient dillo -target png.c@203 [-donor feh]
//	          [-mode exit|return0] [-o patched.mc] [-v] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/phage"
)

func main() {
	recipient := flag.String("recipient", "", "recipient application name")
	target := flag.String("target", "", "error identifier (e.g. png.c@203)")
	donor := flag.String("donor", "", "donor application (default: every catalogued donor)")
	mode := flag.String("mode", "exit", "patch reaction: exit or return0")
	out := flag.String("o", "", "write the final patched source here")
	verbose := flag.Bool("v", false, "print excised and translated checks")
	report := flag.Bool("report", false, "print the full transfer report and patch diff")
	workers := flag.Int("workers", 0, "candidate-validation fan-out (0 = GOMAXPROCS)")
	flag.Parse()

	if *recipient == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "usage: codephage -recipient <app> -target <id> [-donor <app>] [-mode exit|return0] [-o patched.mc]")
		fmt.Fprintln(os.Stderr, "\navailable targets:")
		for _, t := range apps.Targets() {
			fmt.Fprintf(os.Stderr, "  -recipient %-12s -target %-24s donors: %v\n", t.Recipient, t.ID, t.Donors)
		}
		os.Exit(2)
	}
	tgt, err := apps.TargetByID(*recipient, *target)
	if err != nil {
		fatal(err)
	}
	opts := phage.Options{Workers: *workers}
	switch *mode {
	case "exit":
	case "return0":
		opts.ExitMode = phage.ReturnZero
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	donors := tgt.Donors
	if *donor != "" {
		donors = []string{*donor}
	}
	failed := false
	for _, dn := range donors {
		row := figure8.RunRow(tgt, dn, opts)
		if row.Err != nil {
			fmt.Printf("%s/%s <- %s: FAILED: %v\n", tgt.Recipient, tgt.ID, dn, row.Err)
			failed = true
			continue
		}
		fmt.Printf("%s/%s <- %s: %d patch(es) in %s\n",
			tgt.Recipient, tgt.ID, dn, row.UsedChecks, row.GenTime.Round(1e6))
		fmt.Printf("  relevant branches: %d, flipped: %s, insertion points: %s, check size: %s\n",
			row.Relevant, row.FlippedString(), row.InsertString(), row.SizeString())
		for i, pr := range row.Result.Rounds {
			fmt.Printf("  patch %d (before %s line %d):\n    %s\n",
				i+1, pr.InsertFn, pr.InsertLine, pr.PatchText)
			if *verbose {
				fmt.Printf("    excised:    %s\n", pr.ExcisedCheck)
				fmt.Printf("    translated: %s\n", pr.TranslatedCheck)
			}
		}
		if row.OverflowOK != nil {
			fmt.Printf("  overflow-freedom proven by SMT: %v\n", *row.OverflowOK)
		}
		if *report {
			rec, _ := apps.ByName(tgt.Recipient)
			fmt.Println()
			fmt.Print(row.Result.Report(tgt.Recipient, dn))
			fmt.Println("patch diff:")
			fmt.Print(phage.Diff(rec.Source, row.Result.FinalSource))
		}
		if *out != "" && dn == donors[len(donors)-1] {
			if err := os.WriteFile(*out, []byte(row.Result.FinalSource), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote patched source to %s\n", *out)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codephage:", err)
	os.Exit(1)
}
