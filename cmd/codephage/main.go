// Command codephage runs the full horizontal code transfer pipeline
// for one Figure 8 error, against one donor, every donor the
// catalogue lists for it, or a donor the corpus selects automatically
// (-donor auto) — either locally, or against a running phaged daemon
// (-remote), or by becoming one (-serve). The corpus subcommand
// manages the donor knowledge-base index.
//
// Usage:
//
//	codephage -recipient dillo -target png.c@203 [-donor feh|auto]
//	          [-index corpus.json] [-mode exit|return0] [-o patched.mc]
//	          [-v] [-workers N] [-remote http://127.0.0.1:8347]
//	codephage -list-donors
//	codephage -serve 127.0.0.1:8347
//	codephage corpus build [-index corpus.json]
//	codephage corpus show [-index corpus.json] [-format mjpg] [-v]
//	codephage corpus fingerprints [-index corpus.json] [-format mjpg] [-v]
//	codephage patch build|show|apply|rollback (verifiable patch artifacts)
//	codephage trace show [-remote URL -job ID | -f trace.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"codephage/internal/apps"
	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
	"codephage/internal/server"
	"codephage/internal/smt"
	"codephage/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "corpus" {
		runCorpus(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		runScenario(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "patch" {
		runPatch(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	recipient := flag.String("recipient", "", "recipient application name")
	target := flag.String("target", "", "error identifier (e.g. png.c@203)")
	donor := flag.String("donor", "", "donor application, or auto for corpus selection (default: every catalogued donor)")
	index := flag.String("index", "", "corpus index path for -donor auto (default: in-memory)")
	mode := flag.String("mode", "exit", "patch reaction: exit or return0")
	out := flag.String("o", "", "write the final patched source here")
	verbose := flag.Bool("v", false, "print excised and translated checks")
	report := flag.Bool("report", false, "print the full transfer report and patch diff")
	workers := flag.Int("workers", 0, "candidate-validation fan-out (0 = GOMAXPROCS)")
	remote := flag.String("remote", "", "phaged base URL: run the transfer on a daemon instead of in-process")
	trace := flag.Bool("trace", false, "print each transfer's span tree with self/total times")
	memo := flag.String("memo", "", "solver warm-state snapshot for local batch runs: loaded before the transfers, saved after")
	serve := flag.String("serve", "", "run as a phaged daemon on this address instead of transferring")
	listDonors := flag.Bool("list-donors", false, "print the application registry and exit")
	flag.Parse()

	if *serve != "" {
		runDaemon(*serve)
		return
	}
	if *listDonors {
		printRegistry()
		return
	}
	if *recipient == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "usage: codephage -recipient <app> -target <id> [-donor <app>|auto] [-mode exit|return0] [-o patched.mc] [-remote URL]")
		fmt.Fprintln(os.Stderr, "       codephage -list-donors")
		fmt.Fprintln(os.Stderr, "       codephage -serve <addr>")
		fmt.Fprintln(os.Stderr, "       codephage corpus build|show|fingerprints [-index corpus.json]")
		fmt.Fprintln(os.Stderr, "\navailable targets:")
		for _, t := range apps.Targets() {
			fmt.Fprintf(os.Stderr, "  -recipient %-12s -target %-24s donors: %v\n", t.Recipient, t.ID, t.Donors)
		}
		os.Exit(2)
	}
	tgt, err := apps.TargetByID(*recipient, *target)
	if err != nil {
		fatal(err)
	}
	opts := phage.Options{Workers: *workers, Trace: *trace}
	switch *mode {
	case "exit":
	case "return0":
		opts.ExitMode = phage.ReturnZero
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	donors := tgt.Donors
	if *donor != "" {
		donors = []string{*donor}
	}
	if *donor == pipeline.AutoDonor && *remote == "" {
		// Local auto-donor transfers resolve through the default
		// engine, which runLocal's figure8.RunRow uses.
		pipeline.DefaultEngine().Selector = corpus.NewSelector(*index)
	}
	if *memo != "" && *remote == "" {
		// Warm the local engine's shared constraint service from the
		// snapshot (a cache: load failures mean a cold start).
		if err := smt.Default().LoadMemo(*memo); err != nil {
			fmt.Fprintf(os.Stderr, "codephage: memo load: %v (starting cold)\n", err)
		}
	}
	failed := false
	for _, dn := range donors {
		var ok bool
		if *remote != "" {
			ok = runRemote(*remote, tgt, dn, *mode, *workers, *verbose, *report, *trace, *out, dn == donors[len(donors)-1])
		} else {
			ok = runLocal(tgt, dn, opts, *verbose, *report, *out, dn == donors[len(donors)-1])
		}
		if !ok {
			failed = true
		}
	}
	if *memo != "" && *remote == "" {
		if err := smt.Default().SaveMemo(*memo); err != nil {
			fmt.Fprintf(os.Stderr, "codephage: memo save: %v\n", err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// patchView holds the per-patch fields both execution paths print.
type patchView struct {
	fn, patch, excised, translated string
	line                           int32
}

// printRowBody prints the transfer body local and remote mode share:
// the Figure-8 summary columns, each patch, and the overflow verdict.
func printRowBody(row *figure8.Row, patches []patchView, verbose bool) {
	fmt.Printf("  relevant branches: %d, flipped: %s, insertion points: %s, check size: %s\n",
		row.Relevant, row.FlippedString(), row.InsertString(), row.SizeString())
	for i, p := range patches {
		fmt.Printf("  patch %d (before %s line %d):\n    %s\n", i+1, p.fn, p.line, p.patch)
		if verbose {
			fmt.Printf("    excised:    %s\n", p.excised)
			fmt.Printf("    translated: %s\n", p.translated)
		}
	}
	if row.OverflowOK != nil {
		fmt.Printf("  overflow-freedom proven by SMT: %v\n", *row.OverflowOK)
	}
}

// printReportAndDiff prints the full transfer report followed by the
// insertion diff against the recipient's original source.
func printReportAndDiff(recipient, reportText, patchedSource string) {
	rec, _ := apps.ByName(recipient)
	fmt.Println()
	fmt.Print(reportText)
	fmt.Println("patch diff:")
	fmt.Print(phage.Diff(rec.Source, patchedSource))
}

// runLocal executes the transfer in-process through the default engine.
func runLocal(tgt *apps.Target, dn string, opts phage.Options, verbose, report bool, out string, last bool) bool {
	row := figure8.RunRow(tgt, dn, opts)
	if row.Err != nil {
		fmt.Printf("%s/%s <- %s: FAILED: %v\n", tgt.Recipient, tgt.ID, dn, row.Err)
		return false
	}
	donorLabel := row.Donor
	if dn == pipeline.AutoDonor {
		donorLabel += " (auto-selected)"
	}
	fmt.Printf("%s/%s <- %s: %d patch(es) in %s\n",
		tgt.Recipient, tgt.ID, donorLabel, row.UsedChecks, row.GenTime.Round(1e6))
	var patches []patchView
	for _, pr := range row.Result.Rounds {
		patches = append(patches, patchView{
			fn: pr.InsertFn, line: pr.InsertLine, patch: pr.PatchText,
			excised: pr.ExcisedCheck, translated: pr.TranslatedCheck,
		})
	}
	printRowBody(row, patches, verbose)
	if row.Result.Trace != nil {
		fmt.Println("  trace:")
		row.Result.Trace.Render(os.Stdout)
	}
	if report {
		printReportAndDiff(tgt.Recipient, row.Result.Report(tgt.Recipient, dn), row.Result.FinalSource)
	}
	return writeOut(out, last, row.Result.FinalSource)
}

// runRemote sends the transfer to a phaged daemon and prints the same
// Row-style report local mode does (column formatting reused via
// figure8.Row, whose fields the service report mirrors).
func runRemote(base string, tgt *apps.Target, dn, mode string, workers int, verbose, report, trace bool, out string, last bool) bool {
	cli := &server.Client{BaseURL: base}
	env, err := cli.Transfer(context.Background(), &server.Request{
		Recipient: tgt.Recipient,
		Target:    tgt.ID,
		Donor:     dn,
		Mode:      mode,
		Workers:   workers,
	})
	if err != nil {
		fmt.Printf("%s/%s <- %s: FAILED: %v\n", tgt.Recipient, tgt.ID, dn, err)
		return false
	}
	if env.Node != "" {
		// A cluster node forwarded the request to the ring owner; the
		// job (and its trace) live there, so follow-up lookups must too.
		cli = cli.For(env.Node)
	}
	if env.Status != server.StatusDone {
		fmt.Printf("%s/%s <- %s: FAILED: %s\n", tgt.Recipient, tgt.ID, dn, env.Error)
		return false
	}
	rep := env.Report
	donorLabel := dn
	if rep.Donor != "" {
		donorLabel = rep.Donor
	}
	if rep.AutoSelected {
		donorLabel += " (auto-selected)"
	}
	fmt.Printf("%s/%s <- %s: %d patch(es) on %s (job %s, queue %dms, run %dms)\n",
		tgt.Recipient, tgt.ID, donorLabel, rep.UsedChecks, base, env.ID, env.QueueMs, env.RunMs)
	row := &figure8.Row{
		Relevant:   rep.RelevantBranches,
		Flipped:    rep.FlippedBranches,
		Insert:     rep.InsertionPoints,
		CheckSizes: rep.CheckSizes,
		OverflowOK: rep.OverflowFreeProven,
	}
	var patches []patchView
	for _, pr := range rep.Rounds {
		patches = append(patches, patchView{
			fn: pr.InsertFn, line: pr.InsertLine, patch: pr.Patch,
			excised: pr.ExcisedCheck, translated: pr.TranslatedCheck,
		})
	}
	printRowBody(row, patches, verbose)
	if trace {
		// The daemon traces every job; the span tree lives on its own
		// endpoint beside the report.
		if sp, err := cli.Trace(context.Background(), env.ID); err != nil {
			fmt.Fprintf(os.Stderr, "codephage: fetching trace: %v\n", err)
		} else {
			fmt.Println("  trace:")
			sp.Render(os.Stdout)
		}
	}
	if report {
		printReportAndDiff(tgt.Recipient, rep.Text(), rep.PatchedSource)
	}
	return writeOut(out, last, rep.PatchedSource)
}

func writeOut(out string, last bool, src string) bool {
	if out == "" || !last {
		return true
	}
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote patched source to %s\n", out)
	return true
}

// runDaemon serves the phaged API in-process until SIGINT/SIGTERM,
// through the same serve/drain loop cmd/phaged uses.
func runDaemon(addr string) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "codephage: "+format+"\n", args...)
	}
	if err := server.ListenAndServe(addr, server.Config{}, 30*time.Second, logf); err != nil {
		fatal(err)
	}
}

// printRegistry lists every catalogued application: what the corpus
// can index (donors) and what it can heal (recipients).
func printRegistry() {
	fmt.Printf("%-12s %-28s %-10s %s\n", "Name", "Paper App", "Role", "Formats")
	for _, a := range apps.Donors() {
		fmt.Printf("%-12s %-28s %-10s %v\n", a.Name, a.Paper, "donor", a.Formats)
	}
	for _, a := range apps.Recipients() {
		fmt.Printf("%-12s %-28s %-10s %v\n", a.Name, a.Paper, "recipient", a.Formats)
	}
}

// runCorpus is the corpus subcommand: build (re)establishes the
// on-disk index, show prints the indexed signatures, fingerprints
// builds/refreshes the winnowing pre-filter sidecar and summarizes it.
func runCorpus(args []string) {
	if len(args) == 0 || (args[0] != "build" && args[0] != "show" && args[0] != "fingerprints") {
		fmt.Fprintln(os.Stderr, "usage: codephage corpus build [-index corpus.json]")
		fmt.Fprintln(os.Stderr, "       codephage corpus show [-index corpus.json] [-format <name>] [-v]")
		fmt.Fprintln(os.Stderr, "       codephage corpus fingerprints [-index corpus.json] [-format <name>] [-v]")
		os.Exit(2)
	}
	verb := args[0]
	fs := flag.NewFlagSet("corpus "+verb, flag.ExitOnError)
	index := fs.String("index", "corpus.json", "index file path")
	format := fs.String("format", "", "only show signatures for this format")
	verbose := fs.Bool("v", false, "also print each canonical check condition")
	fs.Parse(args[1:])

	switch verb {
	case "build":
		ix, rebuilt, err := corpus.LoadOrBuild(*index, corpus.RegistryDonors())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("corpus index %s: %d signatures (%d rebuilt, %d reused)\n",
			*index, len(ix.Signatures), rebuilt, len(ix.Signatures)-rebuilt)
	case "show":
		var ix *corpus.Index
		if _, err := os.Stat(*index); err == nil {
			loaded, lerr := corpus.Load(*index)
			if lerr != nil {
				fatal(lerr)
			}
			ix = loaded
			fmt.Printf("corpus index %s (on disk):\n", *index)
		} else {
			built, berr := corpus.Build(corpus.RegistryDonors())
			if berr != nil {
				fatal(berr)
			}
			ix = built
			fmt.Printf("corpus index (in-memory; run `codephage corpus build` to persist):\n")
		}
		fmt.Printf("%-12s %-8s %-8s %-8s %-34s %s\n",
			"Donor", "Format", "Checks", "Flipped", "Content Key", "Fields")
		for _, sig := range ix.Signatures {
			if *format != "" && sig.Format != *format {
				continue
			}
			fmt.Printf("%-12s %-8s %-8d %-8d %-34s %v\n",
				sig.Donor, sig.Format, len(sig.Checks), sig.FlippedSites, sig.ContentKey, sig.Fields)
			if *verbose {
				for _, c := range sig.Checks {
					fmt.Printf("             check: %s\n", c.Cond)
				}
			}
		}
	case "fingerprints":
		ix, _, err := corpus.LoadOrBuild(*index, corpus.RegistryDonors())
		if err != nil {
			fatal(err)
		}
		side := corpus.FingerprintSidecar(*index)
		fp, rebuilt, err := corpus.LoadOrBuildFingerprints(side, ix)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fingerprint sidecar %s: k=%d window=%d, %d entries (%d rewinnowed, %d reused)\n",
			side, fp.K, fp.Window, len(fp.Entries), rebuilt, len(fp.Entries)-rebuilt)
		for _, e := range fp.Entries {
			if *format != "" && e.Format != *format {
				continue
			}
			fmt.Printf("%-12s %-8s %-34s %d prints\n", e.Donor, e.Format, e.SigKey, len(e.Prints))
			if *verbose {
				for _, p := range e.Prints {
					fmt.Printf("             %016x\n", p)
				}
			}
		}
	}
}

// runTrace is the trace subcommand: show renders a span tree — from a
// running daemon's job or a JSON file — with per-span self/total times.
func runTrace(args []string) {
	if len(args) == 0 || args[0] != "show" {
		fmt.Fprintln(os.Stderr, "usage: codephage trace show -remote URL -job job-000001")
		fmt.Fprintln(os.Stderr, "       codephage trace show -f trace.json")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("trace show", flag.ExitOnError)
	remote := fs.String("remote", "", "phaged base URL to fetch the trace from")
	job := fs.String("job", "", "job ID on the daemon")
	file := fs.String("f", "", "read the span tree from this JSON file instead")
	fs.Parse(args[1:])

	var sp *telemetry.Span
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		sp, err = telemetry.Unmarshal(data)
		if err != nil {
			fatal(fmt.Errorf("decoding %s: %w", *file, err))
		}
	case *remote != "" && *job != "":
		cli := &server.Client{BaseURL: *remote}
		var err error
		sp, err = cli.Trace(context.Background(), *job)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("trace show needs either -f trace.json or both -remote and -job"))
	}
	sp.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codephage:", err)
	os.Exit(1)
}
