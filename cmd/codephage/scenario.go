package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"codephage/internal/scenario"
)

// runScenario is the scenario subcommand: run executes a generated
// conformance suite (optionally over HTTP and with the mutant-patch
// oracle meta-check), show prints one generated pair for debugging a
// failing seed.
//
//	codephage scenario run [-seed N] [-count N] [-only pairseed]
//	                       [-mutant] [-http] [-workers N]
//	                       [-json report.json] [-v]
//	codephage scenario show -seed N
func runScenario(args []string) {
	if len(args) == 0 || (args[0] != "run" && args[0] != "show") {
		fmt.Fprintln(os.Stderr, "usage: codephage scenario run [-seed N] [-count N] [-only pairseed] [-mutant] [-http] [-workers N] [-json report.json] [-v]")
		fmt.Fprintln(os.Stderr, "       codephage scenario show -seed N")
		os.Exit(2)
	}
	verb := args[0]
	fs := flag.NewFlagSet("scenario "+verb, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "suite seed (pair i uses seed+i)")
	count := fs.Int("count", 100, "number of generated pairs")
	only := fs.Int64("only", 0, "replay a single pair (by pair seed) inside the full suite's donor pool")
	mutant := fs.Bool("mutant", false, "also run the mutant-patch oracle meta-check")
	useHTTP := fs.Bool("http", false, "drive the suite through phaged over HTTP (soak mode)")
	workers := fs.Int("workers", 0, "suite concurrency (0 = default)")
	jsonOut := fs.String("json", "", "write the JSON suite report here")
	verbose := fs.Bool("v", false, "print per-pair progress")
	fs.Parse(args[1:])

	if verb == "show" {
		showScenario(*seed)
		return
	}
	opts := scenario.Options{
		Seed:    *seed,
		Count:   *count,
		Mutant:  *mutant,
		HTTP:    *useHTTP,
		Workers: *workers,
		Only:    *only,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := scenario.Run(opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		data, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			fatal(jerr)
		}
		if werr := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); werr != nil {
			fatal(werr)
		}
	}
	ran := 0
	for _, o := range rep.Outcomes {
		if !o.Skipped {
			ran++
		}
	}
	if ran < rep.Count {
		fmt.Printf("scenario suite seed %d: replayed %d of %d pairs, %d failed, %dms\n",
			rep.Seed, ran, rep.Count, rep.Failed, rep.Wall)
	} else {
		fmt.Printf("scenario suite seed %d: %d pairs, %d failed, %dms\n",
			rep.Seed, rep.Count, rep.Failed, rep.Wall)
	}
	for _, f := range rep.Failures() {
		fmt.Printf("FAIL %s (%s/%s): %s\n  reproduce: %s\n", f.Name, f.Format, f.Kind, f.Err, f.Repro)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// showScenario prints one generated pair: the ground truth and the
// three program sources, for debugging a failing seed by hand.
func showScenario(seed int64) {
	p, err := scenario.GeneratePair(seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %s: format %s, %s\n", p.Name(), p.Format, p.Kind)
	fmt.Printf("donated check: %s\n", p.GuardDesc)
	fmt.Printf("seed input:  %s\n", hex.EncodeToString(p.SeedInput))
	fmt.Printf("error input: %s\n", hex.EncodeToString(p.ErrorInput))
	for i, in := range p.Benign[1:] {
		fmt.Printf("benign %d:    %s\n", i+1, hex.EncodeToString(in))
	}
	fmt.Printf("\n---- recipient %s ----\n%s", p.Recipient.Name, p.Recipient.Source)
	fmt.Printf("\n---- donor %s ----\n%s", p.Donor.Name, p.Donor.Source)
	fmt.Printf("\n---- naive donor %s ----\n%s", p.Naive.Name, p.Naive.Source)
}
