package main

import (
	"flag"
	"fmt"
	"os"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/fsatomic"
	"codephage/internal/patch"
	"codephage/internal/phage"
)

// runPatch is the patch subcommand: build runs a transfer and writes
// its verifiable artifact (plus, optionally, both module images),
// show prints an artifact's provenance and delta summary, and
// apply/rollback transform a module image file in place — apply
// re-runs the artifact's embedded conformance oracle before
// committing, rollback restores the byte-identical original.
func runPatch(args []string) {
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: codephage patch build -recipient <app> -target <id> -donor <app> -o <artifact> [-orig <file>] [-patched <file>] [-mode exit|return0]")
		fmt.Fprintln(os.Stderr, "       codephage patch show -artifact <file>")
		fmt.Fprintln(os.Stderr, "       codephage patch apply -artifact <file> -image <module image>")
		fmt.Fprintln(os.Stderr, "       codephage patch rollback -artifact <file> -image <module image>")
		os.Exit(2)
	}
	if len(args) == 0 {
		usage()
	}
	verb := args[0]
	fs := flag.NewFlagSet("patch "+verb, flag.ExitOnError)
	switch verb {
	case "build":
		recipient := fs.String("recipient", "", "recipient application name")
		target := fs.String("target", "", "error identifier")
		donor := fs.String("donor", "", "donor application name")
		mode := fs.String("mode", "exit", "patch reaction: exit or return0")
		out := fs.String("o", "", "write the encoded artifact here")
		origOut := fs.String("orig", "", "also write the original module image here")
		patchedOut := fs.String("patched", "", "also write the pipeline's patched module image here")
		fs.Parse(args[1:])
		if *recipient == "" || *target == "" || *donor == "" || *out == "" {
			usage()
		}
		opts := phage.Options{}
		switch *mode {
		case "exit":
		case "return0":
			opts.ExitMode = phage.ReturnZero
		default:
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		tgt, err := apps.TargetByID(*recipient, *target)
		if err != nil {
			fatal(err)
		}
		row := figure8.RunRow(tgt, *donor, opts)
		if row.Err != nil {
			fatal(fmt.Errorf("transfer: %w", row.Err))
		}
		a := row.Result.Patch
		if a == nil {
			fatal(fmt.Errorf("transfer produced no patch artifact"))
		}
		if err := patch.WriteFile(*out, a); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote artifact %s (key %s)\n", *out, a.Key())
		if *origOut != "" || *patchedOut != "" {
			writeImages(row, *origOut, *patchedOut)
		}

	case "show":
		artifact := fs.String("artifact", "", "encoded artifact file")
		fs.Parse(args[1:])
		if *artifact == "" {
			usage()
		}
		a, err := patch.ReadFile(*artifact)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("key:         %s\n", a.Key())
		fmt.Printf("recipient:   %s (target %s)\n", a.Recipient, a.Target)
		fmt.Printf("donor:       %s\n", a.Donor)
		fmt.Printf("format/mode: %s / %s\n", a.Format, a.Mode)
		fmt.Printf("fingerprint: %s\n", a.Fingerprint)
		fmt.Printf("images:      %d -> %d bytes, %d hunk(s)\n", a.OriginalLen, a.PatchedLen, len(a.Hunks))
		fmt.Printf("oracle:      %d error input(s), %d benign input(s)\n", len(a.ErrorInputs), len(a.Benign))
		for i, c := range a.Checks {
			fmt.Printf("check %d (before %s:%d):\n  excised:    %s\n  translated: %s\n",
				i+1, c.InsertFn, c.InsertLine, c.Excised, c.Translated)
		}

	case "apply", "rollback":
		artifact := fs.String("artifact", "", "encoded artifact file")
		image := fs.String("image", "", "module image file to transform in place")
		fs.Parse(args[1:])
		if *artifact == "" || *image == "" {
			usage()
		}
		a, err := patch.ReadFile(*artifact)
		if err != nil {
			fatal(err)
		}
		if verb == "apply" {
			if err := patch.Apply(a, *image); err != nil {
				fatal(err)
			}
			fmt.Printf("applied %s to %s (verified, %d -> %d bytes)\n",
				a.Key()[:16], *image, a.OriginalLen, a.PatchedLen)
		} else {
			if err := patch.Rollback(a, *image); err != nil {
				fatal(err)
			}
			fmt.Printf("rolled back %s on %s (%d -> %d bytes)\n",
				a.Key()[:16], *image, a.PatchedLen, a.OriginalLen)
		}

	default:
		usage()
	}
}

// writeImages writes the transfer's original and patched module
// images, compiled from the same sources the pipeline used.
func writeImages(row *figure8.Row, origOut, patchedOut string) {
	if patchedOut != "" {
		data, err := row.Result.FinalModule.Bytes()
		if err != nil {
			fatal(err)
		}
		if err := fsatomic.WriteFile(patchedOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote patched module image %s (%d bytes)\n", patchedOut, len(data))
	}
	if origOut != "" {
		rec, err := apps.ByName(row.Recipient)
		if err != nil {
			fatal(err)
		}
		mod, err := apps.Build(rec)
		if err != nil {
			fatal(err)
		}
		data, err := mod.Bytes()
		if err != nil {
			fatal(err)
		}
		if err := fsatomic.WriteFile(origOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote original module image %s (%d bytes)\n", origOut, len(data))
	}
}
