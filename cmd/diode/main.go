// Command diode runs the integer-overflow discovery pipeline against a
// benchmark recipient: it taints allocation-site size expressions,
// searches for field values that wrap them, and writes a confirmed
// error-triggering input.
//
// Usage:
//
//	diode -app cwebp [-fn read_jpeg] [-o error.bin]
package main

import (
	"flag"
	"fmt"
	"os"

	"codephage/internal/apps"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
)

func main() {
	appName := flag.String("app", "", "benchmark application name (see apps registry)")
	fn := flag.String("fn", "", "restrict to allocation sites in this function")
	out := flag.String("o", "", "write the error-triggering input here")
	flag.Parse()
	if *appName == "" {
		fmt.Fprintln(os.Stderr, "usage: diode -app <name> [-fn <function>] [-o error.bin]")
		os.Exit(2)
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	mod, err := apps.Build(app)
	if err != nil {
		fatal(err)
	}
	seed := apps.SeedFor(app.Formats[0])
	d, _ := hachoir.ByName(app.Formats[0])
	dis, err := d.Dissect(seed)
	if err != nil {
		fatal(err)
	}
	finding, err := diode.Discover(mod, seed, dis, diode.Options{VulnFn: *fn})
	if err != nil {
		fatal(err)
	}
	if finding == nil {
		fmt.Println("no integer overflow found")
		return
	}
	fmt.Println(finding)
	fmt.Printf("size expression: %s\n", finding.SizeExpr)
	fmt.Printf("field assignment: %v\n", finding.Fields)
	fmt.Printf("confirming trap: %v\n", finding.Trap)
	if *out != "" {
		if err := os.WriteFile(*out, finding.Input, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote error-triggering input to %s (%d bytes)\n", *out, len(finding.Input))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diode:", err)
	os.Exit(1)
}
