// Command minicc compiles MiniC source to an MVX binary image.
//
// Usage:
//
//	minicc [-o out.mvx] [-strip] [-S] file.mc
//
// -strip removes all symbolic information (names, types, variables,
// line table), producing the kind of opaque binary Code Phage accepts
// as a donor. -S prints the disassembly instead of writing an image.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"codephage/internal/compile"
)

func main() {
	out := flag.String("o", "", "output image path (default: input with .mvx)")
	strip := flag.Bool("strip", false, "strip symbolic information")
	disasm := flag.Bool("S", false, "print disassembly instead of writing an image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-o out.mvx] [-strip] [-S] file.mc")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	mod, err := compile.CompileSource(name, string(src))
	if err != nil {
		fatal(err)
	}
	if *strip {
		mod.Strip()
	}
	if *disasm {
		for _, f := range mod.Funcs {
			fmt.Print(f.Disasm())
		}
		return
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, filepath.Ext(path)) + ".mvx"
	}
	f, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := mod.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d functions, stripped=%v)\n", dst, len(mod.Funcs), mod.Stripped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
