// Command figure8 reproduces the paper's Figure 8: it runs the full
// Code Phage pipeline for all 18 donor/recipient pairs and prints the
// results table.
//
// Usage:
//
//	figure8 [-patches]
package main

import (
	"flag"
	"fmt"
	"os"

	"codephage/internal/figure8"
	"codephage/internal/phage"
)

func main() {
	patches := flag.Bool("patches", false, "also print each generated patch")
	flag.Parse()

	rows := figure8.AllRows(phage.Options{})
	fmt.Print(figure8.FormatTable(rows))
	failed := 0
	for _, r := range rows {
		if r.Err != nil {
			failed++
			continue
		}
		if *patches {
			for i, p := range r.Patches {
				fmt.Printf("# %s/%s <- %s patch %d: %s\n", r.Recipient, r.Target, r.Donor, i+1, p)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figure8: %d row(s) failed\n", failed)
		os.Exit(1)
	}
}
