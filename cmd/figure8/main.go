// Command figure8 reproduces the paper's Figure 8: it runs the full
// Code Phage pipeline for all 18 donor/recipient pairs as one batched
// workload over the staged transfer engine and prints the results
// table. With -autocheck it instead cross-checks the corpus's
// automatic donor selection against the paper's donor table.
//
// Usage:
//
//	figure8 [-patches] [-workers N] [-stats] [-memo memo.snap] [-notimes]
//	        [-trace]
//	figure8 -autocheck [-index corpus.json]
//
// The results table goes to stdout; with -notimes the wall-time column
// is blanked and the table is byte-identical across runs (and across
// solver configurations: portfolio racing on or off, warm memo loaded
// or cold). -stats diagnostics go to stderr so comparing two runs'
// stdout stays meaningful.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
	"codephage/internal/telemetry"
)

func main() {
	patches := flag.Bool("patches", false, "also print each generated patch")
	workers := flag.Int("workers", 0, "concurrent transfers (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print engine statistics to stderr (wall time, caches, solver)")
	autocheck := flag.Bool("autocheck", false, "cross-check automatic donor selection against the paper's donor table")
	index := flag.String("index", "", "corpus index path for -autocheck (default: in-memory)")
	memo := flag.String("memo", "", "solver warm-state snapshot: loaded before the batch, saved after")
	notimes := flag.Bool("notimes", false, "blank the wall-time column so the stdout table is byte-identical across runs")
	trace := flag.Bool("trace", false, "print a per-stage latency summary of the batch to stderr")
	flag.Parse()

	if *autocheck {
		runAutocheck(*index)
		return
	}

	if *memo != "" {
		if err := smt.Default().LoadMemo(*memo); err != nil {
			fmt.Fprintf(os.Stderr, "figure8: memo load: %v (starting cold)\n", err)
		}
	}
	batch := &pipeline.Batch{Engine: pipeline.NewEngine(), Workers: *workers}
	rows, bstats := figure8.BatchRows(phage.Options{Trace: *trace}, batch)
	if *notimes {
		fmt.Print(figure8.FormatTableNoTimes(rows))
	} else {
		fmt.Print(figure8.FormatTable(rows))
	}
	failed := 0
	for _, r := range rows {
		if r.Err != nil {
			failed++
			continue
		}
		if *patches {
			for i, p := range r.Patches {
				fmt.Printf("# %s/%s <- %s patch %d: %s\n", r.Recipient, r.Target, r.Donor, i+1, p)
			}
		}
	}
	if *memo != "" {
		if err := smt.Default().SaveMemo(*memo); err != nil {
			fmt.Fprintf(os.Stderr, "figure8: memo save: %v\n", err)
		}
	}
	if *trace {
		// The summary goes to stderr like -stats: stdout stays the
		// deterministic results table.
		var traces []*telemetry.Span
		for _, r := range rows {
			if r.Err == nil && r.Result != nil && r.Result.Trace != nil {
				traces = append(traces, r.Result.Trace)
			}
		}
		fmt.Fprintf(os.Stderr, "\nper-stage latency over %d traced transfer(s):\n", len(traces))
		fmt.Fprint(os.Stderr, telemetry.FormatStageTable(telemetry.SummarizeStages(traces, telemetry.Stages)))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\nbatch: %d transfers, %d failed, wall %s\n",
			bstats.Tasks, bstats.Failed, bstats.WallTime.Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "compile cache: %d hits, %d misses, %d evictions\n",
			bstats.Compile.Hits, bstats.Compile.Misses, bstats.Compile.Evictions)
		s := bstats.Solver
		fmt.Fprintf(os.Stderr, "solver: %d queries (%d cache hits, %d prefiltered, %d refuted, %d syntactic, %d SAT calls, %s SAT time)\n",
			s.Queries, s.CacheHits, s.Prefiltered, s.Refuted, s.Syntactic, s.SATCalls, s.SATTime.Round(time.Millisecond))
		svc := smt.Default().Stats()
		fmt.Fprintf(os.Stderr, "service: %d SAT calls, %d portfolio races (%d won, %d lost), %d clauses imported, %d memo entries loaded, %d persistence hits\n",
			svc.SATCalls, svc.PortfolioRaces, svc.PortfolioWins, svc.PortfolioLosses,
			svc.ImportedClauses, svc.MemoLoaded, svc.MemoLoadedHits)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figure8: %d row(s) failed\n", failed)
		os.Exit(1)
	}
}

// runAutocheck prints the auto-selection cross-check table and fails
// if any target's rank-1 donor disagrees with the paper's table.
func runAutocheck(indexPath string) {
	rows := figure8.AutoSelectRows(corpus.NewSelector(indexPath))
	fmt.Print(figure8.FormatAutoSelectTable(rows))
	disagree := 0
	for _, r := range rows {
		if r.Err != nil || !r.Agrees {
			disagree++
		}
	}
	if disagree > 0 {
		fmt.Fprintf(os.Stderr, "figure8: auto-selection disagrees with the paper on %d target(s)\n", disagree)
		os.Exit(1)
	}
	fmt.Printf("auto-selection agrees with the paper's donor table on all %d targets\n", len(rows))
}
