module codephage

go 1.24
