// Package codephage's root benchmark harness regenerates the paper's
// evaluation: one benchmark per Figure 8 donor/recipient row (the full
// pipeline: error discovery input in hand, then donor analysis, check
// excision, insertion point identification, translation, validation,
// and DIODE residual re-scans), plus the ablation benchmarks for the
// design choices DESIGN.md calls out (D2: solver cache and
// disjointness prefilter; D3: the Figure 5 rewrite rules).
//
// Run with: go test -bench=. -benchmem
package codephage

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/hachoir"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
	"codephage/internal/server"
	"codephage/internal/smt"
	"codephage/internal/taint"
	"codephage/internal/telemetry"
	"codephage/internal/vm"
)

// skipInShort keeps the benchmarks out of short-mode test jobs (the
// CI test step runs with -short; benchmarks belong to the bench step).
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("benchmark skipped in short mode")
	}
}

// benchRow runs one Figure 8 row repeatedly. The error-triggering
// input is discovered once outside the timed loop (the paper's
// generation times likewise exclude DIODE's initial discovery).
func benchRow(b *testing.B, recipient, target, donor string) {
	tgt, err := apps.TargetByID(recipient, target)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, donor, phage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.UsedChecks() < 1 {
			b.Fatal("no checks transferred")
		}
	}
}

// BenchmarkFigure8 has one sub-benchmark per table row.
func BenchmarkFigure8(b *testing.B) {
	skipInShort(b)
	for _, tgt := range apps.Targets() {
		for _, donor := range tgt.Donors {
			name := fmt.Sprintf("%s_%s_from_%s",
				tgt.Recipient, sanitize(tgt.ID), donor)
			tgt, donor := tgt, donor
			b.Run(name, func(b *testing.B) {
				benchRow(b, tgt.Recipient, tgt.ID, donor)
			})
		}
	}
}

func sanitize(s string) string {
	r := strings.NewReplacer(".", "_", "@", "_", "/", "_")
	return r.Replace(s)
}

// TestFigure8Table prints the regenerated Figure 8 (also recorded in
// EXPERIMENTS.md). It lives here so `go test` at the module root
// reproduces the headline table.
func TestFigure8Table(t *testing.T) {
	rows := figure8.AllRows(phage.Options{})
	t.Logf("\n%s", figure8.FormatTable(rows))
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s/%s <- %s failed: %v", r.Recipient, r.Target, r.Donor, r.Err)
		}
	}
}

// ---- Ablation D2: the solver query cache and the input-byte
// disjointness prefilter (paper §3.3: together an order of magnitude
// in translation time). Measured on the translation-heavy CWebP <-
// viewnior row, which exercises the division-based check.

func benchAblationSolver(b *testing.B, disableMemo, disablePrefilter bool) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "viewnior", phage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh service per iteration keeps the ablation honest: the
		// measured run never rides a memo warmed by a previous one.
		tr.Opts.Service = smt.NewService(smt.Config{
			DisableMemo:      disableMemo,
			DisablePrefilter: disablePrefilter,
		})
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	skipInShort(b)
	b.Run("SolverCacheAndPrefilter_on", func(b *testing.B) {
		benchAblationSolver(b, false, false)
	})
	b.Run("SolverCache_off", func(b *testing.B) {
		benchAblationSolver(b, true, false)
	})
	b.Run("SolverPrefilter_off", func(b *testing.B) {
		benchAblationSolver(b, false, true)
	})
	b.Run("SolverBoth_off", func(b *testing.B) {
		benchAblationSolver(b, true, true)
	})

	// Ablation D3: the Figure 5 bit-manipulation rewrite rules. With
	// them disabled the recorded donor conditions keep their raw
	// shift/mask/or structure, which the equivalence queries then have
	// to chew through.
	b.Run("RewriteRules_on", func(b *testing.B) {
		benchRewriteAblation(b, false)
	})
	b.Run("RewriteRules_off", func(b *testing.B) {
		benchRewriteAblation(b, true)
	})
}

func benchRewriteAblation(b *testing.B, noSimplify bool) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "feh", phage.Options{NoSimplify: noSimplify})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRewriteRulesShrinkExcisedChecks quantifies ablation D3 directly:
// the Figure 5 rules must shrink the excised FEH check (the paper's
// Section 2 expression collapses from dozens of operations to four).
func TestRewriteRulesShrinkExcisedChecks(t *testing.T) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		t.Fatal(err)
	}
	errIn, err := figure8.ErrorInputFor(tgt)
	if err != nil {
		t.Fatal(err)
	}
	donorApp, _ := apps.ByName("feh")
	donor, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		t.Fatal(err)
	}
	dis := hDissect(t, "mjpg", tgt.Seed)
	relevant := dis.DiffFields(tgt.Seed, errIn)
	// Record once with and once without the Figure 5 rules.
	sizes := map[bool]int{}
	for _, noSimplify := range []bool{false, true} {
		disc, err := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, noSimplify)
		if err != nil {
			t.Fatal(err)
		}
		if len(disc.Checks) == 0 {
			t.Fatal("no checks")
		}
		sizes[noSimplify] = disc.Checks[0].Cond.OpCount()
	}
	if sizes[false] >= sizes[true] {
		t.Errorf("Figure 5 rules do not shrink the check: with=%d without=%d",
			sizes[false], sizes[true])
	}
	t.Logf("excised check size: %d ops with Figure 5 rules, %d without",
		sizes[false], sizes[true])
}

// hDissect dissects an input with the named format dissector.
func hDissect(tb testing.TB, format string, input []byte) *hachoir.Dissection {
	tb.Helper()
	d, ok := hachoir.ByName(format)
	if !ok {
		tb.Fatalf("no dissector %q", format)
	}
	dis, err := d.Dissect(input)
	if err != nil {
		tb.Fatal(err)
	}
	return dis
}

// TestSolverCacheEffect quantifies ablation D2's cache: repeated
// equivalence queries during a transfer must hit the shared memo.
func TestSolverCacheEffect(t *testing.T) {
	tgt, err := apps.TargetByID("dillo", "png.c@203")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "feh", phage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := smt.NewService(smt.Config{})
	tr.Opts.Service = svc
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := res.SolverStats
	t.Logf("solver stats: %+v, service: %+v", st, svc.Stats())
	if st.Queries == 0 {
		t.Fatal("no solver queries issued")
	}
	if st.CacheHits == 0 && st.Prefiltered == 0 {
		t.Error("neither the memo nor the prefilter fired during a full transfer")
	}
}

// TestFirstFlippedBranchSuffices verifies the paper's observation that
// the transferred check always comes from the first flipped branch.
func TestFirstFlippedBranchSuffices(t *testing.T) {
	rows := figure8.AllRows(phage.Options{})
	for _, r := range rows {
		if r.Err != nil {
			continue
		}
		if !r.FirstCheck {
			t.Errorf("%s/%s <- %s used a non-first flipped branch", r.Recipient, r.Target, r.Donor)
		}
	}
}

// BenchmarkPipelineStages isolates the pipeline's phases on the
// Section 2 workload.
func BenchmarkPipelineStages(b *testing.B) {
	skipInShort(b)
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	errIn, err := figure8.ErrorInputFor(tgt)
	if err != nil {
		b.Fatal(err)
	}
	recipient, _ := apps.ByName("cwebp")
	recipientMod, err := apps.Build(recipient)
	if err != nil {
		b.Fatal(err)
	}
	donorApp, _ := apps.ByName("feh")
	donor, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		b.Fatal(err)
	}
	dis := hDissect(b, "mjpg", tgt.Seed)
	relevant := dis.DiffFields(tgt.Seed, errIn)

	b.Run("DonorCheckDiscovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, false)
			if err != nil || len(d.Checks) == 0 {
				b.Fatalf("%v / %d checks", err, len(d.Checks))
			}
		}
	})
	disc, _ := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, false)
	fields := disc.Checks[0].Cond.Fields()
	b.Run("InsertionPointAnalysis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := phage.AnalyzeInsertionPoints(recipientMod, tgt.Seed, dis, fields, relevant)
			if err != nil || len(a.Points) == 0 {
				b.Fatalf("%v / %d points", err, len(a.Points))
			}
		}
	})
	analysis, _ := phage.AnalyzeInsertionPoints(recipientMod, tgt.Seed, dis, fields, relevant)
	_, _, stable := analysis.Candidates()
	b.Run("RewriteTranslation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := smt.NewService(smt.Config{}).Session()
			tr := phage.Rewrite(disc.Checks[0].Cond, stable[len(stable)-1].Names, solver)
			if tr == nil {
				b.Fatal("rewrite failed")
			}
		}
	})
}

// BenchmarkTaintTracking measures the execution monitor's overhead.
func BenchmarkTaintTracking(b *testing.B) {
	skipInShort(b)
	app, _ := apps.ByName("cwebp")
	mod, err := apps.Build(app)
	if err != nil {
		b.Fatal(err)
	}
	seed := apps.SeedMJPG()
	b.Run("Plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := vm.New(mod, seed).Run(); !r.OK() {
				b.Fatal(r.Trap)
			}
		}
	})
	b.Run("Tainted", func(b *testing.B) {
		dis := hDissect(b, "mjpg", seed)
		for i := 0; i < b.N; i++ {
			v := vm.New(mod, seed)
			v.Tracer = taint.NewTracker(mod, taint.Options{Labels: dis})
			if r := v.Run(); !r.OK() {
				b.Fatal(r.Trap)
			}
		}
	})
}

// BenchmarkSimplify measures the Figure 5 rule engine on the paper's
// endianness-conversion pattern.
func BenchmarkSimplify(b *testing.B) {
	skipInShort(b)
	f := bitvec.Field("/start_frame/content/height", 16, 4)
	lo := bitvec.And(f, bitvec.Const(16, 0x00FF))
	hi := bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8))
	read := bitvec.Or(bitvec.Shl(hi, bitvec.Const(16, 8)), lo)
	check := bitvec.Ule(bitvec.Mul(bitvec.ZExt(64, read), bitvec.ZExt(64, read)), bitvec.Const(64, 536870911))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitvec.Simplify(check).OpCount() > 4 {
			b.Fatal("did not collapse")
		}
	}
}

// ---- The staged engine: batched, cached, parallel Figure 8.
//
// BenchmarkFigure8Batch runs the complete 18-row Figure 8 workload two
// ways. "Sequential" models the pre-engine path: every row gets a
// fresh engine with a cold compile cache, one validation worker and no
// shared baselines or proofs. "Engine" is the production shape: one
// shared engine, content-keyed compile cache, shared baseline and
// proof caches, transfers batched across workers. Error-input
// discovery happens once, outside both timed regions, exactly as the
// paper excludes DIODE's initial discovery from generation times.
func BenchmarkFigure8Batch(b *testing.B) {
	skipInShort(b)
	type task struct {
		id string
		tr *phage.Transfer
	}
	var tasks []task
	for _, tgt := range apps.Targets() {
		for _, donor := range tgt.Donors {
			tr, err := figure8.NewTransfer(tgt, donor, phage.Options{})
			if err != nil {
				b.Fatal(err)
			}
			tasks = append(tasks, task{id: tgt.Recipient + "/" + tgt.ID + "<-" + donor, tr: tr})
		}
	}

	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range tasks {
				eng := &pipeline.Engine{Workers: 1, Compiler: compile.NewCache(0)}
				tr := *t.tr
				if _, err := eng.Run(&tr); err != nil {
					b.Fatalf("%s: %v", t.id, err)
				}
			}
		}
	})

	b.Run("Engine", func(b *testing.B) {
		eng := pipeline.NewEngine()
		eng.Compiler = compile.NewCache(0)
		batch := &pipeline.Batch{Engine: eng}
		for i := 0; i < b.N; i++ {
			var bts []pipeline.BatchTask
			for _, t := range tasks {
				tr := *t.tr
				bts = append(bts, pipeline.BatchTask{ID: t.id, Transfer: &tr})
			}
			results, stats := batch.Run(bts)
			if stats.Failed > 0 {
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.ID, r.Err)
					}
				}
			}
		}
	})
}

// ---- The shared constraint service: cold vs warm solving.
//
// solverWorkload is the symbolic side of one real Figure-8 row — the
// translation-heavy cwebp <- viewnior transfer, whose validation also
// carries the expensive overflow-freedom SAT proof. replaySolver runs
// the complete transfer on a fresh engine whose only warm state is the
// given constraint service (the engine-level proof and baseline caches
// start cold every time, and the compile cache is shared by both
// sides), so the cold/warm delta isolates exactly what the service
// memoises: equivalence verdicts and the overflow proof.
func newSolverWorkload(tb testing.TB) *phage.Transfer {
	tb.Helper()
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "viewnior", phage.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func replaySolver(tb testing.TB, base *phage.Transfer, svc *smt.Service) {
	tb.Helper()
	eng := &pipeline.Engine{Workers: 1, Compiler: compile.Default()}
	tr := *base
	tr.Opts.Service = svc
	res, err := eng.Run(&tr)
	if err != nil {
		tb.Fatal(err)
	}
	if res.UsedChecks() < 1 {
		tb.Fatal("no checks transferred")
	}
}

// BenchmarkSolveCold measures the Figure-8 row on a fresh service
// every iteration: every verdict and the overflow proof are proven
// from zero.
func BenchmarkSolveCold(b *testing.B) {
	skipInShort(b)
	base := newSolverWorkload(b)
	replaySolver(b, base, smt.NewService(smt.Config{})) // warm compiles/VM state common to both benchmarks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replaySolver(b, base, smt.NewService(smt.Config{}))
	}
}

// BenchmarkSolveWarm measures the same row against a service that has
// already answered it once: verdicts and the overflow proof come from
// the shared memo.
func BenchmarkSolveWarm(b *testing.B) {
	skipInShort(b)
	base := newSolverWorkload(b)
	svc := smt.NewService(smt.Config{})
	replaySolver(b, base, svc) // warm the memo outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replaySolver(b, base, svc)
	}
}

// TestWarmSolverAtLeastTwiceCold pins the incremental-service payoff:
// the Figure-8 row on a warm service must run at least 2x faster than
// on a cold one (the measured gap is larger — the row's SAT proof
// alone dominates its remaining work — so the 2x bound holds under
// race-detector skew), and the warm runs must be answered from the
// memo, not re-proven.
func TestWarmSolverAtLeastTwiceCold(t *testing.T) {
	if testing.Short() {
		t.Skip("solver warm/cold timing runs in the full (non-short) suite")
	}
	base := newSolverWorkload(t)

	const rounds = 3
	var cold, warm time.Duration
	warmSvc := smt.NewService(smt.Config{})
	replaySolver(t, base, warmSvc) // prime the memo and all shared caches
	for i := 0; i < rounds; i++ {
		start := time.Now()
		replaySolver(t, base, smt.NewService(smt.Config{}))
		cold += time.Since(start)

		start = time.Now()
		replaySolver(t, base, warmSvc)
		warm += time.Since(start)
	}

	st := warmSvc.Stats()
	if st.MemoHits == 0 {
		t.Fatal("warm replays produced no memo hits")
	}
	if st.SATCalls == 0 {
		t.Fatal("the cold prime issued no SAT calls — workload too trivial to pin anything")
	}
	t.Logf("cold %s vs warm %s over %d rounds (warm service: %d memo hits, %d SAT calls)",
		cold, warm, rounds, st.MemoHits, st.SATCalls)
	if cold < 2*warm {
		t.Errorf("warm solving is not ≥2x faster: cold %s vs warm %s", cold, warm)
	}
}

// TestFigure8MemoOnOffByteIdentical is the determinism contract for
// the shared constraint service: the complete 18-row Figure 8 batch
// must produce byte-identical reports with the verdict memo enabled
// and disabled. (Reports exclude wall-clock fields by construction;
// the memo may only change how fast verdicts arrive, never which.)
func TestFigure8MemoOnOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure-8 batches; runs in the full (non-short) suite")
	}
	run := func(cfg smt.Config) map[string][]byte {
		eng := pipeline.NewEngine()
		eng.Service = smt.NewService(cfg)
		rows, _ := figure8.BatchRows(phage.Options{}, &pipeline.Batch{Engine: eng})
		out := map[string][]byte{}
		for _, r := range rows {
			key := r.Recipient + "/" + r.Target + "<-" + r.Donor
			if r.Err != nil {
				t.Fatalf("%s failed: %v", key, r.Err)
			}
			rep := server.BuildReport(r.Recipient, r.Target, r.Donor, r.Result.Snapshot())
			bs, err := rep.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			out[key] = bs
		}
		return out
	}

	on := run(smt.Config{})
	off := run(smt.Config{DisableMemo: true})
	if len(on) != len(off) {
		t.Fatalf("row counts differ: %d vs %d", len(on), len(off))
	}
	for key, b1 := range on {
		if string(b1) != string(off[key]) {
			t.Errorf("%s: report bytes differ between memo on and off:\n  on:  %s\n  off: %s",
				key, b1, off[key])
		}
	}
}

// batchReports runs the complete Figure-8 batch against svc and
// returns the marshalled per-row reports (which exclude wall-clock and
// solver-counter fields by construction — byte equality means verdict
// equality).
func batchReports(t *testing.T, svc *smt.Service) map[string][]byte {
	return batchReportsOpts(t, svc, phage.Options{})
}

func batchReportsOpts(t *testing.T, svc *smt.Service, opts phage.Options) map[string][]byte {
	t.Helper()
	eng := pipeline.NewEngine()
	eng.Service = svc
	rows, _ := figure8.BatchRows(opts, &pipeline.Batch{Engine: eng})
	out := map[string][]byte{}
	for _, r := range rows {
		key := r.Recipient + "/" + r.Target + "<-" + r.Donor
		if r.Err != nil {
			t.Fatalf("%s failed: %v", key, r.Err)
		}
		rep := server.BuildReport(r.Recipient, r.Target, r.Donor, r.Result.Snapshot())
		bs, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out[key] = bs
	}
	return out
}

func diffReports(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: row counts differ: %d vs %d", label, len(a), len(b))
	}
	for key, ra := range a {
		if string(ra) != string(b[key]) {
			t.Errorf("%s: %s: report bytes differ:\n  a: %s\n  b: %s", label, key, ra, b[key])
		}
	}
}

// TestFigure8TraceOnOffByteIdentical is the determinism bar for the
// telemetry layer: the complete Figure-8 batch must produce
// byte-identical reports (which include the patched sources and patch
// artifact keys) with span capture enabled and disabled. Tracing is an
// observer — timing and span trees travel beside the canonical
// outputs, never inside them.
func TestFigure8TraceOnOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure-8 batches; runs in the full (non-short) suite")
	}
	off := batchReportsOpts(t, smt.NewService(smt.Config{}), phage.Options{})
	on := batchReportsOpts(t, smt.NewService(smt.Config{}), phage.Options{Trace: true})
	diffReports(t, "trace off vs on", off, on)
}

// TestPipelineStageLatencyBreakdown prints the per-stage latency
// summary recorded in BENCH_pipeline.json: the full Figure-8 batch on
// a cold engine, then the identical batch rerun on the same — now warm
// — engine (compile cache, baselines, proofs and the solver memo all
// hot). Regenerate the JSON from this test's -v output.
func TestPipelineStageLatencyBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure-8 batches; runs in the full (non-short) suite")
	}
	eng := pipeline.NewEngine()
	eng.Compiler = compile.NewCache(0)
	for _, label := range []string{"cold", "warm"} {
		rows, _ := figure8.BatchRows(phage.Options{Trace: true}, &pipeline.Batch{Engine: eng})
		var traces []*telemetry.Span
		for _, r := range rows {
			if r.Err != nil {
				t.Fatalf("%s/%s <- %s failed: %v", r.Recipient, r.Target, r.Donor, r.Err)
			}
			if r.Result.Trace == nil {
				t.Fatalf("%s/%s <- %s: no trace", r.Recipient, r.Target, r.Donor)
			}
			traces = append(traces, r.Result.Trace)
		}
		t.Logf("%s batch per-stage latency over %d transfers:\n%s",
			label, len(traces), telemetry.FormatStageTable(telemetry.SummarizeStages(traces, telemetry.Stages)))
	}
}

// TestFigure8PortfolioOnOffByteIdentical is the determinism bar for
// portfolio solving at full scale: the complete Figure-8 batch must
// produce byte-identical reports whether replicas race on goroutines
// (default), run one-by-one (the sequential ablation), or never exist
// at all (a single-replica service, the pre-portfolio configuration).
// The portfolio may only change how fast verdicts arrive, never which.
func TestFigure8PortfolioOnOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full Figure-8 batches; runs in the full (non-short) suite")
	}
	racing := batchReports(t, smt.NewService(smt.Config{}))
	sequential := batchReports(t, smt.NewService(smt.Config{PortfolioSequential: true}))
	single := batchReports(t, smt.NewService(smt.Config{PortfolioReplicas: 1}))
	diffReports(t, "racing vs sequential", racing, sequential)
	diffReports(t, "racing vs single-replica", racing, single)
}

// TestFigure8PrefilterOnOffByteIdentical is the determinism bar for
// the corpus fingerprint pre-filter: every Figure-8 target resolved
// auto-donor — the Select stage picking the donor from the real
// registry corpus — must produce a byte-identical report (selected
// donor included) with the pre-filter enabled and disabled. The
// pre-filter may only shrink the scored candidate set, never change
// what selection returns.
func TestFigure8PrefilterOnOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full auto-donor Figure-8 batches; runs in the full (non-short) suite")
	}
	run := func(noPrefilter bool) map[string][]byte {
		eng := pipeline.NewEngine()
		sel := &corpus.Selector{NoPrefilter: noPrefilter}
		eng.Selector = sel
		var tasks []pipeline.BatchTask
		for _, tgt := range apps.Targets() {
			tr, err := figure8.NewTransfer(tgt, pipeline.AutoDonor, phage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, pipeline.BatchTask{ID: tgt.Recipient + "/" + tgt.ID, Transfer: tr})
		}
		results, _ := (&pipeline.Batch{Engine: eng}).Run(tasks)
		out := map[string][]byte{}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s failed: %v", r.ID, r.Err)
			}
			snap := r.Result.Snapshot()
			rep := server.BuildReport(r.ID, "", snap.Donor, snap)
			bs, err := rep.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			out[r.ID] = bs
		}
		st := sel.Stats()
		if noPrefilter && st.PrefilterQueries != 0 {
			t.Fatalf("disabled pre-filter still answered %d queries", st.PrefilterQueries)
		}
		if !noPrefilter && st.PrefilterQueries == 0 {
			t.Fatal("enabled pre-filter answered no queries")
		}
		return out
	}

	diffReports(t, "prefilter on vs off", run(false), run(true))
}

// TestFigure8PersistedMemoByteIdentical is the determinism bar for
// warm-state persistence: a batch answered from a loaded snapshot must
// report byte-identically to the cold batch that produced it, while
// issuing no SAT calls of its own (every verdict comes from the
// persisted memo).
func TestFigure8PersistedMemoByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure-8 batches; runs in the full (non-short) suite")
	}
	coldSvc := smt.NewService(smt.Config{})
	cold := batchReports(t, coldSvc)
	snap := coldSvc.EncodeMemo()

	warmSvc := smt.NewService(smt.Config{})
	if err := warmSvc.LoadMemoBytes(snap); err != nil {
		t.Fatal(err)
	}
	if warmSvc.Stats().MemoLoaded == 0 {
		t.Fatal("snapshot installed no verdicts")
	}
	warm := batchReports(t, warmSvc)
	diffReports(t, "cold vs persisted-warm", cold, warm)

	cs, ws := coldSvc.Stats(), warmSvc.Stats()
	t.Logf("cold: %d SAT calls; persisted-warm: %d SAT calls, %d loaded, %d persistence hits",
		cs.SATCalls, ws.SATCalls, ws.MemoLoaded, ws.MemoLoadedHits)
	if cs.SATCalls == 0 {
		t.Fatal("cold batch issued no SAT calls — nothing was persisted")
	}
	if ws.SATCalls != 0 {
		t.Errorf("persisted-warm batch re-proved %d queries", ws.SATCalls)
	}
	if ws.MemoLoadedHits == 0 {
		t.Error("persisted-warm batch never hit a loaded entry")
	}
}

// BenchmarkSolvePersistedMemo is the cold-boot-with-snapshot number:
// each iteration builds a brand-new service (as a freshly started
// phaged would), loads the snapshot a previous process saved, and runs
// the Figure-8 row. The target is within 2x of the in-process warm
// path (BenchmarkSolveWarm) — snapshot decode plus core rebuild is the
// only extra work.
func BenchmarkSolvePersistedMemo(b *testing.B) {
	skipInShort(b)
	base := newSolverWorkload(b)
	src := smt.NewService(smt.Config{})
	replaySolver(b, base, src) // produce the snapshot outside the timed region
	snap := src.EncodeMemo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := smt.NewService(smt.Config{})
		if err := svc.LoadMemoBytes(snap); err != nil {
			b.Fatal(err)
		}
		replaySolver(b, base, svc)
	}
}

// BenchmarkHardProofPortfolio and BenchmarkHardProofSingle quantify
// the tentpole: the same cold Figure-8 row — dominated by the overflow
// -freedom proof, the hardest SAT query in the catalogue — resolved by
// the racing replica portfolio versus a single solver. The portfolio
// must strictly reduce wall time here; the verdicts are identical by
// construction (TestFigure8PortfolioOnOffByteIdentical).
func BenchmarkHardProofPortfolio(b *testing.B) {
	skipInShort(b)
	base := newSolverWorkload(b)
	replaySolver(b, base, smt.NewService(smt.Config{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replaySolver(b, base, smt.NewService(smt.Config{}))
	}
}

func BenchmarkHardProofSingle(b *testing.B) {
	skipInShort(b)
	base := newSolverWorkload(b)
	replaySolver(b, base, smt.NewService(smt.Config{PortfolioReplicas: 1}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replaySolver(b, base, smt.NewService(smt.Config{PortfolioReplicas: 1}))
	}
}

// TestFullBatchSharesSolverVerdicts pins engine-wide query sharing on
// the complete 10-target catalogue: one shared service across the full
// batch must observe memo hits (donors repeat across targets, rescan
// rounds repeat overflow queries) — the counters that back the
// phaged_solver_memo_* metrics.
func TestFullBatchSharesSolverVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure-8 batch; runs in the full (non-short) suite")
	}
	svc := smt.NewService(smt.Config{})
	eng := pipeline.NewEngine()
	eng.Service = svc
	rows, _ := figure8.BatchRows(phage.Options{}, &pipeline.Batch{Engine: eng})
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s/%s <- %s failed: %v", r.Recipient, r.Target, r.Donor, r.Err)
		}
	}
	st := svc.Stats()
	t.Logf("full-batch service stats: %+v", st)
	if st.MemoHits == 0 {
		t.Error("full Figure-8 batch produced no shared-memo hits")
	}
	if st.Queries == 0 || st.SATCalls == 0 {
		t.Errorf("service under-exercised: %+v", st)
	}
}

// ---- The phaged serving hot path.

// serviceRequests are the three determinism rows — catalogued error
// inputs, so no DIODE discovery inflates the serving measurements.
func serviceRequests() []*server.Request {
	return []*server.Request{
		{Recipient: "jasper", Target: "jpc_dec.c@492", Donor: "openjpeg"},
		{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"},
		{Recipient: "wireshark14", Target: "packet-dcp-etsi.c@258", Donor: "wireshark18"},
	}
}

// BenchmarkServerThroughput measures requests/sec against a warm
// in-process phaged: after the first pass every request key is in the
// dedup index and every compile is a cache hit, so the benchmark
// isolates the serving overhead (HTTP, JSON, job table) the daemon
// adds on top of the engine.
func BenchmarkServerThroughput(b *testing.B) {
	skipInShort(b)
	srv := server.New(server.Config{})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()
	cli := &server.Client{BaseURL: ts.URL}
	reqs := serviceRequests()
	for _, req := range reqs { // warm the engines and the dedup index
		env, err := cli.Transfer(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if env.Status != server.StatusDone {
			b.Fatalf("%s/%s: %s (%s)", req.Recipient, req.Target, env.Status, env.Error)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := cli.Transfer(context.Background(), reqs[i%len(reqs)])
		if err != nil {
			b.Fatal(err)
		}
		if env.Status != server.StatusDone {
			b.Fatalf("request %d: %s", i, env.Status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestServerShutdownRestoresGoroutineBaseline: after serving traffic
// and shutting down, the process goroutine count must return to its
// pre-server baseline — the worker pools, watchers and HTTP plumbing
// may not leak.
func TestServerShutdownRestoresGoroutineBaseline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := server.New(server.Config{Shards: 2})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	cli := &server.Client{BaseURL: ts.URL}
	req := &server.Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"}
	for i := 0; i < 3; i++ { // exercise run, dedup and streaming paths
		if _, err := cli.Transfer(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Stream(context.Background(), req, nil); err != nil {
		t.Fatal(err)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d after shutdown, baseline %d (leak)", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
