// Package codephage's root benchmark harness regenerates the paper's
// evaluation: one benchmark per Figure 8 donor/recipient row (the full
// pipeline: error discovery input in hand, then donor analysis, check
// excision, insertion point identification, translation, validation,
// and DIODE residual re-scans), plus the ablation benchmarks for the
// design choices DESIGN.md calls out (D2: solver cache and
// disjointness prefilter; D3: the Figure 5 rewrite rules).
//
// Run with: go test -bench=. -benchmem
package codephage

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/figure8"
	"codephage/internal/hachoir"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
	"codephage/internal/server"
	"codephage/internal/smt"
	"codephage/internal/taint"
	"codephage/internal/vm"
)

// skipInShort keeps the benchmarks out of short-mode test jobs (the
// CI test step runs with -short; benchmarks belong to the bench step).
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("benchmark skipped in short mode")
	}
}

// benchRow runs one Figure 8 row repeatedly. The error-triggering
// input is discovered once outside the timed loop (the paper's
// generation times likewise exclude DIODE's initial discovery).
func benchRow(b *testing.B, recipient, target, donor string) {
	tgt, err := apps.TargetByID(recipient, target)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, donor, phage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.UsedChecks() < 1 {
			b.Fatal("no checks transferred")
		}
	}
}

// BenchmarkFigure8 has one sub-benchmark per table row.
func BenchmarkFigure8(b *testing.B) {
	skipInShort(b)
	for _, tgt := range apps.Targets() {
		for _, donor := range tgt.Donors {
			name := fmt.Sprintf("%s_%s_from_%s",
				tgt.Recipient, sanitize(tgt.ID), donor)
			tgt, donor := tgt, donor
			b.Run(name, func(b *testing.B) {
				benchRow(b, tgt.Recipient, tgt.ID, donor)
			})
		}
	}
}

func sanitize(s string) string {
	r := strings.NewReplacer(".", "_", "@", "_", "/", "_")
	return r.Replace(s)
}

// TestFigure8Table prints the regenerated Figure 8 (also recorded in
// EXPERIMENTS.md). It lives here so `go test` at the module root
// reproduces the headline table.
func TestFigure8Table(t *testing.T) {
	rows := figure8.AllRows(phage.Options{})
	t.Logf("\n%s", figure8.FormatTable(rows))
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s/%s <- %s failed: %v", r.Recipient, r.Target, r.Donor, r.Err)
		}
	}
}

// ---- Ablation D2: the solver query cache and the input-byte
// disjointness prefilter (paper §3.3: together an order of magnitude
// in translation time). Measured on the translation-heavy CWebP <-
// viewnior row, which exercises the division-based check.

func benchAblationSolver(b *testing.B, disableCache, disablePrefilter bool) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "viewnior", phage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver := smt.New()
		solver.DisableCache = disableCache
		solver.DisablePrefilter = disablePrefilter
		tr.Opts.Solver = solver
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	skipInShort(b)
	b.Run("SolverCacheAndPrefilter_on", func(b *testing.B) {
		benchAblationSolver(b, false, false)
	})
	b.Run("SolverCache_off", func(b *testing.B) {
		benchAblationSolver(b, true, false)
	})
	b.Run("SolverPrefilter_off", func(b *testing.B) {
		benchAblationSolver(b, false, true)
	})
	b.Run("SolverBoth_off", func(b *testing.B) {
		benchAblationSolver(b, true, true)
	})

	// Ablation D3: the Figure 5 bit-manipulation rewrite rules. With
	// them disabled the recorded donor conditions keep their raw
	// shift/mask/or structure, which the equivalence queries then have
	// to chew through.
	b.Run("RewriteRules_on", func(b *testing.B) {
		benchRewriteAblation(b, false)
	})
	b.Run("RewriteRules_off", func(b *testing.B) {
		benchRewriteAblation(b, true)
	})
}

func benchRewriteAblation(b *testing.B, noSimplify bool) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "feh", phage.Options{NoSimplify: noSimplify})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRewriteRulesShrinkExcisedChecks quantifies ablation D3 directly:
// the Figure 5 rules must shrink the excised FEH check (the paper's
// Section 2 expression collapses from dozens of operations to four).
func TestRewriteRulesShrinkExcisedChecks(t *testing.T) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		t.Fatal(err)
	}
	errIn, err := figure8.ErrorInputFor(tgt)
	if err != nil {
		t.Fatal(err)
	}
	donorApp, _ := apps.ByName("feh")
	donor, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		t.Fatal(err)
	}
	dis := hDissect(t, "mjpg", tgt.Seed)
	relevant := dis.DiffFields(tgt.Seed, errIn)
	// Record once with and once without the Figure 5 rules.
	sizes := map[bool]int{}
	for _, noSimplify := range []bool{false, true} {
		disc, err := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, noSimplify)
		if err != nil {
			t.Fatal(err)
		}
		if len(disc.Checks) == 0 {
			t.Fatal("no checks")
		}
		sizes[noSimplify] = disc.Checks[0].Cond.OpCount()
	}
	if sizes[false] >= sizes[true] {
		t.Errorf("Figure 5 rules do not shrink the check: with=%d without=%d",
			sizes[false], sizes[true])
	}
	t.Logf("excised check size: %d ops with Figure 5 rules, %d without",
		sizes[false], sizes[true])
}

// hDissect dissects an input with the named format dissector.
func hDissect(tb testing.TB, format string, input []byte) *hachoir.Dissection {
	tb.Helper()
	d, ok := hachoir.ByName(format)
	if !ok {
		tb.Fatalf("no dissector %q", format)
	}
	dis, err := d.Dissect(input)
	if err != nil {
		tb.Fatal(err)
	}
	return dis
}

// TestSolverCacheEffect quantifies ablation D2's cache: repeated
// equivalence queries during a transfer must hit the cache.
func TestSolverCacheEffect(t *testing.T) {
	tgt, err := apps.TargetByID("dillo", "png.c@203")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := figure8.NewTransfer(tgt, "feh", phage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solver := smt.New()
	tr.Opts.Solver = solver
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	st := solver.Stats
	t.Logf("solver stats: %+v", st)
	if st.Queries == 0 {
		t.Fatal("no solver queries issued")
	}
	if st.CacheHits == 0 && st.Prefiltered == 0 {
		t.Error("neither the cache nor the prefilter fired during a full transfer")
	}
}

// TestFirstFlippedBranchSuffices verifies the paper's observation that
// the transferred check always comes from the first flipped branch.
func TestFirstFlippedBranchSuffices(t *testing.T) {
	rows := figure8.AllRows(phage.Options{})
	for _, r := range rows {
		if r.Err != nil {
			continue
		}
		if !r.FirstCheck {
			t.Errorf("%s/%s <- %s used a non-first flipped branch", r.Recipient, r.Target, r.Donor)
		}
	}
}

// BenchmarkPipelineStages isolates the pipeline's phases on the
// Section 2 workload.
func BenchmarkPipelineStages(b *testing.B) {
	skipInShort(b)
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		b.Fatal(err)
	}
	errIn, err := figure8.ErrorInputFor(tgt)
	if err != nil {
		b.Fatal(err)
	}
	recipient, _ := apps.ByName("cwebp")
	recipientMod, err := apps.Build(recipient)
	if err != nil {
		b.Fatal(err)
	}
	donorApp, _ := apps.ByName("feh")
	donor, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		b.Fatal(err)
	}
	dis := hDissect(b, "mjpg", tgt.Seed)
	relevant := dis.DiffFields(tgt.Seed, errIn)

	b.Run("DonorCheckDiscovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, false)
			if err != nil || len(d.Checks) == 0 {
				b.Fatalf("%v / %d checks", err, len(d.Checks))
			}
		}
	})
	disc, _ := phage.DiscoverChecks(donor, tgt.Seed, errIn, dis, relevant, false)
	fields := disc.Checks[0].Cond.Fields()
	b.Run("InsertionPointAnalysis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := phage.AnalyzeInsertionPoints(recipientMod, tgt.Seed, dis, fields, relevant)
			if err != nil || len(a.Points) == 0 {
				b.Fatalf("%v / %d points", err, len(a.Points))
			}
		}
	})
	analysis, _ := phage.AnalyzeInsertionPoints(recipientMod, tgt.Seed, dis, fields, relevant)
	_, _, stable := analysis.Candidates()
	b.Run("RewriteTranslation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := smt.New()
			tr := phage.Rewrite(disc.Checks[0].Cond, stable[len(stable)-1].Names, solver)
			if tr == nil {
				b.Fatal("rewrite failed")
			}
		}
	})
}

// BenchmarkTaintTracking measures the execution monitor's overhead.
func BenchmarkTaintTracking(b *testing.B) {
	skipInShort(b)
	app, _ := apps.ByName("cwebp")
	mod, err := apps.Build(app)
	if err != nil {
		b.Fatal(err)
	}
	seed := apps.SeedMJPG()
	b.Run("Plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := vm.New(mod, seed).Run(); !r.OK() {
				b.Fatal(r.Trap)
			}
		}
	})
	b.Run("Tainted", func(b *testing.B) {
		dis := hDissect(b, "mjpg", seed)
		for i := 0; i < b.N; i++ {
			v := vm.New(mod, seed)
			v.Tracer = taint.NewTracker(mod, taint.Options{Labels: dis})
			if r := v.Run(); !r.OK() {
				b.Fatal(r.Trap)
			}
		}
	})
}

// BenchmarkSimplify measures the Figure 5 rule engine on the paper's
// endianness-conversion pattern.
func BenchmarkSimplify(b *testing.B) {
	skipInShort(b)
	f := bitvec.Field("/start_frame/content/height", 16, 4)
	lo := bitvec.And(f, bitvec.Const(16, 0x00FF))
	hi := bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8))
	read := bitvec.Or(bitvec.Shl(hi, bitvec.Const(16, 8)), lo)
	check := bitvec.Ule(bitvec.Mul(bitvec.ZExt(64, read), bitvec.ZExt(64, read)), bitvec.Const(64, 536870911))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitvec.Simplify(check).OpCount() > 4 {
			b.Fatal("did not collapse")
		}
	}
}

// ---- The staged engine: batched, cached, parallel Figure 8.
//
// BenchmarkFigure8Batch runs the complete 18-row Figure 8 workload two
// ways. "Sequential" models the pre-engine path: every row gets a
// fresh engine with a cold compile cache, one validation worker and no
// shared baselines or proofs. "Engine" is the production shape: one
// shared engine, content-keyed compile cache, shared baseline and
// proof caches, transfers batched across workers. Error-input
// discovery happens once, outside both timed regions, exactly as the
// paper excludes DIODE's initial discovery from generation times.
func BenchmarkFigure8Batch(b *testing.B) {
	skipInShort(b)
	type task struct {
		id string
		tr *phage.Transfer
	}
	var tasks []task
	for _, tgt := range apps.Targets() {
		for _, donor := range tgt.Donors {
			tr, err := figure8.NewTransfer(tgt, donor, phage.Options{})
			if err != nil {
				b.Fatal(err)
			}
			tasks = append(tasks, task{id: tgt.Recipient + "/" + tgt.ID + "<-" + donor, tr: tr})
		}
	}

	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range tasks {
				eng := &pipeline.Engine{Workers: 1, Compiler: compile.NewCache(0)}
				tr := *t.tr
				if _, err := eng.Run(&tr); err != nil {
					b.Fatalf("%s: %v", t.id, err)
				}
			}
		}
	})

	b.Run("Engine", func(b *testing.B) {
		eng := pipeline.NewEngine()
		eng.Compiler = compile.NewCache(0)
		batch := &pipeline.Batch{Engine: eng}
		for i := 0; i < b.N; i++ {
			var bts []pipeline.BatchTask
			for _, t := range tasks {
				tr := *t.tr
				bts = append(bts, pipeline.BatchTask{ID: t.id, Transfer: &tr})
			}
			results, stats := batch.Run(bts)
			if stats.Failed > 0 {
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.ID, r.Err)
					}
				}
			}
		}
	})
}

// ---- The phaged serving hot path.

// serviceRequests are the three determinism rows — catalogued error
// inputs, so no DIODE discovery inflates the serving measurements.
func serviceRequests() []*server.Request {
	return []*server.Request{
		{Recipient: "jasper", Target: "jpc_dec.c@492", Donor: "openjpeg"},
		{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"},
		{Recipient: "wireshark14", Target: "packet-dcp-etsi.c@258", Donor: "wireshark18"},
	}
}

// BenchmarkServerThroughput measures requests/sec against a warm
// in-process phaged: after the first pass every request key is in the
// dedup index and every compile is a cache hit, so the benchmark
// isolates the serving overhead (HTTP, JSON, job table) the daemon
// adds on top of the engine.
func BenchmarkServerThroughput(b *testing.B) {
	skipInShort(b)
	srv := server.New(server.Config{})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()
	cli := &server.Client{BaseURL: ts.URL}
	reqs := serviceRequests()
	for _, req := range reqs { // warm the engines and the dedup index
		env, err := cli.Transfer(req)
		if err != nil {
			b.Fatal(err)
		}
		if env.Status != server.StatusDone {
			b.Fatalf("%s/%s: %s (%s)", req.Recipient, req.Target, env.Status, env.Error)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := cli.Transfer(reqs[i%len(reqs)])
		if err != nil {
			b.Fatal(err)
		}
		if env.Status != server.StatusDone {
			b.Fatalf("request %d: %s", i, env.Status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestServerShutdownRestoresGoroutineBaseline: after serving traffic
// and shutting down, the process goroutine count must return to its
// pre-server baseline — the worker pools, watchers and HTTP plumbing
// may not leak.
func TestServerShutdownRestoresGoroutineBaseline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := server.New(server.Config{Shards: 2})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	cli := &server.Client{BaseURL: ts.URL}
	req := &server.Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"}
	for i := 0; i < 3; i++ { // exercise run, dedup and streaming paths
		if _, err := cli.Transfer(req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Stream(req, nil); err != nil {
		t.Fatal(err)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d after shutdown, baseline %d (leak)", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
