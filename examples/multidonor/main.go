// Multidonor demonstrates §4.6: the same CWebP integer overflow is
// eliminated with three independently developed donors — FEH, mtpaint
// and Viewnior — each contributing a structurally different check
// (product bound, per-dimension bound, division-based overflow test).
//
// Run with: go run ./examples/multidonor
package main

import (
	"fmt"
	"log"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/phage"
)

func main() {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error: %s in %s (%s)\n\n", tgt.ID, tgt.Recipient, tgt.Kind)
	for _, donor := range tgt.Donors {
		row := figure8.RunRow(tgt, donor, phage.Options{})
		if row.Err != nil {
			log.Fatalf("%s: %v", donor, row.Err)
		}
		app, _ := apps.ByName(donor)
		fmt.Printf("donor %s (%s):\n", donor, app.Paper)
		for i, pr := range row.Result.Rounds {
			fmt.Printf("  patch %d: %s\n", i+1, pr.PatchText)
		}
		fmt.Printf("  flipped branches %s, insertion points %s, check size %s, time %s\n\n",
			row.FlippedString(), row.InsertString(), row.SizeString(), row.GenTime.Round(1e6))
	}
	fmt.Println("All three donors yield validated patches for the same error —")
	fmt.Println("the diversity of independent development efforts the paper leverages.")
}
