// Multidonor demonstrates §4.6: the same CWebP integer overflow is
// eliminated with three independently developed donors — FEH, mtpaint
// and Viewnior — each contributing a structurally different check
// (product bound, per-dimension bound, division-based overflow test).
//
// The three transfers run as one pipeline.Batch over a shared engine:
// the recipient compiles once, the regression baseline is observed
// once, and the donors are validated concurrently — the batch
// "many patches over one artifact" shape.
//
// Run with: go run ./examples/multidonor
package main

import (
	"fmt"
	"log"
	"time"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
)

func main() {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error: %s in %s (%s)\n\n", tgt.ID, tgt.Recipient, tgt.Kind)

	var tasks []pipeline.BatchTask
	for _, donor := range tgt.Donors {
		tr, err := figure8.NewTransfer(tgt, donor, phage.Options{})
		if err != nil {
			log.Fatalf("%s: %v", donor, err)
		}
		tasks = append(tasks, pipeline.BatchTask{ID: donor, Transfer: tr})
	}
	batch := &pipeline.Batch{Engine: pipeline.NewEngine()}
	results, stats := batch.Run(tasks)

	for _, br := range results {
		if br.Err != nil {
			log.Fatalf("%s: %v", br.ID, br.Err)
		}
		app, _ := apps.ByName(br.ID)
		fmt.Printf("donor %s (%s):\n", br.ID, app.Paper)
		for i, pr := range br.Result.Rounds {
			fmt.Printf("  patch %d: %s\n", i+1, pr.PatchText)
		}
		fmt.Printf("  check size %d->%d, time %s\n\n",
			br.Result.Rounds[0].ExcisedOps, br.Result.Rounds[0].TranslatedOps,
			br.Result.GenTime.Round(time.Millisecond))
	}
	fmt.Printf("batch: %d transfers in %s wall; compile cache %d hits / %d misses\n",
		stats.Tasks, stats.WallTime.Round(time.Millisecond),
		stats.Compile.Hits, stats.Compile.Misses)
	fmt.Println()
	fmt.Println("All three donors yield validated patches for the same error —")
	fmt.Println("the diversity of independent development efforts the paper leverages.")
}
