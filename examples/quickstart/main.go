// Quickstart walks through the paper's Section 2 example end to end:
// eliminating the CWebP integer overflow (Figure 1) by transferring
// FEH's IMAGE_DIMENSIONS_OK check (Figure 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"codephage/internal/apps"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/phage"
	"codephage/internal/vm"
)

func main() {
	// 1. Error discovery: DIODE finds an input whose width/height
	//    fields wrap the stride*height allocation in CWebP's ReadJPEG.
	cwebp, err := apps.ByName("cwebp")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := apps.Build(cwebp)
	if err != nil {
		log.Fatal(err)
	}
	seed := apps.SeedMJPG()
	dissector, _ := hachoir.ByName("mjpg")
	dis, err := dissector.Dissect(seed)
	if err != nil {
		log.Fatal(err)
	}
	finding, err := diode.Discover(mod, seed, dis, diode.Options{VulnFn: "read_jpeg"})
	if err != nil {
		log.Fatal(err)
	}
	if finding == nil {
		log.Fatal("DIODE found no overflow")
	}
	fmt.Println("== Error discovery (DIODE) ==")
	fmt.Printf("  %v\n", finding)
	fmt.Printf("  size expression: %s\n", finding.SizeExpr)
	fmt.Printf("  error-triggering fields: %v\n\n", finding.Fields)

	// 2. Donor selection: FEH processes both the seed and the error
	//    input (its IMAGE_DIMENSIONS_OK check rejects the latter).
	feh, _ := apps.ByName("feh")
	donor, err := apps.BuildDonorBinary(feh) // serialized + stripped
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Donor selection ==")
	fmt.Printf("  feh (stripped binary, %d functions, no debug info)\n", len(donor.Funcs))
	fmt.Printf("  survives seed: %v, survives error input: %v\n\n",
		vm.New(donor, seed).Run().OK(), vm.New(donor, finding.Input).Run().OK())

	// 3-6. Check discovery, excision, insertion, translation,
	//      validation: the full transfer.
	transfer := &phage.Transfer{
		RecipientName: "cwebp",
		RecipientSrc:  cwebp.Source,
		Donor:         donor,
		DonorName:     "feh",
		Format:        "mjpg",
		Seed:          seed,
		Error:         finding.Input,
		Regression:    apps.RegressionSuite("mjpg"),
		VulnFn:        "read_jpeg",
	}
	res, err := transfer.Run()
	if err != nil {
		log.Fatal(err)
	}
	pr := res.Rounds[0]
	fmt.Println("== Candidate check discovery ==")
	fmt.Printf("  relevant branch sites: %d, flipped: %d, used check: first flipped branch\n\n",
		pr.RelevantSites, pr.FlippedSites)
	fmt.Println("== Check excision (application-independent form) ==")
	fmt.Printf("  %s\n  (%d operations before the Figure 5 rewrite rules)\n\n",
		pr.ExcisedCheck, pr.ExcisedOps)
	fmt.Println("== Insertion point identification ==")
	fmt.Printf("  %d candidates - %d unstable - %d untranslatable = %d viable\n\n",
		pr.CandidatePoints, pr.UnstablePoints, pr.Untranslatable, pr.ViablePoints)
	fmt.Println("== Patch translation (recipient name space) ==")
	fmt.Printf("  %s\n  (%d operations)\n\n", pr.TranslatedCheck, pr.TranslatedOps)
	fmt.Println("== Generated patch ==")
	fmt.Printf("  %s\n  inserted before %s line %d\n\n", pr.PatchText, pr.InsertFn, pr.InsertLine)

	// 7. The patched CWebP rejects the error input and keeps working.
	fmt.Println("== Patch validation ==")
	errRun := vm.New(res.FinalModule, finding.Input).Run()
	seedRun := vm.New(res.FinalModule, seed).Run()
	fmt.Printf("  error input:  trap=%v exit=%d (clean rejection)\n", errRun.Trap, errRun.ExitCode)
	fmt.Printf("  seed input:   trap=%v exit=%d output=%v\n", seedRun.Trap, seedRun.ExitCode, seedRun.Output)
	fmt.Printf("  generation time: %s\n", res.GenTime.Round(1e6))
	if res.OverflowFreeProven != nil {
		fmt.Printf("  overflow-freedom proven by SMT: %v\n", *res.OverflowFreeProven)
	}
}
