// Versiontransfer demonstrates §4.5's multiversion code transfer: the
// Wireshark 1.4.14 divide-by-zero is eliminated by transferring the
// `if (real_len)` guard from Wireshark 1.8.6 — a targeted update that
// avoids a disruptive full upgrade. The name translation bridges the
// 1.4→1.8 renaming (plen → real_len). Both reaction strategies are
// shown: exit-before-error and the return-0 continued-execution
// alternative the paper reports works for both divide-by-zero sites.
//
// Run with: go run ./examples/versiontransfer
package main

import (
	"fmt"
	"log"

	"codephage/internal/apps"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/vm"
)

func main() {
	tgt, err := apps.TargetByID("wireshark14", "packet-dcp-etsi.c@258")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recipient: Wireshark 1.4.14, donor: Wireshark 1.8.6 (multiversion transfer)")
	fmt.Printf("error: divide by zero on zero-length payload fields\n\n")

	for _, mode := range []struct {
		name string
		mode phage.ExitMode
	}{
		{"exit(-1) strategy", phage.ExitOnFail},
		{"return-0 strategy (continued execution)", phage.ReturnZero},
	} {
		row := figure8.RunRow(tgt, "wireshark18", phage.Options{ExitMode: mode.mode})
		if row.Err != nil {
			log.Fatalf("%s: %v", mode.name, row.Err)
		}
		fmt.Printf("== %s ==\n", mode.name)
		for _, pr := range row.Result.Rounds {
			fmt.Printf("  patch: %s (before %s line %d)\n", pr.PatchText, pr.InsertFn, pr.InsertLine)
		}
		errRun := vm.New(row.Result.FinalModule, row.Result.Rounds[0].ErrorInput).Run()
		fmt.Printf("  zero-payload packet: trap=%v exit=%d output=%v\n\n",
			errRun.Trap, errRun.ExitCode, errRun.Output)
	}
	fmt.Println("The donor renamed the field (plen -> real_len) during reengineering;")
	fmt.Println("Code Phage recognises both hold the same input field and bridges the names.")
}
