// Continuous demonstrates §1.2's continuous multiple application
// improvement loop on the swfplay jpeg.c error: DIODE repeatedly
// rediscovers residual overflow errors in the freshly patched build
// and Code Phage transfers another Gnash check each round, until DIODE
// finds nothing — the paper's multi-patch rows ([X1,…,Xn] in Figure 8).
//
// Run with: go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"codephage/internal/apps"
	"codephage/internal/diode"
	"codephage/internal/figure8"
	"codephage/internal/hachoir"
	"codephage/internal/phage"
)

func main() {
	tgt, err := apps.TargetByID("swfplay", "jpeg.c@192")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recipient: swfplay 0.5.5, donor: gnash 0.8.11")
	fmt.Println("error: component-buffer size overflow (width*height*h_samp*v_samp)")
	fmt.Println()

	row := figure8.RunRow(tgt, "gnash", phage.Options{})
	if row.Err != nil {
		log.Fatal(row.Err)
	}
	for i, pr := range row.Result.Rounds {
		fmt.Printf("round %d:\n", i+1)
		fmt.Printf("  error-triggering fields rediscovered by DIODE; flipped branches: %d\n",
			pr.FlippedSites)
		fmt.Printf("  transferred check: %s\n", pr.TranslatedCheck)
		fmt.Printf("  patch: %s (before %s line %d)\n", pr.PatchText, pr.InsertFn, pr.InsertLine)
	}
	fmt.Printf("\n%d round(s); DIODE finds no further overflow in the final build.\n",
		len(row.Result.Rounds))

	// Confirm: one more DIODE scan over the final module comes up empty.
	d, _ := hachoir.ByName(tgt.Format)
	dis, err := d.Dissect(tgt.Seed)
	if err != nil {
		log.Fatal(err)
	}
	finding, err := diode.Discover(row.Result.FinalModule, tgt.Seed, dis,
		diode.Options{VulnFn: tgt.VulnFn})
	if err != nil {
		log.Fatal(err)
	}
	if finding != nil {
		log.Fatalf("residual error remains: %v", finding)
	}
	fmt.Println("final scan: no residual integer overflow errors.")
}
