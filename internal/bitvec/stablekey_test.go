package bitvec

import (
	"regexp"
	"testing"
)

// TestStableKeyProcessIndependent simulates a second process by
// hand-building un-interned copies of interned expressions: the two
// share no interner IDs (the basis of Key()), so agreement here means
// the key really is a function of term content alone.
func TestStableKeyProcessIndependent(t *testing.T) {
	interned := Add(Field("hdr.len", 32, 0), Const(32, 7))
	copyOf := &Expr{
		Op: OpAdd, W: 32,
		X: &Expr{Op: OpField, W: 32, Name: "hdr.len"},
		Y: &Expr{Op: OpConst, W: 32, Val: 7},
	}
	if got, want := copyOf.StableKey(), interned.StableKey(); got != want {
		t.Fatalf("un-interned copy key %s != interned key %s", got, want)
	}
	if interned.Key() == interned.StableKey() {
		t.Fatalf("StableKey should not be the process-local Key")
	}
}

func TestStableKeyDistinguishesContent(t *testing.T) {
	f := Field("x", 16, 0)
	exprs := []*Expr{
		Const(8, 1),
		Const(16, 1),
		Const(8, 2),
		f,
		Field("x", 8, 0),
		Field("y", 16, 0),
		Add(f, Const(16, 1)),
		Sub(f, Const(16, 1)),
		Add(Const(16, 1), f), // operand order matters pre-simplification
		Extract(7, 0, f),
		Extract(15, 8, f),
	}
	seen := map[string]int{}
	for i, e := range exprs {
		k := e.StableKey()
		if j, dup := seen[k]; dup {
			t.Fatalf("exprs %d and %d share stable key %s", j, i, k)
		}
		seen[k] = i
	}
}

func TestStableKeyFormatAndCaching(t *testing.T) {
	e := Mul(Field("a", 32, 0), Field("b", 32, 4))
	k1 := e.StableKey()
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(k1) {
		t.Fatalf("stable key %q is not 32 hex chars", k1)
	}
	if k2 := e.StableKey(); k2 != k1 {
		t.Fatalf("second StableKey call changed: %s vs %s", k2, k1)
	}
	// The memo is per interned ID: a structurally equal term interns to
	// the same node and must hit the cached key.
	e2 := Mul(Field("a", 32, 0), Field("b", 32, 4))
	if e2.StableKey() != k1 {
		t.Fatalf("re-interned equal term got a different stable key")
	}
}
