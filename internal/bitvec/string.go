package bitvec

import (
	"fmt"
	"strings"
)

// String renders the expression in the paper's notation, e.g.
//
//	ULessEqual(32,Mul(64,ToSize(64,HachField(16,'/start_frame/content/width')),...),Constant(536870911))
//
// Operation nodes print their result width as the first argument;
// constants print their value; fields print width and quoted path.
func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb)
	return sb.String()
}

func (e *Expr) write(sb *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(sb, "Constant(%d)", e.Val)
		return
	case OpField:
		fmt.Fprintf(sb, "HachField(%d,'%s')", e.W, e.Name)
		return
	case OpRef:
		fmt.Fprintf(sb, "Ref(%d,%s)", e.W, e.Name)
		return
	case OpExtr:
		fmt.Fprintf(sb, "Extract(%d,%d,", e.Hi, e.Lo)
		e.X.write(sb)
		sb.WriteByte(')')
		return
	}
	fmt.Fprintf(sb, "%s(%d", e.Op.Name(), e.W)
	for _, o := range e.Operands() {
		sb.WriteByte(',')
		o.write(sb)
	}
	sb.WriteByte(')')
}
