package bitvec

import "fmt"

// Env supplies concrete values for expression leaves during evaluation.
type Env interface {
	// FieldValue returns the concrete value of the named input field.
	FieldValue(name string) (uint64, bool)
	// RefValue returns the concrete value of a recipient path reference.
	RefValue(path string) (uint64, bool)
}

// MapEnv is an Env backed by plain maps. A nil map is treated as empty.
type MapEnv struct {
	Fields map[string]uint64
	Refs   map[string]uint64
}

// FieldValue implements Env.
func (m MapEnv) FieldValue(name string) (uint64, bool) {
	v, ok := m.Fields[name]
	return v, ok
}

// RefValue implements Env.
func (m MapEnv) RefValue(path string) (uint64, bool) {
	v, ok := m.Refs[path]
	return v, ok
}

// signExtend interprets the low w bits of v as a signed value and
// returns it sign-extended to 64 bits.
func signExtend(v uint64, w uint8) int64 {
	v &= Mask(w)
	if w < 64 && v&(uint64(1)<<(w-1)) != 0 {
		v |= ^Mask(w)
	}
	return int64(v)
}

// Eval computes the concrete value of e under env. The result is masked
// to e.W bits. Division by zero evaluates to the dividend (the VM traps
// on concrete division by zero before any symbolic value is consumed,
// so this case only arises for counterexample probing).
func Eval(e *Expr, env Env) (uint64, error) {
	switch e.Op {
	case OpConst:
		return e.Val, nil
	case OpField:
		v, ok := env.FieldValue(e.Name)
		if !ok {
			return 0, fmt.Errorf("bitvec: no value for field %q", e.Name)
		}
		return v & Mask(e.W), nil
	case OpRef:
		v, ok := env.RefValue(e.Name)
		if !ok {
			return 0, fmt.Errorf("bitvec: no value for ref %q", e.Name)
		}
		return v & Mask(e.W), nil
	}

	x, err := Eval(e.X, env)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case OpNot:
		return ^x & Mask(e.W), nil
	case OpNeg:
		return (-x) & Mask(e.W), nil
	case OpZExt:
		return x, nil
	case OpSExt:
		return uint64(signExtend(x, e.X.W)) & Mask(e.W), nil
	case OpBool:
		if x != 0 {
			return 1, nil
		}
		return 0, nil
	case OpLNot:
		if x == 0 {
			return 1, nil
		}
		return 0, nil
	case OpExtr:
		return (x >> e.Lo) & Mask(e.W), nil
	}

	y, err := Eval(e.Y, env)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case OpIte:
		if x != 0 {
			return y, nil
		}
		return Eval(e.Y2, env)
	case OpConcat:
		return (x<<e.Y.W | y) & Mask(e.W), nil
	}
	return evalBin(e.Op, e.W, e.X.W, x, y), nil
}

// evalBin evaluates a binary operation over masked operand values.
// opw is the operand width (differs from w only for comparisons).
func evalBin(op Op, w, opw uint8, x, y uint64) uint64 {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return (x + y) & Mask(w)
	case OpSub:
		return (x - y) & Mask(w)
	case OpMul:
		return (x * y) & Mask(w)
	case OpUDiv:
		if y == 0 {
			return x
		}
		return (x / y) & Mask(w)
	case OpSDiv:
		if y == 0 {
			return x
		}
		sx, sy := signExtend(x, opw), signExtend(y, opw)
		if sx == -(1<<(opw-1)) && sy == -1 {
			return x // overflow case: INT_MIN / -1 wraps to INT_MIN
		}
		return uint64(sx/sy) & Mask(w)
	case OpURem:
		if y == 0 {
			return x
		}
		return (x % y) & Mask(w)
	case OpSRem:
		if y == 0 {
			return x
		}
		sx, sy := signExtend(x, opw), signExtend(y, opw)
		if sx == -(1<<(opw-1)) && sy == -1 {
			return 0
		}
		return uint64(sx%sy) & Mask(w)
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		if y >= uint64(w) {
			return 0
		}
		return (x << y) & Mask(w)
	case OpLShr:
		if y >= uint64(w) {
			return 0
		}
		return x >> y
	case OpAShr:
		if y >= uint64(w) {
			if signExtend(x, w) < 0 {
				return Mask(w)
			}
			return 0
		}
		return uint64(signExtend(x, w)>>y) & Mask(w)
	case OpConcat:
		return 0 // handled by caller; Concat needs operand widths
	case OpEq:
		return b(x == y)
	case OpNe:
		return b(x != y)
	case OpUlt:
		return b(x < y)
	case OpUle:
		return b(x <= y)
	case OpSlt:
		return b(signExtend(x, opw) < signExtend(y, opw))
	case OpSle:
		return b(signExtend(x, opw) <= signExtend(y, opw))
	}
	panic("bitvec: evalBin: bad op " + op.Name())
}
