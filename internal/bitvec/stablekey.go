package bitvec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// stableKeyVersion is baked into every hash so a change to the key
// derivation (or to the Op numbering it captures) invalidates all
// previously persisted keys instead of silently colliding with them.
// Bump it whenever the encoding below or the Op enum changes.
const stableKeyVersion = 1

// StableKey returns a canonical, content-derived key for the
// expression: the hex form of a 128-bit Merkle hash over its
// structural shape (operation, width, payload, operand keys).
//
// Key is the right cache key inside one process — it derives from the
// interner ID, so it is O(1) but means nothing to any other process.
// StableKey is the serializable counterpart: two processes that build
// the same term compute the same StableKey, which is what the
// persisted solver-memo snapshot (internal/smt) is keyed on. Results
// are memoised per interned node, so repeated calls amortise to one
// shard-map lookup.
func (e *Expr) StableKey() string {
	if e.id != 0 {
		if k, ok := cachedStableKey(e.id); ok {
			return k
		}
	}
	h := sha256.New()
	var buf [40]byte
	b := buf[:0]
	b = append(b, stableKeyVersion, byte(e.Op), e.W, e.Hi, e.Lo)
	b = binary.LittleEndian.AppendUint64(b, e.Val)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.Off)))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(e.Name)))
	h.Write(b)
	h.Write([]byte(e.Name))
	for _, o := range e.Operands() {
		h.Write([]byte(o.StableKey()))
	}
	sum := h.Sum(nil)
	k := hex.EncodeToString(sum[:16])
	if e.id != 0 {
		storeStableKey(e.id, k)
	}
	return k
}
