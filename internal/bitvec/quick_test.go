package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// rawClone rebuilds e as a structurally identical but un-interned tree
// (hand-built struct literals, id 0), the way no production code
// constructs expressions. The interned-vs-raw property tests below pin
// that hash-consing is purely an identity optimisation: evaluation,
// simplification and rendering cannot tell the two apart.
func rawClone(e *Expr) *Expr {
	c := &Expr{
		Op: e.Op, W: e.W, Val: e.Val, Name: e.Name,
		Off: e.Off, Hi: e.Hi, Lo: e.Lo,
	}
	if e.X != nil {
		c.X = rawClone(e.X)
	}
	if e.Y != nil {
		c.Y = rawClone(e.Y)
	}
	if e.Y2 != nil {
		c.Y2 = rawClone(e.Y2)
	}
	return c
}

// TestQuickInternedVsRawEvaluation: an interned expression and its raw
// clone evaluate identically under random environments.
func TestQuickInternedVsRawEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		e := randExpr(rng, 5, propFields)
		raw := rawClone(e)
		if raw.ID() != 0 || e.ID() == 0 {
			t.Fatalf("iteration %d: clone interned (%d) or original not (%d)", i, raw.ID(), e.ID())
		}
		env := randEnv(rng)
		want, err1 := Eval(e, env)
		got, err2 := Eval(raw, env)
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("iteration %d: interned %d (%v) != raw %d (%v) for %s",
				i, want, err1, got, err2, e)
		}
	}
}

// TestQuickInternedVsRawSimplify: Simplify of the raw clone and of the
// interned original produce the same expression (String-identical) with
// the same semantics — the memoised simplification path and the
// structural path agree.
func TestQuickInternedVsRawSimplify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		e := randExpr(rng, 5, propFields)
		raw := rawClone(e)
		se, sr := Simplify(e), Simplify(raw)
		if se.String() != sr.String() {
			t.Fatalf("iteration %d: Simplify diverges on %s:\n  interned: %s\n  raw:      %s",
				i, e, se, sr)
		}
		env := randEnv(rng)
		want, err1 := Eval(e, env)
		got, err2 := Eval(sr, env)
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("iteration %d: raw Simplify changed semantics of %s: %d (%v) != %d (%v)",
				i, e, want, err1, got, err2)
		}
	}
}

// TestQuickInternedVsRawString: rendering is identical, and structural
// equality holds across the interned/raw boundary in both directions.
func TestQuickInternedVsRawString(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		e := randExpr(rng, 5, propFields)
		raw := rawClone(e)
		if e.String() != raw.String() {
			t.Fatalf("iteration %d: String diverges:\n  interned: %s\n  raw:      %s", i, e, raw)
		}
		if !Equal(e, raw) || !Equal(raw, e) {
			t.Fatalf("iteration %d: Equal(interned, raw) = false for %s", i, e)
		}
		if e.OpCount() != raw.OpCount() || e.Size() != raw.Size() {
			t.Fatalf("iteration %d: size metrics diverge for %s", i, e)
		}
	}
}

// TestQuickInterningCanonical: constructing the same expression twice
// yields the same pointer with the same stable ID, and the canonical
// Key of the interned node matches across constructions while
// differing from the raw clone's structural key only in spelling
// (both must be self-consistent).
func TestQuickInterningCanonical(t *testing.T) {
	rng1 := rand.New(rand.NewSource(17))
	rng2 := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		a := randExpr(rng1, 4, propFields)
		b := randExpr(rng2, 4, propFields)
		if a != b {
			t.Fatalf("iteration %d: identical construction not pointer-equal: %s", i, a)
		}
		if a.ID() == 0 || a.ID() != b.ID() {
			t.Fatalf("iteration %d: IDs diverge: %d vs %d", i, a.ID(), b.ID())
		}
		if a.Key() != b.Key() {
			t.Fatalf("iteration %d: canonical keys diverge", i)
		}
		raw := rawClone(a)
		if raw.Key() == a.Key() {
			t.Fatalf("iteration %d: raw structural key collides with ID key %q", i, a.Key())
		}
	}
}

// Property: extracting the two halves of a value and concatenating
// them reconstitutes the value, for every width split.
func TestQuickConcatExtractRoundTrip(t *testing.T) {
	prop := func(v uint64, split uint8) bool {
		k := split%62 + 1 // split point in [1, 62]
		w := uint8(64)
		x := Const(w, v)
		hi := Extract(w-1, k, x)
		lo := Extract(k-1, 0, x)
		got, err := Eval(Concat(hi, lo), MapEnv{})
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Simplify is semantics-preserving on the shift/mask/or
// endianness pattern for arbitrary field values and widths.
func TestQuickEndiannessPattern(t *testing.T) {
	prop := func(v uint16) bool {
		f := Field("f", 16, 0)
		lo := And(f, Const(16, 0x00FF))
		hi := LShr(And(f, Const(16, 0xFF00)), Const(16, 8))
		read := Or(Shl(hi, Const(16, 8)), lo)
		env := MapEnv{Fields: map[string]uint64{"f": uint64(v)}}
		a, err1 := Eval(read, env)
		b, err2 := Eval(Simplify(read), env)
		return err1 == nil && err2 == nil && a == b && a == uint64(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: masking commutes with evaluation — a Const holds exactly
// its masked value at every width.
func TestQuickConstMasking(t *testing.T) {
	prop := func(v uint64, w8 uint8) bool {
		w := w8%64 + 1
		c := Const(w, v)
		got, err := Eval(c, MapEnv{})
		return err == nil && got == v&Mask(w) && c.Val == v&Mask(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: zero extension then truncation is the identity.
func TestQuickZExtTruncIdentity(t *testing.T) {
	prop := func(v uint32) bool {
		x := Const(32, uint64(v))
		e := Trunc(32, ZExt(64, x))
		got, err := Eval(e, MapEnv{})
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: sign extension agrees with Go's arithmetic.
func TestQuickSExtAgreesWithGo(t *testing.T) {
	prop := func(v int32) bool {
		x := Const(32, uint64(uint32(v)))
		got, err := Eval(SExt(64, x), MapEnv{})
		return err == nil && got == uint64(int64(v))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the width-64 arithmetic ops agree with Go's uint64
// arithmetic.
func TestQuickArithAgreesWithGo(t *testing.T) {
	prop := func(a, b uint64) bool {
		x, y := Const(64, a), Const(64, b)
		checks := []struct {
			e    *Expr
			want uint64
		}{
			{Add(x, y), a + b},
			{Sub(x, y), a - b},
			{Mul(x, y), a * b},
			{And(x, y), a & b},
			{Or(x, y), a | b},
			{Xor(x, y), a ^ b},
		}
		if b != 0 {
			checks = append(checks,
				struct {
					e    *Expr
					want uint64
				}{UDiv(x, y), a / b},
				struct {
					e    *Expr
					want uint64
				}{URem(x, y), a % b})
		}
		for _, c := range checks {
			got, err := Eval(c.e, MapEnv{})
			if err != nil || got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: OpCount of a Simplify result never exceeds rewriteBudget
// blowup and Simplify never changes the width.
func TestQuickSimplifyWidthStable(t *testing.T) {
	prop := func(v uint64, k uint8) bool {
		f := Field("f", 32, 0)
		e := Or(Shl(f, Const(32, uint64(k%40))), And(f, Const(32, v)))
		s := Simplify(e)
		return s.W == e.W
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
