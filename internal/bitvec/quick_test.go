package bitvec

import (
	"testing"
	"testing/quick"
)

// Property: extracting the two halves of a value and concatenating
// them reconstitutes the value, for every width split.
func TestQuickConcatExtractRoundTrip(t *testing.T) {
	prop := func(v uint64, split uint8) bool {
		k := split%62 + 1 // split point in [1, 62]
		w := uint8(64)
		x := Const(w, v)
		hi := Extract(w-1, k, x)
		lo := Extract(k-1, 0, x)
		got, err := Eval(Concat(hi, lo), MapEnv{})
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Simplify is semantics-preserving on the shift/mask/or
// endianness pattern for arbitrary field values and widths.
func TestQuickEndiannessPattern(t *testing.T) {
	prop := func(v uint16) bool {
		f := Field("f", 16, 0)
		lo := And(f, Const(16, 0x00FF))
		hi := LShr(And(f, Const(16, 0xFF00)), Const(16, 8))
		read := Or(Shl(hi, Const(16, 8)), lo)
		env := MapEnv{Fields: map[string]uint64{"f": uint64(v)}}
		a, err1 := Eval(read, env)
		b, err2 := Eval(Simplify(read), env)
		return err1 == nil && err2 == nil && a == b && a == uint64(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: masking commutes with evaluation — a Const holds exactly
// its masked value at every width.
func TestQuickConstMasking(t *testing.T) {
	prop := func(v uint64, w8 uint8) bool {
		w := w8%64 + 1
		c := Const(w, v)
		got, err := Eval(c, MapEnv{})
		return err == nil && got == v&Mask(w) && c.Val == v&Mask(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: zero extension then truncation is the identity.
func TestQuickZExtTruncIdentity(t *testing.T) {
	prop := func(v uint32) bool {
		x := Const(32, uint64(v))
		e := Trunc(32, ZExt(64, x))
		got, err := Eval(e, MapEnv{})
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: sign extension agrees with Go's arithmetic.
func TestQuickSExtAgreesWithGo(t *testing.T) {
	prop := func(v int32) bool {
		x := Const(32, uint64(uint32(v)))
		got, err := Eval(SExt(64, x), MapEnv{})
		return err == nil && got == uint64(int64(v))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the width-64 arithmetic ops agree with Go's uint64
// arithmetic.
func TestQuickArithAgreesWithGo(t *testing.T) {
	prop := func(a, b uint64) bool {
		x, y := Const(64, a), Const(64, b)
		checks := []struct {
			e    *Expr
			want uint64
		}{
			{Add(x, y), a + b},
			{Sub(x, y), a - b},
			{Mul(x, y), a * b},
			{And(x, y), a & b},
			{Or(x, y), a | b},
			{Xor(x, y), a ^ b},
		}
		if b != 0 {
			checks = append(checks,
				struct {
					e    *Expr
					want uint64
				}{UDiv(x, y), a / b},
				struct {
					e    *Expr
					want uint64
				}{URem(x, y), a % b})
		}
		for _, c := range checks {
			got, err := Eval(c.e, MapEnv{})
			if err != nil || got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: OpCount of a Simplify result never exceeds rewriteBudget
// blowup and Simplify never changes the width.
func TestQuickSimplifyWidthStable(t *testing.T) {
	prop := func(v uint64, k uint8) bool {
		f := Field("f", 32, 0)
		e := Or(Shl(f, Const(32, uint64(k%40))), And(f, Const(32, v)))
		s := Simplify(e)
		return s.W == e.W
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
