// Package bitvec implements the application-independent symbolic
// bitvector expression language that Code Phage uses to represent
// excised checks. Expressions are trees whose leaves are constants,
// symbolic input fields (produced by the hachoir dissectors or raw-mode
// byte labels), or — after translation — references to recipient
// program paths. Interior nodes are fixed-width bitvector operations
// mirroring the VM instruction set.
//
// Expressions are immutable: constructors may return shared subtrees,
// so callers must never mutate an Expr after construction.
package bitvec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op identifies the operation at an expression node.
type Op uint8

// Expression operations. Comparison operations produce width-1 results.
const (
	OpInvalid Op = iota

	// Leaves.
	OpConst // Val, width W
	OpField // symbolic input field Name covering input bytes [Off, Off+W/8)
	OpRef   // recipient program path (after Rewrite); Name is the path

	// Unary.
	OpNot  // bitwise complement
	OpNeg  // two's complement negation
	OpZExt // zero extend X to width W
	OpSExt // sign extend X to width W
	OpBool // 1 if X != 0 else 0 (width 1)
	OpLNot // 1 if X == 0 else 0 (width 1)
	OpExtr // bits [Lo, Hi] of X, width Hi-Lo+1

	// Binary arithmetic / logic. Operand widths equal result width W.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl  // X << Y (Y same width; shifts >= W yield 0)
	OpLShr // logical right shift
	OpAShr // arithmetic right shift

	// Concat: X is the high part, Y the low part; W = X.W + Y.W.
	OpConcat

	// Comparisons: width-1 result, operands share a width.
	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle

	// Ite: X (width 1) selects Y (then) or Z-as-Y2 (else). Encoded with
	// Y = then, Y2 = else.
	OpIte
)

var opNames = map[Op]string{
	OpConst: "Constant", OpField: "HachField", OpRef: "Ref",
	OpNot: "BvNot", OpNeg: "Neg", OpZExt: "ToSize", OpSExt: "SExt",
	OpBool: "Bool", OpLNot: "LNot", OpExtr: "Extract",
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul",
	OpUDiv: "Div", OpSDiv: "SDiv", OpURem: "Rem", OpSRem: "SRem",
	OpAnd: "BvAnd", OpOr: "BvOr", OpXor: "BvXor",
	OpShl: "Shl", OpLShr: "UShr", OpAShr: "SShr",
	OpConcat: "Concat",
	OpEq:     "Equal", OpNe: "NotEqual",
	OpUlt: "ULess", OpUle: "ULessEqual",
	OpSlt: "SLess", OpSle: "SLessEqual",
	OpIte: "Ite",
}

// Name returns the paper-style mnemonic for the operation.
func (op Op) Name() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsLeaf reports whether the operation is a leaf (no operands).
func (op Op) IsLeaf() bool { return op == OpConst || op == OpField || op == OpRef }

// IsCmp reports whether the operation is a comparison producing width 1.
func (op Op) IsCmp() bool { return op >= OpEq && op <= OpSle }

// Expr is one node of a symbolic bitvector expression tree. Nodes
// built through the package constructors are hash-consed: structurally
// equal terms share one interned node with a stable nonzero ID (see
// intern.go), making Equal and Key O(1) and letting the solver stack
// memoise work per node.
type Expr struct {
	Op   Op
	W    uint8  // result width in bits (1..64)
	Val  uint64 // OpConst value (masked to W bits)
	Name string // OpField path or OpRef recipient path
	Off  int    // OpField: input byte offset of the field's first byte
	Hi   uint8  // OpExtr high bit (inclusive)
	Lo   uint8  // OpExtr low bit
	X    *Expr  // first operand
	Y    *Expr  // second operand
	Y2   *Expr  // OpIte else branch

	id uint64 // interner node ID (0 = un-interned)
}

// Mask returns the bitmask selecting the low w bits.
func Mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func checkWidth(w uint8) {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("bitvec: invalid width %d", w))
	}
}

// Const returns a constant of width w. The value is masked to w bits.
func Const(w uint8, v uint64) *Expr {
	checkWidth(w)
	return intern(&Expr{Op: OpConst, W: w, Val: v & Mask(w)})
}

// Bool1 returns a width-1 constant for b.
func Bool1(b bool) *Expr {
	if b {
		return Const(1, 1)
	}
	return Const(1, 0)
}

// Field returns a symbolic input field of width w whose first byte is at
// input offset off. Raw-mode byte labels use Field(fmt.Sprintf("@%d", off), 8, off).
func Field(name string, w uint8, off int) *Expr {
	checkWidth(w)
	return intern(&Expr{Op: OpField, W: w, Name: name, Off: off})
}

// Ref returns a reference to a recipient program path (used only in
// translated expressions produced by the Rewrite algorithm).
func Ref(path string, w uint8) *Expr {
	checkWidth(w)
	return intern(&Expr{Op: OpRef, W: w, Name: path})
}

// RawByteName returns the raw-mode field name for an input byte offset.
func RawByteName(off int) string { return fmt.Sprintf("@%d", off) }

func un(op Op, w uint8, x *Expr) *Expr {
	checkWidth(w)
	return intern(&Expr{Op: op, W: w, X: x})
}

func bin(op Op, w uint8, x, y *Expr) *Expr {
	checkWidth(w)
	if x.W != y.W && op != OpConcat {
		panic(fmt.Sprintf("bitvec: %s operand width mismatch %d vs %d", op.Name(), x.W, y.W))
	}
	return intern(&Expr{Op: op, W: w, X: x, Y: y})
}

// Not returns the bitwise complement of x.
func Not(x *Expr) *Expr { return un(OpNot, x.W, x) }

// Neg returns the two's-complement negation of x.
func Neg(x *Expr) *Expr { return un(OpNeg, x.W, x) }

// ZExt zero-extends x to width w (w >= x.W).
func ZExt(w uint8, x *Expr) *Expr {
	if w < x.W {
		panic(fmt.Sprintf("bitvec: ZExt to narrower width %d < %d", w, x.W))
	}
	if w == x.W {
		return x
	}
	return un(OpZExt, w, x)
}

// SExt sign-extends x to width w (w >= x.W).
func SExt(w uint8, x *Expr) *Expr {
	if w < x.W {
		panic(fmt.Sprintf("bitvec: SExt to narrower width %d < %d", w, x.W))
	}
	if w == x.W {
		return x
	}
	return un(OpSExt, w, x)
}

// Trunc truncates x to its low w bits (w <= x.W).
func Trunc(w uint8, x *Expr) *Expr {
	if w > x.W {
		panic(fmt.Sprintf("bitvec: Trunc to wider width %d > %d", w, x.W))
	}
	if w == x.W {
		return x
	}
	return Extract(w-1, 0, x)
}

// Extract returns bits [lo, hi] of x as a value of width hi-lo+1.
func Extract(hi, lo uint8, x *Expr) *Expr {
	if hi < lo || hi >= x.W {
		panic(fmt.Sprintf("bitvec: Extract [%d,%d] out of range for width %d", hi, lo, x.W))
	}
	if lo == 0 && hi == x.W-1 {
		return x
	}
	checkWidth(hi - lo + 1)
	return intern(&Expr{Op: OpExtr, W: hi - lo + 1, Hi: hi, Lo: lo, X: x})
}

// BoolOf returns a width-1 expression that is 1 iff x is nonzero.
func BoolOf(x *Expr) *Expr {
	if x.W == 1 {
		return x
	}
	return un(OpBool, 1, x)
}

// LNot returns a width-1 expression that is 1 iff x is zero.
func LNot(x *Expr) *Expr { return un(OpLNot, 1, x) }

// Add returns x + y (same width).
func Add(x, y *Expr) *Expr { return bin(OpAdd, x.W, x, y) }

// Sub returns x - y.
func Sub(x, y *Expr) *Expr { return bin(OpSub, x.W, x, y) }

// Mul returns x * y.
func Mul(x, y *Expr) *Expr { return bin(OpMul, x.W, x, y) }

// UDiv returns the unsigned quotient x / y (x when y == 0, matching the VM trap-free symbolic semantics; concrete division by zero traps in the VM before any symbolic value is consumed).
func UDiv(x, y *Expr) *Expr { return bin(OpUDiv, x.W, x, y) }

// SDiv returns the signed quotient.
func SDiv(x, y *Expr) *Expr { return bin(OpSDiv, x.W, x, y) }

// URem returns the unsigned remainder.
func URem(x, y *Expr) *Expr { return bin(OpURem, x.W, x, y) }

// SRem returns the signed remainder.
func SRem(x, y *Expr) *Expr { return bin(OpSRem, x.W, x, y) }

// And returns x & y.
func And(x, y *Expr) *Expr { return bin(OpAnd, x.W, x, y) }

// Or returns x | y.
func Or(x, y *Expr) *Expr { return bin(OpOr, x.W, x, y) }

// Xor returns x ^ y.
func Xor(x, y *Expr) *Expr { return bin(OpXor, x.W, x, y) }

// Shl returns x << y; shift amounts >= width yield zero.
func Shl(x, y *Expr) *Expr { return bin(OpShl, x.W, x, y) }

// LShr returns the logical right shift x >> y.
func LShr(x, y *Expr) *Expr { return bin(OpLShr, x.W, x, y) }

// AShr returns the arithmetic right shift.
func AShr(x, y *Expr) *Expr { return bin(OpAShr, x.W, x, y) }

// ShlK shifts x left by the constant k.
func ShlK(x *Expr, k uint8) *Expr { return Shl(x, Const(x.W, uint64(k))) }

// LShrK logically shifts x right by the constant k.
func LShrK(x *Expr, k uint8) *Expr { return LShr(x, Const(x.W, uint64(k))) }

// Concat returns the concatenation with x as the high bits and y low.
func Concat(x, y *Expr) *Expr {
	w := int(x.W) + int(y.W)
	if w > 64 {
		panic(fmt.Sprintf("bitvec: Concat width %d > 64", w))
	}
	return bin(OpConcat, uint8(w), x, y)
}

// Eq returns the width-1 comparison x == y.
func Eq(x, y *Expr) *Expr { return bin(OpEq, 1, x, y) }

// Ne returns x != y.
func Ne(x, y *Expr) *Expr { return bin(OpNe, 1, x, y) }

// Ult returns the unsigned comparison x < y.
func Ult(x, y *Expr) *Expr { return bin(OpUlt, 1, x, y) }

// Ule returns the unsigned comparison x <= y.
func Ule(x, y *Expr) *Expr { return bin(OpUle, 1, x, y) }

// Slt returns the signed comparison x < y.
func Slt(x, y *Expr) *Expr { return bin(OpSlt, 1, x, y) }

// Sle returns the signed comparison x <= y.
func Sle(x, y *Expr) *Expr { return bin(OpSle, 1, x, y) }

// Ite returns cond ? then : els. then and els share a width.
func Ite(cond, then, els *Expr) *Expr {
	if cond.W != 1 {
		panic("bitvec: Ite condition must have width 1")
	}
	if then.W != els.W {
		panic("bitvec: Ite branch width mismatch")
	}
	return intern(&Expr{Op: OpIte, W: then.W, X: cond, Y: then, Y2: els})
}

// Operands returns the node's operand slice in order.
func (e *Expr) Operands() []*Expr {
	switch {
	case e.Op == OpIte:
		return []*Expr{e.X, e.Y, e.Y2}
	case e.Y != nil:
		return []*Expr{e.X, e.Y}
	case e.X != nil:
		return []*Expr{e.X}
	}
	return nil
}

// OpCount returns the number of operation (non-leaf) nodes in the tree.
// This is the metric reported in Figure 8's Check Size column.
func (e *Expr) OpCount() int {
	if e.Op.IsLeaf() {
		return 0
	}
	n := 1
	for _, o := range e.Operands() {
		n += o.OpCount()
	}
	return n
}

// Size returns the total number of nodes including leaves.
func (e *Expr) Size() int {
	n := 1
	for _, o := range e.Operands() {
		n += o.Size()
	}
	return n
}

// Walk calls fn for every node in the tree, parents before children.
func (e *Expr) Walk(fn func(*Expr)) {
	fn(e)
	for _, o := range e.Operands() {
		o.Walk(fn)
	}
}

// Fields returns the sorted set of input field names appearing in e.
// Results are memoised per interned node, so the hot callers (branch
// relevance checks, insertion-point analysis) pay the tree walk once.
func (e *Expr) Fields() []string {
	if f, ok := cachedFields(e); ok {
		return f
	}
	set := map[string]bool{}
	e.Walk(func(n *Expr) {
		if n.Op == OpField {
			set[n.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	storeFields(e, append([]string(nil), out...))
	return out
}

// ByteDeps returns the sorted set of input byte offsets e depends on,
// memoised per interned node (the solver's disjointness prefilter and
// the taint trackers call this on every query/branch).
func (e *Expr) ByteDeps() []int {
	if d, ok := cachedByteDeps(e); ok {
		return d
	}
	set := map[int]bool{}
	e.Walk(func(n *Expr) {
		if n.Op == OpField {
			for i := 0; i < int(n.W+7)/8; i++ {
				set[n.Off+i] = true
			}
		}
	})
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	storeByteDeps(e, append([]int(nil), out...))
	return out
}

// HasRef reports whether the tree contains any OpRef leaf.
func (e *Expr) HasRef() bool {
	found := false
	e.Walk(func(n *Expr) {
		if n.Op == OpRef {
			found = true
		}
	})
	return found
}

// Equal reports structural equality of two expressions. On interned
// nodes (the common case) this is an O(1) ID comparison.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.id != 0 && b.id != 0 {
		// Interned nodes are canonical: structural equality is pointer
		// equality, already ruled out above.
		return false
	}
	if a.Op != b.Op || a.W != b.W || a.Val != b.Val || a.Name != b.Name ||
		a.Off != b.Off || a.Hi != b.Hi || a.Lo != b.Lo {
		return false
	}
	return Equal(a.X, b.X) && Equal(a.Y, b.Y) && Equal(a.Y2, b.Y2)
}

// Key returns a canonical string key for caching (structural
// identity, valid within this process). Interned nodes answer in O(1)
// from their stable ID; un-interned nodes fall back to the full
// structural rendering (which never collides with the ID form).
func (e *Expr) Key() string {
	if e.id != 0 {
		return "#" + strconv.FormatUint(e.id, 36)
	}
	var sb strings.Builder
	e.writeKey(&sb)
	return sb.String()
}

func (e *Expr) writeKey(sb *strings.Builder) {
	fmt.Fprintf(sb, "(%d:%d", uint8(e.Op), e.W)
	switch e.Op {
	case OpConst:
		fmt.Fprintf(sb, ":%d", e.Val)
	case OpField:
		fmt.Fprintf(sb, ":%s@%d", e.Name, e.Off)
	case OpRef:
		fmt.Fprintf(sb, ":%s", e.Name)
	case OpExtr:
		fmt.Fprintf(sb, ":%d:%d", e.Hi, e.Lo)
	}
	for _, o := range e.Operands() {
		o.writeKey(sb)
	}
	sb.WriteByte(')')
}
