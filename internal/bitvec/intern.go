package bitvec

// This file implements hash-consed expression construction: every
// expression built through the package constructors is interned in a
// sharded structural table, so structurally equal terms are one shared
// node with a stable ID. Interning is what makes the constraint
// substrate cheap engine-wide:
//
//   - Equal is O(1) on interned nodes (ID comparison),
//   - Key is O(1) (the canonical cache key is derived from the ID),
//   - Simplify results are memoised per node, so the taint trackers,
//     check discovery and the solver front end never re-simplify a
//     term the process has seen before,
//   - the SMT blaster memoises CNF per node ID across queries.
//
// The table is append-only and capped: past internTableCap live nodes
// per shard, new terms are returned un-interned (ID 0) and every
// consumer falls back to structural identity. That keeps adversarial
// workloads (fuzzers, runaway shadow expressions) from growing the
// table without bound while preserving the pointer-equality guarantee
// for everything actually interned.

import (
	"sync"
)

// internKey is the structural identity of a node whose operands are
// already interned: the per-node payload plus the operand IDs.
type internKey struct {
	op       Op
	w        uint8
	hi, lo   uint8
	val      uint64
	off      int
	name     string
	x, y, y2 uint64 // operand IDs (0 = absent)
}

const (
	internShards = 64
	// internShardCap bounds each shard (so ~2M nodes process-wide).
	internShardCap = 1 << 15
)

type internShard struct {
	mu    sync.Mutex
	nodes map[internKey]*Expr
	// simplified memoises Simplify per interned node ID of this shard's
	// nodes: id -> fully simplified (and itself interned) expression.
	simplified map[uint64]*Expr
	// byteDeps memoises ByteDeps per interned node ID.
	byteDeps map[uint64][]int
	// fields memoises Fields per interned node ID.
	fields map[uint64][]string
	// stableKeys memoises StableKey per interned node ID.
	stableKeys map[uint64]string

	// nextID hands out this shard's ID arithmetic progression
	// (shard index + 1, stepping by internShards): residues are
	// disjoint across shards, so IDs are unique without any global
	// synchronisation — constructor hot paths touch only shard state.
	nextID uint64

	// Counters live per shard for the same reason: constructor-rate
	// atomics on one cache line were a measurable contention point in
	// concurrent batches.
	hits           int64
	misses         int64
	overflow       int64
	simplifyHits   int64
	simplifyMisses int64
}

// internTab is a var initializer (not an init func) so package-level
// expression constants in other files — and in tests — can build
// interned terms during their own initialization: Go's dependency
// analysis orders this before any initializer that calls a
// constructor.
var internTab = func() (tab [internShards]*internShard) {
	for i := range tab {
		tab[i] = &internShard{
			nodes:      map[internKey]*Expr{},
			simplified: map[uint64]*Expr{},
			byteDeps:   map[uint64][]int{},
			fields:     map[uint64][]string{},
			stableKeys: map[uint64]string{},
			nextID:     uint64(i) + 1,
		}
	}
	return tab
}()

// InternStats is a point-in-time view of the interner, exported for
// the phaged /metrics endpoint.
type InternStats struct {
	// Terms is the number of live interned nodes.
	Terms int64
	// Hits counts constructor calls answered by an existing node.
	Hits int64
	// Misses counts constructor calls that interned a new node.
	Misses int64
	// Overflow counts constructor calls past the table cap that
	// returned an un-interned node.
	Overflow int64
	// SimplifyHits / SimplifyMisses count the memoised-simplification
	// cache.
	SimplifyHits   int64
	SimplifyMisses int64
}

// Interned returns the interner counters.
func Interned() InternStats {
	var st InternStats
	for _, sh := range internTab {
		sh.mu.Lock()
		st.Terms += int64(len(sh.nodes))
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Overflow += sh.overflow
		st.SimplifyHits += sh.simplifyHits
		st.SimplifyMisses += sh.simplifyMisses
		sh.mu.Unlock()
	}
	return st
}

// ID returns the node's stable interner ID (0 for an un-interned node,
// which only occurs past the table cap or for hand-built test nodes).
// Interned nodes are canonical: two expressions with the same nonzero
// ID are the same pointer.
func (e *Expr) ID() uint64 { return e.id }

// keyOf assembles the structural key. ok is false when any operand is
// un-interned (the parent then cannot be interned either).
func keyOf(e *Expr) (internKey, bool) {
	k := internKey{
		op: e.Op, w: e.W, hi: e.Hi, lo: e.Lo,
		val: e.Val, off: e.Off, name: e.Name,
	}
	if e.X != nil {
		if e.X.id == 0 {
			return k, false
		}
		k.x = e.X.id
	}
	if e.Y != nil {
		if e.Y.id == 0 {
			return k, false
		}
		k.y = e.Y.id
	}
	if e.Y2 != nil {
		if e.Y2.id == 0 {
			return k, false
		}
		k.y2 = e.Y2.id
	}
	return k, true
}

func shardOf(k internKey) *internShard {
	// FNV-style fold over the discriminating fields; the string hash is
	// cheap because leaf names are short.
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.op)<<24 | uint64(k.w)<<16 | uint64(k.hi)<<8 | uint64(k.lo))
	mix(k.val)
	mix(uint64(k.off))
	mix(k.x)
	mix(k.y)
	mix(k.y2)
	for i := 0; i < len(k.name); i++ {
		mix(uint64(k.name[i]))
	}
	return internTab[h%internShards]
}

// intern returns the canonical node for e, assigning a fresh ID when e
// is structurally new. The argument must be freshly built and not yet
// shared: intern either returns it (now owned by the table) or an
// existing equal node.
func intern(e *Expr) *Expr {
	k, ok := keyOf(e)
	if !ok {
		sh := shardOf(k)
		sh.mu.Lock()
		sh.overflow++
		sh.mu.Unlock()
		return e
	}
	sh := shardOf(k)
	sh.mu.Lock()
	if old, found := sh.nodes[k]; found {
		sh.hits++
		sh.mu.Unlock()
		return old
	}
	if len(sh.nodes) >= internShardCap {
		sh.overflow++
		sh.mu.Unlock()
		return e
	}
	e.id = sh.nextID
	sh.nextID += internShards
	sh.nodes[k] = e
	sh.misses++
	sh.mu.Unlock()
	return e
}

// shardOfID routes a node ID to the shard holding its memo entries.
// Memo entries may land on any shard; using the ID keeps the mapping
// stable and contention spread.
func shardOfID(id uint64) *internShard { return internTab[id%internShards] }

// cachedSimplify returns the memoised simplification of an interned
// node, when present.
func cachedSimplify(e *Expr) (*Expr, bool) {
	if e.id == 0 {
		return nil, false
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	s, ok := sh.simplified[e.id]
	if ok {
		sh.simplifyHits++
	}
	sh.mu.Unlock()
	return s, ok
}

// storeSimplify records a fully simplified form for an interned node.
func storeSimplify(e, s *Expr) {
	if e.id == 0 {
		return
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	sh.simplifyMisses++
	sh.simplified[e.id] = s
	sh.mu.Unlock()
}

// Rebuild returns a node like e with the given operands (in Operands
// order), constructed through the interning constructors. Operand
// count and widths must match e's shape. Callers use this instead of
// copying Expr structs, which would bypass interning.
func Rebuild(e *Expr, ops []*Expr) *Expr {
	switch e.Op {
	case OpConst, OpField, OpRef:
		return e
	case OpNot:
		return Not(ops[0])
	case OpNeg:
		return Neg(ops[0])
	case OpZExt:
		return ZExt(e.W, ops[0])
	case OpSExt:
		return SExt(e.W, ops[0])
	case OpBool:
		return BoolOf(ops[0])
	case OpLNot:
		return LNot(ops[0])
	case OpExtr:
		return Extract(e.Hi, e.Lo, ops[0])
	case OpAdd:
		return Add(ops[0], ops[1])
	case OpSub:
		return Sub(ops[0], ops[1])
	case OpMul:
		return Mul(ops[0], ops[1])
	case OpUDiv:
		return UDiv(ops[0], ops[1])
	case OpSDiv:
		return SDiv(ops[0], ops[1])
	case OpURem:
		return URem(ops[0], ops[1])
	case OpSRem:
		return SRem(ops[0], ops[1])
	case OpAnd:
		return And(ops[0], ops[1])
	case OpOr:
		return Or(ops[0], ops[1])
	case OpXor:
		return Xor(ops[0], ops[1])
	case OpShl:
		return Shl(ops[0], ops[1])
	case OpLShr:
		return LShr(ops[0], ops[1])
	case OpAShr:
		return AShr(ops[0], ops[1])
	case OpConcat:
		return Concat(ops[0], ops[1])
	case OpEq:
		return Eq(ops[0], ops[1])
	case OpNe:
		return Ne(ops[0], ops[1])
	case OpUlt:
		return Ult(ops[0], ops[1])
	case OpUle:
		return Ule(ops[0], ops[1])
	case OpSlt:
		return Slt(ops[0], ops[1])
	case OpSle:
		return Sle(ops[0], ops[1])
	case OpIte:
		return Ite(ops[0], ops[1], ops[2])
	}
	panic("bitvec: Rebuild: unsupported op " + e.Op.Name())
}

// cachedByteDeps returns (a copy of) the memoised byte dependencies.
func cachedByteDeps(e *Expr) ([]int, bool) {
	if e.id == 0 {
		return nil, false
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	d, ok := sh.byteDeps[e.id]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return append([]int(nil), d...), true
}

func storeByteDeps(e *Expr, deps []int) {
	if e.id == 0 {
		return
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	sh.byteDeps[e.id] = deps
	sh.mu.Unlock()
}

// cachedFields returns (a copy of) the memoised field name set.
func cachedFields(e *Expr) ([]string, bool) {
	if e.id == 0 {
		return nil, false
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	f, ok := sh.fields[e.id]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return append([]string(nil), f...), true
}

// cachedStableKey returns the memoised StableKey of an interned node.
func cachedStableKey(id uint64) (string, bool) {
	sh := shardOfID(id)
	sh.mu.Lock()
	k, ok := sh.stableKeys[id]
	sh.mu.Unlock()
	return k, ok
}

func storeStableKey(id uint64, k string) {
	sh := shardOfID(id)
	sh.mu.Lock()
	sh.stableKeys[id] = k
	sh.mu.Unlock()
}

func storeFields(e *Expr, fields []string) {
	if e.id == 0 {
		return
	}
	sh := shardOfID(e.id)
	sh.mu.Lock()
	sh.fields[e.id] = fields
	sh.mu.Unlock()
}
