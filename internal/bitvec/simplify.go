package bitvec

// This file implements the symbolic expression optimisations of
// Section 3.2: constant folding, algebraic identities, and the
// Figure 5 bit-manipulation rewrite rules that disentangle adjacent
// input bytes combined by shift/mask/or sequences (endianness
// conversion, SSE-style packing). The central mechanism is the
// reduction of shift/mask/or patterns to Extract/Concat form, where
// byte-reassembly is a local structural rule:
//
//	ShrinkH(8,Shl(8,[b1,b2]))   => b2      (Extract of Concat)
//	ShrinkL(8,Shr(8,[b1,b2]))   => b1      (Extract of Concat)
//	BvOrH(b1,Shr(8,[b2,b3]))    => [b1,b2] (Or-disentangle to Concat)
//	BvOrL(b1,Shl(8,[b2,b3]))    => [b3,b1] (Or-disentangle to Concat)
//
// and similar rules for the other 8/16/32/64-bit combinations.

// rewriteBudget bounds the number of rewrite steps per Simplify call to
// guarantee termination even if a rule pair were to oscillate. It is a
// safety net, not a cost bound, and is sized far past anything the
// tracker can produce (shadow expressions cap at 50000 nodes): a call
// that exhausts it returns a partial — still semantics-preserving —
// form and skips the memo, so only a pathological oscillating input
// could ever observe the budget, and ordinary expressions simplify
// identically whether or not the per-node memo is warm.
const rewriteBudget = 1 << 20

// Simplify returns a simplified expression equivalent to e. The input
// is never mutated; subtrees may be shared between input and output.
// Results are memoised per interned node, so repeated simplification
// of terms the process has already seen (taint trackers re-recording a
// branch, the solver canonicalising a repeated query) is O(1).
func Simplify(e *Expr) *Expr {
	budget := rewriteBudget
	return simplify(e, &budget)
}

func simplify(e *Expr, budget *int) *Expr {
	if e.Op.IsLeaf() {
		return e
	}
	if s, ok := cachedSimplify(e); ok {
		return s
	}
	ops := e.Operands()
	newOps := make([]*Expr, len(ops))
	changed := false
	for i, o := range ops {
		newOps[i] = simplify(o, budget)
		if newOps[i] != o {
			changed = true
		}
	}
	n := e
	if changed {
		n = rebuild(e, newOps)
	}
	for *budget > 0 {
		m, ok := simplifyNode(n)
		if !ok {
			// A fixpoint reached with budget remaining is the true
			// simplified form; memoise it. Budget-exhausted results are
			// partial and must not be cached.
			storeSimplify(e, n)
			return n
		}
		*budget--
		n = simplify(m, budget)
	}
	return n
}

// rebuild clones node e with the given operands through the interning
// constructors, so simplified nodes stay hash-consed.
func rebuild(e *Expr, ops []*Expr) *Expr { return Rebuild(e, ops) }

func constOf(e *Expr) (uint64, bool) {
	if e.Op == OpConst {
		return e.Val, true
	}
	return 0, false
}

func allConst(e *Expr) bool {
	if e.Op == OpConst {
		return true
	}
	if e.Op.IsLeaf() {
		return false
	}
	for _, o := range e.Operands() {
		if !allConst(o) {
			return false
		}
	}
	return true
}

// zeroMask returns the set of bits of e that are provably zero.
func zeroMask(e *Expr) uint64 {
	m := Mask(e.W)
	switch e.Op {
	case OpConst:
		return ^e.Val & m
	case OpZExt:
		low := zeroMask(e.X)
		return (^Mask(e.X.W) & m) | low
	case OpConcat:
		return (zeroMask(e.X)<<e.Y.W | zeroMask(e.Y)) & m
	case OpAnd:
		return (zeroMask(e.X) | zeroMask(e.Y)) & m
	case OpOr:
		return zeroMask(e.X) & zeroMask(e.Y)
	case OpXor:
		return zeroMask(e.X) & zeroMask(e.Y)
	case OpShl:
		if k, ok := constOf(e.Y); ok {
			if k >= uint64(e.W) {
				return m
			}
			return (zeroMask(e.X)<<k | Mask(uint8(k))) & m
		}
	case OpLShr:
		if k, ok := constOf(e.Y); ok {
			if k >= uint64(e.W) {
				return m
			}
			hi := ^(m >> k) & m
			return (zeroMask(e.X) >> k) | hi
		}
	case OpExtr:
		return (zeroMask(e.X) >> e.Lo) & m
	case OpBool, OpLNot:
		return 0
	}
	return 0
}

// trailingKnownZeros returns the number of low bits of e provably zero.
func trailingKnownZeros(e *Expr) uint8 {
	z := zeroMask(e)
	var n uint8
	for n < e.W && z&(uint64(1)<<n) != 0 {
		n++
	}
	return n
}

// leadingKnownZeros returns the number of high bits of e provably zero.
func leadingKnownZeros(e *Expr) uint8 {
	z := zeroMask(e)
	var n uint8
	for n < e.W && z&(uint64(1)<<(e.W-1-n)) != 0 {
		n++
	}
	return n
}

// isLowMask reports whether c is a contiguous mask of the low k bits
// within width w, returning k.
func isLowMask(c uint64, w uint8) (uint8, bool) {
	for k := uint8(1); k < w; k++ {
		if c == Mask(k) {
			return k, true
		}
	}
	return 0, false
}

// isHighMask reports whether c selects exactly bits [k, w-1], returning k.
func isHighMask(c uint64, w uint8) (uint8, bool) {
	for k := uint8(1); k < w; k++ {
		if c == (Mask(w) &^ Mask(k)) {
			return k, true
		}
	}
	return 0, false
}

// simplifyNode applies a single rewrite at the root of e. It assumes
// the operands are already simplified. It returns the rewritten node
// and whether a rewrite fired.
func simplifyNode(e *Expr) (*Expr, bool) {
	// Constant folding covers every operation uniformly.
	if !e.Op.IsLeaf() && allConst(e) {
		v, err := Eval(e, MapEnv{})
		if err == nil {
			return Const(e.W, v), true
		}
	}

	// Canonicalise constants to the right operand of commutative ops.
	switch e.Op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		if e.X.Op == OpConst && e.Y.Op != OpConst {
			return bin(e.Op, e.W, e.Y, e.X), true
		}
	}

	switch e.Op {
	case OpZExt:
		if e.X.Op == OpZExt {
			return ZExt(e.W, e.X.X), true
		}
	case OpSExt:
		if e.X.Op == OpSExt {
			return SExt(e.W, e.X.X), true
		}
		if e.X.Op == OpZExt { // zero-extended value is non-negative
			return ZExt(e.W, e.X.X), true
		}
	case OpBool:
		if e.X.Op == OpZExt {
			return BoolOf(e.X.X), true
		}
	case OpLNot:
		if e.X.Op == OpZExt {
			return LNot(e.X.X), true
		}
	case OpExtr:
		if n, ok := simplifyExtract(e); ok {
			return n, true
		}
	case OpConcat:
		if n, ok := simplifyConcat(e); ok {
			return n, true
		}
	case OpAnd:
		if n, ok := simplifyAnd(e); ok {
			return n, true
		}
	case OpOr:
		if n, ok := simplifyOr(e); ok {
			return n, true
		}
	case OpXor:
		if c, ok := constOf(e.Y); ok && c == 0 {
			return e.X, true
		}
		if Equal(e.X, e.Y) {
			return Const(e.W, 0), true
		}
	case OpAdd:
		if c, ok := constOf(e.Y); ok && c == 0 {
			return e.X, true
		}
	case OpSub:
		if c, ok := constOf(e.Y); ok && c == 0 {
			return e.X, true
		}
		if Equal(e.X, e.Y) {
			return Const(e.W, 0), true
		}
	case OpMul:
		if c, ok := constOf(e.Y); ok {
			switch c {
			case 0:
				return Const(e.W, 0), true
			case 1:
				return e.X, true
			}
		}
	case OpUDiv:
		if c, ok := constOf(e.Y); ok && c == 1 {
			return e.X, true
		}
	case OpShl, OpLShr, OpAShr:
		if n, ok := simplifyShift(e); ok {
			return n, true
		}
	case OpEq:
		if Equal(e.X, e.Y) {
			return Bool1(true), true
		}
		if c, ok := constOf(e.Y); ok && c == 0 {
			return LNot(e.X), true
		}
	case OpNe:
		if Equal(e.X, e.Y) {
			return Bool1(false), true
		}
		if c, ok := constOf(e.Y); ok && c == 0 {
			return BoolOf(e.X), true
		}
	case OpUle, OpSle:
		if Equal(e.X, e.Y) {
			return Bool1(true), true
		}
	case OpUlt, OpSlt:
		if Equal(e.X, e.Y) {
			return Bool1(false), true
		}
	case OpIte:
		if c, ok := constOf(e.X); ok {
			if c != 0 {
				return e.Y, true
			}
			return e.Y2, true
		}
		if Equal(e.Y, e.Y2) {
			return e.Y, true
		}
	}
	return e, false
}

// simplifyExtract handles Extract-of-{Extract,Concat,ZExt,Shl,LShr,And}.
// These rules implement the Shrink rules of Figure 5: extracting the
// top or bottom byte of a concatenation of independent bytes yields the
// byte itself, disentangling adjacent input fields.
func simplifyExtract(e *Expr) (*Expr, bool) {
	hi, lo, x := e.Hi, e.Lo, e.X
	switch x.Op {
	case OpExtr:
		return Extract(hi+x.Lo, lo+x.Lo, x.X), true
	case OpConcat:
		bw := x.Y.W
		switch {
		case hi < bw:
			return Extract(hi, lo, x.Y), true
		case lo >= bw:
			return Extract(hi-bw, lo-bw, x.X), true
		default:
			return Concat(Extract(hi-bw, 0, x.X), Extract(bw-1, lo, x.Y)), true
		}
	case OpZExt:
		xw := x.X.W
		switch {
		case hi < xw:
			return Extract(hi, lo, x.X), true
		case lo >= xw:
			return Const(e.W, 0), true
		default:
			return ZExt(e.W, Extract(xw-1, lo, x.X)), true
		}
	case OpShl:
		if k64, ok := constOf(x.Y); ok && k64 < uint64(x.W) {
			k := uint8(k64)
			switch {
			case lo >= k:
				return Extract(hi-k, lo-k, x.X), true
			case hi < k:
				return Const(e.W, 0), true
			default:
				return Concat(Extract(hi-k, 0, x.X), Const(k-lo, 0)), true
			}
		}
	case OpLShr:
		if k64, ok := constOf(x.Y); ok && k64 < uint64(x.W) {
			k := uint8(k64)
			switch {
			case int(hi)+int(k) < int(x.X.W):
				return Extract(hi+k, lo+k, x.X), true
			case int(lo)+int(k) >= int(x.X.W):
				return Const(e.W, 0), true
			default:
				return ZExt(e.W, Extract(x.X.W-1, lo+k, x.X)), true
			}
		}
	case OpAnd:
		if c, ok := constOf(x.Y); ok {
			seg := (c >> lo) & Mask(e.W)
			if seg == Mask(e.W) {
				return Extract(hi, lo, x.X), true
			}
			if seg == 0 {
				return Const(e.W, 0), true
			}
		}
	case OpOr:
		// Extract from an Or where one side is zero over the range.
		if (zeroMask(x.X)>>lo)&Mask(e.W) == Mask(e.W) {
			return Extract(hi, lo, x.Y), true
		}
		if (zeroMask(x.Y)>>lo)&Mask(e.W) == Mask(e.W) {
			return Extract(hi, lo, x.X), true
		}
	}
	return e, false
}

// simplifyConcat flattens concatenation trees, merges adjacent
// constants, re-assembles contiguous extracts of the same base
// (the inverse Shrink rule), and converts a leading zero constant
// into a zero extension.
func simplifyConcat(e *Expr) (*Expr, bool) {
	parts := flattenConcat(e)
	changed := false

	// Merge adjacent parts.
	for i := 0; i+1 < len(parts); {
		a, b := parts[i], parts[i+1]
		if m, ok := mergeParts(a, b); ok {
			parts[i] = m
			parts = append(parts[:i+1], parts[i+2:]...)
			changed = true
			if i > 0 {
				i--
			}
			continue
		}
		i++
	}

	// Leading zero constant becomes ZExt.
	if len(parts) >= 2 {
		if c, ok := constOf(parts[0]); ok && c == 0 {
			rest := buildConcat(parts[1:])
			return ZExt(e.W, rest), true
		}
	}
	if len(parts) == 1 {
		return parts[0], true
	}
	if !changed {
		return e, false
	}
	return buildConcat(parts), true
}

// flattenConcat returns the parts of a concat tree, high bits first.
// Zero extensions are split into an explicit zero constant plus the
// inner value so adjacent extracts can merge across them.
func flattenConcat(e *Expr) []*Expr {
	switch e.Op {
	case OpConcat:
		return append(flattenConcat(e.X), flattenConcat(e.Y)...)
	case OpZExt:
		return append([]*Expr{Const(e.W-e.X.W, 0)}, flattenConcat(e.X)...)
	}
	return []*Expr{e}
}

func buildConcat(parts []*Expr) *Expr {
	r := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		r = Concat(parts[i], r)
	}
	return r
}

// mergeParts merges two adjacent concat parts (a above b) when they are
// both constants or contiguous extracts of the same base expression.
func mergeParts(a, b *Expr) (*Expr, bool) {
	if ca, ok := constOf(a); ok {
		if cb, ok := constOf(b); ok && int(a.W)+int(b.W) <= 64 {
			return Const(a.W+b.W, ca<<b.W|cb), true
		}
	}
	ah, al, ax, ok := asExtract(a)
	if !ok {
		return nil, false
	}
	bh, bl, bx, ok := asExtract(b)
	if !ok {
		return nil, false
	}
	if Equal(ax, bx) && al == bh+1 {
		return Extract(ah, bl, ax), true
	}
	return nil, false
}

// asExtract views e as Extract(hi, lo, base), treating a bare
// expression as the full-range extract of itself.
func asExtract(e *Expr) (hi, lo uint8, base *Expr, ok bool) {
	if e.Op == OpExtr {
		return e.Hi, e.Lo, e.X, true
	}
	if e.Op.IsLeaf() && e.Op != OpConst {
		return e.W - 1, 0, e, true
	}
	return 0, 0, nil, false
}

// simplifyAnd implements mask-selection rules: a low mask becomes a
// zero-extended truncation, and a high mask becomes a shifted extract,
// exposing the byte structure to the Extract/Concat rules.
func simplifyAnd(e *Expr) (*Expr, bool) {
	c, ok := constOf(e.Y)
	if !ok {
		if Equal(e.X, e.Y) {
			return e.X, true
		}
		return e, false
	}
	switch c {
	case 0:
		return Const(e.W, 0), true
	case Mask(e.W):
		return e.X, true
	}
	if k, ok := isLowMask(c, e.W); ok {
		return ZExt(e.W, Extract(k-1, 0, e.X)), true
	}
	if k, ok := isHighMask(c, e.W); ok {
		return Concat(Extract(e.W-1, k, e.X), Const(k, 0)), true
	}
	// Drop mask bits that are already known zero.
	if z := zeroMask(e.X); c&^z != c&Mask(e.W) {
		return And(e.X, Const(e.W, c&^z)), true
	}
	return e, false
}

// simplifyOr implements the BvOr rules of Figure 5: an Or of two
// expressions with disjoint known-nonzero ranges is a concatenation,
// which disentangles bytes or'd into a shifted word.
func simplifyOr(e *Expr) (*Expr, bool) {
	if c, ok := constOf(e.Y); ok {
		switch c {
		case 0:
			return e.X, true
		case Mask(e.W):
			return Const(e.W, Mask(e.W)), true
		}
	}
	if Equal(e.X, e.Y) {
		return e.X, true
	}
	// Disentangle: X occupies high bits, Y low bits (or vice versa).
	if n, ok := orToConcat(e.W, e.X, e.Y); ok {
		return n, true
	}
	if n, ok := orToConcat(e.W, e.Y, e.X); ok {
		return n, true
	}
	return e, false
}

// orToConcat rewrites hiPart | loPart as
// Concat(Extract(hiPart high bits), Extract(loPart low bits)) when
// hiPart's low k bits and loPart's high w-k bits are provably zero.
func orToConcat(w uint8, hiPart, loPart *Expr) (*Expr, bool) {
	k := trailingKnownZeros(hiPart)
	if k == 0 || k >= w {
		return nil, false
	}
	if leadingKnownZeros(loPart) < w-k {
		return nil, false
	}
	return Concat(Extract(w-1, k, hiPart), Extract(k-1, 0, loPart)), true
}

// simplifyShift normalises shifts by constants. A left shift by a
// constant becomes a concatenation with low zero bits; a logical right
// shift becomes a zero-extended extract. This puts the Figure 5 shift
// patterns into Extract/Concat form where the local rules fire.
func simplifyShift(e *Expr) (*Expr, bool) {
	k64, ok := constOf(e.Y)
	if !ok {
		return e, false
	}
	if k64 == 0 {
		return e.X, true
	}
	if k64 >= uint64(e.W) {
		if e.Op == OpAShr {
			return e, false // sign replication: leave symbolic
		}
		return Const(e.W, 0), true
	}
	k := uint8(k64)
	switch e.Op {
	case OpShl:
		return Concat(Extract(e.W-1-k, 0, e.X), Const(k, 0)), true
	case OpLShr:
		return ZExt(e.W, Extract(e.W-1, k, e.X)), true
	case OpAShr:
		// Arithmetic shift of a value whose sign bit is known zero is
		// a logical shift.
		if zeroMask(e.X)&(uint64(1)<<(e.W-1)) != 0 {
			return LShr(e.X, e.Y), true
		}
	}
	return e, false
}
