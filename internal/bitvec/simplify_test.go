package bitvec

import "testing"

// b1, b2, b3 are independent raw input bytes as used in Figure 5.
var (
	b1 = Field("@0", 8, 0)
	b2 = Field("@1", 8, 1)
	b3 = Field("@2", 8, 2)
)

func TestFig5ShrinkHighByte(t *testing.T) {
	// ShrinkH(8, Shl(8, [b1,b2])) => b2: shifting the 16-bit pair left
	// by 8 and keeping the top byte selects the low byte.
	e := Extract(15, 8, Shl(Concat(b1, b2), Const(16, 8)))
	s := Simplify(e)
	if !Equal(s, b2) {
		t.Errorf("ShrinkH(Shl([b1,b2])) = %s, want b2", s)
	}
}

func TestFig5ShrinkLowByte(t *testing.T) {
	// ShrinkL(8, Shr(8, [b1,b2])) => b1.
	e := Extract(7, 0, LShr(Concat(b1, b2), Const(16, 8)))
	s := Simplify(e)
	if !Equal(s, b1) {
		t.Errorf("ShrinkL(Shr([b1,b2])) = %s, want b1", s)
	}
}

func TestFig5BvOrHigh(t *testing.T) {
	// BvOrH(b1, Shr(8,[b2,b3])) => [b1,b2]: or b1 into the top byte of
	// the right-shifted pair.
	shifted := LShr(Concat(b2, b3), Const(16, 8)) // = [0, b2]
	e := Or(Shl(ZExt(16, b1), Const(16, 8)), shifted)
	s := Simplify(e)
	want := Concat(b1, b2)
	if !Equal(s, want) {
		t.Errorf("BvOrH = %s, want %s", s, want)
	}
}

func TestFig5BvOrLow(t *testing.T) {
	// BvOrL(b1, Shl(8,[b2,b3])) => [b3,b1].
	shifted := Shl(Concat(b2, b3), Const(16, 8)) // = [b3, 0]
	e := Or(shifted, ZExt(16, b1))
	s := Simplify(e)
	want := Concat(b3, b1)
	if !Equal(s, want) {
		t.Errorf("BvOrL = %s, want %s", s, want)
	}
}

func TestEndiannessConversionCollapses(t *testing.T) {
	// The classic big-endian 16-bit read:
	//   (u16)(lo_byte) | ((u16)hi_byte << 8)
	// where hi/lo bytes are extracted from the same 16-bit field via
	// mask-and-shift, as in the paper's CWebP example. After
	// simplification the whole dance must collapse to the field itself.
	f := Field("/start_frame/content/height", 16, 4)
	loByte := And(f, Const(16, 0x00FF))                     // low byte of field
	hiByte := LShr(And(f, Const(16, 0xFF00)), Const(16, 8)) // high byte
	read := Or(Shl(hiByte, Const(16, 8)), loByte)
	s := Simplify(read)
	if !Equal(s, f) {
		t.Errorf("endianness round-trip = %s, want the bare field", s)
	}
}

func TestByteSwapIsNotCollapsed(t *testing.T) {
	// Swapping the two bytes of a field is NOT the identity; the
	// simplifier must not pretend it is.
	f := Field("w", 16, 0)
	swapped := Or(Shl(And(f, Const(16, 0x00FF)), Const(16, 8)),
		LShr(And(f, Const(16, 0xFF00)), Const(16, 8)))
	s := Simplify(swapped)
	if Equal(s, f) {
		t.Error("byte swap simplified to identity")
	}
	env := MapEnv{Fields: map[string]uint64{"w": 0xABCD}}
	if got := evalOK(t, s, env); got != 0xCDAB {
		t.Errorf("byte swap = %#x, want 0xCDAB", got)
	}
}

func TestConstantFolding(t *testing.T) {
	e := Add(Mul(Const(32, 6), Const(32, 7)), Const(32, 1))
	s := Simplify(e)
	if s.Op != OpConst || s.Val != 43 {
		t.Errorf("fold = %s, want Constant(43)", s)
	}
}

func TestIdentities(t *testing.T) {
	x := Field("x", 32, 0)
	cases := []struct {
		name string
		e    *Expr
		want *Expr
	}{
		{"add0", Add(x, Const(32, 0)), x},
		{"add0-left", Add(Const(32, 0), x), x},
		{"sub0", Sub(x, Const(32, 0)), x},
		{"subself", Sub(x, x), Const(32, 0)},
		{"mul1", Mul(x, Const(32, 1)), x},
		{"mul0", Mul(x, Const(32, 0)), Const(32, 0)},
		{"div1", UDiv(x, Const(32, 1)), x},
		{"and-ones", And(x, Const(32, 0xFFFFFFFF)), x},
		{"and0", And(x, Const(32, 0)), Const(32, 0)},
		{"andself", And(x, x), x},
		{"or0", Or(x, Const(32, 0)), x},
		{"orself", Or(x, x), x},
		{"xor0", Xor(x, Const(32, 0)), x},
		{"xorself", Xor(x, x), Const(32, 0)},
		{"shl0", Shl(x, Const(32, 0)), x},
		{"eq-self", Eq(x, x), Bool1(true)},
		{"ne-self", Ne(x, x), Bool1(false)},
		{"ule-self", Ule(x, x), Bool1(true)},
		{"ult-self", Ult(x, x), Bool1(false)},
		{"ite-true", Ite(Bool1(true), x, Const(32, 9)), x},
		{"ite-same", Ite(BoolOf(Field("c", 8, 9)), x, x), x},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if s := Simplify(c.e); !Equal(s, c.want) {
				t.Errorf("Simplify(%s) = %s, want %s", c.e, s, c.want)
			}
		})
	}
}

func TestExtractRules(t *testing.T) {
	x := Field("x", 32, 0)
	cases := []struct {
		name string
		e    *Expr
		want *Expr
	}{
		{"extr-extr", Extract(7, 4, Extract(15, 0, x)), Extract(7, 4, x)},
		{"extr-zext-low", Extract(7, 0, ZExt(64, x)), Extract(7, 0, x)},
		{"extr-zext-high", Extract(63, 32, ZExt(64, x)), Const(32, 0)},
		{"extr-and-ones", Extract(7, 0, And(x, Const(32, 0xFF))), Extract(7, 0, x)},
		{"extr-and-zero", Extract(15, 8, And(x, Const(32, 0xFF))), Const(8, 0)},
		{"concat-reassemble", Concat(Extract(15, 8, x), Extract(7, 0, x)), Extract(15, 0, x)},
		{"concat-zero-high", Concat(Const(16, 0), Extract(15, 0, x)), ZExt(32, Extract(15, 0, x))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if s := Simplify(c.e); !Equal(s, c.want) {
				t.Errorf("Simplify(%s) = %s, want %s", c.e, s, c.want)
			}
		})
	}
}

func TestAndMaskBecomesExtract(t *testing.T) {
	f := Field("f", 16, 0)
	// f & 0xFF00 keeps the high byte in place: Concat(Extract(15,8,f), 0).
	s := Simplify(And(f, Const(16, 0xFF00)))
	want := Concat(Extract(15, 8, f), Const(8, 0))
	if !Equal(s, want) {
		t.Errorf("high mask = %s, want %s", s, want)
	}
	// f & 0x00FF zero-extends the low byte.
	s = Simplify(And(f, Const(16, 0x00FF)))
	want = ZExt(16, Extract(7, 0, f))
	if !Equal(s, want) {
		t.Errorf("low mask = %s, want %s", s, want)
	}
}

func TestSimplifyReducesOpCount(t *testing.T) {
	// The paper's excised checks shrink dramatically; verify the
	// machinery on a representative shift/mask tangle.
	f := Field("h", 16, 0)
	lo := And(f, Const(16, 0x00FF))
	hi := LShr(And(f, Const(16, 0xFF00)), Const(16, 8))
	val := Or(Shl(hi, Const(16, 8)), lo)
	e := Ule(Mul(ZExt(64, val), ZExt(64, val)), Const(64, 536870911))
	before := e.OpCount()
	after := Simplify(e).OpCount()
	if after >= before {
		t.Errorf("OpCount did not shrink: %d -> %d", before, after)
	}
	if after > 4 {
		t.Errorf("expected collapse to ~4 ops, got %d: %s", after, Simplify(e))
	}
}

func TestZeroMask(t *testing.T) {
	if z := zeroMask(Const(8, 0xF0)); z != 0x0F {
		t.Errorf("zeroMask(0xF0) = %#x, want 0x0F", z)
	}
	z := zeroMask(ZExt(16, Field("b", 8, 0)))
	if z != 0xFF00 {
		t.Errorf("zeroMask(ZExt16(byte)) = %#x, want 0xFF00", z)
	}
	z = zeroMask(Concat(Field("b", 8, 0), Const(8, 0)))
	if z != 0x00FF {
		t.Errorf("zeroMask(Concat(b, 0)) = %#x, want 0x00FF", z)
	}
}

func TestTrailingLeadingKnownZeros(t *testing.T) {
	e := Concat(Field("b", 8, 0), Const(8, 0))
	if k := trailingKnownZeros(e); k != 8 {
		t.Errorf("trailingKnownZeros = %d, want 8", k)
	}
	e2 := ZExt(16, Field("b", 8, 0))
	if k := leadingKnownZeros(e2); k != 8 {
		t.Errorf("leadingKnownZeros = %d, want 8", k)
	}
}
