package bitvec

import (
	"math/rand"
	"strings"
	"testing"
)

func evalOK(t *testing.T, e *Expr, env Env) uint64 {
	t.Helper()
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestMask(t *testing.T) {
	cases := []struct {
		w    uint8
		want uint64
	}{
		{1, 1}, {8, 0xFF}, {16, 0xFFFF}, {32, 0xFFFFFFFF}, {64, ^uint64(0)},
		{5, 0x1F}, {63, (uint64(1) << 63) - 1},
	}
	for _, c := range cases {
		if got := Mask(c.w); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestConstMasksValue(t *testing.T) {
	c := Const(8, 0x1FF)
	if c.Val != 0xFF {
		t.Errorf("Const(8, 0x1FF).Val = %#x, want 0xFF", c.Val)
	}
}

func TestEvalArithmetic(t *testing.T) {
	env := MapEnv{Fields: map[string]uint64{"w": 200, "h": 300}}
	w := Field("w", 16, 0)
	h := Field("h", 16, 2)

	cases := []struct {
		name string
		e    *Expr
		want uint64
	}{
		{"add", Add(w, h), 500},
		{"sub", Sub(w, h), (200 - 300) & 0xFFFF},
		{"mul", Mul(w, h), 60000},
		{"mul-wrap", Mul(Const(16, 1000), Const(16, 1000)), (1000 * 1000) & 0xFFFF},
		{"udiv", UDiv(h, w), 1},
		{"urem", URem(h, w), 100},
		{"and", And(w, Const(16, 0xFF)), 200},
		{"or", Or(w, Const(16, 0xFF00)), 0xFFC8},
		{"xor", Xor(w, w), 0},
		{"shl", Shl(w, Const(16, 4)), (200 << 4) & 0xFFFF},
		{"lshr", LShr(h, Const(16, 2)), 75},
		{"shl-over", Shl(w, Const(16, 16)), 0},
		{"lshr-over", LShr(w, Const(16, 99)), 0},
		{"not", Not(Const(8, 0x0F)), 0xF0},
		{"neg", Neg(Const(8, 1)), 0xFF},
		{"zext", ZExt(32, w), 200},
		{"sext-neg", SExt(16, Const(8, 0x80)), 0xFF80},
		{"sext-pos", SExt(16, Const(8, 0x7F)), 0x007F},
		{"trunc", Trunc(8, h), 300 & 0xFF},
		{"extract", Extract(15, 8, Const(16, 0xABCD)), 0xAB},
		{"concat", Concat(Const(8, 0xAB), Const(8, 0xCD)), 0xABCD},
		{"eq-true", Eq(w, Const(16, 200)), 1},
		{"eq-false", Eq(w, h), 0},
		{"ult", Ult(w, h), 1},
		{"ule-eq", Ule(w, Const(16, 200)), 1},
		{"slt-signed", Slt(Const(8, 0xFF), Const(8, 1)), 1}, // -1 < 1
		{"sle-signed", Sle(Const(8, 1), Const(8, 0xFF)), 0},
		{"bool", BoolOf(w), 1},
		{"bool-zero", BoolOf(Const(16, 0)), 0},
		{"lnot", LNot(Const(16, 0)), 1},
		{"ite-then", Ite(Bool1(true), w, h), 200},
		{"ite-else", Ite(Bool1(false), w, h), 300},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := evalOK(t, c.e, env); got != c.want {
				t.Errorf("Eval(%s) = %d, want %d", c.e, got, c.want)
			}
		})
	}
}

func TestEvalSignedDivision(t *testing.T) {
	env := MapEnv{}
	// -7 / 2 == -3 (truncated toward zero), -7 % 2 == -1.
	q := evalOK(t, SDiv(Const(8, uint64(0x100-7)), Const(8, 2)), env)
	if signExtend(q, 8) != -3 {
		t.Errorf("SDiv(-7, 2) = %d, want -3", signExtend(q, 8))
	}
	r := evalOK(t, SRem(Const(8, uint64(0x100-7)), Const(8, 2)), env)
	if signExtend(r, 8) != -1 {
		t.Errorf("SRem(-7, 2) = %d, want -1", signExtend(r, 8))
	}
	// INT_MIN / -1 wraps.
	q = evalOK(t, SDiv(Const(8, 0x80), Const(8, 0xFF)), env)
	if q != 0x80 {
		t.Errorf("SDiv(INT_MIN, -1) = %#x, want 0x80", q)
	}
}

func TestEvalAShr(t *testing.T) {
	env := MapEnv{}
	v := evalOK(t, AShr(Const(8, 0x80), Const(8, 3)), env)
	if v != 0xF0 {
		t.Errorf("AShr(0x80, 3) = %#x, want 0xF0", v)
	}
	v = evalOK(t, AShr(Const(8, 0x80), Const(8, 100)), env)
	if v != 0xFF {
		t.Errorf("AShr(0x80, 100) = %#x, want 0xFF (sign fill)", v)
	}
	v = evalOK(t, AShr(Const(8, 0x40), Const(8, 100)), env)
	if v != 0 {
		t.Errorf("AShr(0x40, 100) = %#x, want 0", v)
	}
}

func TestEvalMissingField(t *testing.T) {
	if _, err := Eval(Field("nope", 8, 0), MapEnv{}); err == nil {
		t.Fatal("expected error for missing field")
	}
	if _, err := Eval(Ref("x.y", 8), MapEnv{}); err == nil {
		t.Fatal("expected error for missing ref")
	}
}

func TestStringNotation(t *testing.T) {
	w := Field("/start_frame/content/width", 16, 6)
	e := Ule(Mul(ZExt(64, w), ZExt(64, w)), Const(64, 536870911))
	s := e.String()
	for _, want := range []string{
		"ULessEqual(1,", "Mul(64,", "ToSize(64,",
		"HachField(16,'/start_frame/content/width')", "Constant(536870911)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %s; missing %q", s, want)
		}
	}
}

func TestOpCountAndSize(t *testing.T) {
	w := Field("w", 16, 0)
	if got := w.OpCount(); got != 0 {
		t.Errorf("leaf OpCount = %d, want 0", got)
	}
	e := Ule(Mul(ZExt(32, w), ZExt(32, w)), Const(32, 100))
	// Ule + Mul + 2×ZExt = 4 ops.
	if got := e.OpCount(); got != 4 {
		t.Errorf("OpCount = %d, want 4", got)
	}
	if got := e.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
}

func TestFieldsAndByteDeps(t *testing.T) {
	w := Field("/img/width", 16, 4)
	h := Field("/img/height", 16, 6)
	e := Mul(ZExt(32, w), ZExt(32, h))
	fs := e.Fields()
	if len(fs) != 2 || fs[0] != "/img/height" || fs[1] != "/img/width" {
		t.Errorf("Fields = %v", fs)
	}
	bd := e.ByteDeps()
	want := []int{4, 5, 6, 7}
	if len(bd) != len(want) {
		t.Fatalf("ByteDeps = %v, want %v", bd, want)
	}
	for i := range want {
		if bd[i] != want[i] {
			t.Fatalf("ByteDeps = %v, want %v", bd, want)
		}
	}
}

func TestEqualAndKey(t *testing.T) {
	a := Add(Field("w", 16, 0), Const(16, 3))
	b := Add(Field("w", 16, 0), Const(16, 3))
	c := Add(Field("w", 16, 0), Const(16, 4))
	if !Equal(a, b) {
		t.Error("Equal(a, b) = false for identical trees")
	}
	if Equal(a, c) {
		t.Error("Equal(a, c) = true for different constants")
	}
	if a.Key() != b.Key() {
		t.Error("Key mismatch for identical trees")
	}
	if a.Key() == c.Key() {
		t.Error("Key collision for different trees")
	}
}

func TestHasRef(t *testing.T) {
	if Field("w", 8, 0).HasRef() {
		t.Error("Field.HasRef() = true")
	}
	if !Add(Ref("a.b", 16), Const(16, 1)).HasRef() {
		t.Error("Ref tree HasRef() = false")
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero width", func() { Const(0, 1) })
	mustPanic("width > 64", func() { Const(65, 1) })
	mustPanic("width mismatch", func() { Add(Const(8, 1), Const(16, 1)) })
	mustPanic("zext narrower", func() { ZExt(8, Const(16, 1)) })
	mustPanic("trunc wider", func() { Trunc(16, Const(8, 1)) })
	mustPanic("extract range", func() { Extract(8, 0, Const(8, 1)) })
	mustPanic("concat > 64", func() { Concat(Const(64, 1), Const(8, 1)) })
	mustPanic("ite cond width", func() { Ite(Const(8, 1), Const(8, 1), Const(8, 2)) })
}

// randExpr builds a random expression of the given depth over the given
// fields, used by property tests here and in package smt.
func randExpr(rng *rand.Rand, depth int, fields []*Expr) *Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return fields[rng.Intn(len(fields))]
		}
		ws := []uint8{8, 16, 32, 64}
		return Const(ws[rng.Intn(len(ws))], rng.Uint64())
	}
	x := randExpr(rng, depth-1, fields)
	switch rng.Intn(14) {
	case 0:
		return Not(x)
	case 1:
		return Neg(x)
	case 2:
		if x.W < 64 {
			return ZExt(min(64, x.W*2), x)
		}
		return Not(x)
	case 3:
		if x.W < 64 {
			return SExt(min(64, x.W*2), x)
		}
		return Neg(x)
	case 4:
		if x.W > 1 {
			hi := uint8(rng.Intn(int(x.W)))
			lo := uint8(rng.Intn(int(hi) + 1))
			return Extract(hi, lo, x)
		}
		return x
	case 5:
		y := sameWidth(rng, depth-1, fields, x.W)
		return Add(x, y)
	case 6:
		y := sameWidth(rng, depth-1, fields, x.W)
		return Sub(x, y)
	case 7:
		y := sameWidth(rng, depth-1, fields, x.W)
		return Mul(x, y)
	case 8:
		y := sameWidth(rng, depth-1, fields, x.W)
		return And(x, y)
	case 9:
		y := sameWidth(rng, depth-1, fields, x.W)
		return Or(x, y)
	case 10:
		y := sameWidth(rng, depth-1, fields, x.W)
		return Xor(x, y)
	case 11:
		return Shl(x, Const(x.W, uint64(rng.Intn(int(x.W)+2))))
	case 12:
		return LShr(x, Const(x.W, uint64(rng.Intn(int(x.W)+2))))
	default:
		y := sameWidth(rng, depth-1, fields, x.W)
		ops := []func(a, b *Expr) *Expr{Ule, Ult, Eq, Ne, Slt, Sle, UDiv, URem}
		return ops[rng.Intn(len(ops))](x, y)
	}
}

func sameWidth(rng *rand.Rand, depth int, fields []*Expr, w uint8) *Expr {
	e := randExpr(rng, depth, fields)
	switch {
	case e.W == w:
		return e
	case e.W < w:
		return ZExt(w, e)
	default:
		return Trunc(w, e)
	}
}

func randEnv(rng *rand.Rand) MapEnv {
	return MapEnv{Fields: map[string]uint64{
		"a": rng.Uint64(), "b": rng.Uint64(), "c": rng.Uint64(),
	}}
}

var propFields = []*Expr{Field("a", 16, 0), Field("b", 16, 2), Field("c", 8, 4)}

func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		e := randExpr(rng, 5, propFields)
		s := Simplify(e)
		for j := 0; j < 4; j++ {
			env := randEnv(rng)
			want := evalOK(t, e, env)
			got := evalOK(t, s, env)
			if got != want {
				t.Fatalf("iteration %d: Simplify changed semantics:\n  e = %s\n  s = %s\n  env = %v\n  got %d want %d",
					i, e, s, env.Fields, got, want)
			}
		}
		if s.W != e.W {
			t.Fatalf("Simplify changed width: %d -> %d for %s", e.W, s.W, e)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := Simplify(randExpr(rng, 5, propFields))
		again := Simplify(e)
		if !Equal(e, again) {
			t.Fatalf("Simplify not idempotent:\n  once  = %s\n  twice = %s", e, again)
		}
	}
}
