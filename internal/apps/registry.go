package apps

import (
	"fmt"
	"sync"

	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
)

// ErrorKind classifies the paper's three error classes.
type ErrorKind string

// Error kinds evaluated in the paper.
const (
	Overflow ErrorKind = "integer overflow"
	OOB      ErrorKind = "out of bounds access"
	DivZero  ErrorKind = "divide by zero"
)

// App is one donor or recipient application.
type App struct {
	Name    string
	Paper   string // the real application this models
	Source  string
	Formats []string // dissector names the app can process
	Donor   bool
}

// Target is one seeded defect in a recipient: a Figure 8 error.
type Target struct {
	Recipient string
	ID        string // the paper's file@line identifier
	Kind      ErrorKind
	Format    string
	VulnFn    string   // function containing the vulnerable site
	Donors    []string // donors evaluated against this error in Figure 8
	Seed      []byte
	Error     []byte // known error-triggering input (nil: DIODE/fuzzing finds one)
}

var donorApps = []*App{
	{Name: "feh", Paper: "FEH 2.9.3", Source: fehSrc,
		Formats: []string{"mjpg", "mpng", "mtif"}, Donor: true},
	{Name: "mtpaint", Paper: "mtpaint 3.40", Source: mtpaintSrc,
		Formats: []string{"mjpg", "mpng"}, Donor: true},
	{Name: "viewnior", Paper: "Viewnior 1.4", Source: viewniorSrc,
		Formats: []string{"mjpg", "mpng", "mtif"}, Donor: true},
	{Name: "gnash", Paper: "GNU Gnash 0.8.11", Source: gnashSrc,
		Formats: []string{"mswf"}, Donor: true},
	{Name: "openjpeg", Paper: "OpenJPEG 1.5.2", Source: openjpegSrc,
		Formats: []string{"mj2k"}, Donor: true},
	{Name: "magick9", Paper: "ImageMagick Display 6.5.2-9", Source: magick9Src,
		Formats: []string{"mgif"}, Donor: true},
	{Name: "wireshark18", Paper: "Wireshark 1.8.6", Source: wireshark18Src,
		Formats: []string{"mpkt"}, Donor: true},
}

var recipientApps = []*App{
	{Name: "cwebp", Paper: "CWebP 0.3.1", Source: cwebpSrc, Formats: []string{"mjpg"}},
	{Name: "dillo", Paper: "Dillo 2.1", Source: dilloSrc, Formats: []string{"mpng"}},
	{Name: "display", Paper: "ImageMagick Display 6.5.2-8", Source: displaySrc, Formats: []string{"mtif"}},
	{Name: "swfplay", Paper: "Swfplay 0.5.5", Source: swfplaySrc, Formats: []string{"mswf"}},
	{Name: "jasper", Paper: "JasPer 1.9", Source: jasperSrc, Formats: []string{"mj2k"}},
	{Name: "gif2tiff", Paper: "gif2tiff 4.0.3", Source: gif2tiffSrc, Formats: []string{"mgif"}},
	{Name: "wireshark14", Paper: "Wireshark 1.4.14", Source: wireshark14Src, Formats: []string{"mpkt"}},
}

// The registry holds the paper's catalogued applications plus any
// registered at run time. The scenario generator registers synthetic
// donor/recipient pairs so the whole production path — name
// resolution, corpus indexing, the phaged request surface — treats
// generated applications exactly like catalogued ones.
var (
	regMu      sync.RWMutex
	regApps    []*App    // registered applications, in registration order
	regTargets []*Target // registered targets, in registration order
	regByName  = map[string]*App{}
)

// Register adds applications to the registry, atomically: names must
// be unique across the catalogue, everything registered so far, and
// the batch itself, and a rejected batch registers nothing.
func Register(apps ...*App) error {
	regMu.Lock()
	defer regMu.Unlock()
	seen := map[string]bool{}
	for _, a := range apps {
		if _, err := byNameLocked(a.Name); err == nil || seen[a.Name] {
			return fmt.Errorf("apps: application %q already registered", a.Name)
		}
		seen[a.Name] = true
	}
	for _, a := range apps {
		regApps = append(regApps, a)
		regByName[a.Name] = a
	}
	return nil
}

// RegisterTargets adds defect targets to the registry, atomically:
// each target's recipient must already be registered or catalogued,
// each (recipient, ID) pair must be new, and a rejected batch
// registers nothing.
func RegisterTargets(targets ...*Target) error {
	regMu.Lock()
	defer regMu.Unlock()
	seen := map[string]bool{}
	for _, t := range catalogueTargets() {
		seen[t.Recipient+"\x00"+t.ID] = true
	}
	for _, t := range regTargets {
		seen[t.Recipient+"\x00"+t.ID] = true
	}
	for _, t := range targets {
		if _, err := byNameLocked(t.Recipient); err != nil {
			return fmt.Errorf("apps: target %s/%s: %w", t.Recipient, t.ID, err)
		}
		key := t.Recipient + "\x00" + t.ID
		if seen[key] {
			return fmt.Errorf("apps: target %s/%s already registered", t.Recipient, t.ID)
		}
		seen[key] = true
	}
	regTargets = append(regTargets, targets...)
	return nil
}

// Unregister removes every registered application whose name the
// predicate matches, along with every registered target whose
// recipient name matches. Catalogued applications are never removed,
// so a target registered against a catalogued recipient is retired by
// a predicate matching that recipient's name — the catalogued
// application itself stays. Harnesses use this to retire a generated
// suite without leaking registry state.
func Unregister(match func(name string) bool) {
	regMu.Lock()
	defer regMu.Unlock()
	var apps []*App
	for _, a := range regApps {
		if match(a.Name) {
			delete(regByName, a.Name)
			continue
		}
		apps = append(apps, a)
	}
	regApps = apps
	var targets []*Target
	for _, t := range regTargets {
		if !match(t.Recipient) {
			targets = append(targets, t)
		}
	}
	regTargets = targets
}

// Donors returns the donor applications: the catalogue followed by
// registered donors.
func Donors() []*App {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]*App{}, donorApps...)
	for _, a := range regApps {
		if a.Donor {
			out = append(out, a)
		}
	}
	return out
}

// Recipients returns the recipient applications: the catalogue
// followed by registered recipients.
func Recipients() []*App {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]*App{}, recipientApps...)
	for _, a := range regApps {
		if !a.Donor {
			out = append(out, a)
		}
	}
	return out
}

// ByName returns the named application (donor or recipient,
// catalogued or registered).
func ByName(name string) (*App, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	return byNameLocked(name)
}

func byNameLocked(name string) (*App, error) {
	for _, a := range donorApps {
		if a.Name == name {
			return a, nil
		}
	}
	for _, a := range recipientApps {
		if a.Name == name {
			return a, nil
		}
	}
	if a := regByName[name]; a != nil {
		return a, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// DonorsForFormat returns the donors that process the given format.
func DonorsForFormat(format string) []*App {
	var out []*App
	for _, a := range Donors() {
		for _, f := range a.Formats {
			if f == format {
				out = append(out, a)
			}
		}
	}
	return out
}

// Build compiles an application with full debug information through
// the shared content-keyed compile cache; callers receive a fresh
// clone they may mutate.
func Build(app *App) (*ir.Module, error) {
	m, err := compile.Cached(app.Name, app.Source)
	if err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

var (
	donorMu    sync.Mutex
	donorCache = map[string][]byte{} // stripped serialized donor images
)

// donorCacheKey identifies a donor build by name and source, so a
// registered donor that reuses a retired name never sees a stale
// stripped image.
func donorCacheKey(app *App) string { return app.Name + "\x00" + app.Source }

// BuildDonorBinary compiles a donor, serializes it, strips it, and
// loads it back — modelling the distribution of a donor as an opaque
// stripped binary with no source or symbolic information. The
// stripped image is cached per donor; every call decodes a fresh
// module the caller may mutate.
func BuildDonorBinary(app *App) (*ir.Module, error) {
	key := donorCacheKey(app)
	donorMu.Lock()
	img, ok := donorCache[key]
	donorMu.Unlock()
	if !ok {
		m, err := Build(app)
		if err != nil {
			return nil, err
		}
		m.Strip()
		img, err = m.Bytes()
		if err != nil {
			return nil, err
		}
		donorMu.Lock()
		// Registered donors come and go (scenario suites); bound the
		// image cache so a long soak never accumulates stale builds.
		// The permanently-hot catalogue donors survive the flush.
		if len(donorCache) >= 512 {
			kept := map[string][]byte{}
			for _, a := range donorApps {
				k := donorCacheKey(a)
				if v, ok := donorCache[k]; ok {
					kept[k] = v
				}
			}
			donorCache = kept
		}
		donorCache[key] = img
		donorMu.Unlock()
	}
	return ir.FromBytes(img)
}

// Seed inputs per format: small well-formed inputs every application
// of the format processes successfully.

// SeedMJPG returns the canonical MJPG seed input.
func SeedMJPG() []byte {
	img := hachoir.MJPG{Version: 1, Precision: 8, Height: 80, Width: 100,
		Components: 3, HSamp: 1, VSamp: 1, Data: []byte{1, 2, 3, 4}}
	return img.Encode()
}

// SeedMPNG returns the canonical MPNG seed input.
func SeedMPNG() []byte {
	img := hachoir.MPNG{Width: 64, Height: 48, Depth: 8, Color: 2,
		Data: []byte{9, 8, 7}}
	return img.Encode()
}

// SeedMTIF returns the canonical MTIF seed input.
func SeedMTIF() []byte {
	img := hachoir.MTIF{Width: 64, Height: 48, BitsPerSample: 8,
		SamplesPerPixel: 3, Data: []byte{5, 5}}
	return img.Encode()
}

// SeedMSWF returns the canonical MSWF seed input.
func SeedMSWF() []byte {
	m := hachoir.MSWF{Version: 5, FrameW: 100, FrameH: 80,
		JPEGHeight: 40, JPEGWidth: 30, Components: 3, HSamp: 1, VSamp: 1,
		JPEGData: []byte{1, 2}}
	return m.Encode()
}

// SeedMGIF returns the canonical MGIF seed input.
func SeedMGIF() []byte {
	m := hachoir.MGIF{ScreenW: 50, ScreenH: 40, Width: 50, Height: 40,
		LZWCodeSize: 8, Data: []byte{0, 1, 2}}
	return m.Encode()
}

// SeedMPKT returns the canonical MPKT seed input.
func SeedMPKT() []byte {
	m := hachoir.MPKT{Proto: 1, Flags: 0, PLen: 16, Seq: 2,
		Payload: make([]byte, 32)}
	return m.Encode()
}

// SeedMJ2K returns the canonical MJ2K seed input.
func SeedMJ2K() []byte {
	m := hachoir.MJ2K{TilesX: 2, TilesY: 2, Width: 64, Height: 48,
		TileNo: 1, Data: []byte{3, 3}}
	return m.Encode()
}

// SeedFor returns the canonical seed for a format name.
func SeedFor(format string) []byte {
	switch format {
	case "mjpg":
		return SeedMJPG()
	case "mpng":
		return SeedMPNG()
	case "mtif":
		return SeedMTIF()
	case "mswf":
		return SeedMSWF()
	case "mgif":
		return SeedMGIF()
	case "mpkt":
		return SeedMPKT()
	case "mj2k":
		return SeedMJ2K()
	}
	panic("apps: no seed for format " + format)
}

// RegressionSuite returns valid inputs of the format used to check
// that a patched recipient preserves correct behaviour (paper §3.4).
func RegressionSuite(format string) [][]byte {
	switch format {
	case "mjpg":
		return [][]byte{
			SeedMJPG(),
			(&hachoir.MJPG{Version: 1, Height: 1, Width: 1, Components: 1, HSamp: 1, VSamp: 1}).Encode(),
			(&hachoir.MJPG{Version: 2, Height: 480, Width: 640, Components: 3, HSamp: 2, VSamp: 2, Data: []byte{7}}).Encode(),
			(&hachoir.MJPG{Version: 1, Height: 1024, Width: 768, Components: 4, HSamp: 1, VSamp: 1}).Encode(),
		}
	case "mpng":
		return [][]byte{
			SeedMPNG(),
			(&hachoir.MPNG{Width: 1, Height: 1, Depth: 8, Color: 0}).Encode(),
			(&hachoir.MPNG{Width: 800, Height: 600, Depth: 8, Color: 6, Data: []byte{1}}).Encode(),
			(&hachoir.MPNG{Width: 320, Height: 200, Depth: 8, Color: 2}).Encode(),
		}
	case "mtif":
		return [][]byte{
			SeedMTIF(),
			(&hachoir.MTIF{Width: 1, Height: 1, BitsPerSample: 8, SamplesPerPixel: 1}).Encode(),
			(&hachoir.MTIF{Width: 640, Height: 480, BitsPerSample: 8, SamplesPerPixel: 4}).Encode(),
		}
	case "mswf":
		return [][]byte{
			SeedMSWF(),
			(&hachoir.MSWF{Version: 1, FrameW: 10, FrameH: 10, JPEGHeight: 8, JPEGWidth: 8, Components: 3, HSamp: 1, VSamp: 1}).Encode(),
			(&hachoir.MSWF{Version: 9, FrameW: 320, FrameH: 240, JPEGHeight: 120, JPEGWidth: 160, Components: 3, HSamp: 2, VSamp: 2}).Encode(),
		}
	case "mgif":
		return [][]byte{
			SeedMGIF(),
			(&hachoir.MGIF{ScreenW: 1, ScreenH: 1, Width: 1, Height: 1, LZWCodeSize: 2}).Encode(),
			(&hachoir.MGIF{ScreenW: 256, ScreenH: 256, Width: 256, Height: 256, LZWCodeSize: 12, Data: []byte{1, 2}}).Encode(),
		}
	case "mpkt":
		return [][]byte{
			SeedMPKT(),
			(&hachoir.MPKT{Proto: 2, Flags: 1, PLen: 1, Seq: 9, Payload: make([]byte, 7)}).Encode(),
			(&hachoir.MPKT{Proto: 3, Flags: 0, PLen: 64, Seq: 1, Payload: make([]byte, 128)}).Encode(),
		}
	case "mj2k":
		return [][]byte{
			SeedMJ2K(),
			(&hachoir.MJ2K{TilesX: 1, TilesY: 1, Width: 8, Height: 8, TileNo: 0}).Encode(),
			(&hachoir.MJ2K{TilesX: 3, TilesY: 3, Width: 100, Height: 100, TileNo: 8, Data: []byte{1}}).Encode(),
		}
	}
	panic("apps: no regression suite for format " + format)
}

// Targets returns the error catalogue: every Figure 8 (recipient,
// error) pair with its donors, followed by registered targets.
func Targets() []*Target {
	regMu.RLock()
	registered := append([]*Target{}, regTargets...)
	regMu.RUnlock()
	return append(catalogueTargets(), registered...)
}

// catalogueTargets returns the Figure 8 error catalogue.
func catalogueTargets() []*Target {
	jasperErr := (&hachoir.MJ2K{TilesX: 2, TilesY: 2, Width: 64, Height: 48,
		TileNo: 4, Data: []byte{3, 3}}).Encode() // tileno == numtiles: off by one
	gifErr := (&hachoir.MGIF{ScreenW: 50, ScreenH: 40, Width: 50, Height: 40,
		LZWCodeSize: 13, Data: []byte{0, 1, 2}}).Encode() // 1<<13 > 4096
	pktErr := (&hachoir.MPKT{Proto: 1, Flags: 0, PLen: 0, Seq: 2,
		Payload: make([]byte, 32)}).Encode() // zero-length payload field

	return []*Target{
		{Recipient: "cwebp", ID: "jpegdec.c@248", Kind: Overflow, Format: "mjpg",
			VulnFn: "read_jpeg", Donors: []string{"feh", "mtpaint", "viewnior"},
			Seed: SeedMJPG()},
		{Recipient: "dillo", ID: "png.c@203", Kind: Overflow, Format: "mpng",
			VulnFn: "png_datainfo", Donors: []string{"mtpaint", "feh", "viewnior"},
			Seed: SeedMPNG()},
		{Recipient: "dillo", ID: "fltkimagebuf.cc@39", Kind: Overflow, Format: "mpng",
			VulnFn: "fltk_imgbuf", Donors: []string{"mtpaint", "feh", "viewnior"},
			Seed: SeedMPNG()},
		{Recipient: "display", ID: "xwindow.c@5619", Kind: Overflow, Format: "mtif",
			VulnFn: "xwindow_display", Donors: []string{"viewnior", "feh"},
			Seed: SeedMTIF()},
		{Recipient: "display", ID: "display.c@4393", Kind: Overflow, Format: "mtif",
			VulnFn: "resize_image", Donors: []string{"viewnior", "feh"},
			Seed: SeedMTIF()},
		{Recipient: "swfplay", ID: "jpeg_rgb_decoder.c@253", Kind: Overflow, Format: "mswf",
			VulnFn: "jpeg_rgb_decode", Donors: []string{"gnash"},
			Seed: SeedMSWF()},
		{Recipient: "swfplay", ID: "jpeg.c@192", Kind: Overflow, Format: "mswf",
			VulnFn: "jpeg_decode", Donors: []string{"gnash"},
			Seed: SeedMSWF()},
		{Recipient: "jasper", ID: "jpc_dec.c@492", Kind: OOB, Format: "mj2k",
			VulnFn: "process_sot", Donors: []string{"openjpeg"},
			Seed: SeedMJ2K(), Error: jasperErr},
		{Recipient: "gif2tiff", ID: "gif2tiff.c@355", Kind: OOB, Format: "mgif",
			VulnFn: "process_lzw", Donors: []string{"magick9"},
			Seed: SeedMGIF(), Error: gifErr},
		{Recipient: "wireshark14", ID: "packet-dcp-etsi.c@258", Kind: DivZero, Format: "mpkt",
			VulnFn: "dissect_pft", Donors: []string{"wireshark18"},
			Seed: SeedMPKT(), Error: pktErr},
	}
}

// TargetByID returns the target with the given recipient and ID.
func TargetByID(recipient, id string) (*Target, error) {
	for _, t := range Targets() {
		if t.Recipient == recipient && t.ID == id {
			return t, nil
		}
	}
	return nil, fmt.Errorf("apps: no target %s/%s", recipient, id)
}
