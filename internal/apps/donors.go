// Package apps contains MiniC re-implementations of the paper's seven
// donor and seven recipient applications, with the same seeded defects
// at the same structural positions and the same donor checks
// (IMAGE_DIMENSIONS_OK, MAX_WIDTH=16384, the rowstride division check,
// JPEG_MAX_DIMENSION=65500, MAX_SAMP_FACTOR=4, LZW code size <= 12,
// `if (real_len)`, and `tileno >= tiles_x*tiles_y`). The registry maps
// applications to the input formats they process and recipients to
// their defect targets.
package apps

// fehSrc models FEH 2.9.3: an imlib2-based viewer for MJPG, MPNG and
// MTIF inputs. Its header reads reassemble multi-byte fields manually
// (shift/or), producing the complex excised expressions of the paper's
// Section 2 example. The donated check is IMAGE_DIMENSIONS_OK:
//
//	(w) > 0 && (h) > 0 && (u64)(w) * (u64)(h) <= (1ULL << 29) - 1
const fehSrc = `
struct ImlibImage {
	u32 w;
	u32 h;
	u32 channels;
	u8* data;
};

u32 load_mjpg(ImlibImage* im) {
	u32 version = (u32)in_u8();
	u32 precision = (u32)in_u8();
	u32 hh = (u32)in_u8();
	u32 hl = (u32)in_u8();
	u32 h = (hh << 8) | hl;
	u32 wh = (u32)in_u8();
	u32 wl = (u32)in_u8();
	u32 w = (wh << 8) | wl;
	u32 comps = (u32)in_u8();
	u32 hs = (u32)in_u8();
	u32 vs = (u32)in_u8();
	if (comps == 0) {
		return 0;
	}
	if (comps > 4) {
		return 0;
	}
	im->w = w;
	im->h = h;
	im->channels = 3;
	return 1;
}

u32 load_mpng(ImlibImage* im) {
	u32 w = in_u32be();
	u32 h = in_u32be();
	u32 depth = (u32)in_u8();
	u32 color = (u32)in_u8();
	if (depth != 8) {
		return 0;
	}
	im->w = w;
	im->h = h;
	if (color == 6) {
		im->channels = 4;
	} else {
		im->channels = 3;
	}
	return 1;
}

u32 load_mtif(ImlibImage* im) {
	u32 w = in_u32le();
	u32 h = in_u32le();
	u32 bps = (u32)in_u16le();
	u32 spp = (u32)in_u16le();
	if (bps != 8) {
		return 0;
	}
	if (spp == 0) {
		return 0;
	}
	if (spp > 4) {
		return 0;
	}
	im->w = w;
	im->h = h;
	im->channels = spp;
	return 1;
}

u32 image_dimensions_ok(u32 w, u32 h) {
	if (w > 0 && h > 0 && (u64)w * (u64)h <= 536870911) {
		return 1;
	}
	return 0;
}

void render(ImlibImage* im) {
	u32 size = im->w * im->h * im->channels;
	u8* buf = alloc(size);
	if (buf == 0) {
		exit(1);
	}
	u32 step = im->h / 16;
	if (step == 0) {
		step = 1;
	}
	u32 y = 0;
	while (y < im->h) {
		u32 off = y * im->w * im->channels;
		buf[off] = (u8)y;
		y = y + step;
	}
	out((u64)im->w);
	out((u64)im->h);
	out((u64)im->channels);
	free(buf);
}

void main() {
	u32 magic = in_u32be();
	ImlibImage im;
	u32 ok = 0;
	if (magic == 0x4D4A5047) {
		ok = load_mjpg(&im);
	} else if (magic == 0x4D504E47) {
		ok = load_mpng(&im);
	} else if (magic == 0x4D544946) {
		ok = load_mtif(&im);
	} else {
		exit(1);
	}
	if (!ok) {
		exit(1);
	}
	if (!image_dimensions_ok(im.w, im.h)) {
		exit(1);
	}
	render(&im);
	exit(0);
}
`

// mtpaintSrc models mtpaint 3.40, a raster editor reading MJPG and
// MPNG. The donated check bounds each dimension by MAX_WIDTH/
// MAX_HEIGHT = 16384, exactly the check transferred in §4.6.1/§4.7.2.
const mtpaintSrc = `
struct Settings {
	u32 width;
	u32 height;
	u32 bpp;
};

u32 load_mjpg(Settings* s) {
	u32 version = (u32)in_u8();
	u32 precision = (u32)in_u8();
	u32 h = (u32)in_u16be();
	u32 w = (u32)in_u16be();
	u32 comps = (u32)in_u8();
	if (comps == 0) {
		return 0;
	}
	if (comps > 4) {
		return 0;
	}
	s->width = w;
	s->height = h;
	s->bpp = 3;
	return 1;
}

u32 load_mpng(Settings* s) {
	u32 w = in_u32be();
	u32 h = in_u32be();
	u32 depth = (u32)in_u8();
	u32 color = (u32)in_u8();
	if (depth != 8) {
		return 0;
	}
	s->width = w;
	s->height = h;
	if (color == 6) {
		s->bpp = 4;
	} else {
		s->bpp = 3;
	}
	return 1;
}

void paint(Settings* s) {
	u32 size = s->width * s->height * s->bpp;
	u8* canvas = alloc(size);
	if (canvas == 0) {
		exit(1);
	}
	canvas[0] = 1;
	canvas[size - 1] = 2;
	out((u64)s->width);
	out((u64)s->height);
	free(canvas);
}

void main() {
	u32 magic = in_u32be();
	Settings s;
	u32 ok = 0;
	if (magic == 0x4D4A5047) {
		ok = load_mjpg(&s);
	} else if (magic == 0x4D504E47) {
		ok = load_mpng(&s);
	} else {
		exit(1);
	}
	if (!ok) {
		exit(1);
	}
	if (s.width > 16384 || s.height > 16384) {
		exit(1);
	}
	paint(&s);
	exit(0);
}
`

// viewniorSrc models Viewnior 1.4 (gdk-pixbuf loaders) reading MJPG,
// MPNG and MTIF. The donated check is the rowstride division test of
// §4.6.2/§4.7.3/§4.8.1:
//
//	rowstride = width * channels;
//	rowstride = (rowstride + 3) & ~3;    /* align to 32-bit */
//	if (bytes / rowstride != height)     /* overflow */
const viewniorSrc = `
struct Pixbuf {
	u32 width;
	u32 height;
	u32 channels;
	u32 rowstride;
	u8* pixels;
};

u32 load_mjpg(Pixbuf* pb) {
	u32 version = (u32)in_u8();
	u32 precision = (u32)in_u8();
	u32 h = (u32)in_u16be();
	u32 w = (u32)in_u16be();
	u32 comps = (u32)in_u8();
	if (comps == 0) {
		return 0;
	}
	if (comps > 4) {
		return 0;
	}
	pb->width = w;
	pb->height = h;
	pb->channels = 3;
	return 1;
}

u32 load_mpng(Pixbuf* pb) {
	u32 w = in_u32be();
	u32 h = in_u32be();
	u32 depth = (u32)in_u8();
	u32 color = (u32)in_u8();
	if (depth != 8) {
		return 0;
	}
	pb->width = w;
	pb->height = h;
	if (color == 6) {
		pb->channels = 4;
	} else {
		pb->channels = 3;
	}
	return 1;
}

u32 load_mtif(Pixbuf* pb) {
	u32 w = in_u32le();
	u32 h = in_u32le();
	u32 bps = (u32)in_u16le();
	u32 spp = (u32)in_u16le();
	if (bps != 8) {
		return 0;
	}
	if (spp == 0) {
		return 0;
	}
	if (spp > 4) {
		return 0;
	}
	pb->width = w;
	pb->height = h;
	pb->channels = spp;
	return 1;
}

u32 pixbuf_check(Pixbuf* pb) {
	if (pb->width == 0 || pb->height == 0) {
		return 0;
	}
	u32 rowstride = pb->width * pb->channels;
	if (rowstride / pb->channels != pb->width) {
		return 0;
	}
	rowstride = (rowstride + 3) & 4294967292;
	if (rowstride == 0) {
		return 0;
	}
	u32 bytes = rowstride * pb->height;
	if (bytes / rowstride != pb->height) {
		return 0;
	}
	pb->rowstride = rowstride;
	return 1;
}

void show(Pixbuf* pb) {
	u32 size = pb->rowstride * pb->height;
	u8* pixels = alloc(size);
	if (pixels == 0) {
		exit(1);
	}
	pb->pixels = pixels;
	pixels[0] = 1;
	pixels[size - 1] = 2;
	out((u64)pb->width);
	out((u64)pb->height);
	out((u64)pb->rowstride);
	free(pixels);
}

void main() {
	u32 magic = in_u32be();
	Pixbuf pb;
	u32 ok = 0;
	if (magic == 0x4D4A5047) {
		ok = load_mjpg(&pb);
	} else if (magic == 0x4D504E47) {
		ok = load_mpng(&pb);
	} else if (magic == 0x4D544946) {
		ok = load_mtif(&pb);
	} else {
		exit(1);
	}
	if (!ok) {
		exit(1);
	}
	if (!pixbuf_check(&pb)) {
		exit(1);
	}
	show(&pb);
	exit(0);
}
`

// gnashSrc models GNU Gnash 0.8.11 reading MSWF. It contains the two
// checks of §4.9.1 (MAX_SAMP_FACTOR = 4 and JPEG_MAX_DIMENSION =
// 65500) plus the §4.9.2 rgb-size check (maxSize / channels / width /
// height > 0).
const gnashSrc = `
struct SwfDec {
	u32 frame_w;
	u32 frame_h;
	u32 width;
	u32 height;
	u32 h_samp;
	u32 v_samp;
};

u32 parse_header(SwfDec* dec) {
	u32 version = (u32)in_u8();
	dec->frame_w = (u32)in_u16le();
	dec->frame_h = (u32)in_u16le();
	u32 jpeg_len = in_u32le();
	if (jpeg_len < 7) {
		return 0;
	}
	dec->height = (u32)in_u16be();
	dec->width = (u32)in_u16be();
	u32 comps = (u32)in_u8();
	dec->h_samp = (u32)in_u8();
	dec->v_samp = (u32)in_u8();
	if (comps == 0) {
		return 0;
	}
	if (comps > 4) {
		return 0;
	}
	return 1;
}

u32 jpeg_checks(SwfDec* dec) {
	if (dec->h_samp <= 0 || dec->h_samp > 4 || dec->v_samp <= 0 || dec->v_samp > 4) {
		return 0;
	}
	if (dec->height > 65500 || dec->width > 65500) {
		return 0;
	}
	return 1;
}

u32 rgb_size_ok(u32 width, u32 height, u32 channels) {
	u32 max_size = 2147483647;
	if (width >= max_size || height >= max_size) {
		return 0;
	}
	if (width == 0 || height == 0) {
		return 0;
	}
	max_size = max_size / channels;
	max_size = max_size / width;
	max_size = max_size / height;
	if (max_size > 0) {
		return 1;
	}
	return 0;
}

void decode(SwfDec* dec) {
	u32 comp_size = dec->width * dec->height * dec->h_samp * dec->v_samp;
	u8* comp = alloc(comp_size);
	if (comp == 0) {
		exit(1);
	}
	comp[0] = 1;
	comp[comp_size - 1] = 2;
	u32 rgb_size = dec->width * dec->height * 4;
	u8* rgb = alloc(rgb_size);
	if (rgb == 0) {
		exit(1);
	}
	rgb[0] = 3;
	rgb[rgb_size - 1] = 4;
	out((u64)dec->width);
	out((u64)dec->height);
	free(comp);
	free(rgb);
}

void main() {
	u32 magic = in_u32be();
	if (magic != 0x4D535746) {
		exit(1);
	}
	SwfDec dec;
	if (!parse_header(&dec)) {
		exit(1);
	}
	if (!jpeg_checks(&dec)) {
		exit(1);
	}
	if (!rgb_size_ok(dec.width, dec.height, 4)) {
		exit(1);
	}
	decode(&dec);
	exit(0);
}
`

// openjpegSrc models OpenJPEG 1.5.2 reading MJ2K. The donated check is
// the correct tile bound of §4.3: tileno < 0 || tileno >= cp->tw *
// cp->th (the first disjunct is redundant for unsigned tile numbers,
// as the paper notes).
const openjpegSrc = `
struct CodingParams {
	u32 tw;
	u32 th;
	u32 width;
	u32 height;
};

u32 read_siz(CodingParams* cp) {
	cp->tw = (u32)in_u8();
	cp->th = (u32)in_u8();
	cp->width = (u32)in_u16be();
	cp->height = (u32)in_u16be();
	if (cp->tw == 0 || cp->th == 0) {
		return 0;
	}
	if (cp->width == 0 || cp->height == 0) {
		return 0;
	}
	return 1;
}

void decode_tiles(CodingParams* cp) {
	u32 ntiles = cp->tw * cp->th;
	u32* tile_lens = (u32*)alloc(ntiles * 4);
	if (tile_lens == 0) {
		exit(1);
	}
	u32 tileno = (u32)in_u16be();
	u32 tlen = (u32)in_u16be();
	if (tileno >= cp->tw * cp->th) {
		exit(1);
	}
	tile_lens[tileno] = tlen;
	out((u64)tileno);
	out((u64)tlen);
	free((u8*)tile_lens);
}

void main() {
	u32 magic = in_u32be();
	if (magic != 0x4D4A324B) {
		exit(1);
	}
	CodingParams cp;
	if (!read_siz(&cp)) {
		exit(1);
	}
	decode_tiles(&cp);
	exit(0);
}
`

// magick9Src models ImageMagick Display 6.5.2-9 reading MGIF: the
// donor for gif2tiff. The donated check bounds the LZW code size by
// MaximumLZWBits = 12 (§4.4).
const magick9Src = `
struct GifImage {
	u32 width;
	u32 height;
	u32 data_size;
};

u16 gif_prefix[4096];
u8 gif_suffix[4096];

u32 read_gif(GifImage* img) {
	u32 screen_w = (u32)in_u16le();
	u32 screen_h = (u32)in_u16le();
	u32 flags = (u32)in_u8();
	u32 left = (u32)in_u16le();
	u32 top = (u32)in_u16le();
	img->width = (u32)in_u16le();
	img->height = (u32)in_u16le();
	img->data_size = (u32)in_u8();
	if (img->width == 0 || img->height == 0) {
		return 0;
	}
	return 1;
}

void decode_lzw(GifImage* img) {
	if (img->data_size > 12) {
		exit(1);
	}
	u32 clear = (u32)1 << img->data_size;
	u32 i = 0;
	while (i < clear) {
		gif_prefix[i] = (u16)i;
		gif_suffix[i] = (u8)i;
		i = i + 1;
	}
	out((u64)clear);
	out((u64)img->width);
}

void main() {
	u32 magic = in_u32be();
	if (magic != 0x4D474946) {
		exit(1);
	}
	GifImage img;
	if (!read_gif(&img)) {
		exit(1);
	}
	decode_lzw(&img);
	exit(0);
}
`

// wireshark18Src models Wireshark 1.8.6 dissecting MPKT captures. The
// donated check is the `if (real_len)` payload-length guard of §4.5;
// the variable was renamed from plen during the 1.4 -> 1.8
// reengineering, which the name translation must bridge.
const wireshark18Src = `
struct PacketInfo {
	u32 proto;
	u32 flags;
	u32 real_len;
	u32 seq;
};

u32 dissect_header(PacketInfo* pi) {
	pi->proto = (u32)in_u16be();
	pi->flags = (u32)in_u8();
	pi->real_len = (u32)in_u16be();
	pi->seq = (u32)in_u16be();
	return 1;
}

void dissect_pft(PacketInfo* pi) {
	u32 total = in_len() - 11;
	if (pi->real_len) {
		u32 nframes = total / pi->real_len;
		u32 partial = total % pi->real_len;
		out((u64)nframes);
		out((u64)partial);
	} else {
		exit(1);
	}
	out((u64)pi->seq);
}

void main() {
	u32 magic = in_u32be();
	if (magic != 0x4D504B54) {
		exit(1);
	}
	PacketInfo pi;
	dissect_header(&pi);
	dissect_pft(&pi);
	exit(0);
}
`
