package apps

import (
	"testing"

	"codephage/internal/vm"
)

func TestAllAppsCompile(t *testing.T) {
	for _, a := range append(append([]*App{}, Donors()...), Recipients()...) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			m, err := Build(a)
			if err != nil {
				t.Fatalf("%s does not compile: %v", a.Name, err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", a.Name, err)
			}
		})
	}
}

func runApp(t *testing.T, app *App, input []byte) *vm.Result {
	t.Helper()
	m, err := Build(app)
	if err != nil {
		t.Fatalf("build %s: %v", app.Name, err)
	}
	return vm.New(m, input).Run()
}

func TestRecipientsProcessRegressionSuites(t *testing.T) {
	for _, a := range Recipients() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for i, input := range RegressionSuite(a.Formats[0]) {
				r := runApp(t, a, input)
				if !r.OK() {
					t.Errorf("input %d traps: %v", i, r.Trap)
					continue
				}
				if r.ExitCode != 0 {
					t.Errorf("input %d: exit %d, want 0", i, r.ExitCode)
				}
			}
		})
	}
}

func TestDonorsProcessSeeds(t *testing.T) {
	for _, a := range Donors() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, f := range a.Formats {
				r := runApp(t, a, SeedFor(f))
				if !r.OK() {
					t.Errorf("%s seed traps: %v", f, r.Trap)
					continue
				}
				if r.ExitCode != 0 {
					t.Errorf("%s seed: exit %d, want 0", f, r.ExitCode)
				}
			}
		})
	}
}

func TestDonorsProcessRegressionSuites(t *testing.T) {
	for _, a := range Donors() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, f := range a.Formats {
				for i, input := range RegressionSuite(f) {
					r := runApp(t, a, input)
					if !r.OK() {
						t.Errorf("%s input %d traps: %v", f, i, r.Trap)
					}
				}
			}
		})
	}
}

func TestKnownErrorInputsTrapRecipients(t *testing.T) {
	for _, tgt := range Targets() {
		if tgt.Error == nil {
			continue // overflow targets: DIODE discovers the input
		}
		tgt := tgt
		t.Run(tgt.Recipient+"/"+tgt.ID, func(t *testing.T) {
			app, err := ByName(tgt.Recipient)
			if err != nil {
				t.Fatal(err)
			}
			r := runApp(t, app, tgt.Error)
			if r.OK() {
				t.Fatalf("error input did not trap (exit %d)", r.ExitCode)
			}
			switch tgt.Kind {
			case OOB:
				if r.Trap.Kind != vm.TrapOOBWrite && r.Trap.Kind != vm.TrapOOBRead {
					t.Errorf("trap = %v, want OOB", r.Trap.Kind)
				}
			case DivZero:
				if r.Trap.Kind != vm.TrapDivZero {
					t.Errorf("trap = %v, want div-by-zero", r.Trap.Kind)
				}
			}
		})
	}
}

func TestDonorsSurviveErrorInputs(t *testing.T) {
	// Donor selection requires donors to process BOTH the seed and the
	// error-triggering input without crashing.
	for _, tgt := range Targets() {
		if tgt.Error == nil {
			continue
		}
		for _, dn := range tgt.Donors {
			donor, err := ByName(dn)
			if err != nil {
				t.Fatal(err)
			}
			r := runApp(t, donor, tgt.Error)
			if !r.OK() {
				t.Errorf("donor %s traps on %s error input: %v", dn, tgt.ID, r.Trap)
			}
		}
	}
}

func TestSeedsMatchTargetFormats(t *testing.T) {
	for _, tgt := range Targets() {
		if len(tgt.Seed) == 0 {
			t.Errorf("%s/%s has no seed", tgt.Recipient, tgt.ID)
		}
		app, err := ByName(tgt.Recipient)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range app.Formats {
			if f == tgt.Format {
				found = true
			}
		}
		if !found {
			t.Errorf("%s does not read format %s", tgt.Recipient, tgt.Format)
		}
		// The recipient must process the seed cleanly.
		r := runApp(t, app, tgt.Seed)
		if !r.OK() || r.ExitCode != 0 {
			t.Errorf("%s seed for %s: exit %d trap %v", tgt.Recipient, tgt.ID, r.ExitCode, r.Trap)
		}
	}
}

func TestDonorBinaryIsStripped(t *testing.T) {
	donor, err := ByName("feh")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildDonorBinary(donor)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stripped {
		t.Error("donor binary not stripped")
	}
	if m.Types != nil || m.GlobalVars != nil {
		t.Error("donor binary retains debug info")
	}
	for _, f := range m.Funcs {
		if f.Vars != nil {
			t.Errorf("function %s retains variable info", f.Name)
		}
	}
	// Stripped binary must still run.
	r := vm.New(m, SeedMJPG()).Run()
	if !r.OK() || r.ExitCode != 0 {
		t.Fatalf("stripped donor run: exit %d trap %v", r.ExitCode, r.Trap)
	}
}

func TestDonorsForFormat(t *testing.T) {
	ds := DonorsForFormat("mjpg")
	if len(ds) != 3 {
		t.Fatalf("mjpg donors = %d, want 3 (feh, mtpaint, viewnior)", len(ds))
	}
	if len(DonorsForFormat("nope")) != 0 {
		t.Fatal("unknown format has donors")
	}
}

func TestTargetCatalogue(t *testing.T) {
	ts := Targets()
	if len(ts) != 10 {
		t.Fatalf("targets = %d, want 10 (paper: ten errors)", len(ts))
	}
	pairs := 0
	for _, tgt := range ts {
		pairs += len(tgt.Donors)
		for _, dn := range tgt.Donors {
			d, err := ByName(dn)
			if err != nil {
				t.Fatalf("%s/%s: %v", tgt.Recipient, tgt.ID, err)
			}
			ok := false
			for _, f := range d.Formats {
				if f == tgt.Format {
					ok = true
				}
			}
			if !ok {
				t.Errorf("donor %s cannot read %s (target %s)", dn, tgt.Format, tgt.ID)
			}
		}
	}
	if pairs != 18 {
		t.Errorf("donor/recipient rows = %d, want 18 (Figure 8)", pairs)
	}
	if _, err := TargetByID("cwebp", "jpegdec.c@248"); err != nil {
		t.Error(err)
	}
	if _, err := TargetByID("cwebp", "nope"); err == nil {
		t.Error("expected error for unknown target")
	}
}
