package apps

// cwebpSrc models CWebP 0.3.1's ReadJPEG (Figure 1): the buffer size
// stride * height is computed in 32 bits with no overflow check, so
// large width/height fields allocate a short buffer and the row loop
// writes past its end (the paper's jpegdec.c:248 target).
const cwebpSrc = `
struct JpegDec {
	u32 output_width;
	u32 output_height;
	u32 output_components;
	u32 stride;
	u8* rgb;
};

u32 read_header(JpegDec* dinfo) {
	u32 magic = in_u32be();
	if (magic != 0x4D4A5047) {
		return 0;
	}
	u32 version = (u32)in_u8();
	u32 precision = (u32)in_u8();
	dinfo->output_height = (u32)in_u16be();
	dinfo->output_width = (u32)in_u16be();
	dinfo->output_components = (u32)in_u8();
	u32 hs = (u32)in_u8();
	u32 vs = (u32)in_u8();
	if (dinfo->output_components == 0) {
		return 0;
	}
	if (dinfo->output_components > 4) {
		return 0;
	}
	return 1;
}

u32 read_jpeg(JpegDec* dinfo) {
	u32 width = dinfo->output_width;
	u32 height = dinfo->output_height;
	u32 stride = dinfo->output_width * dinfo->output_components;
	dinfo->stride = stride;
	u8* rgb = alloc(stride * height);
	if (rgb == 0) {
		return 0;
	}
	dinfo->rgb = rgb;
	u32 y = 0;
	while (y < height) {
		u32 off = y * stride;
		rgb[off] = (u8)y;
		rgb[off + stride - 1] = (u8)(y + 1);
		y = y + 1;
	}
	out((u64)width);
	out((u64)height);
	return 1;
}

void main() {
	JpegDec dinfo;
	if (!read_header(&dinfo)) {
		exit(1);
	}
	if (!read_jpeg(&dinfo)) {
		exit(1);
	}
	exit(0);
}
`

// dilloSrc models Dillo 2.1 (CVE-2009-2294): the PNG decoder computes
// the image buffer size as a 32-bit product guarded by a check that
// itself overflows (png.c@203), and the FLTK image cache repeats the
// unchecked product in a second allocation (fltkimagebuf.cc@39).
const dilloSrc = `
struct PngPtr {
	u32 width;
	u32 height;
	u32 depth;
	u32 color;
	u32 channels;
	u8* image;
};

struct FltkBuf {
	u32 w;
	u32 h;
	u8* cache;
};

u32 png_read_header(PngPtr* png_ptr) {
	u32 magic = in_u32be();
	if (magic != 0x4D504E47) {
		return 0;
	}
	png_ptr->width = in_u32be();
	png_ptr->height = in_u32be();
	png_ptr->depth = (u32)in_u8();
	png_ptr->color = (u32)in_u8();
	if (png_ptr->depth != 8) {
		return 0;
	}
	if (png_ptr->color == 6) {
		png_ptr->channels = 4;
	} else {
		png_ptr->channels = 3;
	}
	return 1;
}

u32 png_datainfo(PngPtr* png_ptr) {
	u32 rowbytes = png_ptr->width * png_ptr->channels;
	u32 total = rowbytes * png_ptr->height;
	if (total > 2147483647) {
		return 0;
	}
	u8* image = alloc(total);
	if (image == 0) {
		return 0;
	}
	png_ptr->image = image;
	u32 y = 0;
	while (y < png_ptr->height) {
		u32 off = y * rowbytes;
		image[off] = (u8)y;
		y = y + 1;
	}
	out((u64)png_ptr->width);
	out((u64)png_ptr->height);
	return 1;
}

u32 fltk_imgbuf(FltkBuf* buf, PngPtr* png_ptr) {
	buf->w = png_ptr->width;
	buf->h = png_ptr->height;
	u32 size = buf->w * buf->h * 4;
	u8* cache = alloc(size);
	if (cache == 0) {
		return 0;
	}
	buf->cache = cache;
	u32 y = 0;
	while (y < buf->h) {
		u32 off = y * buf->w * 4;
		cache[off] = (u8)y;
		y = y + 1;
	}
	out((u64)buf->w);
	return 1;
}

void main() {
	PngPtr png_ptr;
	FltkBuf buf;
	if (!png_read_header(&png_ptr)) {
		exit(1);
	}
	if (!png_datainfo(&png_ptr)) {
		exit(1);
	}
	if (!fltk_imgbuf(&buf, &png_ptr)) {
		exit(1);
	}
	exit(0);
}
`

// displaySrc models ImageMagick Display 6.5.2-8 reading MTIF
// (CVE-2009-1882): the pixel-buffer length width * height * bpp is
// computed with no overflow checking at xwindow.c@5619, and the
// GUI resize path repeats the pattern at display.c@4393.
const displaySrc = `
struct TiffInfo {
	u32 width;
	u32 height;
	u32 bits_per_sample;
	u32 samples_per_pixel;
};

struct XWindow {
	u32 width;
	u32 height;
	u8* pixels;
};

u32 read_tiff(TiffInfo* tiff) {
	u32 magic = in_u32be();
	if (magic != 0x4D544946) {
		return 0;
	}
	tiff->width = in_u32le();
	tiff->height = in_u32le();
	tiff->bits_per_sample = (u32)in_u16le();
	tiff->samples_per_pixel = (u32)in_u16le();
	if (tiff->bits_per_sample != 8) {
		return 0;
	}
	if (tiff->samples_per_pixel == 0) {
		return 0;
	}
	if (tiff->samples_per_pixel > 4) {
		return 0;
	}
	return 1;
}

u32 xwindow_display(XWindow* win, TiffInfo* tiff) {
	win->width = tiff->width;
	win->height = tiff->height;
	u32 length = win->width * win->height * tiff->samples_per_pixel;
	u8* pixels = alloc(length);
	if (pixels == 0) {
		return 0;
	}
	win->pixels = pixels;
	u32 y = 0;
	while (y < win->height) {
		u32 off = y * win->width * tiff->samples_per_pixel;
		pixels[off] = (u8)y;
		y = y + 1;
	}
	out((u64)win->width);
	out((u64)win->height);
	return 1;
}

u32 resize_image(TiffInfo* tiff) {
	u32 width = tiff->width;
	u32 height = tiff->height;
	u32 length = width * height * 4;
	u8* resized = alloc(length);
	if (resized == 0) {
		return 0;
	}
	u32 y = 0;
	while (y < height) {
		u32 off = y * width * 4;
		resized[off] = (u8)y;
		y = y + 1;
	}
	out((u64)width);
	free(resized);
	return 1;
}

void main() {
	TiffInfo tiff;
	XWindow win;
	if (!read_tiff(&tiff)) {
		exit(1);
	}
	if (!xwindow_display(&win, &tiff)) {
		exit(1);
	}
	if (!resize_image(&tiff)) {
		exit(1);
	}
	exit(0);
}
`

// swfplaySrc models Swfplay 0.5.5 (swfdec) reading MSWF: component
// buffers sized width*height*h_samp*v_samp with insufficient checking
// (jpeg.c@192), then the YUVA->RGBA merge buffer width*height*4
// (jpeg_rgb_decoder.c@253/257).
const swfplaySrc = `
struct JpegDecoder {
	u32 width;
	u32 height;
	u32 components;
	u32 h_samp;
	u32 v_samp;
};

u32 parse_swf(JpegDecoder* dec) {
	u32 magic = in_u32be();
	if (magic != 0x4D535746) {
		return 0;
	}
	u32 version = (u32)in_u8();
	u32 frame_w = (u32)in_u16le();
	u32 frame_h = (u32)in_u16le();
	u32 jpeg_len = in_u32le();
	if (jpeg_len < 7) {
		return 0;
	}
	dec->height = (u32)in_u16be();
	dec->width = (u32)in_u16be();
	dec->components = (u32)in_u8();
	dec->h_samp = (u32)in_u8();
	dec->v_samp = (u32)in_u8();
	if (dec->components == 0) {
		return 0;
	}
	if (dec->components > 4) {
		return 0;
	}
	return 1;
}

u32 jpeg_decode(JpegDecoder* dec) {
	u32 comp_size = dec->width * dec->height * dec->h_samp * dec->v_samp;
	u8* comp = alloc(comp_size);
	if (comp == 0) {
		return 0;
	}
	u32 y = 0;
	while (y < dec->height) {
		u32 off = y * dec->width * dec->h_samp * dec->v_samp;
		comp[off] = (u8)y;
		y = y + 1;
	}
	out((u64)dec->width);
	free(comp);
	return 1;
}

u32 jpeg_rgb_decode(JpegDecoder* dec) {
	u32 tmp_size = dec->width * dec->height * 4;
	u8* tmp = alloc(tmp_size);
	if (tmp == 0) {
		return 0;
	}
	u8* image = alloc(dec->width * dec->height * 4);
	if (image == 0) {
		return 0;
	}
	u32 y = 0;
	while (y < dec->height) {
		u32 off = y * dec->width * 4;
		tmp[off] = (u8)y;
		image[off] = (u8)(y + 1);
		y = y + 1;
	}
	out((u64)dec->height);
	free(tmp);
	free(image);
	return 1;
}

void main() {
	JpegDecoder dec;
	if (!parse_swf(&dec)) {
		exit(1);
	}
	if (!jpeg_decode(&dec)) {
		exit(1);
	}
	if (!jpeg_rgb_decode(&dec)) {
		exit(1);
	}
	exit(0);
}
`

// jasperSrc models JasPer 1.9's off-by-one tile check (jpc_dec.c:492):
// the bound test uses > where >= is required, so a tile number equal
// to the tile count writes one slot past the end of the tile array.
const jasperSrc = `
struct JpcDec {
	u32 numtiles;
	u32 width;
	u32 height;
	u32* tile_lens;
};

struct SotMarker {
	u32 tileno;
	u32 len;
};

u32 read_siz(JpcDec* dec) {
	u32 magic = in_u32be();
	if (magic != 0x4D4A324B) {
		return 0;
	}
	u32 tx = (u32)in_u8();
	u32 ty = (u32)in_u8();
	dec->width = (u32)in_u16be();
	dec->height = (u32)in_u16be();
	dec->numtiles = tx * ty;
	if (dec->numtiles == 0) {
		return 0;
	}
	if (dec->width == 0 || dec->height == 0) {
		return 0;
	}
	return 1;
}

u32 process_sot(JpcDec* dec, SotMarker* sot) {
	sot->tileno = (u32)in_u16be();
	sot->len = (u32)in_u16be();
	if (sot->tileno > dec->numtiles) {
		return 0;
	}
	dec->tile_lens[sot->tileno] = sot->len;
	out((u64)sot->tileno);
	return 1;
}

void main() {
	JpcDec dec;
	SotMarker sot;
	if (!read_siz(&dec)) {
		exit(1);
	}
	dec.tile_lens = (u32*)alloc(dec.numtiles * 4);
	if (dec.tile_lens == 0) {
		exit(1);
	}
	if (!process_sot(&dec, &sot)) {
		exit(1);
	}
	out((u64)dec.numtiles);
	exit(0);
}
`

// gif2tiffSrc models gif2tiff from libtiff 4.0.3 (CVE-2013-4231): the
// LZW code size field is used to initialise statically allocated
// tables with no bound check, so a code size above 12 overruns them.
const gif2tiffSrc = `
struct GifHeader {
	u32 width;
	u32 height;
	u32 datasize;
};

u16 prefix_table[4096];
u8 suffix_table[4096];
u8 stack_table[4096];

u32 read_gif(GifHeader* gif) {
	u32 magic = in_u32be();
	if (magic != 0x4D474946) {
		return 0;
	}
	u32 screen_w = (u32)in_u16le();
	u32 screen_h = (u32)in_u16le();
	u32 flags = (u32)in_u8();
	u32 left = (u32)in_u16le();
	u32 top = (u32)in_u16le();
	gif->width = (u32)in_u16le();
	gif->height = (u32)in_u16le();
	gif->datasize = (u32)in_u8();
	if (gif->width == 0 || gif->height == 0) {
		return 0;
	}
	return 1;
}

u32 process_lzw(GifHeader* gif) {
	u32 datasize = gif->datasize;
	u32 clear = (u32)1 << datasize;
	u32 code = 0;
	while (code < clear) {
		prefix_table[code] = (u16)code;
		suffix_table[code] = (u8)code;
		code = code + 1;
	}
	out((u64)clear);
	out((u64)gif->width);
	return 1;
}

void main() {
	GifHeader gif;
	if (!read_gif(&gif)) {
		exit(1);
	}
	if (!process_lzw(&gif)) {
		exit(1);
	}
	exit(0);
}
`

// wireshark14Src models Wireshark 1.4.14's DCP-ETSI dissector
// (packet-dcp-etsi.c): the payload length field is used as a divisor
// with no zero check, in both the fragment-count computation and the
// padding computation.
const wireshark14Src = `
struct DcpInfo {
	u32 proto;
	u32 flags;
	u32 plen;
	u32 seq;
};

u32 dissect_header(DcpInfo* di) {
	di->proto = (u32)in_u16be();
	di->flags = (u32)in_u8();
	di->plen = (u32)in_u16be();
	di->seq = (u32)in_u16be();
	return 1;
}

u32 dissect_pft(DcpInfo* di) {
	u32 plen = di->plen;
	u32 total = in_len() - 11;
	u32 nframes = total / plen;
	u32 padding = total % plen;
	out((u64)nframes);
	out((u64)padding);
	out((u64)di->seq);
	return 1;
}

void main() {
	u32 magic = in_u32be();
	if (magic != 0x4D504B54) {
		exit(1);
	}
	DcpInfo di;
	dissect_header(&di);
	dissect_pft(&di);
	exit(0);
}
`
