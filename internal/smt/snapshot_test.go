package smt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"codephage/internal/bitvec"
)

// snapshotWorkload issues queries whose verdicts must reach the
// verdict memo (they survive simplification, probing cannot prove
// them, so they all go to SAT): two equivalences, one refutable pair
// that still reaches SAT via identical byte deps, one Sat query, and
// one bounded query that exhausts its budget.
func snapshotWorkload(t testing.TB, svc *Service) (satCalls int) {
	t.Helper()
	ss := svc.Session()
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)

	mustEquiv := func(a, b *bitvec.Expr, want bool) {
		t.Helper()
		got, err := ss.Equiv(a, b)
		if err != nil || got != want {
			t.Fatalf("Equiv=%v/%v, want %v", got, err, want)
		}
	}
	mustEquiv(bitvec.Add(x, y), bitvec.Add(y, x), true)
	mustEquiv(bitvec.Mul(x, bitvec.Const(8, 2)), bitvec.Shl(x, bitvec.Const(8, 1)), true)

	if ok, m, err := ss.Sat(bitvec.Eq(bitvec.Mul(x, y), bitvec.Const(8, 12))); err != nil || !ok || m == nil {
		t.Fatalf("Sat(x*y==12)=%v/%v/%v", ok, m, err)
	}

	// A budget-exhausted verdict: one conflict is never enough for the
	// multiplication equivalence below.
	bounded := svc.Session()
	bounded.MaxConflicts = 1
	if _, err := bounded.Equiv(bitvec.Mul(x, y), bitvec.Mul(y, x)); !errors.Is(err, ErrBudget) {
		t.Fatalf("bounded Equiv err=%v, want ErrBudget", err)
	}
	return ss.Stats.SATCalls + bounded.Stats.SATCalls
}

// replaySnapshotWorkload re-asks every workload query and returns the
// session SAT calls it needed.
func replaySnapshotWorkload(t testing.TB, svc *Service) int {
	return snapshotWorkload(t, svc)
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := NewService(Config{})
	if n := snapshotWorkload(t, src); n == 0 {
		t.Fatal("workload issued no SAT calls; nothing would be persisted")
	}
	data := src.EncodeMemo()

	dst := NewService(Config{})
	if err := dst.LoadMemoBytes(data); err != nil {
		t.Fatal(err)
	}
	if st := dst.Stats(); st.MemoLoaded == 0 {
		t.Fatalf("nothing loaded: %+v", st)
	}
	if n := replaySnapshotWorkload(t, dst); n != 0 {
		t.Fatalf("warm replay issued %d SAT calls, want 0", n)
	}
	st := dst.Stats()
	if st.MemoLoadedHits == 0 {
		t.Errorf("persistence hits not counted: %+v", st)
	}
	if st.SATCalls != 0 {
		t.Errorf("service-level SAT calls on warm replay: %d", st.SATCalls)
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	a := NewService(Config{})
	snapshotWorkload(t, a)
	d1 := a.EncodeMemo()
	d2 := a.EncodeMemo()
	if string(d1) != string(d2) {
		t.Fatal("EncodeMemo is not deterministic for an unchanged service")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.snap")

	svc := NewService(Config{})
	// Loading a missing snapshot is a cold start, not an error.
	if err := svc.LoadMemo(path); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}
	snapshotWorkload(t, svc)
	if err := svc.SaveMemo(path); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().SnapshotSaves != 1 {
		t.Error("SnapshotSaves not counted")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("snapshot mode %v, want 0644", fi.Mode().Perm())
	}

	warm := NewService(Config{})
	if err := warm.LoadMemo(path); err != nil {
		t.Fatal(err)
	}
	if n := replaySnapshotWorkload(t, warm); n != 0 {
		t.Fatalf("warm replay issued %d SAT calls, want 0", n)
	}
}

// TestSnapshotDropsExhaustedOnConfigMismatch pins the invalidation
// rule: definite verdicts survive any configuration, exhausted ones
// only the identical resolution procedure (replica set + probes).
func TestSnapshotDropsExhaustedOnConfigMismatch(t *testing.T) {
	src := NewService(Config{})
	snapshotWorkload(t, src)
	data := src.EncodeMemo()

	same := NewService(Config{})
	if err := same.LoadMemoBytes(data); err != nil {
		t.Fatal(err)
	}
	other := NewService(Config{PortfolioReplicas: 2})
	if err := other.LoadMemoBytes(data); err != nil {
		t.Fatal(err)
	}
	sameN, otherN := same.Stats().MemoLoaded, other.Stats().MemoLoaded
	if otherN >= sameN {
		t.Fatalf("mismatched config loaded %d entries, same config %d — exhausted entries not dropped", otherN, sameN)
	}
	if otherN == 0 {
		t.Fatal("definite verdicts were dropped along with the exhausted ones")
	}

	// The definite verdicts still answer on the mismatched service...
	ss := other.Session()
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	if ok, err := ss.Equiv(bitvec.Add(x, y), bitvec.Add(y, x)); err != nil || !ok {
		t.Fatalf("definite verdict lost: %v/%v", ok, err)
	}
	if ss.Stats.SATCalls != 0 {
		t.Errorf("definite verdict re-proven (%d SAT calls)", ss.Stats.SATCalls)
	}
	// ...while the exhausted query is genuinely re-attempted.
	bounded := other.Session()
	bounded.MaxConflicts = 1
	bounded.Equiv(bitvec.Mul(x, y), bitvec.Mul(y, x))
	if bounded.Stats.SATCalls == 0 {
		t.Error("exhausted entry answered from the mismatched snapshot")
	}
}

func TestSnapshotLoadIntoDisabledMemo(t *testing.T) {
	src := NewService(Config{})
	snapshotWorkload(t, src)
	data := src.EncodeMemo()
	dst := NewService(Config{DisableMemo: true})
	if err := dst.LoadMemoBytes(data); err != nil {
		t.Fatal(err)
	}
	if n := dst.Stats().MemoLoaded; n != 0 {
		t.Fatalf("memo-disabled service loaded %d verdicts", n)
	}
}

// refixChecksum recomputes the trailing SHA-256 after a mutation, so
// corruption tests reach the structural decoder instead of dying at
// the checksum gate.
func refixChecksum(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte{}, body...), sum[:]...)
}

func TestSnapshotRejectsMalformed(t *testing.T) {
	src := NewService(Config{})
	snapshotWorkload(t, src)
	good := src.EncodeMemo()

	flip := func(i int) []byte {
		b := append([]byte{}, good...)
		b[i] ^= 0x40
		return b
	}
	headerLen := len(snapMagic)
	cases := map[string][]byte{
		"empty":             {},
		"short":             good[:10],
		"magic-only":        []byte(snapMagic),
		"truncated-half":    good[:len(good)/2],
		"truncated-by-one":  good[:len(good)-1],
		"corrupt-magic":     flip(0),
		"corrupt-body":      flip(len(good) / 2),
		"corrupt-checksum":  flip(len(good) - 1),
		"trailing-garbage":  append(append([]byte{}, good...), 0xff),
		"wrong-version":     refixChecksum(setU32(good, headerLen, 999)),
		"hostile-count":     refixChecksum(setU32(good, headerLen+12, 1<<31)),
		"checksum-on-empty": refixChecksum(make([]byte, 64)),
	}
	for name, data := range cases {
		svc := NewService(Config{})
		if err := svc.LoadMemoBytes(data); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s: error %v does not wrap ErrSnapshot", name, err)
		}
		if n := svc.Stats().MemoLoaded; n != 0 {
			t.Errorf("%s: rejected load still installed %d entries", name, n)
		}
		// The service must stay fully functional after a rejected load.
		x := bitvec.Field("x", 8, 0)
		if ok, err := svc.Session().Equiv(bitvec.Add(x, bitvec.Const(8, 0)), x); err != nil || !ok {
			t.Errorf("%s: service broken after rejected load: %v/%v", name, ok, err)
		}
	}
}

func setU32(data []byte, off int, v uint32) []byte {
	b := append([]byte{}, data...)
	binary.LittleEndian.PutUint32(b[off:], v)
	return b
}
