package smt

import (
	"fmt"
	"sync"
	"testing"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// portfolioQueries is a mix of easy and genuinely search-heavy
// queries. With PortfolioTrigger=1 almost every SAT-reaching query
// exhausts the cheap attempt and engages the replica portfolio.
type pq struct {
	name string
	a, b *bitvec.Expr
	want bool
}

func portfolioQueries() []pq {
	x := bitvec.Field("x", 6, 0)
	y := bitvec.Field("y", 6, 1)
	z := bitvec.Field("z", 6, 2)
	c1 := bitvec.Const(6, 1)
	return []pq{
		{"mul-comm", bitvec.Mul(x, y), bitvec.Mul(y, x), true},
		{"mul-assoc", bitvec.Mul(bitvec.Mul(x, y), z), bitvec.Mul(x, bitvec.Mul(y, z)), true},
		{"mul-vs-shift", bitvec.Mul(x, bitvec.Const(6, 2)), bitvec.Shl(x, c1), true},
		{"distrib", bitvec.Mul(x, bitvec.Add(y, z)), bitvec.Add(bitvec.Mul(x, y), bitvec.Mul(x, z)), true},
		{"not-equal", bitvec.Mul(x, y), bitvec.Mul(x, z), false},
		{"add-comm", bitvec.Add(x, y), bitvec.Add(y, x), true},
		{"off-by-one", bitvec.Mul(x, y), bitvec.Add(bitvec.Mul(x, y), c1), false},
	}
}

// answers runs every query on a fresh session of svc and returns the
// verdict/error pairs in order.
func answers(t *testing.T, svc *Service) []string {
	t.Helper()
	ss := svc.Session()
	var out []string
	for _, q := range portfolioQueries() {
		got, err := ss.Equiv(q.a, q.b)
		out = append(out, fmt.Sprintf("%s:%v/%v", q.name, got, err))
		if err == nil && got != q.want {
			t.Errorf("%s: Equiv=%v, want %v", q.name, got, q.want)
		}
	}
	return out
}

// TestPortfolioParallelMatchesSequential is the determinism bar for
// portfolio solving: racing the replicas on goroutines and running
// them one by one must produce identical verdicts (and identical
// budget-exhaustion errors) for every query.
func TestPortfolioParallelMatchesSequential(t *testing.T) {
	par := NewService(Config{PortfolioTrigger: 1, MaxConflicts: 30000})
	seq := NewService(Config{PortfolioTrigger: 1, MaxConflicts: 30000, PortfolioSequential: true})
	pa := answers(t, par)
	sa := answers(t, seq)
	for i := range pa {
		if pa[i] != sa[i] {
			t.Errorf("query %d: parallel %q vs sequential %q", i, pa[i], sa[i])
		}
	}
	if st := par.Stats(); st.PortfolioRaces == 0 {
		t.Errorf("parallel service never engaged the portfolio: %+v", st)
	}
	if st := seq.Stats(); st.PortfolioRaces == 0 {
		t.Errorf("sequential service never engaged the portfolio: %+v", st)
	}
}

// TestPortfolioMatchesBaseline pins that portfolio resolution never
// changes a definitive verdict: a plain single-solver service (one
// replica, effectively the pre-portfolio configuration) agrees with
// the racing portfolio on every query it can finish.
func TestPortfolioMatchesBaseline(t *testing.T) {
	baseline := NewService(Config{PortfolioReplicas: 1})
	racing := NewService(Config{PortfolioTrigger: 1})
	ba := answers(t, baseline)
	ra := answers(t, racing)
	for i := range ba {
		if ba[i] != ra[i] {
			t.Errorf("query %d: baseline %q vs racing %q", i, ba[i], ra[i])
		}
	}
}

// TestPortfolioHammer hammers one shared service with concurrent
// sessions issuing portfolio-triggering queries — the -race exercise
// for the replica racing, loser cancellation, and clause import
// paths. Every worker must see the same verdicts.
func TestPortfolioHammer(t *testing.T) {
	svc := NewService(Config{PortfolioTrigger: 1, MaxConflicts: 30000})
	want := answers(t, svc)

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds*len(want))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ss := svc.Session()
				for i, q := range portfolioQueries() {
					got, err := ss.Equiv(q.a, q.b)
					if s := fmt.Sprintf("%s:%v/%v", q.name, got, err); s != want[i] {
						errs <- fmt.Sprintf("round %d: got %q want %q", r, s, want[i])
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestReplicaStrategiesFixed pins the replica strategy derivation:
// it is part of query semantics (what "Unknown" means), so changing
// it must be a deliberate act that also bumps the snapshot version.
func TestReplicaStrategiesFixed(t *testing.T) {
	if got := replicaStrategy(0); got != (sat.Strategy{}) {
		t.Fatalf("replica 0 is not the baseline strategy: %+v", got)
	}
	seen := map[sat.Strategy]bool{}
	for i := 0; i < 8; i++ {
		st := replicaStrategy(i)
		if seen[st] {
			t.Fatalf("replica %d repeats an earlier strategy: %+v", i, st)
		}
		seen[st] = true
		if again := replicaStrategy(i); again != st {
			t.Fatalf("replicaStrategy(%d) is not deterministic", i)
		}
		if i > 0 && st.Seed == 0 {
			t.Fatalf("replica %d has a zero seed (baseline collision)", i)
		}
	}
}

// TestVarMapTranslation unit-tests the clause translation under the
// variable map two blasters of the same expressions induce.
func TestVarMapTranslation(t *testing.T) {
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	e := bitvec.Ne(bitvec.Add(x, y), bitvec.Const(8, 3))

	s1 := sat.New()
	b1 := newBlaster(s1)
	l1 := b1.bits(e)

	s2 := sat.NewWithStrategy(sat.Strategy{Seed: 5})
	b2 := newBlaster(s2)
	l2 := b2.bits(e)

	vmap := buildVarMap(b1, b2)
	if len(vmap) == 0 {
		t.Fatal("no variables mapped between isomorphic blasters")
	}
	// The root node's own output bit must translate exactly.
	cl, ok := translateClause([]sat.Lit{l1[0]}, vmap)
	if !ok {
		t.Fatal("root output literal did not translate")
	}
	if got, want := cl[0], l2[0]; got != want {
		t.Fatalf("root literal translated to %v, want %v", got, want)
	}
	// Field bits map bit-for-bit too.
	fx1 := b1.fields[fieldKey{"x", 8}]
	fx2 := b2.fields[fieldKey{"x", 8}]
	mapped, ok := translateClause([]sat.Lit{fx1[3], fx1[7].Not()}, vmap)
	if !ok {
		t.Fatal("field literals did not translate")
	}
	if mapped[0] != fx2[3] || mapped[1] != fx2[7].Not() {
		t.Fatalf("field bits mis-translated: %v", mapped)
	}
	// A clause over an unmapped (private) variable must be rejected.
	priv := sat.MkLit(s1.NewVar(), false)
	if _, ok := translateClause([]sat.Lit{priv}, vmap); ok {
		t.Fatal("clause over a private variable translated")
	}
}
