package smt

import (
	"sync"
	"sync/atomic"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// This file implements portfolio resolution for hard queries: the
// standard parallel-SAT recipe of racing diversified solver replicas
// and sharing short learnt clauses, constrained by this repo's
// determinism bar. The key property is that the verdict — though not
// the wall time — is independent of whether the replicas race or run
// sequentially: a definitive SAT/UNSAT answer is semantically unique
// (any sound replica that answers, answers the same), and Unknown is
// defined as "every replica exhausted the full budget", which racing
// cannot change because replicas are only interrupted after some
// replica already has a definitive answer.

// replicaStrategy returns the fixed search strategy of portfolio
// replica i. Replica 0 is always the baseline (the strategy every
// solver used before portfolios existed); the others diversify the
// seed, the restart policy and the default phase. The set is part of
// query semantics (it defines which queries are Unknown), so changing
// it requires bumping the memo snapshot version.
func replicaStrategy(i int) sat.Strategy {
	if i == 0 {
		return sat.Strategy{}
	}
	return sat.Strategy{
		Seed:              splitmixSeed(uint64(i)),
		GeometricRestarts: i%2 == 1,
		InvertPhases:      i%4 >= 2,
	}
}

// splitmixSeed derives a well-mixed nonzero seed from a replica index.
func splitmixSeed(i uint64) uint64 {
	x := i * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// maxImportLen bounds the length of learnt clauses imported into the
// shared core; maxImportClauses bounds how many one race may import.
// Short clauses prune the most search per clause added, and the caps
// keep a race from bloating the core's clause database.
const (
	maxImportLen     = 8
	maxImportClauses = 128
)

// replica is one portfolio member's solver state after its run.
type replica struct {
	solver *sat.Solver
	bl     *blaster
	result sat.Result
}

// portfolio resolves a hard query — one whose cheap first attempt at
// budget b0 exhausted — by running the seeded pristine replicas at the
// full budget. Racing (the default) and sequential execution return
// identical verdicts; see the file comment. Afterwards, short learnt
// clauses from every replica that ran are imported into the shared
// incremental core so later queries over the same terms start ahead.
func (s *Service) portfolio(cond, modelFor *bitvec.Expr, full, b0 int64) (sat.Result, Model) {
	n := s.cfg.replicas()
	lo := 0
	if b0 == full {
		// The failed cheap attempt was exactly replica 0's run (baseline
		// strategy, same budget, pristine for bounded queries): skip it.
		// For default-budget queries the cheap attempt ran on the shared
		// core instead, but only up to b0 == full conflicts with the
		// baseline strategy and strictly more clauses, so replica 0
		// could at best repeat the exhaustion — skipping it cannot turn
		// a definitive verdict into Unknown, only save the repeat.
		lo = 1
	}
	if lo >= n {
		return sat.Unknown, nil
	}
	s.races.Add(1)

	// Solvers are created up front so a winning replica can Interrupt
	// the others even before they have started solving.
	reps := make([]replica, n)
	for i := lo; i < n; i++ {
		solver := sat.NewWithStrategy(replicaStrategy(i))
		solver.MaxConflicts = full
		reps[i] = replica{solver: solver, bl: newBlaster(solver), result: sat.Unknown}
	}
	run := func(i int) {
		goal := reps[i].bl.bits(cond)[0]
		reps[i].result = reps[i].solver.Solve(goal)
	}

	winner := -1
	if s.cfg.PortfolioSequential {
		for i := lo; i < n; i++ {
			run(i)
			s.accountReplica(&reps[i])
			if reps[i].result != sat.Unknown {
				winner = i
				break
			}
		}
	} else {
		var won atomic.Int32
		won.Store(-1)
		var wg sync.WaitGroup
		for i := lo; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
				if reps[i].result != sat.Unknown && won.CompareAndSwap(-1, int32(i)) {
					// First definitive answer: cancel the losers. Any
					// other replica that still finishes definitively
					// agrees semantically, so the choice of winner only
					// picks which witness model is read.
					for j := lo; j < n; j++ {
						if j != i {
							reps[j].solver.Interrupt()
						}
					}
				}
			}(i)
		}
		wg.Wait()
		winner = int(won.Load())
		for i := lo; i < n; i++ {
			s.accountReplica(&reps[i])
		}
	}

	var (
		r sat.Result = sat.Unknown
		m Model
	)
	if winner >= 0 {
		r = reps[winner].result
		m = readModel(modelFor, reps[winner].solver, reps[winner].bl, r)
		s.raceWins.Add(1)
	} else {
		s.raceLosses.Add(1)
	}
	if imported := s.importLearnt(reps); imported > 0 {
		s.imported.Add(int64(imported))
	}
	return r, m
}

// accountReplica folds one replica's solve into the service counters.
// In sequential mode replicas after the winner never run, so they
// contribute nothing.
func (s *Service) accountReplica(rep *replica) {
	if rep.solver == nil {
		return
	}
	s.satCalls.Add(1)
	s.addSearchStats(rep.solver.Stats())
	s.cnfHitsAux.Add(rep.bl.cnfHits)
	s.cnfMissesAux.Add(rep.bl.cnfMisses)
}

// importLearnt carries short learnt clauses from the replicas into the
// shared incremental core. Replicas number their SAT variables
// privately, so clauses are translated through a variable map built
// from the circuit outputs both sides share: input-field bits and the
// bit literals of interned nodes both blasters have encoded. A mapped
// variable denotes the same boolean function of the input bits in both
// systems (the Tseitin encoding of one interned term), so a learnt
// clause — a consequence of the replica's clause database alone — maps
// to a consequence of the core's database: sound to add, and purely an
// accelerator (the verdict of any later query is unchanged by
// implied clauses). Clauses touching replica-private gate variables
// have no mapping and are skipped.
func (s *Service) importLearnt(reps []replica) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	imported := 0
	for ri := range reps {
		rep := &reps[ri]
		if rep.solver == nil || imported >= maxImportClauses {
			continue
		}
		vmap := buildVarMap(rep.bl, s.bl)
		if len(vmap) == 0 {
			continue
		}
		for _, cl := range rep.solver.LearntClauses(maxImportLen, maxImportClauses) {
			if imported >= maxImportClauses {
				break
			}
			mapped, ok := translateClause(cl, vmap)
			if !ok {
				continue
			}
			s.solver.AddClause(mapped...)
			imported++
		}
	}
	if imported > 0 {
		s.publishCoreStatsLocked()
	}
	return imported
}

// varMapping maps one replica variable onto a core literal phase.
type varMapping struct {
	v    int
	flip bool
}

// buildVarMap pairs the replica's field and node-output literals with
// the core's. Bit positions correspond one to one (both blasters
// encode the same node the same way), so replica bit i maps onto core
// bit i, with the relative polarity folded into flip. A replica
// variable observed with two inconsistent mappings (possible because
// gate simplification reuses operand literals) is dropped.
func buildVarMap(from, to *blaster) map[int]varMapping {
	vmap := map[int]varMapping{}
	bad := map[int]bool{}
	addPair := func(rl, cl sat.Lit) {
		v := rl.Var()
		if bad[v] {
			return
		}
		m := varMapping{v: cl.Var(), flip: rl.Neg() != cl.Neg()}
		if old, ok := vmap[v]; ok {
			if old != m {
				bad[v] = true
				delete(vmap, v)
			}
			return
		}
		vmap[v] = m
	}
	for key, rl := range from.fields {
		cl, ok := to.fields[key]
		if !ok {
			continue
		}
		for i := range rl {
			addPair(rl[i], cl[i])
		}
	}
	for id, rl := range from.memo {
		cl, ok := to.memo[id]
		if !ok || len(cl) != len(rl) {
			continue
		}
		for i := range rl {
			addPair(rl[i], cl[i])
		}
	}
	return vmap
}

// translateClause maps a replica clause into core literals; ok is
// false when any variable has no (consistent) mapping.
func translateClause(cl []sat.Lit, vmap map[int]varMapping) ([]sat.Lit, bool) {
	out := make([]sat.Lit, len(cl))
	for i, l := range cl {
		m, ok := vmap[l.Var()]
		if !ok {
			return nil, false
		}
		out[i] = sat.MkLit(m.v, l.Neg() != m.flip)
	}
	return out, true
}
