package smt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"codephage/internal/fsatomic"
	"codephage/internal/sat"
)

// Persistent warm state. A snapshot serializes the two memos that make
// a long-lived Service fast — the verdict memo and the shared core's
// per-node CNF memo — under content-stable term keys (bitvec.StableKey),
// so a fresh process can load yesterday's batch run and answer most
// queries without touching the SAT solver. The format is versioned,
// checksummed and decoded defensively: a snapshot is a cache, so every
// malformed input — truncation, stale version, bit rot, hostile length
// fields — degrades to "cold start", never to a wrong verdict or a
// crash.
//
// Invalidation mirrors internal/corpus: the header records everything a
// cached entry's meaning depends on. Definite verdicts (equivalent /
// not, satisfiable / not) are pure semantic facts about the terms and
// stay valid under any configuration. Exhausted entries ("Unknown
// within budget B") additionally depend on the resolution procedure —
// the replica set and the probe count — so a header mismatch there
// drops only the exhausted entries. A version or checksum mismatch
// rejects the whole snapshot.

const (
	snapMagic   = "CPSNAP01"
	snapVersion = 1

	// Decode guards: upper bounds a well-formed snapshot never exceeds,
	// applied before any length-driven allocation.
	snapMaxCount     = 1 << 24
	snapMaxKeyLen    = 1 << 16
	snapMaxNameLen   = 1 << 12
	snapMaxClauseLen = 1 << 20
	snapMaxVars      = 1 << 26
)

// ErrSnapshot is wrapped by every snapshot decode failure.
var ErrSnapshot = errors.New("smt: invalid memo snapshot")

func snapErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshot, fmt.Sprintf(format, args...))
}

// memoEntry flag bits.
const (
	snapFlagVerdict   = 1 << 0
	snapFlagExhausted = 1 << 1
	snapFlagModel     = 1 << 2
)

// snapEncoder builds the little-endian byte stream.
type snapEncoder struct{ buf []byte }

func (e *snapEncoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *snapEncoder) u16(v uint16)   { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *snapEncoder) u32(v uint32)   { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *snapEncoder) u64(v uint64)   { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *snapEncoder) raw(b []byte)   { e.buf = append(e.buf, b...) }
func (e *snapEncoder) str16(s string) { e.u16(uint16(len(s))); e.raw([]byte(s)) }

func (e *snapEncoder) lit(l sat.Lit) { e.u32(uint32(l)) }
func (e *snapEncoder) lits(v []sat.Lit) {
	e.u32(uint32(len(v)))
	for _, l := range v {
		e.lit(l)
	}
}

// snapDecoder walks the stream with bounds checks on every read.
type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = snapErr(format, args...)
	}
}

func (d *snapDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *snapDecoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *snapDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *snapDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a u32 element count, rejecting hostile values before the
// caller allocates anything proportional to it.
func (d *snapDecoder) count(what string, max int) int {
	n := int(d.u32())
	if d.err == nil && n > max {
		d.fail("%s count %d exceeds limit %d", what, n, max)
	}
	if d.err != nil {
		return 0
	}
	return n
}

func (d *snapDecoder) str(what string, max int) string {
	n := int(d.u16())
	if d.err == nil && n > max {
		d.fail("%s length %d exceeds limit %d", what, n, max)
		return ""
	}
	return string(d.take(n))
}

// lit reads one literal, checking its variable against numVars.
func (d *snapDecoder) lit(numVars int) sat.Lit {
	l := sat.Lit(d.u32())
	if d.err == nil && l.Var() >= numVars {
		d.fail("literal variable %d out of range (%d vars)", l.Var(), numVars)
	}
	return l
}

func (d *snapDecoder) litSlice(what string, numVars, max int) []sat.Lit {
	n := d.count(what, max)
	if d.err != nil {
		return nil
	}
	out := make([]sat.Lit, n)
	for i := range out {
		out[i] = d.lit(numVars)
		if d.err != nil {
			return nil
		}
	}
	return out
}

// EncodeMemo serializes the service's warm state. The encoding is
// deterministic for a given service history: the verdict memo is
// written in LRU order and the core's maps in sorted key order.
func (s *Service) EncodeMemo() []byte {
	enc := &snapEncoder{}
	enc.raw([]byte(snapMagic))
	enc.u32(snapVersion)
	enc.u32(uint32(s.cfg.replicas()))
	enc.u32(uint32(s.cfg.probes()))

	s.encodeVerdicts(enc)
	s.encodeCore(enc)

	sum := sha256.Sum256(enc.buf)
	enc.raw(sum[:])
	return enc.buf
}

// encodeVerdicts writes the verdict memo, least recently used first, so
// a loading process re-inserting in stream order reconstructs the same
// LRU order with the hottest entries at the front.
func (s *Service) encodeVerdicts(enc *snapEncoder) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	enc.u32(uint32(s.memoLRU.Len()))
	for el := s.memoLRU.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*memoEntry)
		enc.str16(e.key)
		var flags uint8
		if e.verdict {
			flags |= snapFlagVerdict
		}
		if e.exhausted {
			flags |= snapFlagExhausted
		}
		if e.model != nil {
			flags |= snapFlagModel
		}
		enc.u8(flags)
		enc.u64(uint64(e.budget))
		if e.model != nil {
			names := make([]string, 0, len(e.model))
			for n := range e.model {
				names = append(names, n)
			}
			sort.Strings(names)
			enc.u32(uint32(len(names)))
			for _, n := range names {
				enc.str16(n)
				enc.u64(e.model[n])
			}
		}
	}
}

// encodeCore writes the shared incremental core: its full clause
// database plus the names of the literals the blaster would otherwise
// have to re-derive — input fields and the output bits of every
// interned node, the latter under content-stable keys. A core that is
// unusable (unsat at top level, which cannot happen in normal
// operation, or already past the rebuild bound) is simply omitted.
func (s *Service) encodeCore(enc *snapEncoder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	numVars, units, clauses, ok := s.solver.Export()
	if !ok || numVars >= maxIncVars {
		enc.u8(0)
		return
	}
	enc.u8(1)
	enc.u32(uint32(numVars))
	enc.lit(s.bl.tru)

	type fieldRec struct {
		key  fieldKey
		lits []sat.Lit
	}
	fields := make([]fieldRec, 0, len(s.bl.fields))
	for k, v := range s.bl.fields {
		fields = append(fields, fieldRec{k, v})
	}
	sort.Slice(fields, func(i, j int) bool {
		if fields[i].key.name != fields[j].key.name {
			return fields[i].key.name < fields[j].key.name
		}
		return fields[i].key.w < fields[j].key.w
	})
	enc.u32(uint32(len(fields)))
	for _, f := range fields {
		enc.str16(f.key.name)
		enc.u8(f.key.w)
		for _, l := range f.lits {
			enc.lit(l)
		}
	}

	type nodeRec struct {
		skey string
		lits []sat.Lit
	}
	nodes := make([]nodeRec, 0, len(s.bl.memo))
	for id, v := range s.bl.memo {
		skey, ok := s.bl.keys[id]
		if !ok {
			continue // restored via warm before trackKeys saw it; rare, skip
		}
		nodes = append(nodes, nodeRec{skey, v})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].skey < nodes[j].skey })
	enc.u32(uint32(len(nodes)))
	for _, n := range nodes {
		enc.str16(n.skey)
		enc.u8(uint8(len(n.lits)))
		for _, l := range n.lits {
			enc.lit(l)
		}
	}

	enc.lits(units)
	enc.u32(uint32(len(clauses)))
	for _, c := range clauses {
		enc.lits(c)
	}
}

// LoadMemoBytes installs warm state from an encoded snapshot. It is the
// decode counterpart of EncodeMemo and the body of the fuzz target: any
// error leaves the service exactly as it was (decode is completed and
// validated before any state is touched).
func (s *Service) LoadMemoBytes(data []byte) error {
	// Checksum before anything else: a corrupt byte anywhere must not
	// reach the structural decoder.
	if len(data) < len(snapMagic)+12+sha256.Size {
		return snapErr("too short (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if want := sha256.Sum256(body); string(sum) != string(want[:]) {
		return snapErr("checksum mismatch")
	}
	d := &snapDecoder{buf: body}
	if string(d.take(len(snapMagic))) != snapMagic {
		return snapErr("bad magic")
	}
	if v := d.u32(); d.err == nil && v != snapVersion {
		return snapErr("version %d (want %d)", v, snapVersion)
	}
	replicas := int(d.u32())
	probes := int(d.u32())
	// Exhausted entries assert "Unknown under this resolution
	// procedure"; a different replica set or probe count could answer
	// queries the snapshot's could not, so those entries are stale.
	keepExhausted := replicas == s.cfg.replicas() && probes == s.cfg.probes()

	entries, err := decodeVerdicts(d)
	if err != nil {
		return err
	}
	core, err := decodeCore(d)
	if err != nil {
		return err
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(body) {
		return snapErr("%d trailing bytes", len(body)-d.off)
	}

	// Decode is clean; install.
	loaded := int64(0)
	if !s.cfg.DisableMemo {
		s.memoMu.Lock()
		for _, e := range entries {
			if e.exhausted && !keepExhausted {
				continue
			}
			if _, dup := s.memoTab[e.key]; dup {
				continue
			}
			if s.memoLRU.Len() >= s.cfg.memoEntries() {
				break
			}
			e.loaded = true
			s.memoTab[e.key] = s.memoLRU.PushFront(e)
			loaded++
		}
		s.memoMu.Unlock()
	}
	s.memoLoaded.Add(loaded)

	if core != nil {
		if solver, bl, ok := rebuildCore(core); ok {
			s.mu.Lock()
			s.installCoreLocked(solver, bl)
			s.mu.Unlock()
		}
	}
	return nil
}

// snapCore is the decoded core section before reconstruction.
type snapCore struct {
	numVars int
	tru     sat.Lit
	fields  map[fieldKey][]sat.Lit
	nodes   map[string][]sat.Lit
	units   []sat.Lit
	clauses [][]sat.Lit
}

func decodeVerdicts(d *snapDecoder) ([]*memoEntry, error) {
	n := d.count("verdict", snapMaxCount)
	var entries []*memoEntry
	for i := 0; i < n && d.err == nil; i++ {
		e := &memoEntry{key: d.str("verdict key", snapMaxKeyLen)}
		flags := d.u8()
		e.verdict = flags&snapFlagVerdict != 0
		e.exhausted = flags&snapFlagExhausted != 0
		e.budget = int64(d.u64())
		if flags&snapFlagModel != 0 {
			pairs := d.count("model field", snapMaxCount)
			if d.err != nil {
				break
			}
			e.model = make(Model, pairs)
			for j := 0; j < pairs; j++ {
				name := d.str("model field name", snapMaxNameLen)
				e.model[name] = d.u64()
			}
		}
		if d.err == nil {
			if e.key == "" {
				d.fail("empty verdict key")
				break
			}
			if e.exhausted && (e.verdict || e.budget <= 0) {
				d.fail("inconsistent exhausted entry %q", e.key)
				break
			}
			entries = append(entries, e)
		}
	}
	return entries, d.err
}

func decodeCore(d *snapDecoder) (*snapCore, error) {
	if d.u8() == 0 || d.err != nil {
		return nil, d.err
	}
	c := &snapCore{
		fields: map[fieldKey][]sat.Lit{},
		nodes:  map[string][]sat.Lit{},
	}
	c.numVars = int(d.u32())
	if d.err == nil && (c.numVars <= 0 || c.numVars > snapMaxVars) {
		d.fail("core variable count %d out of range", c.numVars)
	}
	c.tru = d.lit(c.numVars)

	nf := d.count("field", snapMaxCount)
	for i := 0; i < nf && d.err == nil; i++ {
		name := d.str("field name", snapMaxNameLen)
		w := d.u8()
		if d.err == nil && (w == 0 || w > 64) {
			d.fail("field %q width %d out of range", name, w)
			break
		}
		lits := make([]sat.Lit, w)
		for j := range lits {
			lits[j] = d.lit(c.numVars)
		}
		if d.err == nil {
			c.fields[fieldKey{name, w}] = lits
		}
	}

	nn := d.count("node", snapMaxCount)
	for i := 0; i < nn && d.err == nil; i++ {
		skey := d.str("node key", snapMaxKeyLen)
		w := d.u8()
		if d.err == nil && (w == 0 || w > 64) {
			d.fail("node %q width %d out of range", skey, w)
			break
		}
		lits := make([]sat.Lit, w)
		for j := range lits {
			lits[j] = d.lit(c.numVars)
		}
		if d.err == nil {
			c.nodes[skey] = lits
		}
	}

	c.units = d.litSlice("unit", c.numVars, snapMaxCount)
	nc := d.count("clause", snapMaxCount)
	for i := 0; i < nc && d.err == nil; i++ {
		cl := d.litSlice("clause literal", c.numVars, snapMaxClauseLen)
		if d.err == nil {
			c.clauses = append(c.clauses, cl)
		}
	}
	return c, d.err
}

// rebuildCore reconstructs a live solver+blaster from a decoded core:
// the same variable numbering, the same clause database (learnt
// clauses replayed as problem clauses — implied, so verdict-neutral),
// and a blaster whose warm map resolves content-stable node keys to the
// restored circuit outputs. ok is false if replaying the clauses
// derives top-level unsatisfiability, which means the snapshot core is
// unusable (and, since a sound core cannot be unsat, corrupt in a way
// the checksum did not catch — e.g. saved by a buggy writer).
func rebuildCore(c *snapCore) (*sat.Solver, *blaster, bool) {
	solver := sat.New()
	for i := 0; i < c.numVars; i++ {
		solver.NewVar()
	}
	for _, u := range c.units {
		if !solver.AddClause(u) {
			return nil, nil, false
		}
	}
	for _, cl := range c.clauses {
		if !solver.AddClause(cl...) {
			return nil, nil, false
		}
	}
	bl := &blaster{
		s:         solver,
		tru:       c.tru,
		fields:    c.fields,
		memo:      map[uint64][]sat.Lit{},
		slow:      map[string][]sat.Lit{},
		trackKeys: true,
		keys:      map[uint64]string{},
		warm:      c.nodes,
	}
	return solver, bl, true
}

// SaveMemo atomically and durably writes the service's warm state to
// path: the snapshot is synced to disk before the rename publishes it
// and the directory entry is synced after, so a crash at any instant
// leaves a loader the complete old snapshot or the complete new one,
// never a truncation and never a silently revived stale file.
func (s *Service) SaveMemo(path string) error {
	if err := fsatomic.WriteFile(path, s.EncodeMemo(), 0o644); err != nil {
		return err
	}
	s.snapSaves.Add(1)
	return nil
}

// LoadMemo reads a snapshot from path and installs it. A missing file
// is not an error (first run writes it); a malformed one is.
func (s *Service) LoadMemo(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return s.LoadMemoBytes(data)
}
