package smt

import (
	"fmt"
	"sync"
	"testing"

	"codephage/internal/bitvec"
)

// TestServiceConcurrentSessions hammers one shared Service from many
// goroutines issuing overlapping Equiv and Sat queries — the shape of
// a concurrent pipeline.Batch — and checks under -race that the memo,
// the incremental solver and the stats merging are race-free, and
// that every goroutine observes the same (ground-truth) verdicts.
func TestServiceConcurrentSessions(t *testing.T) {
	svc := NewService(Config{})

	// A mixed workload: equivalences that need SAT proofs, probe
	// refutations, prefilter rejections, and Sat queries, over fields
	// shared between goroutines so the memo and CNF caches contend.
	type query struct {
		a, b *bitvec.Expr
		want bool
	}
	var queries []query
	for i := 0; i < 8; i++ {
		f := bitvec.Field(fmt.Sprintf("/f%d", i), 16, 2*i)
		lo := bitvec.And(f, bitvec.Const(16, 0x00FF))
		hi := bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8))
		read := bitvec.Or(bitvec.Shl(hi, bitvec.Const(16, 8)), lo)
		queries = append(queries,
			query{read, f, true}, // needs simplify (or SAT with NoSimplify donors)
			query{bitvec.Add(f, f), bitvec.Shl(f, bitvec.Const(16, 1)), true}, // SAT proof
			query{f, bitvec.Add(f, bitvec.Const(16, 1)), false},               // probe refutation
		)
	}
	disjoint := query{
		bitvec.And(bitvec.Field("/da", 8, 100), bitvec.Const(8, 0)),
		bitvec.And(bitvec.Field("/db", 8, 101), bitvec.Const(8, 0)),
		false, // prefiltered
	}
	queries = append(queries, disjoint)

	const workers = 16
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	stats := make([]Stats, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := svc.Session()
			for r := 0; r < rounds; r++ {
				for qi, q := range queries {
					got, err := s.Equiv(q.a, q.b)
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d query %d: %v", w, r, qi, err)
						return
					}
					if got != q.want {
						errs <- fmt.Errorf("worker %d round %d query %d: Equiv = %v, want %v", w, r, qi, got, q.want)
						return
					}
				}
				sat, _, err := s.Sat(bitvec.Ult(bitvec.Const(16, 0xFFF0), bitvec.Field("/f0", 16, 0)))
				if err != nil || !sat {
					errs <- fmt.Errorf("worker %d round %d: Sat = %v, %v", w, r, sat, err)
					return
				}
			}
			stats[w] = s.Stats
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sum Stats
	for _, st := range stats {
		sum.Merge(st)
	}
	if want := workers * rounds * len(queries); sum.Queries != want {
		t.Errorf("merged Queries = %d, want %d", sum.Queries, want)
	}
	st := svc.Stats()
	if st.MemoHits == 0 {
		t.Error("no shared memo hits across concurrent sessions")
	}
	if st.Sessions != workers {
		t.Errorf("Sessions = %d, want %d", st.Sessions, workers)
	}
	// Repeated identical queries must not re-prove: SAT calls are
	// bounded by the distinct query count, not the total volume.
	if sum.SATCalls > len(queries)*workers {
		t.Errorf("SATCalls = %d across %d logical queries — memo not sharing", sum.SATCalls, len(queries))
	}
}
