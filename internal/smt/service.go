package smt

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// Config tunes a Service. The zero value selects the defaults.
type Config struct {
	// MaxConflicts bounds each SAT call (0 = default of 200000).
	MaxConflicts int64
	// RandomProbes is the number of random refutation samples a
	// session attempts before going to the solver (0 = default of 32).
	RandomProbes int
	// DisableMemo turns off the shared verdict memo (ablation D2).
	DisableMemo bool
	// DisablePrefilter turns off the input-byte disjointness filter
	// (ablation D2).
	DisablePrefilter bool
	// MemoEntries bounds the verdict memo (0 = default of 65536).
	MemoEntries int
}

func (c Config) maxConflicts() int64 {
	if c.MaxConflicts > 0 {
		return c.MaxConflicts
	}
	return 200000
}

func (c Config) probes() int {
	if c.RandomProbes > 0 {
		return c.RandomProbes
	}
	return 32
}

func (c Config) memoEntries() int {
	if c.MemoEntries > 0 {
		return c.MemoEntries
	}
	return 1 << 16
}

// maxIncVars bounds the persistent incremental solver: past this many
// SAT variables the core is rebuilt from scratch (the CNF memo is
// dropped, the verdict memo survives). The bound is deliberately
// tight: a CDCL Sat answer must assign every variable in the core, so
// an over-grown core taxes each later solve with the whole var set —
// measured on the Figure-8 batch, an unbounded core made the shared
// service slower than fresh per-query solvers, while a ~16k-var
// window keeps incremental reuse strictly a win.
const maxIncVars = 1 << 14

// ServiceStats is a point-in-time view of a Service, the data behind
// phaged's /metrics solver lines.
type ServiceStats struct {
	// Sessions counts Session() calls.
	Sessions int64
	// Queries counts session queries routed through the service
	// (Equiv and Sat, before any filtering).
	Queries int64
	// MemoHits / MemoMisses / MemoEvictions count the shared verdict
	// memo; MemoEntries is its current size (a gauge).
	MemoHits      int64
	MemoMisses    int64
	MemoEvictions int64
	MemoEntries   int64
	// SATCalls / SATTime aggregate full bit-blast solver calls.
	SATCalls int64
	SATTime  time.Duration
	// CNFHits / CNFMisses count the blaster's per-node CNF memo.
	CNFHits   int64
	CNFMisses int64
	// SolverResets counts incremental-core rebuilds (var-count bound).
	SolverResets int64
	// Vars / Clauses are gauges of the incremental core.
	Vars    int64
	Clauses int64
}

// memoEntry is one cached verdict. Sat entries carry the model found.
// Budget-exhausted outcomes are memoised too (exhausted=true with the
// conflict budget that failed): re-asking under the same or a smaller
// budget would deterministically fail again, so sessions answer
// ErrBudget from the memo and only a larger budget retries — without
// this, every warm replay re-pays each bounded failed proof.
type memoEntry struct {
	key       string
	verdict   bool
	model     Model // nil unless a satisfiable Sat verdict
	exhausted bool
	budget    int64 // conflict budget an exhausted entry failed under
}

// Service is the shared, memoizing constraint service: one persistent
// incremental SAT solver plus blaster (CNF memoised per interned node
// ID), and one bounded LRU memo of query verdicts keyed on canonical
// term keys. A Service is safe for concurrent use; queries run through
// per-goroutine Sessions (Service.Session), which carry deterministic
// probe streams and local Stats that callers Merge exactly as they did
// with the old fork-per-transfer solvers.
type Service struct {
	cfg Config

	// Incremental core. Serialised: bit-blasting appends clauses to
	// the shared solver, and solve-under-assumptions reuses its learnt
	// clauses and variable activity across queries. Only default-budget
	// queries run here — explicitly bounded ones (proofs, prefilters)
	// solve on throwaway cores without touching this lock. pristine is
	// true until the first solve after a (re)build: a query answered on
	// a pristine core is a pure function of the query, which is what
	// budget-exhaustion retries rely on (see solveCond/solveSat).
	mu       sync.Mutex
	solver   *sat.Solver
	bl       *blaster
	pristine bool
	// cnfBaseHits/cnfBaseMisses accumulate retired blasters' counters
	// (guarded by mu) so the exported totals stay monotonic across
	// core rebuilds.
	cnfBaseHits   int64
	cnfBaseMisses int64

	// Verdict memo (own lock: memo hits never contend with a running
	// SAT call).
	memoMu   sync.Mutex
	memoTab  map[string]*list.Element
	memoLRU  *list.List // front = most recently used; values *memoEntry
	memoEvic int64

	sessions  atomic.Int64
	queries   atomic.Int64
	memoHits  atomic.Int64
	memoMiss  atomic.Int64
	satCalls  atomic.Int64
	satTimeNs atomic.Int64
	resets    atomic.Int64

	// Published core/CNF gauges and totals: Stats() reads only these
	// atomics, so a metrics scrape never blocks behind a running solve.
	cnfHitsCore   atomic.Int64 // base + current blaster, published under mu
	cnfMissesCore atomic.Int64
	cnfHitsAux    atomic.Int64 // accumulated from throwaway bounded cores
	cnfMissesAux  atomic.Int64
	coreVars      atomic.Int64
	coreClauses   atomic.Int64
}

// NewService returns a Service with the given configuration.
func NewService(cfg Config) *Service {
	s := &Service{
		cfg:     cfg,
		memoTab: map[string]*list.Element{},
		memoLRU: list.New(),
	}
	s.resetCore()
	return s
}

var defaultService = NewService(Config{})

// Default returns the process-wide shared service. Callers that do not
// configure their own service (ablations, tests) share this one, so
// every consumer in the process benefits from the same memo.
func Default() *Service { return defaultService }

// resetCore installs a fresh incremental solver + blaster, folding the
// retired blaster's counters into the monotonic base. Callers hold
// s.mu (or are the constructor).
func (s *Service) resetCore() {
	if s.bl != nil {
		s.cnfBaseHits += s.bl.cnfHits
		s.cnfBaseMisses += s.bl.cnfMisses
	}
	s.solver = sat.New()
	s.bl = newBlaster(s.solver)
	s.pristine = true
	s.publishCoreStatsLocked()
}

// publishCoreStatsLocked snapshots the core gauges and CNF totals into
// the atomics Stats() reads. Callers hold s.mu.
func (s *Service) publishCoreStatsLocked() {
	s.cnfHitsCore.Store(s.cnfBaseHits + s.bl.cnfHits)
	s.cnfMissesCore.Store(s.cnfBaseMisses + s.bl.cnfMisses)
	s.coreVars.Store(int64(s.solver.NumVars()))
	s.coreClauses.Store(int64(s.solver.NumClauses()))
}

// Stats snapshots the service counters. It never takes the solve lock,
// so a metrics scrape cannot stall behind a running SAT call.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Sessions:     s.sessions.Load(),
		Queries:      s.queries.Load(),
		MemoHits:     s.memoHits.Load(),
		MemoMisses:   s.memoMiss.Load(),
		SATCalls:     s.satCalls.Load(),
		SATTime:      time.Duration(s.satTimeNs.Load()),
		SolverResets: s.resets.Load(),
		CNFHits:      s.cnfHitsCore.Load() + s.cnfHitsAux.Load(),
		CNFMisses:    s.cnfMissesCore.Load() + s.cnfMissesAux.Load(),
		Vars:         s.coreVars.Load(),
		Clauses:      s.coreClauses.Load(),
	}
	s.memoMu.Lock()
	st.MemoEntries = int64(s.memoLRU.Len())
	st.MemoEvictions = s.memoEvic
	s.memoMu.Unlock()
	return st
}

// memoGet looks a verdict up in the shared memo. A hit is only
// reported when the entry answers the caller's query: an exhausted
// entry recorded under a smaller budget than the caller's is a miss
// (the caller may succeed where the smaller budget failed).
func (s *Service) memoGet(key string, budget int64) (*memoEntry, bool) {
	if s.cfg.DisableMemo {
		return nil, false
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	el, ok := s.memoTab[key]
	if !ok {
		s.memoMiss.Add(1)
		return nil, false
	}
	e := el.Value.(*memoEntry)
	if e.exhausted && budget > e.budget {
		s.memoMiss.Add(1)
		return nil, false
	}
	s.memoLRU.MoveToFront(el)
	s.memoHits.Add(1)
	return e, true
}

// memoPut records a verdict, evicting least-recently-used entries past
// the bound. A definite verdict (or a larger-budget exhaustion)
// replaces an exhausted entry; otherwise the first write wins.
func (s *Service) memoPut(e *memoEntry) {
	if s.cfg.DisableMemo {
		return
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if el, ok := s.memoTab[e.key]; ok {
		old := el.Value.(*memoEntry)
		if old.exhausted && (!e.exhausted || e.budget > old.budget) {
			el.Value = e
		}
		s.memoLRU.MoveToFront(el)
		return
	}
	for s.memoLRU.Len() >= s.cfg.memoEntries() {
		oldest := s.memoLRU.Back()
		if oldest == nil {
			break
		}
		s.memoLRU.Remove(oldest)
		delete(s.memoTab, oldest.Value.(*memoEntry).key)
		s.memoEvic++
	}
	s.memoTab[e.key] = s.memoLRU.PushFront(e)
}

// solveNe asks the incremental core whether a != b is satisfiable:
// false means the expressions are equivalent. maxConflicts bounds the
// call (0 = the service default).
func (s *Service) solveNe(a, b *bitvec.Expr, maxConflicts int64) (neSat bool, err error) {
	switch s.solveCond(bitvec.Ne(a, b), maxConflicts) {
	case sat.Unsat:
		return false, nil
	case sat.Sat:
		return true, nil
	}
	return false, ErrBudget
}

// solveSat asks the solver for a satisfying assignment of cond
// (nonzero), returning a model over exactly cond's input fields.
// Explicitly bounded queries (a session MaxConflicts override: the
// overflow-freedom proofs, DIODE's prefilter) run on a throwaway core
// — a pure function of the query, off the shared lock, leaving the
// incremental core's circuits intact; default-budget queries run
// incrementally on the shared core.
func (s *Service) solveSat(cond *bitvec.Expr, maxConflicts int64) (bool, Model, error) {
	goal := bitvec.BoolOf(cond)
	if maxConflicts > 0 {
		solver, bl, r := s.solveThrowaway(goal, maxConflicts)
		return finishSat(cond, solver, bl, r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeResetLocked()
	wasPristine := s.pristine
	lit := s.bl.bits(goal)[0]
	r := s.solveLocked(lit, maxConflicts)
	if r == sat.Unknown && !wasPristine {
		r = s.retryPristineLocked(goal, maxConflicts)
	}
	return finishSat(cond, s.solver, s.bl, r)
}

// finishSat converts a solve result into the (sat, model, err) triple,
// reading the model — for cond's own fields — off the solver that
// produced it, before anything backtracks the trail.
func finishSat(cond *bitvec.Expr, solver *sat.Solver, bl *blaster, r sat.Result) (bool, Model, error) {
	switch r {
	case sat.Unsat:
		return false, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	m := Model{}
	for name, w := range fieldWidths(cond) {
		lits, ok := bl.fields[fieldKey{name, w}]
		if !ok {
			m[name] = 0
			continue
		}
		var v uint64
		for i, l := range lits {
			if solver.Value(l.Var()) != l.Neg() {
				v |= uint64(1) << uint(i)
			}
		}
		m[name] = v & bitvec.Mask(w)
	}
	return true, m, nil
}

// solveCond blasts cond and solves under the assumption that it holds,
// with the same bounded-vs-incremental routing as solveSat.
func (s *Service) solveCond(cond *bitvec.Expr, maxConflicts int64) sat.Result {
	if maxConflicts > 0 {
		_, _, r := s.solveThrowaway(cond, maxConflicts)
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeResetLocked()
	wasPristine := s.pristine
	lit := s.bl.bits(cond)[0]
	r := s.solveLocked(lit, maxConflicts)
	if r == sat.Unknown && !wasPristine {
		r = s.retryPristineLocked(cond, maxConflicts)
	}
	return r
}

// solveThrowaway answers one explicitly budgeted query on a private
// fresh solver+blaster: the Unknown-vs-verdict outcome is a pure
// function of the query (the determinism the old fresh-solver-per-
// query design had), large one-off proof circuits never pollute the
// shared incremental core, and no lock is held across the solve.
func (s *Service) solveThrowaway(cond *bitvec.Expr, maxConflicts int64) (*sat.Solver, *blaster, sat.Result) {
	solver := sat.New()
	solver.MaxConflicts = maxConflicts
	bl := newBlaster(solver)
	goal := bl.bits(cond)[0]
	start := time.Now()
	r := solver.Solve(goal)
	s.satCalls.Add(1)
	s.satTimeNs.Add(int64(time.Since(start)))
	s.cnfHitsAux.Add(bl.cnfHits)
	s.cnfMissesAux.Add(bl.cnfMisses)
	return solver, bl, r
}

// retryPristineLocked re-runs a budget-exhausted query on a fresh
// core. The persistent core's learnt clauses and activity make a
// bounded solve's Unknown-vs-verdict outcome depend on query history
// (and, in a concurrent batch, on scheduling); a pristine core makes
// it a pure function of the query. Callers only retry when the failed
// attempt ran on a non-pristine core, so a genuinely budget-exceeding
// query pays at most one extra bounded solve and then fails
// deterministically. Callers hold s.mu.
func (s *Service) retryPristineLocked(cond *bitvec.Expr, maxConflicts int64) sat.Result {
	s.resets.Add(1)
	s.resetCore()
	goal := s.bl.bits(cond)[0]
	return s.solveLocked(goal, maxConflicts)
}

// solveLocked runs one assumption-based solve on the persistent core
// and republishes the core gauges. Callers hold s.mu.
func (s *Service) solveLocked(goal sat.Lit, maxConflicts int64) sat.Result {
	if maxConflicts <= 0 {
		maxConflicts = s.cfg.maxConflicts()
	}
	s.solver.MaxConflicts = maxConflicts
	s.pristine = false
	start := time.Now()
	r := s.solver.Solve(goal)
	s.satCalls.Add(1)
	s.satTimeNs.Add(int64(time.Since(start)))
	s.publishCoreStatsLocked()
	return r
}

// maybeResetLocked rebuilds the incremental core when it has grown
// past the variable bound. Callers hold s.mu.
func (s *Service) maybeResetLocked() {
	if s.solver.NumVars() < maxIncVars {
		return
	}
	s.resets.Add(1)
	s.resetCore()
}
