package smt

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// Config tunes a Service. The zero value selects the defaults.
type Config struct {
	// MaxConflicts bounds each SAT call (0 = default of 200000).
	MaxConflicts int64
	// RandomProbes is the number of random refutation samples a
	// session attempts before going to the solver (0 = default of 32).
	RandomProbes int
	// DisableMemo turns off the shared verdict memo (ablation D2).
	DisableMemo bool
	// DisablePrefilter turns off the input-byte disjointness filter
	// (ablation D2).
	DisablePrefilter bool
	// MemoEntries bounds the verdict memo (0 = default of 65536).
	MemoEntries int
	// PortfolioReplicas is the number of seeded solver replicas a hard
	// query (one that exhausts the cheap first conflict budget) is
	// resolved with (0 = default of 4, 1 = baseline replica only).
	// The replica set is part of a query's semantics: Unknown means
	// "every replica exhausted the budget", so the count must match
	// between runs whose verdicts are compared — which is also why a
	// persisted memo snapshot records it.
	PortfolioReplicas int
	// PortfolioSequential runs the replicas one after another in index
	// order (stopping at the first definitive answer) instead of
	// racing them on goroutines. Verdicts are identical by
	// construction — a definitive SAT/UNSAT answer is semantically
	// unique and Unknown requires every replica to exhaust either way
	// — so this is the determinism ablation, trading wall time for
	// single-threaded execution.
	PortfolioSequential bool
	// PortfolioTrigger is the cheap first conflict budget; exhausting
	// it makes a query "hard" and engages the replica portfolio at the
	// full budget (0 = default of 2000).
	PortfolioTrigger int64
}

func (c Config) maxConflicts() int64 {
	if c.MaxConflicts > 0 {
		return c.MaxConflicts
	}
	return 200000
}

func (c Config) probes() int {
	if c.RandomProbes > 0 {
		return c.RandomProbes
	}
	return 32
}

func (c Config) memoEntries() int {
	if c.MemoEntries > 0 {
		return c.MemoEntries
	}
	return 1 << 16
}

func (c Config) replicas() int {
	if c.PortfolioReplicas > 0 {
		return c.PortfolioReplicas
	}
	return 4
}

func (c Config) trigger() int64 {
	if c.PortfolioTrigger > 0 {
		return c.PortfolioTrigger
	}
	return 2000
}

// maxIncVars bounds the persistent incremental solver: past this many
// SAT variables the core is rebuilt from scratch (the CNF memo is
// dropped, the verdict memo survives). The bound is deliberately
// tight: a CDCL Sat answer must assign every variable in the core, so
// an over-grown core taxes each later solve with the whole var set —
// measured on the Figure-8 batch, an unbounded core made the shared
// service slower than fresh per-query solvers, while a ~16k-var
// window keeps incremental reuse strictly a win.
const maxIncVars = 1 << 14

// ServiceStats is a point-in-time view of a Service, the data behind
// phaged's /metrics solver lines.
type ServiceStats struct {
	// Sessions counts Session() calls.
	Sessions int64
	// Queries counts session queries routed through the service
	// (Equiv and Sat, before any filtering).
	Queries int64
	// MemoHits / MemoMisses / MemoEvictions count the shared verdict
	// memo; MemoEntries is its current size (a gauge).
	MemoHits      int64
	MemoMisses    int64
	MemoEvictions int64
	MemoEntries   int64
	// SATCalls / SATTime aggregate full bit-blast solver calls.
	SATCalls int64
	SATTime  time.Duration
	// CNFHits / CNFMisses count the blaster's per-node CNF memo.
	CNFHits   int64
	CNFMisses int64
	// SolverResets counts incremental-core rebuilds (var-count bound).
	SolverResets int64
	// Vars / Clauses are gauges of the incremental core.
	Vars    int64
	Clauses int64
	// SATConflicts / SATDecisions / SATPropagations / SATRestarts
	// aggregate the CDCL search counters across every solver the
	// service ran (core, throwaway and portfolio replicas).
	SATConflicts    int64
	SATDecisions    int64
	SATPropagations int64
	SATRestarts     int64
	// PortfolioRaces counts hard queries handed to the replica
	// portfolio; Wins resolved definitively, Losses exhausted every
	// replica. ImportedClauses counts short learnt clauses carried
	// from replicas back into the shared incremental core.
	PortfolioRaces  int64
	PortfolioWins   int64
	PortfolioLosses int64
	ImportedClauses int64
	// MemoLoaded is the number of verdict entries installed by
	// LoadMemo; MemoLoadedHits counts queries answered by one of them;
	// SnapshotSaves counts SaveMemo calls that wrote a snapshot.
	MemoLoaded     int64
	MemoLoadedHits int64
	SnapshotSaves  int64
}

// memoEntry is one cached verdict. Sat entries carry the model found.
// Budget-exhausted outcomes are memoised too (exhausted=true with the
// conflict budget that failed): re-asking under the same or a smaller
// budget would deterministically fail again, so sessions answer
// ErrBudget from the memo and only a larger budget retries — without
// this, every warm replay re-pays each bounded failed proof.
type memoEntry struct {
	key       string
	verdict   bool
	model     Model // nil unless a satisfiable Sat verdict
	exhausted bool
	budget    int64 // conflict budget an exhausted entry failed under
	loaded    bool  // installed by LoadMemo (persistence-hit metric)
}

// Service is the shared, memoizing constraint service: one persistent
// incremental SAT solver plus blaster (CNF memoised per interned node
// ID), and one bounded LRU memo of query verdicts keyed on canonical
// term keys. A Service is safe for concurrent use; queries run through
// per-goroutine Sessions (Service.Session), which carry deterministic
// probe streams and local Stats that callers Merge exactly as they did
// with the old fork-per-transfer solvers.
type Service struct {
	cfg Config

	// Incremental core. Serialised: bit-blasting appends clauses to
	// the shared solver, and solve-under-assumptions reuses its learnt
	// clauses and variable activity across queries. Only default-budget
	// queries run here, and only up to the cheap trigger budget — a
	// query that exhausts it is "hard" and goes to the pristine replica
	// portfolio off the lock (see resolve), so a verdict's
	// Unknown-vs-definitive outcome never depends on the history-laden
	// core state.
	mu     sync.Mutex
	solver *sat.Solver
	bl     *blaster
	// cnfBaseHits/cnfBaseMisses accumulate retired blasters' counters
	// (guarded by mu) so the exported totals stay monotonic across
	// core rebuilds.
	cnfBaseHits   int64
	cnfBaseMisses int64

	// Verdict memo (own lock: memo hits never contend with a running
	// SAT call).
	memoMu   sync.Mutex
	memoTab  map[string]*list.Element
	memoLRU  *list.List // front = most recently used; values *memoEntry
	memoEvic int64

	sessions  atomic.Int64
	queries   atomic.Int64
	memoHits  atomic.Int64
	memoMiss  atomic.Int64
	satCalls  atomic.Int64
	satTimeNs atomic.Int64
	resets    atomic.Int64

	// CDCL search counters, aggregated per solve call.
	satConflicts atomic.Int64
	satDecisions atomic.Int64
	satProps     atomic.Int64
	satRestarts  atomic.Int64

	// Portfolio counters.
	races      atomic.Int64
	raceWins   atomic.Int64
	raceLosses atomic.Int64
	imported   atomic.Int64

	// Persistence counters.
	memoLoaded atomic.Int64
	loadedHits atomic.Int64
	snapSaves  atomic.Int64

	// Published core/CNF gauges and totals: Stats() reads only these
	// atomics, so a metrics scrape never blocks behind a running solve.
	cnfHitsCore   atomic.Int64 // base + current blaster, published under mu
	cnfMissesCore atomic.Int64
	cnfHitsAux    atomic.Int64 // accumulated from throwaway bounded cores
	cnfMissesAux  atomic.Int64
	coreVars      atomic.Int64
	coreClauses   atomic.Int64
}

// NewService returns a Service with the given configuration.
func NewService(cfg Config) *Service {
	s := &Service{
		cfg:     cfg,
		memoTab: map[string]*list.Element{},
		memoLRU: list.New(),
	}
	s.resetCore()
	return s
}

var defaultService = NewService(Config{})

// Default returns the process-wide shared service. Callers that do not
// configure their own service (ablations, tests) share this one, so
// every consumer in the process benefits from the same memo.
func Default() *Service { return defaultService }

// resetCore installs a fresh incremental solver + blaster, folding the
// retired blaster's counters into the monotonic base. Callers hold
// s.mu (or are the constructor).
func (s *Service) resetCore() {
	if s.bl != nil {
		s.cnfBaseHits += s.bl.cnfHits
		s.cnfBaseMisses += s.bl.cnfMisses
	}
	s.solver = sat.New()
	s.bl = newBlaster(s.solver)
	// The core remembers each node's content-stable key so SaveMemo
	// can serialize its circuits under process-independent names.
	s.bl.trackKeys = true
	s.bl.keys = map[uint64]string{}
	s.publishCoreStatsLocked()
}

// installCore swaps in a solver+blaster pair restored from a snapshot,
// folding the retired blaster's counters exactly like resetCore.
// Callers hold s.mu.
func (s *Service) installCoreLocked(solver *sat.Solver, bl *blaster) {
	s.cnfBaseHits += s.bl.cnfHits
	s.cnfBaseMisses += s.bl.cnfMisses
	s.solver = solver
	s.bl = bl
	s.publishCoreStatsLocked()
}

// publishCoreStatsLocked snapshots the core gauges and CNF totals into
// the atomics Stats() reads. Callers hold s.mu.
func (s *Service) publishCoreStatsLocked() {
	s.cnfHitsCore.Store(s.cnfBaseHits + s.bl.cnfHits)
	s.cnfMissesCore.Store(s.cnfBaseMisses + s.bl.cnfMisses)
	s.coreVars.Store(int64(s.solver.NumVars()))
	s.coreClauses.Store(int64(s.solver.NumClauses()))
}

// Stats snapshots the service counters. It never takes the solve lock,
// so a metrics scrape cannot stall behind a running SAT call.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Sessions:     s.sessions.Load(),
		Queries:      s.queries.Load(),
		MemoHits:     s.memoHits.Load(),
		MemoMisses:   s.memoMiss.Load(),
		SATCalls:     s.satCalls.Load(),
		SATTime:      time.Duration(s.satTimeNs.Load()),
		SolverResets: s.resets.Load(),
		CNFHits:      s.cnfHitsCore.Load() + s.cnfHitsAux.Load(),
		CNFMisses:    s.cnfMissesCore.Load() + s.cnfMissesAux.Load(),
		Vars:         s.coreVars.Load(),
		Clauses:      s.coreClauses.Load(),

		SATConflicts:    s.satConflicts.Load(),
		SATDecisions:    s.satDecisions.Load(),
		SATPropagations: s.satProps.Load(),
		SATRestarts:     s.satRestarts.Load(),

		PortfolioRaces:  s.races.Load(),
		PortfolioWins:   s.raceWins.Load(),
		PortfolioLosses: s.raceLosses.Load(),
		ImportedClauses: s.imported.Load(),

		MemoLoaded:     s.memoLoaded.Load(),
		MemoLoadedHits: s.loadedHits.Load(),
		SnapshotSaves:  s.snapSaves.Load(),
	}
	s.memoMu.Lock()
	st.MemoEntries = int64(s.memoLRU.Len())
	st.MemoEvictions = s.memoEvic
	s.memoMu.Unlock()
	return st
}

// memoGet looks a verdict up in the shared memo. A hit is only
// reported when the entry answers the caller's query: an exhausted
// entry recorded under a smaller budget than the caller's is a miss
// (the caller may succeed where the smaller budget failed).
func (s *Service) memoGet(key string, budget int64) (*memoEntry, bool) {
	if s.cfg.DisableMemo {
		return nil, false
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	el, ok := s.memoTab[key]
	if !ok {
		s.memoMiss.Add(1)
		return nil, false
	}
	e := el.Value.(*memoEntry)
	if e.exhausted && budget > e.budget {
		s.memoMiss.Add(1)
		return nil, false
	}
	s.memoLRU.MoveToFront(el)
	s.memoHits.Add(1)
	if e.loaded {
		s.loadedHits.Add(1)
	}
	return e, true
}

// memoPut records a verdict, evicting least-recently-used entries past
// the bound. A definite verdict (or a larger-budget exhaustion)
// replaces an exhausted entry; otherwise the first write wins.
func (s *Service) memoPut(e *memoEntry) {
	if s.cfg.DisableMemo {
		return
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if el, ok := s.memoTab[e.key]; ok {
		old := el.Value.(*memoEntry)
		if old.exhausted && (!e.exhausted || e.budget > old.budget) {
			el.Value = e
		}
		s.memoLRU.MoveToFront(el)
		return
	}
	for s.memoLRU.Len() >= s.cfg.memoEntries() {
		oldest := s.memoLRU.Back()
		if oldest == nil {
			break
		}
		s.memoLRU.Remove(oldest)
		delete(s.memoTab, oldest.Value.(*memoEntry).key)
		s.memoEvic++
	}
	s.memoTab[e.key] = s.memoLRU.PushFront(e)
}

// solveNe asks the incremental core whether a != b is satisfiable:
// false means the expressions are equivalent. maxConflicts bounds the
// call (0 = the service default).
func (s *Service) solveNe(a, b *bitvec.Expr, maxConflicts int64) (neSat bool, err error) {
	switch s.solveCond(bitvec.Ne(a, b), maxConflicts) {
	case sat.Unsat:
		return false, nil
	case sat.Sat:
		return true, nil
	}
	return false, ErrBudget
}

// solveSat asks the solver for a satisfying assignment of cond
// (nonzero), returning a model over exactly cond's input fields.
func (s *Service) solveSat(cond *bitvec.Expr, maxConflicts int64) (bool, Model, error) {
	r, m := s.resolve(bitvec.BoolOf(cond), cond, maxConflicts)
	switch r {
	case sat.Unsat:
		return false, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	return true, m, nil
}

// solveCond blasts cond and solves under the assumption that it holds,
// with the same two-stage routing as solveSat.
func (s *Service) solveCond(cond *bitvec.Expr, maxConflicts int64) sat.Result {
	r, _ := s.resolve(cond, nil, maxConflicts)
	return r
}

// resolve answers one query with the two-stage portfolio procedure:
//
//  1. a cheap attempt bounded by the trigger budget — on the shared
//     incremental core for default-budget queries, on a pristine
//     throwaway solver for explicitly bounded ones (proofs,
//     prefilters: their circuits never pollute the core);
//  2. if that exhausts, the query is hard: the fixed set of seeded
//     pristine replicas solve it at the full budget (racing on
//     goroutines, or sequentially under PortfolioSequential).
//
// The verdict is a pure function of (query, budget, replica set):
// stage 1 can only return definitive answers — which are semantically
// unique, however they were found — and Unknown means every pristine
// replica exhausted the full budget, independent of core history,
// scheduling, or whether the replicas raced. modelFor (nil = no model
// wanted) names the expression whose fields the model must cover; the
// model is read off whichever solver produced the Sat answer before
// its trail can be disturbed.
func (s *Service) resolve(cond, modelFor *bitvec.Expr, maxConflicts int64) (sat.Result, Model) {
	bounded := maxConflicts > 0
	full := maxConflicts
	if !bounded {
		full = s.cfg.maxConflicts()
	}
	b0 := s.cfg.trigger()
	if b0 > full {
		b0 = full
	}

	if bounded {
		solver, bl, r := s.throwawaySolve(cond, b0, sat.Strategy{})
		if r != sat.Unknown {
			return r, readModel(modelFor, solver, bl, r)
		}
	} else {
		s.mu.Lock()
		s.maybeResetLocked()
		lit := s.bl.bits(cond)[0]
		r := s.coreSolveLocked(lit, b0)
		if r != sat.Unknown {
			m := readModel(modelFor, s.solver, s.bl, r)
			s.mu.Unlock()
			return r, m
		}
		s.mu.Unlock()
	}
	return s.portfolio(cond, modelFor, full, b0)
}

// throwawaySolve answers one budgeted attempt on a private fresh
// solver+blaster under the given strategy: a pure function of
// (query, budget, strategy), off the shared lock.
func (s *Service) throwawaySolve(cond *bitvec.Expr, maxConflicts int64, st sat.Strategy) (*sat.Solver, *blaster, sat.Result) {
	solver := sat.NewWithStrategy(st)
	solver.MaxConflicts = maxConflicts
	bl := newBlaster(solver)
	goal := bl.bits(cond)[0]
	start := time.Now()
	r := solver.Solve(goal)
	s.satCalls.Add(1)
	s.satTimeNs.Add(int64(time.Since(start)))
	s.addSearchStats(solver.Stats())
	s.cnfHitsAux.Add(bl.cnfHits)
	s.cnfMissesAux.Add(bl.cnfMisses)
	return solver, bl, r
}

// coreSolveLocked runs one assumption-based solve on the persistent
// core and republishes the core gauges. Callers hold s.mu.
func (s *Service) coreSolveLocked(goal sat.Lit, maxConflicts int64) sat.Result {
	s.solver.MaxConflicts = maxConflicts
	before := s.solver.Stats()
	start := time.Now()
	r := s.solver.Solve(goal)
	s.satCalls.Add(1)
	s.satTimeNs.Add(int64(time.Since(start)))
	s.addSearchStats(s.solver.Stats().Sub(before))
	s.publishCoreStatsLocked()
	return r
}

// addSearchStats folds one solve's CDCL counters into the aggregates.
func (s *Service) addSearchStats(st sat.Stats) {
	s.satConflicts.Add(st.Conflicts)
	s.satDecisions.Add(st.Decisions)
	s.satProps.Add(st.Propagations)
	s.satRestarts.Add(st.Restarts)
}

// readModel extracts a model for modelFor's fields after a Sat result
// (nil otherwise). Callers must still own the solver's trail.
func readModel(modelFor *bitvec.Expr, solver *sat.Solver, bl *blaster, r sat.Result) Model {
	if r != sat.Sat || modelFor == nil {
		return nil
	}
	m := Model{}
	for name, w := range fieldWidths(modelFor) {
		lits, ok := bl.fields[fieldKey{name, w}]
		if !ok {
			m[name] = 0
			continue
		}
		var v uint64
		for i, l := range lits {
			if solver.Value(l.Var()) != l.Neg() {
				v |= uint64(1) << uint(i)
			}
		}
		m[name] = v & bitvec.Mask(w)
	}
	return m
}

// maybeResetLocked rebuilds the incremental core when it has grown
// past the variable bound. Callers hold s.mu.
func (s *Service) maybeResetLocked() {
	if s.solver.NumVars() < maxIncVars {
		return
	}
	s.resets.Add(1)
	s.resetCore()
}
