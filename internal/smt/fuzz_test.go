package smt

import (
	"testing"

	"codephage/internal/bitvec"
)

// FuzzMemoSnapshotLoad hammers the persisted-memo decoder with
// truncated, corrupted and hostile byte streams. A snapshot is a
// cache, so the contract is absolute: every input either loads or is
// rejected with an error — never a panic, never a partially-installed
// state — and the service must answer queries correctly afterwards
// either way. The checked-in corpus under
// testdata/fuzz/FuzzMemoSnapshotLoad pins the interesting shapes
// (valid snapshot, truncation, wrong version, checksum mismatch,
// hostile length fields) so `go test` exercises them on every run.
func FuzzMemoSnapshotLoad(f *testing.F) {
	// A well-formed snapshot from a warmed-up service, plus mutations of
	// it that reach successive decoder stages.
	src := NewService(Config{})
	ss := src.Session()
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	if _, err := ss.Equiv(bitvec.Add(x, y), bitvec.Add(y, x)); err != nil {
		f.Fatal(err)
	}
	bounded := src.Session()
	bounded.MaxConflicts = 1
	bounded.Equiv(bitvec.Mul(x, y), bitvec.Mul(y, x))
	good := src.EncodeMemo()

	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-1])
	f.Add(refixChecksum(setU32(good, len(snapMagic), 999)))      // wrong version
	f.Add(refixChecksum(setU32(good, len(snapMagic)+12, 1<<30))) // hostile verdict count
	f.Add(append(append([]byte{}, good...), 0x00))               // trailing byte
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt) // checksum mismatch

	f.Fuzz(func(t *testing.T, data []byte) {
		svc := NewService(Config{})
		if err := svc.LoadMemoBytes(data); err != nil {
			if n := svc.Stats().MemoLoaded; n != 0 {
				t.Fatalf("rejected load installed %d entries", n)
			}
		}
		// Loaded or not, the service must still answer correctly.
		a := bitvec.Field("x", 8, 0)
		ok, err := svc.Session().Equiv(bitvec.Add(a, bitvec.Const(8, 0)), a)
		if err != nil || !ok {
			t.Fatalf("service broken after load: %v/%v", ok, err)
		}
	})
}
