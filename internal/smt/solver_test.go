package smt

import (
	"math/rand"
	"testing"

	"codephage/internal/bitvec"
)

// newSession returns a session on a fresh private service, so tests
// asserting exact stats are isolated from the process-wide memo.
func newSession(cfg Config) *Session { return NewService(cfg).Session() }

func mustEquiv(t *testing.T, s *Session, a, b *bitvec.Expr, want bool) {
	t.Helper()
	got, err := s.Equiv(a, b)
	if err != nil {
		t.Fatalf("Equiv(%s, %s): %v", a, b, err)
	}
	if got != want {
		t.Fatalf("Equiv(%s, %s) = %v, want %v", a, b, got, want)
	}
}

func TestEquivIdentical(t *testing.T) {
	s := newSession(Config{})
	w := bitvec.Field("w", 16, 0)
	mustEquiv(t, s, bitvec.Add(w, bitvec.Const(16, 1)), bitvec.Add(w, bitvec.Const(16, 1)), true)
}

func TestEquivCommutativity(t *testing.T) {
	// x + y == y + x needs a semantic proof; simplification keeps
	// operand order.
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	mustEquiv(t, s, bitvec.Add(x, y), bitvec.Add(y, x), true)
	mustEquiv(t, s, bitvec.Mul(x, y), bitvec.Mul(y, x), true)
	if s.Stats.SATCalls == 0 {
		t.Error("expected the SAT path to be exercised")
	}
}

func TestEquivRefutes(t *testing.T) {
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	mustEquiv(t, s, x, bitvec.Add(x, bitvec.Const(8, 1)), false)
	if s.Stats.Refuted == 0 {
		t.Error("expected random probing to refute")
	}
}

func TestEquivDifferentWidths(t *testing.T) {
	s := newSession(Config{})
	mustEquiv(t, s, bitvec.Const(8, 1), bitvec.Const(16, 1), false)
}

func TestEquivEndiannessConversion(t *testing.T) {
	// The paper's headline case: FEH's big-endian read of the height
	// field — masks, shifts, ors — must be recognised as equivalent to
	// CWebP's value which holds the same field directly.
	s := newSession(Config{})
	f := bitvec.Field("/start_frame/content/height", 16, 4)
	lo := bitvec.And(f, bitvec.Const(16, 0x00FF))
	hi := bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8))
	feh := bitvec.Or(bitvec.Shl(hi, bitvec.Const(16, 8)), lo)
	mustEquiv(t, s, feh, f, true)
}

func TestEquivWideningChain(t *testing.T) {
	// (u64)(u32)x == (u64)x for 16-bit x.
	s := newSession(Config{})
	x := bitvec.Field("x", 16, 0)
	a := bitvec.ZExt(64, bitvec.ZExt(32, x))
	mustEquiv(t, s, a, bitvec.ZExt(64, x), true)
}

func TestEquivByteSwapNotEquivalent(t *testing.T) {
	s := newSession(Config{})
	f := bitvec.Field("w", 16, 0)
	swapped := bitvec.Or(
		bitvec.Shl(bitvec.And(f, bitvec.Const(16, 0x00FF)), bitvec.Const(16, 8)),
		bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8)))
	mustEquiv(t, s, swapped, f, false)
}

func TestPrefilterRejectsDisjointFields(t *testing.T) {
	// Per the paper, expressions over different input-byte sets are not
	// considered equivalent — even when semantically equal.
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	mustEquiv(t, s, bitvec.And(x, bitvec.Const(8, 0)), bitvec.And(y, bitvec.Const(8, 0)), false)
	if s.Stats.Prefiltered == 0 {
		t.Error("expected the prefilter to fire")
	}

	// With the prefilter disabled the solver proves the equivalence.
	s2 := newSession(Config{DisablePrefilter: true})
	mustEquiv(t, s2, bitvec.And(x, bitvec.Const(8, 0)), bitvec.And(y, bitvec.Const(8, 0)), true)
}

func TestQueryMemo(t *testing.T) {
	svc := NewService(Config{})
	s := svc.Session()
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	a, b := bitvec.Add(x, y), bitvec.Add(y, x)
	mustEquiv(t, s, a, b, true)
	before := s.Stats.SATCalls
	mustEquiv(t, s, a, b, true)
	mustEquiv(t, s, b, a, true) // symmetric key must also hit
	if s.Stats.SATCalls != before {
		t.Errorf("SATCalls grew from %d to %d despite memo", before, s.Stats.SATCalls)
	}
	if s.Stats.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2", s.Stats.CacheHits)
	}
	st := svc.Stats()
	if st.MemoEntries == 0 {
		t.Error("memo is empty")
	}
	if st.MemoHits != 2 {
		t.Errorf("service MemoHits = %d, want 2", st.MemoHits)
	}

	// A second session on the same service shares the verdicts: the
	// engine-wide query sharing this PR is about.
	s2 := svc.Session()
	mustEquiv(t, s2, a, b, true)
	if s2.Stats.CacheHits != 1 || s2.Stats.SATCalls != 0 {
		t.Errorf("second session stats = %+v, want pure memo hit", s2.Stats)
	}
}

func TestMemoDisabled(t *testing.T) {
	svc := NewService(Config{DisableMemo: true})
	s := svc.Session()
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	a, b := bitvec.Add(x, y), bitvec.Add(y, x)
	mustEquiv(t, s, a, b, true)
	mustEquiv(t, s, a, b, true)
	if s.Stats.CacheHits != 0 {
		t.Errorf("CacheHits = %d with memo disabled", s.Stats.CacheHits)
	}
	if svc.Stats().MemoEntries != 0 {
		t.Error("memo grew despite DisableMemo")
	}
	// The CNF memo still dedupes the circuit even with verdicts
	// uncached, so the second query is an incremental re-solve.
	if s.Stats.SATCalls != 2 {
		t.Errorf("SATCalls = %d, want 2", s.Stats.SATCalls)
	}
}

func TestMemoEviction(t *testing.T) {
	svc := NewService(Config{MemoEntries: 4, RandomProbes: 1})
	s := svc.Session()
	x := bitvec.Field("x", 8, 0)
	for i := 0; i < 16; i++ {
		mustEquiv(t, s, bitvec.Add(x, bitvec.Const(8, uint64(i))), x, i == 0)
	}
	st := svc.Stats()
	if st.MemoEntries > 4 {
		t.Errorf("MemoEntries = %d, want <= 4", st.MemoEntries)
	}
	if st.MemoEvictions == 0 {
		t.Error("expected evictions past the bound")
	}
}

func TestSatFindsOverflow(t *testing.T) {
	// Find w, h such that the 32-bit product of two 16-bit fields
	// differs from the 64-bit product: an integer overflow witness,
	// the core DIODE query.
	s := newSession(Config{})
	w := bitvec.Field("w", 16, 0)
	h := bitvec.Field("h", 16, 2)
	four := bitvec.Const(32, 4)
	narrow := bitvec.Mul(bitvec.Mul(bitvec.ZExt(32, w), bitvec.ZExt(32, h)), four)
	wide := bitvec.Mul(bitvec.Mul(bitvec.ZExt(64, w), bitvec.ZExt(64, h)), bitvec.Const(64, 4))
	overflow := bitvec.Ne(bitvec.ZExt(64, narrow), wide)
	ok, m, err := s.Sat(overflow)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected an overflow witness")
	}
	if m["w"]*m["h"]*4 <= 0xFFFFFFFF {
		t.Errorf("model w=%d h=%d does not overflow 32 bits", m["w"], m["h"])
	}
}

func TestSatUnsatisfiable(t *testing.T) {
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	ok, _, err := s.Sat(bitvec.Ne(x, x))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("x != x must be unsatisfiable")
	}
}

func TestSatConstant(t *testing.T) {
	s := newSession(Config{})
	ok, m, err := s.Sat(bitvec.Const(1, 1))
	if err != nil || !ok || m == nil {
		t.Fatalf("Sat(true) = %v, %v, %v", ok, m, err)
	}
	ok, _, err = s.Sat(bitvec.Const(1, 0))
	if err != nil || ok {
		t.Fatalf("Sat(false) = %v, %v", ok, err)
	}
}

func TestSatMemoisedModelIsValid(t *testing.T) {
	// A memoised Sat verdict must come back with a model that still
	// satisfies the condition, and callers mutating the returned model
	// must not corrupt the memo.
	svc := NewService(Config{})
	x := bitvec.Field("x", 8, 0)
	cond := bitvec.Ult(bitvec.Const(8, 200), x)
	s1 := svc.Session()
	ok, m1, err := s1.Sat(cond)
	if err != nil || !ok {
		t.Fatalf("Sat = %v, %v", ok, err)
	}
	m1["x"] = 0 // caller mutation must not leak into the memo
	s2 := svc.Session()
	ok, m2, err := s2.Sat(cond)
	if err != nil || !ok {
		t.Fatalf("memoised Sat = %v, %v", ok, err)
	}
	if v, e := bitvec.Eval(cond, bitvec.MapEnv{Fields: map[string]uint64(m2)}); e != nil || v == 0 {
		t.Errorf("memoised model %v does not satisfy the condition", m2)
	}
}

func TestValid(t *testing.T) {
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	v, err := s.Valid(bitvec.Ule(bitvec.And(x, bitvec.Const(8, 0x0F)), bitvec.Const(8, 15)))
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Error("x&0x0F <= 15 must be valid")
	}
	v, err = s.Valid(bitvec.Ule(x, bitvec.Const(8, 15)))
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Error("x <= 15 must not be valid")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := newSession(Config{MaxConflicts: 1, RandomProbes: 1})
	// Two large multiplications that are equivalent but hard to prove
	// within one conflict.
	a := bitvec.Field("a", 64, 0)
	b := bitvec.Field("b", 64, 8)
	_, err := s.Equiv(bitvec.Mul(a, b), bitvec.Mul(b, a))
	if err == nil {
		t.Skip("solver proved commutativity within one conflict; budget untestable here")
	}
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The budget error must not poison the service: a fresh query on a
	// generous per-session budget still answers.
	s2 := s.Service().Session()
	x := bitvec.Field("x", 8, 16)
	s2.MaxConflicts = 200000
	eq, err := s2.Equiv(bitvec.Add(x, x), bitvec.Mul(x, bitvec.Const(8, 2)))
	if err != nil || !eq {
		t.Fatalf("post-budget query = %v, %v", eq, err)
	}
}

// exhaustiveEqual checks equivalence over the full domain of small
// fields.
func exhaustiveEqual(t *testing.T, a, b *bitvec.Expr, fields []string) bool {
	t.Helper()
	n := len(fields)
	for m := 0; m < 1<<(4*n); m++ {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		for i, f := range fields {
			env.Fields[f] = uint64(m >> (4 * i) & 0xF)
		}
		va, errA := bitvec.Eval(a, env)
		vb, errB := bitvec.Eval(b, env)
		if errA != nil || errB != nil {
			t.Fatalf("eval error: %v %v", errA, errB)
		}
		if va != vb {
			return false
		}
	}
	return true
}

func TestEquivMatchesExhaustiveCheck(t *testing.T) {
	// Property test: on random 4-bit expressions the solver verdict
	// must match brute-force enumeration, with every query running
	// incrementally over one persistent solver. Prefilter is disabled
	// since it is a deliberately conservative approximation.
	rng := rand.New(rand.NewSource(99))
	fields := []*bitvec.Expr{bitvec.Field("p", 4, 0), bitvec.Field("q", 4, 1)}
	names := []string{"p", "q"}
	s := newSession(Config{DisablePrefilter: true})
	for iter := 0; iter < 120; iter++ {
		a := randExpr4(rng, 3, fields)
		b := randExpr4(rng, 3, fields)
		if a.W != b.W {
			continue
		}
		want := exhaustiveEqual(t, a, b, names)
		got, err := s.Equiv(a, b)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: Equiv(%s, %s) = %v, exhaustive = %v", iter, a, b, got, want)
		}
	}
}

// randExpr4 builds random expressions over 4-bit fields.
func randExpr4(rng *rand.Rand, depth int, fields []*bitvec.Expr) *bitvec.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return fields[rng.Intn(len(fields))]
		}
		return bitvec.Const(4, rng.Uint64())
	}
	x := randExpr4(rng, depth-1, fields)
	y := randExpr4(rng, depth-1, fields)
	for y.W != x.W {
		y = randExpr4(rng, depth-1, fields)
	}
	switch rng.Intn(12) {
	case 0:
		return bitvec.Add(x, y)
	case 1:
		return bitvec.Sub(x, y)
	case 2:
		return bitvec.Mul(x, y)
	case 3:
		return bitvec.And(x, y)
	case 4:
		return bitvec.Or(x, y)
	case 5:
		return bitvec.Xor(x, y)
	case 6:
		return bitvec.Not(x)
	case 7:
		return bitvec.Neg(x)
	case 8:
		return bitvec.UDiv(x, y)
	case 9:
		return bitvec.URem(x, y)
	case 10:
		return bitvec.Shl(x, y)
	default:
		return bitvec.LShr(x, y)
	}
}

func TestSignedOpsAgainstExhaustive(t *testing.T) {
	s := newSession(Config{DisablePrefilter: true})
	p := bitvec.Field("p", 4, 0)
	q := bitvec.Field("q", 4, 1)
	pairs := []struct {
		name string
		a, b *bitvec.Expr
	}{
		{"sdiv-self", bitvec.SDiv(p, q), bitvec.SDiv(p, q)},
		{"sext-zext", bitvec.SExt(8, p), bitvec.ZExt(8, p)}, // differ on negatives
		{"ashr-lshr", bitvec.AShr(p, q), bitvec.LShr(p, q)}, // differ on negatives
		{"srem", bitvec.SRem(p, q), bitvec.URem(p, q)},
	}
	names := []string{"p", "q"}
	for _, c := range pairs {
		t.Run(c.name, func(t *testing.T) {
			want := exhaustiveEqual(t, c.a, c.b, names)
			got, err := s.Equiv(c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("Equiv = %v, exhaustive = %v", got, want)
			}
		})
	}
}

func BenchmarkEquivEndianness(b *testing.B) {
	f := bitvec.Field("/img/height", 16, 4)
	lo := bitvec.And(f, bitvec.Const(16, 0x00FF))
	hi := bitvec.LShr(bitvec.And(f, bitvec.Const(16, 0xFF00)), bitvec.Const(16, 8))
	feh := bitvec.Or(bitvec.Shl(hi, bitvec.Const(16, 8)), lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewService(Config{}).Session()
		ok, err := s.Equiv(feh, f)
		if err != nil || !ok {
			b.Fatalf("Equiv = %v, %v", ok, err)
		}
	}
}

// BenchmarkEquivMemoDisabled measures the hot non-SAT Equiv path on a
// memo-disabled (ablation) service. The query is refuted by concrete
// probing, so per-iteration cost is dominated by bookkeeping — and
// since DisableMemo short-circuits before memo-key construction, the
// StableKey Merkle walk must contribute nothing here. Compare against
// BenchmarkEquivMemoEnabledMiss, which pays the key build on every
// (never-hitting, immediately-evicted — the verdicts differ per
// iteration only in the constant) miss.
func BenchmarkEquivMemoDisabled(b *testing.B) {
	benchmarkEquivRefuted(b, Config{DisableMemo: true})
}

// BenchmarkEquivMemoEnabledMiss is the memo-on counterpart: same
// probe-refuted query, but each iteration builds the symmetric memo
// key (two StableKey walks + lookup) before reaching the probes.
func BenchmarkEquivMemoEnabledMiss(b *testing.B) {
	benchmarkEquivRefuted(b, Config{})
}

func benchmarkEquivRefuted(b *testing.B, cfg Config) {
	x := bitvec.Field("x", 32, 0)
	y := bitvec.Field("y", 32, 4)
	// x*y vs x*y+c: probe-refutable, never reaches SAT. A fresh constant
	// per iteration defeats both the verdict memo and the per-node
	// StableKey cache, so the memo-on variant pays the full key build.
	for i := 0; b.Loop(); i++ {
		s := NewService(cfg).Session()
		lhs := bitvec.Mul(x, y)
		rhs := bitvec.Add(lhs, bitvec.Const(32, uint64(i%1000)+1))
		ok, err := s.Equiv(lhs, rhs)
		if err != nil || ok {
			b.Fatalf("Equiv = %v, %v", ok, err)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Queries: 2, CacheHits: 1, Prefiltered: 3, Refuted: 4, Syntactic: 5, SATCalls: 6, SATTime: 7}
	b := Stats{Queries: 10, CacheHits: 20, Prefiltered: 30, Refuted: 40, Syntactic: 50, SATCalls: 60, SATTime: 70}
	a.Merge(b)
	want := Stats{Queries: 12, CacheHits: 21, Prefiltered: 33, Refuted: 44, Syntactic: 55, SATCalls: 66, SATTime: 77}
	if a != want {
		t.Errorf("merged = %+v, want %+v", a, want)
	}
}

func TestSessionsAreIndependent(t *testing.T) {
	// Sessions on one service have private stats and deterministic
	// probe streams, but share the memo and the incremental core.
	svc := NewService(Config{})
	s1 := svc.Session()
	x := bitvec.Field("x", 8, 0)
	if _, err := s1.Equiv(x, x); err != nil {
		t.Fatal(err)
	}
	s2 := svc.Session()
	if s2.Stats != (Stats{}) {
		t.Errorf("new session inherited stats: %+v", s2.Stats)
	}
	a := bitvec.Add(bitvec.Field("a", 32, 0), bitvec.Field("b", 32, 4))
	b := bitvec.Add(bitvec.Field("b", 32, 4), bitvec.Field("a", 32, 0))
	eq, err := s2.Equiv(a, b)
	if err != nil || !eq {
		t.Fatalf("session Equiv(a+b, b+a) = %v, %v", eq, err)
	}
	if svc.Stats().Sessions != 2 {
		t.Errorf("Sessions = %d, want 2", svc.Stats().Sessions)
	}
}
