package smt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// solveValue constrains a single-field expression to a concrete model
// and reads the field back — exercising the full blast-solve-extract
// loop for one circuit.
func solveField(t *testing.T, e *bitvec.Expr, want uint64) {
	t.Helper()
	s := newSession(Config{RandomProbes: 1}) // force the SAT path more often
	ok, m, err := s.Sat(bitvec.Eq(e, bitvec.Const(e.W, want)))
	if err != nil {
		t.Fatalf("Sat: %v", err)
	}
	if !ok {
		t.Fatalf("no model for %s == %d", e, want)
	}
	env := bitvec.MapEnv{Fields: map[string]uint64(m)}
	got, err := bitvec.Eval(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("model evaluates %s to %d, want %d", e, got, want)
	}
}

func TestBlastAdderCircuit(t *testing.T) {
	x := bitvec.Field("x", 8, 0)
	solveField(t, bitvec.Add(x, bitvec.Const(8, 13)), 200)
}

func TestBlastMultiplierCircuit(t *testing.T) {
	x := bitvec.Field("x", 8, 0)
	solveField(t, bitvec.Mul(x, bitvec.Const(8, 3)), 96) // x = 32
}

func TestBlastDividerCircuit(t *testing.T) {
	x := bitvec.Field("x", 8, 0)
	solveField(t, bitvec.UDiv(x, bitvec.Const(8, 7)), 10) // x in [70,76]
}

func TestBlastBarrelShifter(t *testing.T) {
	x := bitvec.Field("x", 16, 0)
	sh := bitvec.Field("s", 16, 2)
	solveField(t, bitvec.Shl(x, sh), 0x0800)
}

// blastEval pushes a constant expression through the bit-blaster and
// a SAT solve, returning the modelled value of a fresh variable
// constrained to equal it — a direct circuit evaluation.
func blastEval(t *testing.T, e *bitvec.Expr) uint64 {
	t.Helper()
	solver := sat.New()
	b := newBlaster(solver)
	bits := b.bits(e)
	if r := solver.Solve(); r != sat.Sat {
		t.Fatalf("constant circuit unsatisfiable: %v", r)
	}
	var v uint64
	for i, l := range bits {
		if solver.Value(l.Var()) != l.Neg() {
			v |= uint64(1) << uint(i)
		}
	}
	return v
}

// TestBlastAgainstEval cross-validates the Tseitin circuits against
// the direct evaluator on random constant expressions of every op.
func TestBlastAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	mk := func(w uint8) *bitvec.Expr { return bitvec.Const(w, rng.Uint64()) }
	for iter := 0; iter < 300; iter++ {
		w := []uint8{4, 8, 13, 16, 32}[rng.Intn(5)]
		x, y := mk(w), mk(w)
		exprs := []*bitvec.Expr{
			bitvec.Add(x, y), bitvec.Sub(x, y), bitvec.Mul(x, y),
			bitvec.UDiv(x, y), bitvec.URem(x, y),
			bitvec.SDiv(x, y), bitvec.SRem(x, y),
			bitvec.And(x, y), bitvec.Or(x, y), bitvec.Xor(x, y),
			bitvec.Shl(x, y), bitvec.LShr(x, y), bitvec.AShr(x, y),
			bitvec.Not(x), bitvec.Neg(x),
			bitvec.ZExt(64, x), bitvec.SExt(64, x),
			bitvec.ZExt(8, bitvec.Ult(x, y)), bitvec.ZExt(8, bitvec.Slt(x, y)),
			bitvec.ZExt(8, bitvec.Ule(x, y)), bitvec.ZExt(8, bitvec.Sle(x, y)),
			bitvec.ZExt(8, bitvec.Eq(x, y)), bitvec.ZExt(8, bitvec.Ne(x, y)),
			bitvec.Ite(bitvec.Ult(x, y), x, y),
		}
		e := exprs[rng.Intn(len(exprs))]
		want, err := bitvec.Eval(e, bitvec.MapEnv{})
		if err != nil {
			t.Fatal(err)
		}
		if got := blastEval(t, e); got != want {
			t.Fatalf("iter %d: circuit %s = %d, want %d", iter, e, got, want)
		}
	}
}

// TestQuickEquivReflexive: every expression is equivalent to itself
// regardless of solver configuration.
func TestQuickEquivReflexive(t *testing.T) {
	prop := func(c uint32, k uint8) bool {
		f := bitvec.Field("f", 32, 0)
		e := bitvec.Add(bitvec.Mul(f, bitvec.Const(32, uint64(c))), bitvec.Const(32, uint64(k)))
		s := newSession(Config{})
		ok, err := s.Equiv(e, e)
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFieldWidthsAreDistinctVariables: a shared persistent blaster
// serves queries from many programs, so the same name at different
// widths must map to distinct SAT variables instead of panicking (the
// pre-service behaviour). The width is part of the field key.
func TestFieldWidthsAreDistinctVariables(t *testing.T) {
	s := newSession(Config{RandomProbes: 1})
	ok, _, err := s.Sat(bitvec.Eq(bitvec.Field("f", 16, 0), bitvec.Const(16, 7)))
	if err != nil || !ok {
		t.Fatalf("width-16 query = %v, %v", ok, err)
	}
	ok, _, err = s.Sat(bitvec.Eq(bitvec.Field("f", 32, 0), bitvec.Const(32, 9)))
	if err != nil || !ok {
		t.Fatalf("width-32 query on the same service = %v, %v", ok, err)
	}
}

// TestMixedWidthWithinOneQueryPanics: within a single query, Eval
// correlates every read of a field name through one value while the
// blaster would not — the guard must reject the query before an
// unsound verdict can form.
func TestMixedWidthWithinOneQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflicting field widths in one query")
		}
	}()
	s := newSession(Config{})
	s.Sat(bitvec.And(
		bitvec.ZExt(32, bitvec.Field("f", 16, 0)),
		bitvec.Field("f", 32, 0)))
}

func TestStatsAccounting(t *testing.T) {
	s := newSession(Config{})
	x := bitvec.Field("x", 8, 0)
	y := bitvec.Field("y", 8, 1)
	// syntactic
	if ok, _ := s.Equiv(x, x); !ok {
		t.Fatal("x != x")
	}
	// prefiltered
	if ok, _ := s.Equiv(x, y); ok {
		t.Fatal("x == y?")
	}
	// refuted
	if ok, _ := s.Equiv(x, bitvec.Add(x, bitvec.Const(8, 1))); ok {
		t.Fatal("x == x+1?")
	}
	if s.Stats.Syntactic != 1 || s.Stats.Prefiltered != 1 || s.Stats.Refuted != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
	if s.Stats.Queries != 3 {
		t.Errorf("queries = %d, want 3", s.Stats.Queries)
	}
}
