// Package smt decides equivalence and satisfiability of bitvec
// expressions by bit-blasting them into CNF and solving with the
// internal CDCL SAT solver. It stands in for the Z3 queries that Code
// Phage's Rewrite algorithm issues (SolverEquiv, Figure 7) and for the
// overflow-freedom checks of the patch validation phase.
package smt

import (
	"fmt"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// fieldKey identifies one symbolic input as the blaster sees it. The
// width is part of the key: a long-lived blaster serves queries from
// many transfers, and the same field or recipient path may carry
// different widths in different programs — those are distinct SAT
// variables.
type fieldKey struct {
	name string
	w    uint8
}

// blaster converts expressions into vectors of SAT literals (LSB
// first) over a shared solver instance. It is persistent: the CNF for
// every blasted node is memoised by interned node ID, so repeated
// queries over shared subterms re-use the existing circuit instead of
// re-encoding it — the clause database grows only with new terms.
type blaster struct {
	s      *sat.Solver
	tru    sat.Lit
	fields map[fieldKey][]sat.Lit // input field -> bit literals
	memo   map[uint64][]sat.Lit   // interned node ID -> bit literals
	slow   map[string][]sat.Lit   // un-interned fallback, keyed structurally

	// trackKeys records each memoised node's content-stable key in
	// keys, which is what the persisted warm-core snapshot serializes
	// (the process-local node IDs above mean nothing to another
	// process). Only the service's shared core tracks keys — throwaway
	// and replica blasters skip the hash.
	trackKeys bool
	keys      map[uint64]string // interned node ID -> StableKey

	// warm maps content-stable keys to the bit literals a loaded
	// snapshot already encoded (over this blaster's solver, whose
	// variable numbering the snapshot restored). Consulted on CNF-memo
	// misses; nil on a cold blaster.
	warm map[string][]sat.Lit

	cnfHits   int64
	cnfMisses int64
	warmHits  int64
}

func newBlaster(s *sat.Solver) *blaster {
	b := &blaster{
		s:      s,
		fields: map[fieldKey][]sat.Lit{},
		memo:   map[uint64][]sat.Lit{},
		slow:   map[string][]sat.Lit{},
	}
	t := s.NewVar()
	b.tru = sat.MkLit(t, false)
	s.AddClause(b.tru)
	return b
}

func (b *blaster) fls() sat.Lit { return b.tru.Not() }

func (b *blaster) lit(v bool) sat.Lit {
	if v {
		return b.tru
	}
	return b.fls()
}

func (b *blaster) fresh() sat.Lit { return sat.MkLit(b.s.NewVar(), false) }

// gate helpers: each returns a literal constrained to the function value.

func (b *blaster) and2(x, y sat.Lit) sat.Lit {
	switch {
	case x == b.fls() || y == b.fls():
		return b.fls()
	case x == b.tru:
		return y
	case y == b.tru:
		return x
	case x == y:
		return x
	case x == y.Not():
		return b.fls()
	}
	v := b.fresh()
	b.s.AddClause(v.Not(), x)
	b.s.AddClause(v.Not(), y)
	b.s.AddClause(v, x.Not(), y.Not())
	return v
}

func (b *blaster) or2(x, y sat.Lit) sat.Lit {
	return b.and2(x.Not(), y.Not()).Not()
}

func (b *blaster) xor2(x, y sat.Lit) sat.Lit {
	switch {
	case x == b.fls():
		return y
	case y == b.fls():
		return x
	case x == b.tru:
		return y.Not()
	case y == b.tru:
		return x.Not()
	case x == y:
		return b.fls()
	case x == y.Not():
		return b.tru
	}
	v := b.fresh()
	b.s.AddClause(v.Not(), x, y)
	b.s.AddClause(v.Not(), x.Not(), y.Not())
	b.s.AddClause(v, x.Not(), y)
	b.s.AddClause(v, x, y.Not())
	return v
}

// mux returns sel ? t : e.
func (b *blaster) mux(sel, t, e sat.Lit) sat.Lit {
	switch {
	case sel == b.tru:
		return t
	case sel == b.fls():
		return e
	case t == e:
		return t
	}
	v := b.fresh()
	b.s.AddClause(v.Not(), sel.Not(), t)
	b.s.AddClause(v.Not(), sel, e)
	b.s.AddClause(v, sel.Not(), t.Not())
	b.s.AddClause(v, sel, e.Not())
	return v
}

// fullAdder returns (sum, carry) of x + y + cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.xor2(b.xor2(x, y), cin)
	cout = b.or2(b.and2(x, y), b.and2(cin, b.xor2(x, y)))
	return sum, cout
}

// add returns x + y (+1 if cin) modulo 2^w.
func (b *blaster) add(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) notBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

func (b *blaster) sub(x, y []sat.Lit) []sat.Lit {
	return b.add(x, b.notBits(y), b.tru)
}

func (b *blaster) neg(x []sat.Lit) []sat.Lit {
	zero := b.constBits(uint64(0), uint8(len(x)))
	return b.sub(zero, x)
}

func (b *blaster) constBits(v uint64, w uint8) []sat.Lit {
	out := make([]sat.Lit, w)
	for i := range out {
		out[i] = b.lit(v>>uint(i)&1 == 1)
	}
	return out
}

// shiftConst shifts x left (k > 0) or right (k < 0) filling with fill.
func shiftConst(x []sat.Lit, k int, fill sat.Lit) []sat.Lit {
	w := len(x)
	out := make([]sat.Lit, w)
	for i := range out {
		src := i - k
		if src >= 0 && src < w {
			out[i] = x[src]
		} else {
			out[i] = fill
		}
	}
	return out
}

// barrel performs a variable shift. dir > 0 is left, dir < 0 is right.
// fill supplies the inserted bit (sign bit literal for AShr).
func (b *blaster) barrel(x, amt []sat.Lit, dir int, fill sat.Lit) []sat.Lit {
	w := len(x)
	out := x
	// Stages for shift amount bits that keep the shift < w.
	for k := 0; k < len(amt) && (1<<k) < 2*w; k++ {
		sh := 1 << k
		if sh >= w {
			// Shifting by >= w: entire result becomes fill if this bit set.
			allFill := make([]sat.Lit, w)
			for i := range allFill {
				allFill[i] = fill
			}
			out = b.muxBits(amt[k], allFill, out)
			continue
		}
		shifted := shiftConst(out, dir*sh, fill)
		out = b.muxBits(amt[k], shifted, out)
	}
	// Any higher amount bit set -> full fill.
	var big sat.Lit = b.fls()
	for k := 0; k < len(amt); k++ {
		if 1<<k >= 2*w {
			big = b.or2(big, amt[k])
		}
	}
	if big != b.fls() {
		allFill := make([]sat.Lit, w)
		for i := range allFill {
			allFill[i] = fill
		}
		out = b.muxBits(big, allFill, out)
	}
	return out
}

func (b *blaster) muxBits(sel sat.Lit, t, e []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(t))
	for i := range t {
		out[i] = b.mux(sel, t[i], e[i])
	}
	return out
}

func (b *blaster) mulBits(x, y []sat.Lit) []sat.Lit {
	w := len(x)
	acc := b.constBits(0, uint8(w))
	for i := 0; i < w; i++ {
		addend := make([]sat.Lit, w)
		for j := range addend {
			if j < i {
				addend[j] = b.fls()
			} else {
				addend[j] = b.and2(x[j-i], y[i])
			}
		}
		acc = b.add(acc, addend, b.fls())
	}
	return acc
}

// ult returns the borrow-out comparison x < y (unsigned).
func (b *blaster) ult(x, y []sat.Lit) sat.Lit {
	lt := b.fls()
	for i := 0; i < len(x); i++ {
		eq := b.xor2(x[i], y[i]).Not()
		lti := b.and2(x[i].Not(), y[i])
		lt = b.or2(lti, b.and2(eq, lt))
	}
	return lt
}

func (b *blaster) eqBits(x, y []sat.Lit) sat.Lit {
	acc := b.tru
	for i := range x {
		acc = b.and2(acc, b.xor2(x[i], y[i]).Not())
	}
	return acc
}

// isZero returns 1 iff all bits of x are 0.
func (b *blaster) isZero(x []sat.Lit) sat.Lit {
	any := b.fls()
	for _, l := range x {
		any = b.or2(any, l)
	}
	return any.Not()
}

// udivrem builds the restoring-division circuit, returning quotient and
// remainder of x / y for y != 0 (callers mux the y == 0 case).
func (b *blaster) udivrem(x, y []sat.Lit) (q, r []sat.Lit) {
	w := len(x)
	q = make([]sat.Lit, w)
	r = b.constBits(0, uint8(w))
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		r = shiftConst(r, 1, b.fls())
		r[0] = x[i]
		// if r >= y { r -= y; q[i] = 1 }
		ge := b.ult(r, y).Not()
		diff := b.sub(r, y)
		r = b.muxBits(ge, diff, r)
		q[i] = ge
	}
	return q, r
}

// abs returns |x| interpreting x as signed, plus the sign bit.
func (b *blaster) abs(x []sat.Lit) ([]sat.Lit, sat.Lit) {
	sign := x[len(x)-1]
	return b.muxBits(sign, b.neg(x), x), sign
}

// bits blasts an expression into literals, memoized per interned node
// ID (structural-key fallback for the rare un-interned node).
func (b *blaster) bits(e *bitvec.Expr) []sat.Lit {
	id := e.ID()
	if id != 0 {
		if v, ok := b.memo[id]; ok {
			b.cnfHits++
			return v
		}
	} else if v, ok := b.slow[e.Key()]; ok {
		b.cnfHits++
		return v
	}
	var skey string
	if b.trackKeys || b.warm != nil {
		skey = e.StableKey()
	}
	// A loaded snapshot may already hold this node's circuit (the gate
	// clauses came back with the solver, so the literals are live).
	if b.warm != nil {
		if v, ok := b.warm[skey]; ok && len(v) == int(e.W) {
			b.warmHits++
			b.cnfHits++
			b.store(e, id, skey, v)
			return v
		}
	}
	b.cnfMisses++
	v := b.blast(e)
	if len(v) != int(e.W) {
		panic(fmt.Sprintf("smt: blast width mismatch for %s: got %d want %d", e, len(v), e.W))
	}
	b.store(e, id, skey, v)
	return v
}

// store memoises a blasted node's literals (and, on the key-tracking
// core, its stable key for the next snapshot).
func (b *blaster) store(e *bitvec.Expr, id uint64, skey string, v []sat.Lit) {
	if id != 0 {
		b.memo[id] = v
		if b.trackKeys {
			b.keys[id] = skey
		}
	} else {
		b.slow[e.Key()] = v
	}
}

func (b *blaster) fieldBits(name string, w uint8) []sat.Lit {
	key := fieldKey{name, w}
	if v, ok := b.fields[key]; ok {
		return v
	}
	v := make([]sat.Lit, w)
	for i := range v {
		v[i] = b.fresh()
	}
	b.fields[key] = v
	return v
}

func (b *blaster) blast(e *bitvec.Expr) []sat.Lit {
	switch e.Op {
	case bitvec.OpConst:
		return b.constBits(e.Val, e.W)
	case bitvec.OpField:
		return b.fieldBits(e.Name, e.W)
	case bitvec.OpRef:
		return b.fieldBits("ref:"+e.Name, e.W)
	}

	x := b.bits(e.X)
	switch e.Op {
	case bitvec.OpNot:
		return b.notBits(x)
	case bitvec.OpNeg:
		return b.neg(x)
	case bitvec.OpZExt:
		out := make([]sat.Lit, e.W)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.fls()
			}
		}
		return out
	case bitvec.OpSExt:
		out := make([]sat.Lit, e.W)
		sign := x[len(x)-1]
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = sign
			}
		}
		return out
	case bitvec.OpBool:
		return []sat.Lit{b.isZero(x).Not()}
	case bitvec.OpLNot:
		return []sat.Lit{b.isZero(x)}
	case bitvec.OpExtr:
		out := make([]sat.Lit, e.W)
		copy(out, x[e.Lo:e.Hi+1])
		return out
	}

	y := b.bits(e.Y)
	switch e.Op {
	case bitvec.OpAdd:
		return b.add(x, y, b.fls())
	case bitvec.OpSub:
		return b.sub(x, y)
	case bitvec.OpMul:
		return b.mulBits(x, y)
	case bitvec.OpAnd:
		out := make([]sat.Lit, e.W)
		for i := range out {
			out[i] = b.and2(x[i], y[i])
		}
		return out
	case bitvec.OpOr:
		out := make([]sat.Lit, e.W)
		for i := range out {
			out[i] = b.or2(x[i], y[i])
		}
		return out
	case bitvec.OpXor:
		out := make([]sat.Lit, e.W)
		for i := range out {
			out[i] = b.xor2(x[i], y[i])
		}
		return out
	case bitvec.OpShl:
		return b.barrel(x, y, 1, b.fls())
	case bitvec.OpLShr:
		return b.barrel(x, y, -1, b.fls())
	case bitvec.OpAShr:
		return b.barrel(x, y, -1, x[len(x)-1])
	case bitvec.OpConcat:
		out := make([]sat.Lit, e.W)
		copy(out, y)
		copy(out[len(y):], x)
		return out
	case bitvec.OpUDiv, bitvec.OpURem:
		q, r := b.udivrem(x, y)
		res := q
		if e.Op == bitvec.OpURem {
			res = r
		}
		// Division by zero yields the dividend (bitvec.Eval semantics).
		return b.muxBits(b.isZero(y), x, res)
	case bitvec.OpSDiv, bitvec.OpSRem:
		ax, sx := b.abs(x)
		ay, sy := b.abs(y)
		q, r := b.udivrem(ax, ay)
		qn := b.muxBits(b.xor2(sx, sy), b.neg(q), q)
		rn := b.muxBits(sx, b.neg(r), r)
		res := qn
		if e.Op == bitvec.OpSRem {
			res = rn
		}
		return b.muxBits(b.isZero(y), x, res)
	case bitvec.OpEq:
		return []sat.Lit{b.eqBits(x, y)}
	case bitvec.OpNe:
		return []sat.Lit{b.eqBits(x, y).Not()}
	case bitvec.OpUlt:
		return []sat.Lit{b.ult(x, y)}
	case bitvec.OpUle:
		return []sat.Lit{b.ult(y, x).Not()}
	case bitvec.OpSlt:
		return []sat.Lit{b.slt(x, y)}
	case bitvec.OpSle:
		return []sat.Lit{b.slt(y, x).Not()}
	case bitvec.OpIte:
		z := b.bits(e.Y2)
		return b.muxBits(x[0], y, z)
	}
	panic("smt: blast: unsupported op " + e.Op.Name())
}

// slt compares signed: flip sign bits and compare unsigned.
func (b *blaster) slt(x, y []sat.Lit) sat.Lit {
	xs := append([]sat.Lit{}, x...)
	ys := append([]sat.Lit{}, y...)
	xs[len(xs)-1] = xs[len(xs)-1].Not()
	ys[len(ys)-1] = ys[len(ys)-1].Not()
	return b.ult(xs, ys)
}
