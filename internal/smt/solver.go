package smt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"codephage/internal/bitvec"
	"codephage/internal/sat"
)

// ErrBudget is returned when the SAT search exhausts its conflict
// budget before reaching a verdict.
var ErrBudget = errors.New("smt: conflict budget exhausted")

// Stats counts solver activity, exposed for the paper's translation
// time discussion (the cache and the input-byte prefilter together give
// an order-of-magnitude reduction in translation times).
type Stats struct {
	Queries     int           // total Equiv calls
	CacheHits   int           // answered from the query cache
	Prefiltered int           // rejected by the input-byte disjointness filter
	Refuted     int           // refuted by random probing
	Syntactic   int           // proven by simplification to identical trees
	SATCalls    int           // full bit-blast + SAT proofs
	SATTime     time.Duration // time spent inside the SAT solver
}

// Solver answers equivalence and satisfiability queries about bitvec
// expressions. It is not safe for concurrent use.
type Solver struct {
	// MaxConflicts bounds each SAT call (0 = default of 200000).
	MaxConflicts int64
	// RandomProbes is the number of random refutation samples
	// attempted before bit-blasting (0 = default of 32).
	RandomProbes int
	// DisableCache turns off the query cache (ablation D2).
	DisableCache bool
	// DisablePrefilter turns off the input-byte disjointness filter
	// (ablation D2).
	DisablePrefilter bool

	Stats Stats

	cache map[string]bool
	rng   *rand.Rand
}

// Merge accumulates the counters of o into s. Per-worker solvers
// report their activity through this so concurrent translation never
// races on one shared Stats value.
func (s *Stats) Merge(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.Prefiltered += o.Prefiltered
	s.Refuted += o.Refuted
	s.Syntactic += o.Syntactic
	s.SATCalls += o.SATCalls
	s.SATTime += o.SATTime
}

// New returns a Solver with default budgets.
func New() *Solver {
	return &Solver{
		cache: map[string]bool{},
		rng:   rand.New(rand.NewSource(0x517bcf)),
	}
}

// Fork returns an independent solver with the same configuration but
// fresh state: empty cache, zero stats, and a deterministically seeded
// probe sequence. Workers translating different candidate checks each
// fork the template solver, then Merge their Stats back, so no solver
// instance is ever shared between goroutines.
func (s *Solver) Fork() *Solver {
	f := New()
	f.MaxConflicts = s.MaxConflicts
	f.RandomProbes = s.RandomProbes
	f.DisableCache = s.DisableCache
	f.DisablePrefilter = s.DisablePrefilter
	return f
}

func (s *Solver) maxConflicts() int64 {
	if s.MaxConflicts > 0 {
		return s.MaxConflicts
	}
	return 200000
}

func (s *Solver) probes() int {
	if s.RandomProbes > 0 {
		return s.RandomProbes
	}
	return 32
}

// Equiv reports whether a and b evaluate identically for every
// assignment of their input fields (SolverEquiv of Figure 7).
// Expressions of different widths are never equivalent.
func (s *Solver) Equiv(a, b *bitvec.Expr) (bool, error) {
	s.Stats.Queries++
	if a.W != b.W {
		return false, nil
	}

	// Optimisation 1 (paper §3.3): expressions over different sets of
	// input bytes are not considered equivalent; skip the solver.
	if !s.DisablePrefilter && !sameInts(a.ByteDeps(), b.ByteDeps()) {
		s.Stats.Prefiltered++
		return false, nil
	}

	// Optimisation 2 (paper §3.3): cache all solver queries.
	var key string
	if !s.DisableCache {
		ka, kb := a.Key(), b.Key()
		if ka > kb {
			ka, kb = kb, ka
		}
		key = ka + "|" + kb
		if v, ok := s.cache[key]; ok {
			s.Stats.CacheHits++
			return v, nil
		}
	}

	res, err := s.equivUncached(a, b)
	if err != nil {
		return false, err
	}
	if !s.DisableCache {
		s.cache[key] = res
	}
	return res, nil
}

func (s *Solver) equivUncached(a, b *bitvec.Expr) (bool, error) {
	sa, sb := bitvec.Simplify(a), bitvec.Simplify(b)
	if bitvec.Equal(sa, sb) {
		s.Stats.Syntactic++
		return true, nil
	}

	// Cheap sound refutation: random concrete probes.
	fields := fieldWidths(sa, sb)
	for i := 0; i < s.probes(); i++ {
		env := s.randomEnv(fields, i)
		va, errA := bitvec.Eval(sa, env)
		vb, errB := bitvec.Eval(sb, env)
		if errA != nil || errB != nil {
			break // Ref leaves have no valuation; fall through to SAT
		}
		if va != vb {
			s.Stats.Refuted++
			return false, nil
		}
	}

	// Full proof: SAT(a != b) must be unsatisfiable.
	s.Stats.SATCalls++
	start := time.Now()
	defer func() { s.Stats.SATTime += time.Since(start) }()

	solver := sat.New()
	solver.MaxConflicts = s.maxConflicts()
	bl := newBlaster(solver)
	ne := bl.bits(bitvec.Ne(sa, sb))
	solver.AddClause(ne[0])
	switch solver.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	}
	return false, ErrBudget
}

// Model is a satisfying assignment of input fields.
type Model map[string]uint64

// Sat reports whether cond (any width; satisfied when nonzero) has a
// satisfying assignment, and returns one if so.
func (s *Solver) Sat(cond *bitvec.Expr) (bool, Model, error) {
	sc := bitvec.Simplify(cond)
	if sc.Op == bitvec.OpConst {
		if sc.Val != 0 {
			return true, Model{}, nil
		}
		return false, nil, nil
	}
	// Cheap model search first: corner values and random probes. Any
	// hit is verified by concrete evaluation, so this is sound.
	if m, ok := s.probeModel(sc); ok {
		return true, m, nil
	}
	solver := sat.New()
	solver.MaxConflicts = s.maxConflicts()
	bl := newBlaster(solver)
	bits := bl.bits(bitvec.BoolOf(sc))
	solver.AddClause(bits[0])
	start := time.Now()
	r := solver.Solve()
	s.Stats.SATTime += time.Since(start)
	s.Stats.SATCalls++
	switch r {
	case sat.Unsat:
		return false, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	m := Model{}
	for name, lits := range bl.fields {
		var v uint64
		for i, l := range lits {
			if solver.Value(l.Var()) != l.Neg() {
				v |= uint64(1) << uint(i)
			}
		}
		m[name] = v
	}
	return true, m, nil
}

// probeModel searches for a satisfying assignment by enumerating
// corner-value combinations and random samples. Combinations are capped
// so the cost stays negligible next to a SAT call.
func (s *Solver) probeModel(cond *bitvec.Expr) (Model, bool) {
	fields := fieldWidths(cond)
	if len(fields) == 0 || len(fields) > 6 {
		return nil, false
	}
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)

	corners := func(w uint8) []uint64 {
		return []uint64{0, 1, bitvec.Mask(w), bitvec.Mask(w) >> 1, bitvec.Mask(w)>>1 + 1, 1 << (w / 2)}
	}
	try := func(env bitvec.MapEnv) (Model, bool) {
		v, err := bitvec.Eval(cond, env)
		if err == nil && v != 0 {
			m := Model{}
			for k, val := range env.Fields {
				m[k] = val
			}
			return m, true
		}
		return nil, false
	}

	// Cartesian product of corner values, capped.
	total := 1
	for _, n := range names {
		total *= len(corners(fields[n]))
		if total > 4096 {
			total = 4096
			break
		}
	}
	for idx := 0; idx < total; idx++ {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		rem := idx
		for _, n := range names {
			cs := corners(fields[n])
			env.Fields[n] = cs[rem%len(cs)]
			rem /= len(cs)
		}
		if m, ok := try(env); ok {
			return m, true
		}
	}
	for i := 0; i < 512; i++ {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		for _, n := range names {
			env.Fields[n] = s.rng.Uint64() & bitvec.Mask(fields[n])
		}
		if m, ok := try(env); ok {
			return m, true
		}
	}
	return nil, false
}

// Valid reports whether cond is nonzero under every assignment.
func (s *Solver) Valid(cond *bitvec.Expr) (bool, error) {
	satisfiable, _, err := s.Sat(bitvec.LNot(cond))
	if err != nil {
		return false, err
	}
	return !satisfiable, nil
}

// CacheSize returns the number of cached equivalence verdicts.
func (s *Solver) CacheSize() int { return len(s.cache) }

func (s *Solver) randomEnv(fields map[string]uint8, round int) bitvec.MapEnv {
	env := bitvec.MapEnv{Fields: map[string]uint64{}, Refs: map[string]uint64{}}
	for name, w := range fields {
		var v uint64
		switch round {
		case 0:
			v = 0
		case 1:
			v = bitvec.Mask(w)
		case 2:
			v = 1
		default:
			v = s.rng.Uint64() & bitvec.Mask(w)
		}
		env.Fields[name] = v
	}
	return env
}

// fieldWidths collects the fields of both expressions with widths.
func fieldWidths(exprs ...*bitvec.Expr) map[string]uint8 {
	out := map[string]uint8{}
	for _, e := range exprs {
		e.Walk(func(n *bitvec.Expr) {
			if n.Op == bitvec.OpField {
				if w, ok := out[n.Name]; ok && w != n.W {
					panic(fmt.Sprintf("smt: field %q used at widths %d and %d", n.Name, w, n.W))
				}
				out[n.Name] = n.W
			}
		})
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if !sort.IntsAreSorted(a) || !sort.IntsAreSorted(b) {
		sort.Ints(a)
		sort.Ints(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
