package smt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"codephage/internal/bitvec"
)

// ErrBudget is returned when the SAT search exhausts its conflict
// budget before reaching a verdict.
var ErrBudget = errors.New("smt: conflict budget exhausted")

// Stats counts solver activity, exposed for the paper's translation
// time discussion (the memo and the input-byte prefilter together give
// an order-of-magnitude reduction in translation times). Sessions
// record their own activity here; concurrent consumers Merge these
// per-session counters into engine aggregates.
type Stats struct {
	Queries     int           // total Equiv calls
	CacheHits   int           // answered from the shared verdict memo
	Prefiltered int           // rejected by the input-byte disjointness filter
	Refuted     int           // refuted by random probing
	Syntactic   int           // proven by simplification to identical trees
	SATCalls    int           // full bit-blast + SAT proofs
	SATTime     time.Duration // time spent inside the SAT solver
}

// Merge accumulates the counters of o into s. Per-session stats
// report their activity through this so concurrent consumers never
// race on one shared Stats value.
func (s *Stats) Merge(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.Prefiltered += o.Prefiltered
	s.Refuted += o.Refuted
	s.Syntactic += o.Syntactic
	s.SATCalls += o.SATCalls
	s.SATTime += o.SATTime
}

// Session is a single-goroutine handle on a Service: it answers
// equivalence and satisfiability queries about bitvec expressions
// (SolverEquiv of Figure 7) through the service's shared memo and
// incremental solver, keeping local Stats. Probe randomness is seeded
// per query from the query's own content, so every verdict — probed,
// proven, or budget-exhausted — is a pure function of the query. A
// Session is not safe for concurrent use; create one per worker and
// Merge its Stats when done.
type Session struct {
	// MaxConflicts overrides the service's per-call conflict budget
	// for this session's queries (0 = the service default). The
	// engine's overflow-freedom proofs run on a small budget this way.
	MaxConflicts int64

	// Observer, when set, receives one callback per Equiv/Sat query
	// with a class label describing how the query resolved
	// (e.g. "equiv.memo", "sat.solve") and its wall-clock duration.
	// The telemetry layer feeds per-class latency histograms from
	// this. The callback runs on the session's goroutine and must not
	// re-enter the session.
	Observer func(class string, d time.Duration)

	Stats Stats

	svc *Service

	// lastClass records how the most recent query resolved, for the
	// Observer wrappers. Plain constant-string stores, so the cost
	// without an observer is negligible.
	lastClass string
}

// Session returns a new query session on the service.
func (s *Service) Session() *Session {
	s.sessions.Add(1)
	return &Session{svc: s}
}

// queryRand returns the deterministic probe stream for one query,
// seeded from the expressions' structural content. Per-query seeding
// (rather than a per-session stream) keeps probe environments a pure
// function of the query: a session whose earlier queries were answered
// by the shared memo — which depends on what concurrent transfers
// already proved — draws exactly the same probes as one that computed
// them, so probe-vs-budget outcomes can never vary with scheduling.
func queryRand(exprs ...*bitvec.Expr) *rand.Rand {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	var walk func(e *bitvec.Expr)
	walk = func(e *bitvec.Expr) {
		mix(uint64(e.Op)<<32 | uint64(e.W)<<24 | uint64(e.Hi)<<16 | uint64(e.Lo)<<8)
		mix(e.Val)
		mix(uint64(int64(e.Off)))
		for i := 0; i < len(e.Name); i++ {
			mix(uint64(e.Name[i]))
		}
		mix(0x28)
		for _, o := range e.Operands() {
			walk(o)
		}
		mix(0x29)
	}
	for _, e := range exprs {
		walk(e)
	}
	return rand.New(rand.NewSource(int64(h ^ 0x517bcf)))
}

// Service returns the service this session queries.
func (ss *Session) Service() *Service { return ss.svc }

// Equiv reports whether a and b evaluate identically for every
// assignment of their input fields (SolverEquiv of Figure 7).
// Expressions of different widths are never equivalent.
func (ss *Session) Equiv(a, b *bitvec.Expr) (bool, error) {
	if ss.Observer == nil {
		return ss.equiv(a, b)
	}
	start := time.Now()
	res, err := ss.equiv(a, b)
	ss.Observer(ss.lastClass, time.Since(start))
	return res, err
}

func (ss *Session) equiv(a, b *bitvec.Expr) (bool, error) {
	ss.Stats.Queries++
	ss.svc.queries.Add(1)
	if a.W != b.W {
		ss.lastClass = "equiv.trivial"
		return false, nil
	}

	// Optimisation 1 (paper §3.3): expressions over different sets of
	// input bytes are not considered equivalent; skip the solver.
	if !ss.svc.cfg.DisablePrefilter && !sameInts(a.ByteDeps(), b.ByteDeps()) {
		ss.Stats.Prefiltered++
		ss.lastClass = "equiv.prefilter"
		return false, nil
	}

	// Optimisation 2 (paper §3.3): cache all solver queries — here in
	// the service-wide memo, so every consumer in the process shares
	// one set of verdicts. The key is symmetric, and content-stable so
	// a persisted memo read back in another process answers the same
	// queries. Ablation runs with the memo disabled skip the key
	// entirely — the Merkle hash walk is pure overhead then (amortised
	// O(1) on interned terms, but measurable at query rates; see
	// BenchmarkEquivMemoDisabled).
	var key string
	budget := ss.budget()
	if !ss.svc.cfg.DisableMemo {
		ka, kb := a.StableKey(), b.StableKey()
		if ka > kb {
			ka, kb = kb, ka
		}
		key = "E|" + ka + "|" + kb
		if e, ok := ss.svc.memoGet(key, budget); ok {
			ss.Stats.CacheHits++
			ss.lastClass = "equiv.memo"
			if e.exhausted {
				return false, ErrBudget
			}
			return e.verdict, nil
		}
	}

	res, err := ss.equivUncached(a, b)
	if err == ErrBudget {
		ss.svc.memoPut(&memoEntry{key: key, exhausted: true, budget: budget})
		return false, err
	}
	if err != nil {
		return false, err
	}
	ss.svc.memoPut(&memoEntry{key: key, verdict: res})
	return res, nil
}

// budget is the session's effective per-call conflict budget.
func (ss *Session) budget() int64 {
	if ss.MaxConflicts > 0 {
		return ss.MaxConflicts
	}
	return ss.svc.cfg.maxConflicts()
}

func (ss *Session) equivUncached(a, b *bitvec.Expr) (bool, error) {
	sa, sb := bitvec.Simplify(a), bitvec.Simplify(b)
	if bitvec.Equal(sa, sb) {
		ss.Stats.Syntactic++
		ss.lastClass = "equiv.syntactic"
		return true, nil
	}

	// Cheap sound refutation: random concrete probes, drawn from a
	// stream seeded by the query itself.
	fields := fieldWidths(sa, sb)
	rng := queryRand(sa, sb)
	for i := 0; i < ss.svc.cfg.probes(); i++ {
		env := randomEnv(rng, fields, i)
		va, errA := bitvec.Eval(sa, env)
		vb, errB := bitvec.Eval(sb, env)
		if errA != nil || errB != nil {
			break // Ref leaves have no valuation; fall through to SAT
		}
		if va != vb {
			ss.Stats.Refuted++
			ss.lastClass = "equiv.probe"
			return false, nil
		}
	}

	// Full proof on the shared incremental solver: SAT(a != b) must be
	// unsatisfiable.
	ss.Stats.SATCalls++
	ss.lastClass = "equiv.solve"
	start := time.Now()
	defer func() { ss.Stats.SATTime += time.Since(start) }()
	neSat, err := ss.svc.solveNe(sa, sb, ss.MaxConflicts)
	if err != nil {
		return false, err
	}
	return !neSat, nil
}

// Model is a satisfying assignment of input fields.
type Model map[string]uint64

func (m Model) clone() Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Sat reports whether cond (any width; satisfied when nonzero) has a
// satisfying assignment, and returns one if so.
func (ss *Session) Sat(cond *bitvec.Expr) (bool, Model, error) {
	if ss.Observer == nil {
		return ss.sat(cond)
	}
	start := time.Now()
	ok, m, err := ss.sat(cond)
	ss.Observer(ss.lastClass, time.Since(start))
	return ok, m, err
}

func (ss *Session) sat(cond *bitvec.Expr) (bool, Model, error) {
	ss.svc.queries.Add(1)
	sc := bitvec.Simplify(cond)
	if sc.Op == bitvec.OpConst {
		ss.lastClass = "sat.trivial"
		if sc.Val != 0 {
			return true, Model{}, nil
		}
		return false, nil, nil
	}
	var key string
	budget := ss.budget()
	if !ss.svc.cfg.DisableMemo {
		key = "S|" + sc.StableKey()
		if e, ok := ss.svc.memoGet(key, budget); ok {
			ss.Stats.CacheHits++
			ss.lastClass = "sat.memo"
			if e.exhausted {
				return false, nil, ErrBudget
			}
			if e.verdict {
				return true, e.model.clone(), nil
			}
			return false, nil, nil
		}
	}
	// Cheap model search first: corner values and random probes. Any
	// hit is verified by concrete evaluation, so this is sound.
	if m, ok := probeModel(sc); ok {
		ss.svc.memoPut(&memoEntry{key: key, verdict: true, model: m.clone()})
		ss.lastClass = "sat.probe"
		return true, m, nil
	}
	ss.Stats.SATCalls++
	ss.lastClass = "sat.solve"
	start := time.Now()
	ok, m, err := ss.svc.solveSat(sc, ss.MaxConflicts)
	ss.Stats.SATTime += time.Since(start)
	if err == ErrBudget {
		ss.svc.memoPut(&memoEntry{key: key, exhausted: true, budget: budget})
		return false, nil, err
	}
	if err != nil {
		return false, nil, err
	}
	if ok {
		ss.svc.memoPut(&memoEntry{key: key, verdict: true, model: m.clone()})
		return true, m, nil
	}
	ss.svc.memoPut(&memoEntry{key: key, verdict: false})
	return false, nil, nil
}

// probeModel searches for a satisfying assignment by enumerating
// corner-value combinations and random samples (drawn from the
// query-seeded stream). Combinations are capped so the cost stays
// negligible next to a SAT call.
func probeModel(cond *bitvec.Expr) (Model, bool) {
	fields := fieldWidths(cond)
	if len(fields) == 0 || len(fields) > 6 {
		return nil, false
	}
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)

	corners := func(w uint8) []uint64 {
		return []uint64{0, 1, bitvec.Mask(w), bitvec.Mask(w) >> 1, bitvec.Mask(w)>>1 + 1, 1 << (w / 2)}
	}
	try := func(env bitvec.MapEnv) (Model, bool) {
		v, err := bitvec.Eval(cond, env)
		if err == nil && v != 0 {
			m := Model{}
			for k, val := range env.Fields {
				m[k] = val
			}
			return m, true
		}
		return nil, false
	}

	// Cartesian product of corner values, capped.
	total := 1
	for _, n := range names {
		total *= len(corners(fields[n]))
		if total > 4096 {
			total = 4096
			break
		}
	}
	for idx := 0; idx < total; idx++ {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		rem := idx
		for _, n := range names {
			cs := corners(fields[n])
			env.Fields[n] = cs[rem%len(cs)]
			rem /= len(cs)
		}
		if m, ok := try(env); ok {
			return m, true
		}
	}
	rng := queryRand(cond)
	for i := 0; i < 512; i++ {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		for _, n := range names {
			env.Fields[n] = rng.Uint64() & bitvec.Mask(fields[n])
		}
		if m, ok := try(env); ok {
			return m, true
		}
	}
	return nil, false
}

// Valid reports whether cond is nonzero under every assignment.
func (ss *Session) Valid(cond *bitvec.Expr) (bool, error) {
	satisfiable, _, err := ss.Sat(bitvec.LNot(cond))
	if err != nil {
		return false, err
	}
	return !satisfiable, nil
}

func randomEnv(rng *rand.Rand, fields map[string]uint8, round int) bitvec.MapEnv {
	// Fields are visited in sorted order: rng draws must land on the
	// same field every time, or the probe environments — and with them
	// any probe-vs-budget outcome — would vary with map iteration
	// order.
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	env := bitvec.MapEnv{Fields: map[string]uint64{}, Refs: map[string]uint64{}}
	for _, name := range names {
		w := fields[name]
		var v uint64
		switch round {
		case 0:
			v = 0
		case 1:
			v = bitvec.Mask(w)
		case 2:
			v = 1
		default:
			v = rng.Uint64() & bitvec.Mask(w)
		}
		env.Fields[name] = v
	}
	return env
}

// fieldWidths collects the fields of the expressions with widths. One
// query mixing a single field name at two widths panics: Eval and the
// probe paths correlate all reads of a name through one value, while
// the persistent blaster keys SAT variables by (name, width) — the
// two semantics only agree when each query uses one width per name.
// (Across queries, differing widths are fine and deliberate: distinct
// programs map the same path to different-width variables.)
func fieldWidths(exprs ...*bitvec.Expr) map[string]uint8 {
	out := map[string]uint8{}
	for _, e := range exprs {
		e.Walk(func(n *bitvec.Expr) {
			if n.Op == bitvec.OpField {
				if w, ok := out[n.Name]; ok && w != n.W {
					panic(fmt.Sprintf("smt: field %q used at widths %d and %d in one query", n.Name, w, n.W))
				}
				out[n.Name] = n.W
			}
		})
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
