package minic

import (
	"strings"
	"testing"
)

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := Parse(src)
	if err == nil {
		_, err = Check(f)
	}
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %q, want substring %q", err, wantSub)
	}
}

func TestLexerTokens(t *testing.T) {
	l := NewLexer(`x = 0x1F + 42; // comment
	/* block
	   comment */ y <<= `)
	var kinds []TokKind
	var vals []uint64
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		if tok.Kind == TNum {
			vals = append(vals, tok.Val)
		}
	}
	want := []TokKind{TIdent, TAssign, TNum, TPlus, TNum, TSemi, TIdent, TShl, TAssign}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
	if vals[0] != 0x1F || vals[1] != 42 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestLexerLineNumbers(t *testing.T) {
	l := NewLexer("a\nb\n\nc")
	lines := []int{}
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TEOF {
			break
		}
		lines = append(lines, tok.Line)
	}
	if lines[0] != 1 || lines[1] != 2 || lines[2] != 4 {
		t.Fatalf("lines = %v, want [1 2 4]", lines)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{"$", "/* unterminated", "0x", "18446744073709551616"} {
		l := NewLexer(bad)
		_, err := l.Next()
		if err == nil {
			t.Errorf("lexing %q: expected error", bad)
		}
	}
}

func TestParseFullProgram(t *testing.T) {
	p := mustCheck(t, `
struct Img { u32 w; u32 h; u8* data; };
u32 counter = 0;
u8 table[256];

u32 load(Img* im) {
	u32 w = in_u16be();
	u32 h = in_u16be();
	if (w > 16384 || h > 16384) {
		return 0;
	}
	im->w = w;
	im->h = h;
	im->data = alloc(w * h);
	return 1;
}

void main() {
	Img im;
	if (!load(&im)) {
		exit(1);
	}
	out(im.w);
}
`)
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(p.Funcs))
	}
	st := p.Structs["Img"]
	if st == nil {
		t.Fatal("struct Img missing")
	}
	if st.Size() != 16 {
		t.Errorf("sizeof(Img) = %d, want 16 (4+4+8)", st.Size())
	}
	if f := st.Field("data"); f == nil || f.Off != 8 {
		t.Errorf("data field offset = %v", f)
	}
}

func TestPromotionTypes(t *testing.T) {
	p := mustCheck(t, `
void main() {
	u16 a = 1;
	u16 b = 2;
	u32 c = (u32)(a * b);
	u64 d = (u64)a * (u64)b;
	out(d + (u64)c);
}
`)
	_ = p
}

func TestCommonTypeRules(t *testing.T) {
	cases := []struct {
		a, b *IntType
		want string
	}{
		{U16, U16, "i32"}, // both promote
		{U32, I32, "u32"}, // same width, unsigned wins
		{I64, U32, "i64"}, // wider wins
		{U64, I32, "u64"},
		{I8, I8, "i32"},
	}
	for _, c := range cases {
		got := commonType(c.a, c.b)
		if got.String() != c.want {
			t.Errorf("commonType(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	p := mustCheck(t, `
struct P { u8 a; u32 b; u8 c; u64 d; };
void main() { }
`)
	st := p.Structs["P"]
	offs := []int32{}
	for _, f := range st.Fields {
		offs = append(offs, f.Off)
	}
	want := []int32{0, 4, 8, 16}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offs, want)
		}
	}
	if st.Size() != 24 {
		t.Errorf("size = %d, want 24", st.Size())
	}
}

func TestNestedStructValue(t *testing.T) {
	p := mustCheck(t, `
struct Inner { u32 x; };
struct Outer { Inner i; u32 y; };
void main() {
	Outer o;
	o.i.x = 1;
	o.y = 2;
	out((u64)(o.i.x + o.y));
}
`)
	if p.Structs["Outer"].Size() != 8 {
		t.Errorf("Outer size = %d, want 8", p.Structs["Outer"].Size())
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `void main() { out(x); }`, "undefined"},
		{"undefined func", `void main() { frob(); }`, "undefined function"},
		{"dup global", "u32 a;\nu32 a;\nvoid main() { }", "duplicate global"},
		{"dup func", "void f() { }\nvoid f() { }\nvoid main() { }", "duplicate function"},
		{"dup field", `struct S { u32 a; u32 a; }; void main() { }`, "duplicate field"},
		{"dup local", `void main() { u32 a; u32 a; }`, "duplicate declaration"},
		{"shadow builtin", `u32 alloc(u32 n) { return n; } void main() { }`, "shadows a builtin"},
		{"bad deref", `void main() { u32 a; out(*a); }`, "dereference"},
		{"bad member", `void main() { u32 a; out(a.x); }`, "non-struct"},
		{"unknown field", `struct S { u32 a; }; void main() { S s; out(s.b); }`, "no field"},
		{"void var", `void main() { void v; }`, "void type"},
		{"arg count", `u32 f(u32 a) { return a; } void main() { out(f()); }`, "argument"},
		{"assign rvalue", `void main() { 1 = 2; }`, "not assignable"},
		{"struct assign", `struct S { u32 a; }; void main() { S x; S y; x = y; }`, "aggregate"},
		{"recursive struct", `struct S { S s; }; void main() { }`, "embeds itself"},
		{"ptr arith mismatch", `struct S { u32 a; }; void main() { S* p; u32* q; if (p == q) { } }`, "distinct pointer"},
		{"non-const global", `u32 g = in_u8(); void main() { }`, "constant"},
		{"missing return value", `u32 f() { return; } void main() { }`, "missing return value"},
		{"void returns value", `void f() { return 1; } void main() { }`, "returns a value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkErr(t, c.src, c.want)
		})
	}
	// "no main" is a compile-stage error, handled in package compile;
	// verify check passes without main.
	mustCheck(t, `void f() { }`)
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`void main() { if 1 { } }`,
		`void main() { u32 }`,
		`struct S { u32 a }; void main() { }`,
		`void main( { }`,
		`void main() { x + ; }`,
		`void main() { return 1 }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestCastParsing(t *testing.T) {
	mustCheck(t, `
struct Img { u32 w; };
void main() {
	u64 x = 5;
	u32 y = (u32)x;
	Img* p = (Img*)alloc(sizeof(Img));
	u8* q = (u8*)p;
	u64 addr = (u64)q;
	out(addr - addr + (u64)y);
}
`)
}

func TestParenVsCastDisambiguation(t *testing.T) {
	// (width) is a parenthesised expression, not a cast, because width
	// is a variable, not a struct name.
	mustCheck(t, `
void main() {
	u32 width = 3;
	u32 x = (width) * 2;
	out(x);
}
`)
}

func TestConstEval(t *testing.T) {
	p := mustCheck(t, `
u32 a = 1 + 2 * 3;
u32 b = (1 << 16) - 1;
u32 c = ~0 & 0xFF;
u32 d = sizeof(u64) * 8;
void main() { }
`)
	vals := map[string]uint64{}
	for _, g := range p.Globals {
		vals[g.Name] = g.InitVal
	}
	if vals["a"] != 7 || vals["b"] != 0xFFFF || vals["c"] != 0xFF || vals["d"] != 64 {
		t.Fatalf("global inits = %v", vals)
	}
}

func TestElseIfChain(t *testing.T) {
	mustCheck(t, `
void main() {
	u32 x = in_u8();
	if (x == 1) { out(1); }
	else if (x == 2) { out(2); }
	else { out(3); }
}
`)
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	checkErr(t, `void main() { break; }`, "outside a loop")
	checkErr(t, `void main() { continue; }`, "outside a loop")
	mustCheck(t, `void main() { while (1) { break; } }`)
}
