// Package minic implements the front end of the MiniC language: lexer,
// parser, type checker and constant folder. MiniC is the C-like source
// language the benchmark applications are written in; Code Phage
// generates source-level patches in MiniC and recompiles recipients,
// mirroring the paper's C patch generation.
//
// MiniC models a 32-bit machine: sizeof yields u32 and alloc takes a
// u32 size, so buffer-size computations overflow at 32 bits exactly as
// in the paper's subject programs.
package minic

import "fmt"

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TNum
	TKeyword

	// Punctuation and operators.
	TLParen
	TRParen
	TLBrace
	TRBrace
	TLBrack
	TRBrack
	TSemi
	TComma
	TDot
	TArrow // ->
	TAssign
	TPlus
	TMinus
	TStar
	TSlash
	TPercent
	TAmp
	TPipe
	TCaret
	TTilde
	TBang
	TShl
	TShr
	TEq
	TNe
	TLt
	TLe
	TGt
	TGe
	TAndAnd
	TOrOr
)

var kindNames = map[TokKind]string{
	TEOF: "end of file", TIdent: "identifier", TNum: "number", TKeyword: "keyword",
	TLParen: "(", TRParen: ")", TLBrace: "{", TRBrace: "}",
	TLBrack: "[", TRBrack: "]", TSemi: ";", TComma: ",", TDot: ".",
	TArrow: "->", TAssign: "=", TPlus: "+", TMinus: "-", TStar: "*",
	TSlash: "/", TPercent: "%", TAmp: "&", TPipe: "|", TCaret: "^",
	TTilde: "~", TBang: "!", TShl: "<<", TShr: ">>",
	TEq: "==", TNe: "!=", TLt: "<", TLe: "<=", TGt: ">", TGe: ">=",
	TAndAnd: "&&", TOrOr: "||",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  uint64 // TNum value
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TIdent, TKeyword:
		return t.Text
	case TNum:
		return fmt.Sprintf("%d", t.Val)
	}
	return t.Kind.String()
}

var keywords = map[string]bool{
	"struct": true, "if": true, "else": true, "while": true,
	"return": true, "sizeof": true, "break": true, "continue": true,
	"u8": true, "u16": true, "u32": true, "u64": true,
	"i8": true, "i16": true, "i32": true, "i64": true,
	"void": true,
}

// Lexer turns MiniC source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer returns a lexer over src. Lines are 1-based.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1} }

func (l *Lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek2() == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return Token{Kind: TEOF, Line: line}, nil
	}
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := TIdent
		if keywords[text] {
			kind = TKeyword
		}
		return Token{Kind: kind, Text: text, Line: line}, nil

	case isDigit(c):
		start := l.pos
		base := uint64(10)
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			base = 16
			l.pos += 2
			start = l.pos
			for l.pos < len(l.src) && isHex(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start {
				return Token{}, l.errf("malformed hex literal")
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		text := l.src[start:l.pos]
		var v uint64
		for i := 0; i < len(text); i++ {
			d := hexVal(text[i])
			if v > (^uint64(0)-uint64(d))/base {
				return Token{}, l.errf("integer literal %q overflows u64", text)
			}
			v = v*base + uint64(d)
		}
		return Token{Kind: TNum, Text: text, Val: v, Line: line}, nil
	}

	two := func(k TokKind) (Token, error) {
		l.pos += 2
		return Token{Kind: k, Line: line}, nil
	}
	one := func(k TokKind) (Token, error) {
		l.pos++
		return Token{Kind: k, Line: line}, nil
	}

	switch c {
	case '(':
		return one(TLParen)
	case ')':
		return one(TRParen)
	case '{':
		return one(TLBrace)
	case '}':
		return one(TRBrace)
	case '[':
		return one(TLBrack)
	case ']':
		return one(TRBrack)
	case ';':
		return one(TSemi)
	case ',':
		return one(TComma)
	case '.':
		return one(TDot)
	case '+':
		return one(TPlus)
	case '*':
		return one(TStar)
	case '/':
		return one(TSlash)
	case '%':
		return one(TPercent)
	case '^':
		return one(TCaret)
	case '~':
		return one(TTilde)
	case '-':
		if l.peek2() == '>' {
			return two(TArrow)
		}
		return one(TMinus)
	case '=':
		if l.peek2() == '=' {
			return two(TEq)
		}
		return one(TAssign)
	case '!':
		if l.peek2() == '=' {
			return two(TNe)
		}
		return one(TBang)
	case '<':
		switch l.peek2() {
		case '=':
			return two(TLe)
		case '<':
			return two(TShl)
		}
		return one(TLt)
	case '>':
		switch l.peek2() {
		case '=':
			return two(TGe)
		case '>':
			return two(TShr)
		}
		return one(TGt)
	case '&':
		if l.peek2() == '&' {
			return two(TAndAnd)
		}
		return one(TAmp)
	case '|':
		if l.peek2() == '|' {
			return two(TOrOr)
		}
		return one(TPipe)
	}
	return Token{}, l.errf("unexpected character %q", c)
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case isDigit(c):
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
