package minic

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzSeeds span the MiniC surface: declarations, structs, pointers,
// control flow, the builtin families, and a few near-miss inputs that
// exercise error paths.
var fuzzSeeds = []string{
	"void main() {}",
	"u32 g; void main() { g = 1; }",
	`void main() {
	u32 v = (u32)in_u8();
	if (v > 5) { out(1); } else { out(0); }
}`,
	`struct img { u32 w; u32 h; };
struct img g;
u32 area(u32 w, u32 h) { return w * h; }
void main() {
	g.w = in_u32be();
	g.h = in_u32be();
	u8* buf = alloc(area(g.w, g.h));
	if (buf == 0) { exit(1); }
	buf[0] = 1;
	free(buf);
}`,
	`void main() {
	u32 i;
	for (i = 0; i < 10; i += 1) {
		while (in_eof() == 0) { break; }
		out(i);
	}
}`,
	`i64 f(i64 x) { if (x <= 1) { return 1; } return x * f(x - 1); }
void main() { out((u64)f(5)); }`,
	`void main() { u16 h = in_u16le(); u16 w = in_u16be(); out((u64)(h << 8 | w)); }`,
	"void main() { abort(); }",
	// Near-miss inputs: unterminated constructs, stray tokens.
	"void main() { if (1) { out(1); }",
	"struct s { u32",
	"u32 x = ;",
	"void main() { 0x }",
	"/* unterminated",
	"\"unterminated",
}

var genCorpus = flag.Bool("gen-corpus", false, "regenerate the checked-in fuzz seed corpus under testdata/fuzz")

// TestGenerateFuzzCorpus rewrites testdata/fuzz/{FuzzParse,FuzzLexer}
// from fuzzSeeds. Run it after changing the seeds:
//
//	go test ./internal/minic -run TestGenerateFuzzCorpus -gen-corpus
func TestGenerateFuzzCorpus(t *testing.T) {
	if !*genCorpus {
		t.Skip("pass -gen-corpus to regenerate testdata/fuzz")
	}
	for _, target := range []string{"FuzzParse", "FuzzLexer"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, src := range fuzzSeeds {
			body := fmt.Sprintf("go test fuzz v1\nstring(%s)\n", strconv.Quote(src))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// FuzzParse throws arbitrary source at the parser and, when a file
// parses, at the type checker. Neither may panic: the parser's
// panic/recover discipline must convert every malformed input into an
// error, and Check must tolerate any AST Parse produces.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse cost, not coverage
		}
		file, err := Parse(src)
		if err != nil {
			if file != nil {
				t.Errorf("Parse returned both a file and error %v", err)
			}
			return
		}
		if file == nil {
			t.Error("Parse returned nil file and nil error")
			return
		}
		prog, err := Check(file)
		if err == nil && prog == nil {
			t.Error("Check returned nil program and nil error")
		}
	})
}

// FuzzLexer drives the lexer to EOF on arbitrary input: every token
// stream must terminate (no stuck positions) and errors must surface
// as errors, not panics.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		l := NewLexer(src)
		for i := 0; ; i++ {
			tok, err := l.Next()
			if err != nil {
				return
			}
			if tok.Kind == TEOF {
				return
			}
			if i > len(src)+16 {
				t.Fatalf("lexer produced more tokens than input bytes: stuck? (input %q)", truncate(src))
			}
		}
	})
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return strings.ToValidUTF8(s, "�")
}
