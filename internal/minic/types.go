package minic

import (
	"fmt"
	"strings"
)

// Type is a MiniC semantic type.
type Type interface {
	// Size is the storage size in bytes.
	Size() int32
	// Align is the required alignment in bytes.
	Align() int32
	String() string
}

// IntType is a fixed-width integer type.
type IntType struct {
	Bits   uint8
	Signed bool
}

// Size implements Type.
func (t *IntType) Size() int32 { return int32(t.Bits) / 8 }

// Align implements Type.
func (t *IntType) Align() int32 { return t.Size() }

func (t *IntType) String() string {
	if t.Signed {
		return fmt.Sprintf("i%d", t.Bits)
	}
	return fmt.Sprintf("u%d", t.Bits)
}

// PtrType is a pointer type. Pointers are 8 bytes (the VM address
// space is 64-bit even though the data model is 32-bit, like x32).
type PtrType struct{ Elem Type }

// Size implements Type.
func (t *PtrType) Size() int32 { return 8 }

// Align implements Type.
func (t *PtrType) Align() int32 { return 8 }

func (t *PtrType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	N    int32
}

// Size implements Type.
func (t *ArrayType) Size() int32 { return t.Elem.Size() * t.N }

// Align implements Type.
func (t *ArrayType) Align() int32 { return t.Elem.Align() }

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.N) }

// StructField is a laid-out struct member.
type StructField struct {
	Name string
	Type Type
	Off  int32
}

// StructType is a struct with computed layout.
type StructType struct {
	Name   string
	Fields []StructField
	size   int32
	align  int32
}

// Size implements Type.
func (t *StructType) Size() int32 { return t.size }

// Align implements Type.
func (t *StructType) Align() int32 { return t.align }

func (t *StructType) String() string { return "struct " + t.Name }

// Field returns the named field, or nil.
func (t *StructType) Field(name string) *StructField {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// VoidType is the void function return type.
type VoidType struct{}

// Size implements Type.
func (t *VoidType) Size() int32 { return 0 }

// Align implements Type.
func (t *VoidType) Align() int32 { return 1 }

func (t *VoidType) String() string { return "void" }

// Predeclared types.
var (
	U8   = &IntType{8, false}
	U16  = &IntType{16, false}
	U32  = &IntType{32, false}
	U64  = &IntType{64, false}
	I8   = &IntType{8, true}
	I16  = &IntType{16, true}
	I32  = &IntType{32, true}
	I64  = &IntType{64, true}
	Void = &VoidType{}
)

var namedIntTypes = map[string]*IntType{
	"u8": U8, "u16": U16, "u32": U32, "u64": U64,
	"i8": I8, "i16": I16, "i32": I32, "i64": I64,
}

// IsInt reports whether t is an integer type, returning it.
func IsInt(t Type) (*IntType, bool) {
	it, ok := t.(*IntType)
	return it, ok
}

// IsPtr reports whether t is a pointer type, returning it.
func IsPtr(t Type) (*PtrType, bool) {
	pt, ok := t.(*PtrType)
	return pt, ok
}

// SameType reports structural type identity.
func SameType(a, b Type) bool {
	switch at := a.(type) {
	case *IntType:
		bt, ok := b.(*IntType)
		return ok && at.Bits == bt.Bits && at.Signed == bt.Signed
	case *PtrType:
		bt, ok := b.(*PtrType)
		return ok && SameType(at.Elem, bt.Elem)
	case *ArrayType:
		bt, ok := b.(*ArrayType)
		return ok && at.N == bt.N && SameType(at.Elem, bt.Elem)
	case *StructType:
		bt, ok := b.(*StructType)
		return ok && at == bt // structs are nominal
	case *VoidType:
		_, ok := b.(*VoidType)
		return ok
	}
	return false
}

// layoutStruct computes field offsets, size and alignment.
func layoutStruct(t *StructType) {
	var off, align int32 = 0, 1
	for i := range t.Fields {
		f := &t.Fields[i]
		a := f.Type.Align()
		if a > align {
			align = a
		}
		off = roundUp(off, a)
		f.Off = off
		off += f.Type.Size()
	}
	t.size = roundUp(off, align)
	if t.size == 0 {
		t.size = 1
	}
	t.align = align
}

func roundUp(v, a int32) int32 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}

// promote applies C-style integer promotion: integer types narrower
// than 32 bits promote to i32 (all their values are representable).
func promote(t *IntType) *IntType {
	if t.Bits < 32 {
		return I32
	}
	return t
}

// commonType implements the usual arithmetic conversions on promoted
// operands: the wider width wins; at equal width unsigned wins.
func commonType(a, b *IntType) *IntType {
	a, b = promote(a), promote(b)
	if a.Bits == b.Bits {
		if a.Signed == b.Signed {
			return a
		}
		return &IntType{a.Bits, false}
	}
	if a.Bits > b.Bits {
		return a
	}
	return b
}

// typeKey returns a canonical string for interning in the debug table.
func typeKey(t Type) string {
	var sb strings.Builder
	writeTypeKey(&sb, t)
	return sb.String()
}

func writeTypeKey(sb *strings.Builder, t Type) {
	switch tt := t.(type) {
	case *IntType:
		sb.WriteString(tt.String())
	case *PtrType:
		writeTypeKey(sb, tt.Elem)
		sb.WriteByte('*')
	case *ArrayType:
		writeTypeKey(sb, tt.Elem)
		fmt.Fprintf(sb, "[%d]", tt.N)
	case *StructType:
		sb.WriteString("struct ")
		sb.WriteString(tt.Name)
	case *VoidType:
		sb.WriteString("void")
	}
}
