package minic

import (
	"fmt"
	"sort"

	"codephage/internal/ir"
)

// Program is a checked translation unit ready for code generation.
type Program struct {
	File    *File
	Structs map[string]*StructType
	Globals []*Symbol
	Funcs   []*FuncDecl
}

// builtinSig describes a VM builtin's MiniC signature.
type builtinSig struct {
	id     ir.Builtin
	params []Type
	ret    Type
}

var builtins = map[string]builtinSig{
	"in_u8":    {ir.BInU8, nil, U8},
	"in_u16be": {ir.BInU16BE, nil, U16},
	"in_u16le": {ir.BInU16LE, nil, U16},
	"in_u32be": {ir.BInU32BE, nil, U32},
	"in_u32le": {ir.BInU32LE, nil, U32},
	"in_seek":  {ir.BInSeek, []Type{U32}, Void},
	"in_pos":   {ir.BInPos, nil, U32},
	"in_len":   {ir.BInLen, nil, U32},
	"in_eof":   {ir.BInEOF, nil, U32},
	"alloc":    {ir.BAlloc, []Type{U32}, &PtrType{U8}},
	"free":     {ir.BFree, []Type{&PtrType{U8}}, Void},
	"exit":     {ir.BExit, []Type{I32}, Void},
	"out":      {ir.BOut, []Type{U64}, Void},
	"abort":    {ir.BAbort, nil, Void},
}

type checker struct {
	prog      *Program
	funcs     map[string]*Symbol
	scopes    []map[string]*Symbol
	cur       *FuncDecl
	loopDepth int
	errs      []error
}

// Check resolves names, computes struct layouts, types every
// expression, and inserts implicit conversion nodes.
func Check(f *File) (*Program, error) {
	c := &checker{
		prog:  &Program{File: f, Structs: map[string]*StructType{}},
		funcs: map[string]*Symbol{},
	}
	c.declareStructs(f.Structs)
	c.declareGlobals(f.Globals)
	c.declareFuncs(f.Funcs)
	for _, fd := range f.Funcs {
		c.checkFunc(fd)
	}
	if len(c.errs) > 0 {
		return nil, joinErrors(c.errs)
	}
	return c.prog, nil
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "\n" + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

func (c *checker) errf(line int, format string, args ...interface{}) {
	c.errs = append(c.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (c *checker) declareStructs(decls []*StructDecl) {
	// Pass 1: register names so pointer fields may refer to any struct.
	for _, d := range decls {
		if _, dup := c.prog.Structs[d.Name]; dup {
			c.errf(d.Line, "duplicate struct %q", d.Name)
			continue
		}
		c.prog.Structs[d.Name] = &StructType{Name: d.Name}
	}
	// Pass 2: resolve field types and lay out, in dependency order.
	done := map[string]bool{}
	var resolve func(d *StructDecl, stack map[string]bool)
	byName := map[string]*StructDecl{}
	for _, d := range decls {
		byName[d.Name] = d
	}
	resolve = func(d *StructDecl, stack map[string]bool) {
		if done[d.Name] {
			return
		}
		if stack[d.Name] {
			c.errf(d.Line, "struct %q embeds itself by value", d.Name)
			done[d.Name] = true
			return
		}
		stack[d.Name] = true
		st := c.prog.Structs[d.Name]
		for _, fd := range d.Fields {
			// Value embedding of another struct requires its layout first.
			if fd.Type.Stars == 0 && fd.Type.ArrayN < 0 {
				if dep, ok := byName[fd.Type.Name]; ok {
					resolve(dep, stack)
				}
			}
			t := c.resolveType(fd.Type)
			if t == nil {
				continue
			}
			if _, isVoid := t.(*VoidType); isVoid {
				c.errf(fd.Line, "field %q has void type", fd.Name)
				continue
			}
			if st.Field(fd.Name) != nil {
				c.errf(fd.Line, "duplicate field %q in struct %q", fd.Name, d.Name)
				continue
			}
			st.Fields = append(st.Fields, StructField{Name: fd.Name, Type: t})
		}
		layoutStruct(st)
		delete(stack, d.Name)
		done[d.Name] = true
	}
	for _, d := range decls {
		resolve(d, map[string]bool{})
	}
}

// resolveType turns a syntactic type into a semantic one.
func (c *checker) resolveType(te *TypeExpr) Type {
	var base Type
	switch {
	case te.Name == "void":
		base = Void
	case namedIntTypes[te.Name] != nil:
		base = namedIntTypes[te.Name]
	default:
		st, ok := c.prog.Structs[te.Name]
		if !ok {
			c.errf(te.Line, "unknown type %q", te.Name)
			return nil
		}
		base = st
	}
	for i := 0; i < te.Stars; i++ {
		base = &PtrType{Elem: base}
	}
	if te.ArrayN >= 0 {
		if te.ArrayN == 0 || te.ArrayN > 1<<24 {
			c.errf(te.Line, "invalid array length %d", te.ArrayN)
			return nil
		}
		base = &ArrayType{Elem: base, N: int32(te.ArrayN)}
	}
	if _, isVoid := base.(*VoidType); isVoid && (te.Stars > 0 || te.ArrayN >= 0) {
		c.errf(te.Line, "void cannot be an element type")
		return nil
	}
	return base
}

func (c *checker) declareGlobals(decls []*VarDecl) {
	seen := map[string]bool{}
	for _, d := range decls {
		if seen[d.Name] {
			c.errf(d.Line, "duplicate global %q", d.Name)
			continue
		}
		seen[d.Name] = true
		t := c.resolveType(d.Type)
		if t == nil {
			continue
		}
		if _, isVoid := t.(*VoidType); isVoid {
			c.errf(d.Line, "global %q has void type", d.Name)
			continue
		}
		sym := &Symbol{Name: d.Name, Kind: SymGlobal, Type: t, Line: d.Line}
		if d.Init != nil {
			it, isInt := IsInt(t)
			if !isInt {
				c.errf(d.Line, "global %q: only integer globals may have initializers", d.Name)
			} else if v, ok := c.constEval(d.Init); ok {
				sym.InitVal = v & maskOf(it.Bits)
				sym.HasInit = true
			} else {
				c.errf(d.Line, "global %q: initializer is not a constant expression", d.Name)
			}
		}
		d.Sym = sym
		c.prog.Globals = append(c.prog.Globals, sym)
	}
}

func maskOf(bits uint8) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

func (c *checker) declareFuncs(decls []*FuncDecl) {
	for i, d := range decls {
		if _, dup := c.funcs[d.Name]; dup {
			c.errf(d.Line, "duplicate function %q", d.Name)
			continue
		}
		if _, isBuiltin := builtins[d.Name]; isBuiltin {
			c.errf(d.Line, "function %q shadows a builtin", d.Name)
			continue
		}
		ret := c.resolveType(d.Ret)
		if ret == nil {
			continue
		}
		switch ret.(type) {
		case *IntType, *PtrType, *VoidType:
		default:
			c.errf(d.Line, "function %q returns unsupported type %s", d.Name, ret)
			continue
		}
		d.RetType = ret
		sym := &Symbol{Name: d.Name, Kind: SymFunc, Type: ret, Line: d.Line, FnIndex: int32(i)}
		c.funcs[d.Name] = sym
		c.prog.Funcs = append(c.prog.Funcs, d)
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errf(sym.Line, "duplicate declaration of %q", sym.Name)
		return
	}
	top[sym.Name] = sym
	c.cur.Locals = append(c.cur.Locals, sym)
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	for _, g := range c.prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func (c *checker) checkFunc(d *FuncDecl) {
	c.cur = d
	c.pushScope()
	defer c.popScope()
	for _, pd := range d.Params {
		t := c.resolveType(pd.Type)
		if t == nil {
			continue
		}
		switch t.(type) {
		case *IntType, *PtrType:
		default:
			c.errf(pd.Line, "parameter %q has unsupported type %s", pd.Name, t)
			continue
		}
		sym := &Symbol{Name: pd.Name, Kind: SymParam, Type: t, Line: pd.Line}
		c.declare(sym)
		d.ParamSyms = append(d.ParamSyms, sym)
	}
	c.checkBlock(d.Body)
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		t := c.resolveType(d.Type)
		if t == nil {
			return
		}
		if _, isVoid := t.(*VoidType); isVoid {
			c.errf(d.Line, "variable %q has void type", d.Name)
			return
		}
		sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: t, Line: d.Line}
		d.Sym = sym
		if d.Init != nil {
			switch t.(type) {
			case *StructType, *ArrayType:
				c.errf(d.Line, "cannot initialize aggregate type %s", t)
				return
			}
			init := c.checkExpr(d.Init)
			if init != nil {
				d.Init = c.convert(init, t, d.Line)
			}
		}
		c.declare(sym)
	case *AssignStmt:
		lhs := c.checkExpr(st.LHS)
		rhs := c.checkExpr(st.RHS)
		if lhs == nil || rhs == nil {
			return
		}
		if !c.isLvalue(lhs) {
			c.errf(st.Line, "left side of assignment is not assignable")
			return
		}
		switch lhs.Type().(type) {
		case *StructType, *ArrayType:
			c.errf(st.Line, "cannot assign aggregate type %s; assign fields instead", lhs.Type())
			return
		}
		st.LHS = lhs
		st.RHS = c.convert(rhs, lhs.Type(), st.Line)
	case *IfStmt:
		st.Cond = c.checkCond(st.Cond)
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *WhileStmt:
		st.Cond = c.checkCond(st.Cond)
		c.loopDepth++
		c.checkBlock(st.Body)
		c.loopDepth--
	case *BreakStmt:
		if c.loopDepth == 0 {
			c.errf(st.Line, "break outside a loop")
		}
	case *ContinueStmt:
		if c.loopDepth == 0 {
			c.errf(st.Line, "continue outside a loop")
		}
	case *ReturnStmt:
		ret := c.cur.RetType
		if st.E == nil {
			if _, isVoid := ret.(*VoidType); !isVoid {
				c.errf(st.Line, "missing return value in %q", c.cur.Name)
			}
			return
		}
		if _, isVoid := ret.(*VoidType); isVoid {
			c.errf(st.Line, "void function %q returns a value", c.cur.Name)
			return
		}
		e := c.checkExpr(st.E)
		if e != nil {
			st.E = c.convert(e, ret, st.Line)
		}
	case *ExprStmt:
		st.E = c.checkExpr(st.E)
	default:
		panic(fmt.Sprintf("minic: unknown statement %T", s))
	}
}

// checkCond types a condition expression (int or pointer).
func (c *checker) checkCond(e Expr) Expr {
	ce := c.checkExpr(e)
	if ce == nil {
		return e
	}
	ce = c.decay(ce)
	switch ce.Type().(type) {
	case *IntType, *PtrType:
		return ce
	}
	c.errf(e.Pos(), "condition has non-scalar type %s", ce.Type())
	return ce
}

// isLvalue reports whether e designates a storage location.
func (c *checker) isLvalue(e Expr) bool {
	switch ee := e.(type) {
	case *Ident:
		return ee.Sym != nil && ee.Sym.Kind != SymFunc
	case *Index:
		return true
	case *Member:
		return true
	case *Unary:
		return ee.Op == TStar
	}
	return false
}

// decay converts array-typed expressions to pointers to their first
// element, as in C.
func (c *checker) decay(e Expr) Expr {
	at, ok := e.Type().(*ArrayType)
	if !ok {
		return e
	}
	cast := &Cast{Line: e.Pos(), X: e, Implicit: true}
	cast.T = &PtrType{Elem: at.Elem}
	return cast
}

// convert coerces e to type to, inserting an implicit cast, or reports
// an error.
func (c *checker) convert(e Expr, to Type, line int) Expr {
	e = c.decay(e)
	from := e.Type()
	if SameType(from, to) {
		return e
	}
	if _, fi := IsInt(from); fi {
		if _, ti := IsInt(to); ti {
			cast := &Cast{Line: line, X: e, Implicit: true}
			cast.T = to
			return cast
		}
	}
	// Literal 0 converts to any pointer (null).
	if lit, isLit := e.(*NumLit); isLit && lit.Val == 0 {
		if _, isPtr := IsPtr(to); isPtr {
			cast := &Cast{Line: line, X: e, Implicit: true}
			cast.T = to
			return cast
		}
	}
	c.errf(line, "cannot convert %s to %s", from, to)
	return e
}

func (c *checker) checkExpr(e Expr) Expr {
	switch ee := e.(type) {
	case *NumLit:
		ee.T = literalType(ee.Val)
		return ee
	case *Ident:
		sym := c.lookup(ee.Name)
		if sym == nil {
			c.errf(ee.Line, "undefined: %q", ee.Name)
			return nil
		}
		ee.Sym = sym
		ee.T = sym.Type
		return ee
	case *Unary:
		return c.checkUnary(ee)
	case *Binary:
		return c.checkBinary(ee)
	case *Call:
		return c.checkCall(ee)
	case *Index:
		return c.checkIndex(ee)
	case *Member:
		return c.checkMember(ee)
	case *Cast:
		return c.checkCast(ee)
	case *SizeOf:
		t := c.resolveType(ee.Of)
		if t == nil {
			return nil
		}
		ee.Size = uint64(t.Size())
		ee.T = U32 // 32-bit data model: sizeof is u32
		return ee
	}
	panic(fmt.Sprintf("minic: unknown expression %T", e))
}

// literalType assigns C-like types to integer literals.
func literalType(v uint64) Type {
	switch {
	case v < 1<<31:
		return I32
	case v < 1<<32:
		return U32
	case v < 1<<63:
		return I64
	default:
		return U64
	}
}

func (c *checker) checkUnary(e *Unary) Expr {
	x := c.checkExpr(e.X)
	if x == nil {
		return nil
	}
	switch e.Op {
	case TMinus, TTilde:
		x = c.decay(x)
		it, ok := IsInt(x.Type())
		if !ok {
			c.errf(e.Line, "operator %s requires an integer operand, got %s", e.Op, x.Type())
			return nil
		}
		p := promote(it)
		e.X = c.convert(x, p, e.Line)
		e.T = p
		return e
	case TBang:
		x = c.decay(x)
		switch x.Type().(type) {
		case *IntType, *PtrType:
		default:
			c.errf(e.Line, "operator ! requires a scalar operand, got %s", x.Type())
			return nil
		}
		e.X = x
		e.T = I32
		return e
	case TStar:
		x = c.decay(x)
		pt, ok := IsPtr(x.Type())
		if !ok {
			c.errf(e.Line, "cannot dereference non-pointer %s", x.Type())
			return nil
		}
		e.X = x
		e.T = pt.Elem
		return e
	case TAmp:
		if !c.isLvalue(x) {
			c.errf(e.Line, "cannot take the address of this expression")
			return nil
		}
		e.X = x
		e.T = &PtrType{Elem: x.Type()}
		return e
	}
	panic("minic: bad unary op")
}

func (c *checker) checkBinary(e *Binary) Expr {
	if e.Op == TAndAnd || e.Op == TOrOr {
		e.X = c.checkCond(e.X)
		e.Y = c.checkCond(e.Y)
		e.T = I32
		return e
	}
	x := c.checkExpr(e.X)
	y := c.checkExpr(e.Y)
	if x == nil || y == nil {
		return nil
	}
	x, y = c.decay(x), c.decay(y)

	xp, xIsPtr := IsPtr(x.Type())
	yp, yIsPtr := IsPtr(y.Type())
	xi, xIsInt := IsInt(x.Type())
	yi, yIsInt := IsInt(y.Type())

	switch e.Op {
	case TPlus, TMinus:
		switch {
		case xIsPtr && yIsInt:
			e.X, e.Y = x, c.convert(y, I64, e.Line)
			e.T = xp
			return e
		case yIsPtr && xIsInt && e.Op == TPlus:
			e.X, e.Y = c.convert(x, I64, e.Line), y
			e.T = yp
			return e
		}
		fallthrough
	case TStar, TSlash, TPercent, TAmp, TPipe, TCaret:
		if !xIsInt || !yIsInt {
			c.errf(e.Line, "operator %s requires integer operands, got %s and %s", e.Op, x.Type(), y.Type())
			return nil
		}
		ct := commonType(xi, yi)
		e.X = c.convert(x, ct, e.Line)
		e.Y = c.convert(y, ct, e.Line)
		e.T = ct
		return e
	case TShl, TShr:
		if !xIsInt || !yIsInt {
			c.errf(e.Line, "shift requires integer operands, got %s and %s", x.Type(), y.Type())
			return nil
		}
		pt := promote(xi)
		e.X = c.convert(x, pt, e.Line)
		e.Y = c.convert(y, pt, e.Line)
		e.T = pt
		return e
	case TEq, TNe, TLt, TLe, TGt, TGe:
		switch {
		case xIsInt && yIsInt:
			ct := commonType(xi, yi)
			e.X = c.convert(x, ct, e.Line)
			e.Y = c.convert(y, ct, e.Line)
		case xIsPtr && yIsPtr && (e.Op == TEq || e.Op == TNe):
			if !SameType(xp, yp) {
				c.errf(e.Line, "comparing distinct pointer types %s and %s", xp, yp)
				return nil
			}
			e.X, e.Y = x, y
		case xIsPtr && (e.Op == TEq || e.Op == TNe):
			e.X, e.Y = x, c.convert(y, xp, e.Line)
		case yIsPtr && (e.Op == TEq || e.Op == TNe):
			e.X, e.Y = c.convert(x, yp, e.Line), y
		default:
			c.errf(e.Line, "invalid comparison between %s and %s", x.Type(), y.Type())
			return nil
		}
		e.T = I32
		return e
	}
	panic("minic: bad binary op")
}

func (c *checker) checkCall(e *Call) Expr {
	// Builtin?
	if sig, ok := builtins[e.Name]; ok {
		if len(e.Args) != len(sig.params) {
			c.errf(e.Line, "%s takes %d argument(s), got %d", e.Name, len(sig.params), len(e.Args))
			return nil
		}
		for i, a := range e.Args {
			ca := c.checkExpr(a)
			if ca == nil {
				return nil
			}
			e.Args[i] = c.convert(ca, sig.params[i], e.Line)
		}
		e.Builtin = uint8(sig.id)
		e.T = sig.ret
		return e
	}
	sym, ok := c.funcs[e.Name]
	if !ok {
		c.errf(e.Line, "undefined function %q", e.Name)
		return nil
	}
	var decl *FuncDecl
	for _, fd := range c.prog.Funcs {
		if fd.Name == e.Name {
			decl = fd
			break
		}
	}
	if decl == nil {
		c.errf(e.Line, "undefined function %q", e.Name)
		return nil
	}
	if len(e.Args) != len(decl.Params) {
		c.errf(e.Line, "%s takes %d argument(s), got %d", e.Name, len(decl.Params), len(e.Args))
		return nil
	}
	for i, a := range e.Args {
		ca := c.checkExpr(a)
		if ca == nil {
			return nil
		}
		// Parameter types: resolve from the declaration (ParamSyms may
		// not be populated yet if the callee is checked later).
		pt := c.resolveType(decl.Params[i].Type)
		if pt == nil {
			return nil
		}
		e.Args[i] = c.convert(ca, pt, e.Line)
	}
	e.Sym = sym
	e.T = decl.RetType
	if e.T == nil {
		e.T = c.resolveType(decl.Ret)
	}
	return e
}

func (c *checker) checkIndex(e *Index) Expr {
	x := c.checkExpr(e.X)
	i := c.checkExpr(e.I)
	if x == nil || i == nil {
		return nil
	}
	var elem Type
	switch t := x.Type().(type) {
	case *ArrayType:
		elem = t.Elem
	case *PtrType:
		elem = t.Elem
	default:
		c.errf(e.Line, "cannot index %s", x.Type())
		return nil
	}
	if _, ok := IsInt(i.Type()); !ok {
		c.errf(e.Line, "array index must be an integer, got %s", i.Type())
		return nil
	}
	e.X = x
	e.I = c.convert(i, I64, e.Line)
	e.T = elem
	return e
}

func (c *checker) checkMember(e *Member) Expr {
	x := c.checkExpr(e.X)
	if x == nil {
		return nil
	}
	var st *StructType
	if e.Arrow {
		pt, ok := IsPtr(x.Type())
		if !ok {
			c.errf(e.Line, "-> on non-pointer %s", x.Type())
			return nil
		}
		st, ok = pt.Elem.(*StructType)
		if !ok {
			c.errf(e.Line, "-> on pointer to non-struct %s", pt.Elem)
			return nil
		}
	} else {
		var ok bool
		st, ok = x.Type().(*StructType)
		if !ok {
			c.errf(e.Line, ". on non-struct %s", x.Type())
			return nil
		}
	}
	f := st.Field(e.Name)
	if f == nil {
		c.errf(e.Line, "struct %s has no field %q", st.Name, e.Name)
		return nil
	}
	e.X = x
	e.Field = f
	e.T = f.Type
	return e
}

func (c *checker) checkCast(e *Cast) Expr {
	x := c.checkExpr(e.X)
	if x == nil {
		return nil
	}
	x = c.decay(x)
	to := c.resolveType(e.To)
	if to == nil {
		return nil
	}
	from := x.Type()
	ok := false
	switch to.(type) {
	case *IntType:
		switch from.(type) {
		case *IntType, *PtrType:
			ok = true
		}
	case *PtrType:
		switch from.(type) {
		case *IntType, *PtrType:
			ok = true
		}
	}
	if !ok {
		c.errf(e.Line, "invalid cast from %s to %s", from, to)
		return nil
	}
	e.X = x
	e.T = to
	return e
}

// constEval folds constant integer expressions (for global
// initializers). Only literals, sizeof, casts and pure arithmetic.
func (c *checker) constEval(e Expr) (uint64, bool) {
	switch ee := e.(type) {
	case *NumLit:
		return ee.Val, true
	case *SizeOf:
		t := c.resolveType(ee.Of)
		if t == nil {
			return 0, false
		}
		return uint64(t.Size()), true
	case *Unary:
		x, ok := c.constEval(ee.X)
		if !ok {
			return 0, false
		}
		switch ee.Op {
		case TMinus:
			return -x, true
		case TTilde:
			return ^x, true
		case TBang:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		x, okX := c.constEval(ee.X)
		y, okY := c.constEval(ee.Y)
		if !okX || !okY {
			return 0, false
		}
		switch ee.Op {
		case TPlus:
			return x + y, true
		case TMinus:
			return x - y, true
		case TStar:
			return x * y, true
		case TSlash:
			if y != 0 {
				return x / y, true
			}
		case TPercent:
			if y != 0 {
				return x % y, true
			}
		case TShl:
			if y < 64 {
				return x << y, true
			}
			return 0, true
		case TShr:
			if y < 64 {
				return x >> y, true
			}
			return 0, true
		case TAmp:
			return x & y, true
		case TPipe:
			return x | y, true
		case TCaret:
			return x ^ y, true
		}
	case *Cast:
		return c.constEval(ee.X)
	}
	return 0, false
}

// SortedGlobalNames returns the global names in sorted order (test aid).
func (p *Program) SortedGlobalNames() []string {
	names := make([]string, len(p.Globals))
	for i, g := range p.Globals {
		names[i] = g.Name
	}
	sort.Strings(names)
	return names
}
