package minic

import (
	"fmt"
	"strings"
)

// Builder assembles a MiniC translation unit programmatically: the
// scenario generator composes synthetic donor and recipient programs
// from templates instead of concatenating raw strings. The builder
// only manages structure (declarations, blocks, indentation); the
// emitted text goes through the ordinary Parse/Check front end, and
// Validate runs exactly that, so a generator bug surfaces as a
// deterministic validation error rather than a downstream compile
// failure deep inside a conformance run.
type Builder struct {
	sb     strings.Builder
	indent int
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Struct emits a struct declaration; each field is one "type name"
// line, e.g. "u32 width".
func (b *Builder) Struct(name string, fields ...string) {
	b.Line("struct %s {", name)
	b.indent++
	for _, f := range fields {
		b.Line("%s;", f)
	}
	b.indent--
	b.Line("};")
	b.Line("")
}

// Global emits a global variable declaration, e.g. "u32 tab[4096]".
func (b *Builder) Global(decl string) {
	b.Line("%s;", decl)
	b.Line("")
}

// Func emits a function with the given signature, e.g.
// "u32 read_hdr(Img* im)"; body emits the statements.
func (b *Builder) Func(sig string, body func()) {
	b.Line("%s {", sig)
	b.indent++
	body()
	b.indent--
	b.Line("}")
	b.Line("")
}

// Block emits a braced statement, e.g. Block("if (w > 100)", ...) or
// Block("while (y < h)", ...).
func (b *Builder) Block(head string, body func()) {
	b.Line("%s {", head)
	b.indent++
	body()
	b.indent--
	b.Line("}")
}

// Line emits one formatted line at the current indentation.
func (b *Builder) Line(format string, args ...any) {
	if format != "" {
		for i := 0; i < b.indent; i++ {
			b.sb.WriteByte('\t')
		}
		fmt.Fprintf(&b.sb, format, args...)
	}
	b.sb.WriteByte('\n')
}

// Source returns the program text assembled so far.
func (b *Builder) Source() string { return b.sb.String() }

// Validate parses and type-checks the assembled program, returning
// the front end's error for malformed output.
func (b *Builder) Validate() error {
	f, err := Parse(b.Source())
	if err != nil {
		return err
	}
	_, err = Check(f)
	return err
}
