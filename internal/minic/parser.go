package minic

import (
	"fmt"
)

// Parser builds an AST from MiniC source.
type Parser struct {
	lex     *Lexer
	buf     []Token // lookahead buffer
	structs map[string]bool
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src), structs: map[string]bool{}}
	return p.file()
}

func (p *Parser) peekN(n int) Token {
	for len(p.buf) <= n {
		t, err := p.lex.Next()
		if err != nil {
			panic(parseError{err})
		}
		p.buf = append(p.buf, t)
	}
	return p.buf[n]
}

func (p *Parser) peek() Token { return p.peekN(0) }

func (p *Parser) next() Token {
	t := p.peekN(0)
	p.buf = p.buf[1:]
	return t
}

type parseError struct{ err error }

func (p *Parser) errf(line int, format string, args ...interface{}) {
	panic(parseError{fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))})
}

func (p *Parser) expect(k TokKind) Token {
	t := p.next()
	if t.Kind != k {
		p.errf(t.Line, "expected %s, found %s", k, t)
	}
	return t
}

func (p *Parser) expectKeyword(kw string) Token {
	t := p.next()
	if t.Kind != TKeyword || t.Text != kw {
		p.errf(t.Line, "expected %q, found %s", kw, t)
	}
	return t
}

func (p *Parser) file() (f *File, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseError); ok {
				f, err = nil, pe.err
				return
			}
			panic(r)
		}
	}()
	f = &File{}
	for p.peek().Kind != TEOF {
		t := p.peek()
		if t.Kind == TKeyword && t.Text == "struct" && p.peekN(2).Kind == TLBrace {
			f.Structs = append(f.Structs, p.structDecl())
			continue
		}
		// Global variable or function: Type Ident ...
		typ := p.typeExpr()
		name := p.expect(TIdent)
		if p.peek().Kind == TLParen {
			f.Funcs = append(f.Funcs, p.funcDecl(typ, name))
		} else {
			f.Globals = append(f.Globals, p.globalVar(typ, name))
		}
	}
	return f, nil
}

func (p *Parser) structDecl() *StructDecl {
	kw := p.expectKeyword("struct")
	name := p.expect(TIdent)
	p.structs[name.Text] = true
	d := &StructDecl{Line: kw.Line, Name: name.Text}
	p.expect(TLBrace)
	for p.peek().Kind != TRBrace {
		ft := p.typeExpr()
		fn := p.expect(TIdent)
		if p.peek().Kind == TLBrack {
			p.next()
			n := p.expect(TNum)
			p.expect(TRBrack)
			ft.ArrayN = int64(n.Val)
		}
		p.expect(TSemi)
		d.Fields = append(d.Fields, &FieldDecl{Line: fn.Line, Name: fn.Text, Type: ft})
	}
	p.expect(TRBrace)
	p.expect(TSemi)
	return d
}

// typeExpr parses a base type followed by pointer stars.
func (p *Parser) typeExpr() *TypeExpr {
	t := p.next()
	var name string
	switch {
	case t.Kind == TKeyword && (namedIntTypes[t.Text] != nil || t.Text == "void"):
		name = t.Text
	case t.Kind == TKeyword && t.Text == "struct":
		// allow optional "struct Name" spelling
		n := p.expect(TIdent)
		name = n.Text
	case t.Kind == TIdent:
		name = t.Text
	default:
		p.errf(t.Line, "expected a type, found %s", t)
	}
	te := &TypeExpr{Line: t.Line, Name: name, ArrayN: -1}
	for p.peek().Kind == TStar {
		p.next()
		te.Stars++
	}
	return te
}

// startsType reports whether the token at offset i begins a type.
func (p *Parser) startsType(i int) bool {
	t := p.peekN(i)
	if t.Kind == TKeyword && (namedIntTypes[t.Text] != nil || t.Text == "void" || t.Text == "struct") {
		return true
	}
	return t.Kind == TIdent && p.structs[t.Text]
}

func (p *Parser) globalVar(typ *TypeExpr, name Token) *VarDecl {
	d := &VarDecl{Line: name.Line, Name: name.Text, Type: typ}
	if p.peek().Kind == TLBrack {
		p.next()
		n := p.expect(TNum)
		p.expect(TRBrack)
		typ.ArrayN = int64(n.Val)
	}
	if p.peek().Kind == TAssign {
		p.next()
		d.Init = p.expr()
	}
	p.expect(TSemi)
	return d
}

func (p *Parser) funcDecl(ret *TypeExpr, name Token) *FuncDecl {
	d := &FuncDecl{Line: name.Line, Name: name.Text, Ret: ret}
	p.expect(TLParen)
	if p.peek().Kind != TRParen {
		for {
			pt := p.typeExpr()
			pn := p.expect(TIdent)
			d.Params = append(d.Params, &FieldDecl{Line: pn.Line, Name: pn.Text, Type: pt})
			if p.peek().Kind != TComma {
				break
			}
			p.next()
		}
	}
	p.expect(TRParen)
	d.Body = p.block()
	return d
}

func (p *Parser) block() *Block {
	lb := p.expect(TLBrace)
	b := &Block{Line: lb.Line}
	for p.peek().Kind != TRBrace {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(TRBrace)
	return b
}

func (p *Parser) stmt() Stmt {
	t := p.peek()
	switch {
	case t.Kind == TLBrace:
		return p.block()
	case t.Kind == TKeyword && t.Text == "if":
		return p.ifStmt()
	case t.Kind == TKeyword && t.Text == "while":
		return p.whileStmt()
	case t.Kind == TKeyword && t.Text == "return":
		p.next()
		s := &ReturnStmt{Line: t.Line}
		if p.peek().Kind != TSemi {
			s.E = p.expr()
		}
		p.expect(TSemi)
		return s
	case t.Kind == TKeyword && t.Text == "break":
		p.next()
		p.expect(TSemi)
		return &BreakStmt{Line: t.Line}
	case t.Kind == TKeyword && t.Text == "continue":
		p.next()
		p.expect(TSemi)
		return &ContinueStmt{Line: t.Line}
	case p.isDeclStart():
		return p.declStmt()
	}
	// Expression or assignment statement.
	e := p.expr()
	if p.peek().Kind == TAssign {
		eq := p.next()
		rhs := p.expr()
		p.expect(TSemi)
		return &AssignStmt{Line: eq.Line, LHS: e, RHS: rhs}
	}
	p.expect(TSemi)
	return &ExprStmt{Line: t.Line, E: e}
}

// isDeclStart distinguishes declarations from expression statements:
// a type keyword, or a known struct name followed by '*' or an
// identifier, starts a declaration.
func (p *Parser) isDeclStart() bool {
	t := p.peek()
	if t.Kind == TKeyword && (namedIntTypes[t.Text] != nil || t.Text == "struct" || t.Text == "void") {
		return true
	}
	if t.Kind == TIdent && p.structs[t.Text] {
		n := p.peekN(1)
		return n.Kind == TStar || n.Kind == TIdent
	}
	return false
}

func (p *Parser) declStmt() Stmt {
	typ := p.typeExpr()
	name := p.expect(TIdent)
	d := &VarDecl{Line: name.Line, Name: name.Text, Type: typ}
	if p.peek().Kind == TLBrack {
		p.next()
		n := p.expect(TNum)
		p.expect(TRBrack)
		typ.ArrayN = int64(n.Val)
	}
	if p.peek().Kind == TAssign {
		p.next()
		d.Init = p.expr()
	}
	p.expect(TSemi)
	return &DeclStmt{Decl: d}
}

func (p *Parser) ifStmt() Stmt {
	kw := p.expectKeyword("if")
	p.expect(TLParen)
	cond := p.expr()
	p.expect(TRParen)
	s := &IfStmt{Line: kw.Line, Cond: cond, Then: p.block()}
	if t := p.peek(); t.Kind == TKeyword && t.Text == "else" {
		p.next()
		if n := p.peek(); n.Kind == TKeyword && n.Text == "if" {
			s.Else = p.ifStmt()
		} else {
			s.Else = p.block()
		}
	}
	return s
}

func (p *Parser) whileStmt() Stmt {
	kw := p.expectKeyword("while")
	p.expect(TLParen)
	cond := p.expr()
	p.expect(TRParen)
	return &WhileStmt{Line: kw.Line, Cond: cond, Body: p.block()}
}

// Operator precedence (higher binds tighter).
func precOf(k TokKind) int {
	switch k {
	case TOrOr:
		return 1
	case TAndAnd:
		return 2
	case TPipe:
		return 3
	case TCaret:
		return 4
	case TAmp:
		return 5
	case TEq, TNe:
		return 6
	case TLt, TLe, TGt, TGe:
		return 7
	case TShl, TShr:
		return 8
	case TPlus, TMinus:
		return 9
	case TStar, TSlash, TPercent:
		return 10
	}
	return 0
}

func (p *Parser) expr() Expr { return p.binExpr(1) }

func (p *Parser) binExpr(minPrec int) Expr {
	lhs := p.unary()
	for {
		t := p.peek()
		prec := precOf(t.Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		rhs := p.binExpr(prec + 1)
		lhs = &Binary{Line: t.Line, Op: t.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) unary() Expr {
	t := p.peek()
	switch t.Kind {
	case TMinus, TTilde, TBang, TStar, TAmp:
		p.next()
		return &Unary{Line: t.Line, Op: t.Kind, X: p.unary()}
	case TLParen:
		// Cast: '(' Type ')' unary.
		if p.startsType(1) {
			p.next()
			te := p.typeExpr()
			p.expect(TRParen)
			return &Cast{Line: t.Line, To: te, X: p.unary()}
		}
	}
	return p.postfix()
}

func (p *Parser) postfix() Expr {
	e := p.primary()
	for {
		t := p.peek()
		switch t.Kind {
		case TLBrack:
			p.next()
			idx := p.expr()
			p.expect(TRBrack)
			e = &Index{Line: t.Line, X: e, I: idx}
		case TDot:
			p.next()
			n := p.expect(TIdent)
			e = &Member{Line: t.Line, X: e, Name: n.Text}
		case TArrow:
			p.next()
			n := p.expect(TIdent)
			e = &Member{Line: t.Line, X: e, Name: n.Text, Arrow: true}
		default:
			return e
		}
	}
}

func (p *Parser) primary() Expr {
	t := p.next()
	switch t.Kind {
	case TNum:
		return &NumLit{Line: t.Line, Val: t.Val}
	case TKeyword:
		if t.Text == "sizeof" {
			p.expect(TLParen)
			te := p.typeExpr()
			p.expect(TRParen)
			return &SizeOf{Line: t.Line, Of: te}
		}
	case TIdent:
		if p.peek().Kind == TLParen {
			p.next()
			c := &Call{Line: t.Line, Name: t.Text}
			if p.peek().Kind != TRParen {
				for {
					c.Args = append(c.Args, p.expr())
					if p.peek().Kind != TComma {
						break
					}
					p.next()
				}
			}
			p.expect(TRParen)
			return c
		}
		return &Ident{Line: t.Line, Name: t.Text}
	case TLParen:
		e := p.expr()
		p.expect(TRParen)
		return e
	}
	p.errf(t.Line, "unexpected %s in expression", t)
	return nil
}
