package minic

// The AST. The parser produces syntactic nodes; the checker annotates
// expressions with types, resolves identifiers to symbols, and inserts
// explicit Cast nodes for every implicit conversion so that code
// generation never re-derives conversion rules.

// Node is implemented by all AST nodes.
type Node interface{ Pos() int }

// TypeExpr is a syntactic type reference resolved by the checker.
type TypeExpr struct {
	Line   int
	Name   string // "u32", "void", or a struct name
	Stars  int    // pointer depth
	ArrayN int64  // -1 if not an array
}

// Pos implements Node.
func (t *TypeExpr) Pos() int { return t.Line }

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	Line   int
	Name   string
	Fields []*FieldDecl
}

// Pos implements Node.
func (d *StructDecl) Pos() int { return d.Line }

// FieldDecl is one struct field or function parameter.
type FieldDecl struct {
	Line int
	Name string
	Type *TypeExpr
}

// Pos implements Node.
func (d *FieldDecl) Pos() int { return d.Line }

// VarDecl declares a global or local variable.
type VarDecl struct {
	Line int
	Name string
	Type *TypeExpr
	Init Expr // nil if none

	Sym *Symbol // filled by the checker
}

// Pos implements Node.
func (d *VarDecl) Pos() int { return d.Line }

// FuncDecl declares a function.
type FuncDecl struct {
	Line   int
	Name   string
	Ret    *TypeExpr
	Params []*FieldDecl
	Body   *Block

	RetType   Type      // filled by the checker
	ParamSyms []*Symbol // filled by the checker
	Locals    []*Symbol // all locals incl. params, in declaration order
}

// Pos implements Node.
func (d *FuncDecl) Pos() int { return d.Line }

// SymKind classifies symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymFunc
)

// Symbol is a resolved named entity.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	Line int

	// Filled by the compiler back end.
	Off     int32 // frame offset (locals/params) or globals offset
	FnIndex int32 // SymFunc: function index

	// Global initializer value (integers only).
	InitVal uint64
	HasInit bool
}

// Stmt is a statement node.
type Stmt interface{ Node }

// Block is a brace-delimited statement list.
type Block struct {
	Line  int
	Stmts []Stmt
}

// Pos implements Node.
func (s *Block) Pos() int { return s.Line }

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// Pos implements Node.
func (s *DeclStmt) Pos() int { return s.Decl.Line }

// AssignStmt assigns RHS to the lvalue LHS.
type AssignStmt struct {
	Line int
	LHS  Expr
	RHS  Expr
}

// Pos implements Node.
func (s *AssignStmt) Pos() int { return s.Line }

// IfStmt is if/else.
type IfStmt struct {
	Line int
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
}

// Pos implements Node.
func (s *IfStmt) Pos() int { return s.Line }

// WhileStmt is a while loop.
type WhileStmt struct {
	Line int
	Cond Expr
	Body *Block
}

// Pos implements Node.
func (s *WhileStmt) Pos() int { return s.Line }

// BreakStmt exits the innermost enclosing loop.
type BreakStmt struct{ Line int }

// Pos implements Node.
func (s *BreakStmt) Pos() int { return s.Line }

// ContinueStmt jumps to the next iteration of the enclosing loop.
type ContinueStmt struct{ Line int }

// Pos implements Node.
func (s *ContinueStmt) Pos() int { return s.Line }

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Line int
	E    Expr // nil for void
}

// Pos implements Node.
func (s *ReturnStmt) Pos() int { return s.Line }

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	Line int
	E    Expr
}

// Pos implements Node.
func (s *ExprStmt) Pos() int { return s.Line }

// Expr is an expression node. Type() is valid after checking.
type Expr interface {
	Node
	Type() Type
}

type typed struct{ T Type }

// Type returns the checked type of the expression.
func (t *typed) Type() Type { return t.T }

// NumLit is an integer literal.
type NumLit struct {
	typed
	Line int
	Val  uint64
}

// Pos implements Node.
func (e *NumLit) Pos() int { return e.Line }

// Ident is a variable reference.
type Ident struct {
	typed
	Line int
	Name string
	Sym  *Symbol // filled by the checker
}

// Pos implements Node.
func (e *Ident) Pos() int { return e.Line }

// Unary is a prefix operation: - ~ ! * &.
type Unary struct {
	typed
	Line int
	Op   TokKind
	X    Expr
}

// Pos implements Node.
func (e *Unary) Pos() int { return e.Line }

// Binary is an infix operation.
type Binary struct {
	typed
	Line int
	Op   TokKind
	X, Y Expr
}

// Pos implements Node.
func (e *Binary) Pos() int { return e.Line }

// Call invokes a user function or builtin by name.
type Call struct {
	typed
	Line int
	Name string
	Args []Expr

	Sym     *Symbol // user function, or nil for builtins
	Builtin uint8   // ir.Builtin value when Sym is nil
}

// Pos implements Node.
func (e *Call) Pos() int { return e.Line }

// Index is x[i] over a pointer or array.
type Index struct {
	typed
	Line int
	X    Expr
	I    Expr
}

// Pos implements Node.
func (e *Index) Pos() int { return e.Line }

// Member is x.f or x->f.
type Member struct {
	typed
	Line  int
	X     Expr
	Name  string
	Arrow bool

	Field *StructField // filled by the checker
}

// Pos implements Node.
func (e *Member) Pos() int { return e.Line }

// Cast converts X to the target type. Explicit casts come from source;
// the checker also inserts implicit casts (Implicit = true).
type Cast struct {
	typed
	Line     int
	To       *TypeExpr // nil for checker-inserted casts
	X        Expr
	Implicit bool
}

// Pos implements Node.
func (e *Cast) Pos() int { return e.Line }

// SizeOf is sizeof(type); it folds to a u32 constant (32-bit model).
type SizeOf struct {
	typed
	Line int
	Of   *TypeExpr

	Size uint64 // filled by the checker
}

// Pos implements Node.
func (e *SizeOf) Pos() int { return e.Line }
