// Package compile lowers checked MiniC programs to MVX bytecode,
// laying out stack frames and the globals region, and emitting the
// debug tables (variables, types, line numbers) that Code Phage's
// recipient-side data structure traversal consumes.
package compile

import (
	"fmt"

	"codephage/internal/ir"
	"codephage/internal/minic"
)

// globalGap is the redzone between globals so that out-of-bounds
// accesses to one static buffer cannot silently land in the next.
const globalGap = 16

// Compile lowers a checked program into an executable module.
func Compile(name string, prog *minic.Program) (*ir.Module, error) {
	c := &compiler{
		prog:  prog,
		mod:   &ir.Module{Name: name},
		types: map[string]int32{},
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	if err := c.mod.Validate(); err != nil {
		return nil, fmt.Errorf("compile: internal error: %w", err)
	}
	return c.mod, nil
}

// CompileSource parses, checks and compiles MiniC source in one step.
func CompileSource(name, src string) (*ir.Module, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	prog, err := minic.Check(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return Compile(name, prog)
}

type compiler struct {
	prog  *minic.Program
	mod   *ir.Module
	types map[string]int32 // type key -> debug type index
}

func (c *compiler) run() error {
	c.layoutGlobals()
	entry := int32(-1)
	for i, fd := range c.prog.Funcs {
		fc := &funcCompiler{c: c, decl: fd}
		f, err := fc.compile()
		if err != nil {
			return err
		}
		c.mod.Funcs = append(c.mod.Funcs, f)
		if fd.Name == "main" {
			entry = int32(i)
		}
	}
	if entry < 0 {
		return fmt.Errorf("compile: %s: no main function", c.mod.Name)
	}
	c.mod.Entry = entry
	return nil
}

func (c *compiler) layoutGlobals() {
	var off int32
	for _, g := range c.prog.Globals {
		a := g.Type.Align()
		off = roundUp(off, a)
		g.Off = off
		size := g.Type.Size()
		c.mod.GlobalBlocks = append(c.mod.GlobalBlocks, ir.GlobalBlock{Off: off, Size: size})
		c.mod.GlobalVars = append(c.mod.GlobalVars, ir.VarInfo{
			Name: g.Name, Type: c.typeIndex(g.Type), Off: off,
		})
		off += size + globalGap
	}
	c.mod.Globals = make([]byte, off)
	for _, g := range c.prog.Globals {
		if !g.HasInit {
			continue
		}
		it, _ := minic.IsInt(g.Type)
		writeLE(c.mod.Globals[g.Off:], g.InitVal, int(it.Bits)/8)
	}
}

func writeLE(dst []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func roundUp(v, a int32) int32 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}

// typeIndex interns a semantic type into the debug type table.
func (c *compiler) typeIndex(t minic.Type) int32 {
	key := typeKeyOf(t)
	if idx, ok := c.types[key]; ok {
		return idx
	}
	// Reserve the slot first so recursive struct pointers terminate.
	idx := int32(len(c.mod.Types))
	c.mod.Types = append(c.mod.Types, ir.TypeInfo{})
	c.types[key] = idx

	var info ir.TypeInfo
	switch tt := t.(type) {
	case *minic.VoidType:
		info = ir.TypeInfo{Kind: ir.KVoid}
	case *minic.IntType:
		info = ir.TypeInfo{
			Kind: ir.KInt, Size: tt.Size(),
			Signed: tt.Signed, W: ir.Width(tt.Bits), Name: tt.String(),
		}
	case *minic.PtrType:
		info = ir.TypeInfo{Kind: ir.KPtr, Size: 8, Elem: c.typeIndex(tt.Elem)}
	case *minic.ArrayType:
		info = ir.TypeInfo{
			Kind: ir.KArray, Size: tt.Size(),
			Elem: c.typeIndex(tt.Elem), Count: tt.N,
		}
	case *minic.StructType:
		info = ir.TypeInfo{Kind: ir.KStruct, Name: tt.Name, Size: tt.Size()}
		for _, f := range tt.Fields {
			info.Fields = append(info.Fields, ir.FieldInfo{
				Name: f.Name, Type: c.typeIndex(f.Type), Off: f.Off,
			})
		}
	default:
		panic(fmt.Sprintf("compile: unknown type %T", t))
	}
	c.mod.Types[idx] = info
	return idx
}

func typeKeyOf(t minic.Type) string { return t.String() }

// widthOf returns the MVX width of a scalar type (pointers are 64-bit).
func widthOf(t minic.Type) ir.Width {
	switch tt := t.(type) {
	case *minic.IntType:
		return ir.Width(tt.Bits)
	case *minic.PtrType:
		return ir.W64
	}
	panic(fmt.Sprintf("compile: no scalar width for %s", t))
}
