package compile

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"codephage/internal/ir"
)

// CacheStats counts cache activity.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Entries is the cache size at snapshot time. Unlike the other
	// fields it is a gauge, not a counter: interval arithmetic (as in
	// pipeline.BatchStats) should ignore it.
	Entries int64
}

// cacheEntry is one memoised compilation outcome. Failed compiles are
// cached too: the validator probes many candidate patches against the
// same source and repeats rejected candidates across rounds.
type cacheEntry struct {
	key [sha256.Size]byte
	mod *ir.Module
	err error
}

// Cache is a content-keyed module cache: the key is the hash of the
// module name and full source text, so recompiles of unchanged source
// are free. Returned modules are shared between callers and MUST be
// treated as immutable; clone before mutating (see apps.Build).
//
// The cache holds at most max entries and evicts least-recently-used
// first, so a long-running phaged with a growing donor corpus keeps
// its hot recipients and donors resident while one-off candidate
// patches age out. The cache is safe for concurrent use.
type Cache struct {
	max int

	mu      sync.Mutex
	entries map[[sha256.Size]byte]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
	stats   CacheStats
}

// defaultCacheMax bounds the default cache. Modules here are small
// (tens of KB); 4096 entries comfortably covers a full Figure-8 batch
// with every candidate patch ever compiled.
const defaultCacheMax = 4096

// NewCache returns an empty cache holding at most max entries
// (max <= 0 selects the default bound).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = defaultCacheMax
	}
	return &Cache{
		max:     max,
		entries: map[[sha256.Size]byte]*list.Element{},
		lru:     list.New(),
	}
}

var defaultCache = NewCache(0)

// Default returns the process-wide shared cache.
func Default() *Cache { return defaultCache }

// Cached compiles through the process-wide shared cache.
func Cached(name, src string) (*ir.Module, error) {
	return defaultCache.Compile(name, src)
}

func cacheKey(name, src string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// Compile returns the module for the named source, compiling at most
// once per distinct (name, source) content. The result is shared:
// callers must not mutate it.
func (c *Cache) Compile(name, src string) (*ir.Module, error) {
	mod, _, err := c.CompileHit(name, src)
	return mod, err
}

// CompileHit is Compile plus per-call cache attribution: hit reports
// whether the result was served from the cache without compiling on
// this call. The trace layer records it on compile spans; it is
// volatile (warm caches flip it), so it must never influence canonical
// outputs.
func (c *Cache) CompileHit(name, src string) (mod *ir.Module, hit bool, err error) {
	key := cacheKey(name, src)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return e.mod, true, e.err
	}
	c.stats.Misses++
	c.mu.Unlock()

	mod, err = CompileSource(name, src)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent compile won the race; keep the first entry so
		// every caller observes one canonical module pointer.
		e := el.Value.(*cacheEntry)
		return e.mod, false, e.err
	}
	for len(c.entries) >= c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, mod: mod, err: err})
	return mod, false, err
}

// Stats returns a snapshot of the cache counters, with Entries set to
// the current cache size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = int64(len(c.entries))
	return st
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
