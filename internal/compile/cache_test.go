package compile

import (
	"fmt"
	"sync"
	"testing"
)

const cacheTestSrc = `void main() { out((u64)in_u8()); exit(0); }`

func TestCacheHitsOnIdenticalContent(t *testing.T) {
	c := NewCache(0)
	m1, err := c.Compile("app", cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Compile("app", cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("identical content did not return the canonical module pointer")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}
}

func TestCacheKeyIncludesNameAndSource(t *testing.T) {
	c := NewCache(0)
	a, _ := c.Compile("a", cacheTestSrc)
	b, _ := c.Compile("b", cacheTestSrc)
	if a == b {
		t.Error("different module names shared one cache entry")
	}
	c2, _ := c.Compile("a", cacheTestSrc+"\n")
	if a == c2 {
		t.Error("different source shared one cache entry")
	}
	if got := c.Stats().Misses; got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
}

func TestCacheCachesFailures(t *testing.T) {
	c := NewCache(0)
	if _, err := c.Compile("bad", "void main( {"); err == nil {
		t.Fatal("bad source compiled")
	}
	if _, err := c.Compile("bad", "void main( {"); err == nil {
		t.Fatal("bad source compiled on second try")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("failure not cached: %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 20; i++ {
		src := fmt.Sprintf("void main() { out((u64)%d); exit(0); }", i)
		if _, err := c.Compile("app", src); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 8 {
		t.Errorf("cache grew to %d entries, bound is 8", c.Len())
	}
	if got := c.Stats().Evictions; got != 12 {
		t.Errorf("evictions = %d, want 12 (one per insert past the bound)", got)
	}
}

// TestCacheEvictionIsLRU: a recently touched entry must survive the
// eviction that reclaims space for a new one; the least recently used
// entry goes instead.
func TestCacheEvictionIsLRU(t *testing.T) {
	srcFor := func(i int) string {
		return fmt.Sprintf("void main() { out((u64)%d); exit(0); }", i)
	}
	c := NewCache(4)
	var canonical [4]interface{}
	for i := 0; i < 4; i++ {
		m, err := c.Compile("app", srcFor(i))
		if err != nil {
			t.Fatal(err)
		}
		canonical[i] = m
	}
	// Touch entry 0: it becomes most recently used; entry 1 is now LRU.
	if _, err := c.Compile("app", srcFor(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile("app", srcFor(4)); err != nil { // evicts 1
		t.Fatal(err)
	}
	hitsBefore := c.Stats().Hits
	m0, err := c.Compile("app", srcFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if m0 != canonical[0] {
		t.Error("recently used entry was evicted (lost its canonical pointer)")
	}
	if c.Stats().Hits != hitsBefore+1 {
		t.Error("recently used entry missed the cache after unrelated eviction")
	}
	m1, err := c.Compile("app", srcFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if m1 == canonical[1] {
		t.Error("least recently used entry survived eviction")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(0)
	var wg sync.WaitGroup
	mods := make([]interface{}, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := c.Compile("app", cacheTestSrc)
			if err != nil {
				panic(err)
			}
			mods[g] = m
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if mods[g] != mods[0] {
			t.Fatal("concurrent compiles observed different canonical modules")
		}
	}
}
