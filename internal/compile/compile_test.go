package compile

import (
	"strings"
	"testing"

	"codephage/internal/ir"
)

func mustCompile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := CompileSource("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileRequiresMain(t *testing.T) {
	_, err := CompileSource("t", `void f() { }`)
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("err = %v, want missing main", err)
	}
}

func TestDebugInfoEmission(t *testing.T) {
	m := mustCompile(t, `
struct Img { u32 w; u32 h; u8* data; };
u32 counter = 7;
u8 table[16];
u32 f(Img* im, u32 x) {
	u32 local = x + 1;
	return local + im->w;
}
void main() { Img i; i.w = 1; out((u64)f(&i, 2)); }
`)
	// Globals with types and offsets.
	if len(m.GlobalVars) != 2 {
		t.Fatalf("globals = %d, want 2", len(m.GlobalVars))
	}
	if m.GlobalVars[0].Name != "counter" {
		t.Errorf("global 0 = %q", m.GlobalVars[0].Name)
	}
	// counter initialized to 7 (little-endian) in the globals image.
	if m.Globals[m.GlobalVars[0].Off] != 7 {
		t.Error("global initializer not written")
	}
	// Global blocks carry bounds for memcheck.
	if len(m.GlobalBlocks) != 2 || m.GlobalBlocks[1].Size != 16 {
		t.Errorf("global blocks = %+v", m.GlobalBlocks)
	}

	f, _ := m.FuncByName("f")
	if f == nil {
		t.Fatal("function f missing")
	}
	// Vars: im, x (params) + local.
	if len(f.Vars) != 3 {
		t.Fatalf("f vars = %d, want 3", len(f.Vars))
	}
	byName := map[string]ir.VarInfo{}
	for _, v := range f.Vars {
		byName[v.Name] = v
	}
	if byName["local"].Line == 0 {
		t.Error("local has no declaration line")
	}
	// The type table must contain the struct with its fields.
	foundStruct := false
	for _, ti := range m.Types {
		if ti.Kind == ir.KStruct && ti.Name == "Img" {
			foundStruct = true
			if len(ti.Fields) != 3 || ti.Fields[2].Name != "data" || ti.Fields[2].Off != 8 {
				t.Errorf("Img fields = %+v", ti.Fields)
			}
			if ti.Size != 16 {
				t.Errorf("Img size = %d", ti.Size)
			}
		}
	}
	if !foundStruct {
		t.Error("struct Img missing from debug type table")
	}
}

func TestTypeTableInterning(t *testing.T) {
	m := mustCompile(t, `
u32 a;
u32 b;
u32* p;
u32* q;
void main() { }
`)
	// u32 and u32* must each appear once.
	count := map[string]int{}
	for _, ti := range m.Types {
		switch {
		case ti.Kind == ir.KInt && ti.W == ir.W32 && !ti.Signed:
			count["u32"]++
		case ti.Kind == ir.KPtr:
			count["ptr"]++
		}
	}
	if count["u32"] != 1 || count["ptr"] != 1 {
		t.Errorf("type table not interned: %v", count)
	}
}

func TestRecursiveStructPointerType(t *testing.T) {
	m := mustCompile(t, `
struct Node { u32 val; Node* next; };
void main() {
	Node n;
	n.val = 1;
	n.next = &n;
	out((u64)n.next->val);
}
`)
	// The Node type references a pointer whose Elem is Node itself.
	var nodeIdx int32 = -1
	for i, ti := range m.Types {
		if ti.Kind == ir.KStruct && ti.Name == "Node" {
			nodeIdx = int32(i)
		}
	}
	if nodeIdx < 0 {
		t.Fatal("Node type missing")
	}
	next := m.Types[nodeIdx].Fields[1]
	if m.Types[next.Type].Kind != ir.KPtr || m.Types[m.Types[next.Type].Elem].Name != "Node" {
		t.Error("recursive pointer type not closed")
	}
}

func TestLineTable(t *testing.T) {
	m := mustCompile(t, `void main() {
	u32 a = 1;
	u32 b = 2;
	out((u64)(a + b));
}
`)
	f := m.Funcs[m.Entry]
	seen := map[int32]bool{}
	for _, in := range f.Code {
		seen[in.Line] = true
	}
	for _, want := range []int32{2, 3, 4} {
		if !seen[want] {
			t.Errorf("line %d missing from line table", want)
		}
	}
}

func TestGlobalRedzones(t *testing.T) {
	m := mustCompile(t, `
u8 a[4];
u8 b[4];
void main() { }
`)
	if len(m.GlobalBlocks) != 2 {
		t.Fatal("want 2 global blocks")
	}
	gap := m.GlobalBlocks[1].Off - (m.GlobalBlocks[0].Off + m.GlobalBlocks[0].Size)
	if gap < globalGap {
		t.Errorf("redzone gap = %d, want >= %d", gap, globalGap)
	}
}

func TestFrameLayoutAlignment(t *testing.T) {
	m := mustCompile(t, `
void f(u8 a, u64 b, u16 c) {
	out((u64)a + b + (u64)c);
}
void main() { f(1, 2, 3); }
`)
	f, _ := m.FuncByName("f")
	if f.Params[1].Off%8 != 0 {
		t.Errorf("u64 param at offset %d, want 8-aligned", f.Params[1].Off)
	}
	if f.FrameSize%8 != 0 {
		t.Errorf("frame size %d not 8-aligned", f.FrameSize)
	}
}
