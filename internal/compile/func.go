package compile

import (
	"fmt"

	"codephage/internal/ir"
	"codephage/internal/minic"
)

type funcCompiler struct {
	c    *compiler
	decl *minic.FuncDecl
	f    *ir.Function
	line int32
	// Loop context for break/continue: continue jumps to the loop
	// head, break targets are backpatched at loop end.
	loopHeads  []int32
	loopBreaks [][]int32
}

func (fc *funcCompiler) compile() (*ir.Function, error) {
	d := fc.decl
	fc.f = &ir.Function{Name: d.Name}
	if _, isVoid := d.RetType.(*minic.VoidType); !isVoid {
		fc.f.RetW = widthOf(d.RetType)
	}

	// Frame layout: params first, then locals, all naturally aligned.
	var off int32
	place := func(sym *minic.Symbol) {
		a := sym.Type.Align()
		off = roundUp(off, a)
		sym.Off = off
		off += sym.Type.Size()
	}
	for _, p := range d.ParamSyms {
		place(p)
		fc.f.Params = append(fc.f.Params, ir.Param{Off: p.Off, W: widthOf(p.Type)})
	}
	for _, l := range d.Locals {
		if l.Kind == minic.SymParam {
			continue
		}
		place(l)
	}
	fc.f.FrameSize = roundUp(off, 8)

	// Debug variable table.
	for _, l := range d.Locals {
		fc.f.Vars = append(fc.f.Vars, ir.VarInfo{
			Name: l.Name, Type: fc.c.typeIndex(l.Type), Off: l.Off,
			Line: int32(l.Line),
		})
	}

	fc.genBlock(d.Body)
	// Implicit return at the end (void functions may fall off the end;
	// value-returning functions return 0, as C permits for main).
	zero := fc.newReg()
	fc.emit(ir.Instr{Op: ir.ConstOp, W: ir.W64, Dst: zero, Imm: 0})
	fc.emit(ir.Instr{Op: ir.Ret, A: zero})
	if fc.f.NumRegs == 0 {
		fc.f.NumRegs = 1
	}
	return fc.f, nil
}

func (fc *funcCompiler) newReg() ir.Reg {
	r := ir.Reg(fc.f.NumRegs)
	fc.f.NumRegs++
	return r
}

func (fc *funcCompiler) emit(in ir.Instr) int32 {
	in.Line = fc.line
	fc.f.Code = append(fc.f.Code, in)
	return int32(len(fc.f.Code) - 1)
}

func (fc *funcCompiler) here() int32 { return int32(len(fc.f.Code)) }

func (fc *funcCompiler) setLine(line int) {
	if line > 0 {
		fc.line = int32(line)
	}
}

func (fc *funcCompiler) constReg(w ir.Width, v uint64) ir.Reg {
	r := fc.newReg()
	fc.emit(ir.Instr{Op: ir.ConstOp, W: w, Dst: r, Imm: v & w.Mask()})
	return r
}

func (fc *funcCompiler) genBlock(b *minic.Block) {
	for _, s := range b.Stmts {
		fc.genStmt(s)
	}
}

func (fc *funcCompiler) genStmt(s minic.Stmt) {
	fc.setLine(s.Pos())
	switch st := s.(type) {
	case *minic.Block:
		fc.genBlock(st)
	case *minic.DeclStmt:
		if st.Decl.Init != nil {
			val := fc.genExpr(st.Decl.Init)
			addr := fc.newReg()
			fc.emit(ir.Instr{Op: ir.FrameAddr, Dst: addr, Imm: uint64(st.Decl.Sym.Off)})
			fc.emit(ir.Instr{Op: ir.Store, W: widthOf(st.Decl.Sym.Type), A: addr, B: val})
		}
	case *minic.AssignStmt:
		addr := fc.genAddr(st.LHS)
		val := fc.genExpr(st.RHS)
		fc.emit(ir.Instr{Op: ir.Store, W: widthOf(st.LHS.Type()), A: addr, B: val})
	case *minic.IfStmt:
		cond := fc.genCond(st.Cond)
		br := fc.emit(ir.Instr{Op: ir.Br, A: cond})
		fc.f.Code[br].Target = fc.here()
		fc.genBlock(st.Then)
		if st.Else == nil {
			fc.f.Code[br].Target2 = fc.here()
			return
		}
		jend := fc.emit(ir.Instr{Op: ir.Jmp})
		fc.f.Code[br].Target2 = fc.here()
		fc.genStmt(st.Else)
		fc.f.Code[jend].Target = fc.here()
	case *minic.WhileStmt:
		top := fc.here()
		cond := fc.genCond(st.Cond)
		br := fc.emit(ir.Instr{Op: ir.Br, A: cond})
		fc.f.Code[br].Target = fc.here()
		fc.loopHeads = append(fc.loopHeads, top)
		fc.loopBreaks = append(fc.loopBreaks, nil)
		fc.genBlock(st.Body)
		fc.emit(ir.Instr{Op: ir.Jmp, Target: top})
		end := fc.here()
		fc.f.Code[br].Target2 = end
		for _, b := range fc.loopBreaks[len(fc.loopBreaks)-1] {
			fc.f.Code[b].Target = end
		}
		fc.loopHeads = fc.loopHeads[:len(fc.loopHeads)-1]
		fc.loopBreaks = fc.loopBreaks[:len(fc.loopBreaks)-1]
	case *minic.BreakStmt:
		j := fc.emit(ir.Instr{Op: ir.Jmp})
		fc.loopBreaks[len(fc.loopBreaks)-1] = append(fc.loopBreaks[len(fc.loopBreaks)-1], j)
	case *minic.ContinueStmt:
		fc.emit(ir.Instr{Op: ir.Jmp, Target: fc.loopHeads[len(fc.loopHeads)-1]})
	case *minic.ReturnStmt:
		if st.E == nil {
			zero := fc.constReg(ir.W64, 0)
			fc.emit(ir.Instr{Op: ir.Ret, A: zero})
			return
		}
		v := fc.genExpr(st.E)
		fc.emit(ir.Instr{Op: ir.Ret, A: v})
	case *minic.ExprStmt:
		if st.E != nil {
			fc.genExpr(st.E)
		}
	default:
		panic(fmt.Sprintf("compile: unknown statement %T", s))
	}
}

// genCond evaluates a scalar condition to a register (nonzero = true).
func (fc *funcCompiler) genCond(e minic.Expr) ir.Reg { return fc.genExpr(e) }

// genExpr evaluates an expression for its value.
func (fc *funcCompiler) genExpr(e minic.Expr) ir.Reg {
	fc.setLine(e.Pos())
	switch ee := e.(type) {
	case *minic.NumLit:
		return fc.constReg(widthOf(ee.Type()), ee.Val)
	case *minic.Ident:
		addr := fc.genAddr(ee)
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Load, W: widthOf(ee.Type()), Dst: dst, A: addr})
		return dst
	case *minic.Unary:
		return fc.genUnary(ee)
	case *minic.Binary:
		return fc.genBinary(ee)
	case *minic.Call:
		return fc.genCall(ee)
	case *minic.Index, *minic.Member:
		addr := fc.genAddr(e)
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Load, W: widthOf(e.Type()), Dst: dst, A: addr})
		return dst
	case *minic.Cast:
		return fc.genCast(ee)
	case *minic.SizeOf:
		return fc.constReg(ir.W32, ee.Size)
	}
	panic(fmt.Sprintf("compile: unknown expression %T", e))
}

func (fc *funcCompiler) genUnary(e *minic.Unary) ir.Reg {
	switch e.Op {
	case minic.TMinus:
		x := fc.genExpr(e.X)
		w := widthOf(e.Type())
		zero := fc.constReg(w, 0)
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Sub, W: w, Dst: dst, A: zero, B: x})
		return dst
	case minic.TTilde:
		x := fc.genExpr(e.X)
		w := widthOf(e.Type())
		ones := fc.constReg(w, ^uint64(0))
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Xor, W: w, Dst: dst, A: x, B: ones})
		return dst
	case minic.TBang:
		x := fc.genExpr(e.X)
		w := widthOf(e.X.Type())
		zero := fc.constReg(w, 0)
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Eq, W: w, Dst: dst, A: x, B: zero})
		return dst
	case minic.TStar:
		addr := fc.genExpr(e.X)
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Load, W: widthOf(e.Type()), Dst: dst, A: addr})
		return dst
	case minic.TAmp:
		return fc.genAddr(e.X)
	}
	panic("compile: bad unary op")
}

func (fc *funcCompiler) genBinary(e *minic.Binary) ir.Reg {
	if e.Op == minic.TAndAnd || e.Op == minic.TOrOr {
		return fc.genShortCircuit(e)
	}

	// Pointer arithmetic: scale the integer operand by the element size.
	if pt, isPtr := minic.IsPtr(e.Type()); isPtr && (e.Op == minic.TPlus || e.Op == minic.TMinus) {
		var ptrE, intE minic.Expr
		if _, ok := minic.IsPtr(e.X.Type()); ok {
			ptrE, intE = e.X, e.Y
		} else {
			ptrE, intE = e.Y, e.X
		}
		p := fc.genExpr(ptrE)
		i := fc.genExpr(intE)
		size := fc.constReg(ir.W64, uint64(pt.Elem.Size()))
		scaled := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Mul, W: ir.W64, Dst: scaled, A: i, B: size})
		dst := fc.newReg()
		op := ir.Add
		if e.Op == minic.TMinus {
			op = ir.Sub
		}
		fc.emit(ir.Instr{Op: op, W: ir.W64, Dst: dst, A: p, B: scaled})
		return dst
	}

	x := fc.genExpr(e.X)
	y := fc.genExpr(e.Y)
	dst := fc.newReg()

	// Comparisons operate at the operand width; everything else at the
	// result width.
	signed := false
	var opw ir.Width
	if e.Op == minic.TEq || e.Op == minic.TNe || e.Op == minic.TLt ||
		e.Op == minic.TLe || e.Op == minic.TGt || e.Op == minic.TGe {
		opw = widthOf(e.X.Type())
		if it, ok := minic.IsInt(e.X.Type()); ok {
			signed = it.Signed
		}
	} else {
		opw = widthOf(e.Type())
		if it, ok := minic.IsInt(e.Type()); ok {
			signed = it.Signed
		}
	}

	var op ir.Op
	var swap bool
	switch e.Op {
	case minic.TPlus:
		op = ir.Add
	case minic.TMinus:
		op = ir.Sub
	case minic.TStar:
		op = ir.Mul
	case minic.TSlash:
		op = ir.UDiv
		if signed {
			op = ir.SDiv
		}
	case minic.TPercent:
		op = ir.URem
		if signed {
			op = ir.SRem
		}
	case minic.TAmp:
		op = ir.And
	case minic.TPipe:
		op = ir.Or
	case minic.TCaret:
		op = ir.Xor
	case minic.TShl:
		op = ir.Shl
	case minic.TShr:
		op = ir.LShr
		if signed {
			op = ir.AShr
		}
	case minic.TEq:
		op = ir.Eq
	case minic.TNe:
		op = ir.Ne
	case minic.TLt:
		op = ir.ULt
		if signed {
			op = ir.SLt
		}
	case minic.TLe:
		op = ir.ULe
		if signed {
			op = ir.SLe
		}
	case minic.TGt:
		op, swap = ir.ULt, true
		if signed {
			op = ir.SLt
		}
	case minic.TGe:
		op, swap = ir.ULe, true
		if signed {
			op = ir.SLe
		}
	default:
		panic("compile: bad binary op")
	}
	if swap {
		x, y = y, x
	}
	fc.emit(ir.Instr{Op: op, W: opw, Dst: dst, A: x, B: y})
	return dst
}

// genShortCircuit lowers && and || with branches, producing 0 or 1.
// The intermediate branches are conditional branch sites visible to
// the taint tracker, exactly like compiled C short-circuit code.
func (fc *funcCompiler) genShortCircuit(e *minic.Binary) ir.Reg {
	// Result slot in a register written on both paths via moves.
	dst := fc.newReg()
	x := fc.genExpr(e.X)
	brX := fc.emit(ir.Instr{Op: ir.Br, A: x})

	evalY := func() {
		y := fc.genExpr(e.Y)
		w := widthOf(e.Y.Type())
		zero := fc.constReg(w, 0)
		fc.emit(ir.Instr{Op: ir.Ne, W: w, Dst: dst, A: y, B: zero})
	}

	if e.Op == minic.TAndAnd {
		// x true -> evaluate y; x false -> result 0.
		fc.f.Code[brX].Target = fc.here()
		evalY()
		jend := fc.emit(ir.Instr{Op: ir.Jmp})
		fc.f.Code[brX].Target2 = fc.here()
		fc.emit(ir.Instr{Op: ir.ConstOp, W: ir.W32, Dst: dst, Imm: 0})
		fc.f.Code[jend].Target = fc.here()
	} else {
		// x true -> result 1; x false -> evaluate y.
		fc.f.Code[brX].Target = fc.here()
		fc.emit(ir.Instr{Op: ir.ConstOp, W: ir.W32, Dst: dst, Imm: 1})
		jend := fc.emit(ir.Instr{Op: ir.Jmp})
		fc.f.Code[brX].Target2 = fc.here()
		evalY()
		fc.f.Code[jend].Target = fc.here()
	}
	return dst
}

func (fc *funcCompiler) genCall(e *minic.Call) ir.Reg {
	args := make([]ir.Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = fc.genExpr(a)
	}
	dst := fc.newReg()
	if e.Sym == nil {
		fc.emit(ir.Instr{Op: ir.CallB, Dst: dst, Builtin: ir.Builtin(e.Builtin), Args: args})
	} else {
		fc.emit(ir.Instr{Op: ir.Call, Dst: dst, Fn: e.Sym.FnIndex, Args: args})
	}
	return dst
}

func (fc *funcCompiler) genCast(e *minic.Cast) ir.Reg {
	// Array-to-pointer decay: the value is the array's address.
	if _, isArr := e.X.Type().(*minic.ArrayType); isArr {
		return fc.genAddr(e.X)
	}
	x := fc.genExpr(e.X)
	from := widthOf(e.X.Type())
	to := widthOf(e.Type())
	dst := fc.newReg()
	switch {
	case to == from:
		fc.emit(ir.Instr{Op: ir.Mov, W: to, Dst: dst, A: x})
	case to < from:
		fc.emit(ir.Instr{Op: ir.Trunc, W: to, SrcW: from, Dst: dst, A: x})
	default:
		op := ir.ZExt
		if it, ok := minic.IsInt(e.X.Type()); ok && it.Signed {
			op = ir.SExt
		}
		fc.emit(ir.Instr{Op: op, W: to, SrcW: from, Dst: dst, A: x})
	}
	return dst
}

// genAddr evaluates an lvalue to its address.
func (fc *funcCompiler) genAddr(e minic.Expr) ir.Reg {
	fc.setLine(e.Pos())
	switch ee := e.(type) {
	case *minic.Ident:
		dst := fc.newReg()
		if ee.Sym.Kind == minic.SymGlobal {
			fc.emit(ir.Instr{Op: ir.GlobalAddr, Dst: dst, Imm: uint64(ee.Sym.Off)})
		} else {
			fc.emit(ir.Instr{Op: ir.FrameAddr, Dst: dst, Imm: uint64(ee.Sym.Off)})
		}
		return dst
	case *minic.Unary:
		if ee.Op == minic.TStar {
			return fc.genExpr(ee.X)
		}
	case *minic.Index:
		var base ir.Reg
		if _, isArr := ee.X.Type().(*minic.ArrayType); isArr {
			base = fc.genAddr(ee.X)
		} else {
			base = fc.genExpr(ee.X)
		}
		idx := fc.genExpr(ee.I)
		size := fc.constReg(ir.W64, uint64(ee.Type().Size()))
		scaled := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Mul, W: ir.W64, Dst: scaled, A: idx, B: size})
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Add, W: ir.W64, Dst: dst, A: base, B: scaled})
		return dst
	case *minic.Member:
		var base ir.Reg
		if ee.Arrow {
			base = fc.genExpr(ee.X)
		} else {
			base = fc.genAddr(ee.X)
		}
		if ee.Field.Off == 0 {
			return base
		}
		off := fc.constReg(ir.W64, uint64(ee.Field.Off))
		dst := fc.newReg()
		fc.emit(ir.Instr{Op: ir.Add, W: ir.W64, Dst: dst, A: base, B: off})
		return dst
	}
	panic(fmt.Sprintf("compile: not an lvalue: %T", e))
}
