// Package fuzz implements the field-aware mutation fuzzing that the
// paper uses to obtain seed and error-triggering inputs for the
// out-of-bounds errors (JasPer, gif2tiff) and to derive seeds from
// CVE-reported error inputs (Wireshark). Mutations are applied one
// dissected field at a time (corner values), then as random byte
// flips, and every candidate is confirmed by execution under memcheck.
package fuzz

import (
	"math/rand"

	"codephage/internal/bitvec"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/vm"
)

// DefaultRandSeed is the campaign RNG seed a zero-value Options maps
// to, so two zero-value campaigns on the same module are reproducibly
// identical — byte for byte, including the crash input found.
const DefaultRandSeed = 0xF0552

// Options configures a fuzzing campaign.
type Options struct {
	MaxSteps  int64
	MaxRandom int // random byte-flip candidates (default 2000)
	// RandSeed seeds the random byte-flip phase (0 = DefaultRandSeed).
	RandSeed int64
}

// rng returns the campaign RNG. The zero value is not a distinct
// seed: it resolves to DefaultRandSeed, and an explicit seed is used
// as-is, so a campaign's exploration order is pinned by the seed the
// caller can log and replay.
func (o Options) rng() *rand.Rand {
	seed := o.RandSeed
	if seed == 0 {
		seed = DefaultRandSeed
	}
	return rand.New(rand.NewSource(seed))
}

// Crash is a fuzzing result: an input that traps the application.
type Crash struct {
	Input []byte
	Trap  *vm.Trap
}

// Find searches for an input derived from the seed that crashes the
// module. It returns nil if the campaign finds nothing.
func Find(mod *ir.Module, seed []byte, dis *hachoir.Dissection, opts Options) *Crash {
	run := func(input []byte) *vm.Trap {
		v := vm.New(mod, input)
		v.MaxSteps = opts.MaxSteps
		r := v.Run()
		if r.Trap != nil && r.Trap.Kind != vm.TrapStepLimit {
			return r.Trap
		}
		return nil
	}

	// Phase 1: per-field corner values, including a small-integer sweep
	// that hits exact off-by-one boundaries (JasPer's tileno == count).
	if dis != nil {
		for _, f := range dis.Fields {
			w := uint8(f.Size * 8)
			m := bitvec.Mask(w)
			corners := []uint64{0, 1, m, m - 1, m >> 1, m>>1 + 1, 13, 1 << (w - 1)}
			for s := uint64(2); s <= 16; s++ {
				corners = append(corners, s)
			}
			for _, c := range corners {
				input := diode.MutateFields(seed, dis, map[string]uint64{f.Path: c & m})
				if tr := run(input); tr != nil {
					return &Crash{Input: input, Trap: tr}
				}
			}
		}
		// Phase 2: pairs of fields at corners (small budget).
		for i := range dis.Fields {
			for j := i + 1; j < len(dis.Fields); j++ {
				fi, fj := dis.Fields[i], dis.Fields[j]
				mi := bitvec.Mask(uint8(fi.Size * 8))
				mj := bitvec.Mask(uint8(fj.Size * 8))
				for _, ci := range []uint64{0, mi, mi >> 1} {
					for _, cj := range []uint64{0, mj, mj >> 1} {
						input := diode.MutateFields(seed, dis, map[string]uint64{
							fi.Path: ci, fj.Path: cj,
						})
						if tr := run(input); tr != nil {
							return &Crash{Input: input, Trap: tr}
						}
					}
				}
			}
		}
	}

	// Phase 3: random byte flips.
	maxRand := opts.MaxRandom
	if maxRand == 0 {
		maxRand = 2000
	}
	rng := opts.rng()
	for i := 0; i < maxRand && len(seed) > 0; i++ {
		input := append([]byte(nil), seed...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			input[rng.Intn(len(input))] ^= byte(1 + rng.Intn(255))
		}
		if tr := run(input); tr != nil {
			return &Crash{Input: input, Trap: tr}
		}
	}
	return nil
}

// DeriveSeed searches for a non-crashing input close to an
// error-triggering input — the paper's Wireshark methodology, where
// the CVE supplies the error input and a corresponding seed must be
// constructed. It mutates each dissected field toward benign corner
// values until the application processes the input successfully.
func DeriveSeed(mod *ir.Module, errorInput []byte, dis *hachoir.Dissection, opts Options) []byte {
	ok := func(input []byte) bool {
		v := vm.New(mod, input)
		v.MaxSteps = opts.MaxSteps
		r := v.Run()
		return r.OK() && r.ExitCode == 0
	}
	if ok(errorInput) {
		return errorInput
	}
	if dis != nil {
		for _, f := range dis.Fields {
			for _, c := range []uint64{1, 2, 16, 255} {
				input := diode.MutateFields(errorInput, dis, map[string]uint64{f.Path: c})
				if ok(input) {
					return input
				}
			}
		}
		// Pairs.
		for i := range dis.Fields {
			for j := i + 1; j < len(dis.Fields); j++ {
				input := diode.MutateFields(errorInput, dis, map[string]uint64{
					dis.Fields[i].Path: 1, dis.Fields[j].Path: 16,
				})
				if ok(input) {
					return input
				}
			}
		}
	}
	return nil
}
