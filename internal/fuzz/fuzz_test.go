package fuzz

import (
	"bytes"

	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/vm"
)

func dissect(t *testing.T, format string, input []byte) *hachoir.Dissection {
	t.Helper()
	d, ok := hachoir.ByName(format)
	if !ok {
		t.Fatalf("no dissector %q", format)
	}
	dis, err := d.Dissect(input)
	if err != nil {
		t.Fatal(err)
	}
	return dis
}

func TestFuzzFindsJasPerOOB(t *testing.T) {
	app, _ := apps.ByName("jasper")
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMJ2K()
	crash := Find(mod, seed, dissect(t, "mj2k", seed), Options{})
	if crash == nil {
		t.Fatal("fuzzing found no crash in jasper (the off-by-one exists)")
	}
	if crash.Trap.Kind != vm.TrapOOBWrite && crash.Trap.Kind != vm.TrapOOBRead {
		t.Errorf("trap = %v, want OOB", crash.Trap.Kind)
	}
}

func TestFuzzFindsGif2tiffOOB(t *testing.T) {
	app, _ := apps.ByName("gif2tiff")
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMGIF()
	crash := Find(mod, seed, dissect(t, "mgif", seed), Options{})
	if crash == nil {
		t.Fatal("fuzzing found no crash in gif2tiff")
	}
}

func TestFuzzFindsWiresharkDivZero(t *testing.T) {
	app, _ := apps.ByName("wireshark14")
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMPKT()
	crash := Find(mod, seed, dissect(t, "mpkt", seed), Options{})
	if crash == nil {
		t.Fatal("fuzzing found no crash in wireshark14")
	}
	if crash.Trap.Kind != vm.TrapDivZero {
		t.Errorf("trap = %v, want divide by zero", crash.Trap.Kind)
	}
}

func TestFuzzFindsNothingInDonors(t *testing.T) {
	// The donors carry the checks; field-corner fuzzing must not crash
	// them.
	for _, name := range []string{"openjpeg", "magick9", "wireshark18"} {
		app, _ := apps.ByName(name)
		mod, err := apps.Build(app)
		if err != nil {
			t.Fatal(err)
		}
		var seed []byte
		switch name {
		case "openjpeg":
			seed = apps.SeedMJ2K()
		case "magick9":
			seed = apps.SeedMGIF()
		default:
			seed = apps.SeedMPKT()
		}
		format := apps.Donors()[0].Formats[0]
		_ = format
		dis := hachoir.Detect(seed)
		if crash := Find(mod, seed, dis, Options{MaxRandom: 500}); crash != nil {
			t.Errorf("fuzzing crashed donor %s: %v (input %v)", name, crash.Trap, crash.Input)
		}
	}
}

func TestDeriveSeedFromErrorInput(t *testing.T) {
	// The Wireshark methodology: start from the CVE error input and
	// derive a benign seed.
	app, _ := apps.ByName("wireshark14")
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	errIn := (&hachoir.MPKT{Proto: 1, PLen: 0, Seq: 2, Payload: make([]byte, 32)}).Encode()
	seed := DeriveSeed(mod, errIn, dissect(t, "mpkt", errIn), Options{})
	if seed == nil {
		t.Fatal("no seed derived")
	}
	r := vm.New(mod, seed).Run()
	if !r.OK() || r.ExitCode != 0 {
		t.Fatalf("derived seed does not process cleanly: exit %d trap %v", r.ExitCode, r.Trap)
	}
}

func TestDeriveSeedAlreadyBenign(t *testing.T) {
	app, _ := apps.ByName("wireshark14")
	mod, _ := apps.Build(app)
	seed := apps.SeedMPKT()
	got := DeriveSeed(mod, seed, dissect(t, "mpkt", seed), Options{})
	if got == nil {
		t.Fatal("benign input rejected")
	}
}

// TestZeroValueCampaignReproducible pins the RandSeed default: two
// zero-value campaigns on the same module must be byte-identical,
// and the zero value must mean exactly DefaultRandSeed. The module
// crashes only via the random byte-flip phase (no dissection), so the
// comparison exercises the RNG-driven path end to end.
func TestZeroValueCampaignReproducible(t *testing.T) {
	src := `
void main() {
	u32 a = (u32)in_u8();
	u32 b = (u32)in_u8();
	if (a != 5 || b != 5) {
		u8* p = alloc(4);
		p[a + b] = 1;
	}
	exit(0);
}
`
	mod, err := compile.CompileSource("fuzz-repro", src)
	if err != nil {
		t.Fatal(err)
	}
	seed := []byte{5, 5}
	c1 := Find(mod, seed, nil, Options{})
	c2 := Find(mod, seed, nil, Options{})
	if c1 == nil || c2 == nil {
		t.Fatal("zero-value campaign found no crash")
	}
	if !bytes.Equal(c1.Input, c2.Input) {
		t.Fatalf("zero-value campaigns diverge: %x vs %x", c1.Input, c2.Input)
	}
	c3 := Find(mod, seed, nil, Options{RandSeed: DefaultRandSeed})
	if c3 == nil || !bytes.Equal(c1.Input, c3.Input) {
		t.Fatal("zero-value RandSeed is not DefaultRandSeed")
	}
	// A different seed must drive a different exploration order: the
	// program crashes on essentially every mutation, so the crash
	// input is the campaign's first candidate, which differs between
	// these two (deterministic) seeds. A rng() that ignored RandSeed
	// would return c1's input here.
	c4 := Find(mod, seed, nil, Options{RandSeed: 12345})
	if c4 == nil {
		t.Fatal("seeded campaign found no crash")
	}
	if bytes.Equal(c1.Input, c4.Input) {
		t.Fatal("campaign with RandSeed 12345 explored identically to the zero-value campaign")
	}
}
