package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSyntheticCorpusDeterministic pins that pool generation is a
// pure function of (seed, count): signatures, index order and donor
// sources all reproduce.
func TestSyntheticCorpusDeterministic(t *testing.T) {
	a, loadA := SyntheticCorpus(4242, 30)
	b, loadB := SyntheticCorpus(4242, 30)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("pool signatures differ across identical generations")
	}
	for _, sig := range a.Signatures {
		ma, err := loadA(sig.Donor)
		if err != nil {
			t.Fatalf("donor %s does not compile: %v", sig.Donor, err)
		}
		mb, err := loadB(sig.Donor)
		if err != nil {
			t.Fatal(err)
		}
		if ma == nil || mb == nil {
			t.Fatalf("donor %s loaded nil module", sig.Donor)
		}
	}
	if _, err := loadA("no-such-donor"); err == nil {
		t.Error("unknown donor loaded without error")
	}
}

// TestSyntheticCorpusShape checks the generated pool exercises both
// sides of the pre-filter split: guarded donors carry culprit-field
// checks, naive decoys carry none, and every format appears.
func TestSyntheticCorpusShape(t *testing.T) {
	ix, _ := SyntheticCorpus(7, 28)
	if len(ix.Signatures) != 28 {
		t.Fatalf("pool has %d signatures, want 28", len(ix.Signatures))
	}
	guarded, naive := 0, 0
	formats := map[string]bool{}
	for _, sig := range ix.Signatures {
		formats[sig.Format] = true
		if len(sig.Checks) > 0 {
			guarded++
			if len(sig.Fields) == 0 {
				t.Fatalf("guarded donor %s has no fields", sig.Donor)
			}
		} else {
			naive++
		}
	}
	if guarded == 0 || naive == 0 {
		t.Fatalf("pool split %d guarded / %d naive, want both nonzero", guarded, naive)
	}
	if len(formats) != len(formatSpecs) {
		t.Fatalf("pool covers %d formats, want %d", len(formats), len(formatSpecs))
	}
}

// TestPoolQueryDeterministic pins query generation: same seed, same
// bytes, and the error input actually perturbs the seed input.
func TestPoolQueryDeterministic(t *testing.T) {
	for i := 0; i < len(formatSpecs); i++ {
		f1, s1, e1, err := PoolQuery(9001, i)
		if err != nil {
			t.Fatal(err)
		}
		f2, s2, e2, err := PoolQuery(9001, i)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 || !bytes.Equal(s1, s2) || !bytes.Equal(e1, e2) {
			t.Fatalf("query %d not deterministic", i)
		}
		if f1 != formatSpecs[i%len(formatSpecs)].name {
			t.Fatalf("query %d format %s, want %s", i, f1, formatSpecs[i%len(formatSpecs)].name)
		}
		if bytes.Equal(s1, e1) {
			t.Fatalf("query %d error input does not perturb the seed", i)
		}
	}
}

// TestScenarioPrefilterOnOffByteIdentical runs the fixed-seed suite
// with the fingerprint pre-filter enabled and disabled: every outcome
// — selection, transfer, oracle — must be byte-identical, proving the
// pre-filter is pure optimization all the way through the pipeline.
func TestScenarioPrefilterOnOffByteIdentical(t *testing.T) {
	count := 8
	if !testing.Short() {
		count = 100
	}
	on, err := Run(Options{Seed: 6000, Count: count, Mutant: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Options{Seed: 6000, Count: count, Mutant: true, NoPrefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	jon, err := json.Marshal(on.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	joff, err := json.Marshal(off.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jon, joff) {
		t.Error("suite outcomes differ between prefiltered and exhaustive selection")
	}
}
