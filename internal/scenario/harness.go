package scenario

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/corpus"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/server"
)

// Options configures one conformance suite run.
type Options struct {
	// Seed is the suite seed; pair i of the suite is GeneratePair(Seed+i),
	// so a failing pair reproduces standalone as a Count-1 suite at its
	// own seed.
	Seed int64
	// Count is the number of generated pairs.
	Count int
	// Mutant also runs the mutant-patch oracle meta-check on every
	// validated transfer.
	Mutant bool
	// HTTP drives the suite through a phaged instance over real HTTP
	// (soak mode): generated applications and targets are registered
	// in the apps registry, a server scoped to the suite's donors is
	// started, and every transfer is submitted as a donor:"auto"
	// request.
	HTTP bool
	// Workers bounds suite concurrency (0 = the batch/server default).
	Workers int
	// NoPrefilter disables the corpus fingerprint pre-filter for the
	// local run; the suite outcome must be byte-identical either way
	// (the on/off determinism check drives this).
	NoPrefilter bool
	// Only, when nonzero, replays a single pair (by its pair seed)
	// inside the full suite: every pair is still generated and every
	// donor still indexed — selection sees the same knowledge base the
	// full run did — but only the named pair is transferred and
	// validated. Failure repro commands use this.
	Only int64
	// Logf, when set, receives per-pair progress lines.
	Logf func(format string, args ...any)
}

// Outcome is one pair's conformance result.
type Outcome struct {
	Seed   int64  `json:"seed"`
	Name   string `json:"name"`
	Format string `json:"format"`
	Kind   string `json:"kind"`
	// Donor is the auto-selected donor ("" on failure before
	// selection). Guard reports whether it is the pair's guarding
	// donor (the expected selection).
	Donor  string `json:"donor,omitempty"`
	Guard  bool   `json:"guard_donor,omitempty"`
	Rounds int    `json:"rounds,omitempty"`
	// Err is the failure ("" = conformant): generation, transfer,
	// oracle, or mutant-mode defect.
	Err string `json:"err,omitempty"`
	// Skipped marks pairs generated for the donor pool but not
	// transferred (an Options.Only replay of a different pair).
	Skipped bool `json:"skipped,omitempty"`
	// Repro is the one command reproducing this pair's run within its
	// suite's donor pool.
	Repro string `json:"repro"`
}

// Failed reports whether the pair failed conformance.
func (o *Outcome) Failed() bool { return o.Err != "" }

// Report is the outcome of a conformance suite.
type Report struct {
	Seed     int64     `json:"seed"`
	Count    int       `json:"count"`
	HTTP     bool      `json:"http"`
	Mutant   bool      `json:"mutant"`
	Failed   int       `json:"failed"`
	Wall     int64     `json:"wall_ms"`
	Outcomes []Outcome `json:"outcomes"`
}

// Failures returns the failed outcomes.
func (r *Report) Failures() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Failed() {
			out = append(out, o)
		}
	}
	return out
}

// repro renders the command reproducing one pair under the given
// options: the whole suite's seed and count (so the replay indexes
// the same donor pool selection ranked over) narrowed to the one
// pair with -only.
func repro(pairSeed int64, opts *Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "codephage scenario run -seed %d -count %d", opts.Seed, opts.Count)
	if opts.Count > 1 {
		fmt.Fprintf(&sb, " -only %d", pairSeed)
	}
	if opts.Mutant {
		sb.WriteString(" -mutant")
	}
	if opts.HTTP {
		sb.WriteString(" -http")
	}
	return sb.String()
}

// SuiteDonors collects the corpus donor set and module loader for the
// generated pairs: every pair contributes its guarding donor and its
// naive decoy, so selection ranks within a realistic, format-shared
// knowledge base. Exported for the cluster conformance tests, which
// boot several servers over one generated suite.
func SuiteDonors(pairs []*Pair) ([]corpus.Donor, corpus.ModuleLoader) {
	byName := map[string]*apps.App{}
	var donors []corpus.Donor
	for _, p := range pairs {
		if p == nil {
			continue
		}
		for _, d := range []*apps.App{p.Donor, p.Naive} {
			if byName[d.Name] != nil {
				continue
			}
			byName[d.Name] = d
			donors = append(donors, corpus.Donor{
				Name: d.Name, Paper: d.Paper, Source: d.Source, Formats: d.Formats,
			})
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].Name < donors[j].Name })
	loader := func(name string) (*ir.Module, error) {
		app := byName[name]
		if app == nil {
			return nil, fmt.Errorf("scenario: unknown suite donor %q", name)
		}
		m, err := compile.Cached(app.Name, app.Source)
		if err != nil {
			return nil, err
		}
		m = m.Clone()
		m.Strip()
		return m, nil
	}
	return donors, loader
}

// Run executes one conformance suite and returns its report. The
// suite is deterministic in Options.Seed: generation, donor
// selection, transfer results and oracle verdicts all reproduce.
func Run(opts Options) (*Report, error) {
	if opts.Count <= 0 {
		opts.Count = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	rep := &Report{Seed: opts.Seed, Count: opts.Count, HTTP: opts.HTTP, Mutant: opts.Mutant}
	rep.Outcomes = make([]Outcome, opts.Count)

	pairs := make([]*Pair, opts.Count)
	for i := range pairs {
		seed := opts.Seed + int64(i)
		out := &rep.Outcomes[i]
		out.Seed = seed
		out.Name = scenarioName(seed)
		out.Repro = repro(seed, &opts)
		p, err := GeneratePair(seed)
		if err != nil {
			out.Err = fmt.Sprintf("generate: %v", err)
			continue
		}
		pairs[i] = p
		out.Format = p.Format
		out.Kind = string(p.Kind)
	}

	if opts.Only != 0 {
		if opts.Only < opts.Seed || opts.Only >= opts.Seed+int64(opts.Count) {
			return nil, fmt.Errorf("scenario: -only %d is outside the suite [%d, %d)",
				opts.Only, opts.Seed, opts.Seed+int64(opts.Count))
		}
		for i := range rep.Outcomes {
			rep.Outcomes[i].Skipped = rep.Outcomes[i].Seed != opts.Only
		}
	}

	var err error
	if opts.HTTP {
		err = runHTTP(pairs, rep, &opts, logf)
	} else {
		err = runLocal(pairs, rep, &opts, logf)
	}
	if err != nil {
		return nil, err
	}
	for i := range rep.Outcomes {
		if rep.Outcomes[i].Failed() {
			rep.Failed++
		}
	}
	rep.Wall = time.Since(start).Milliseconds()
	return rep, nil
}

// finishOutcome applies the selection ground truth and the oracle
// (and mutant meta-check) to one transfer result.
func finishOutcome(p *Pair, out *Outcome, patchedSrc string, opts *Options, logf func(string, ...any)) {
	// Cross-pair healing is legitimate — any pair's guarding donor may
	// supply the check — but a transfer resolved from a check-free
	// naive decoy means ranking or discovery regressed.
	if strings.HasSuffix(out.Donor, "-nai") {
		out.Err = fmt.Sprintf("selection resolved the naive donor %s", out.Donor)
		logf("%s %s/%v: SELECTION FAIL: %s", out.Name, p.Format, p.Kind, out.Err)
		return
	}
	if err := VerifyTransfer(p, patchedSrc); err != nil {
		out.Err = err.Error()
		logf("%s %s/%v: ORACLE FAIL: %v", out.Name, p.Format, p.Kind, err)
		return
	}
	if opts.Mutant {
		if err := VerifyMutants(p, patchedSrc); err != nil {
			out.Err = err.Error()
			logf("%s %s/%v: MUTANT FAIL: %v", out.Name, p.Format, p.Kind, err)
			return
		}
	}
	logf("%s %s/%v <- %s: ok (%d round(s))", out.Name, p.Format, p.Kind, out.Donor, out.Rounds)
}

// runLocal drives the suite through the production path in-process:
// corpus indexing over the suite donors, the Select stage, and the
// batch engine.
func runLocal(pairs []*Pair, rep *Report, opts *Options, logf func(string, ...any)) error {
	donors, loader := SuiteDonors(pairs)
	eng := pipeline.NewEngine()
	eng.Selector = &corpus.Selector{Donors: donors, Loader: loader, NoPrefilter: opts.NoPrefilter}

	var tasks []pipeline.BatchTask
	var taskPair []int
	for i, p := range pairs {
		if p == nil || rep.Outcomes[i].Skipped {
			continue
		}
		tasks = append(tasks, pipeline.BatchTask{
			ID: p.Name(),
			Transfer: &pipeline.Transfer{
				RecipientName: p.Recipient.Name,
				RecipientSrc:  p.Recipient.Source,
				Donor:         nil, // auto-selection
				Format:        p.Format,
				Seed:          p.SeedInput,
				Error:         p.ErrorInput,
				Regression:    p.Benign,
				VulnFn:        p.VulnFn,
			},
		})
		taskPair = append(taskPair, i)
	}
	batch := &pipeline.Batch{Engine: eng, Workers: opts.Workers}
	results, _ := batch.Run(tasks)
	for ti, br := range results {
		i := taskPair[ti]
		p, out := pairs[i], &rep.Outcomes[i]
		if br.Err != nil {
			out.Err = fmt.Sprintf("transfer: %v", br.Err)
			logf("%s %s/%v: TRANSFER FAIL: %v", out.Name, p.Format, p.Kind, br.Err)
			continue
		}
		out.Donor = br.Result.Donor
		out.Guard = br.Result.Donor == p.Donor.Name
		out.Rounds = len(br.Result.Rounds)
		finishOutcome(p, out, br.Result.FinalSource, opts, logf)
	}
	return nil
}

// runHTTP drives the suite through a phaged instance over real HTTP:
// the soak mode. Generated applications and targets are registered in
// the apps registry for the duration of the run, the server's corpus
// is scoped to the suite's donors, and every pair is submitted as a
// donor:"auto" request.
func runHTTP(pairs []*Pair, rep *Report, opts *Options, logf func(string, ...any)) error {
	var registered []*apps.App
	prefix := map[string]bool{}
	for _, p := range pairs {
		if p == nil {
			continue
		}
		registered = append(registered, p.Recipient, p.Donor, p.Naive)
	}
	if err := apps.Register(registered...); err != nil {
		return fmt.Errorf("scenario: registering suite: %w", err)
	}
	for _, a := range registered {
		prefix[a.Name] = true
	}
	defer apps.Unregister(func(name string) bool { return prefix[name] })
	var targets []*apps.Target
	for _, p := range pairs {
		if p != nil {
			targets = append(targets, p.Target)
		}
	}
	if err := apps.RegisterTargets(targets...); err != nil {
		return fmt.Errorf("scenario: registering targets: %w", err)
	}

	donors, loader := SuiteDonors(pairs)
	srv := server.New(server.Config{CorpusDonors: donors, CorpusLoader: loader})
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := server.NewHTTPServer(srv.Handler())
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cli := &server.Client{BaseURL: "http://" + ln.Addr().String()}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range pairs {
		if p == nil || rep.Outcomes[i].Skipped {
			continue
		}
		wg.Add(1)
		go func(p *Pair, out *Outcome) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			env, err := cli.Transfer(context.Background(), &server.Request{
				Recipient: p.Recipient.Name,
				Target:    p.Target.ID,
				Donor:     pipeline.AutoDonor,
			})
			if err != nil {
				out.Err = fmt.Sprintf("transfer: %v", err)
				return
			}
			if env.Status != server.StatusDone {
				out.Err = fmt.Sprintf("transfer: %s", env.Error)
				logf("%s %s/%v: TRANSFER FAIL: %s", out.Name, p.Format, p.Kind, env.Error)
				return
			}
			out.Donor = env.Report.Donor
			out.Guard = env.Report.Donor == p.Donor.Name
			out.Rounds = len(env.Report.Rounds)
			finishOutcome(p, out, env.Report.PatchedSource, opts, logf)
		}(p, &rep.Outcomes[i])
	}
	wg.Wait()
	return nil
}
