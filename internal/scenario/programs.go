package scenario

import (
	"fmt"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/minic"
	"codephage/internal/vm"
)

// culpritPaths returns the dissector paths of the fields the defect
// depends on — the fields the error input perturbs.
func (g *gen) culpritPaths() map[string]bool {
	switch g.def {
	case defOverflow:
		return map[string]bool{g.fa.path: true, g.fb.path: true}
	case defDivZero:
		return map[string]bool{g.fd.path: true}
	default:
		return map[string]bool{g.fi.path: true}
	}
}

// emitRead emits the header-reading function: the magic check, one
// in_* read per dissected field into the struct, and any decoy
// validation checks. Decoy bounds sit above every benign, error and
// registry value the field can carry, so they never fire on suite
// inputs — they exist to give discovery and selection non-candidate
// branches to ignore, like the components/depth checks in the
// hand-written applications.
func (g *gen) emitRead(b *minic.Builder, fn, structName, arg, prefix string, decoys int) {
	culprit := g.culpritPaths()
	b.Func(fmt.Sprintf("u32 %s(%s* %s)", fn, structName, arg), func() {
		b.Line("u32 magic = in_u32be();")
		b.Block(fmt.Sprintf("if (magic != 0x%08X)", g.fmt.magic), func() {
			b.Line("return 0;")
		})
		for i := range g.fmt.fields {
			f := &g.fmt.fields[i]
			b.Line("%s->%s%s = %s;", arg, prefix, f.cname(), f.readCall())
		}
		// Decoy checks on non-culprit fields.
		perm := g.rng.Perm(len(g.fmt.fields))
		for _, fi := range perm {
			if decoys <= 0 {
				break
			}
			f := &g.fmt.fields[fi]
			if culprit[f.path] {
				continue
			}
			bound := between(g.rng, 20000, 60000)
			if f.size == 1 {
				bound = between(g.rng, 100, 250)
			}
			b.Block(fmt.Sprintf("if (%s->%s%s > %d)", arg, prefix, f.cname(), bound), func() {
				b.Line("return 0;")
			})
			decoys--
		}
		b.Line("return 1;")
	})
}

// structFields renders the struct's field declarations.
func (g *gen) structFields(prefix string) []string {
	var out []string
	for i := range g.fmt.fields {
		out = append(out, "u32 "+prefix+g.fmt.fields[i].cname())
	}
	return out
}

// recipientSource emits the generated recipient: header read, then
// the vulnerable function holding the injected defect, with every
// out() after the defect so rejected inputs are output-silent.
func (g *gen) recipientSource() string {
	b := minic.NewBuilder()
	b.Struct(g.structN, g.structFields("")...)
	g.emitRead(b, g.readFn, g.structN, "st", "", g.rng.Intn(3))

	useLocals := g.rng.Intn(2) == 0
	ref := func(f *fieldSpec) string {
		if useLocals {
			return f.cname()
		}
		return "st->" + f.cname()
	}
	b.Func(fmt.Sprintf("u32 %s(%s* st)", g.vulnFn, g.structN), func() {
		if useLocals {
			for _, f := range g.defectFields() {
				b.Line("u32 %s = st->%s;", f.cname(), f.cname())
			}
		}
		switch g.def {
		case defOverflow:
			b.Line("u32 size = %s * %s * %d;", ref(g.fa), ref(g.fb), g.mulK)
			b.Line("u8* buf = alloc(size);")
			b.Block("if (buf == 0)", func() { b.Line("return 0;") })
			b.Line("u32 y = 0;")
			b.Block(fmt.Sprintf("while (y < %s)", ref(g.fb)), func() {
				b.Line("u32 off = y * %s * %d;", ref(g.fa), g.mulK)
				b.Line("buf[off] = (u8)y;")
				b.Line("y = y + 1;")
			})
			b.Line("out((u64)%s);", ref(g.fa))
			b.Line("out((u64)%s);", ref(g.fb))
			b.Line("free(buf);")
		case defDivZero:
			if g.useLen {
				b.Line("u32 total = in_len() - %d;", g.fmt.headerLen())
			} else {
				b.Line("u32 total = %s * %d;", ref(g.numF), between(g.rng, 2, 8))
			}
			b.Line("u32 q = total / %s;", ref(g.fd))
			b.Line("u32 m = total %% %s;", ref(g.fd))
			b.Line("out((u64)q);")
			b.Line("out((u64)m);")
		case defOffByOne:
			b.Line("u32* tab = (u32*)alloc(%d * 4);", g.tableN)
			b.Block("if (tab == 0)", func() { b.Line("return 0;") })
			// The injected off-by-one: > where >= is required, so an
			// index equal to the table size slips through.
			b.Block(fmt.Sprintf("if (%s > %d)", ref(g.fi), g.tableN), func() {
				b.Line("free((u8*)tab);")
				b.Line("return 0;")
			})
			b.Line("tab[%s] = %s;", ref(g.fi), ref(g.fi))
			b.Line("out((u64)%s);", ref(g.fi))
			b.Line("free((u8*)tab);")
		case defShift:
			b.Line("u32* tab = (u32*)alloc(%d * 4);", shiftTable)
			b.Block("if (tab == 0)", func() { b.Line("return 0;") })
			b.Line("u32 clear = (u32)1 << %s;", ref(g.fi))
			b.Line("u32 code = 0;")
			b.Block("while (code < clear)", func() {
				b.Line("tab[code] = code;")
				b.Line("code = code + 1;")
			})
			b.Line("out((u64)clear);")
			b.Line("free((u8*)tab);")
		}
		b.Line("return 1;")
	})

	b.Func("void main()", func() {
		b.Line("%s st;", g.structN)
		b.Block(fmt.Sprintf("if (!%s(&st))", g.readFn), func() { b.Line("exit(1);") })
		b.Block(fmt.Sprintf("if (!%s(&st))", g.vulnFn), func() { b.Line("exit(1);") })
		b.Line("exit(0);")
	})
	return b.Source()
}

// defectFields returns the fields the defect template reads.
func (g *gen) defectFields() []*fieldSpec {
	switch g.def {
	case defOverflow:
		return []*fieldSpec{g.fa, g.fb}
	case defDivZero:
		if g.useLen || g.numF == g.fd {
			return []*fieldSpec{g.fd}
		}
		return []*fieldSpec{g.fd, g.numF}
	default:
		return []*fieldSpec{g.fi}
	}
}

// donorSource emits the guarding donor: same format reader (its own
// struct and naming), the guard function holding the donated check,
// and an output function so the donor observably processes accepted
// inputs.
func (g *gen) donorSource() string {
	b := minic.NewBuilder()
	prefix := []string{"", "v_", "m_"}[g.rng.Intn(3)]
	structN := pick(g.rng, structWords) + "D"
	readFn := pick(g.rng, readWords)
	guardFn := pick(g.rng, guardWords)
	emitFn := pick(g.rng, emitWords)

	b.Struct(structN, g.structFields(prefix)...)
	g.emitRead(b, readFn, structN, "d", prefix, g.rng.Intn(3))

	ref := func(f *fieldSpec) string { return "d->" + prefix + f.cname() }
	b.Func(fmt.Sprintf("u32 %s(%s* d)", guardFn, structN), func() {
		switch {
		case g.def == defOverflow && g.prod64 != 0:
			b.Block(fmt.Sprintf("if ((u64)%s * (u64)%s > %d)", ref(g.fa), ref(g.fb), g.prod64), func() {
				b.Line("return 0;")
			})
		case g.def == defOverflow && g.rng.Intn(2) == 0:
			b.Block(fmt.Sprintf("if (%s > %d || %s > %d)", ref(g.fa), g.boundA, ref(g.fb), g.boundB), func() {
				b.Line("return 0;")
			})
		case g.def == defOverflow:
			b.Block(fmt.Sprintf("if (%s > %d)", ref(g.fa), g.boundA), func() { b.Line("return 0;") })
			b.Block(fmt.Sprintf("if (%s > %d)", ref(g.fb), g.boundB), func() { b.Line("return 0;") })
		case g.def == defDivZero && g.rng.Intn(2) == 0:
			b.Block(fmt.Sprintf("if (%s == 0)", ref(g.fd)), func() { b.Line("return 0;") })
		case g.def == defDivZero:
			b.Block(fmt.Sprintf("if (%s)", ref(g.fd)), func() { b.Line("return 1;") })
			b.Line("return 0;")
			return
		case g.def == defOffByOne:
			b.Block(fmt.Sprintf("if (%s >= %d)", ref(g.fi), g.tableN), func() { b.Line("return 0;") })
		case g.def == defShift:
			b.Block(fmt.Sprintf("if (%s > %d)", ref(g.fi), shiftBound), func() { b.Line("return 0;") })
		}
		b.Line("return 1;")
	})

	b.Func(fmt.Sprintf("void %s(%s* d)", emitFn, structN), func() {
		for _, fi := range g.rng.Perm(len(g.fmt.fields))[:2] {
			b.Line("out((u64)%s);", ref(&g.fmt.fields[fi]))
		}
	})

	b.Func("void main()", func() {
		b.Line("%s d;", structN)
		b.Block(fmt.Sprintf("if (!%s(&d))", readFn), func() { b.Line("exit(1);") })
		b.Block(fmt.Sprintf("if (!%s(&d))", guardFn), func() { b.Line("exit(1);") })
		b.Line("%s(&d);", emitFn)
		b.Line("exit(0);")
	})
	return b.Source()
}

// naiveSource emits the naive donor: it processes the format but
// applies no check touching the culprit fields, so selection must
// rank it below the guarding donor and a transfer from it must fail
// with "no flipped branches".
func (g *gen) naiveSource() string {
	b := minic.NewBuilder()
	structN := pick(g.rng, structWords) + "N"
	readFn := pick(g.rng, readWords)
	b.Struct(structN, g.structFields("")...)
	g.emitRead(b, readFn, structN, "n", "", 0)
	b.Func("void main()", func() {
		b.Line("%s n;", structN)
		b.Block(fmt.Sprintf("if (!%s(&n))", readFn), func() { b.Line("exit(1);") })
		for _, fi := range g.rng.Perm(len(g.fmt.fields))[:2] {
			b.Line("out((u64)n.%s);", g.fmt.fields[fi].cname())
		}
		b.Line("exit(0);")
	})
	return b.Source()
}

// selfCheck verifies the generated pair's ground truth: the recipient
// traps on the error input with the expected trap kind and runs
// cleanly everywhere else; both donors survive every suite input,
// with the guarding donor rejecting the error input.
func (p *Pair) selfCheck() error {
	expectTrap := vm.TrapOOBWrite
	if p.Kind == apps.DivZero {
		expectTrap = vm.TrapDivZero
	}
	registry := apps.RegressionSuite(p.Format)

	rmod, err := compile.Cached(p.Recipient.Name, p.Recipient.Source)
	if err != nil {
		return fmt.Errorf("recipient does not compile: %w", err)
	}
	rr := vm.NewRunner(rmod)
	for i, in := range p.Benign {
		if r := rr.Run(in); !r.OK() || r.ExitCode != 0 {
			return fmt.Errorf("recipient rejects benign input %d: trap %v exit %d", i, r.Trap, r.ExitCode)
		}
	}
	for i, in := range registry {
		if r := rr.Run(in); !r.OK() {
			return fmt.Errorf("recipient traps on registry input %d: %v", i, r.Trap)
		}
	}
	if r := rr.Run(p.ErrorInput); r.OK() || r.Trap.Kind != expectTrap {
		return fmt.Errorf("recipient error input: got %v, want %v trap", r.Trap, expectTrap)
	}

	for _, d := range []*apps.App{p.Donor, p.Naive} {
		mod, err := compile.Cached(d.Name, d.Source)
		if err != nil {
			return fmt.Errorf("donor %s does not compile: %w", d.Name, err)
		}
		dr := vm.NewRunner(mod)
		for i, in := range p.Benign {
			if r := dr.Run(in); !r.OK() || r.ExitCode != 0 {
				return fmt.Errorf("donor %s rejects benign input %d: trap %v exit %d", d.Name, i, r.Trap, r.ExitCode)
			}
		}
		for i, in := range registry {
			if r := dr.Run(in); !r.OK() {
				return fmt.Errorf("donor %s traps on registry input %d: %v", d.Name, i, r.Trap)
			}
		}
		r := dr.Run(p.ErrorInput)
		if !r.OK() {
			return fmt.Errorf("donor %s traps on the error input: %v", d.Name, r.Trap)
		}
		if d == p.Donor && r.ExitCode == 0 {
			return fmt.Errorf("donor %s accepts the error input (guard did not fire)", d.Name)
		}
	}
	return nil
}
