// Bulk donor-pool generation: a deterministic synthetic corpus of
// standalone donor applications with fabricated index signatures,
// sized for thousand-donor selection benchmarks and the prefilter
// differential tests. Unlike GeneratePair, no recipient is generated
// and no self-check or check discovery runs — the generator already
// knows exactly which fields each donor's guard constrains, so the
// signature is fabricated from that ground truth and corpus building
// cost stays out of selection measurements.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"codephage/internal/compile"
	"codephage/internal/corpus"
	"codephage/internal/ir"
)

// poolName returns the deterministic name of pool donor i for a pool
// seed.
func poolName(seed int64, i int) string {
	return fmt.Sprintf("pool%08x-%05d", uint32(uint64(seed)), i)
}

// poolDonor generates one standalone donor and fabricates its index
// signature. Every second donor is a naive decoy (format reader, no
// guard): its empty check set lands it in the zero-score order, so
// generated pools exercise both sides of the pre-filter split — and
// model the mega-corpus reality that most applications in a large
// database carry no check on the fields a given error perturbs.
func poolDonor(seed int64, i int) (corpus.Donor, *corpus.Signature) {
	dseed := seed + int64(i)
	g := &gen{rng: rand.New(rand.NewSource(dseed)), seed: dseed}
	g.fmt = &formatSpecs[i%len(formatSpecs)]
	choices := []defect{defOverflow, defDivZero, defOffByOne}
	if len(g.byteFields()) > 0 {
		choices = append(choices, defShift)
	}
	g.def = choices[g.rng.Intn(len(choices))]
	g.structN = pick(g.rng, structWords)
	g.readFn = pick(g.rng, readWords)
	g.vulnFn = pick(g.rng, vulnWords)
	if err := g.chooseTemplate(); err != nil {
		// Unreachable: every format satisfies every offered template's
		// field requirements (the same choice logic GeneratePair uses).
		panic(fmt.Sprintf("scenario: pool donor %d: %v", i, err))
	}

	name := poolName(seed, i)
	naive := i%2 == 1
	var source string
	if naive {
		source = g.naiveSource()
	} else {
		source = g.donorSource()
	}
	d := corpus.Donor{
		Name:    name,
		Paper:   "generated pool donor",
		Source:  source,
		Formats: []string{g.fmt.name},
	}

	sig := &corpus.Signature{
		Donor:      name,
		Paper:      d.Paper,
		Format:     g.fmt.name,
		ContentKey: d.ContentKey(),
		ProbeKey:   "pool", // fabricated entries are never reconciled
	}
	if !naive {
		var fields []string
		for f := range g.culpritPaths() {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		// The signature mirrors what discovery would find: exactly the
		// guard's culprit fields, no more — in a large pool, a donor is
		// relevant to a query only when the query perturbs the specific
		// fields its guard constrains.
		sig.Checks = []corpus.CheckSig{{Cond: poolCond(g, fields), Fields: fields}}
		sig.Fields = fields
		sig.FlippedSites = 1 + g.rng.Intn(4)
		sig.RelevantSites = sig.FlippedSites + g.rng.Intn(3)
	} else {
		// Naive donors carry no checks; a small flipped count varies the
		// zero-score tie-break order.
		sig.FlippedSites = g.rng.Intn(2)
	}
	return d, sig
}

// poolCond fabricates the guard's canonical condition text over its
// field paths.
func poolCond(g *gen, fields []string) string {
	switch g.def {
	case defOverflow:
		if len(fields) == 2 {
			return fmt.Sprintf("(bvule (bvmul (field %s) (field %s)) %d)", fields[0], fields[1], g.prod64+g.boundA)
		}
		return fmt.Sprintf("(bvule (field %s) %d)", fields[0], g.boundA)
	case defDivZero:
		return fmt.Sprintf("(distinct (field %s) 0)", fields[0])
	case defOffByOne:
		return fmt.Sprintf("(bvult (field %s) %d)", fields[0], g.tableN)
	default:
		return fmt.Sprintf("(bvule (field %s) %d)", fields[0], shiftBound)
	}
}

// PoolQuery derives a deterministic selection query against the
// format of pool donor i: a benign seed input and an error input
// perturbing the query template's culprit fields. It is generation
// only — no application is built and nothing runs — so differential
// tests can sweep many (corpus, query) combinations cheaply.
func PoolQuery(seed int64, i int) (format string, seedIn, errIn []byte, err error) {
	qseed := seed + int64(i)
	g := &gen{rng: rand.New(rand.NewSource(qseed ^ 0x71e57)), seed: qseed}
	g.fmt = &formatSpecs[i%len(formatSpecs)]
	choices := []defect{defOverflow, defDivZero, defOffByOne}
	if len(g.byteFields()) > 0 {
		choices = append(choices, defShift)
	}
	g.def = choices[g.rng.Intn(len(choices))]
	if err := g.chooseTemplate(); err != nil {
		return "", nil, nil, fmt.Errorf("scenario: pool query %d: %w", i, err)
	}
	g.seedVals = g.benignVals()
	if err := g.solveErrorValues(); err != nil {
		return "", nil, nil, fmt.Errorf("scenario: pool query %d: %w", i, err)
	}
	payload := make([]byte, g.rng.Intn(6))
	for i := range payload {
		payload[i] = byte(g.rng.Intn(256))
	}
	return g.fmt.name, g.fmt.encode(g.seedVals, payload), g.fmt.encode(g.errVals, payload), nil
}

// SyntheticCorpus generates a count-donor pool from a seed and returns
// its warm signature index plus a compile-on-demand module loader.
// Generation is a pure function of (seed, count): donor sources,
// signatures and index order all reproduce, so selection over the pool
// is deterministic. The index is returned without an attached
// fingerprint pre-filter; callers attach one (or not) per experiment
// arm.
func SyntheticCorpus(seed int64, count int) (*corpus.Index, corpus.ModuleLoader) {
	sources := make(map[string]string, count)
	ix := &corpus.Index{Version: corpus.Version}
	for i := 0; i < count; i++ {
		d, sig := poolDonor(seed, i)
		sources[d.Name] = d.Source
		ix.Signatures = append(ix.Signatures, sig)
	}
	sort.Slice(ix.Signatures, func(i, j int) bool {
		a, b := ix.Signatures[i], ix.Signatures[j]
		if a.Donor != b.Donor {
			return a.Donor < b.Donor
		}
		return a.Format < b.Format
	})
	loader := func(name string) (*ir.Module, error) {
		src, ok := sources[name]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown pool donor %q", name)
		}
		m, err := compile.Cached(name, src)
		if err != nil {
			return nil, err
		}
		m = m.Clone()
		m.Strip()
		return m, nil
	}
	return ix, loader
}
