// Package scenario is the generative conformance layer: a seeded,
// deterministic generator of synthetic donor/recipient application
// pairs in MiniC, and a harness that drives the full production
// transfer path over hundreds of generated pairs, validating every
// result with a differential oracle.
//
// Each generated recipient carries one injected defect drawn from the
// paper's three error classes — integer overflow, out-of-bounds
// access, divide by zero — together with a known error-triggering
// input, and each generated donor carries the corresponding guarding
// check, so every pair has a ground-truth expected transfer outcome.
// Generation is a pure function of an int64 seed: any failure anywhere
// in the stack reproduces from that one number.
package scenario

import (
	"fmt"
	"math/rand"
	"sync"

	"codephage/internal/apps"
)

// fieldSpec mirrors one dissected field of a format (internal/hachoir
// layouts). registrySafe marks fields whose value is >= 1 in the
// format's canonical seed and every registry regression input, the
// precondition for using the field as a divisor: the phaged request
// path validates patches against the registry regression suite, and a
// zero divisor there would make the unpatched baseline trap.
type fieldSpec struct {
	path         string
	size         int // bytes
	be           bool
	registrySafe bool
}

// cname returns the field's C identifier: the dissector path with the
// separators flattened (paths repeat leaf names across sections, e.g.
// /screen/width and /image/width in mgif).
func (f *fieldSpec) cname() string {
	out := make([]byte, 0, len(f.path))
	for i := 1; i < len(f.path); i++ {
		c := f.path[i]
		if c == '/' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// readCall returns the in_* expression reading the field, cast to u32.
func (f *fieldSpec) readCall() string {
	switch {
	case f.size == 1:
		return "(u32)in_u8()"
	case f.size == 2 && f.be:
		return "(u32)in_u16be()"
	case f.size == 2:
		return "(u32)in_u16le()"
	case f.be:
		return "in_u32be()"
	default:
		return "in_u32le()"
	}
}

// max returns the field's maximum value.
func (f *fieldSpec) max() uint64 {
	return 1<<(8*uint(f.size)) - 1
}

// formatSpec models one input format: the magic constant and the
// fixed-offset field layout after it, mirroring the dissectors in
// internal/hachoir (a layout change there invalidates generated
// scenarios the same way it invalidates corpus signatures — loudly,
// through the generator's self-check).
type formatSpec struct {
	name   string
	magic  uint32
	fields []fieldSpec
}

func (f *formatSpec) headerLen() int {
	n := 4
	for i := range f.fields {
		n += f.fields[i].size
	}
	return n
}

// encode serializes an input: magic, each field per its size and
// endianness, then the payload.
func (f *formatSpec) encode(vals map[string]uint64, payload []byte) []byte {
	out := []byte{byte(f.magic >> 24), byte(f.magic >> 16), byte(f.magic >> 8), byte(f.magic)}
	for i := range f.fields {
		fs := &f.fields[i]
		v := vals[fs.path]
		for b := 0; b < fs.size; b++ {
			if fs.be {
				out = append(out, byte(v>>(8*uint(fs.size-1-b))))
			} else {
				out = append(out, byte(v>>(8*uint(b))))
			}
		}
	}
	return append(out, payload...)
}

var formatSpecs = []formatSpec{
	{name: "mjpg", magic: 0x4D4A5047, fields: []fieldSpec{
		{"/version", 1, true, true},
		{"/start_frame/precision", 1, true, false},
		{"/start_frame/content/height", 2, true, true},
		{"/start_frame/content/width", 2, true, true},
		{"/start_frame/components", 1, true, true},
		{"/start_frame/h_samp", 1, true, true},
		{"/start_frame/v_samp", 1, true, true},
		{"/scan/length", 4, true, false},
	}},
	{name: "mpng", magic: 0x4D504E47, fields: []fieldSpec{
		{"/ihdr/width", 4, true, true},
		{"/ihdr/height", 4, true, true},
		{"/ihdr/depth", 1, true, true},
		{"/ihdr/color", 1, true, false},
		{"/idat/length", 4, true, false},
	}},
	{name: "mgif", magic: 0x4D474946, fields: []fieldSpec{
		{"/screen/width", 2, false, true},
		{"/screen/height", 2, false, true},
		{"/screen/flags", 1, false, false},
		{"/image/left", 2, false, false},
		{"/image/top", 2, false, false},
		{"/image/width", 2, false, true},
		{"/image/height", 2, false, true},
		{"/image/lzw_code_size", 1, false, true},
		{"/image/data_len", 2, false, false},
	}},
	{name: "mtif", magic: 0x4D544946, fields: []fieldSpec{
		{"/ifd/width", 4, false, true},
		{"/ifd/height", 4, false, true},
		{"/ifd/bits_per_sample", 2, false, true},
		{"/ifd/samples_per_pixel", 2, false, true},
		{"/strip/length", 4, false, false},
	}},
	{name: "mswf", magic: 0x4D535746, fields: []fieldSpec{
		{"/header/version", 1, false, true},
		{"/header/frame_width", 2, false, true},
		{"/header/frame_height", 2, false, true},
		{"/jpeg/length", 4, false, true},
		{"/jpeg/height", 2, true, true},
		{"/jpeg/width", 2, true, true},
		{"/jpeg/components", 1, true, true},
		{"/jpeg/h_samp", 1, true, true},
		{"/jpeg/v_samp", 1, true, true},
	}},
	{name: "mpkt", magic: 0x4D504B54, fields: []fieldSpec{
		{"/eth/proto", 2, true, true},
		{"/dcp/flags", 1, true, false},
		{"/dcp/plen", 2, true, true},
		{"/dcp/seq", 2, true, true},
	}},
	{name: "mj2k", magic: 0x4D4A324B, fields: []fieldSpec{
		{"/siz/tiles_x", 1, true, true},
		{"/siz/tiles_y", 1, true, true},
		{"/siz/width", 2, true, true},
		{"/siz/height", 2, true, true},
		{"/sot/tileno", 2, true, false},
		{"/sot/length", 2, true, false},
	}},
}

// Generated benign inputs keep every 1-byte field in [1, benignMax8]
// and every wider field in [1, benignMaxWide]; every generated guard
// bound sits strictly above both (and above the registry regression
// suite's maxima), so no generated donor's check ever fires on any
// generated pair's benign input — cross-pair donor selection can rank
// any surviving donor without risking a benign regression failure.
const (
	benignMax8    = 9
	benignMaxWide = 500
	// registryMax is the largest field value appearing in any registry
	// regression input (mjpg's 1024-pixel height); generated bounds
	// stay above it so registry suites pass generated guards too.
	registryMax = 1024
	// shiftBound is the donated bound for the LZW-style shift defect:
	// the table holds 1<<12 entries, matching the registry's maximum
	// code size, exactly as in the paper's gif2tiff/ImageMagick pair.
	shiftBound = 12
	shiftTable = 1 << shiftBound
)

// defect identifies the injected error template.
type defect int

const (
	defOverflow defect = iota // unchecked 32-bit size product (cwebp family)
	defDivZero                // field used as divisor (wireshark family)
	defOffByOne               // > where >= is required (jasper family)
	defShift                  // unbounded table-init shift (gif2tiff family)
)

func (d defect) kind() apps.ErrorKind {
	switch d {
	case defOverflow:
		return apps.Overflow
	case defDivZero:
		return apps.DivZero
	default:
		return apps.OOB
	}
}

// Pair is one generated donor/recipient scenario with its ground
// truth: a recipient whose injected defect the error input triggers, a
// donor whose check guards exactly that defect, a naive donor with no
// relevant check (selection must rank it below the guarding donor),
// and a benign-input suite the patched recipient must match the
// unpatched one on.
type Pair struct {
	Seed   int64
	Format string
	Kind   apps.ErrorKind

	Recipient *apps.App
	Donor     *apps.App // carries the guarding check
	Naive     *apps.App // same format, no relevant check
	Target    *apps.Target

	SeedInput  []byte
	ErrorInput []byte
	Benign     [][]byte // Benign[0] is SeedInput
	VulnFn     string

	// GuardDesc summarizes the donated check for reports.
	GuardDesc string

	defect defect

	// The oracle's unpatched-side baseline, computed once per pair and
	// shared across the real-patch and mutant verifications.
	baseOnce sync.Once
	base     *oracleBaseline
	baseErr  error
}

// Name returns the pair's unique scenario name.
func (p *Pair) Name() string { return scenarioName(p.Seed) }

func scenarioName(seed int64) string { return fmt.Sprintf("scn%016x", uint64(seed)) }

// wordlists for deterministic, collision-free program naming.
var (
	structWords = []string{"Header", "Decoder", "Context", "Image", "Packet", "Frame", "Stream", "Record"}
	readWords   = []string{"parse_header", "read_header", "load_input", "decode_header", "scan_header"}
	vulnWords   = []string{"process_data", "render_image", "decode_body", "handle_payload", "expand_rows", "build_buffer"}
	guardWords  = []string{"validate_input", "check_limits", "sanity_check", "verify_header", "bounds_ok"}
	emitWords   = []string{"emit_summary", "consume_input", "report_fields", "summarize"}
)

func pick(rng *rand.Rand, words []string) string { return words[rng.Intn(len(words))] }

// between returns a deterministic value in [lo, hi].
func between(rng *rand.Rand, lo, hi uint64) uint64 {
	return lo + uint64(rng.Int63n(int64(hi-lo+1)))
}

// gen carries one pair's generation state.
type gen struct {
	rng  *rand.Rand
	fmt  *formatSpec
	def  defect
	seed int64

	// culprit fields and template constants.
	fa, fb  *fieldSpec // defOverflow: size product operands
	fd      *fieldSpec // defDivZero: divisor
	fi      *fieldSpec // defOffByOne: index; defShift: shift amount
	mulK    uint64     // defOverflow: constant multiplier
	tableN  uint64     // defOffByOne: table entries
	boundA  uint64     // guard bounds
	boundB  uint64
	prod64  uint64 // defOverflow product-form bound (0 = per-field form)
	useLen  bool   // defDivZero: numerator from in_len()
	numF    *fieldSpec
	structN string
	readFn  string
	vulnFn  string

	seedVals map[string]uint64
	errVals  map[string]uint64
}

// multiByteFields returns the format's fields of at least 2 bytes.
func (g *gen) multiByteFields() []*fieldSpec {
	var out []*fieldSpec
	for i := range g.fmt.fields {
		if g.fmt.fields[i].size >= 2 {
			out = append(out, &g.fmt.fields[i])
		}
	}
	return out
}

// byteFields returns the format's 1-byte fields.
func (g *gen) byteFields() []*fieldSpec {
	var out []*fieldSpec
	for i := range g.fmt.fields {
		if g.fmt.fields[i].size == 1 {
			out = append(out, &g.fmt.fields[i])
		}
	}
	return out
}

// registrySafeFields returns fields usable as divisors.
func (g *gen) registrySafeFields() []*fieldSpec {
	var out []*fieldSpec
	for i := range g.fmt.fields {
		if g.fmt.fields[i].registrySafe {
			out = append(out, &g.fmt.fields[i])
		}
	}
	return out
}

// benignValue draws a benign value for the field, respecting the
// global benign ranges.
func benignValue(rng *rand.Rand, f *fieldSpec) uint64 {
	if f.size == 1 {
		return between(rng, 1, benignMax8)
	}
	return between(rng, 1, benignMaxWide)
}

// benignVals draws a full set of benign field values.
func (g *gen) benignVals() map[string]uint64 {
	vals := map[string]uint64{}
	for i := range g.fmt.fields {
		vals[g.fmt.fields[i].path] = benignValue(g.rng, &g.fmt.fields[i])
	}
	return vals
}

// GeneratePair deterministically generates one scenario from its
// seed, self-checking the ground truth: the recipient must trap on the
// error input with the expected trap kind and run cleanly on the seed,
// the benign suite and the registry regression suite; both donors must
// process every one of those inputs without crashing (the donor
// rejects the error input through its guard).
func GeneratePair(seed int64) (*Pair, error) {
	g := &gen{rng: rand.New(rand.NewSource(seed)), seed: seed}
	g.fmt = &formatSpecs[g.rng.Intn(len(formatSpecs))]

	// Choose the defect template among those the format supports.
	choices := []defect{defOverflow, defDivZero, defOffByOne}
	if len(g.byteFields()) > 0 {
		choices = append(choices, defShift)
	}
	g.def = choices[g.rng.Intn(len(choices))]

	g.structN = pick(g.rng, structWords)
	g.readFn = pick(g.rng, readWords)
	g.vulnFn = pick(g.rng, vulnWords)

	if err := g.chooseTemplate(); err != nil {
		return nil, fmt.Errorf("scenario %d: %w", seed, err)
	}
	g.seedVals = g.benignVals()
	if err := g.solveErrorValues(); err != nil {
		return nil, fmt.Errorf("scenario %d: %w", seed, err)
	}

	name := scenarioName(seed)
	payload := make([]byte, g.rng.Intn(6))
	for i := range payload {
		payload[i] = byte(g.rng.Intn(256))
	}
	seedIn := g.fmt.encode(g.seedVals, payload)
	errIn := g.fmt.encode(g.errVals, payload)

	benign := [][]byte{seedIn}
	for n := 3 + g.rng.Intn(3); n > 0; n-- {
		pl := make([]byte, g.rng.Intn(6))
		for i := range pl {
			pl[i] = byte(g.rng.Intn(256))
		}
		benign = append(benign, g.fmt.encode(g.benignVals(), pl))
	}

	recipient := &apps.App{
		Name:    name + "-rcp",
		Paper:   "generated recipient",
		Source:  g.recipientSource(),
		Formats: []string{g.fmt.name},
	}
	donor := &apps.App{
		Name:    name + "-don",
		Paper:   "generated donor",
		Source:  g.donorSource(),
		Formats: []string{g.fmt.name},
		Donor:   true,
	}
	naive := &apps.App{
		Name:    name + "-nai",
		Paper:   "generated naive donor",
		Source:  g.naiveSource(),
		Formats: []string{g.fmt.name},
		Donor:   true,
	}

	vulnFn := ""
	if g.def == defOverflow {
		vulnFn = g.vulnFn
	}
	p := &Pair{
		Seed:       seed,
		Format:     g.fmt.name,
		Kind:       g.def.kind(),
		Recipient:  recipient,
		Donor:      donor,
		Naive:      naive,
		SeedInput:  seedIn,
		ErrorInput: errIn,
		Benign:     benign,
		VulnFn:     vulnFn,
		GuardDesc:  g.guardDesc(),
		defect:     g.def,
	}
	p.Target = &apps.Target{
		Recipient: recipient.Name,
		ID:        "gen.c@1",
		Kind:      p.Kind,
		Format:    g.fmt.name,
		VulnFn:    vulnFn,
		Donors:    []string{donor.Name, naive.Name},
		Seed:      seedIn,
		Error:     errIn,
	}
	if err := p.selfCheck(); err != nil {
		return nil, fmt.Errorf("scenario %d: %w", seed, err)
	}
	return p, nil
}

// chooseTemplate picks the culprit fields and constants for the
// defect.
func (g *gen) chooseTemplate() error {
	switch g.def {
	case defOverflow:
		multi := g.multiByteFields()
		if len(multi) < 2 {
			return fmt.Errorf("format %s has too few multi-byte fields", g.fmt.name)
		}
		ai := g.rng.Intn(len(multi))
		bi := g.rng.Intn(len(multi) - 1)
		if bi >= ai {
			bi++
		}
		g.fa, g.fb = multi[ai], multi[bi]
		g.mulK = between(g.rng, 2, 4)
		if g.rng.Intn(2) == 0 {
			// Per-field bound form (the mtpaint MAX_WIDTH shape). The
			// bounds keep the guarded product under 2^32 so the DIODE
			// rescan finds no residual overflow.
			g.boundA = between(g.rng, registryMax+76, 16000)
			g.boundB = between(g.rng, registryMax+76, 16000)
		} else {
			// 64-bit product form (the feh IMAGE_DIMENSIONS_OK shape):
			// bound above the registry maxima product, below 2^32/K.
			g.prod64 = between(g.rng, 1<<20, 1<<28)
		}
	case defDivZero:
		safe := g.registrySafeFields()
		if len(safe) == 0 {
			return fmt.Errorf("format %s has no registry-safe divisor field", g.fmt.name)
		}
		g.fd = safe[g.rng.Intn(len(safe))]
		g.useLen = g.rng.Intn(2) == 0
		if !g.useLen {
			others := g.registrySafeFields()
			g.numF = others[g.rng.Intn(len(others))]
			if g.numF == g.fd {
				g.useLen = true
			}
		}
	case defOffByOne:
		multi := g.multiByteFields()
		if len(multi) == 0 {
			return fmt.Errorf("format %s has no multi-byte index field", g.fmt.name)
		}
		g.fi = multi[g.rng.Intn(len(multi))]
		g.tableN = between(g.rng, registryMax+76, 4000)
	case defShift:
		bytes := g.byteFields()
		if len(bytes) == 0 {
			return fmt.Errorf("format %s has no 1-byte shift field", g.fmt.name)
		}
		g.fi = bytes[g.rng.Intn(len(bytes))]
	}
	return nil
}

// solveErrorValues derives the error-triggering field assignment from
// the seed values.
func (g *gen) solveErrorValues() error {
	errVals := map[string]uint64{}
	for k, v := range g.seedVals {
		errVals[k] = v
	}
	switch g.def {
	case defOverflow:
		// Find a, b with a*b*K just past 2^32: the 32-bit product wraps
		// to a small allocation (r bytes, under the heap limit) while
		// the row loop's second write lands a*K bytes in — past the
		// short buffer, trapping immediately. a is capped at 2^24 so
		// one loop step never wraps on its own, and its lower half
		// keeps a above every generated guard bound.
		const wrap = uint64(1) << 32
		maxA, maxB := g.fa.max(), g.fb.max()
		hi := maxA
		if hi > 1<<24 {
			hi = 1 << 24
		}
		for try := 0; try < 4096; try++ {
			a := between(g.rng, hi/2, hi)
			step := a * g.mulK
			b := (wrap + step - 1) / step
			if b < 2 || b > maxB {
				continue
			}
			r := a*b*g.mulK - wrap // in [0, step)
			if r >= 1 && r < 1<<20 {
				errVals[g.fa.path] = a
				errVals[g.fb.path] = b
				g.errVals = errVals
				return nil
			}
		}
		return fmt.Errorf("no wrapping assignment for %s*%s*%d", g.fa.path, g.fb.path, g.mulK)
	case defDivZero:
		errVals[g.fd.path] = 0
	case defOffByOne:
		errVals[g.fi.path] = g.tableN
	case defShift:
		errVals[g.fi.path] = between(g.rng, shiftBound+1, 14)
	}
	g.errVals = errVals
	return nil
}

// guardDesc renders the donated check for reports.
func (g *gen) guardDesc() string {
	switch g.def {
	case defOverflow:
		if g.prod64 != 0 {
			return fmt.Sprintf("(u64)%s * (u64)%s <= %d", g.fa.cname(), g.fb.cname(), g.prod64)
		}
		return fmt.Sprintf("%s <= %d && %s <= %d", g.fa.cname(), g.boundA, g.fb.cname(), g.boundB)
	case defDivZero:
		return fmt.Sprintf("%s != 0", g.fd.cname())
	case defOffByOne:
		return fmt.Sprintf("%s < %d", g.fi.cname(), g.tableN)
	default:
		return fmt.Sprintf("%s <= %d", g.fi.cname(), shiftBound)
	}
}
