package scenario

import (
	"fmt"
	"strings"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/vm"
)

// The differential oracle validates a transfer result against the
// pair's ground truth:
//
//  1. the patched recipient must run the error input to completion —
//     no trap — and reject it (nonzero exit through the donated
//     guard);
//  2. on the seed and every benign input, the patched recipient must
//     produce an observable trace identical to the unpatched one
//     (vm.Runner traces: every input read, allocation, free, output
//     and exit, in order), so a patch cannot buy safety by changing
//     behaviour benign inputs rely on;
//  3. on the registry regression suite the patched recipient must be
//     behaviourally identical to the unpatched one under the engine's
//     own §3.4 comparison (pipeline.Observe), tying the oracle's
//     verdict to the validator's semantics.
//
// VerifyMutants then weakens a validated patch two ways — a guard
// that never fires and a guard that always fires — and requires the
// oracle to reject both, confirming the oracle has the discrimination
// the conformance verdicts rely on.

// runTrace executes the module on the input under a trace recorder.
func runTrace(mod *ir.Module, input []byte) ([]vm.TraceEvent, *vm.Result) {
	rec := &vm.TraceRecorder{}
	r := vm.NewRunner(mod)
	r.Tracer = rec
	res := r.Run(input)
	return rec.Events, res
}

// oracleBaseline is the unpatched side of the differential
// comparison, computed once per pair and shared by the real-patch
// verification and both mutant checks.
type oracleBaseline struct {
	traces   [][]vm.TraceEvent    // per benign input (exit included as an event)
	registry []pipeline.Behaviour // registry regression behaviours
	inputs   [][]byte             // the registry suite observed
}

// baseline computes (once) the unpatched recipient's benign traces
// and registry behaviours.
func (p *Pair) baseline() (*oracleBaseline, error) {
	p.baseOnce.Do(func() {
		orig, err := compile.Cached(p.Recipient.Name, p.Recipient.Source)
		if err != nil {
			p.baseErr = fmt.Errorf("oracle: original does not compile: %w", err)
			return
		}
		base := &oracleBaseline{inputs: apps.RegressionSuite(p.Format)}
		for i, in := range p.Benign {
			trace, res := runTrace(orig, in)
			if !res.OK() || res.ExitCode != 0 {
				p.baseErr = fmt.Errorf("oracle: unpatched recipient rejects benign input %d (trap %v exit %d)",
					i, res.Trap, res.ExitCode)
				return
			}
			base.traces = append(base.traces, trace)
		}
		base.registry = pipeline.Observe(orig, base.inputs, 0)
		p.base = base
	})
	return p.base, p.baseErr
}

// VerifyTransfer runs the differential oracle for one pair against
// the patched recipient source a transfer produced.
func VerifyTransfer(p *Pair, patchedSrc string) error {
	if patchedSrc == p.Recipient.Source {
		return fmt.Errorf("oracle: patched source is identical to the original")
	}
	base, err := p.baseline()
	if err != nil {
		return err
	}
	patched, err := compile.Cached(p.Recipient.Name, patchedSrc)
	if err != nil {
		return fmt.Errorf("oracle: patched source does not compile: %w", err)
	}

	// 1. The error input must be rejected, not survived-by-luck.
	if r := vm.NewRunner(patched).Run(p.ErrorInput); !r.OK() {
		return fmt.Errorf("oracle: patched recipient still traps on the error input: %v", r.Trap)
	} else if r.ExitCode == 0 {
		return fmt.Errorf("oracle: patched recipient accepts the error input (exit 0)")
	}

	// 2. Trace-identical on the seed and benign suite.
	for i, in := range p.Benign {
		gotTrace, gotRes := runTrace(patched, in)
		if !gotRes.OK() {
			return fmt.Errorf("oracle: patched recipient traps on benign input %d: %v", i, gotRes.Trap)
		}
		// The exit code needs no separate comparison: exit is itself a
		// recorded trace event, so TraceEqual covers it.
		if eq, at := vm.TraceEqual(base.traces[i], gotTrace); !eq {
			return fmt.Errorf("oracle: benign input %d diverges at trace event %d (%d vs %d events)",
				i, at, len(base.traces[i]), len(gotTrace))
		}
	}

	// 3. Behaviourally identical on the registry regression suite,
	// under the validator's own comparison.
	got := pipeline.Observe(patched, base.inputs, 0)
	for i := range base.registry {
		if !got[i].Equal(base.registry[i]) {
			return fmt.Errorf("oracle: registry input %d diverges: %v, want %v", i, got[i], base.registry[i])
		}
	}
	return nil
}

// MutantMode selects how WeakenPatch corrupts a validated patch.
type MutantMode int

const (
	// MutantLenient makes every donated guard unfireable: the error
	// input must trap again, so an oracle that misses it is blind to
	// unsafe patches.
	MutantLenient MutantMode = iota
	// MutantStrict makes every donated guard fire unconditionally:
	// benign inputs get rejected, so an oracle that misses it is blind
	// to behaviour-breaking patches.
	MutantStrict
)

func (m MutantMode) String() string {
	if m == MutantStrict {
		return "strict"
	}
	return "lenient"
}

// insertedLines returns the indices (0-based, in patched) of lines
// the transfer inserted into the original source.
func insertedLines(origSrc, patchedSrc string) []int {
	orig := strings.Split(origSrc, "\n")
	patched := strings.Split(patchedSrc, "\n")
	var ins []int
	i := 0
	for j := 0; j < len(patched); j++ {
		if i < len(orig) && orig[i] == patched[j] {
			i++
			continue
		}
		ins = append(ins, j)
	}
	return ins
}

// WeakenPatch rewrites every inserted guard line of a patched source
// into its mutant form: the guard condition is conjoined with a
// constant false (lenient) or disjoined with a constant true
// (strict). The patch lines have the shape `if (COND) { exit(-1); }`.
func WeakenPatch(origSrc, patchedSrc string, mode MutantMode) (string, error) {
	ins := insertedLines(origSrc, patchedSrc)
	if len(ins) == 0 {
		return "", fmt.Errorf("mutant: no inserted patch lines found")
	}
	lines := strings.Split(patchedSrc, "\n")
	for _, j := range ins {
		line := lines[j]
		trimmed := strings.TrimLeft(line, " \t")
		indent := line[:len(line)-len(trimmed)]
		if !strings.HasPrefix(trimmed, "if (") {
			return "", fmt.Errorf("mutant: inserted line %d is not a guard: %q", j+1, trimmed)
		}
		end := strings.LastIndex(trimmed, ") {")
		if end < 0 {
			return "", fmt.Errorf("mutant: inserted line %d has no guard body: %q", j+1, trimmed)
		}
		cond := trimmed[len("if ("):end]
		action := trimmed[end+1:] // " { exit(-1); }"
		op, clause := "&&", "(1 == 0)"
		if mode == MutantStrict {
			op, clause = "||", "(1 == 1)"
		}
		lines[j] = fmt.Sprintf("%sif ((%s) %s %s)%s", indent, cond, op, clause, action)
	}
	return strings.Join(lines, "\n"), nil
}

// VerifyMutants confirms the oracle rejects both weakened forms of a
// validated patch. It returns an error when a mutant slips through —
// an oracle defect, not a transfer defect.
func VerifyMutants(p *Pair, patchedSrc string) error {
	for _, mode := range []MutantMode{MutantLenient, MutantStrict} {
		weak, err := WeakenPatch(p.Recipient.Source, patchedSrc, mode)
		if err != nil {
			return err
		}
		if oerr := VerifyTransfer(p, weak); oerr == nil {
			return fmt.Errorf("mutant: oracle accepted the %s mutant patch", mode)
		}
	}
	return nil
}
