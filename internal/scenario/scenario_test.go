package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/fuzz"
	"codephage/internal/hachoir"
)

// TestGeneratorDeterministic pins that a pair is a pure function of
// its seed: sources, inputs and ground truth reproduce byte for byte.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, err := GeneratePair(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := GeneratePair(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Recipient.Source != b.Recipient.Source ||
			a.Donor.Source != b.Donor.Source ||
			a.Naive.Source != b.Naive.Source {
			t.Fatalf("seed %d: generated sources differ across runs", seed)
		}
		if !bytes.Equal(a.SeedInput, b.SeedInput) || !bytes.Equal(a.ErrorInput, b.ErrorInput) {
			t.Fatalf("seed %d: generated inputs differ across runs", seed)
		}
		if len(a.Benign) != len(b.Benign) {
			t.Fatalf("seed %d: benign suite size differs", seed)
		}
		for i := range a.Benign {
			if !bytes.Equal(a.Benign[i], b.Benign[i]) {
				t.Fatalf("seed %d: benign input %d differs", seed, i)
			}
		}
	}
}

// TestGeneratorCoverage checks the generator exercises every format
// and every error class across a modest seed range.
func TestGeneratorCoverage(t *testing.T) {
	formats := map[string]bool{}
	kinds := map[apps.ErrorKind]bool{}
	for seed := int64(1); seed <= 80; seed++ {
		p, err := GeneratePair(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		formats[p.Format] = true
		kinds[p.Kind] = true
	}
	if len(formats) != len(formatSpecs) {
		t.Errorf("only %d/%d formats generated: %v", len(formats), len(formatSpecs), formats)
	}
	for _, k := range []apps.ErrorKind{apps.Overflow, apps.OOB, apps.DivZero} {
		if !kinds[k] {
			t.Errorf("error class %q never generated", k)
		}
	}
}

// TestGeneratedSeedsFeedFuzz confirms generated recipients plug into
// the fuzzing front end: a campaign from the generated seed input
// must find a crash on the defective recipient without being told the
// error input.
func TestGeneratedSeedsFeedFuzz(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 12 && found < 4; seed++ {
		p, err := GeneratePair(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Kind == apps.Overflow || p.defect == defOffByOne {
			// Overflow inputs come from DIODE (§4.1), and the off-by-one
			// needs an exact table-size match no corner sweep guesses;
			// fuzzing's classes here are divide-by-zero and the shift.
			continue
		}
		mod, err := compile.Cached(p.Recipient.Name, p.Recipient.Source)
		if err != nil {
			t.Fatal(err)
		}
		dissector, ok := hachoir.ByName(p.Format)
		if !ok {
			t.Fatalf("no dissector %q", p.Format)
		}
		dis, err := dissector.Dissect(p.SeedInput)
		if err != nil {
			t.Fatal(err)
		}
		crash := fuzz.Find(mod, p.SeedInput, dis, fuzz.Options{})
		if crash == nil {
			t.Errorf("seed %d (%s/%v): fuzzing found no crash from the generated seed", seed, p.Format, p.Kind)
			continue
		}
		found++
	}
	if found == 0 {
		t.Fatal("no fuzzable pair in the seed range")
	}
}

// TestRegistryRegistration pins the registry round trip generated
// suites rely on: registered applications and targets resolve through
// the same lookups catalogued ones do, and Unregister retires them.
func TestRegistryRegistration(t *testing.T) {
	p, err := GeneratePair(424242)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.Register(p.Recipient, p.Donor, p.Naive); err != nil {
		t.Fatal(err)
	}
	defer apps.Unregister(func(name string) bool {
		return name == p.Recipient.Name || name == p.Donor.Name || name == p.Naive.Name
	})
	if err := apps.RegisterTargets(p.Target); err != nil {
		t.Fatal(err)
	}
	if _, err := apps.ByName(p.Recipient.Name); err != nil {
		t.Errorf("registered recipient not resolvable: %v", err)
	}
	if _, err := apps.TargetByID(p.Recipient.Name, p.Target.ID); err != nil {
		t.Errorf("registered target not resolvable: %v", err)
	}
	if err := apps.Register(p.Recipient); err == nil {
		t.Error("duplicate registration not rejected")
	}
	foundDonor := false
	for _, d := range apps.DonorsForFormat(p.Format) {
		if d.Name == p.Donor.Name {
			foundDonor = true
		}
	}
	if !foundDonor {
		t.Error("registered donor missing from DonorsForFormat")
	}
	apps.Unregister(func(name string) bool {
		return name == p.Recipient.Name || name == p.Donor.Name || name == p.Naive.Name
	})
	if _, err := apps.ByName(p.Recipient.Name); err == nil {
		t.Error("unregistered recipient still resolvable")
	}
	if _, err := apps.TargetByID(p.Recipient.Name, p.Target.ID); err == nil {
		t.Error("unregistered target still resolvable")
	}
}

// TestConformanceShort is the smoke-sized conformance suite: a
// handful of pairs through the full local production path —
// corpus indexing, auto donor selection, the batch engine — each
// validated by the differential oracle, with the mutant meta-check
// confirming the oracle rejects both weakened patch forms.
func TestConformanceShort(t *testing.T) {
	rep, err := Run(Options{Seed: 4100, Count: 8, Mutant: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("%s (%s/%s): %s\n  reproduce: %s", f.Name, f.Format, f.Kind, f.Err, f.Repro)
	}
}

// TestConformanceHTTP drives a suite through phaged over real HTTP
// (soak mode): generated applications registered in the registry, a
// server scoped to the suite's donors, every transfer a donor:"auto"
// request, every result oracle-validated.
func TestConformanceHTTP(t *testing.T) {
	count := 6
	if !testing.Short() {
		count = 16
	}
	rep, err := Run(Options{Seed: 4200, Count: count, Mutant: true, HTTP: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("%s (%s/%s): %s\n  reproduce: %s", f.Name, f.Format, f.Kind, f.Err, f.Repro)
	}
}

// TestConformanceSuite is the full fixed-seed conformance run the CI
// scenario step executes: 100 generated pairs through auto-selection,
// transfer and the differential oracle, with the mutant-patch mode
// required to be caught on every pair. Any failure names the pair
// seed and the one command that reproduces it.
func TestConformanceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance suite skipped in -short (see the CI scenario step)")
	}
	rep, err := Run(Options{Seed: 6000, Count: 100, Mutant: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d pairs in %dms, %d failed", rep.Count, rep.Wall, rep.Failed)
	for _, f := range rep.Failures() {
		t.Errorf("%s (%s/%s): %s\n  reproduce: %s", f.Name, f.Format, f.Kind, f.Err, f.Repro)
	}
}

// TestSuiteDeterministic pins that a whole suite — selection,
// transfer, oracle — reproduces identically from its seed.
func TestSuiteDeterministic(t *testing.T) {
	count := 8
	if !testing.Short() {
		count = 25
	}
	a, err := Run(Options{Seed: 5100, Count: count, Mutant: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 5100, Count: count, Mutant: true})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Outcomes)
	jb, _ := json.Marshal(b.Outcomes)
	if !bytes.Equal(ja, jb) {
		t.Error("suite outcomes differ across identical runs")
	}
}

// TestSingleSuiteSelectsGuardDonor pins the ranking property the
// naive decoy encodes: in a one-pair suite the only candidates are
// the pair's guarding donor and its check-free decoy, so selection
// must resolve the guarding donor directly (Guard true) — a ranking
// regression cannot hide behind cross-pair healing or ranked-retry
// fallback here.
func TestSingleSuiteSelectsGuardDonor(t *testing.T) {
	for seed := int64(4400); seed < 4406; seed++ {
		rep, err := Run(Options{Seed: seed, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := rep.Outcomes[0]
		if out.Failed() {
			t.Errorf("seed %d: %s", seed, out.Err)
			continue
		}
		if !out.Guard {
			t.Errorf("seed %d: selection resolved %s, want the pair's guarding donor", seed, out.Donor)
		}
	}
}

// TestOracleRejectsUnpatched pins the oracle's baseline judgment: the
// unpatched recipient itself must fail verification (the error input
// still traps), and a hand-weakened patch must too.
func TestOracleRejectsUnpatched(t *testing.T) {
	p, err := GeneratePair(4300)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTransfer(p, p.Recipient.Source); err == nil {
		t.Error("oracle accepted the unpatched recipient")
	}
}
