package vm

import (
	"sort"

	"codephage/internal/ir"
)

// heapAlign is the allocation alignment; heapGap is the redzone
// between heap blocks so overruns hit unmapped space, not a neighbour.
// The heap is paged and lazily materialised, so multi-gigabyte
// allocations (the pre-wrap sizes 32-bit programs request) succeed
// virtually, as they do under a real OS, and only touched pages cost
// memory.
const (
	heapAlign    = 16
	heapGap      = 16
	heapPageSize = 1024
)

// heapCheck validates a heap access against the live block table.
func (v *VM) heapCheck(addr uint64, n int, write bool) int64 {
	kind := TrapOOBRead
	if write {
		kind = TrapOOBWrite
	}
	off := int64(addr - HeapBase)
	b := v.findBlock(off)
	if b == nil || !b.live || off+int64(n) > b.off+b.size {
		v.trap(kind, addr)
	}
	return off
}

// heapLoad reads n little-endian bytes from the paged heap.
func (v *VM) heapLoad(off int64, n int) uint64 {
	var val uint64
	for i := 0; i < n; i++ {
		o := off + int64(i)
		pg := v.pages[o/heapPageSize]
		if pg != nil {
			val |= uint64(pg[o%heapPageSize]) << (8 * i)
		}
	}
	return val
}

// heapStore writes n little-endian bytes to the paged heap.
func (v *VM) heapStore(off int64, n int, val uint64) {
	for i := 0; i < n; i++ {
		o := off + int64(i)
		pg := v.pages[o/heapPageSize]
		if pg == nil {
			pg = new([heapPageSize]byte)
			v.pages[o/heapPageSize] = pg
		}
		pg[o%heapPageSize] = byte(val >> (8 * i))
	}
}

// checkRange resolves a non-heap address to its backing slice and
// region offset, or traps.
func (v *VM) checkRange(addr uint64, n int, write bool) (buf []byte, off int) {
	kind := TrapOOBRead
	if write {
		kind = TrapOOBWrite
	}
	switch {
	case addr >= StackBase && addr+uint64(n) <= StackBase+StackSize:
		// Stack accesses must not reach below the live frames.
		if addr < v.sp {
			v.trap(kind, addr)
		}
		return v.stack, int(addr - StackBase)

	case addr >= GlobalBase && addr < HeapBase:
		off := int32(addr - GlobalBase)
		// The access must fall entirely within one global's block.
		for _, g := range v.Mod.GlobalBlocks {
			if off >= g.Off && off+int32(n) <= g.Off+g.Size {
				return v.globals, int(off)
			}
		}
		v.trap(kind, addr)
	}
	v.trap(TrapUnmapped, addr)
	return nil, 0
}

// findBlock locates the heap block containing offset off, if any.
func (v *VM) findBlock(off int64) *heapBlock {
	// Blocks are allocated bump-style, so offsets are sorted.
	i := sort.Search(len(v.blocks), func(i int) bool {
		return v.blocks[i].off+v.blocks[i].size > off
	})
	if i < len(v.blocks) && v.blocks[i].off <= off {
		return &v.blocks[i]
	}
	return nil
}

func (v *VM) loadMem(addr uint64, w ir.Width) uint64 {
	n := int(w.Bytes())
	if addr >= HeapBase && addr < StackBase {
		return v.heapLoad(v.heapCheck(addr, n, false), n)
	}
	buf, off := v.checkRange(addr, n, false)
	var val uint64
	for i := 0; i < n; i++ {
		val |= uint64(buf[off+i]) << (8 * i)
	}
	return val
}

func (v *VM) storeMem(addr uint64, w ir.Width, val uint64) {
	n := int(w.Bytes())
	if addr >= HeapBase && addr < StackBase {
		v.heapStore(v.heapCheck(addr, n, true), n, val)
		return
	}
	buf, off := v.checkRange(addr, n, true)
	for i := 0; i < n; i++ {
		buf[off+i] = byte(val >> (8 * i))
	}
}

// ReadScalar reads a little-endian scalar without trapping; ok is
// false if the address is not readable. Used by the recipient-side
// data structure traversal.
func (v *VM) ReadScalar(addr uint64, w ir.Width) (val uint64, ok bool) {
	n := int(w.Bytes())
	if addr >= HeapBase && addr < StackBase {
		off := int64(addr - HeapBase)
		b := v.findBlock(off)
		if b == nil || !b.live || off+int64(n) > b.off+b.size {
			return 0, false
		}
		return v.heapLoad(off, n), true
	}
	buf, off, readable := v.peekRange(addr, n)
	if !readable {
		return 0, false
	}
	for i := 0; i < n; i++ {
		val |= uint64(buf[off+i]) << (8 * i)
	}
	return val, true
}

// Readable reports whether [addr, addr+n) is readable memory.
func (v *VM) Readable(addr uint64, n int) bool {
	if addr >= HeapBase && addr < StackBase {
		off := int64(addr - HeapBase)
		b := v.findBlock(off)
		return b != nil && b.live && off+int64(n) <= b.off+b.size
	}
	_, _, ok := v.peekRange(addr, n)
	return ok
}

func (v *VM) peekRange(addr uint64, n int) ([]byte, int, bool) {
	switch {
	case addr >= StackBase && addr+uint64(n) <= StackBase+StackSize && addr >= v.sp:
		return v.stack, int(addr - StackBase), true
	case addr >= GlobalBase && addr < HeapBase:
		off := int32(addr - GlobalBase)
		for _, g := range v.Mod.GlobalBlocks {
			if off >= g.Off && off+int32(n) <= g.Off+g.Size {
				return v.globals, int(off), true
			}
		}
	}
	return nil, 0, false
}

// alloc carves a new heap block and returns its address, or 0 (NULL)
// if the size exceeds the heap limit (malloc failure on a 32-bit
// machine). Pages materialise lazily on first touch.
func (v *VM) alloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	if size > HeapLimit || uint64(v.heapTop)+size > uint64(StackBase-HeapBase)-heapPageSize {
		return 0
	}
	off := v.heapTop
	total := (int64(size) + heapGap + heapAlign - 1) / heapAlign * heapAlign
	v.heapTop += total
	v.blocks = append(v.blocks, heapBlock{off: off, size: int64(size), live: true})
	return HeapBase + uint64(off)
}

func (v *VM) freeBlock(addr uint64) {
	if addr == 0 {
		return // free(NULL) is a no-op
	}
	if addr < HeapBase || addr >= StackBase {
		v.trap(TrapBadFree, addr)
	}
	off := int64(addr - HeapBase)
	b := v.findBlock(off)
	if b == nil || b.off != off || !b.live {
		v.trap(TrapBadFree, addr)
	}
	b.live = false
}

// execBuiltin applies a builtin call; it returns true if the program
// halted (exit).
func (v *VM) execBuiltin(fr *frame, in *ir.Instr, args []uint64, ev *Event) bool {
	readBytes := func(n int) uint64 {
		ev.InOff = v.inPos
		var val uint64
		got := 0
		for i := 0; i < n && v.inPos < len(v.input); i++ {
			val = val<<8 | uint64(v.input[v.inPos])
			v.inPos++
			got++
		}
		ev.InLen = got
		// Short reads behave like fread past EOF: missing bytes are 0.
		val <<= 8 * uint(n-got)
		return val
	}
	bswap := func(val uint64, n int) uint64 {
		var out uint64
		for i := 0; i < n; i++ {
			out |= (val >> (8 * uint(n-1-i)) & 0xFF) << (8 * i)
		}
		return out
	}

	var ret uint64
	switch in.Builtin {
	case ir.BInU8:
		ret = readBytes(1)
	case ir.BInU16BE:
		ret = readBytes(2)
	case ir.BInU16LE:
		ret = bswap(readBytes(2), 2)
	case ir.BInU32BE:
		ret = readBytes(4)
	case ir.BInU32LE:
		ret = bswap(readBytes(4), 4)
	case ir.BInSeek:
		p := args[0]
		if p > uint64(len(v.input)) {
			p = uint64(len(v.input))
		}
		v.inPos = int(p)
	case ir.BInPos:
		ret = uint64(v.inPos)
	case ir.BInLen:
		ret = uint64(len(v.input))
	case ir.BInEOF:
		if v.inPos >= len(v.input) {
			ret = 1
		}
	case ir.BAlloc:
		ev.AllocSz = args[0]
		ret = v.alloc(args[0])
	case ir.BFree:
		v.freeBlock(args[0])
	case ir.BExit:
		v.exitCode = int32(args[0])
		ev.Val = args[0]
		return true
	case ir.BOut:
		v.output = append(v.output, args[0])
	case ir.BAbort:
		v.trap(TrapAbort, 0)
	default:
		v.trap(TrapUnmapped, uint64(in.Builtin))
	}
	fr.regs[in.Dst] = ret
	ev.Val = ret
	return false
}
