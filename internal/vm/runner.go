package vm

import "codephage/internal/ir"

// This file makes repeated executions of one module allocation-light.
// The validator replays the error input and the whole regression suite
// against every candidate patch; constructing a fresh VM per run costs
// a 1 MB stack plus globals and heap bookkeeping each time. A Runner
// keeps one VM and recycles those buffers between runs.

// Reset rewinds the VM to its initial state with a new input, reusing
// the stack, globals and heap structures of the previous run. Live
// stack memory is zeroed on frame entry and heap pages materialise on
// first touch, so no stale state from the previous run is observable.
func (v *VM) Reset(input []byte) {
	v.input = input
	v.inPos = 0
	if v.globals == nil {
		v.globals = append([]byte(nil), v.Mod.Globals...)
	} else {
		copy(v.globals, v.Mod.Globals)
	}
	clear(v.pages)
	v.heapTop = 0
	v.blocks = v.blocks[:0]
	v.sp = StackBase + StackSize
	v.frames = v.frames[:0]
	// Output escapes into Results that callers retain and compare
	// across runs, so it must not be recycled.
	v.output = nil
	v.steps = 0
	v.exitCode = 0
	v.mainRet = 0
}

// Runner executes one module over many inputs, reusing one VM's
// buffers between runs. Not safe for concurrent use; use one Runner
// per goroutine.
type Runner struct {
	// MaxSteps bounds each run (0 = the VM default).
	MaxSteps int64
	// Tracer observes each run's execution (nil = untraced). The
	// recycled path must be trace-identical to a fresh VM; the
	// differential tests rely on this hook to check it.
	Tracer Tracer
	v      *VM
}

// NewRunner prepares a reusable runner for the module.
func NewRunner(mod *ir.Module) *Runner {
	return &Runner{v: New(mod, nil)}
}

// Run executes the module on the input from a fresh initial state.
func (r *Runner) Run(input []byte) *Result {
	r.v.Reset(input)
	r.v.MaxSteps = r.MaxSteps
	r.v.Tracer = r.Tracer
	return r.v.Run()
}
