package vm

import (
	"codephage/internal/ir"
)

func signExtend(v uint64, w ir.Width) int64 {
	v &= w.Mask()
	if w < 64 && v&(uint64(1)<<(w-1)) != 0 {
		v |= ^w.Mask()
	}
	return int64(v)
}

func (v *VM) pushFrame(fn int32, args []uint64, retDst ir.Reg) {
	f := v.Mod.Funcs[fn]
	newSP := v.sp - uint64(f.FrameSize)
	if newSP < StackBase || len(v.frames) > 512 {
		v.trap(TrapStackOverflow, newSP)
	}
	// Zero the frame for deterministic behaviour (the regression
	// harness compares program outputs bit-for-bit).
	lo := newSP - StackBase
	for i := lo; i < lo+uint64(f.FrameSize); i++ {
		v.stack[i] = 0
	}
	v.sp = newSP
	fr := frame{fn: fn, regs: make([]uint64, f.NumRegs), fp: newSP, retDst: retDst}
	v.frames = append(v.frames, fr)
	// Store arguments into their frame slots.
	for i, p := range f.Params {
		v.storeMem(newSP+uint64(p.Off), p.W, args[i]&p.W.Mask())
	}
}

func (v *VM) popFrame(ret uint64) {
	fr := v.frames[len(v.frames)-1]
	f := v.Mod.Funcs[fr.fn]
	v.sp += uint64(f.FrameSize)
	v.frames = v.frames[:len(v.frames)-1]
	if len(v.frames) == 0 {
		v.mainRet = int32(ret)
		return
	}
	caller := &v.frames[len(v.frames)-1]
	if f.RetW != 0 {
		caller.regs[fr.retDst] = ret & f.RetW.Mask()
	} else {
		caller.regs[fr.retDst] = 0
	}
}

// emitEvent forwards an execution event to the tracer, if any.
func (v *VM) emitEvent(ev *Event) {
	if v.Tracer != nil {
		v.Tracer.Step(ev)
	}
}

// exec runs one instruction; it returns true if the program halted
// via exit().
func (v *VM) exec(fr *frame, f *ir.Function, in *ir.Instr) bool {
	ev := &v.ev
	*ev = Event{Fn: fr.fn, PC: fr.pc, In: in, Depth: len(v.frames) - 1, FP: fr.fp}
	nextPC := fr.pc + 1

	switch in.Op {
	case ir.Nop:

	case ir.ConstOp:
		fr.regs[in.Dst] = in.Imm & in.W.Mask()
		ev.Val = fr.regs[in.Dst]

	case ir.Mov:
		fr.regs[in.Dst] = fr.regs[in.A] & in.W.Mask()
		ev.A = fr.regs[in.A]
		ev.Val = fr.regs[in.Dst]

	case ir.ZExt:
		fr.regs[in.Dst] = fr.regs[in.A] & in.SrcW.Mask()
		ev.A = fr.regs[in.A]
		ev.Val = fr.regs[in.Dst]

	case ir.SExt:
		fr.regs[in.Dst] = uint64(signExtend(fr.regs[in.A], in.SrcW)) & in.W.Mask()
		ev.A = fr.regs[in.A]
		ev.Val = fr.regs[in.Dst]

	case ir.Trunc:
		fr.regs[in.Dst] = fr.regs[in.A] & in.W.Mask()
		ev.A = fr.regs[in.A]
		ev.Val = fr.regs[in.Dst]

	case ir.FrameAddr:
		fr.regs[in.Dst] = fr.fp + in.Imm
		ev.Val = fr.regs[in.Dst]

	case ir.GlobalAddr:
		fr.regs[in.Dst] = GlobalBase + in.Imm
		ev.Val = fr.regs[in.Dst]

	case ir.Load:
		addr := fr.regs[in.A]
		fr.regs[in.Dst] = v.loadMem(addr, in.W)
		ev.Addr = addr
		ev.Val = fr.regs[in.Dst]

	case ir.Store:
		addr := fr.regs[in.A]
		val := fr.regs[in.B] & in.W.Mask()
		v.storeMem(addr, in.W, val)
		ev.Addr = addr
		ev.B = val
		ev.Val = val

	case ir.Jmp:
		nextPC = in.Target

	case ir.Br:
		cond := fr.regs[in.A]
		ev.A = cond
		ev.Taken = cond != 0
		if cond != 0 {
			nextPC = in.Target
		} else {
			nextPC = in.Target2
		}

	case ir.Ret:
		var ret uint64
		if f.RetW != 0 {
			ret = fr.regs[in.A] & f.RetW.Mask()
		}
		ev.A = ret
		ev.Val = ret
		v.emitEvent(ev)
		v.popFrame(ret)
		return false

	case ir.Call:
		args := make([]uint64, len(in.Args))
		for i, r := range in.Args {
			args[i] = fr.regs[r]
		}
		ev.Args = args
		fr.pc = nextPC // resume point after return
		calleeFrame := v.sp - uint64(v.Mod.Funcs[in.Fn].FrameSize)
		ev.CalleeFP = calleeFrame
		v.pushFrame(in.Fn, args, in.Dst)
		v.emitEvent(ev)
		return false

	case ir.CallB:
		args := make([]uint64, len(in.Args))
		for i, r := range in.Args {
			args[i] = fr.regs[r]
		}
		ev.Args = args
		halted := v.execBuiltin(fr, in, args, ev)
		if halted {
			v.emitEvent(ev)
			return true
		}

	default:
		if in.Op.IsBinary() {
			a := fr.regs[in.A] & in.W.Mask()
			b := fr.regs[in.B] & in.W.Mask()
			fr.regs[in.Dst] = v.binOp(in.Op, in.W, a, b)
			ev.A, ev.B = a, b
			ev.Val = fr.regs[in.Dst]
			break
		}
		v.trap(TrapUnmapped, uint64(in.Op)) // unreachable on validated modules
	}

	fr.pc = nextPC
	v.emitEvent(ev)
	return false
}

func (v *VM) binOp(op ir.Op, w ir.Width, a, b uint64) uint64 {
	boolVal := func(x bool) uint64 {
		if x {
			return 1
		}
		return 0
	}
	switch op {
	case ir.Add:
		return (a + b) & w.Mask()
	case ir.Sub:
		return (a - b) & w.Mask()
	case ir.Mul:
		return (a * b) & w.Mask()
	case ir.UDiv:
		if b == 0 {
			v.trap(TrapDivZero, 0)
		}
		return (a / b) & w.Mask()
	case ir.SDiv:
		if b == 0 {
			v.trap(TrapDivZero, 0)
		}
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == -1 && sa == -(1<<(w-1)) {
			return a // INT_MIN / -1 wraps
		}
		return uint64(sa/sb) & w.Mask()
	case ir.URem:
		if b == 0 {
			v.trap(TrapDivZero, 0)
		}
		return (a % b) & w.Mask()
	case ir.SRem:
		if b == 0 {
			v.trap(TrapDivZero, 0)
		}
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == -1 && sa == -(1<<(w-1)) {
			return 0
		}
		return uint64(sa%sb) & w.Mask()
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		if b >= uint64(w) {
			return 0
		}
		return (a << b) & w.Mask()
	case ir.LShr:
		if b >= uint64(w) {
			return 0
		}
		return a >> b
	case ir.AShr:
		if b >= uint64(w) {
			if signExtend(a, w) < 0 {
				return w.Mask()
			}
			return 0
		}
		return uint64(signExtend(a, w)>>b) & w.Mask()
	case ir.Eq:
		return boolVal(a == b)
	case ir.Ne:
		return boolVal(a != b)
	case ir.ULt:
		return boolVal(a < b)
	case ir.ULe:
		return boolVal(a <= b)
	case ir.SLt:
		return boolVal(signExtend(a, w) < signExtend(b, w))
	case ir.SLe:
		return boolVal(signExtend(a, w) <= signExtend(b, w))
	}
	panic("vm: bad binary op")
}
