// Package vm executes MVX modules with always-on memory checking
// (bounds-checked heap blocks and globals, divide-by-zero traps) and a
// pluggable execution tracer. The combination of instrumented
// execution and memcheck stands in for the paper's Valgrind substrate:
// the taint tracker mirrors instruction semantics through the Tracer
// interface, and error-triggering inputs manifest as traps exactly
// where Valgrind memcheck would report them.
package vm

import (
	"fmt"

	"codephage/internal/ir"
)

// Region base addresses. Address 0 is never mapped (null).
const (
	GlobalBase = 0x0000_0000_0001_0000
	HeapBase   = 0x0000_0001_0000_0000 // heap address region: 124 GB
	StackBase  = 0x0000_0020_0000_0000
	StackSize  = 1 << 20
	HeapLimit  = 0xF000_0000 // alloc beyond ~3.75 GB returns NULL, like 32-bit malloc
)

// TrapKind classifies fatal runtime errors.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapOOBRead
	TrapOOBWrite
	TrapDivZero
	TrapUnmapped
	TrapStackOverflow
	TrapBadFree
	TrapAbort
	TrapStepLimit
)

var trapNames = [...]string{
	TrapNone: "none", TrapOOBRead: "out-of-bounds read",
	TrapOOBWrite: "out-of-bounds write", TrapDivZero: "divide by zero",
	TrapUnmapped: "unmapped address", TrapStackOverflow: "stack overflow",
	TrapBadFree: "invalid free", TrapAbort: "abort",
	TrapStepLimit: "instruction budget exceeded",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return fmt.Sprintf("trap(%d)", uint8(k))
}

// Trap describes a fatal runtime error with its location.
type Trap struct {
	Kind TrapKind
	Fn   int32
	PC   int32
	Line int32
	Addr uint64
}

func (t *Trap) Error() string {
	return fmt.Sprintf("%s at fn%d+%d (line %d, addr %#x)", t.Kind, t.Fn, t.PC, t.Line, t.Addr)
}

// Result is the outcome of a program run.
type Result struct {
	ExitCode int32
	Trap     *Trap // nil on clean termination
	Output   []uint64
	Steps    int64
}

// OK reports whether the run terminated without a trap.
func (r *Result) OK() bool { return r.Trap == nil }

// Event describes one executed instruction to a Tracer. The tracer
// mirrors semantics from these events (like a Valgrind tool's
// instrumented IR). Fields beyond Fn/PC/In are populated as relevant.
type Event struct {
	Fn    int32
	PC    int32
	In    *ir.Instr
	Depth int    // call depth of the executing frame
	FP    uint64 // frame pointer of the executing frame

	Val   uint64   // result written to In.Dst
	A, B  uint64   // operand values
	Addr  uint64   // Load/Store effective address
	Taken bool     // Br direction
	Args  []uint64 // Call/CallB argument values

	CalleeFP uint64 // Call: new frame's frame pointer
	InOff    int    // input-reading builtin: first input byte consumed
	InLen    int    // input-reading builtin: number of bytes consumed
	AllocSz  uint64 // BAlloc: requested size
}

// Tracer observes execution. Step is called after each instruction's
// effects are applied (except traps, which abort the run).
type Tracer interface {
	Step(ev *Event)
}

type heapBlock struct {
	off  int64 // offset within the heap region
	size int64
	live bool
}

type frame struct {
	fn     int32
	pc     int32
	regs   []uint64
	fp     uint64
	retDst ir.Reg
}

// VM executes one module on one input.
type VM struct {
	Mod      *ir.Module
	Tracer   Tracer
	MaxSteps int64 // 0 = default (20M)

	input    []byte
	inPos    int
	globals  []byte
	pages    map[int64]*[heapPageSize]byte
	heapTop  int64
	blocks   []heapBlock
	stack    []byte
	sp       uint64 // current stack frame base address
	frames   []frame
	output   []uint64
	steps    int64
	exitCode int32
	mainRet  int32
	ev       Event
}

// New prepares a VM for the module and input.
func New(mod *ir.Module, input []byte) *VM {
	v := &VM{Mod: mod, input: input}
	v.globals = append([]byte(nil), mod.Globals...)
	v.pages = map[int64]*[heapPageSize]byte{}
	v.sp = StackBase + StackSize
	v.stack = make([]byte, StackSize)
	return v
}

type trapPanic struct{ t *Trap }

func (v *VM) trap(kind TrapKind, addr uint64) {
	t := &Trap{Kind: kind, Addr: addr}
	if len(v.frames) > 0 {
		fr := &v.frames[len(v.frames)-1]
		t.Fn, t.PC = fr.fn, fr.pc
		f := v.Mod.Funcs[fr.fn]
		if int(fr.pc) < len(f.Code) {
			t.Line = f.Code[fr.pc].Line
		}
	}
	panic(trapPanic{t})
}

// Run executes the module's entry function to completion.
func (v *VM) Run() (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(trapPanic)
			if !ok {
				panic(r)
			}
			res = &Result{ExitCode: -1, Trap: tp.t, Output: v.output, Steps: v.steps}
		}
	}()
	maxSteps := v.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 20_000_000
	}

	v.pushFrame(v.Mod.Entry, nil, 0)
	for len(v.frames) > 0 {
		if v.steps >= maxSteps {
			v.trap(TrapStepLimit, 0)
		}
		v.steps++
		fr := &v.frames[len(v.frames)-1]
		f := v.Mod.Funcs[fr.fn]
		in := &f.Code[fr.pc]
		if halted := v.exec(fr, f, in); halted {
			return &Result{ExitCode: v.exitCode, Output: v.output, Steps: v.steps}
		}
	}
	// main returned normally; its return value is the exit code.
	return &Result{ExitCode: v.mainRet, Output: v.output, Steps: v.steps}
}

// Steps returns the number of instructions executed so far.
func (v *VM) Steps() int64 { return v.steps }
