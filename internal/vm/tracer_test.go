package vm

import (
	"testing"

	"codephage/internal/compile"
	"codephage/internal/ir"
)

// recordingTracer captures every event for inspection.
type recordingTracer struct{ events []Event }

func (r *recordingTracer) Step(ev *Event) {
	e := *ev
	e.Args = append([]uint64(nil), ev.Args...)
	r.events = append(r.events, e)
}

func traceEvents(t *testing.T, src string, input []byte) []Event {
	t.Helper()
	mod, err := compile.CompileSource("trace", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := &recordingTracer{}
	v := New(mod, input)
	v.Tracer = tr
	if r := v.Run(); !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	return tr.events
}

func TestTracerBranchEvents(t *testing.T) {
	evs := traceEvents(t, `
void main() {
	u32 v = (u32)in_u8();
	if (v > 5) {
		out(1);
	} else {
		out(0);
	}
}
`, []byte{9})
	var brs []Event
	for _, e := range evs {
		if e.In.Op == ir.Br {
			brs = append(brs, e)
		}
	}
	if len(brs) != 1 {
		t.Fatalf("branch events = %d, want 1", len(brs))
	}
	if !brs[0].Taken {
		t.Error("v > 5 must be taken for v = 9")
	}
	if brs[0].A == 0 {
		t.Error("branch condition operand value missing")
	}
}

func TestTracerCallRetEvents(t *testing.T) {
	evs := traceEvents(t, `
u32 add(u32 a, u32 b) {
	return a + b;
}
void main() {
	out((u64)add(2, 3));
}
`, nil)
	var call, ret *Event
	for i := range evs {
		switch evs[i].In.Op {
		case ir.Call:
			call = &evs[i]
		case ir.Ret:
			if evs[i].Depth == 1 && ret == nil {
				ret = &evs[i]
			}
		}
	}
	if call == nil || ret == nil {
		t.Fatal("missing call or ret event")
	}
	if len(call.Args) != 2 || call.Args[0] != 2 || call.Args[1] != 3 {
		t.Errorf("call args = %v", call.Args)
	}
	if call.CalleeFP == 0 || call.CalleeFP >= call.FP {
		t.Errorf("callee fp %#x not below caller fp %#x", call.CalleeFP, call.FP)
	}
	if ret.Val != 5 {
		t.Errorf("ret value = %d, want 5", ret.Val)
	}
	if ret.Depth != 1 {
		t.Errorf("ret depth = %d, want 1", ret.Depth)
	}
}

func TestTracerInputEvents(t *testing.T) {
	evs := traceEvents(t, `
void main() {
	u32 a = (u32)in_u16be();
	u32 b = (u32)in_u8();
	out((u64)(a + b));
}
`, []byte{1, 2, 3})
	var reads []Event
	for _, e := range evs {
		if e.In.Op == ir.CallB && e.InLen > 0 {
			reads = append(reads, e)
		}
	}
	if len(reads) != 2 {
		t.Fatalf("input read events = %d, want 2", len(reads))
	}
	if reads[0].InOff != 0 || reads[0].InLen != 2 {
		t.Errorf("first read at %d len %d, want 0/2", reads[0].InOff, reads[0].InLen)
	}
	if reads[1].InOff != 2 || reads[1].InLen != 1 {
		t.Errorf("second read at %d len %d, want 2/1", reads[1].InOff, reads[1].InLen)
	}
	if reads[0].Val != 0x0102 {
		t.Errorf("read value = %#x", reads[0].Val)
	}
}

func TestTracerAllocEvent(t *testing.T) {
	evs := traceEvents(t, `
void main() {
	u8* p = alloc(40);
	if (p == 0) { exit(1); }
	free(p);
}
`, nil)
	found := false
	for _, e := range evs {
		if e.In.Op == ir.CallB && e.In.Builtin == ir.BAlloc {
			found = true
			if e.AllocSz != 40 {
				t.Errorf("alloc size = %d, want 40", e.AllocSz)
			}
			if e.Val < HeapBase {
				t.Errorf("alloc returned %#x outside heap", e.Val)
			}
		}
	}
	if !found {
		t.Fatal("no alloc event")
	}
}

func TestTracerLoadStoreAddresses(t *testing.T) {
	evs := traceEvents(t, `
u32 g;
void main() {
	g = 7;
	out((u64)g);
}
`, nil)
	var store, load *Event
	for i := range evs {
		switch evs[i].In.Op {
		case ir.Store:
			store = &evs[i]
		case ir.Load:
			if load == nil && evs[i].Addr >= GlobalBase && evs[i].Addr < HeapBase {
				load = &evs[i]
			}
		}
	}
	if store == nil || load == nil {
		t.Fatal("missing store or load event")
	}
	if store.Addr != load.Addr {
		t.Errorf("store addr %#x != load addr %#x", store.Addr, load.Addr)
	}
	if store.B != 7 || load.Val != 7 {
		t.Errorf("store value %d, load value %d", store.B, load.Val)
	}
}
