package vm

import (
	"testing"

	"codephage/internal/compile"
	"codephage/internal/ir"
)

func run(t *testing.T, src string, input []byte) *Result {
	t.Helper()
	mod, err := compile.CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(mod, input).Run()
}

func wantOutput(t *testing.T, r *Result, want ...uint64) {
	t.Helper()
	if !r.OK() {
		t.Fatalf("trapped: %v", r.Trap)
	}
	if len(r.Output) != len(want) {
		t.Fatalf("output = %v, want %v", r.Output, want)
	}
	for i := range want {
		if r.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", r.Output, want)
		}
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	r := run(t, `
u32 sum_to(u32 n) {
	u32 s = 0;
	u32 i = 1;
	while (i <= n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
void main() {
	out(sum_to(10));
	out(sum_to(0));
	out(sum_to(100));
}
`, nil)
	wantOutput(t, r, 55, 0, 5050)
}

func TestIntegerPromotionOverflow(t *testing.T) {
	// u16 * u16 happens at 32 bits (C promotion): 60000*60000 wraps
	// nothing at 32 bits (3.6e9 > 2^31 but < 2^32... it equals
	// 3600000000 which fits in u32 but the promoted type is i32 —
	// signed overflow wraps in our two's complement model).
	r := run(t, `
void main() {
	u16 a = 60000;
	u16 b = 60000;
	u32 p = (u32)(a * b);
	out(p);
	u64 q = (u64)a * (u64)b;
	out(q);
}
`, nil)
	wantOutput(t, r, 3600000000, 3600000000)
}

func TestOverflowWraps32(t *testing.T) {
	r := run(t, `
void main() {
	u32 a = 100000;
	u32 b = 100000;
	out(a * b); /* 10^10 mod 2^32 */
}
`, nil)
	wantOutput(t, r, 10000000000%(1<<32))
}

func TestSignedArithmetic(t *testing.T) {
	r := run(t, `
void main() {
	i32 a = 0 - 7;
	i32 b = 2;
	out((u64)(u32)(a / b));
	out((u64)(u32)(a % b));
	out((u64)(u32)(a >> 1));
	i32 c = 0 - 1;
	if (c < 0) { out(1); } else { out(0); }
	u32 d = 0xFFFFFFFF;
	if (d > 0) { out(1); } else { out(0); }
}
`, nil)
	wantOutput(t, r,
		uint64(uint32(0xFFFFFFFD)), // -3
		uint64(uint32(0xFFFFFFFF)), // -1
		uint64(uint32(0xFFFFFFFC)), // -4 (arithmetic shift)
		1, 1)
}

func TestStructsPointersArrays(t *testing.T) {
	r := run(t, `
struct Point { i32 x; i32 y; };
struct Rect { Point a; Point b; u32 tag; };

u32 area(Rect* r) {
	i32 w = r->b.x - r->a.x;
	i32 h = r->b.y - r->a.y;
	return (u32)(w * h);
}

u32 table[8];

void main() {
	Rect r;
	r.a.x = 2; r.a.y = 3;
	r.b.x = 12; r.b.y = 13;
	r.tag = 7;
	out(area(&r));
	Point* p = &r.a;
	p->x = 0;
	out(area(&r));
	u32 i = 0;
	while (i < 8) { table[i] = i * i; i = i + 1; }
	out(table[7]);
	u32* tp = table;
	out(tp[3]);
}
`, nil)
	wantOutput(t, r, 100, 120, 49, 9)
}

func TestHeapAllocAndBounds(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = alloc(16);
	if (p == 0) { exit(2); }
	u32 i = 0;
	while (i < 16) { p[i] = (u8)i; i = i + 1; }
	out(p[15]);
	free(p);
}
`, nil)
	wantOutput(t, r, 15)
}

func TestHeapOOBWriteTraps(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = alloc(16);
	p[16] = 1; /* one past the end */
}
`, nil)
	if r.OK() || r.Trap.Kind != TrapOOBWrite {
		t.Fatalf("expected OOB write trap, got %+v", r)
	}
}

func TestUseAfterFreeTraps(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = alloc(8);
	free(p);
	p[0] = 1;
}
`, nil)
	if r.OK() || r.Trap.Kind != TrapOOBWrite {
		t.Fatalf("expected OOB write trap, got %+v", r)
	}
}

func TestDoubleFreeTraps(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = alloc(8);
	free(p);
	free(p);
}
`, nil)
	if r.OK() || r.Trap.Kind != TrapBadFree {
		t.Fatalf("expected bad free trap, got %+v", r)
	}
}

func TestGlobalOOBTraps(t *testing.T) {
	r := run(t, `
u8 buf[8];
u32 x = 5;
void main() {
	u32 i = 0;
	while (i < 9) { buf[i] = 1; i = i + 1; }
}
`, nil)
	if r.OK() || r.Trap.Kind != TrapOOBWrite {
		t.Fatalf("expected OOB write trap on global buffer, got %+v", r)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	r := run(t, `
void main() {
	u32 n = in_u16be();
	u32 d = in_u16be();
	out(n / d);
}
`, []byte{0, 10, 0, 0})
	if r.OK() || r.Trap.Kind != TrapDivZero {
		t.Fatalf("expected div-zero trap, got %+v", r)
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = 0;
	p[0] = 1;
}
`, nil)
	if r.OK() || (r.Trap.Kind != TrapUnmapped && r.Trap.Kind != TrapOOBWrite) {
		t.Fatalf("expected unmapped trap, got %+v", r)
	}
}

func TestMallocFailureReturnsNull(t *testing.T) {
	r := run(t, `
void main() {
	u8* p = alloc(0xFFFFFF00); /* ~4 GB: must fail like malloc */
	if (p == 0) { out(1); } else { out(0); }
}
`, nil)
	wantOutput(t, r, 1)
}

func TestInputBuiltins(t *testing.T) {
	r := run(t, `
void main() {
	out(in_len());
	out(in_u8());
	out(in_u16be());
	out(in_u16le());
	out(in_pos());
	in_seek(0);
	out(in_u32be());
	out(in_eof());
	in_seek(5);
	out(in_eof());
}
`, []byte{0x11, 0x22, 0x33, 0x44, 0x55})
	wantOutput(t, r, 5, 0x11, 0x2233, 0x5544, 5, 0x11223344, 0, 1)
}

func TestShortReadYieldsZeros(t *testing.T) {
	r := run(t, `
void main() {
	out(in_u32be());
}
`, []byte{0xAB})
	wantOutput(t, r, 0xAB000000)
}

func TestExitCode(t *testing.T) {
	r := run(t, `
void main() {
	exit(3);
	out(99); /* unreachable */
}
`, nil)
	if !r.OK() || r.ExitCode != 3 {
		t.Fatalf("exit code = %d (trap %v), want 3", r.ExitCode, r.Trap)
	}
	if len(r.Output) != 0 {
		t.Fatalf("output after exit: %v", r.Output)
	}
}

func TestMainReturnValueIsExitCode(t *testing.T) {
	r := run(t, `
i32 main() {
	return 7;
}
`, nil)
	if !r.OK() || r.ExitCode != 7 {
		t.Fatalf("exit code = %d, want 7", r.ExitCode)
	}
}

func TestAbortTraps(t *testing.T) {
	r := run(t, `
void main() { abort(); }
`, nil)
	if r.OK() || r.Trap.Kind != TrapAbort {
		t.Fatalf("expected abort trap, got %+v", r)
	}
}

func TestStepLimit(t *testing.T) {
	mod, err := compile.CompileSource("spin", `
void main() { while (1) { } }
`)
	if err != nil {
		t.Fatal(err)
	}
	v := New(mod, nil)
	v.MaxSteps = 1000
	r := v.Run()
	if r.OK() || r.Trap.Kind != TrapStepLimit {
		t.Fatalf("expected step limit trap, got %+v", r)
	}
}

func TestRecursionAndStackOverflow(t *testing.T) {
	r := run(t, `
u32 fib(u32 n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void main() { out(fib(15)); }
`, nil)
	wantOutput(t, r, 610)

	r = run(t, `
u32 inf(u32 n) { return inf(n + 1); }
void main() { out(inf(0)); }
`, nil)
	if r.OK() || r.Trap.Kind != TrapStackOverflow {
		t.Fatalf("expected stack overflow, got %+v", r)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	r := run(t, `
u32 calls = 0;
u32 bump() { calls = calls + 1; return 1; }
void main() {
	if (0 && bump()) { }
	out(calls);
	if (1 || bump()) { }
	out(calls);
	if (1 && bump()) { }
	out(calls);
	if (0 || bump()) { }
	out(calls);
}
`, nil)
	wantOutput(t, r, 0, 0, 1, 2)
}

func TestGlobalInitializers(t *testing.T) {
	r := run(t, `
u32 a = 42;
u32 b = 1 << 10;
i32 c = 0 - 0; /* constant fold */
u16 d = 0xFFFF;
void main() {
	out(a);
	out(b);
	out(d);
}
`, nil)
	wantOutput(t, r, 42, 1024, 0xFFFF)
}

func TestPointerComparisonsAndNull(t *testing.T) {
	r := run(t, `
struct S { u32 v; };
void main() {
	S* p = 0;
	if (p == 0) { out(1); }
	S s;
	s.v = 9;
	p = &s;
	if (p != 0) { out(p->v); }
}
`, nil)
	wantOutput(t, r, 1, 9)
}

func TestSizeofIs32Bit(t *testing.T) {
	r := run(t, `
struct Big { u64 a; u8 b; };
void main() {
	out(sizeof(u32));
	out(sizeof(Big)); /* 8 + 1, padded to 16 */
	out(sizeof(u8*));
}
`, nil)
	wantOutput(t, r, 4, 16, 8)
}

func TestStrippedModuleStillRuns(t *testing.T) {
	mod, err := compile.CompileSource("strip", `
u32 twice(u32 x) { return x * 2; }
void main() { out(twice(21)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	mod.Strip()
	if mod.Types != nil || mod.GlobalVars != nil {
		t.Fatal("Strip left debug info behind")
	}
	r := New(mod, nil).Run()
	wantOutput(t, r, 42)
}

func TestModuleSerializationRoundTrip(t *testing.T) {
	mod, err := compile.CompileSource("ser", `
u32 g = 5;
u32 add(u32 a, u32 b) { return a + b; }
void main() { out(add(g, in_u8())); }
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ir.FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	r := New(back, []byte{37}).Run()
	wantOutput(t, r, 42)
}

func TestReadScalarAndReadable(t *testing.T) {
	mod, err := compile.CompileSource("peek", `
u32 g = 0xDEADBEEF;
void main() { out(g); }
`)
	if err != nil {
		t.Fatal(err)
	}
	v := New(mod, nil)
	if r := v.Run(); !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	val, ok := v.ReadScalar(GlobalBase+0, ir.W32)
	if !ok || val != 0xDEADBEEF {
		t.Fatalf("ReadScalar = %#x, %v", val, ok)
	}
	if v.Readable(0, 1) {
		t.Error("null readable")
	}
	if v.Readable(HeapBase, 1) {
		t.Error("unallocated heap readable")
	}
}

func BenchmarkVMFib20(b *testing.B) {
	mod, err := compile.CompileSource("fib", `
u32 fib(u32 n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void main() { out(fib(20)); }
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(mod, nil).Run()
		if !r.OK() {
			b.Fatal(r.Trap)
		}
	}
}

func TestBreakContinue(t *testing.T) {
	r := run(t, `
void main() {
	u32 i = 0;
	u32 sum = 0;
	while (i < 100) {
		i = i + 1;
		if (i == 3) {
			continue;
		}
		if (i > 5) {
			break;
		}
		sum = sum + i;
	}
	out(sum); /* 1+2+4+5 = 12 */
	out(i);   /* 6 */
}
`, nil)
	wantOutput(t, r, 12, 6)
}

func TestNestedLoopBreak(t *testing.T) {
	r := run(t, `
void main() {
	u32 total = 0;
	u32 i = 0;
	while (i < 3) {
		u32 j = 0;
		while (1) {
			if (j >= 4) {
				break;
			}
			total = total + 1;
			j = j + 1;
		}
		i = i + 1;
	}
	out(total); /* 3 * 4 */
}
`, nil)
	wantOutput(t, r, 12)
}
