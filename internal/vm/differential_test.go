package vm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codephage/internal/bitvec"
	"codephage/internal/ir"
)

// runBinOp executes a single ALU instruction on the VM.
func runBinOp(op ir.Op, w ir.Width, a, b uint64) (val uint64, trapped bool) {
	f := &ir.Function{
		Name: "main", NumRegs: 4, FrameSize: 0, RetW: ir.W64,
		Code: []ir.Instr{
			{Op: ir.ConstOp, W: ir.W64, Dst: 0, Imm: a},
			{Op: ir.ConstOp, W: ir.W64, Dst: 1, Imm: b},
			{Op: op, W: w, Dst: 2, A: 0, B: 1},
			{Op: ir.CallB, Builtin: ir.BOut, Dst: 3, Args: []ir.Reg{2}},
			{Op: ir.Ret, A: 2},
		},
	}
	mod := &ir.Module{Name: "alu", Funcs: []*ir.Function{f}, Entry: 0}
	r := New(mod, nil).Run()
	if r.Trap != nil {
		return 0, true
	}
	return r.Output[0], false
}

// bitvecOp mirrors the instruction in the symbolic domain.
func bitvecOp(op ir.Op, w ir.Width, a, b uint64) (uint64, bool) {
	mk := func(v uint64) *bitvec.Expr { return bitvec.Const(uint8(w), v) }
	var e *bitvec.Expr
	switch op {
	case ir.Add:
		e = bitvec.Add(mk(a), mk(b))
	case ir.Sub:
		e = bitvec.Sub(mk(a), mk(b))
	case ir.Mul:
		e = bitvec.Mul(mk(a), mk(b))
	case ir.UDiv:
		if b&w.Mask() == 0 {
			return 0, false // VM traps; symbolic domain diverges by design
		}
		e = bitvec.UDiv(mk(a), mk(b))
	case ir.SDiv:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.SDiv(mk(a), mk(b))
	case ir.URem:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.URem(mk(a), mk(b))
	case ir.SRem:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.SRem(mk(a), mk(b))
	case ir.And:
		e = bitvec.And(mk(a), mk(b))
	case ir.Or:
		e = bitvec.Or(mk(a), mk(b))
	case ir.Xor:
		e = bitvec.Xor(mk(a), mk(b))
	case ir.Shl:
		e = bitvec.Shl(mk(a), mk(b))
	case ir.LShr:
		e = bitvec.LShr(mk(a), mk(b))
	case ir.AShr:
		e = bitvec.AShr(mk(a), mk(b))
	case ir.Eq:
		e = cmpWide(bitvec.Eq(mk(a), mk(b)))
	case ir.Ne:
		e = cmpWide(bitvec.Ne(mk(a), mk(b)))
	case ir.ULt:
		e = cmpWide(bitvec.Ult(mk(a), mk(b)))
	case ir.ULe:
		e = cmpWide(bitvec.Ule(mk(a), mk(b)))
	case ir.SLt:
		e = cmpWide(bitvec.Slt(mk(a), mk(b)))
	case ir.SLe:
		e = cmpWide(bitvec.Sle(mk(a), mk(b)))
	default:
		return 0, false
	}
	v, err := bitvec.Eval(e, bitvec.MapEnv{})
	if err != nil {
		return 0, false
	}
	return v, true
}

func cmpWide(e *bitvec.Expr) *bitvec.Expr { return bitvec.ZExt(64, e) }

// TestVMAgreesWithBitvecSemantics cross-validates the two independent
// implementations of the arithmetic semantics: the interpreter and the
// symbolic expression evaluator the taint tracker relies on. Any
// divergence would silently corrupt excised checks.
func TestVMAgreesWithBitvecSemantics(t *testing.T) {
	ops := []ir.Op{
		ir.Add, ir.Sub, ir.Mul, ir.UDiv, ir.SDiv, ir.URem, ir.SRem,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.LShr, ir.AShr,
		ir.Eq, ir.Ne, ir.ULt, ir.ULe, ir.SLt, ir.SLe,
	}
	widths := []ir.Width{ir.W8, ir.W16, ir.W32, ir.W64}
	prop := func(a, b uint64, opIdx, wIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		w := widths[int(wIdx)%len(widths)]
		a &= w.Mask()
		b &= w.Mask()
		want, ok := bitvecOp(op, w, a, b)
		if !ok {
			// Division by zero: the VM must trap.
			if op == ir.UDiv || op == ir.SDiv || op == ir.URem || op == ir.SRem {
				_, trapped := runBinOp(op, w, a, b)
				return trapped
			}
			return true
		}
		got, trapped := runBinOp(op, w, a, b)
		if trapped {
			return false
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// ---- Fresh VM vs recycled Runner (the pooled path).
//
// The validator and the phaged service replay many inputs through one
// vm.Runner, whose Reset recycles the previous run's stack, globals
// and heap structures. Any state leaking across Reset would silently
// change validation verdicts, so randomized programs must execute
// trace-identically on a recycled Runner and on a fresh VM.

const diffMaxSteps = 4096

var genWidths = []ir.Width{ir.W8, ir.W16, ir.W32, ir.W64}

// genModule builds a random, structurally valid module: a main
// function mixing ALU ops, frame/global/heap memory traffic, input
// builtins, branches (mostly forward, occasionally backward) and calls
// into a small helper function. Programs may legitimately trap — both
// execution paths must then trap identically.
func genModule(r *rand.Rand) *ir.Module {
	const numRegs = 8
	helper := &ir.Function{
		Name: "helper", NumRegs: 4, FrameSize: 16,
		Params: []ir.Param{{Off: 0, W: ir.W32}},
		RetW:   ir.W32,
		Code: []ir.Instr{
			{Op: ir.FrameAddr, Dst: 0, Imm: 0},
			{Op: ir.Load, W: ir.W32, Dst: 1, A: 0},
			{Op: ir.ConstOp, W: ir.W32, Dst: 2, Imm: uint64(r.Intn(1 << 16))},
			{Op: ir.Add, W: ir.W32, Dst: 3, A: 1, B: 2},
			{Op: ir.Ret, A: 3},
		},
	}

	n := 16 + r.Intn(32)
	code := make([]ir.Instr, 0, n+3)
	// Registers 0 and 1 hold valid frame and global addresses so that
	// generated loads and stores hit mapped memory often enough to
	// exercise the recycled buffers, not only the trap paths.
	code = append(code,
		ir.Instr{Op: ir.FrameAddr, Dst: 0, Imm: uint64(r.Intn(7) * 8)},
		ir.Instr{Op: ir.GlobalAddr, Dst: 1, Imm: uint64(r.Intn(7) * 8)},
	)
	body := n - len(code)
	for i := 0; i < body; i++ {
		pc := len(code)
		last := pc == n-1
		if last {
			code = append(code, ir.Instr{Op: ir.Ret, A: ir.Reg(r.Intn(numRegs))})
			break
		}
		reg := func() ir.Reg { return ir.Reg(r.Intn(numRegs)) }
		memReg := func() ir.Reg {
			if r.Intn(4) != 0 {
				return ir.Reg(r.Intn(3)) // frame, global or alloc pointer
			}
			return reg()
		}
		w := genWidths[r.Intn(len(genWidths))]
		fwd := func() int32 { return int32(pc + 1 + r.Intn(n-pc-1)) }
		switch k := r.Intn(20); {
		case k < 6: // ALU
			op := ir.Add + ir.Op(r.Intn(int(ir.SLe-ir.Add)+1))
			code = append(code, ir.Instr{Op: op, W: w, Dst: reg(), A: reg(), B: reg()})
		case k < 8:
			code = append(code, ir.Instr{Op: ir.ConstOp, W: w, Dst: reg(), Imm: uint64(r.Int63())})
		case k < 9:
			conv := []ir.Op{ir.ZExt, ir.SExt, ir.Trunc}[r.Intn(3)]
			code = append(code, ir.Instr{Op: conv, W: w, SrcW: genWidths[r.Intn(len(genWidths))], Dst: reg(), A: reg()})
		case k < 11:
			code = append(code, ir.Instr{Op: ir.Load, W: w, Dst: reg(), A: memReg()})
		case k < 13:
			code = append(code, ir.Instr{Op: ir.Store, W: w, A: memReg(), B: reg()})
		case k < 15: // input/output builtins
			b := []ir.Builtin{ir.BInU8, ir.BInU16BE, ir.BInU16LE, ir.BInU32BE,
				ir.BInU32LE, ir.BInPos, ir.BInLen, ir.BInEOF}[r.Intn(8)]
			code = append(code, ir.Instr{Op: ir.CallB, Builtin: b, Dst: reg()})
		case k < 16: // heap traffic: alloc into r2, free r2 later
			if r.Intn(2) == 0 {
				code = append(code, ir.Instr{Op: ir.CallB, Builtin: ir.BAlloc, Dst: 2, Args: []ir.Reg{reg()}})
			} else {
				code = append(code, ir.Instr{Op: ir.CallB, Builtin: ir.BFree, Dst: 3, Args: []ir.Reg{2}})
			}
		case k < 17:
			code = append(code, ir.Instr{Op: ir.CallB, Builtin: ir.BOut, Dst: 3, Args: []ir.Reg{reg()}})
		case k < 18:
			code = append(code, ir.Instr{Op: ir.Call, Fn: 1, Dst: reg(), Args: []ir.Reg{reg()}})
		default: // control flow
			t1 := fwd()
			t2 := fwd()
			if r.Intn(8) == 0 {
				t2 = int32(r.Intn(pc + 1)) // occasional backward edge
			}
			if r.Intn(3) == 0 {
				code = append(code, ir.Instr{Op: ir.Jmp, Target: t1})
			} else {
				code = append(code, ir.Instr{Op: ir.Br, A: reg(), Target: t1, Target2: t2})
			}
		}
	}
	if code[len(code)-1].Op != ir.Ret {
		code = append(code, ir.Instr{Op: ir.Ret, A: 0})
	}

	main := &ir.Function{
		Name: "main", NumRegs: numRegs, FrameSize: 64, RetW: ir.W32, Code: code,
	}
	return &ir.Module{
		Name:         "randprog",
		Funcs:        []*ir.Function{main, helper},
		Entry:        0,
		Globals:      make([]byte, 64),
		GlobalBlocks: []ir.GlobalBlock{{Off: 0, Size: 64}},
	}
}

// diffTracer records the trace fields that define observable
// execution.
type diffTracer struct{ events []Event }

func (d *diffTracer) Step(ev *Event) {
	e := *ev
	e.Args = append([]uint64(nil), ev.Args...)
	d.events = append(d.events, e)
}

func sameTrap(a, b *Trap) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func compareRuns(t *testing.T, label string, want, got *Result, wantTr, gotTr *diffTracer) {
	t.Helper()
	if want.ExitCode != got.ExitCode || want.Steps != got.Steps || !sameTrap(want.Trap, got.Trap) {
		t.Fatalf("%s: result diverges: fresh={exit:%d steps:%d trap:%v} recycled={exit:%d steps:%d trap:%v}",
			label, want.ExitCode, want.Steps, want.Trap, got.ExitCode, got.Steps, got.Trap)
	}
	if len(want.Output) != len(got.Output) {
		t.Fatalf("%s: output lengths %d != %d", label, len(want.Output), len(got.Output))
	}
	for i := range want.Output {
		if want.Output[i] != got.Output[i] {
			t.Fatalf("%s: output[%d] = %d, fresh VM produced %d", label, i, got.Output[i], want.Output[i])
		}
	}
	if len(wantTr.events) != len(gotTr.events) {
		t.Fatalf("%s: trace lengths %d != %d", label, len(wantTr.events), len(gotTr.events))
	}
	for i := range wantTr.events {
		a, b := &wantTr.events[i], &gotTr.events[i]
		same := a.Fn == b.Fn && a.PC == b.PC && a.In == b.In && a.Depth == b.Depth &&
			a.FP == b.FP && a.Val == b.Val && a.A == b.A && a.B == b.B &&
			a.Addr == b.Addr && a.Taken == b.Taken && a.CalleeFP == b.CalleeFP &&
			a.InOff == b.InOff && a.InLen == b.InLen && a.AllocSz == b.AllocSz &&
			len(a.Args) == len(b.Args)
		for j := 0; same && j < len(a.Args); j++ {
			same = a.Args[j] == b.Args[j]
		}
		if !same {
			t.Fatalf("%s: trace event %d diverges:\n fresh:    %+v\n recycled: %+v", label, i, *a, *b)
		}
	}
}

// TestRunnerRecycledMatchesFreshVM cross-validates the two execution
// paths over randomized programs and inputs: a recycled Runner (the
// pooled path the validator and phaged workers use) must be
// bit-identical — results AND instruction-level traces — to a fresh VM
// per input. The Runner deliberately runs inputs back to back so every
// run after the first exercises Reset over dirtied state.
func TestRunnerRecycledMatchesFreshVM(t *testing.T) {
	programs := 200
	if testing.Short() {
		programs = 60
	}
	r := rand.New(rand.NewSource(0xC0DEFA6E))
	for p := 0; p < programs; p++ {
		mod := genModule(r)
		if err := mod.Validate(); err != nil {
			t.Fatalf("program %d: generator produced invalid module: %v", p, err)
		}
		runner := NewRunner(mod)
		runner.MaxSteps = diffMaxSteps
		for k := 0; k < 6; k++ {
			input := make([]byte, r.Intn(33))
			r.Read(input)
			if k == 0 {
				input = nil // empty-input edge case first
			}

			fresh := New(mod, input)
			fresh.MaxSteps = diffMaxSteps
			wantTr := &diffTracer{}
			fresh.Tracer = wantTr
			want := fresh.Run()

			gotTr := &diffTracer{}
			runner.Tracer = gotTr
			got := runner.Run(input)

			label := fmt.Sprintf("program %d input %d", p, k)
			compareRuns(t, label, want, got, wantTr, gotTr)
		}
	}
}
