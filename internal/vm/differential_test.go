package vm

import (
	"testing"
	"testing/quick"

	"codephage/internal/bitvec"
	"codephage/internal/ir"
)

// runBinOp executes a single ALU instruction on the VM.
func runBinOp(op ir.Op, w ir.Width, a, b uint64) (val uint64, trapped bool) {
	f := &ir.Function{
		Name: "main", NumRegs: 4, FrameSize: 0, RetW: ir.W64,
		Code: []ir.Instr{
			{Op: ir.ConstOp, W: ir.W64, Dst: 0, Imm: a},
			{Op: ir.ConstOp, W: ir.W64, Dst: 1, Imm: b},
			{Op: op, W: w, Dst: 2, A: 0, B: 1},
			{Op: ir.CallB, Builtin: ir.BOut, Dst: 3, Args: []ir.Reg{2}},
			{Op: ir.Ret, A: 2},
		},
	}
	mod := &ir.Module{Name: "alu", Funcs: []*ir.Function{f}, Entry: 0}
	r := New(mod, nil).Run()
	if r.Trap != nil {
		return 0, true
	}
	return r.Output[0], false
}

// bitvecOp mirrors the instruction in the symbolic domain.
func bitvecOp(op ir.Op, w ir.Width, a, b uint64) (uint64, bool) {
	mk := func(v uint64) *bitvec.Expr { return bitvec.Const(uint8(w), v) }
	var e *bitvec.Expr
	switch op {
	case ir.Add:
		e = bitvec.Add(mk(a), mk(b))
	case ir.Sub:
		e = bitvec.Sub(mk(a), mk(b))
	case ir.Mul:
		e = bitvec.Mul(mk(a), mk(b))
	case ir.UDiv:
		if b&w.Mask() == 0 {
			return 0, false // VM traps; symbolic domain diverges by design
		}
		e = bitvec.UDiv(mk(a), mk(b))
	case ir.SDiv:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.SDiv(mk(a), mk(b))
	case ir.URem:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.URem(mk(a), mk(b))
	case ir.SRem:
		if b&w.Mask() == 0 {
			return 0, false
		}
		e = bitvec.SRem(mk(a), mk(b))
	case ir.And:
		e = bitvec.And(mk(a), mk(b))
	case ir.Or:
		e = bitvec.Or(mk(a), mk(b))
	case ir.Xor:
		e = bitvec.Xor(mk(a), mk(b))
	case ir.Shl:
		e = bitvec.Shl(mk(a), mk(b))
	case ir.LShr:
		e = bitvec.LShr(mk(a), mk(b))
	case ir.AShr:
		e = bitvec.AShr(mk(a), mk(b))
	case ir.Eq:
		e = cmpWide(bitvec.Eq(mk(a), mk(b)))
	case ir.Ne:
		e = cmpWide(bitvec.Ne(mk(a), mk(b)))
	case ir.ULt:
		e = cmpWide(bitvec.Ult(mk(a), mk(b)))
	case ir.ULe:
		e = cmpWide(bitvec.Ule(mk(a), mk(b)))
	case ir.SLt:
		e = cmpWide(bitvec.Slt(mk(a), mk(b)))
	case ir.SLe:
		e = cmpWide(bitvec.Sle(mk(a), mk(b)))
	default:
		return 0, false
	}
	v, err := bitvec.Eval(e, bitvec.MapEnv{})
	if err != nil {
		return 0, false
	}
	return v, true
}

func cmpWide(e *bitvec.Expr) *bitvec.Expr { return bitvec.ZExt(64, e) }

// TestVMAgreesWithBitvecSemantics cross-validates the two independent
// implementations of the arithmetic semantics: the interpreter and the
// symbolic expression evaluator the taint tracker relies on. Any
// divergence would silently corrupt excised checks.
func TestVMAgreesWithBitvecSemantics(t *testing.T) {
	ops := []ir.Op{
		ir.Add, ir.Sub, ir.Mul, ir.UDiv, ir.SDiv, ir.URem, ir.SRem,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.LShr, ir.AShr,
		ir.Eq, ir.Ne, ir.ULt, ir.ULe, ir.SLt, ir.SLe,
	}
	widths := []ir.Width{ir.W8, ir.W16, ir.W32, ir.W64}
	prop := func(a, b uint64, opIdx, wIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		w := widths[int(wIdx)%len(widths)]
		a &= w.Mask()
		b &= w.Mask()
		want, ok := bitvecOp(op, w, a, b)
		if !ok {
			// Division by zero: the VM must trap.
			if op == ir.UDiv || op == ir.SDiv || op == ir.URem || op == ir.SRem {
				_, trapped := runBinOp(op, w, a, b)
				return trapped
			}
			return true
		}
		got, trapped := runBinOp(op, w, a, b)
		if trapped {
			return false
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
