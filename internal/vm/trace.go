package vm

import "codephage/internal/ir"

// TraceEvent is one externally observable action of a run: a builtin
// call that touches the input, the heap, or the output channel. The
// scenario differential oracle compares patched and unpatched
// recipients by these events: a patch that only adds a non-firing
// guard executes extra ALU instructions but produces an identical
// observable trace, while any behavioural divergence — an extra
// allocation, a skipped output, input consumed differently — shows up
// as a trace mismatch at the first differing event.
type TraceEvent struct {
	Builtin ir.Builtin
	// A and B carry the builtin's observable payload:
	//   in_u*           A = first input offset, B = value read
	//   in_seek         A = requested position
	//   in_pos/in_len/in_eof  A = value
	//   alloc           A = requested size, B = returned address
	//   free            A = freed address
	//   out             A = emitted value
	//   exit            A = exit code
	A, B uint64
}

// TraceRecorder is a Tracer that records the observable event trace
// of a run. Attach it to a VM or vm.Runner, run, then read Events.
// Reset clears the recording between runs on a recycled recorder.
type TraceRecorder struct {
	Events []TraceEvent
}

// Reset clears the recorded trace, retaining capacity.
func (t *TraceRecorder) Reset() { t.Events = t.Events[:0] }

// Step implements Tracer.
func (t *TraceRecorder) Step(ev *Event) {
	if ev.In.Op != ir.CallB {
		return
	}
	e := TraceEvent{Builtin: ev.In.Builtin}
	switch ev.In.Builtin {
	case ir.BInU8, ir.BInU16BE, ir.BInU16LE, ir.BInU32BE, ir.BInU32LE:
		e.A, e.B = uint64(ev.InOff), ev.Val
	case ir.BInSeek:
		e.A = ev.Args[0]
	case ir.BInPos, ir.BInLen, ir.BInEOF:
		e.A = ev.Val
	case ir.BAlloc:
		e.A, e.B = ev.AllocSz, ev.Val
	case ir.BFree:
		e.A = ev.Args[0]
	case ir.BOut, ir.BExit:
		e.A = ev.Args[0]
	}
	t.Events = append(t.Events, e)
}

// TraceEqual reports whether two observable traces are identical, and
// if not, the index of the first differing event (len of the shorter
// trace when one is a prefix of the other).
func TraceEqual(a, b []TraceEvent) (bool, int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false, i
		}
	}
	if len(a) != len(b) {
		return false, n
	}
	return true, 0
}
