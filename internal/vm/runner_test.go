package vm

import (
	"testing"

	"codephage/internal/compile"
	"codephage/internal/ir"
)

// runnerWorkload exercises every memory region across runs: globals
// (mutated each run), a heap block sized from the input, stack frames,
// and the output stream.
const runnerWorkload = `
u32 counter;
u8 scratch[8];
void main() {
	counter = counter + 1;
	u32 n = (u32)in_u8();
	scratch[3] = (u8)n;
	u8* buf = (u8*)alloc((u64)(n + 1));
	if (buf == 0) {
		exit(2);
	}
	buf[n] = (u8)counter;
	out((u64)counter);
	out((u64)buf[n]);
	out((u64)scratch[3]);
	free(buf);
	exit(0);
}
`

func compileSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := compile.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestRunnerMatchesFreshVM: every Reset must observe exactly the
// initial state — global mutations, heap blocks and outputs of the
// previous run must never leak into the next.
func TestRunnerMatchesFreshVM(t *testing.T) {
	mod := compileSrc(t, runnerWorkload)
	r := NewRunner(mod)
	inputs := [][]byte{{5}, {0}, {250}, {5}}
	for i, in := range inputs {
		fresh := New(mod, in).Run()
		reused := r.Run(in)
		if fresh.ExitCode != reused.ExitCode || (fresh.Trap == nil) != (reused.Trap == nil) {
			t.Fatalf("run %d: exit %d/%d trap %v/%v", i, fresh.ExitCode, reused.ExitCode, fresh.Trap, reused.Trap)
		}
		if len(fresh.Output) != len(reused.Output) {
			t.Fatalf("run %d: output %v vs %v", i, fresh.Output, reused.Output)
		}
		for j := range fresh.Output {
			if fresh.Output[j] != reused.Output[j] {
				t.Fatalf("run %d: output %v vs %v", i, fresh.Output, reused.Output)
			}
		}
		// counter starts at 0 every run: no global leakage.
		if len(reused.Output) > 0 && reused.Output[0] != 1 {
			t.Fatalf("run %d: counter = %d, global state leaked across Reset", i, reused.Output[0])
		}
	}
}

// TestRunnerOutputNotRecycled: Results retained from earlier runs must
// keep their output after later runs (the validator compares retained
// baselines against fresh runs).
func TestRunnerOutputNotRecycled(t *testing.T) {
	mod := compileSrc(t, runnerWorkload)
	r := NewRunner(mod)
	first := r.Run([]byte{7})
	want := append([]uint64(nil), first.Output...)
	r.Run([]byte{9})
	r.Run([]byte{11})
	for i := range want {
		if first.Output[i] != want[i] {
			t.Fatalf("retained output mutated by later runs: %v != %v", first.Output, want)
		}
	}
}

// TestRunnerTrapThenClean: a trapping run must not poison later runs.
func TestRunnerTrapThenClean(t *testing.T) {
	mod := compileSrc(t, `
void main() {
	u32 d = (u32)in_u8();
	out((u64)(100 / d));
	exit(0);
}
`)
	r := NewRunner(mod)
	if res := r.Run([]byte{0}); res.OK() {
		t.Fatal("divide by zero did not trap")
	}
	res := r.Run([]byte{4})
	if !res.OK() || len(res.Output) != 1 || res.Output[0] != 25 {
		t.Fatalf("clean run after trap: %v trap %v", res.Output, res.Trap)
	}
}

// TestRunnerMaxSteps: the step budget applies per run.
func TestRunnerMaxSteps(t *testing.T) {
	mod := compileSrc(t, `
void main() {
	u32 i = 0;
	while (i < 100000) {
		i = i + 1;
	}
	exit(0);
}
`)
	r := NewRunner(mod)
	r.MaxSteps = 50
	if res := r.Run(nil); res.OK() || res.Trap.Kind != TrapStepLimit {
		t.Fatalf("expected step-limit trap, got %v", res.Trap)
	}
	r.MaxSteps = 0
	if res := r.Run(nil); !res.OK() {
		t.Fatalf("default budget run failed: %v", res.Trap)
	}
}

func BenchmarkRunnerReuse(b *testing.B) {
	if testing.Short() {
		b.Skip("benchmark skipped in short mode")
	}
	mod := compileSrc2(b, runnerWorkload)
	in := []byte{16}
	b.Run("FreshVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := New(mod, in).Run(); !r.OK() {
				b.Fatal(r.Trap)
			}
		}
	})
	b.Run("Runner", func(b *testing.B) {
		r := NewRunner(mod)
		for i := 0; i < b.N; i++ {
			if res := r.Run(in); !res.OK() {
				b.Fatal(res.Trap)
			}
		}
	})
}

func compileSrc2(b *testing.B, src string) *ir.Module {
	b.Helper()
	mod, err := compile.CompileSource("t", src)
	if err != nil {
		b.Fatal(err)
	}
	return mod
}
