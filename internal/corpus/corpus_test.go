package corpus_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
)

// donorsFor filters the registry donors down to one format.
func donorsFor(format string) []corpus.Donor {
	var out []corpus.Donor
	for _, d := range corpus.RegistryDonors() {
		for _, f := range d.Formats {
			if f == format {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func TestBuildIndexCoversRegistry(t *testing.T) {
	ix, err := corpus.Build(corpus.RegistryDonors())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range apps.Donors() {
		want += len(d.Formats)
	}
	if len(ix.Signatures) != want {
		t.Fatalf("index has %d signatures, want %d (one per donor/format)", len(ix.Signatures), want)
	}
	for _, sig := range ix.Signatures {
		if len(sig.Checks) == 0 {
			t.Errorf("%s/%s: no checks discovered", sig.Donor, sig.Format)
		}
		if len(sig.Fields) == 0 {
			t.Errorf("%s/%s: no fields recorded", sig.Donor, sig.Format)
		}
		if sig.ContentKey == "" || sig.ProbeKey == "" {
			t.Errorf("%s/%s: missing invalidation keys", sig.Donor, sig.Format)
		}
	}
}

// TestIndexRoundTrip: build -> persist -> reload must be lossless, and
// a second LoadOrBuild over the unchanged registry must reuse every
// signature (0 rebuilt: the warm path).
func TestIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	donors := corpus.RegistryDonors()

	ix, rebuilt, err := corpus.LoadOrBuild(path, donors)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != len(ix.Signatures) {
		t.Errorf("first build rebuilt %d of %d signatures", rebuilt, len(ix.Signatures))
	}

	loaded, err := corpus.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ix)
	b, _ := json.Marshal(loaded)
	if string(a) != string(b) {
		t.Error("reloaded index differs from the built one")
	}

	warm, rebuilt, err := corpus.LoadOrBuild(path, donors)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 0 {
		t.Errorf("warm reload rebuilt %d signatures, want 0", rebuilt)
	}
	c, _ := json.Marshal(warm)
	if string(a) != string(c) {
		t.Error("warm reload changed the index")
	}
}

// TestIndexInvalidationOnDonorChange: editing one donor's source must
// rebuild exactly that donor's signatures and leave the others warm.
func TestIndexInvalidationOnDonorChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	donors := corpus.RegistryDonors()
	if _, _, err := corpus.LoadOrBuild(path, donors); err != nil {
		t.Fatal(err)
	}

	// A trailing comment changes the content key without changing
	// behaviour — the canonical "donor got recompiled" event.
	edited := make([]corpus.Donor, len(donors))
	copy(edited, donors)
	var editedName string
	var editedFormats int
	for i := range edited {
		if edited[i].Name == "feh" {
			edited[i].Source += "\n// v2\n"
			editedName = edited[i].Name
			editedFormats = len(edited[i].Formats)
		}
	}
	if editedName == "" {
		t.Fatal("registry donor feh not found")
	}

	ix, rebuilt, err := corpus.LoadOrBuild(path, edited)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != editedFormats {
		t.Errorf("rebuilt %d signatures, want %d (only the edited donor's formats)", rebuilt, editedFormats)
	}
	for _, format := range []string{"mjpg", "mpng", "mtif"} {
		sig, ok := ix.ByDonorFormat(editedName, format)
		if !ok {
			t.Fatalf("no signature for %s/%s after refresh", editedName, format)
		}
		if sig.ContentKey != (corpus.Donor{Name: editedName, Source: findSource(edited, editedName)}).ContentKey() {
			t.Errorf("%s/%s: content key not refreshed", editedName, format)
		}
	}

	// The persisted file reflects the refresh: loading again is warm.
	if _, rebuilt, err = corpus.LoadOrBuild(path, edited); err != nil {
		t.Fatal(err)
	} else if rebuilt != 0 {
		t.Errorf("second reload after refresh rebuilt %d signatures, want 0", rebuilt)
	}
}

func findSource(donors []corpus.Donor, name string) string {
	for _, d := range donors {
		if d.Name == name {
			return d.Source
		}
	}
	return ""
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := os.WriteFile(path, []byte(`{"version":999,"signatures":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.Load(path); err == nil {
		t.Fatal("version-mismatched index loaded without error")
	}
	// LoadOrBuild treats the mismatch as "rebuild everything".
	ix, rebuilt, err := corpus.LoadOrBuild(path, donorsFor("mgif"))
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != len(ix.Signatures) || rebuilt == 0 {
		t.Errorf("rebuilt %d of %d signatures after version mismatch", rebuilt, len(ix.Signatures))
	}
}

// TestSelectRanksPaperDonorsFirst is the acceptance contract: for
// every Figure-8 target, automatic selection over the error input
// must rank one of the paper's evaluated donors (the target's Donors
// list) first.
func TestSelectRanksPaperDonorsFirst(t *testing.T) {
	sel := corpus.NewSelector("")
	for _, tgt := range apps.Targets() {
		tgt := tgt
		t.Run(tgt.Recipient+"/"+tgt.ID, func(t *testing.T) {
			errIn, err := figure8.ErrorInputFor(tgt)
			if err != nil {
				t.Fatal(err)
			}
			selection, err := sel.Select(tgt.Format, tgt.Seed, errIn)
			if err != nil {
				t.Fatal(err)
			}
			if len(selection.Ranked) == 0 {
				t.Fatalf("no donor survives the error input (rejected: %+v)", selection.Rejected)
			}
			first := selection.Ranked[0].Donor
			found := false
			for _, d := range tgt.Donors {
				if d == first {
					found = true
				}
			}
			if !found {
				t.Errorf("rank-1 donor %q is not among the paper's donors %v", first, tgt.Donors)
			}
			if len(selection.RelevantFields) == 0 {
				t.Error("selection recorded no relevant fields")
			}
		})
	}
	st := sel.Stats()
	if !st.Built || st.Entries == 0 || st.Selections == 0 || st.Survivors == 0 {
		t.Errorf("selector stats not recorded: %+v", st)
	}
}

// TestAutoTransferMatchesManual: a transfer that names no donor and
// is resolved by the Select stage must produce byte-identical results
// to the same transfer with the chosen donor named explicitly.
func TestAutoTransferMatchesManual(t *testing.T) {
	targets := apps.Targets()
	if testing.Short() {
		targets = targets[:3]
	}
	sel := corpus.NewSelector("")
	eng := pipeline.NewEngine()
	eng.Compiler = compile.NewCache(0)
	eng.Selector = sel
	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.Recipient+"/"+tgt.ID, func(t *testing.T) {
			auto, err := figure8.NewTransfer(tgt, pipeline.AutoDonor, phage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			autoRes, err := eng.Run(auto)
			if err != nil {
				t.Fatalf("auto transfer: %v", err)
			}
			if autoRes.Donor == "" {
				t.Fatal("auto transfer reported no resolved donor")
			}
			chosenInPaper := false
			for _, d := range tgt.Donors {
				if d == autoRes.Donor {
					chosenInPaper = true
				}
			}
			if !chosenInPaper {
				t.Errorf("auto-selected donor %q not among paper donors %v", autoRes.Donor, tgt.Donors)
			}

			manual, err := figure8.NewTransfer(tgt, autoRes.Donor, phage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			manualRes, err := eng.Run(manual)
			if err != nil {
				t.Fatalf("manual transfer: %v", err)
			}
			if autoRes.FinalSource != manualRes.FinalSource {
				t.Error("auto and manual final sources differ")
			}
			if len(autoRes.Rounds) != len(manualRes.Rounds) {
				t.Fatalf("auto %d rounds != manual %d rounds", len(autoRes.Rounds), len(manualRes.Rounds))
			}
			for i := range autoRes.Rounds {
				a, m := autoRes.Rounds[i], manualRes.Rounds[i]
				if a.PatchText != m.PatchText || a.InsertFn != m.InsertFn ||
					a.InsertLine != m.InsertLine || a.TranslatedCheck != m.TranslatedCheck ||
					a.ExcisedCheck != m.ExcisedCheck || a.CheckIndex != m.CheckIndex {
					t.Errorf("round %d diverges between auto and manual", i)
				}
			}
		})
	}
}

// coldSelect is the path the index replaces: per-request discovery —
// rebuild every format donor's signature from scratch, then select.
func coldSelect(t testing.TB, format string, seed, errIn []byte) *corpus.Selection {
	ix, err := corpus.Build(donorsFor(format))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ix.Select(format, seed, errIn, corpus.RegistryLoader)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// warmSelector returns a selector whose index is already established.
func warmSelector(t testing.TB) *corpus.Selector {
	sel := corpus.NewSelector("")
	if _, err := sel.Index(); err != nil {
		t.Fatal(err)
	}
	return sel
}

// TestWarmSelectionFasterThanCold pins the performance goal: the
// warm-index selection must be at least 5x faster than cold
// per-request discovery. Best-of-N timings keep scheduler noise out.
func TestWarmSelectionFasterThanCold(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	sel := warmSelector(t)
	// Touch both paths once so compile caches are equally warm and the
	// comparison isolates discovery cost, not compilation.
	coldSelect(t, tgt.Format, tgt.Seed, tgt.Error)
	if _, err := sel.Select(tgt.Format, tgt.Seed, tgt.Error); err != nil {
		t.Fatal(err)
	}

	best := func(n int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	warm := best(10, func() {
		if _, err := sel.Select(tgt.Format, tgt.Seed, tgt.Error); err != nil {
			t.Fatal(err)
		}
	})
	cold := best(5, func() { coldSelect(t, tgt.Format, tgt.Seed, tgt.Error) })
	if cold < 5*warm {
		t.Errorf("warm selection not ≥5x faster: warm %v, cold %v (%.1fx)",
			warm, cold, float64(cold)/float64(warm))
	}
	t.Logf("selection: warm %v, cold %v (%.1fx)", warm, cold, float64(cold)/float64(warm))
}

func BenchmarkSelectWarm(b *testing.B) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		b.Fatal(err)
	}
	sel := warmSelector(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(tgt.Format, tgt.Seed, tgt.Error); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCold(b *testing.B) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		b.Fatal(err)
	}
	coldSelect(b, tgt.Format, tgt.Seed, tgt.Error) // warm the compile cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldSelect(b, tgt.Format, tgt.Seed, tgt.Error)
	}
}
