// Automatic donor selection over the warm index: the triage the
// paper's workflow implies — format match, donor survival on the
// error-triggering input, signature/field-overlap ranking — packaged
// as the pipeline's Select stage backend.
package corpus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"codephage/internal/apps"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
	"codephage/internal/vm"
)

// Candidate is one donor considered during selection, with its
// ranking signal.
type Candidate struct {
	Donor  string `json:"donor"`
	Format string `json:"format"`
	// CheckHits counts indexed checks constraining at least one field
	// the error input perturbs — the primary ranking signal: a donor
	// that checks the corrupted fields is the donor whose check wants
	// transferring.
	CheckHits int `json:"check_hits"`
	// FieldOverlap counts perturbed fields the donor's checks touch.
	FieldOverlap int `json:"field_overlap"`
	// Flipped is the signature's flipped-branch count (tie-break:
	// richer check structure first).
	Flipped  int    `json:"flipped"`
	Survived bool   `json:"survived"`
	Reason   string `json:"reason,omitempty"` // why the donor was rejected

	// mod is the binary the survival probe ran; SelectDonors hands it
	// to the engine so each selection loads every donor once.
	mod *ir.Module
}

// Selection is the outcome of one triage: the ranked surviving
// candidates and the rejected ones, both deterministic.
type Selection struct {
	Format         string      `json:"format"`
	RelevantFields []string    `json:"relevant_fields"`
	Ranked         []Candidate `json:"ranked"`
	Rejected       []Candidate `json:"rejected,omitempty"`
}

// RelevantFields maps the byte-level diff between a seed and an error
// input to the dissector field paths it perturbs.
func RelevantFields(dis *hachoir.Dissection, seed, errIn []byte) []string {
	set := map[string]bool{}
	for off := range dis.DiffFields(seed, errIn) {
		if f, ok := dis.FieldAt(off); ok {
			set[f.Path] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// score computes a signature's ranking signal against the perturbed
// fields.
func score(sig *Signature, relevant []string) (checkHits, fieldOverlap int) {
	rel := map[string]bool{}
	for _, f := range relevant {
		rel[f] = true
	}
	for _, f := range sig.Fields {
		if rel[f] {
			fieldOverlap++
		}
	}
	for _, c := range sig.Checks {
		for _, f := range c.Fields {
			if rel[f] {
				checkHits++
				break
			}
		}
	}
	return checkHits, fieldOverlap
}

// rank orders format-matching signatures by selection preference:
// most check hits, then widest field overlap, then most flipped
// branches, then donor name — a total, deterministic order.
func rank(sigs []*Signature, relevant []string) []Candidate {
	cands := make([]Candidate, 0, len(sigs))
	for _, sig := range sigs {
		hits, overlap := score(sig, relevant)
		cands = append(cands, Candidate{
			Donor: sig.Donor, Format: sig.Format,
			CheckHits: hits, FieldOverlap: overlap, Flipped: sig.FlippedSites,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.CheckHits != b.CheckHits {
			return a.CheckHits > b.CheckHits
		}
		if a.FieldOverlap != b.FieldOverlap {
			return a.FieldOverlap > b.FieldOverlap
		}
		if a.Flipped != b.Flipped {
			return a.Flipped > b.Flipped
		}
		return a.Donor < b.Donor
	})
	return cands
}

// ModuleLoader resolves a donor name to its stripped binary module.
// Each call must return a module the caller may use exclusively.
type ModuleLoader func(donor string) (*ir.Module, error)

// RegistryLoader loads stripped donor binaries from the application
// registry (the default for Selector).
func RegistryLoader(donor string) (*ir.Module, error) {
	app, err := apps.ByName(donor)
	if err != nil {
		return nil, err
	}
	return apps.BuildDonorBinary(app)
}

// Select triages the index for a recipient error: format match first,
// then the VM survival probe (the donor must process both the seed
// and the error input safely, §3.1), then signature ranking. The
// loader supplies donor binaries for the survival probe.
func (ix *Index) Select(format string, seed, errIn []byte, load ModuleLoader) (*Selection, error) {
	dissector, ok := hachoir.ByName(format)
	if !ok {
		return nil, fmt.Errorf("corpus: unknown input format %q", format)
	}
	dis, err := dissector.Dissect(seed)
	if err != nil {
		return nil, err
	}
	sel := &Selection{
		Format:         format,
		RelevantFields: RelevantFields(dis, seed, errIn),
	}
	for _, cand := range rank(ix.ForFormat(format), sel.RelevantFields) {
		mod, lerr := load(cand.Donor)
		if lerr != nil {
			cand.Reason = lerr.Error()
			sel.Rejected = append(sel.Rejected, cand)
			continue
		}
		runner := vm.NewRunner(mod)
		if r := runner.Run(seed); !r.OK() {
			cand.Reason = fmt.Sprintf("crashes on seed: %v", r.Trap)
			sel.Rejected = append(sel.Rejected, cand)
			continue
		}
		if r := runner.Run(errIn); !r.OK() {
			cand.Reason = fmt.Sprintf("crashes on error input: %v", r.Trap)
			sel.Rejected = append(sel.Rejected, cand)
			continue
		}
		cand.Survived = true
		cand.mod = mod
		sel.Ranked = append(sel.Ranked, cand)
	}
	return sel, nil
}

// SelectorStats counts selector activity for metrics endpoints.
type SelectorStats struct {
	// Built reports whether the index has been built or loaded yet
	// (the selector is lazy: nothing happens until the first query).
	Built bool
	// Entries is the number of indexed donor/format signatures.
	Entries int
	// Rebuilt is the number of signatures (re)built when the index
	// was established — 0 means the on-disk index was fully warm.
	Rebuilt int
	// Selections counts Select queries answered.
	Selections int64
	// Candidates counts format-matching donors considered.
	Candidates int64
	// Survivors counts candidates that survived the VM probe.
	Survivors int64
}

// Selector is the concurrency-safe selection front end: it lazily
// establishes the index (loading Path if set, building otherwise) on
// first use and implements pipeline.DonorSelector, so it plugs
// directly into Engine.Selector. The zero value indexes the registry
// donors in memory.
type Selector struct {
	// Path is the optional on-disk index location ("" = in-memory).
	Path string
	// Donors overrides the indexed donor set (nil = RegistryDonors).
	Donors []Donor
	// Loader overrides donor binary loading (nil = RegistryLoader).
	Loader ModuleLoader
	// Service is the constraint service signature building
	// canonicalizes through (nil = smt.Default()). phaged points this
	// at the service its shard engines share, so corpus queries warm —
	// and are counted by — the same memo the transfers use.
	Service *smt.Service

	buildMu sync.Mutex // serializes index establishment
	mu      sync.Mutex // guards the published fields below; never held across a build
	built   bool
	ix      *Index
	rebuilt int

	selections atomic.Int64
	candidates atomic.Int64
	survivors  atomic.Int64
}

// NewSelector returns a selector over the registry donors, persisting
// its index at path ("" = in-memory only).
func NewSelector(path string) *Selector { return &Selector{Path: path} }

// Index returns the warm index, establishing it on first call. A
// failed build (say, an unwritable index path) is not cached: the
// next query retries, so a transient failure never permanently
// disables auto-donor selection.
func (s *Selector) Index() (*Index, error) {
	if ix, ok := s.published(); ok {
		return ix, nil
	}
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if ix, ok := s.published(); ok {
		return ix, nil // another goroutine built while we waited
	}
	donors := s.Donors
	if donors == nil {
		donors = RegistryDonors()
	}
	ix, rebuilt, err := loadOrBuild(s.Path, donors, s.Service)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.built, s.ix, s.rebuilt = true, ix, rebuilt
	s.mu.Unlock()
	return ix, nil
}

func (s *Selector) published() (*Index, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix, s.built
}

func (s *Selector) loader() ModuleLoader {
	if s.Loader != nil {
		return s.Loader
	}
	return RegistryLoader
}

// Select triages donors for one recipient error through the warm
// index.
func (s *Selector) Select(format string, seed, errIn []byte) (*Selection, error) {
	ix, err := s.Index()
	if err != nil {
		return nil, err
	}
	sel, err := ix.Select(format, seed, errIn, s.loader())
	if err != nil {
		return nil, err
	}
	s.selections.Add(1)
	s.candidates.Add(int64(len(sel.Ranked) + len(sel.Rejected)))
	s.survivors.Add(int64(len(sel.Ranked)))
	return sel, nil
}

// SelectDonors implements pipeline.DonorSelector: the ranked
// surviving candidates, each carrying the binary its survival probe
// already loaded.
func (s *Selector) SelectDonors(format string, seed, errIn []byte) ([]pipeline.DonorCandidate, error) {
	sel, err := s.Select(format, seed, errIn)
	if err != nil {
		return nil, err
	}
	var out []pipeline.DonorCandidate
	for _, cand := range sel.Ranked {
		out = append(out, pipeline.DonorCandidate{Name: cand.Donor, Module: cand.mod})
	}
	return out, nil
}

// Stats snapshots the selector counters.
func (s *Selector) Stats() SelectorStats {
	st := SelectorStats{
		Selections: s.selections.Load(),
		Candidates: s.candidates.Load(),
		Survivors:  s.survivors.Load(),
	}
	// Peek at the published index without forcing — or waiting on — a
	// build: an in-progress build holds buildMu, not mu, so metrics
	// scrapes never stall behind it.
	s.mu.Lock()
	if s.built {
		st.Built = true
		st.Rebuilt = s.rebuilt
		st.Entries = len(s.ix.Signatures)
	}
	s.mu.Unlock()
	return st
}
