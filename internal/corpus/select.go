// Automatic donor selection over the warm index: the triage the
// paper's workflow implies — format match, donor survival on the
// error-triggering input, signature/field-overlap ranking — packaged
// as the pipeline's Select stage backend.
package corpus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"codephage/internal/apps"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
)

// Candidate is one donor considered during selection, with its
// ranking signal.
type Candidate struct {
	Donor  string `json:"donor"`
	Format string `json:"format"`
	// CheckHits counts indexed checks constraining at least one field
	// the error input perturbs — the primary ranking signal: a donor
	// that checks the corrupted fields is the donor whose check wants
	// transferring.
	CheckHits int `json:"check_hits"`
	// FieldOverlap counts perturbed fields the donor's checks touch.
	FieldOverlap int `json:"field_overlap"`
	// Flipped is the signature's flipped-branch count (tie-break:
	// richer check structure first).
	Flipped  int    `json:"flipped"`
	Survived bool   `json:"survived"`
	Reason   string `json:"reason,omitempty"` // why the donor was rejected

	// mod is the binary the survival probe ran; SelectDonors hands it
	// to the engine so each selection loads every donor once.
	mod *ir.Module
}

// Selection is the outcome of one triage: the ranked surviving
// candidates and the rejected ones, both deterministic.
type Selection struct {
	Format         string      `json:"format"`
	RelevantFields []string    `json:"relevant_fields"`
	Ranked         []Candidate `json:"ranked"`
	Rejected       []Candidate `json:"rejected,omitempty"`
}

// RelevantFields maps the byte-level diff between a seed and an error
// input to the dissector field paths it perturbs.
func RelevantFields(dis *hachoir.Dissection, seed, errIn []byte) []string {
	set := map[string]bool{}
	for off := range dis.DiffFields(seed, errIn) {
		if f, ok := dis.FieldAt(off); ok {
			set[f.Path] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// score computes a signature's ranking signal against the perturbed
// fields.
func score(sig *Signature, relevant []string) (checkHits, fieldOverlap int) {
	rel := map[string]bool{}
	for _, f := range relevant {
		rel[f] = true
	}
	return scoreRel(sig, rel)
}

// scoreRel is score over a prebuilt relevance set, so a caller scoring
// many signatures against one query builds the set once.
func scoreRel(sig *Signature, rel map[string]bool) (checkHits, fieldOverlap int) {
	for _, f := range sig.Fields {
		if rel[f] {
			fieldOverlap++
		}
	}
	for _, c := range sig.Checks {
		for _, f := range c.Fields {
			if rel[f] {
				checkHits++
				break
			}
		}
	}
	return checkHits, fieldOverlap
}

// rank orders format-matching signatures by selection preference:
// most check hits, then widest field overlap, then most flipped
// branches, then donor name — a total, deterministic order.
func rank(sigs []*Signature, relevant []string) []Candidate {
	cands := make([]Candidate, 0, len(sigs))
	for _, sig := range sigs {
		hits, overlap := score(sig, relevant)
		cands = append(cands, Candidate{
			Donor: sig.Donor, Format: sig.Format,
			CheckHits: hits, FieldOverlap: overlap, Flipped: sig.FlippedSites,
		})
	}
	sortCandidates(cands)
	return cands
}

// sortCandidates applies the rank comparator in place.
func sortCandidates(cands []Candidate) {
	// Sort an index permutation rather than the candidates themselves:
	// swapping ints beats shuffling the wide Candidate struct, and the
	// comparator is a total order (donor names are unique per format),
	// so the result is identical either way.
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := &cands[idx[i]], &cands[idx[j]]
		if a.CheckHits != b.CheckHits {
			return a.CheckHits > b.CheckHits
		}
		if a.FieldOverlap != b.FieldOverlap {
			return a.FieldOverlap > b.FieldOverlap
		}
		if a.Flipped != b.Flipped {
			return a.Flipped > b.Flipped
		}
		return a.Donor < b.Donor
	})
	sorted := make([]Candidate, len(cands))
	for i, j := range idx {
		sorted[i] = cands[j]
	}
	copy(cands, sorted)
}

// ModuleLoader resolves a donor name to its stripped binary module.
// Each call must return a module the caller may use exclusively.
type ModuleLoader func(donor string) (*ir.Module, error)

// RegistryLoader loads stripped donor binaries from the application
// registry (the default for Selector).
func RegistryLoader(donor string) (*ir.Module, error) {
	app, err := apps.ByName(donor)
	if err != nil {
		return nil, err
	}
	return apps.BuildDonorBinary(app)
}

// Select triages the index for a recipient error: format match first,
// then signature ranking (through the fingerprint pre-filter when one
// is attached), then the VM survival probe down the full ranked order
// (the donor must process both the seed and the error input safely,
// §3.1). It is the fully-drained form of SelectStream, so its
// Selection is identical with and without the pre-filter. The loader
// supplies donor binaries for the survival probe.
func (ix *Index) Select(format string, seed, errIn []byte, load ModuleLoader) (*Selection, error) {
	st, err := ix.SelectStream(format, seed, errIn, load)
	if err != nil {
		return nil, err
	}
	for {
		cand, err := st.Next()
		if err != nil {
			return nil, err
		}
		if cand == nil {
			return st.Selection(), nil
		}
	}
}

// SelectorStats counts selector activity for metrics endpoints.
type SelectorStats struct {
	// Built reports whether the index has been built or loaded yet
	// (the selector is lazy: nothing happens until the first query).
	Built bool
	// Entries is the number of indexed donor/format signatures.
	Entries int
	// Rebuilt is the number of signatures (re)built when the index
	// was established — 0 means the on-disk index was fully warm.
	Rebuilt int
	// Selections counts Select queries answered.
	Selections int64
	// Candidates counts format-matching donors considered.
	Candidates int64
	// Survivors counts candidates that survived the VM probe.
	Survivors int64
	// PrefilterQueries counts selections the fingerprint postings
	// answered.
	PrefilterQueries int64
	// PrefilterCandidates counts signatures the postings admitted for
	// exact scoring across prefiltered selections.
	PrefilterCandidates int64
	// PrefilterSkipped counts signatures the pre-filter excluded from
	// exact scoring.
	PrefilterSkipped int64
	// PrefilterFallbacks counts selections served by the exhaustive-
	// equivalent order: the pre-filter was cold/disabled, or it
	// admitted no candidate.
	PrefilterFallbacks int64
}

// Selector is the concurrency-safe selection front end: it lazily
// establishes the index (loading Path if set, building otherwise) on
// first use and implements pipeline.DonorSelector, so it plugs
// directly into Engine.Selector. The zero value indexes the registry
// donors in memory.
type Selector struct {
	// Path is the optional on-disk index location ("" = in-memory).
	Path string
	// Donors overrides the indexed donor set (nil = RegistryDonors).
	Donors []Donor
	// Loader overrides donor binary loading (nil = RegistryLoader).
	Loader ModuleLoader
	// Service is the constraint service signature building
	// canonicalizes through (nil = smt.Default()). phaged points this
	// at the service its shard engines share, so corpus queries warm —
	// and are counted by — the same memo the transfers use.
	Service *smt.Service
	// NoPrefilter disables the fingerprint pre-filter: the sidecar is
	// still built and persisted alongside the index (so toggling the
	// flag never changes what is on disk), but queries take the
	// exhaustive scoring path. Selection results are byte-identical
	// either way; the flag exists for benchmarks and the on/off
	// determinism checks.
	NoPrefilter bool

	buildMu sync.Mutex // serializes index establishment
	mu      sync.Mutex // guards the published fields below; never held across a build
	built   bool
	ix      *Index
	rebuilt int

	selections atomic.Int64
	candidates atomic.Int64
	survivors  atomic.Int64

	prefilterQueries    atomic.Int64
	prefilterCandidates atomic.Int64
	prefilterSkipped    atomic.Int64
	prefilterFallbacks  atomic.Int64
}

// NewSelector returns a selector over the registry donors, persisting
// its index at path ("" = in-memory only).
func NewSelector(path string) *Selector { return &Selector{Path: path} }

// Index returns the warm index, establishing it on first call. A
// failed build (say, an unwritable index path) is not cached: the
// next query retries, so a transient failure never permanently
// disables auto-donor selection.
func (s *Selector) Index() (*Index, error) {
	if ix, ok := s.published(); ok {
		return ix, nil
	}
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if ix, ok := s.published(); ok {
		return ix, nil // another goroutine built while we waited
	}
	donors := s.Donors
	if donors == nil {
		donors = RegistryDonors()
	}
	ix, rebuilt, err := loadOrBuild(s.Path, donors, s.Service)
	if err != nil {
		return nil, err
	}
	// The fingerprint sidecar is always built and persisted with the
	// index — the warm state on disk is the same whether or not the
	// pre-filter answers queries — but only attached when enabled.
	fp, _, err := LoadOrBuildFingerprints(FingerprintSidecar(s.Path), ix)
	if err != nil {
		return nil, err
	}
	if !s.NoPrefilter {
		if err := ix.AttachFingerprints(fp); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.built, s.ix, s.rebuilt = true, ix, rebuilt
	s.mu.Unlock()
	return ix, nil
}

// Install publishes a prebuilt index and fingerprint sidecar as the
// selector's warm state, replacing whatever was (or would have been)
// built locally — the cluster's artifact-replication hot-swap. The
// sidecar is attached unless the pre-filter is disabled, and both are
// persisted to the selector's Path so a restart reloads the
// replicated state instead of rebuilding. Queries racing the swap see
// either the old or the new index, never a mix: Select holds one
// *Index for its whole run.
func (s *Selector) Install(ix *Index, fp *FingerprintIndex) error {
	if ix == nil {
		return fmt.Errorf("corpus: installing a nil index")
	}
	if !s.NoPrefilter && fp != nil {
		if err := ix.AttachFingerprints(fp); err != nil {
			return err
		}
	}
	// Serialize with in-flight builds so a concurrent lazy build cannot
	// publish over the freshly installed index.
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if s.Path != "" {
		if err := ix.Save(s.Path); err != nil {
			return err
		}
		if fp != nil {
			if err := fp.Save(FingerprintSidecar(s.Path)); err != nil {
				return err
			}
		}
	}
	s.mu.Lock()
	s.built, s.ix, s.rebuilt = true, ix, 0
	s.mu.Unlock()
	return nil
}

func (s *Selector) published() (*Index, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix, s.built
}

func (s *Selector) loader() ModuleLoader {
	if s.Loader != nil {
		return s.Loader
	}
	return RegistryLoader
}

// stream starts a lazy selection over the warm index, wiring the
// selector counters into it.
func (s *Selector) stream(format string, seed, errIn []byte) (*DonorStream, error) {
	ix, err := s.Index()
	if err != nil {
		return nil, err
	}
	st, err := ix.SelectStream(format, seed, errIn, s.loader())
	if err != nil {
		return nil, err
	}
	stats := st.Stats()
	s.selections.Add(1)
	s.candidates.Add(int64(stats.Donors))
	if stats.Prefiltered {
		s.prefilterQueries.Add(1)
		s.prefilterCandidates.Add(int64(stats.Candidates))
		s.prefilterSkipped.Add(int64(stats.Skipped))
	}
	if stats.Fallback {
		s.prefilterFallbacks.Add(1)
	}
	st.onProbe = func(survived bool) {
		if survived {
			s.survivors.Add(1)
		}
	}
	return st, nil
}

// Select triages donors for one recipient error through the warm
// index, probing the full ranked order.
func (s *Selector) Select(format string, seed, errIn []byte) (*Selection, error) {
	st, err := s.stream(format, seed, errIn)
	if err != nil {
		return nil, err
	}
	for {
		cand, err := st.Next()
		if err != nil {
			return nil, err
		}
		if cand == nil {
			return st.Selection(), nil
		}
	}
}

// SelectDonors implements pipeline.DonorSelector: the ranked
// surviving candidates, each carrying the binary its survival probe
// already loaded. The engine prefers StreamDonors when both are
// implemented; this eager form stays for API compatibility and the
// /corpus inspection endpoints.
func (s *Selector) SelectDonors(format string, seed, errIn []byte) ([]pipeline.DonorCandidate, error) {
	sel, err := s.Select(format, seed, errIn)
	if err != nil {
		return nil, err
	}
	var out []pipeline.DonorCandidate
	for _, cand := range sel.Ranked {
		out = append(out, pipeline.DonorCandidate{Name: cand.Donor, Module: cand.mod})
	}
	return out, nil
}

// donorStream adapts a corpus DonorStream to the pipeline interface.
type donorStream struct{ st *DonorStream }

func (d donorStream) Next() (*pipeline.DonorCandidate, error) {
	cand, err := d.st.Next()
	if err != nil || cand == nil {
		return nil, err
	}
	return &pipeline.DonorCandidate{Name: cand.Donor, Module: cand.mod}, nil
}

func (d donorStream) Stats() pipeline.SelectStats {
	stats := d.st.Stats()
	return pipeline.SelectStats{
		Donors:      stats.Donors,
		Prefiltered: stats.Prefiltered,
		Candidates:  stats.Candidates,
		Skipped:     stats.Skipped,
		Fallback:    stats.Fallback,
	}
}

// StreamDonors implements pipeline.DonorStreamer: ranked donor
// candidates yielded lazily, so donors past the one the pipeline
// validates are never loaded or probed.
func (s *Selector) StreamDonors(format string, seed, errIn []byte) (pipeline.DonorStream, error) {
	st, err := s.stream(format, seed, errIn)
	if err != nil {
		return nil, err
	}
	return donorStream{st}, nil
}

// Stats snapshots the selector counters.
func (s *Selector) Stats() SelectorStats {
	st := SelectorStats{
		Selections:          s.selections.Load(),
		Candidates:          s.candidates.Load(),
		Survivors:           s.survivors.Load(),
		PrefilterQueries:    s.prefilterQueries.Load(),
		PrefilterCandidates: s.prefilterCandidates.Load(),
		PrefilterSkipped:    s.prefilterSkipped.Load(),
		PrefilterFallbacks:  s.prefilterFallbacks.Load(),
	}
	// Peek at the published index without forcing — or waiting on — a
	// build: an in-progress build holds buildMu, not mu, so metrics
	// scrapes never stall behind it.
	s.mu.Lock()
	if s.built {
		st.Built = true
		st.Rebuilt = s.rebuilt
		st.Entries = len(s.ix.Signatures)
	}
	s.mu.Unlock()
	return st
}
