package corpus

import (
	"encoding/json"
	"testing"
)

// FuzzIndexLoad hammers the index decoder with malformed, truncated
// and mutated bytes: every input must produce an index or an error,
// never a panic, and an accepted index must round-trip through the
// encoder (the serialized form is the dedup identity a long-running
// service trusts across restarts).
func FuzzIndexLoad(f *testing.F) {
	// A well-formed current-version index.
	good, err := json.Marshal(&Index{Version: Version, Signatures: []*Signature{{
		Donor: "feh", Paper: "FEH 2.9.3", Format: "mjpg",
		ContentKey: "abc", ProbeKey: "def",
		Fields: []string{"/start_frame/content/width"},
		Checks: []CheckSig{{Cond: "Ule(w, 16384)", Fields: []string{"/start_frame/content/width"}}},
	}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"signatures":[]}`))
	f.Add([]byte(`{"version":2,"signatures":[null]}`))
	f.Add(good[:len(good)/2])
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(data)
		if err != nil {
			return
		}
		if ix.Version != Version {
			t.Fatalf("accepted index with version %d", ix.Version)
		}
		// Accepted indexes must survive a serialize/decode round trip.
		out, err := json.Marshal(ix)
		if err != nil {
			t.Fatalf("accepted index does not re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded index does not decode: %v", err)
		}
		// The lookup paths assume non-nil signatures; Decode must have
		// enforced that, and the lookups must not panic on any shape
		// that got through.
		for _, sig := range ix.Signatures {
			if sig == nil {
				t.Fatal("Decode accepted a null signature entry")
			}
			ix.ByDonorFormat(sig.Donor, sig.Format)
			ix.ForFormat(sig.Format)
		}
	})
}
