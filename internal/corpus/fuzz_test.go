package corpus

import (
	"encoding/json"
	"testing"
)

// FuzzIndexLoad hammers the index decoder with malformed, truncated
// and mutated bytes: every input must produce an index or an error,
// never a panic, and an accepted index must round-trip through the
// encoder (the serialized form is the dedup identity a long-running
// service trusts across restarts).
func FuzzIndexLoad(f *testing.F) {
	// A well-formed current-version index.
	good, err := json.Marshal(&Index{Version: Version, Signatures: []*Signature{{
		Donor: "feh", Paper: "FEH 2.9.3", Format: "mjpg",
		ContentKey: "abc", ProbeKey: "def",
		Fields: []string{"/start_frame/content/width"},
		Checks: []CheckSig{{Cond: "Ule(w, 16384)", Fields: []string{"/start_frame/content/width"}}},
	}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"signatures":[]}`))
	f.Add([]byte(`{"version":2,"signatures":[null]}`))
	f.Add(good[:len(good)/2])
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(data)
		if err != nil {
			return
		}
		if ix.Version != Version {
			t.Fatalf("accepted index with version %d", ix.Version)
		}
		// Accepted indexes must survive a serialize/decode round trip.
		out, err := json.Marshal(ix)
		if err != nil {
			t.Fatalf("accepted index does not re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded index does not decode: %v", err)
		}
		// The lookup paths assume non-nil signatures; Decode must have
		// enforced that, and the lookups must not panic on any shape
		// that got through.
		for _, sig := range ix.Signatures {
			if sig == nil {
				t.Fatal("Decode accepted a null signature entry")
			}
			ix.ByDonorFormat(sig.Donor, sig.Format)
			ix.ForFormat(sig.Format)
		}
	})
}

// FuzzFingerprintLoad hammers the fingerprint-sidecar decoder the same
// way: hostile bytes must produce a fingerprint index or an error,
// never a panic, and an accepted sidecar must round-trip through the
// encoder and attach cleanly to an empty index (attaching is the first
// thing a warm phaged start does with it).
func FuzzFingerprintLoad(f *testing.F) {
	good, err := json.Marshal(BuildFingerprints(&Index{Version: Version, Signatures: []*Signature{{
		Donor: "feh", Paper: "FEH 2.9.3", Format: "mjpg",
		ContentKey: "abc", ProbeKey: "def",
		Fields: []string{"/start_frame/content/width"},
		Checks: []CheckSig{{Cond: "Ule(w, 16384)", Fields: []string{"/start_frame/content/width"}}},
	}}}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"k":8,"window":4,"entries":[]}`))
	f.Add([]byte(`{"version":1,"k":8,"window":4,"entries":[null]}`))
	f.Add([]byte(`{"version":1,"k":8,"window":4,"entries":[{"donor":"d","format":"f","sig_key":"x","prints":[2,1]}]}`))
	f.Add(good[:len(good)/2])
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := DecodeFingerprints(data)
		if err != nil {
			return
		}
		if fp.Version != FingerprintVersion || fp.K != FingerprintK || fp.Window != FingerprintWindow {
			t.Fatalf("accepted sidecar with parameters v%d/k%d/w%d", fp.Version, fp.K, fp.Window)
		}
		out, err := json.Marshal(fp)
		if err != nil {
			t.Fatalf("accepted sidecar does not re-encode: %v", err)
		}
		if _, err := DecodeFingerprints(out); err != nil {
			t.Fatalf("re-encoded sidecar does not decode: %v", err)
		}
		for _, e := range fp.Entries {
			if e == nil {
				t.Fatal("DecodeFingerprints accepted a null entry")
			}
			for i := 1; i < len(e.Prints); i++ {
				if e.Prints[i] <= e.Prints[i-1] {
					t.Fatalf("accepted unsorted prints in %s/%s", e.Donor, e.Format)
				}
			}
		}
		// Stale entries must never attach; an empty index accepts only
		// an empty cover, so any non-empty accepted sidecar attaches as
		// all-stale and leaves every format exhaustive.
		if err := (&Index{Version: Version}).AttachFingerprints(fp); err != nil {
			t.Fatalf("accepted sidecar does not attach: %v", err)
		}
	})
}
