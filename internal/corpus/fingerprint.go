// Winnowing fingerprints: the similarity pre-filter in front of exact
// signature ranking. Every signature's dissector field paths and
// canonicalized check conditions are reduced to a small set of k-gram
// winnowing fingerprints (the Dolos/MOSS technique: hash every k-gram,
// then keep each window's minimum), and the per-format fingerprints
// are inverted into sharded postings (fingerprint -> signature
// ordinals). A Select query fingerprints only the perturbed field
// paths and intersects them with the postings, so the exact scorer
// touches a candidate subset instead of every format-matching donor.
//
// The pre-filter is sound, not heuristic: a signature's entry contains
// every fingerprint of every path in Signature.Fields, and a query
// fingerprints whole relevant paths, so any donor with positive
// FieldOverlap — and therefore any donor with positive CheckHits,
// since Fields is the union of the checks' fields — carries the
// complete fingerprint set of at least one relevant path and survives
// the conjunctive postings intersection. Donors outside the candidate
// set can only score zero, and zero-score donors order purely by
// (FlippedSites desc, Donor asc), which is precomputed per format. The
// prefiltered ranking is therefore byte-identical to the exhaustive
// one.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

const (
	// FingerprintVersion is the sidecar schema version; sidecars
	// written by other versions (or other k/window parameters) are
	// rebuilt wholesale.
	FingerprintVersion = 1
	// FingerprintK is the k-gram length fingerprints hash.
	FingerprintK = 8
	// FingerprintWindow is the winnowing window: one fingerprint is
	// guaranteed per FingerprintWindow consecutive k-grams.
	FingerprintWindow = 4
	// fpShardCount shards the in-memory postings by fingerprint low
	// bits, bounding any single map and keeping shard assembly
	// parallelizable without cross-shard coordination.
	fpShardCount = 16
)

// FingerprintEntry is one signature's persisted fingerprint set, keyed
// for entry-level invalidation exactly like the signature index.
type FingerprintEntry struct {
	Donor  string `json:"donor"`
	Format string `json:"format"`
	// SigKey identifies the signature content the prints were computed
	// from (content key, probe key, checks, flip count); any signature
	// change invalidates exactly this entry.
	SigKey string `json:"sig_key"`
	// Prints is the sorted, deduplicated winnowing fingerprint set.
	Prints []uint64 `json:"prints"`
}

// FingerprintIndex is the persisted pre-filter: one entry per indexed
// signature, in signature-index order. The inverted postings are
// runtime state derived on attach, never serialized.
type FingerprintIndex struct {
	Version int                 `json:"version"`
	K       int                 `json:"k"`
	Window  int                 `json:"window"`
	Entries []*FingerprintEntry `json:"entries"`
}

// fpFormat is the attached runtime pre-filter for one format: the
// format's signatures in index order, sharded inverted postings over
// their fingerprints, and the precomputed zero-score tail order.
type fpFormat struct {
	sigs []*Signature
	// shards maps fingerprint -> ordinals into sigs, sharded by
	// fingerprint low bits. Posting lists are sorted ascending.
	shards [fpShardCount]map[uint64][]int32
	// zero holds sig ordinals reordered the way the exact ranker
	// orders zero-score candidates: FlippedSites desc, then donor name
	// asc.
	zero []int32
	// Interned scoring state: when the format's signatures span at
	// most 64 distinct field paths (masksOK), each path gets a bit and
	// candidates score with mask intersections instead of string-map
	// lookups. fieldsMask and checkMasks are per ordinal.
	masksOK    bool
	fieldID    map[string]int
	fieldsMask []uint64
	checkMasks [][]uint64
}

// buildMasks interns the format's field paths into bit positions. A
// format with more than 64 distinct paths keeps masksOK false and
// scores through scoreRel instead; results are identical either way.
func (ff *fpFormat) buildMasks() {
	ids := map[string]int{}
	intern := func(f string) {
		if _, ok := ids[f]; !ok {
			ids[f] = len(ids)
		}
	}
	for _, sig := range ff.sigs {
		for _, f := range sig.Fields {
			intern(f)
		}
		for _, c := range sig.Checks {
			for _, f := range c.Fields {
				intern(f)
			}
		}
	}
	if len(ids) > 64 {
		return
	}
	ff.fieldID = ids
	ff.fieldsMask = make([]uint64, len(ff.sigs))
	ff.checkMasks = make([][]uint64, len(ff.sigs))
	for i, sig := range ff.sigs {
		var m uint64
		for _, f := range sig.Fields {
			m |= 1 << ids[f]
		}
		ff.fieldsMask[i] = m
		cm := make([]uint64, len(sig.Checks))
		for j, c := range sig.Checks {
			var x uint64
			for _, f := range c.Fields {
				x |= 1 << ids[f]
			}
			cm[j] = x
		}
		ff.checkMasks[i] = cm
	}
	ff.masksOK = true
}

// Fingerprints returns the winnowing fingerprint set of one string:
// hash every k-gram (k = FingerprintK) with a rolling polynomial hash,
// slide a window of FingerprintWindow consecutive k-gram hashes, and
// keep each window's minimum (rightmost on ties, per the winnowing
// paper). Strings shorter than k hash wholly as a single fingerprint.
// The result is sorted and deduplicated; it is empty only for the
// empty string.
func Fingerprints(s string) []uint64 {
	if len(s) == 0 {
		return nil
	}
	if len(s) < FingerprintK {
		return []uint64{gramHash(s)}
	}
	n := len(s) - FingerprintK + 1
	hashes := make([]uint64, n)
	for i := 0; i < n; i++ {
		hashes[i] = gramHash(s[i : i+FingerprintK])
	}
	seen := map[uint64]bool{}
	var out []uint64
	keep := func(h uint64) {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	if n <= FingerprintWindow {
		// Fewer k-grams than one window: keep the single minimum.
		min := hashes[0]
		for _, h := range hashes[1:] {
			if h <= min {
				min = h
			}
		}
		keep(min)
	} else {
		prev := -1
		for i := 0; i+FingerprintWindow <= n; i++ {
			m := i
			for j := i + 1; j < i+FingerprintWindow; j++ {
				if hashes[j] <= hashes[m] {
					m = j // rightmost minimum
				}
			}
			if m != prev {
				prev = m
				keep(hashes[m])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// gramHash is FNV-1a over one k-gram (or a whole short string).
func gramHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sigKey hashes everything a signature's fingerprints depend on. It
// subsumes ContentKey and ProbeKey (so the sidecar inherits the
// signature index's invalidation triggers) and adds the check bodies
// themselves, so an index schema change that alters canonicalization
// also invalidates the derived prints.
func sigKey(sig *Signature) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00", sig.ContentKey, sig.ProbeKey, sig.FlippedSites)
	for _, f := range sig.Fields {
		fmt.Fprintf(h, "f%s\x00", f)
	}
	for _, c := range sig.Checks {
		fmt.Fprintf(h, "c%s\x00%v\x00", c.Cond, c.Fields)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// entryPrints computes one signature's fingerprint set: the union of
// the winnowed field paths and check conditions, sorted and
// deduplicated. Field paths are what queries intersect on (the
// soundness carrier); check-condition grams add similarity signal for
// inspection tooling without affecting soundness.
func entryPrints(sig *Signature) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	add := func(prints []uint64) {
		for _, p := range prints {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, f := range sig.Fields {
		add(Fingerprints(f))
	}
	for _, c := range sig.Checks {
		add(Fingerprints(c.Cond))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildEntry fingerprints one signature.
func buildEntry(sig *Signature) *FingerprintEntry {
	return &FingerprintEntry{
		Donor:  sig.Donor,
		Format: sig.Format,
		SigKey: sigKey(sig),
		Prints: entryPrints(sig),
	}
}

// AttachFingerprints derives the runtime inverted postings from the
// sidecar and installs them on the index, enabling the prefiltered
// select path. Entries must cover the index exactly (same
// donor/format pairs, current sig keys); a format with any missing or
// stale entry is left unattached and falls back to the exhaustive
// scan, so a half-refreshed sidecar can never change selection
// results. Attach before publishing the index to other goroutines.
func (ix *Index) AttachFingerprints(fp *FingerprintIndex) error {
	if fp == nil {
		ix.fp = nil
		return nil
	}
	if fp.Version != FingerprintVersion || fp.K != FingerprintK || fp.Window != FingerprintWindow {
		return fmt.Errorf("corpus: fingerprint index parameters v%d/k%d/w%d, want v%d/k%d/w%d",
			fp.Version, fp.K, fp.Window, FingerprintVersion, FingerprintK, FingerprintWindow)
	}
	byKey := map[string]*FingerprintEntry{}
	for _, e := range fp.Entries {
		if e == nil {
			return fmt.Errorf("corpus: null fingerprint entry")
		}
		byKey[e.Donor+"\x00"+e.Format] = e
	}
	byFormat := map[string]*fpFormat{}
	stale := map[string]bool{}
	for _, sig := range ix.Signatures {
		e, ok := byKey[sig.Donor+"\x00"+sig.Format]
		if !ok || e.SigKey != sigKey(sig) {
			stale[sig.Format] = true
			continue
		}
		ff := byFormat[sig.Format]
		if ff == nil {
			ff = &fpFormat{}
			for i := range ff.shards {
				ff.shards[i] = map[uint64][]int32{}
			}
			byFormat[sig.Format] = ff
		}
		ord := int32(len(ff.sigs))
		ff.sigs = append(ff.sigs, sig)
		for _, p := range e.Prints {
			sh := ff.shards[p%fpShardCount]
			sh[p] = append(sh[p], ord)
		}
	}
	for format := range stale {
		delete(byFormat, format)
	}
	for _, ff := range byFormat {
		ff.buildMasks()
		ff.zero = make([]int32, len(ff.sigs))
		for i := range ff.zero {
			ff.zero[i] = int32(i)
		}
		sort.Slice(ff.zero, func(i, j int) bool {
			a, b := ff.sigs[ff.zero[i]], ff.sigs[ff.zero[j]]
			if a.FlippedSites != b.FlippedSites {
				return a.FlippedSites > b.FlippedSites
			}
			return a.Donor < b.Donor
		})
	}
	ix.fp = &fpRuntime{index: fp, byFormat: byFormat}
	return nil
}

// Fingerprints returns the attached sidecar, nil when the index runs
// exhaustively.
func (ix *Index) Fingerprints() *FingerprintIndex {
	if ix.fp == nil {
		return nil
	}
	return ix.fp.index
}

// fpRuntime pairs the persisted sidecar with its derived postings.
type fpRuntime struct {
	index    *FingerprintIndex
	byFormat map[string]*fpFormat
}

// candidates returns the ordinals of signatures whose entry carries
// the complete fingerprint set of at least one relevant field path,
// sorted and deduplicated. Requiring every print of a path — a
// conjunctive intersection of its posting lists — loses no positive
// (a donor sharing the whole path carries all of its prints) while
// rejecting donors whose fields merely share a hierarchical prefix
// with the perturbed one.
func (ff *fpFormat) candidates(relevant []string) []int32 {
	var out []int32
	for _, f := range relevant {
		prints := Fingerprints(f)
		if len(prints) == 0 {
			continue
		}
		lists := make([][]int32, 0, len(prints))
		for _, p := range prints {
			l := ff.shards[p%fpShardCount][p]
			if len(l) == 0 {
				lists = nil
				break
			}
			lists = append(lists, l)
		}
		if lists == nil {
			continue
		}
		// Intersect smallest-first so the working set shrinks fastest.
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		cur := lists[0]
		for _, l := range lists[1:] {
			if cur = intersectOrds(cur, l); len(cur) == 0 {
				break
			}
		}
		out = unionOrds(out, cur)
	}
	return out
}

// intersectOrds merges two sorted ordinal lists into their
// intersection.
func intersectOrds(a, b []int32) []int32 {
	out := make([]int32, 0, len(a))
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionOrds merges two sorted ordinal lists into their deduplicated
// union.
func unionOrds(a, b []int32) []int32 {
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
