// Persistence and incremental refresh for the fingerprint sidecar.
// The sidecar lives beside the signature index (path + ".fp"), is
// written atomically, and is reconciled entry-by-entry: an entry whose
// SigKey still matches its signature is reused verbatim, everything
// else is re-winnowed concurrently with a deterministic merge in
// signature-index order.
package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sync"

	"codephage/internal/fsatomic"
)

// FingerprintSidecar returns the sidecar path for an index path
// ("" stays "" — an in-memory index keeps its prints in memory too).
func FingerprintSidecar(indexPath string) string {
	if indexPath == "" {
		return ""
	}
	return indexPath + ".fp"
}

// Save writes the fingerprint index atomically and durably, like the
// signature index it shadows.
func (fp *FingerprintIndex) Save(path string) error {
	data, err := json.MarshalIndent(fp, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return fsatomic.WriteFile(path, data, 0o644)
}

// DecodeFingerprints parses serialized sidecar bytes. Malformed,
// truncated, version- or parameter-mismatched input returns an error —
// never a panic — which the load path treats as "rebuild". Accepted
// input is canonical: entries non-null with non-empty donor/format,
// one entry per donor/format pair, prints strictly increasing.
func DecodeFingerprints(data []byte) (*FingerprintIndex, error) {
	var fp FingerprintIndex
	if err := json.Unmarshal(data, &fp); err != nil {
		return nil, err
	}
	if fp.Version != FingerprintVersion {
		return nil, fmt.Errorf("fingerprint version %d, want %d", fp.Version, FingerprintVersion)
	}
	if fp.K != FingerprintK || fp.Window != FingerprintWindow {
		return nil, fmt.Errorf("fingerprint parameters k=%d w=%d, want k=%d w=%d",
			fp.K, fp.Window, FingerprintK, FingerprintWindow)
	}
	seen := map[string]bool{}
	for i, e := range fp.Entries {
		if e == nil {
			return nil, fmt.Errorf("null fingerprint entry %d", i)
		}
		if e.Donor == "" || e.Format == "" {
			return nil, fmt.Errorf("fingerprint entry %d names no donor/format", i)
		}
		key := e.Donor + "\x00" + e.Format
		if seen[key] {
			return nil, fmt.Errorf("duplicate fingerprint entry for %s/%s", e.Donor, e.Format)
		}
		seen[key] = true
		for j := 1; j < len(e.Prints); j++ {
			if e.Prints[j] <= e.Prints[j-1] {
				return nil, fmt.Errorf("fingerprint entry %d prints not strictly increasing", i)
			}
		}
	}
	return &fp, nil
}

// LoadFingerprints reads a sidecar from disk.
func LoadFingerprints(path string) (*FingerprintIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fp, err := DecodeFingerprints(data)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", path, err)
	}
	return fp, nil
}

// BuildFingerprints winnows every signature of an index from scratch.
func BuildFingerprints(ix *Index) *FingerprintIndex {
	fp, _ := RefreshFingerprints(nil, ix)
	return fp
}

// RefreshFingerprints reconciles a sidecar against the current index:
// entries whose SigKey still matches are reused, stale or missing ones
// are re-winnowed by a worker pool, and the merge is deterministic —
// entries come out in signature-index order regardless of worker
// scheduling. Returns the reconciled sidecar and the number of entries
// rebuilt.
func RefreshFingerprints(old *FingerprintIndex, ix *Index) (*FingerprintIndex, int) {
	reuse := map[string]*FingerprintEntry{}
	if old != nil && old.Version == FingerprintVersion && old.K == FingerprintK && old.Window == FingerprintWindow {
		for _, e := range old.Entries {
			if e != nil {
				reuse[e.Donor+"\x00"+e.Format] = e
			}
		}
	}
	out := make([]*FingerprintEntry, len(ix.Signatures))
	var todo []int
	for i, sig := range ix.Signatures {
		if e, ok := reuse[sig.Donor+"\x00"+sig.Format]; ok && e.SigKey == sigKey(sig) {
			out[i] = e
			continue
		}
		todo = append(todo, i)
	}
	if len(todo) > 0 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(todo) {
			workers = len(todo)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i] = buildEntry(ix.Signatures[i])
				}
			}()
		}
		for _, i := range todo {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return &FingerprintIndex{
		Version: FingerprintVersion,
		K:       FingerprintK,
		Window:  FingerprintWindow,
		Entries: out,
	}, len(todo)
}

// LoadOrBuildFingerprints returns a warm sidecar for the index: it
// loads path if present, reconciles every entry against the current
// signatures, rebuilds from scratch when the file is missing,
// unreadable or parameter-mismatched, and persists the result whenever
// anything changed. path == "" keeps the sidecar in memory only. The
// returned count is the number of entries re-winnowed.
func LoadOrBuildFingerprints(path string, ix *Index) (*FingerprintIndex, int, error) {
	var old *FingerprintIndex
	if path != "" {
		fp, err := LoadFingerprints(path)
		switch {
		case err == nil:
			old = fp
		case errors.Is(err, fs.ErrNotExist):
			// First build.
		default:
			// Unreadable or mismatched sidecar: rebuild it.
		}
	}
	fp, rebuilt := RefreshFingerprints(old, ix)
	if path != "" && (old == nil || rebuilt > 0 || len(fp.Entries) != len(old.Entries)) {
		if err := fp.Save(path); err != nil {
			return nil, rebuilt, err
		}
	}
	return fp, rebuilt, nil
}
