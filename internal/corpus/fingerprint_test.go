package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fpTestSig(donor, format string, fields ...string) *Signature {
	sig := &Signature{
		Donor: donor, Paper: "t", Format: format,
		ContentKey: "ck-" + donor, ProbeKey: "pk-" + format,
		Fields: fields, FlippedSites: 1,
	}
	for _, f := range fields {
		sig.Checks = append(sig.Checks, CheckSig{Cond: "Ule(" + f + ", 4096)", Fields: []string{f}})
	}
	return sig
}

func TestFingerprintsDeterministicAndSorted(t *testing.T) {
	cases := []string{
		"/start_frame/content/width",
		"/ihdr/width",
		"/eth/pro", // exactly k bytes
		"/short",   // below k: whole-string hash
		"Ule(/screen/width, 16384) && Ule(/screen/height, 16384)",
	}
	for _, s := range cases {
		a, b := Fingerprints(s), Fingerprints(s)
		if len(a) == 0 {
			t.Errorf("Fingerprints(%q) is empty", s)
		}
		if string(mustJSON(t, a)) != string(mustJSON(t, b)) {
			t.Errorf("Fingerprints(%q) not deterministic", s)
		}
		for i := 1; i < len(a); i++ {
			if a[i] <= a[i-1] {
				t.Errorf("Fingerprints(%q) not strictly increasing at %d", s, i)
			}
		}
	}
	if got := Fingerprints(""); got != nil {
		t.Errorf("Fingerprints(\"\") = %v, want nil", got)
	}
	if a, b := Fingerprints("/ihdr/width"), Fingerprints("/ihdr/height"); string(mustJSON(t, a)) == string(mustJSON(t, b)) {
		t.Error("distinct paths produced identical fingerprint sets")
	}
}

// TestEntryPrintsCoverFields pins the soundness carrier: a
// signature's entry contains every fingerprint of every path in
// Signature.Fields, so a query that fingerprints a shared whole path
// always intersects the entry's posting set.
func TestEntryPrintsCoverFields(t *testing.T) {
	sig := fpTestSig("d1", "mjpg", "/start_frame/content/width", "/start_frame/content/height", "/version")
	in := map[uint64]bool{}
	for _, p := range entryPrints(sig) {
		in[p] = true
	}
	for _, f := range sig.Fields {
		for _, p := range Fingerprints(f) {
			if !in[p] {
				t.Fatalf("entry prints miss fingerprint %d of field %s", p, f)
			}
		}
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSigKeySensitivity(t *testing.T) {
	base := fpTestSig("d1", "mgif", "/screen/width")
	key := sigKey(base)
	mutations := []func(*Signature){
		func(s *Signature) { s.ContentKey = "other" },
		func(s *Signature) { s.ProbeKey = "other" },
		func(s *Signature) { s.FlippedSites++ },
		func(s *Signature) { s.Fields = append(s.Fields, "/screen/height") },
		func(s *Signature) { s.Checks[0].Cond = "Ule(/screen/width, 8192)" },
	}
	for i, mut := range mutations {
		sig := fpTestSig("d1", "mgif", "/screen/width")
		mut(sig)
		if sigKey(sig) == key {
			t.Errorf("mutation %d did not change the sig key", i)
		}
	}
	if sigKey(fpTestSig("d1", "mgif", "/screen/width")) != key {
		t.Error("sig key not deterministic")
	}
}

func TestRefreshFingerprintsReusesWarmEntries(t *testing.T) {
	ix := &Index{Version: Version, Signatures: []*Signature{
		fpTestSig("d1", "mgif", "/screen/width"),
		fpTestSig("d2", "mgif", "/image/height"),
		fpTestSig("d2", "mpng", "/ihdr/width"),
	}}
	fp, rebuilt := RefreshFingerprints(nil, ix)
	if rebuilt != 3 || len(fp.Entries) != 3 {
		t.Fatalf("cold build: rebuilt %d, entries %d", rebuilt, len(fp.Entries))
	}
	for i, e := range fp.Entries {
		if e.Donor != ix.Signatures[i].Donor || e.Format != ix.Signatures[i].Format {
			t.Fatalf("entry %d out of index order: %s/%s", i, e.Donor, e.Format)
		}
		if len(e.Prints) == 0 {
			t.Fatalf("entry %d has no prints", i)
		}
	}

	// Warm refresh: everything reused.
	warm, rebuilt := RefreshFingerprints(fp, ix)
	if rebuilt != 0 {
		t.Errorf("warm refresh rebuilt %d entries", rebuilt)
	}
	for i := range warm.Entries {
		if warm.Entries[i] != fp.Entries[i] {
			t.Errorf("warm entry %d not reused", i)
		}
	}

	// One signature changes: exactly its entry is re-winnowed.
	ix.Signatures[1] = fpTestSig("d2", "mgif", "/image/width")
	part, rebuilt := RefreshFingerprints(fp, ix)
	if rebuilt != 1 {
		t.Errorf("partial refresh rebuilt %d entries, want 1", rebuilt)
	}
	if part.Entries[0] != fp.Entries[0] || part.Entries[2] != fp.Entries[2] {
		t.Error("unchanged entries not reused")
	}
	if part.Entries[1] == fp.Entries[1] {
		t.Error("stale entry reused")
	}
}

func TestDecodeFingerprintsRejectsHostileInput(t *testing.T) {
	good := BuildFingerprints(&Index{Version: Version, Signatures: []*Signature{
		fpTestSig("d1", "mgif", "/screen/width"),
	}})
	data, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFingerprints(data); err != nil {
		t.Fatalf("canonical sidecar rejected: %v", err)
	}
	bad := map[string]string{
		"empty object":    `{}`,
		"wrong version":   `{"version":99,"k":8,"window":4,"entries":[]}`,
		"wrong k":         `{"version":1,"k":5,"window":4,"entries":[]}`,
		"wrong window":    `{"version":1,"k":8,"window":9,"entries":[]}`,
		"null entry":      `{"version":1,"k":8,"window":4,"entries":[null]}`,
		"anonymous entry": `{"version":1,"k":8,"window":4,"entries":[{"donor":"","format":"mgif","sig_key":"x","prints":[1]}]}`,
		"duplicate entry": `{"version":1,"k":8,"window":4,"entries":[{"donor":"d","format":"f","sig_key":"x","prints":[1]},{"donor":"d","format":"f","sig_key":"y","prints":[2]}]}`,
		"unsorted prints": `{"version":1,"k":8,"window":4,"entries":[{"donor":"d","format":"f","sig_key":"x","prints":[2,1]}]}`,
		"dup prints":      `{"version":1,"k":8,"window":4,"entries":[{"donor":"d","format":"f","sig_key":"x","prints":[1,1]}]}`,
		"truncated":       string(data[:len(data)/2]),
		"not json":        "prints!",
	}
	for name, in := range bad {
		if _, err := DecodeFingerprints([]byte(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestAttachFingerprintsFallsBackPerFormat(t *testing.T) {
	ix := &Index{Version: Version, Signatures: []*Signature{
		fpTestSig("d1", "mgif", "/screen/width"),
		fpTestSig("d2", "mpng", "/ihdr/width"),
	}}
	fp := BuildFingerprints(ix)
	// Corrupt mgif's entry key: that format must fall back, mpng stays
	// prefiltered.
	fp.Entries[0].SigKey = "stale"
	if err := ix.AttachFingerprints(fp); err != nil {
		t.Fatal(err)
	}
	if ix.fp.byFormat["mgif"] != nil {
		t.Error("stale mgif entry still attached")
	}
	if ix.fp.byFormat["mpng"] == nil {
		t.Error("fresh mpng entry not attached")
	}
}

func TestFingerprintSidecarPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.json")
	ix := &Index{Version: Version, Signatures: []*Signature{
		fpTestSig("d1", "mgif", "/screen/width"),
	}}
	side := FingerprintSidecar(path)
	if !strings.HasSuffix(side, ".fp") {
		t.Fatalf("sidecar path %q", side)
	}
	if FingerprintSidecar("") != "" {
		t.Fatal("in-memory index mapped to an on-disk sidecar")
	}
	if _, rebuilt, err := LoadOrBuildFingerprints(side, ix); err != nil || rebuilt != 1 {
		t.Fatalf("cold sidecar build: rebuilt %d, err %v", rebuilt, err)
	}
	if _, err := os.Stat(side); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	if _, rebuilt, err := LoadOrBuildFingerprints(side, ix); err != nil || rebuilt != 0 {
		t.Fatalf("warm sidecar load: rebuilt %d, err %v", rebuilt, err)
	}
	// Corrupt the sidecar: the next load rebuilds and rewrites it.
	if err := os.WriteFile(side, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rebuilt, err := LoadOrBuildFingerprints(side, ix); err != nil || rebuilt != 1 {
		t.Fatalf("corrupt sidecar reload: rebuilt %d, err %v", rebuilt, err)
	}
	if fp, err := LoadFingerprints(side); err != nil || len(fp.Entries) != 1 {
		t.Fatalf("rewritten sidecar unreadable: %v", err)
	}
}
