// Lazy, prefiltered selection: SelectStream ranks once, then probes
// donors one at a time as the consumer asks for them, so survival-
// probe cost scales with how far down the ranking the pipeline
// actually walks — retries, not corpus size.
package corpus

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"codephage/internal/hachoir"
	"codephage/internal/vm"
)

// dissectCache memoizes seed dissections per (format, seed bytes).
// A dissection is a pure function of its inputs and is only read by
// the selection path (DiffFields/FieldAt), so sharing one across
// selections — phaged answers many queries over the same per-format
// registry seed — is sound. Bounded defensively: selection seeds are
// few, but a pathological caller cannot grow the cache without limit.
var dissectCache sync.Map // format + "\x00" + seed -> *hachoir.Dissection
var dissectCacheLen atomic.Int64

const dissectCacheMax = 1024

func dissectSeed(format string, seed []byte) (*hachoir.Dissection, error) {
	key := format + "\x00" + string(seed)
	if dis, ok := dissectCache.Load(key); ok {
		return dis.(*hachoir.Dissection), nil
	}
	dissector, ok := hachoir.ByName(format)
	if !ok {
		return nil, fmt.Errorf("corpus: unknown input format %q", format)
	}
	dis, err := dissector.Dissect(seed)
	if err != nil {
		return nil, err
	}
	if dissectCacheLen.Add(1) <= dissectCacheMax {
		dissectCache.Store(key, dis)
	} else {
		dissectCacheLen.Add(-1)
	}
	return dis, nil
}

// StreamStats describes how a stream's ranked order was produced and
// how far it has been consumed.
type StreamStats struct {
	// Donors is the number of format-matching signatures in the ranked
	// order (prefiltered or not, every indexed donor appears).
	Donors int
	// Prefiltered reports whether the fingerprint postings answered
	// the query.
	Prefiltered bool
	// Candidates is the number of signatures the postings admitted for
	// exact scoring (equals Donors on the exhaustive path).
	Candidates int
	// Skipped is the number of signatures never scored — they take
	// their precomputed zero-score order without a scorer pass.
	Skipped int
	// Fallback reports that the exhaustive-equivalent order was used:
	// the pre-filter was cold/unattached, or it admitted no candidate
	// (an empty candidate set proves every donor scores zero, so the
	// precomputed zero order is served — still counted as a fallback).
	Fallback bool
	// Probed counts donors the survival probe has loaded and run so
	// far.
	Probed int
}

// DonorStream walks one selection's ranked order lazily. Next loads
// and VM-probes donors in rank order and returns the next survivor;
// donors past the consumed prefix are never loaded. Not safe for
// concurrent use.
type DonorStream struct {
	seed, errIn []byte
	load        ModuleLoader
	// Exactly one head form is populated: head holds pre-ranked
	// candidates on the exhaustive-fallback path; headSc holds the
	// prefiltered path's scored positives as packed (score key,
	// ordinal) pairs — Candidates are only materialized as the stream
	// serves them, so ranking cost stays off the allocator. sigs and
	// tailOrds carry the zero-score remainder: ordinals (in the
	// precomputed zero-score order, a shared per-format slice) into the
	// format's signature list, with inHead masking ordinals already
	// ranked in headSc.
	head     []Candidate
	headSc   []scoredOrd
	sigs     []*Signature
	tailOrds []int32
	inHead   []bool
	hi, ti   int
	sel      *Selection
	stats    StreamStats
	// onProbe, when set, observes every probe outcome (the Selector
	// hooks its survivor counters here).
	onProbe func(survived bool)
}

// SelectStream starts a lazy selection: the ranked order is computed
// immediately (through the fingerprint pre-filter when attached), but
// no donor is loaded or probed until Next is called.
func (ix *Index) SelectStream(format string, seed, errIn []byte, load ModuleLoader) (*DonorStream, error) {
	dis, err := dissectSeed(format, seed)
	if err != nil {
		return nil, err
	}
	st := &DonorStream{
		seed:  seed,
		errIn: errIn,
		load:  load,
		sel: &Selection{
			Format:         format,
			RelevantFields: RelevantFields(dis, seed, errIn),
		},
	}
	var ff *fpFormat
	if ix.fp != nil {
		ff = ix.fp.byFormat[format]
	}
	if ff == nil {
		// Pre-filter cold or the format not fully covered: exhaustive
		// scoring of every format-matching signature.
		st.head = rank(ix.ForFormat(format), st.sel.RelevantFields)
		st.stats = StreamStats{
			Donors:     len(st.head),
			Candidates: len(st.head),
			Fallback:   true,
		}
		return st, nil
	}
	ords := ff.candidates(st.sel.RelevantFields)
	st.stats = StreamStats{
		Donors:      len(ff.sigs),
		Prefiltered: true,
		Candidates:  len(ords),
		Skipped:     len(ff.sigs) - len(ords),
	}
	st.sigs = ff.sigs
	st.tailOrds = ff.zero
	if len(ords) == 0 {
		// No donor shares the fingerprints of a perturbed field, so
		// every donor scores zero and the precomputed zero order is the
		// exhaustive ranking.
		st.stats.Fallback = true
		return st, nil
	}
	// Score only the admitted candidates, against one shared relevance
	// set — interned field masks when the format supports them, the
	// string relevance map otherwise. Candidates that score positive
	// form the head of the ranking (any positive score sorts before
	// every zero score); zero-scoring candidates fall through to their
	// slot in the zero-order tail.
	var relMask uint64
	var rel map[string]bool
	if ff.masksOK {
		for _, f := range st.sel.RelevantFields {
			if id, ok := ff.fieldID[f]; ok {
				relMask |= 1 << id
			}
		}
	} else {
		rel = make(map[string]bool, len(st.sel.RelevantFields))
		for _, f := range st.sel.RelevantFields {
			rel[f] = true
		}
	}
	st.headSc = make([]scoredOrd, 0, len(ords))
	st.inHead = make([]bool, len(ff.sigs))
	for _, ord := range ords {
		sig := ff.sigs[ord]
		var hits, overlap int
		if ff.masksOK {
			overlap = bits.OnesCount64(ff.fieldsMask[ord] & relMask)
			for _, cm := range ff.checkMasks[ord] {
				if cm&relMask != 0 {
					hits++
				}
			}
		} else {
			hits, overlap = scoreRel(sig, rel)
		}
		if hits == 0 && overlap == 0 {
			continue
		}
		st.headSc = append(st.headSc, scoredOrd{key: packScore(hits, overlap, sig.FlippedSites), ord: ord})
		st.inHead[ord] = true
	}
	sort.Slice(st.headSc, func(i, j int) bool {
		a, b := st.headSc[i], st.headSc[j]
		if a.key != b.key {
			return a.key > b.key
		}
		return ff.sigs[a.ord].Donor < ff.sigs[b.ord].Donor
	})
	return st, nil
}

// scoredOrd is one prefiltered positive: its packed rank key and its
// ordinal in the format's signature list.
type scoredOrd struct {
	key uint64
	ord int32
}

const (
	scorePackBits = 21
	scorePackMask = 1<<scorePackBits - 1
)

// packScore packs (CheckHits, FieldOverlap, FlippedSites) into one
// key whose descending numeric order is exactly the rank comparator's
// score order. Each component is far below 2^21 in practice (check
// and field counts are per-signature, flip counts per-probe), so the
// fields cannot carry.
func packScore(hits, overlap, flipped int) uint64 {
	return uint64(hits)<<(2*scorePackBits) | uint64(overlap)<<scorePackBits | uint64(flipped)
}

// candidate materializes one scored positive.
func (st *DonorStream) candidate(sc scoredOrd) Candidate {
	sig := st.sigs[sc.ord]
	return Candidate{
		Donor: sig.Donor, Format: sig.Format,
		CheckHits:    int(sc.key >> (2 * scorePackBits)),
		FieldOverlap: int(sc.key>>scorePackBits) & scorePackMask,
		Flipped:      sig.FlippedSites,
	}
}

// next returns the next candidate in rank order without probing it,
// or nil when the order is exhausted.
func (st *DonorStream) next() *Candidate {
	if st.hi < len(st.head) {
		c := st.head[st.hi]
		st.hi++
		return &c
	}
	if st.hi < len(st.headSc) {
		c := st.candidate(st.headSc[st.hi])
		st.hi++
		return &c
	}
	for st.ti < len(st.tailOrds) {
		ord := st.tailOrds[st.ti]
		st.ti++
		if st.inHead != nil && st.inHead[ord] {
			continue
		}
		sig := st.sigs[ord]
		return &Candidate{
			Donor: sig.Donor, Format: sig.Format, Flipped: sig.FlippedSites,
		}
	}
	return nil
}

// Next loads and probes candidates down the ranked order until one
// survives both the seed and the error input, recording rejections on
// the way, and returns that survivor (nil when the order is
// exhausted). The returned candidate carries the probed module.
func (st *DonorStream) Next() (*Candidate, error) {
	for {
		cand := st.next()
		if cand == nil {
			return nil, nil
		}
		st.stats.Probed++
		mod, lerr := st.load(cand.Donor)
		if lerr != nil {
			cand.Reason = lerr.Error()
		} else {
			runner := vm.NewRunner(mod)
			if r := runner.Run(st.seed); !r.OK() {
				cand.Reason = fmt.Sprintf("crashes on seed: %v", r.Trap)
			} else if r := runner.Run(st.errIn); !r.OK() {
				cand.Reason = fmt.Sprintf("crashes on error input: %v", r.Trap)
			}
		}
		if cand.Reason != "" {
			if st.onProbe != nil {
				st.onProbe(false)
			}
			st.sel.Rejected = append(st.sel.Rejected, *cand)
			continue
		}
		cand.Survived = true
		cand.mod = mod
		if st.onProbe != nil {
			st.onProbe(true)
		}
		st.sel.Ranked = append(st.sel.Ranked, *cand)
		return cand, nil
	}
}

// Selection returns the triage accumulated so far: Ranked holds the
// survivors Next returned, Rejected the probed-and-rejected prefix.
// Draining the stream first yields the same Selection the exhaustive
// Select produces.
func (st *DonorStream) Selection() *Selection { return st.sel }

// Stats reports how the ranked order was produced and how much of it
// has been probed.
func (st *DonorStream) Stats() StreamStats { return st.stats }

// Order materializes the full ranked candidate order without loading
// or probing anything — the probe-free view differential tests and
// inspection tooling compare. It does not advance the stream.
func (st *DonorStream) Order() []Candidate {
	out := append([]Candidate(nil), st.head...)
	for _, sc := range st.headSc {
		out = append(out, st.candidate(sc))
	}
	for _, ord := range st.tailOrds {
		if st.inHead != nil && st.inHead[ord] {
			continue
		}
		sig := st.sigs[ord]
		out = append(out, Candidate{
			Donor: sig.Donor, Format: sig.Format, Flipped: sig.FlippedSites,
		})
	}
	return out
}
