// On-disk persistence for the donor index: versioned JSON, written
// atomically, reconciled entry-by-entry against the live registry on
// load so that donor-source or dissector changes invalidate exactly
// the affected signatures.
package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"codephage/internal/fsatomic"
	"codephage/internal/smt"
)

// Save writes the index as JSON, atomically and durably (synced temp
// file + rename + directory sync via the shared fsatomic writer), so
// a crashed writer never leaves a torn or silently stale index behind.
func (ix *Index) Save(path string) error {
	data, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return fsatomic.WriteFile(path, data, 0o644)
}

// Decode parses serialized index bytes. Malformed, truncated or
// version-mismatched input returns an error — never a panic — which
// LoadOrBuild treats as "rebuild".
func Decode(data []byte) (*Index, error) {
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, err
	}
	if ix.Version != Version {
		return nil, fmt.Errorf("index version %d, want %d", ix.Version, Version)
	}
	// A hand-corrupted index can hold null entries; the lookup paths
	// assume non-nil signatures, so reject them at the boundary.
	for i, sig := range ix.Signatures {
		if sig == nil {
			return nil, fmt.Errorf("null signature entry %d", i)
		}
	}
	return &ix, nil
}

// Load reads an index from disk.
func Load(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ix, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", path, err)
	}
	return ix, nil
}

// LoadOrBuild returns a warm index for the donors: it loads path if
// present, reconciles every entry against the current donor sources
// and dissector layouts (rebuilding stale ones), builds from scratch
// when the file is missing or unreadable, and persists the result
// whenever anything changed. path == "" keeps the index in memory
// only. The returned count is the number of signatures rebuilt (0
// means the on-disk index was fully warm).
func LoadOrBuild(path string, donors []Donor) (*Index, int, error) {
	return loadOrBuild(path, donors, nil)
}

// loadOrBuild is LoadOrBuild over an explicit constraint service
// (nil = the process-wide default); Selector routes its configured
// service through here.
func loadOrBuild(path string, donors []Donor, svc *smt.Service) (*Index, int, error) {
	var old *Index
	if path != "" {
		ix, err := Load(path)
		switch {
		case err == nil:
			old = ix
		case errors.Is(err, fs.ErrNotExist):
			// First build.
		default:
			// Unreadable or version-mismatched index: rebuild it.
		}
	}
	ix, rebuilt, err := refresh(old, donors, svc)
	if err != nil {
		return nil, rebuilt, err
	}
	if path != "" && (old == nil || rebuilt > 0 || len(ix.Signatures) != len(old.Signatures)) {
		if err := ix.Save(path); err != nil {
			return nil, rebuilt, err
		}
	}
	return ix, rebuilt, nil
}
