// Prefilter correctness and performance: the fingerprint pre-filter
// must never change what selection returns — prefiltered and
// exhaustive rankings are compared structurally across generated
// corpora and the real registry — and must beat the exhaustive scan
// by a wide margin at thousand-donor scale.
package corpus_test

import (
	"encoding/json"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/ir"
	"codephage/internal/scenario"
)

// attachedCopy returns two views of one signature set: an index with
// the fingerprint pre-filter attached and a bare exhaustive one.
func attachedCopy(t testing.TB, ix *corpus.Index) (pre, ex *corpus.Index) {
	t.Helper()
	pre = &corpus.Index{Version: ix.Version, Signatures: ix.Signatures}
	if err := pre.AttachFingerprints(corpus.BuildFingerprints(ix)); err != nil {
		t.Fatal(err)
	}
	ex = &corpus.Index{Version: ix.Version, Signatures: ix.Signatures}
	return pre, ex
}

// noLoad fails the test if selection tries to load a donor.
func noLoad(t testing.TB) corpus.ModuleLoader {
	return func(donor string) (*ir.Module, error) {
		t.Fatalf("ranking loaded donor %q without a probe being consumed", donor)
		return nil, nil
	}
}

// TestPrefilterMatchesExhaustiveRanking is the differential property
// table: over ≥50 generated corpora (and one query per format each),
// the prefiltered ranked order — scores included — must equal the
// exhaustive one exactly. Probe-free: only the ranking layer is under
// test, so the sweep stays cheap.
func TestPrefilterMatchesExhaustiveRanking(t *testing.T) {
	const seeds = 50
	queries := 0
	for s := int64(1); s <= seeds; s++ {
		ix, _ := scenario.SyntheticCorpus(9000+s*131, 28)
		pre, ex := attachedCopy(t, ix)
		for q := 0; q < 7; q++ {
			format, seedIn, errIn, err := scenario.PoolQuery(9000+s*131, q)
			if err != nil {
				t.Fatal(err)
			}
			stPre, err := pre.SelectStream(format, seedIn, errIn, noLoad(t))
			if err != nil {
				t.Fatal(err)
			}
			stEx, err := ex.SelectStream(format, seedIn, errIn, noLoad(t))
			if err != nil {
				t.Fatal(err)
			}
			if !stPre.Stats().Prefiltered {
				t.Fatalf("seed %d query %d: pre-filter did not answer", s, q)
			}
			if stEx.Stats().Prefiltered {
				t.Fatalf("seed %d query %d: exhaustive arm unexpectedly prefiltered", s, q)
			}
			a, b := mustMarshal(t, stPre.Order()), mustMarshal(t, stEx.Order())
			if string(a) != string(b) {
				t.Fatalf("seed %d query %d (%s): prefiltered order diverges\nprefiltered: %s\nexhaustive:  %s",
					s, q, format, a, b)
			}
			queries++
		}
	}
	t.Logf("compared %d prefiltered/exhaustive rankings", queries)
}

// TestPrefilterMatchesExhaustiveSelection drains both arms with real
// probes over a compiled pool: the full Selection — survivors,
// rejections, reasons, order — must be identical.
func TestPrefilterMatchesExhaustiveSelection(t *testing.T) {
	for s := int64(1); s <= 3; s++ {
		ix, loader := scenario.SyntheticCorpus(100+s, 10)
		pre, ex := attachedCopy(t, ix)
		for q := 0; q < 3; q++ {
			format, seedIn, errIn, err := scenario.PoolQuery(100+s, q)
			if err != nil {
				t.Fatal(err)
			}
			selPre, err := pre.Select(format, seedIn, errIn, loader)
			if err != nil {
				t.Fatal(err)
			}
			selEx, err := ex.Select(format, seedIn, errIn, loader)
			if err != nil {
				t.Fatal(err)
			}
			a, b := mustMarshal(t, selPre), mustMarshal(t, selEx)
			if string(a) != string(b) {
				t.Fatalf("seed %d query %d: drained selection diverges\nprefiltered: %s\nexhaustive:  %s", s, q, a, b)
			}
		}
	}
}

// TestPrefilterMatchesExhaustiveOnRegistry runs the same differential
// over the real donor registry for every Figure-8 target: real
// discovered signatures, real error inputs, full drain.
func TestPrefilterMatchesExhaustiveOnRegistry(t *testing.T) {
	ix, err := corpus.Build(corpus.RegistryDonors())
	if err != nil {
		t.Fatal(err)
	}
	pre, ex := attachedCopy(t, ix)
	for _, tgt := range apps.Targets() {
		tgt := tgt
		t.Run(tgt.Recipient+"/"+tgt.ID, func(t *testing.T) {
			errIn, err := figure8.ErrorInputFor(tgt)
			if err != nil {
				t.Fatal(err)
			}
			selPre, err := pre.Select(tgt.Format, tgt.Seed, errIn, corpus.RegistryLoader)
			if err != nil {
				t.Fatal(err)
			}
			selEx, err := ex.Select(tgt.Format, tgt.Seed, errIn, corpus.RegistryLoader)
			if err != nil {
				t.Fatal(err)
			}
			a, b := mustMarshal(t, selPre), mustMarshal(t, selEx)
			if string(a) != string(b) {
				t.Fatalf("registry selection diverges\nprefiltered: %s\nexhaustive:  %s", a, b)
			}
		})
	}
}

func mustMarshal(t testing.TB, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// countingLoader wraps a loader and counts invocations.
func countingLoader(load corpus.ModuleLoader, n *int) corpus.ModuleLoader {
	return func(donor string) (*ir.Module, error) {
		*n++
		return load(donor)
	}
}

// TestSelectStreamProbesLazily is the eager-probing regression test:
// consuming one candidate from the stream must load exactly the
// donors up to and including the first survivor — donors past the
// consumed prefix are never loaded or probed — while the drained form
// still probes everything.
func TestSelectStreamProbesLazily(t *testing.T) {
	ix, loader := scenario.SyntheticCorpus(4242, 56)
	pre, ex := attachedCopy(t, ix)
	format, seedIn, errIn, err := scenario.PoolQuery(4242, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := len(ix.ForFormat(format))
	if total < 4 {
		t.Fatalf("pool has only %d %s donors", total, format)
	}

	streamed := 0
	st, err := pre.SelectStream(format, seedIn, errIn, countingLoader(loader, &streamed))
	if err != nil {
		t.Fatal(err)
	}
	cand, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil {
		t.Fatal("no donor survives the pool query")
	}
	sel := st.Selection()
	if streamed != len(sel.Rejected)+1 {
		t.Errorf("loader ran %d times for %d rejections + 1 survivor", streamed, len(sel.Rejected))
	}
	if streamed >= total {
		t.Errorf("consuming one candidate loaded all %d donors", total)
	}
	if st.Stats().Probed != streamed {
		t.Errorf("stream stats count %d probes, loader saw %d", st.Stats().Probed, streamed)
	}

	drained := 0
	if _, err := ex.Select(format, seedIn, errIn, countingLoader(loader, &drained)); err != nil {
		t.Fatal(err)
	}
	if drained != total {
		t.Errorf("drained select probed %d of %d donors", drained, total)
	}
	t.Logf("lazy stream: %d of %d donors probed (drained: %d)", streamed, total, drained)
}

// prefilterQuery returns a fixed query whose format matches pool
// donor 0 of the benchmark pool.
func prefilterQuery(t testing.TB, seed int64) (string, []byte, []byte) {
	t.Helper()
	format, seedIn, errIn, err := scenario.PoolQuery(seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return format, seedIn, errIn
}

// rank1k measures best-of-n ranking over an index: SelectStream does
// all prefilter-query (or exhaustive-scoring) work up front, so its
// setup time is the cost the pre-filter changes. The survival probe
// is deliberately outside the stopwatch: the differential tests prove
// both arms probe a byte-identical donor sequence, so probe cost is
// equal by construction and would only add VM noise to the ratio.
func rank1k(t testing.TB, ix *corpus.Index, format string, seedIn, errIn []byte, n int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		st, err := ix.SelectStream(format, seedIn, errIn, noLoad(t))
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if st.Stats().Donors == 0 {
			t.Fatal("benchmark pool has no donors for the query format")
		}
		if d < best {
			best = d
		}
	}
	return best
}

// TestPrefilterFasterThanExhaustive is the CI performance pin: over a
// generated 7007-donor corpus (1001 donors share the query's format),
// prefiltered ranking must be at least 3x faster than the exhaustive
// scan. The measured ratio is far higher; BENCH_corpus.json records
// it.
func TestPrefilterFasterThanExhaustive(t *testing.T) {
	const poolSeed, poolSize = 77000, 7007
	ix, _ := scenario.SyntheticCorpus(poolSeed, poolSize)
	pre, ex := attachedCopy(t, ix)
	format, seedIn, errIn := prefilterQuery(t, poolSeed)

	// Warm the dissection cache so the first measured iteration is not
	// charged for work both arms share.
	rank1k(t, pre, format, seedIn, errIn, 1)
	rank1k(t, ex, format, seedIn, errIn, 1)

	fast := rank1k(t, pre, format, seedIn, errIn, 20)
	slow := rank1k(t, ex, format, seedIn, errIn, 20)
	ratio := float64(slow) / float64(fast)
	if slow < 3*fast {
		t.Errorf("prefiltered ranking not ≥3x faster over %d donors: prefiltered %v, exhaustive %v (%.1fx)",
			poolSize, fast, slow, ratio)
	}
	t.Logf("1k-donor ranking: prefiltered %v, exhaustive %v (%.1fx)", fast, slow, ratio)
}

// BenchmarkSelect1kDonors measures ranking over a generated pool with
// 1001 donors in the query's format, prefiltered vs exhaustive.
func BenchmarkSelect1kDonors(b *testing.B) {
	const poolSeed, poolSize = 77000, 7007
	ix, _ := scenario.SyntheticCorpus(poolSeed, poolSize)
	pre, ex := attachedCopy(b, ix)
	format, seedIn, errIn := prefilterQuery(b, poolSeed)
	for _, arm := range []struct {
		name string
		ix   *corpus.Index
	}{{"Prefiltered", pre}, {"Exhaustive", ex}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rank1k(b, arm.ix, format, seedIn, errIn, 1)
			}
		})
	}
}
