// Package corpus is the donor knowledge base: a searchable, persistent
// index over the donor application registry that lets the transfer
// pipeline answer "which donor?" itself. The paper's headline
// capability — given an error-triggering input, search a database of
// applications for one that processes the input safely, then transfer
// its check — needs a database; this package builds one.
//
// For every donor/format pair the builder precomputes a check
// signature: the donor's compiled-module content key, the dissector
// fields the donor's checks touch, and the canonicalized symbolic
// check conditions, extracted by running pipeline.DiscoverChecks
// against the format's seed input and a deterministic probe suite.
// Signatures persist as a versioned, content-keyed JSON index that is
// invalidated entry-by-entry when donor source or dissector layout
// changes, so a long-running service pays the discovery cost once and
// answers selection queries from the warm index.
package corpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
	"codephage/internal/vm"
)

// Version is the index schema version; indexes written by other
// versions are rebuilt wholesale. Version 2 canonicalizes signature
// checks through the shared constraint service (semantically
// equivalent conditions collapse to one entry).
const Version = 2

// Donor is the builder's view of one donor application. It carries
// exactly what signature construction needs, so tests can index
// synthetic donors and invalidation can be exercised by mutating
// Source without touching the process-wide registry.
type Donor struct {
	Name    string
	Paper   string
	Source  string
	Formats []string
}

// RegistryDonors adapts the apps donor registry to the builder.
func RegistryDonors() []Donor {
	var out []Donor
	for _, a := range apps.Donors() {
		out = append(out, Donor{Name: a.Name, Paper: a.Paper, Source: a.Source, Formats: a.Formats})
	}
	return out
}

// CheckSig is one canonicalized check condition a donor applies to an
// input format, with the dissector fields it constrains.
type CheckSig struct {
	Cond   string   `json:"cond"`
	Fields []string `json:"fields"`
}

// Signature is the precomputed knowledge about one donor/format pair.
type Signature struct {
	Donor  string `json:"donor"`
	Paper  string `json:"paper"`
	Format string `json:"format"`
	// ContentKey identifies the donor source the signature was built
	// from; a donor source change invalidates the entry.
	ContentKey string `json:"content_key"`
	// ProbeKey identifies the dissector layout and probe inputs the
	// signature was built against; a dissector or seed change
	// invalidates the entry.
	ProbeKey string `json:"probe_key"`
	// Fields is the sorted union of dissector fields the donor's
	// discovered checks touch.
	Fields []string `json:"fields"`
	// Checks are the canonicalized symbolic check conditions, sorted
	// and deduplicated across the probe suite.
	Checks []CheckSig `json:"checks"`
	// RelevantSites and FlippedSites summarise the donor analysis
	// (maxima across the probe suite).
	RelevantSites int `json:"relevant_sites"`
	FlippedSites  int `json:"flipped_sites"`
}

// Index is the donor knowledge base: one signature per donor/format
// pair, sorted by (donor, format) for deterministic serialization.
type Index struct {
	Version    int          `json:"version"`
	Signatures []*Signature `json:"signatures"`

	// fp is the attached winnowing pre-filter (nil = exhaustive
	// selection). Runtime-only: derived by AttachFingerprints, never
	// serialized.
	fp *fpRuntime
}

// ContentKey returns the identity of a donor's source text.
func (d Donor) ContentKey() string {
	h := sha256.New()
	h.Write([]byte(d.Name))
	h.Write([]byte{0})
	h.Write([]byte(d.Source))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// probeKey hashes everything selection-relevant about a format's
// dissection: the seed, the probe inputs, and the dissected field
// layout of the seed. Any dissector change that moves or renames
// fields changes this key and invalidates dependent signatures.
func probeKey(format string, seed []byte, probes [][]byte, dis *hachoir.Dissection) string {
	h := sha256.New()
	h.Write([]byte(format))
	writeBytes := func(b []byte) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	writeBytes(seed)
	for _, p := range probes {
		writeBytes(p)
	}
	for _, f := range dis.Fields {
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00%v\x00", f.Path, f.Off, f.Size, f.BigEndian)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// donorModule compiles a donor and strips it, modelling the stripped
// binary the transfer pipeline analyses. Compilation goes through the
// shared content-keyed compile cache.
func donorModule(d Donor) (*ir.Module, error) {
	m, err := compile.Cached(d.Name, d.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus: donor %s does not compile: %w", d.Name, err)
	}
	m = m.Clone()
	m.Strip()
	return m, nil
}

// mutationValues returns the deterministic boundary probe values for
// a field of the given byte size: the values most likely to flip a
// donor's guard branch (zero, one, all-ones, the max positive value).
func mutationValues(size int) []uint64 {
	max := ^uint64(0)
	if size < 8 {
		max = 1<<(8*size) - 1
	}
	return []uint64{0, 1, max, max >> 1}
}

// setField returns a copy of the input with the field overwritten by
// the value, honouring the field's endianness.
func setField(in []byte, f *hachoir.Field, v uint64) []byte {
	out := append([]byte(nil), in...)
	for i := 0; i < f.Size; i++ {
		var b byte
		if f.BigEndian {
			b = byte(v >> (8 * (f.Size - 1 - i)))
		} else {
			b = byte(v >> (8 * i))
		}
		if f.Off+i < len(out) {
			out[f.Off+i] = b
		}
	}
	return out
}

// probesFor returns the deterministic probe suite for a format: the
// registry regression inputs that differ from the seed (benign
// variation), plus per-field boundary mutations of the seed. A guard
// check in the donor only shows up as a flipped branch when some
// probe actually violates it, so the boundary probes — extreme values
// in exactly one dissected field — are what surface the donor's
// checks; the donor processes them safely (rejecting an input is not
// a crash), which is also the §3.1 property selection relies on.
func probesFor(format string, seed []byte, dis *hachoir.Dissection) [][]byte {
	var probes [][]byte
	for _, in := range apps.RegressionSuite(format) {
		if string(in) != string(seed) {
			probes = append(probes, in)
		}
	}
	for i := range dis.Fields {
		f := &dis.Fields[i]
		for _, v := range mutationValues(f.Size) {
			if p := setField(seed, f, v); string(p) != string(seed) {
				probes = append(probes, p)
			}
		}
	}
	return probes
}

// buildSignature discovers one donor/format signature by running the
// donor against the seed and every probe under check discovery,
// canonicalizing check conditions through the given constraint
// service.
func buildSignature(d Donor, format string, svc *smt.Service) (*Signature, error) {
	dissector, ok := hachoir.ByName(format)
	if !ok {
		return nil, fmt.Errorf("corpus: donor %s lists unknown format %q", d.Name, format)
	}
	seed := apps.SeedFor(format)
	dis, err := dissector.Dissect(seed)
	if err != nil {
		return nil, fmt.Errorf("corpus: dissecting %s seed: %w", format, err)
	}
	probes := probesFor(format, seed, dis)

	mod, err := donorModule(d)
	if err != nil {
		return nil, err
	}
	runner := vm.NewRunner(mod)
	if r := runner.Run(seed); !r.OK() {
		return nil, fmt.Errorf("corpus: donor %s crashes on the %s seed: %v", d.Name, format, r.Trap)
	}

	sig := &Signature{
		Donor:      d.Name,
		Paper:      d.Paper,
		Format:     format,
		ContentKey: d.ContentKey(),
		ProbeKey:   probeKey(format, seed, probes, dis),
	}
	condSeen := map[string]bool{}
	fieldSeen := map[string]bool{}
	// reps holds one representative expression per semantic
	// equivalence class: structurally distinct conditions that the
	// shared constraint service proves equivalent (e.g. the same guard
	// recorded through two different byte-assembly paths) collapse to
	// one signature entry. Queries are memoised service-wide, so a
	// full index rebuild pays each distinct proof once.
	type rep struct {
		cond   *bitvec.Expr
		fields string
	}
	var reps []rep
	session := svc.Session()
	var lastDiscErr error
	discErrs := 0
	for _, probe := range probes {
		if r := runner.Run(probe); !r.OK() {
			// A probe the donor rejects contributes no signature data;
			// signatures summarise what the donor checks on inputs it
			// actually processes.
			continue
		}
		relevant := dis.DiffFields(seed, probe)
		if len(relevant) == 0 {
			continue
		}
		disc, derr := pipeline.DiscoverChecks(mod, seed, probe, dis, relevant, false)
		if derr != nil {
			discErrs++
			lastDiscErr = derr
			continue
		}
		if disc.RelevantSites > sig.RelevantSites {
			sig.RelevantSites = disc.RelevantSites
		}
		if disc.FlippedSites > sig.FlippedSites {
			sig.FlippedSites = disc.FlippedSites
		}
		for i := range disc.Checks {
			cond := disc.Checks[i].Cond
			key := cond.Key() // O(1): terms are interned
			if condSeen[key] {
				continue
			}
			condSeen[key] = true
			fields := cond.Fields()
			fieldsKey := fmt.Sprint(fields)
			// Semantic canonicalization: skip conditions provably
			// equivalent to an already-kept representative over the
			// same field set. Probe order is deterministic, so the
			// kept representative — and the whole signature — is too.
			dup := false
			for _, r := range reps {
				if r.fields != fieldsKey {
					continue
				}
				if eq, err := session.Equiv(cond, r.cond); err == nil && eq {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			reps = append(reps, rep{cond: cond, fields: fieldsKey})
			for _, f := range fields {
				fieldSeen[f] = true
			}
			sig.Checks = append(sig.Checks, CheckSig{Cond: cond.String(), Fields: fields})
		}
	}
	// An empty signature is legitimate for a donor that genuinely never
	// branches on the probed fields — but not when discovery itself
	// failed on every contributing probe: persisting that as a valid,
	// warm-reusable entry would silently hide the failure.
	if len(sig.Checks) == 0 && discErrs > 0 {
		return nil, fmt.Errorf("corpus: donor %s/%s: check discovery failed on %d probe(s) (last: %v)",
			d.Name, format, discErrs, lastDiscErr)
	}
	sort.Slice(sig.Checks, func(i, j int) bool { return sig.Checks[i].Cond < sig.Checks[j].Cond })
	for f := range fieldSeen {
		sig.Fields = append(sig.Fields, f)
	}
	sort.Strings(sig.Fields)
	return sig, nil
}

// Build constructs a fresh index over the given donors, using the
// process-wide constraint service for signature canonicalization.
func Build(donors []Donor) (*Index, error) {
	ix, _, err := refresh(nil, donors, smt.Default())
	return ix, err
}

// Refresh reconciles an existing index against the current donors:
// signatures whose content and probe keys still match are reused,
// stale or missing ones are rebuilt, and entries for donors no longer
// in the set are dropped. It returns the reconciled index and the
// number of signatures rebuilt.
func Refresh(old *Index, donors []Donor) (*Index, int, error) {
	return refresh(old, donors, smt.Default())
}

func refresh(old *Index, donors []Donor, svc *smt.Service) (*Index, int, error) {
	if svc == nil {
		svc = smt.Default()
	}
	reuse := map[string]*Signature{}
	if old != nil && old.Version == Version {
		for _, sig := range old.Signatures {
			reuse[sig.Donor+"\x00"+sig.Format] = sig
		}
	}
	// The current probe key is donor-independent, so a warm reconcile
	// computes each format's dissection and probe suite once, not once
	// per signature ("" marks a format whose key cannot be computed).
	formatKeys := map[string]string{}
	currentProbeKey := func(format string) (string, bool) {
		if k, ok := formatKeys[format]; ok {
			return k, k != ""
		}
		k := ""
		if dissector, found := hachoir.ByName(format); found {
			seed := apps.SeedFor(format)
			if dis, err := dissector.Dissect(seed); err == nil {
				k = probeKey(format, seed, probesFor(format, seed, dis), dis)
			}
		}
		formatKeys[format] = k
		return k, k != ""
	}
	ix := &Index{Version: Version}
	rebuilt := 0
	for _, d := range donors {
		contentKey := d.ContentKey()
		for _, format := range d.Formats {
			if sig, ok := reuse[d.Name+"\x00"+format]; ok && sig.ContentKey == contentKey {
				if k, valid := currentProbeKey(format); valid && k == sig.ProbeKey {
					ix.Signatures = append(ix.Signatures, sig)
					continue
				}
			}
			sig, err := buildSignature(d, format, svc)
			if err != nil {
				return nil, rebuilt, err
			}
			rebuilt++
			ix.Signatures = append(ix.Signatures, sig)
		}
	}
	sort.Slice(ix.Signatures, func(i, j int) bool {
		a, b := ix.Signatures[i], ix.Signatures[j]
		if a.Donor != b.Donor {
			return a.Donor < b.Donor
		}
		return a.Format < b.Format
	})
	return ix, rebuilt, nil
}

// ByDonorFormat returns the signature for a donor/format pair.
func (ix *Index) ByDonorFormat(donor, format string) (*Signature, bool) {
	for _, sig := range ix.Signatures {
		if sig.Donor == donor && sig.Format == format {
			return sig, true
		}
	}
	return nil, false
}

// ForFormat returns the signatures of every donor indexed for the
// format, in index (donor-name) order.
func (ix *Index) ForFormat(format string) []*Signature {
	var out []*Signature
	for _, sig := range ix.Signatures {
		if sig.Format == format {
			out = append(out, sig)
		}
	}
	return out
}
