package hachoir

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedInputs returns one well-formed input per format encoder,
// plus truncations and corruptions of each. The same inputs are
// checked in under testdata/fuzz (see gen_corpus.go).
func fuzzSeedInputs() [][]byte {
	wellFormed := [][]byte{
		(&MJPG{Version: 1, Precision: 8, Height: 16, Width: 16,
			Components: 3, HSamp: 2, VSamp: 2, Data: []byte{1, 2, 3, 4}}).Encode(),
		(&MPNG{Width: 16, Height: 16, Depth: 8, Color: 2, Data: []byte{9, 9}}).Encode(),
		(&MGIF{ScreenW: 50, ScreenH: 40, Width: 50, Height: 40,
			LZWCodeSize: 8, Data: []byte{0, 1, 2}}).Encode(),
		(&MTIF{Width: 32, Height: 8, BitsPerSample: 8, SamplesPerPixel: 3,
			Data: []byte{7}}).Encode(),
		(&MSWF{Version: 6, FrameW: 550, FrameH: 400, JPEGHeight: 16,
			JPEGWidth: 16, Components: 3, HSamp: 1, VSamp: 1,
			JPEGData: []byte{5, 5}}).Encode(),
		(&MPKT{Proto: 2, Flags: 1, PLen: 16, Seq: 7,
			Payload: make([]byte, 16)}).Encode(),
		(&MJ2K{TilesX: 2, TilesY: 2, Width: 64, Height: 48, TileNo: 1,
			Data: []byte{3, 3}}).Encode(),
	}
	seeds := append([][]byte{}, wellFormed...)
	for _, in := range wellFormed {
		seeds = append(seeds, in[:len(in)/2], in[:4])
		bad := append([]byte(nil), in...)
		bad[len(bad)-1] ^= 0xFF
		seeds = append(seeds, bad)
	}
	seeds = append(seeds, []byte{}, []byte("MJPG"), []byte("XXXX arbitrary"))
	return seeds
}

// checkDissection asserts the structural invariants every successful
// dissection must satisfy, whatever the input bytes were: fields lie
// inside the input, sizes are 1..8 bytes, the byte->field index is
// consistent, and the evaluation helpers tolerate every offset.
func checkDissection(t *testing.T, name string, dis *Dissection, input []byte) {
	t.Helper()
	if dis.Len != len(input) {
		t.Fatalf("%s: dissection Len %d != input length %d", name, dis.Len, len(input))
	}
	for i := range dis.Fields {
		fld := &dis.Fields[i]
		if fld.Size < 1 || fld.Size > 8 {
			t.Fatalf("%s: field %s has size %d", name, fld.Path, fld.Size)
		}
		if fld.Off < 0 || fld.Off+fld.Size > len(input) {
			t.Fatalf("%s: field %s [%d,%d) outside input of %d bytes",
				name, fld.Path, fld.Off, fld.Off+fld.Size, len(input))
		}
		got, ok := dis.FieldByPath(fld.Path)
		if !ok || got != fld {
			t.Fatalf("%s: FieldByPath(%q) inconsistent", name, fld.Path)
		}
	}
	for off := -1; off <= len(input); off++ {
		if fld, ok := dis.FieldAt(off); ok {
			if off < fld.Off || off >= fld.Off+fld.Size {
				t.Fatalf("%s: FieldAt(%d) returned %s [%d,%d)", name, off, fld.Path, fld.Off, fld.Off+fld.Size)
			}
		}
		if off >= 0 && off < len(input) && dis.ByteExpr(off) == nil {
			t.Fatalf("%s: ByteExpr(%d) = nil", name, off)
		}
	}
	vals := dis.FieldValues(input)
	if len(vals) != len(dis.Fields) {
		// Duplicate paths would silently merge values; the engine's
		// field environments assume paths are unique.
		t.Fatalf("%s: %d field values for %d fields (duplicate paths?)", name, len(vals), len(dis.Fields))
	}
	if len(input) > 0 {
		mutated := append([]byte(nil), input...)
		mutated[0] ^= 0xFF
		dis.DiffFields(input, mutated)
		dis.DiffFields(input, input[:len(input)-1])
	}
}

var genCorpus = flag.Bool("gen-corpus", false, "regenerate the checked-in fuzz seed corpus under testdata/fuzz")

// TestGenerateFuzzCorpus rewrites testdata/fuzz/FuzzDissect from
// fuzzSeedInputs. Run it after changing the encoders or seeds:
//
//	go test ./internal/hachoir -run TestGenerateFuzzCorpus -gen-corpus
func TestGenerateFuzzCorpus(t *testing.T) {
	if !*genCorpus {
		t.Skip("pass -gen-corpus to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDissect")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, in := range fuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(in)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDissect feeds arbitrary bytes to every registered dissector and
// to format detection. Dissectors must either reject the input with an
// error or return a structurally sound dissection — never panic, and
// never a field outside the input.
func FuzzDissect(f *testing.F) {
	for _, in := range fuzzSeedInputs() {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		for _, d := range Dissectors() {
			dis, err := d.Dissect(data)
			if err != nil {
				if dis != nil {
					t.Errorf("%s: Dissect returned both a dissection and error %v", d.Name(), err)
				}
				continue
			}
			checkDissection(t, d.Name(), dis, data)
		}
		det := Detect(data)
		if det == nil {
			t.Fatal("Detect returned nil")
		}
		checkDissection(t, "detect:"+det.Format, det, data)
	})
}
