package hachoir

import (
	"testing"

	"codephage/internal/bitvec"
)

func TestAllFormatsRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		field string
		want  uint64
	}{
		{"mjpg", (&MJPG{Version: 1, Height: 80, Width: 100, Components: 3}).Encode(),
			"/start_frame/content/width", 100},
		{"mpng", (&MPNG{Width: 640, Height: 480, Depth: 8, Color: 2}).Encode(),
			"/ihdr/height", 480},
		{"mgif", (&MGIF{ScreenW: 10, ScreenH: 20, Width: 30, Height: 40, LZWCodeSize: 8}).Encode(),
			"/image/lzw_code_size", 8},
		{"mtif", (&MTIF{Width: 111, Height: 222, BitsPerSample: 8, SamplesPerPixel: 3}).Encode(),
			"/ifd/width", 111},
		{"mswf", (&MSWF{Version: 5, FrameW: 1, FrameH: 2, JPEGHeight: 33, JPEGWidth: 44, Components: 3}).Encode(),
			"/jpeg/width", 44},
		{"mpkt", (&MPKT{Proto: 7, PLen: 512, Seq: 9}).Encode(),
			"/dcp/plen", 512},
		{"mj2k", (&MJ2K{TilesX: 2, TilesY: 3, Width: 64, Height: 48, TileNo: 5}).Encode(),
			"/sot/tileno", 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, ok := ByName(c.name)
			if !ok {
				t.Fatalf("dissector %q missing", c.name)
			}
			dis, err := d.Dissect(c.input)
			if err != nil {
				t.Fatal(err)
			}
			vals := dis.FieldValues(c.input)
			if vals[c.field] != c.want {
				t.Errorf("%s = %d, want %d", c.field, vals[c.field], c.want)
			}
			f, ok := dis.FieldByPath(c.field)
			if !ok {
				t.Fatalf("field %s missing", c.field)
			}
			// Reassembling the field from its per-byte expressions must
			// yield the bare field expression.
			var whole *bitvec.Expr
			for i := 0; i < f.Size; i++ {
				be := dis.ByteExpr(f.Off + i)
				if f.BigEndian {
					if whole == nil {
						whole = be
					} else {
						whole = bitvec.Concat(whole, be)
					}
				} else {
					if whole == nil {
						whole = be
					} else {
						whole = bitvec.Concat(be, whole)
					}
				}
			}
			if !bitvec.Equal(bitvec.Simplify(whole), f.Expr()) {
				t.Errorf("byte reassembly = %s, want %s", bitvec.Simplify(whole), f.Expr())
			}
		})
	}
}

func TestDetect(t *testing.T) {
	img := (&MJPG{Height: 1, Width: 1, Components: 1}).Encode()
	dis := Detect(img)
	if dis.Format != "mjpg" {
		t.Errorf("Detect = %s, want mjpg", dis.Format)
	}
	dis = Detect([]byte("XXXXunknown format bytes"))
	if dis.Format != "raw" {
		t.Errorf("Detect unknown = %s, want raw", dis.Format)
	}
}

func TestRawMode(t *testing.T) {
	input := []byte{10, 20, 30}
	dis := Raw(input)
	if len(dis.Fields) != 3 {
		t.Fatalf("raw fields = %d, want 3", len(dis.Fields))
	}
	e := dis.ByteExpr(1)
	if e.Op != bitvec.OpField || e.Name != "@1" || e.W != 8 {
		t.Errorf("raw byte expr = %s", e)
	}
	vals := dis.FieldValues(input)
	if vals["@2"] != 30 {
		t.Errorf("@2 = %d, want 30", vals["@2"])
	}
}

func TestByteExprUncoveredOffset(t *testing.T) {
	img := (&MJPG{Height: 1, Width: 1, Components: 1, Data: []byte{9}}).Encode()
	d, _ := ByName("mjpg")
	dis, err := d.Dissect(img)
	if err != nil {
		t.Fatal(err)
	}
	// The payload byte is not covered by a header field: raw label.
	e := dis.ByteExpr(17)
	if e.Op != bitvec.OpField || e.Name != "@17" {
		t.Errorf("uncovered byte expr = %s", e)
	}
	// Magic bytes are likewise uncovered.
	if _, covered := dis.FieldAt(0); covered {
		t.Error("magic byte reported as dissected field")
	}
}

func TestDiffFields(t *testing.T) {
	a := (&MJPG{Height: 80, Width: 100, Components: 3}).Encode()
	b := (&MJPG{Height: 90, Width: 100, Components: 3}).Encode()
	d, _ := ByName("mjpg")
	dis, _ := d.Dissect(a)
	rel := dis.DiffFields(a, b)
	// Only the two height bytes (offsets 6,7) differ.
	if len(rel) != 2 || !rel[6] || !rel[7] {
		t.Errorf("relevant = %v, want {6,7}", rel)
	}
	// Identical inputs: nothing relevant.
	if len(dis.DiffFields(a, a)) != 0 {
		t.Error("identical inputs produced relevant bytes")
	}
}

func TestDiffFieldsUncoveredBytes(t *testing.T) {
	a := (&MPKT{PLen: 4, Payload: []byte{1, 2, 3}}).Encode()
	b := (&MPKT{PLen: 4, Payload: []byte{1, 9, 3}}).Encode()
	d, _ := ByName("mpkt")
	dis, _ := d.Dissect(a)
	rel := dis.DiffFields(a, b)
	if len(rel) != 1 {
		t.Errorf("relevant = %v, want exactly the differing payload byte", rel)
	}
}

func TestTruncatedInputs(t *testing.T) {
	for _, d := range Dissectors() {
		if d.Name() == "raw" {
			continue // raw mode accepts any input by design
		}
		if _, err := d.Dissect([]byte(d.Magic())); err == nil {
			t.Errorf("%s accepted a truncated input", d.Name())
		}
	}
}

func TestLittleEndianByteExpr(t *testing.T) {
	img := (&MGIF{Width: 0xABCD}).Encode()
	d, _ := ByName("mgif")
	dis, err := d.Dissect(img)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := dis.FieldByPath("/image/width")
	// LE: first byte is the least significant.
	lo := dis.ByteExpr(f.Off)
	if lo.Op != bitvec.OpExtr || lo.Lo != 0 || lo.Hi != 7 {
		t.Errorf("LE first byte = %s, want Extract(7,0,...)", lo)
	}
	hi := dis.ByteExpr(f.Off + 1)
	if hi.Op != bitvec.OpExtr || hi.Lo != 8 || hi.Hi != 15 {
		t.Errorf("LE second byte = %s, want Extract(15,8,...)", hi)
	}
}

func TestMPNGChannels(t *testing.T) {
	cases := []struct {
		color uint8
		want  uint32
	}{{0, 1}, {2, 3}, {6, 4}, {99, 1}}
	for _, c := range cases {
		m := &MPNG{Color: c.color}
		if got := m.Channels(); got != c.want {
			t.Errorf("Channels(color=%d) = %d, want %d", c.color, got, c.want)
		}
	}
}
