// Package hachoir maps input byte ranges to symbolic field paths, the
// role the Hachoir dissector library plays for Code Phage. Six mini
// input formats are supported — MJPG, MPNG, MGIF, MTIF, MSWF, MPKT —
// simplified analogues of the paper's JPEG, PNG, GIF, TIFF, SWF and
// network-capture inputs, with the same mixed endianness and
// multi-byte field structure. A raw mode labels every byte with its
// offset for inputs no dissector understands.
package hachoir

import (
	"fmt"

	"codephage/internal/bitvec"
)

// Field is one dissected input field.
type Field struct {
	Path      string
	Off       int
	Size      int // bytes, 1..8
	BigEndian bool
}

// Expr returns the symbolic bitvector expression denoting the field.
func (f *Field) Expr() *bitvec.Expr {
	return bitvec.Field(f.Path, uint8(f.Size*8), f.Off)
}

// Dissection is the field map of one concrete input.
type Dissection struct {
	Format string
	Fields []Field
	Len    int

	byOff map[int]int // byte offset -> field index
}

func newDissection(format string, n int) *Dissection {
	return &Dissection{Format: format, Len: n, byOff: map[int]int{}}
}

func (d *Dissection) add(path string, off, size int, be bool) {
	idx := len(d.Fields)
	d.Fields = append(d.Fields, Field{Path: path, Off: off, Size: size, BigEndian: be})
	for i := 0; i < size; i++ {
		d.byOff[off+i] = idx
	}
}

// FieldAt returns the field covering the byte offset, if any.
func (d *Dissection) FieldAt(off int) (*Field, bool) {
	if d == nil {
		return nil, false
	}
	idx, ok := d.byOff[off]
	if !ok {
		return nil, false
	}
	return &d.Fields[idx], true
}

// FieldByPath returns the named field, if present.
func (d *Dissection) FieldByPath(path string) (*Field, bool) {
	if d == nil {
		return nil, false
	}
	for i := range d.Fields {
		if d.Fields[i].Path == path {
			return &d.Fields[i], true
		}
	}
	return nil, false
}

// ByteExpr returns the symbolic expression for one input byte: an
// extract of the covering field, or a raw byte label ("@off") when no
// field covers the offset (raw mode behaviour).
func (d *Dissection) ByteExpr(off int) *bitvec.Expr {
	f, ok := d.FieldAt(off)
	if !ok {
		return bitvec.Field(bitvec.RawByteName(off), 8, off)
	}
	if f.Size == 1 {
		return f.Expr()
	}
	w := uint8(f.Size * 8)
	i := uint8(off - f.Off)
	fe := f.Expr()
	if f.BigEndian {
		hi := w - 1 - 8*i
		return bitvec.Extract(hi, hi-7, fe)
	}
	return bitvec.Extract(8*i+7, 8*i, fe)
}

// FieldValues evaluates every dissected field against the input bytes,
// producing the environment used by DIODE and patch validation.
func (d *Dissection) FieldValues(input []byte) map[string]uint64 {
	out := map[string]uint64{}
	for _, f := range d.Fields {
		var v uint64
		for i := 0; i < f.Size; i++ {
			b := byte(0)
			if f.Off+i < len(input) {
				b = input[f.Off+i]
			}
			if f.BigEndian {
				v = v<<8 | uint64(b)
			} else {
				v |= uint64(b) << (8 * i)
			}
		}
		out[f.Path] = v
	}
	return out
}

// DiffFields returns the byte offsets of fields whose values differ
// between two inputs of the same format — the "relevant bytes" that
// Code Phage restricts its analysis to.
func (d *Dissection) DiffFields(a, b []byte) map[int]bool {
	va, vb := d.FieldValues(a), d.FieldValues(b)
	rel := map[int]bool{}
	for _, f := range d.Fields {
		if va[f.Path] != vb[f.Path] {
			for i := 0; i < f.Size; i++ {
				rel[f.Off+i] = true
			}
		}
	}
	// Bytes not covered by any field differ positionally.
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for off := 0; off < n; off++ {
		if _, covered := d.FieldAt(off); covered {
			continue
		}
		var ba, bb byte
		if off < len(a) {
			ba = a[off]
		}
		if off < len(b) {
			bb = b[off]
		}
		if ba != bb {
			rel[off] = true
		}
	}
	return rel
}

// Raw returns the raw-mode dissection: one 1-byte field per offset.
func Raw(input []byte) *Dissection {
	d := newDissection("raw", len(input))
	for i := range input {
		d.add(bitvec.RawByteName(i), i, 1, true)
	}
	return d
}

// Dissector parses a concrete input of one format into a field map.
type Dissector interface {
	Name() string
	Magic() string
	Dissect(input []byte) (*Dissection, error)
}

// rawDissector exposes raw mode through the registry ("raw"): every
// input byte becomes its own 1-byte field, the fallback the paper uses
// when no format dissector applies (e.g. inputs from error-finding
// tools over unknown formats).
type rawDissector struct{}

func (rawDissector) Name() string  { return "raw" }
func (rawDissector) Magic() string { return "" }
func (rawDissector) Dissect(input []byte) (*Dissection, error) {
	return Raw(input), nil
}

var registry = []Dissector{
	mjpgDissector{},
	mpngDissector{},
	mgifDissector{},
	mtifDissector{},
	mswfDissector{},
	mpktDissector{},
	mj2kDissector{},
	rawDissector{},
}

// Dissectors returns the registered dissectors.
func Dissectors() []Dissector { return registry }

// ByName returns the named dissector.
func ByName(name string) (Dissector, bool) {
	for _, d := range registry {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Detect finds the dissector whose magic matches the input and runs
// it. It falls back to raw mode for unknown formats.
func Detect(input []byte) *Dissection {
	for _, d := range registry {
		m := d.Magic()
		if len(m) > 0 && len(input) >= len(m) && string(input[:len(m)]) == m {
			if dis, err := d.Dissect(input); err == nil {
				return dis
			}
		}
	}
	return Raw(input)
}

func checkLen(input []byte, n int, format string) error {
	if len(input) < n {
		return fmt.Errorf("hachoir: %s input truncated: %d < %d bytes", format, len(input), n)
	}
	return nil
}
