package hachoir

// The six mini formats. Layouts are fixed-offset with one
// variable-length payload, which keeps dissection simple while
// preserving what matters to Code Phage: multi-byte fields, mixed
// endianness, and header fields (width/height/factors/lengths) that
// downstream size computations depend on.

// ---- MJPG: mini JPEG (big-endian), read by cwebp, feh, mtpaint,
// viewnior. Field paths follow the paper's /start_frame/content/*.

// MJPG describes a mini-JPEG input.
type MJPG struct {
	Version    uint8
	Precision  uint8
	Height     uint16
	Width      uint16
	Components uint8
	HSamp      uint8
	VSamp      uint8
	Data       []byte
}

// Encode serializes the image.
func (m *MJPG) Encode() []byte {
	out := []byte("MJPG")
	out = append(out, m.Version, m.Precision)
	out = appendBE16(out, m.Height)
	out = appendBE16(out, m.Width)
	out = append(out, m.Components, m.HSamp, m.VSamp)
	out = appendBE32(out, uint32(len(m.Data)))
	return append(out, m.Data...)
}

type mjpgDissector struct{}

func (mjpgDissector) Name() string  { return "mjpg" }
func (mjpgDissector) Magic() string { return "MJPG" }

func (mjpgDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 17, "mjpg"); err != nil {
		return nil, err
	}
	d := newDissection("mjpg", len(input))
	d.add("/version", 4, 1, true)
	d.add("/start_frame/precision", 5, 1, true)
	d.add("/start_frame/content/height", 6, 2, true)
	d.add("/start_frame/content/width", 8, 2, true)
	d.add("/start_frame/components", 10, 1, true)
	d.add("/start_frame/h_samp", 11, 1, true)
	d.add("/start_frame/v_samp", 12, 1, true)
	d.add("/scan/length", 13, 4, true)
	return d, nil
}

// ---- MPNG: mini PNG (big-endian), read by dillo, feh, mtpaint,
// viewnior.

// MPNG describes a mini-PNG input.
type MPNG struct {
	Width  uint32
	Height uint32
	Depth  uint8
	Color  uint8 // 0 = gray (1 ch), 2 = rgb (3 ch), 6 = rgba (4 ch)
	Data   []byte
}

// Channels returns the channel count implied by the color type.
func (m *MPNG) Channels() uint32 {
	switch m.Color {
	case 2:
		return 3
	case 6:
		return 4
	}
	return 1
}

// Encode serializes the image.
func (m *MPNG) Encode() []byte {
	out := []byte("MPNG")
	out = appendBE32(out, m.Width)
	out = appendBE32(out, m.Height)
	out = append(out, m.Depth, m.Color)
	out = appendBE32(out, uint32(len(m.Data)))
	return append(out, m.Data...)
}

type mpngDissector struct{}

func (mpngDissector) Name() string  { return "mpng" }
func (mpngDissector) Magic() string { return "MPNG" }

func (mpngDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 18, "mpng"); err != nil {
		return nil, err
	}
	d := newDissection("mpng", len(input))
	d.add("/ihdr/width", 4, 4, true)
	d.add("/ihdr/height", 8, 4, true)
	d.add("/ihdr/depth", 12, 1, true)
	d.add("/ihdr/color", 13, 1, true)
	d.add("/idat/length", 14, 4, true)
	return d, nil
}

// ---- MGIF: mini GIF (little-endian), read by gif2tiff and the
// ImageMagick 6.5.2-9 donor.

// MGIF describes a mini-GIF input.
type MGIF struct {
	ScreenW     uint16
	ScreenH     uint16
	Flags       uint8
	Left, Top   uint16
	Width       uint16
	Height      uint16
	LZWCodeSize uint8
	Data        []byte
}

// Encode serializes the image.
func (m *MGIF) Encode() []byte {
	out := []byte("MGIF")
	out = appendLE16(out, m.ScreenW)
	out = appendLE16(out, m.ScreenH)
	out = append(out, m.Flags)
	out = appendLE16(out, m.Left)
	out = appendLE16(out, m.Top)
	out = appendLE16(out, m.Width)
	out = appendLE16(out, m.Height)
	out = append(out, m.LZWCodeSize)
	out = appendLE16(out, uint16(len(m.Data)))
	return append(out, m.Data...)
}

type mgifDissector struct{}

func (mgifDissector) Name() string  { return "mgif" }
func (mgifDissector) Magic() string { return "MGIF" }

func (mgifDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 20, "mgif"); err != nil {
		return nil, err
	}
	d := newDissection("mgif", len(input))
	d.add("/screen/width", 4, 2, false)
	d.add("/screen/height", 6, 2, false)
	d.add("/screen/flags", 8, 1, false)
	d.add("/image/left", 9, 2, false)
	d.add("/image/top", 11, 2, false)
	d.add("/image/width", 13, 2, false)
	d.add("/image/height", 15, 2, false)
	d.add("/image/lzw_code_size", 17, 1, false)
	d.add("/image/data_len", 18, 2, false)
	return d, nil
}

// ---- MTIF: mini TIFF (little-endian), read by Display, feh,
// viewnior.

// MTIF describes a mini-TIFF input.
type MTIF struct {
	Width           uint32
	Height          uint32
	BitsPerSample   uint16
	SamplesPerPixel uint16
	Data            []byte
}

// Encode serializes the image.
func (m *MTIF) Encode() []byte {
	out := []byte("MTIF")
	out = appendLE32(out, m.Width)
	out = appendLE32(out, m.Height)
	out = appendLE16(out, m.BitsPerSample)
	out = appendLE16(out, m.SamplesPerPixel)
	out = appendLE32(out, uint32(len(m.Data)))
	return append(out, m.Data...)
}

type mtifDissector struct{}

func (mtifDissector) Name() string  { return "mtif" }
func (mtifDissector) Magic() string { return "MTIF" }

func (mtifDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 20, "mtif"); err != nil {
		return nil, err
	}
	d := newDissection("mtif", len(input))
	d.add("/ifd/width", 4, 4, false)
	d.add("/ifd/height", 8, 4, false)
	d.add("/ifd/bits_per_sample", 12, 2, false)
	d.add("/ifd/samples_per_pixel", 14, 2, false)
	d.add("/strip/length", 16, 4, false)
	return d, nil
}

// ---- MSWF: mini SWF (little-endian container) with an embedded
// big-endian mini-JPEG, read by swfplay and gnash.

// MSWF describes a mini-SWF input.
type MSWF struct {
	Version    uint8
	FrameW     uint16
	FrameH     uint16
	JPEGHeight uint16
	JPEGWidth  uint16
	Components uint8
	HSamp      uint8
	VSamp      uint8
	JPEGData   []byte
}

// Encode serializes the movie.
func (m *MSWF) Encode() []byte {
	out := []byte("MSWF")
	out = append(out, m.Version)
	out = appendLE16(out, m.FrameW)
	out = appendLE16(out, m.FrameH)
	out = appendLE32(out, uint32(7+len(m.JPEGData)))
	out = appendBE16(out, m.JPEGHeight)
	out = appendBE16(out, m.JPEGWidth)
	out = append(out, m.Components, m.HSamp, m.VSamp)
	return append(out, m.JPEGData...)
}

type mswfDissector struct{}

func (mswfDissector) Name() string  { return "mswf" }
func (mswfDissector) Magic() string { return "MSWF" }

func (mswfDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 20, "mswf"); err != nil {
		return nil, err
	}
	d := newDissection("mswf", len(input))
	d.add("/header/version", 4, 1, false)
	d.add("/header/frame_width", 5, 2, false)
	d.add("/header/frame_height", 7, 2, false)
	d.add("/jpeg/length", 9, 4, false)
	d.add("/jpeg/height", 13, 2, true)
	d.add("/jpeg/width", 15, 2, true)
	d.add("/jpeg/components", 17, 1, true)
	d.add("/jpeg/h_samp", 18, 1, true)
	d.add("/jpeg/v_samp", 19, 1, true)
	return d, nil
}

// ---- MPKT: mini network packet (big-endian, DCP-ETSI-like), read by
// both Wireshark versions.

// MPKT describes a mini packet-capture input.
type MPKT struct {
	Proto   uint16
	Flags   uint8
	PLen    uint16 // payload length field — zero triggers the div0 bug
	Seq     uint16
	Payload []byte
}

// Encode serializes the packet.
func (m *MPKT) Encode() []byte {
	out := []byte("MPKT")
	out = appendBE16(out, m.Proto)
	out = append(out, m.Flags)
	out = appendBE16(out, m.PLen)
	out = appendBE16(out, m.Seq)
	return append(out, m.Payload...)
}

type mpktDissector struct{}

func (mpktDissector) Name() string  { return "mpkt" }
func (mpktDissector) Magic() string { return "MPKT" }

func (mpktDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 11, "mpkt"); err != nil {
		return nil, err
	}
	d := newDissection("mpkt", len(input))
	d.add("/eth/proto", 4, 2, true)
	d.add("/dcp/flags", 6, 1, true)
	d.add("/dcp/plen", 7, 2, true)
	d.add("/dcp/seq", 9, 2, true)
	return d, nil
}

// ---- MJ2K: mini JPEG-2000 (big-endian), read by jasper and openjpeg.
// The tile grid is given as tiles_x × tiles_y; each start-of-tile
// record carries a tile number that must index inside the grid.

// MJ2K describes a mini-JPEG2000 input.
type MJ2K struct {
	TilesX uint8
	TilesY uint8
	Width  uint16
	Height uint16
	TileNo uint16
	Data   []byte
}

// Encode serializes the image.
func (m *MJ2K) Encode() []byte {
	out := []byte("MJ2K")
	out = append(out, m.TilesX, m.TilesY)
	out = appendBE16(out, m.Width)
	out = appendBE16(out, m.Height)
	out = appendBE16(out, m.TileNo)
	out = appendBE16(out, uint16(len(m.Data)))
	return append(out, m.Data...)
}

type mj2kDissector struct{}

func (mj2kDissector) Name() string  { return "mj2k" }
func (mj2kDissector) Magic() string { return "MJ2K" }

func (mj2kDissector) Dissect(input []byte) (*Dissection, error) {
	if err := checkLen(input, 14, "mj2k"); err != nil {
		return nil, err
	}
	d := newDissection("mj2k", len(input))
	d.add("/siz/tiles_x", 4, 1, true)
	d.add("/siz/tiles_y", 5, 1, true)
	d.add("/siz/width", 6, 2, true)
	d.add("/siz/height", 8, 2, true)
	d.add("/sot/tileno", 10, 2, true)
	d.add("/sot/length", 12, 2, true)
	return d, nil
}

func appendBE16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendBE32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendLE16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
