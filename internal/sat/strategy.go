package sat

// Strategy seeds the solver's search heuristics. The zero value is the
// baseline strategy every solver used before portfolio solving existed:
// Luby restarts, all-false initial phases, activity ties broken by heap
// order. Distinct strategies explore the search space in different
// orders while staying individually deterministic — the property the
// smt portfolio relies on: a replica's verdict is a pure function of
// (formula, budget, strategy).
type Strategy struct {
	// Seed perturbs the initial variable phases and adds a tiny
	// deterministic jitter to initial VSIDS activities (tie-breaking).
	// 0 keeps the baseline behaviour bit-for-bit.
	Seed uint64
	// GeometricRestarts grows the restart interval geometrically
	// (x1.5 from 100 conflicts) instead of following the Luby sequence.
	GeometricRestarts bool
	// InvertPhases flips the default decision polarity (decide-true
	// instead of decide-false) for variables the seed does not touch.
	InvertPhases bool
}

// splitmix64 is the SplitMix64 mixer: a cheap, high-quality hash used
// to derive per-variable phase and jitter bits from the strategy seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats are cumulative search counters over the solver's lifetime,
// surfaced through smt.ServiceStats and the phaged /metrics endpoint.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
}

// Stats returns the solver's cumulative search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.conflicts,
		Decisions:    s.decisions,
		Propagations: s.propagations,
		Restarts:     s.restarts,
	}
}

// Sub returns the counter deltas s - o (for attributing one Solve call
// on a long-lived solver).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Conflicts:    s.Conflicts - o.Conflicts,
		Decisions:    s.Decisions - o.Decisions,
		Propagations: s.Propagations - o.Propagations,
		Restarts:     s.Restarts - o.Restarts,
	}
}
