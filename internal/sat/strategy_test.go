package sat

import (
	"math/rand"
	"testing"
	"time"
)

// phpInto adds the pigeonhole instance (n+1 pigeons, n holes; UNSAT)
// to an existing solver, so strategy tests can build it under any
// Strategy.
func phpInto(s *Solver, n int) {
	v := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		v[p] = make([]int, n)
		for h := 0; h < n; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = lit(v[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
			}
		}
	}
}

// TestStrategiesAgreeOnVerdicts is the portfolio soundness bedrock:
// every strategy is a complete, sound solver, so on instances any of
// them can finish, all of them agree.
func TestStrategiesAgreeOnVerdicts(t *testing.T) {
	strategies := []Strategy{
		{},
		{Seed: 1},
		{Seed: 0xdeadbeef, GeometricRestarts: true},
		{Seed: 99, InvertPhases: true},
		{GeometricRestarts: true, InvertPhases: true},
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 120; iter++ {
		nVars := 4 + rng.Intn(9)
		nClauses := 1 + rng.Intn(nVars*5)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		want := bruteForce(nVars, clauses)
		for si, st := range strategies {
			s := NewWithStrategy(st)
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			for _, c := range clauses {
				s.AddClause(c...)
			}
			got := s.Solve()
			if (got == Sat) != want {
				t.Fatalf("iter %d strategy %d: solver=%v bruteforce=%v", iter, si, got, want)
			}
		}
	}
}

func TestZeroStrategyIsBaseline(t *testing.T) {
	a, b := New(), NewWithStrategy(Strategy{})
	phpInto(a, 5)
	phpInto(b, 5)
	if ra, rb := a.Solve(), b.Solve(); ra != rb {
		t.Fatalf("New()=%v NewWithStrategy(zero)=%v", ra, rb)
	}
	// Bit-for-bit: the zero strategy must not change the search at all.
	if a.Stats() != b.Stats() {
		t.Fatalf("zero strategy changed search: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestStrategiesDiversifySearch(t *testing.T) {
	counts := map[Stats]bool{}
	for _, st := range []Strategy{{}, {Seed: 1}, {Seed: 2}, {Seed: 3, GeometricRestarts: true}} {
		s := NewWithStrategy(st)
		phpInto(s, 6)
		if r := s.Solve(); r != Unsat {
			t.Fatalf("strategy %+v: PHP(6)=%v, want UNSAT", st, r)
		}
		counts[s.Stats()] = true
	}
	// Not a semantic requirement, but the portfolio is pointless if the
	// seeds do not actually change the search order.
	if len(counts) < 2 {
		t.Fatalf("all strategies produced identical search statistics")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	phpInto(s, 5)
	before := s.Stats()
	if before.Conflicts != 0 || before.Decisions != 0 {
		t.Fatalf("fresh solver has nonzero stats: %+v", before)
	}
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("PHP(5) left counters at zero: %+v", st)
	}
	if d := st.Sub(before); d != st {
		t.Fatalf("Sub(zero) changed stats: %+v", d)
	}
}

func TestInterrupt(t *testing.T) {
	s := New()
	phpInto(s, 9) // far beyond what CDCL finishes quickly
	done := make(chan Result, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(10 * time.Millisecond)
	s.Interrupt()
	select {
	case r := <-done:
		if r != Unknown {
			// The solver may legitimately finish before the interrupt
			// lands; only a definitive answer is acceptable then.
			if r != Unsat {
				t.Fatalf("interrupted solve returned %v", r)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("solver ignored Interrupt")
	}
	// The solver must be reusable after an interrupt: budget-bounded
	// solves on the remaining instance still answer.
	s2 := New()
	phpInto(s2, 3)
	s2.Interrupt()
	if r := s2.Solve(); r != Unknown {
		t.Fatalf("pre-interrupted solve = %v, want Unknown", r)
	}
}

func TestExportRoundTrip(t *testing.T) {
	src := New()
	phpInto(src, 4)
	if r := src.Solve(); r != Unsat {
		t.Fatalf("PHP(4)=%v", r)
	}
	// After an unassumed top-level UNSAT the solver is dead; Export
	// must refuse.
	if _, _, _, ok := src.Export(); ok {
		t.Fatalf("Export succeeded on a top-level-unsat solver")
	}

	src = New()
	phpInto(src, 4)
	numVars, units, clauses, ok := src.Export()
	if !ok {
		t.Fatalf("Export failed on a live solver")
	}
	dst := New()
	for i := 0; i < numVars; i++ {
		dst.NewVar()
	}
	for _, u := range units {
		if !dst.AddClause(u) {
			t.Fatalf("unit replay hit UNSAT")
		}
	}
	for _, c := range clauses {
		if !dst.AddClause(c...) {
			t.Fatalf("clause replay hit UNSAT")
		}
	}
	if dst.NumVars() != numVars {
		t.Fatalf("rebuilt solver has %d vars, want %d", dst.NumVars(), numVars)
	}
	if r := dst.Solve(); r != Unsat {
		t.Fatalf("rebuilt PHP(4)=%v, want UNSAT", r)
	}
}

// TestLearntClausesAreImplied checks the import-soundness contract:
// every clause LearntClauses returns is a consequence of the problem
// clauses alone, verified by brute force on a small instance.
func TestLearntClausesAreImplied(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		nVars := 5 + rng.Intn(6)
		nClauses := nVars * 4
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		s.Solve()
		for _, learnt := range s.LearntClauses(8, 64) {
			if len(learnt) > 8 {
				t.Fatalf("LearntClauses ignored maxLen: %d lits", len(learnt))
			}
			// DB ∧ ¬learnt must be UNSAT for the clause to be implied.
			neg := make([][]Lit, 0, len(clauses)+len(learnt))
			neg = append(neg, clauses...)
			for _, l := range learnt {
				neg = append(neg, []Lit{l.Not()})
			}
			if bruteForce(nVars, neg) {
				t.Fatalf("iter %d: learnt clause %v is not implied by the DB", iter, learnt)
			}
		}
	}
}
