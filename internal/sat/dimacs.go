package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a DIMACS CNF problem into a fresh solver.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	declared := -1
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("sat: bad variable count: %v", err)
			}
			declared = n
			for i := 0; i < n; i++ {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q: %v", tok, err)
			}
			if v == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			idx := v
			neg := false
			if idx < 0 {
				idx, neg = -idx, true
			}
			if declared < 0 || idx > declared {
				return nil, fmt.Errorf("sat: literal %d out of range", v)
			}
			cur = append(cur, MkLit(idx-1, neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		s.AddClause(cur...)
	}
	return s, nil
}

// WriteDIMACS emits the solver's problem clauses in DIMACS CNF format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", s.NumVars(), len(s.clauses)); err != nil {
		return err
	}
	for _, c := range s.clauses {
		var sb strings.Builder
		for _, l := range c.lits {
			sb.WriteString(l.String())
			sb.WriteByte(' ')
		}
		sb.WriteString("0\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
