// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver in the MiniSat tradition: two-literal
// watches, 1UIP conflict analysis, VSIDS branching with phase saving,
// Luby restarts and learnt-clause database reduction.
//
// The smt package bit-blasts bitvector equivalence queries into CNF and
// discharges them here; this pair of packages stands in for the Z3
// solver the paper's Rewrite algorithm queries (SolverEquiv).
package sat

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Lit is a literal: variable index shifted left once, low bit = negated.
type Lit uint32

// MkLit returns the literal for variable v (0-based), negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Not returns the complement of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// String renders the literal in DIMACS style (1-based, minus = negated).
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Result is the outcome of a Solve call.
type Result int

// Solve outcomes.
const (
	Unknown Result = iota // conflict budget exhausted
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver holds the CDCL state. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses
	watches [][]watcher

	assigns  []lbool
	level    []int32
	reason   []*clause
	activity []float64
	polarity []bool // saved phase
	seen     []bool

	trail    []Lit
	trailLim []int
	qhead    int

	order heap // variable order (activity max-heap)

	varInc    float64
	clauseInc float64

	ok           bool // false after a top-level conflict
	conflicts    int64
	decisions    int64
	propagations int64
	restarts     int64

	strat Strategy

	// learntUnits records unit facts learnt during search. Unlike
	// longer learnt clauses these are enqueued directly at level 0 and
	// never stored in learnts, so exporting them needs its own list.
	learntUnits []Lit

	// interrupted is set by Interrupt (from any goroutine); the solve
	// loop polls it and returns Unknown. One-shot: an interrupted
	// solver stays interrupted, which is all the portfolio's throwaway
	// replicas need.
	interrupted atomic.Bool

	// MaxConflicts bounds each Solve call (not the solver lifetime);
	// <= 0 means no bound. An incremental solver answering many
	// queries gets the full budget per query.
	MaxConflicts int64
}

// New returns an empty solver with the baseline strategy.
func New() *Solver {
	return NewWithStrategy(Strategy{})
}

// NewWithStrategy returns an empty solver whose search heuristics are
// seeded by st. The strategy must be chosen before variables are
// created (it shapes their initial phase and activity).
func NewWithStrategy(st Strategy) *Solver {
	return &Solver{varInc: 1, clauseInc: 1, ok: true, strat: st}
}

// Interrupt asks a running Solve (possibly on another goroutine) to
// stop; it returns Unknown at the next poll point. Interruption is
// permanent for the solver.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// NewVar introduces a new variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	phase := s.strat.InvertPhases // default phase: false (negated) unless inverted
	var jitter float64
	if s.strat.Seed != 0 {
		h := splitmix64(s.strat.Seed ^ uint64(v)*0x9e3779b97f4a7c15)
		phase = h&1 == 1
		// Tie-breaking jitter: far below the bump increment (1.0), so
		// it only orders variables the search considers equally active.
		jitter = float64(h>>40) * 1e-12
	}
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, jitter)
	s.polarity = append(s.polarity, !phase)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(s, v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses retained.
func (s *Solver) NumClauses() int { return len(s.clauses) }

func (s *Solver) litValue(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause. It returns false if the formula is already
// unsatisfiable at the top level. Calling AddClause after a Solve
// (incremental use) first retracts the previous search's decisions, so
// a persistent solver can grow its clause database between queries.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		s.backtrackTo(0)
	}
	// Sort, dedupe, drop satisfied/false literals.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = ^Lit(0)
	for _, l := range ls {
		if l.Var() >= len(s.assigns) {
			panic(fmt.Sprintf("sat: clause references unknown variable %d", l.Var()))
		}
		switch {
		case s.litValue(l) == lTrue || (prev != ^Lit(0) && l == prev.Not()):
			return true // clause satisfied or tautological
		case s.litValue(l) == lFalse || l == prev:
			continue // drop falsified duplicate literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal (p.Not()) is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze performs 1UIP conflict analysis and returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = ^Lit(0)
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != ^Lit(0) && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Not()
	toClear := append([]Lit(nil), learnt...)

	// Clause minimisation: drop literals implied by the rest.
	marked := make(map[int]bool, len(learnt))
	for _, l := range learnt[1:] {
		marked[l.Var()] = true
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if r := s.reason[l.Var()]; r != nil && s.subsumedByReason(r, l, marked) {
			continue
		}
		out = append(out, l)
	}
	learnt = out

	// Backtrack level: second-highest level in clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

// subsumedByReason reports whether every literal of l's reason clause
// (other than l itself) is already in the learnt clause or at level 0.
func (s *Solver) subsumedByReason(r *clause, l Lit, marked map[int]bool) bool {
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] != 0 && !marked[q.Var()] {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = lUndef
		s.polarity[v] = l.Neg()
		s.reason[v] = nil
		if !s.order.inHeap(v) {
			s.order.push(s, v)
		}
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(s, v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) pickBranchLit() (Lit, bool) {
	for s.order.size() > 0 {
		v := s.order.pop(s)
		if s.assigns[v] == lUndef {
			return MkLit(v, s.polarity[v]), true
		}
	}
	return 0, false
}

// maxLearntUnits bounds the learnt-unit export log: a long-lived
// incremental solver answering thousands of queries must not grow it
// without bound, and importers only ever take a short prefix.
const maxLearntUnits = 4096

// luby returns the i-th element (1-based) of the Luby sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// reduceDB removes the less active half of the learnt clauses
// (keeping binary clauses and current reasons).
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	keepFrom := len(s.learnts) / 2
	kept := s.learnts[:0]
	locked := map[*clause]bool{}
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	for i, c := range s.learnts {
		if i < keepFrom || len(c.lits) == 2 || locked[c] {
			kept = append(kept, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = kept
}

func (s *Solver) detach(c *clause) {
	for _, l := range c.lits[:2] {
		ws := s.watches[l.Not()]
		for i, w := range ws {
			if w.c == c {
				s.watches[l.Not()] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
}

// Solve searches for a satisfying assignment under the given
// assumptions. On Sat, Value reports the model.
func (s *Solver) Solve(assumptions ...Lit) Result {
	if !s.ok {
		return Unsat
	}
	s.backtrackTo(0)
	startConflicts := s.conflicts
	maxLearnts := len(s.clauses)/3 + 100
	var restart int64 = 1
	budget := s.restartBudget(restart)

	for {
		if s.interrupted.Load() {
			s.backtrackTo(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				if len(s.learntUnits) < maxLearntUnits {
					s.learntUnits = append(s.learntUnits, learnt[0])
				}
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999
			if s.MaxConflicts > 0 && s.conflicts-startConflicts >= s.MaxConflicts {
				s.backtrackTo(0)
				return Unknown
			}
			budget--
			continue
		}
		if budget <= 0 {
			// Restart.
			s.backtrackTo(0)
			s.restarts++
			restart++
			budget = s.restartBudget(restart)
			continue
		}
		if len(s.learnts) > maxLearnts+len(s.trail) {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}
		// Apply assumptions, then decide.
		var next Lit
		haveNext := false
		for s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				s.backtrackTo(0)
				return Unsat
			default:
				next, haveNext = a, true
			}
			if haveNext {
				break
			}
		}
		if !haveNext {
			l, ok := s.pickBranchLit()
			if !ok {
				return Sat // all variables assigned
			}
			next = l
			s.decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// restartBudget returns the conflict budget for the i-th (1-based)
// restart interval under the solver's strategy.
func (s *Solver) restartBudget(i int64) int64 {
	if s.strat.GeometricRestarts {
		b := int64(100)
		for ; i > 1 && b < 1<<40; i-- {
			b = b * 3 / 2
		}
		return b
	}
	return luby(i) * 100
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.assigns[v] == lTrue }

// Conflicts returns the total number of conflicts encountered.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// LearntClauses returns copies of learnt clauses with at most maxLen
// literals, capped at max clauses, in deterministic order: unit facts
// learnt during search first, then the retained learnt-clause database.
// The clauses are logical consequences of the clause database alone
// (they are derived by resolution from it, independent of any Solve
// assumptions), so callers may soundly add them to any solver whose
// clauses subsume this one's.
func (s *Solver) LearntClauses(maxLen, max int) [][]Lit {
	var out [][]Lit
	for _, u := range s.learntUnits {
		if len(out) >= max {
			return out
		}
		out = append(out, []Lit{u})
	}
	for _, c := range s.learnts {
		if len(out) >= max {
			break
		}
		if len(c.lits) > maxLen {
			continue
		}
		out = append(out, append([]Lit(nil), c.lits...))
	}
	return out
}

// Export returns the clause database for serialization: the variable
// count, the level-0 unit facts on the trail, and every problem and
// learnt clause. Re-adding them (after creating the same number of
// variables) reconstructs an equisatisfiable solver with identical
// variable numbering — the basis of the smt package's persisted warm
// core. ok is false when the solver is already unsatisfiable at top
// level, in which case the export is not usable.
func (s *Solver) Export() (numVars int, units []Lit, clauses [][]Lit, ok bool) {
	if !s.ok {
		return 0, nil, nil, false
	}
	end := len(s.trail)
	if len(s.trailLim) > 0 {
		end = s.trailLim[0]
	}
	units = append([]Lit(nil), s.trail[:end]...)
	clauses = make([][]Lit, 0, len(s.clauses)+len(s.learnts))
	for _, c := range s.clauses {
		clauses = append(clauses, append([]Lit(nil), c.lits...))
	}
	for _, c := range s.learnts {
		clauses = append(clauses, append([]Lit(nil), c.lits...))
	}
	return len(s.assigns), units, clauses, true
}
