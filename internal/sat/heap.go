package sat

// heap is a binary max-heap of variables ordered by VSIDS activity,
// with an index side-table for decrease/increase-key updates.
type heap struct {
	data []int // variable indices
	pos  []int // pos[v] = index of v in data, or -1
}

func (h *heap) size() int { return len(h.data) }

func (h *heap) inHeap(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *heap) push(s *Solver, v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(s, len(h.data)-1)
}

func (h *heap) pop(s *Solver) int {
	top := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	h.pos[h.data[0]] = 0
	h.data = h.data[:last]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.down(s, 0)
	}
	return top
}

// update restores heap order after v's activity increased.
func (h *heap) update(s *Solver, v int) {
	if h.inHeap(v) {
		h.up(s, h.pos[v])
	}
}

func (h *heap) less(s *Solver, i, j int) bool {
	return s.activity[h.data[i]] > s.activity[h.data[j]]
}

func (h *heap) up(s *Solver, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(s, i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap) down(s *Solver, i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(s, l, best) {
			best = l
		}
		if r < n && h.less(s, r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *heap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = i
	h.pos[h.data[j]] = j
}
