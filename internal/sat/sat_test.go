package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatalf("MkLit(5,false): var=%d neg=%v", l.Var(), l.Neg())
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatalf("Not: var=%d neg=%v", n.Var(), n.Neg())
	}
	if n.Not() != l {
		t.Fatal("double negation is not identity")
	}
	if l.String() != "6" || n.String() != "-6" {
		t.Fatalf("String: %s / %s", l, n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(nlit(a))
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v, want SAT", r)
	}
	if s.Value(a) {
		t.Error("a should be false")
	}
	if !s.Value(b) {
		t.Error("b should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if ok := s.AddClause(nlit(a)); ok {
		t.Fatal("AddClause of contradicting unit should return false")
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", r)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if ok := s.AddClause(); ok {
		t.Fatal("empty clause should make formula unsat")
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", r)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a), nlit(a))
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v, want SAT", r)
	}
}

func TestXorChainSat(t *testing.T) {
	// x0 xor x1 = 1, x1 xor x2 = 1, ..., satisfiable for any chain.
	s := New()
	n := 20
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		a, b := vs[i], vs[i+1]
		s.AddClause(lit(a), lit(b))
		s.AddClause(nlit(a), nlit(b))
	}
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v, want SAT", r)
	}
	for i := 0; i+1 < n; i++ {
		if s.Value(vs[i]) == s.Value(vs[i+1]) {
			t.Fatalf("xor constraint violated at %d", i)
		}
	}
}

// pigeonhole encodes n+1 pigeons into n holes (UNSAT).
func pigeonhole(n int) *Solver {
	s := New()
	v := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		v[p] = make([]int, n)
		for h := 0; h < n; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = lit(v[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(n)
		if r := s.Solve(); r != Unsat {
			t.Fatalf("PHP(%d) = %v, want UNSAT", n, r)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(lit(a), lit(b))
	if r := s.Solve(nlit(a), nlit(b)); r != Unsat {
		t.Fatalf("Solve under contradicting assumptions = %v, want UNSAT", r)
	}
	// Solver must remain usable after assumption failure.
	if r := s.Solve(nlit(a)); r != Sat {
		t.Fatalf("Solve = %v, want SAT", r)
	}
	if !s.Value(b) {
		t.Error("b must be true when a assumed false")
	}
	if r := s.Solve(); r != Sat {
		t.Fatalf("unconstrained Solve = %v, want SAT", r)
	}
}

// bruteForce checks satisfiability of small CNFs by enumeration.
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>(l.Var())&1 == 1
				if bit != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := 1 + rng.Intn(nVars*5)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v (n=%d m=%d)", iter, got, want, nVars, nClauses)
		}
		if got == Sat {
			// Verify the model satisfies every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model violates clause %d", iter, ci)
				}
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(8)
	s.MaxConflicts = 10
	if r := s.Solve(); r != Unknown {
		// PHP(8) needs far more than 10 conflicts for a resolution proof.
		t.Fatalf("Solve with tiny budget = %v, want UNKNOWN", r)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(lit(a), nlit(b))
	s.AddClause(lit(b), lit(c))
	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumVars() != 3 || s2.NumClauses() != 2 {
		t.Fatalf("round trip: vars=%d clauses=%d", s2.NumVars(), s2.NumClauses())
	}
	if r := s2.Solve(); r != Sat {
		t.Fatalf("parsed formula = %v, want SAT", r)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"p cnf x 2\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 1 1\n2 0\n",
		"1 0\n", // literal before problem line
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDIMACS(%q): expected error", bad)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := pigeonhole(7)
		if r := s.Solve(); r != Unsat {
			b.Fatalf("PHP(7) = %v", r)
		}
	}
}

// TestLargeRandomInstanceExercisesReduceDB runs a larger satisfiable
// instance to exercise restarts and learnt-clause database reduction.
func TestLargeRandomInstanceExercisesReduceDB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	const nVars = 200
	for v := 0; v < nVars; v++ {
		s.NewVar()
	}
	// Planted solution: variable v is true iff v is even.
	planted := func(v int) bool { return v%2 == 0 }
	for c := 0; c < 850; c++ {
		var lits []Lit
		sat := false
		for k := 0; k < 3; k++ {
			v := rng.Intn(nVars)
			neg := rng.Intn(2) == 0
			if planted(v) != neg {
				sat = true
			}
			lits = append(lits, MkLit(v, neg))
		}
		if !sat {
			// Flip one literal to keep the planted model valid.
			v := lits[0].Var()
			lits[0] = MkLit(v, !planted(v))
		}
		s.AddClause(lits...)
	}
	if r := s.Solve(); r != Sat {
		t.Fatalf("planted instance = %v, want SAT", r)
	}
}
