package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"codephage/internal/pipeline"
)

// Report is the Row-style transfer outcome served to clients. Every
// field is a deterministic function of the request (the engine
// guarantees parallel runs match sequential ones byte for byte), so
// marshalled reports are byte-identical across runs, processes and the
// network boundary; anything wall-clock-dependent (generation time,
// solver timings) is deliberately excluded and lives in the job
// envelope and /metrics instead.
type Report struct {
	Recipient string `json:"recipient"`
	Target    string `json:"target"`
	// Donor is the donor that supplied the checks — for auto-donor
	// requests, the one the corpus selected (AutoSelected is then
	// true).
	Donor        string `json:"donor"`
	AutoSelected bool   `json:"auto_selected,omitempty"`

	// Figure 8 columns.
	UsedChecks       int      `json:"used_checks"`
	RelevantBranches int      `json:"relevant_branches"`
	FlippedBranches  []int    `json:"flipped_branches"`
	InsertionPoints  [][4]int `json:"insertion_points"` // X, Y, Z, W per patch
	CheckSizes       [][2]int `json:"check_sizes"`      // excised -> translated ops

	Rounds             []RoundReport `json:"rounds"`
	PatchedSource      string        `json:"patched_source"`
	OverflowFreeProven *bool         `json:"overflow_free_proven,omitempty"`
	// PatchKey is the content address of the transfer's verifiable
	// patch artifact (GET /patches/{key}); empty when no check was
	// transferred. It is a pure function of the artifact bytes, so it
	// is as deterministic as every other report field.
	PatchKey string `json:"patch_key,omitempty"`
}

// RoundReport is one transferred patch.
type RoundReport struct {
	CheckIndex      int    `json:"check_index"`
	Patch           string `json:"patch"`
	InsertFn        string `json:"insert_fn"`
	InsertLine      int32  `json:"insert_line"`
	ExcisedCheck    string `json:"excised_check"`
	TranslatedCheck string `json:"translated_check"`
	ErrorInput      []byte `json:"error_input"` // base64 in JSON
}

// BuildReport derives the report from an immutable result snapshot.
// The server and its tests both build reports through this one
// function, so "byte-identical to a direct engine run" is checkable by
// construction.
func BuildReport(recipient, target, donor string, snap *pipeline.Snapshot) *Report {
	rep := &Report{
		Recipient:          recipient,
		Target:             target,
		Donor:              donor,
		UsedChecks:         snap.UsedChecks(),
		PatchedSource:      snap.FinalSource,
		OverflowFreeProven: snap.OverflowFreeProven,
	}
	if snap.Patch != nil {
		rep.PatchKey = snap.Patch.Key()
	}
	for i := range snap.Rounds {
		pr := &snap.Rounds[i]
		if rep.RelevantBranches == 0 {
			rep.RelevantBranches = pr.RelevantSites
		}
		rep.FlippedBranches = append(rep.FlippedBranches, pr.FlippedSites)
		rep.InsertionPoints = append(rep.InsertionPoints, [4]int{
			pr.CandidatePoints, pr.UnstablePoints, pr.Untranslatable, pr.ViablePoints,
		})
		rep.CheckSizes = append(rep.CheckSizes, [2]int{pr.ExcisedOps, pr.TranslatedOps})
		rep.Rounds = append(rep.Rounds, RoundReport{
			CheckIndex:      pr.CheckIndex,
			Patch:           pr.PatchText,
			InsertFn:        pr.InsertFn,
			InsertLine:      pr.InsertLine,
			ExcisedCheck:    pr.ExcisedCheck,
			TranslatedCheck: pr.TranslatedCheck,
			ErrorInput:      pr.ErrorInput,
		})
	}
	return rep
}

// Marshal renders the report's canonical JSON bytes.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

// Text renders the per-patch write-up in the structure of
// pipeline.Result.Report, built only from the deterministic payload —
// generation time and solver counters are not part of the report and
// live in the job envelope and /metrics instead.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Code Phage transfer: %s <- %s\n", r.Recipient, r.Donor)
	fmt.Fprintf(&sb, "patches: %d\n", r.UsedChecks)
	for i := range r.Rounds {
		rr := &r.Rounds[i]
		fmt.Fprintf(&sb, "\npatch %d:\n", i+1)
		fmt.Fprintf(&sb, "  relevant branch sites:   %d\n", r.RelevantBranches)
		if i < len(r.FlippedBranches) {
			fmt.Fprintf(&sb, "  flipped branch sites:    %d (used: #%d in execution order)\n",
				r.FlippedBranches[i], rr.CheckIndex+1)
		}
		if i < len(r.InsertionPoints) {
			p := r.InsertionPoints[i]
			fmt.Fprintf(&sb, "  insertion points:        %d - %d unstable - %d untranslatable = %d\n",
				p[0], p[1], p[2], p[3])
		}
		if i < len(r.CheckSizes) {
			s := r.CheckSizes[i]
			fmt.Fprintf(&sb, "  check size:              %d -> %d operations\n", s[0], s[1])
		}
		fmt.Fprintf(&sb, "  excised check:           %s\n", truncateStr(rr.ExcisedCheck, 160))
		fmt.Fprintf(&sb, "  translated check:        %s\n", truncateStr(rr.TranslatedCheck, 160))
		fmt.Fprintf(&sb, "  patch (before %s:%d):    %s\n", rr.InsertFn, rr.InsertLine, rr.Patch)
	}
	if r.OverflowFreeProven != nil {
		fmt.Fprintf(&sb, "\noverflow-freedom proven by SMT: %v\n", *r.OverflowFreeProven)
	}
	return sb.String()
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
