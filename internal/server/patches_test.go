package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/patch"
)

// TestPatchArtifactEndToEnd drives the full artifact path over HTTP:
// a transfer runs, its report names a patch key, the artifact is
// fetched from the content-addressed registry, applied to an
// independently compiled original module image, verified against the
// embedded oracle, and rolled back — with the applied image required
// to be byte-identical to the patched source's own build.
func TestPatchArtifactEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Shards: 1, PatchDir: filepath.Join(dir, "patches")})
	client := &Client{BaseURL: ts.URL}

	tgt, err := apps.TargetByID("jasper", "jpc_dec.c@492")
	if err != nil {
		t.Fatal(err)
	}
	env, err := client.Transfer(context.Background(), &Request{Recipient: tgt.Recipient, Target: tgt.ID, Donor: tgt.Donors[0]})
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone || env.Report == nil {
		t.Fatalf("transfer did not complete: %+v", env)
	}
	key := env.Report.PatchKey
	if key == "" {
		t.Fatal("report carries no patch key")
	}

	// The listing names it.
	infos, err := client.Patches(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pi := range infos {
		if pi.Key == key {
			found = true
			if pi.Recipient != tgt.Recipient || pi.Target != tgt.ID {
				t.Fatalf("listing provenance = %+v", pi)
			}
		}
	}
	if !found {
		t.Fatalf("key %s missing from /patches listing %v", key, infos)
	}

	// Fetch and authenticate: the body's hash is the key.
	data, err := client.PatchBytes(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != key {
		t.Fatal("fetched artifact does not hash to its key")
	}
	a, err := patch.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	// Apply to an independently built original; the result must be
	// byte-identical to the build of the report's patched source —
	// the cross-layer invariant, checked across the network boundary.
	recipient, err := apps.ByName(tgt.Recipient)
	if err != nil {
		t.Fatal(err)
	}
	origMod, err := compile.CompileSource(tgt.Recipient, recipient.Source)
	if err != nil {
		t.Fatal(err)
	}
	origBytes, err := origMod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	applied, err := a.ApplyBytes(origBytes)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	patchedMod, err := compile.CompileSource(tgt.Recipient, env.Report.PatchedSource)
	if err != nil {
		t.Fatal(err)
	}
	patchedBytes, err := patchedMod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(applied, patchedBytes) {
		t.Fatal("applied artifact differs from the patched source's own build")
	}
	if err := a.Verify(origBytes, applied); err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	back, err := a.RollbackBytes(applied)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if !bytes.Equal(back, origBytes) {
		t.Fatal("rollback is not byte-identical to the original")
	}

	// Unknown and malformed keys 404 cleanly.
	if _, err := client.PatchBytes(context.Background(), "0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Fatal("fetched a nonexistent key")
	}
	if _, err := client.PatchBytes(context.Background(), "not-a-key"); err == nil {
		t.Fatal("fetched a malformed key")
	}

	// Metrics reflect the registry.
	st := srv.Stats()
	if st.PatchArtifacts < 1 || st.PatchPuts < 1 || st.PatchFetches < 1 {
		t.Fatalf("patch stats = %d artifacts, %d puts, %d fetches",
			st.PatchArtifacts, st.PatchPuts, st.PatchFetches)
	}
}

// TestPatchStoreSurvivesRestart: artifacts persisted under PatchDir
// are served by a fresh server instance over the same directory.
func TestPatchStoreSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "patches")
	tgt, err := apps.TargetByID("jasper", "jpc_dec.c@492")
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Recipient: tgt.Recipient, Target: tgt.ID, Donor: tgt.Donors[0]}

	_, ts := newTestServer(t, Config{Shards: 1, PatchDir: dir})
	env, err := (&Client{BaseURL: ts.URL}).Transfer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	key := env.Report.PatchKey
	if key == "" {
		t.Fatal("no patch key")
	}

	// A second server over the same directory serves the artifact
	// without re-running the transfer.
	_, ts2 := newTestServer(t, Config{Shards: 1, PatchDir: dir})
	data, err := (&Client{BaseURL: ts2.URL}).PatchBytes(context.Background(), key)
	if err != nil {
		t.Fatalf("restarted server does not serve the artifact: %v", err)
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != key {
		t.Fatal("restarted server served different bytes")
	}

	// A corrupted entry is skipped at boot, not served and not fatal.
	path := filepath.Join(dir, key+".patch")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, Config{Shards: 1, PatchDir: dir})
	if _, err := (&Client{BaseURL: ts3.URL}).PatchBytes(context.Background(), key); err == nil {
		t.Fatal("server served a corrupted artifact")
	}
}

// TestPatchKeyDeterministicAcrossServers: the same request on two
// independent servers yields the same artifact key and the same
// artifact bytes — content addressing holds across process-like
// boundaries, which is what the CI round-trip step asserts with real
// processes.
func TestPatchKeyDeterministicAcrossServers(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Recipient: tgt.Recipient, Target: tgt.ID, Donor: tgt.Donors[0]}

	var keys []string
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Config{Shards: 1})
		env, err := (&Client{BaseURL: ts.URL}).Transfer(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if env.Report == nil || env.Report.PatchKey == "" {
			rep, _ := json.Marshal(env.Report)
			t.Fatalf("run %d: no patch key (report %s)", i, rep)
		}
		data, err := (&Client{BaseURL: ts.URL}).PatchBytes(context.Background(), env.Report.PatchKey)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, env.Report.PatchKey)
		bodies = append(bodies, data)
	}
	if keys[0] != keys[1] {
		t.Fatalf("keys diverge: %s vs %s", keys[0], keys[1])
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("artifact bytes diverge across servers")
	}
}
