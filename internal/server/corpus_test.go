package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"codephage/internal/apps"
)

// TestServiceAutoDonorMatchesExplicit: a donor:"auto" request must
// resolve a paper-evaluated donor through the corpus and produce a
// report byte-identical (modulo the auto_selected marker) to an
// explicit request naming that donor.
func TestServiceAutoDonorMatchesExplicit(t *testing.T) {
	_, ts := newTestServer(t, Config{CorpusPath: filepath.Join(t.TempDir(), "corpus.json")})

	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	autoEnv := postTransfer(t, ts.URL, &Request{
		Recipient: tgt.Recipient, Target: tgt.ID, Donor: "auto",
	}, "")
	if autoEnv.Status != StatusDone {
		t.Fatalf("auto transfer failed: %s", autoEnv.Error)
	}
	var autoRep Report
	if err := json.Unmarshal(autoEnv.Report, &autoRep); err != nil {
		t.Fatal(err)
	}
	if !autoRep.AutoSelected {
		t.Error("report does not mark the donor as auto-selected")
	}
	donorInPaper := false
	for _, d := range tgt.Donors {
		if d == autoRep.Donor {
			donorInPaper = true
		}
	}
	if !donorInPaper {
		t.Fatalf("auto-selected donor %q not among paper donors %v", autoRep.Donor, tgt.Donors)
	}

	explicitEnv := postTransfer(t, ts.URL, &Request{
		Recipient: tgt.Recipient, Target: tgt.ID, Donor: autoRep.Donor,
	}, "")
	if explicitEnv.Status != StatusDone {
		t.Fatalf("explicit transfer failed: %s", explicitEnv.Error)
	}
	autoRep.AutoSelected = false
	normalized, err := autoRep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var explicitRep Report
	if err := json.Unmarshal(explicitEnv.Report, &explicitRep); err != nil {
		t.Fatal(err)
	}
	explicitBytes, err := explicitRep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(normalized) != string(explicitBytes) {
		t.Error("auto-donor report differs from the explicit-donor report")
	}
}

// TestServiceCorpusEndpointAndMetrics: /corpus serves the warm index
// and /metrics exposes the corpus gauges and counters.
func TestServiceCorpusEndpointAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cli := &Client{BaseURL: ts.URL}

	info, err := cli.Corpus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Index == nil || len(info.Index.Signatures) == 0 {
		t.Fatal("corpus endpoint served no signatures")
	}
	if !info.Stats.Built || info.Stats.Entries != len(info.Index.Signatures) {
		t.Errorf("corpus stats %+v inconsistent with %d signatures", info.Stats, len(info.Index.Signatures))
	}
	for _, sig := range info.Index.Signatures {
		if sig.ContentKey == "" || len(sig.Checks) == 0 {
			t.Errorf("%s/%s: incomplete signature over the wire", sig.Donor, sig.Format)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"phaged_corpus_built 1",
		"phaged_corpus_entries",
		"phaged_corpus_selections_total",
		"phaged_auto_transfers_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
