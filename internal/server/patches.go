package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"codephage/internal/patch"
)

// The patch artifact registry: every successful transfer's verifiable
// artifact, content-addressed by its key, held in memory and — when
// Config.PatchDir is set — persisted through the same crash-safe
// atomic writer the warm solver state uses, so artifacts survive
// daemon restarts. The registry is append-only: an artifact's key IS
// its content hash, so an entry can never go stale, only be re-put
// with identical bytes.

// PatchInfo is one /patches listing entry: the provenance summary of
// a stored artifact (the artifact itself is fetched by key).
type PatchInfo struct {
	Key       string `json:"key"`
	Recipient string `json:"recipient"`
	Target    string `json:"target,omitempty"`
	Donor     string `json:"donor"`
	Format    string `json:"format"`
	Mode      string `json:"mode"`
	Checks    int    `json:"checks"`
	Bytes     int    `json:"bytes"` // encoded artifact size
}

func patchInfo(key string, a *patch.Artifact, encodedLen int) PatchInfo {
	return PatchInfo{
		Key:       key,
		Recipient: a.Recipient,
		Target:    a.Target,
		Donor:     a.Donor,
		Format:    a.Format,
		Mode:      a.Mode,
		Checks:    len(a.Checks),
		Bytes:     encodedLen,
	}
}

// patchRegistry is the server's artifact table. mem always holds the
// encoded bytes (serving never touches the disk store), store is the
// optional durable layer.
type patchRegistry struct {
	mu    sync.Mutex
	mem   map[string][]byte
	info  map[string]PatchInfo
	store *patch.Store // nil = in-memory only
}

// newPatchRegistry opens the registry, reloading any artifacts a
// previous daemon persisted under dir ("" = in-memory only). Corrupt
// or mismatched entries are skipped with a log line, not fatal: the
// directory is a cache of self-authenticating blobs.
func newPatchRegistry(dir string, logf func(string, ...any)) (*patchRegistry, error) {
	r := &patchRegistry{
		mem:  map[string][]byte{},
		info: map[string]PatchInfo{},
	}
	if dir == "" {
		return r, nil
	}
	st, err := patch.NewStore(dir)
	if err != nil {
		return nil, err
	}
	r.store = st
	keys, err := st.Keys()
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		data, err := st.Bytes(key)
		if err != nil {
			logf("phaged: patch store: skipping %s: %v", key, err)
			continue
		}
		a, err := patch.Decode(data)
		if err != nil {
			logf("phaged: patch store: skipping %s: %v", key, err)
			continue
		}
		r.mem[key] = data
		r.info[key] = patchInfo(key, a, len(data))
	}
	return r, nil
}

// add registers an artifact, persisting it when a store is
// configured. Returns the content key and whether the artifact was
// new (re-adding the same content is a cheap no-op: dedup'd jobs and
// repeated identical transfers all land on one entry).
func (r *patchRegistry) add(a *patch.Artifact) (string, bool, error) {
	data := a.Encode()
	key := a.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.mem[key]; ok {
		return key, false, nil
	}
	if r.store != nil {
		if _, err := r.store.Put(a); err != nil {
			return key, false, err
		}
	}
	r.mem[key] = data
	r.info[key] = patchInfo(key, a, len(data))
	return key, true, nil
}

// bytes returns the encoded artifact for key.
func (r *patchRegistry) bytes(key string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok := r.mem[key]
	return data, ok
}

// list returns the stored summaries sorted by key.
func (r *patchRegistry) list() []PatchInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PatchInfo, 0, len(r.info))
	for _, pi := range r.info {
		out = append(out, pi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *patchRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.mem)
}

// handlePatches serves the artifact listing.
func (s *Server) handlePatches(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.patches.list())
}

// handlePatchPut accepts an uploaded encoded artifact, bounded like
// every other body-reading endpoint (an oversized upload is a 413,
// not a buffer-the-daemon-into-OOM). The artifact authenticates
// itself: its key is its content hash, so the registry accepts any
// well-formed body and dedups re-uploads.
func (s *Server) handlePatchPut(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxPatchBody)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	a, err := patch.Decode(data)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding artifact: %w", err))
		return
	}
	key, fresh, err := s.patches.add(a)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if fresh {
		s.counter.patchPuts.Add(1)
	}
	code := http.StatusOK
	if fresh {
		code = http.StatusCreated
	}
	s.writeJSON(w, code, map[string]any{"key": key, "fresh": fresh})
}

// handlePatch serves one encoded artifact by content key. The bytes
// are the canonical encoding — the client can (and should) verify
// sha256(body) == key.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.patches.bytes(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such patch artifact %q", key))
		return
	}
	s.counter.patchFetches.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if _, err := w.Write(data); err != nil {
		s.counter.encodeFailures.Add(1)
		s.logf("phaged: writing patch artifact: %v", err)
	}
}

// Patches lists the daemon's stored patch artifacts.
func (c *Client) Patches(ctx context.Context) ([]PatchInfo, error) {
	resp, err := c.get(ctx, "/patches")
	if err != nil {
		return nil, err
	}
	out, err := decodeBody[[]PatchInfo](resp)
	if err != nil {
		return nil, err
	}
	return *out, nil
}

// PushPatch uploads an encoded artifact, returning its content key
// and whether the daemon had not seen it before.
func (c *Client) PushPatch(ctx context.Context, data []byte) (string, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/patches"), bytes.NewReader(data))
	if err != nil {
		return "", false, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return "", false, err
	}
	out, err := decodeBody[struct {
		Key   string `json:"key"`
		Fresh bool   `json:"fresh"`
	}](resp)
	if err != nil {
		return "", false, err
	}
	return out.Key, out.Fresh, nil
}

// PatchBytes fetches one encoded artifact by content key and verifies
// it against the key before returning it — a fetched artifact is
// authenticated by its own name, so a corrupt or tampered body never
// reaches the caller.
func (c *Client) PatchBytes(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.get(ctx, "/patches/"+key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, responseError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	a, err := patch.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("phaged: patch %s: %w", key, err)
	}
	if got := a.Key(); got != key {
		return nil, fmt.Errorf("phaged: patch %s: body has content key %s", key, got)
	}
	return data, nil
}

// Patch fetches and decodes one artifact.
func (c *Client) Patch(ctx context.Context, key string) (*patch.Artifact, error) {
	data, err := c.PatchBytes(ctx, key)
	if err != nil {
		return nil, err
	}
	return patch.Decode(data)
}
