package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"
)

// HTTP server read-side timeout defaults. They are variables so the
// slowloris regression test can shrink them; production code treats
// them as constants. WriteTimeout stays deliberately unset everywhere:
// NDJSON streams and synchronous transfers hold a response open for as
// long as the job runs.
var (
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers — the classic slowloris hold-open.
	ReadHeaderTimeout = 10 * time.Second
	// ReadTimeout bounds reading the entire request (headers + body).
	// Request bodies are bounded to a few KiB by MaxBytesReader, so
	// this is generous even for patch uploads.
	ReadTimeout = 2 * time.Minute
	// IdleTimeout reaps keep-alive connections parked between requests.
	IdleTimeout = 2 * time.Minute
)

// NewHTTPServer wraps handler in an http.Server hardened against slow
// clients: explicit read-side timeouts so a dribbling request cannot
// pin a connection forever, and no write timeout so streaming and
// long synchronous transfers keep working.
func NewHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// startDebugServer binds the pprof sidecar listener and returns its
// bound address plus a stop function that shuts the listener and its
// serve goroutine down (falling back to a hard close when the drain
// context expires, e.g. a 30s CPU profile still streaming). pprof
// rides its own listener so profiling endpoints are never reachable
// through the public API port. Failure to bind is a degraded boot,
// not a fatal one: the address comes back empty and stop is a no-op.
func startDebugServer(addr string, logf func(string, ...any)) (string, func(context.Context)) {
	if addr == "" {
		return "", func(context.Context) {}
	}
	debugMux := http.NewServeMux()
	debugMux.HandleFunc("/debug/pprof/", pprof.Index)
	debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	dln, err := net.Listen("tcp", addr)
	if err != nil {
		logf("phaged: debug listener: %v", err)
		return "", func(context.Context) {}
	}
	dsrv := NewHTTPServer(debugMux)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = dsrv.Serve(dln)
	}()
	logf("phaged: pprof on %s", dln.Addr())
	return dln.Addr().String(), func(ctx context.Context) {
		if err := dsrv.Shutdown(ctx); err != nil {
			_ = dsrv.Close()
		}
		<-done
	}
}

// ListenAndServe is the daemon loop shared by cmd/phaged and
// `codephage -serve`: it binds addr, serves the phaged API until
// SIGINT/SIGTERM arrives or the listener fails, then drains every
// accepted job within the drain budget. logf (nil = silent) receives
// progress lines. The error is non-nil when the listener could not be
// bound or the drain budget expired with jobs still in flight.
func ListenAndServe(addr string, cfg Config, drain time.Duration, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Logf == nil {
		cfg.Logf = logf
	}
	srv := New(cfg)
	return ServeLoop(addr, srv, srv.Handler(), drain, logf, nil)
}

// ServeLoop is the shared daemon serve/drain loop behind both the
// single-node ListenAndServe and the cluster daemon: it binds addr,
// serves handler (which may wrap srv.Handler with cluster routing)
// until SIGINT/SIGTERM arrives or the listener fails, then drains.
// onDrain (nil = none) runs at the start of the drain, while the HTTP
// listener is still accepting — the cluster uses it to hand its ring
// slice and queued jobs off to peers, which requires answering their
// requests until the handoff completes.
func ServeLoop(addr string, srv *Server, handler http.Handler, drain time.Duration, logf func(string, ...any), onDrain func(context.Context)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv.Start()
	httpSrv := NewHTTPServer(handler)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logf("phaged: listening on %s", ln.Addr())

	_, stopDebug := startDebugServer(srv.cfg.DebugAddr, logf)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	// Periodic warm-state snapshots while serving; the drain path below
	// writes the final one.
	stopSaver := startMemoSaver(srv, logf)

	var serveErr error
	select {
	case s := <-sig:
		logf("phaged: %v: draining (budget %s)", s, drain)
	case err := <-errCh:
		logf("phaged: serve: %v", err)
		if !errors.Is(err, http.ErrServerClosed) {
			serveErr = err
		}
	}

	// Join the saver BEFORE the drain writes the final snapshot: a
	// closed stop channel alone would let an in-flight ticker save
	// finish its rename after the drain-time save and publish stale
	// warm state as the daemon's last word.
	stopSaver()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Cluster handoff runs before the listener stops accepting: peers
	// poll this node for in-flight results while it leaves the ring.
	if onDrain != nil {
		onDrain(ctx)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logf("phaged: http shutdown: %v", err)
	}
	stopDebug(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	logf("phaged: drained cleanly")
	// A listener that died on its own is a failure even though the
	// drain was clean — supervisors must see a non-zero exit.
	return serveErr
}

// startMemoSaver launches the periodic warm-state snapshot goroutine
// and returns a stop function that signals it AND joins it: once stop
// returns, no snapshot write is in flight and none will start, so a
// later save (the drain path's final one) can never be overwritten by
// a stale ticker save that was mid-rename when the stop signal landed.
// When snapshotting is not configured (no MemoPath, or the interval is
// disabled) the returned stop is a no-op.
func startMemoSaver(srv *Server, logf func(string, ...any)) (stop func()) {
	interval := srv.cfg.memoSaveInterval()
	if srv.cfg.MemoPath == "" || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := srv.SaveMemo(); err != nil {
					logf("phaged: memo snapshot: %v", err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// MemoIntervalOff is the parsed value of `-memo-interval off`:
// periodic warm-state snapshots disabled (boot load and the final
// drain-time save still happen when a memo path is configured).
const MemoIntervalOff = -1 * time.Second

// ParseMemoInterval parses the -memo-interval flag spelling shared by
// the daemons: "" or "0" means the default cadence (5 minutes), "off"
// (or any negative duration) disables periodic snapshots explicitly,
// and anything else must be a positive Go duration. The historical
// surprise — 0 silently meaning "5m" with no way to say "never" — is
// resolved by giving disablement its own spelling instead of
// repurposing zero.
func ParseMemoInterval(s string) (time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "0":
		return 0, nil // default cadence
	case "off":
		return MemoIntervalOff, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("memo-interval: %q is neither a duration, 0, nor off", s)
	}
	if d < 0 {
		return MemoIntervalOff, nil
	}
	return d, nil
}
