package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ListenAndServe is the daemon loop shared by cmd/phaged and
// `codephage -serve`: it binds addr, serves the phaged API until
// SIGINT/SIGTERM arrives or the listener fails, then drains every
// accepted job within the drain budget. logf (nil = silent) receives
// progress lines. The error is non-nil when the listener could not be
// bound or the drain budget expired with jobs still in flight.
func ListenAndServe(addr string, cfg Config, drain time.Duration, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logf("phaged: listening on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	// Periodic warm-state snapshots while serving; the drain path below
	// writes the final one.
	stopSaver := make(chan struct{})
	if cfg.MemoPath != "" {
		go func() {
			t := time.NewTicker(cfg.memoSaveInterval())
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.SaveMemo(); err != nil {
						logf("phaged: memo snapshot: %v", err)
					}
				case <-stopSaver:
					return
				}
			}
		}()
	}

	var serveErr error
	select {
	case s := <-sig:
		logf("phaged: %v: draining (budget %s)", s, drain)
	case err := <-errCh:
		logf("phaged: serve: %v", err)
		if !errors.Is(err, http.ErrServerClosed) {
			serveErr = err
		}
	}

	close(stopSaver)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logf("phaged: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	logf("phaged: drained cleanly")
	// A listener that died on its own is a failure even though the
	// drain was clean — supervisors must see a non-zero exit.
	return serveErr
}
