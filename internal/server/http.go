package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"codephage/internal/apps"
	"codephage/internal/corpus"
)

func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Handler returns the phaged HTTP API:
//
//	POST /v1/transfer          submit and wait for the result
//	POST /v1/transfer?async=1  submit, return the envelope immediately
//	POST /v1/transfer?stream=1 submit, stream NDJSON status events,
//	                           ending with the terminal envelope
//	GET  /v1/jobs/{id}         job envelope (report included when done)
//	GET  /v1/targets           the transferable error catalogue
//	GET  /corpus               the donor knowledge-base index
//	                           (built on first access)
//	GET  /v1/jobs/{id}/trace   the job's span tree (done jobs only)
//	GET  /patches              the patch artifact listing
//	GET  /patches/{key}        one encoded artifact by content key
//	GET  /metrics              Prometheus-style server and engine stats
//	GET  /healthz              liveness probe
//	GET  /readyz               readiness probe (503 until every
//	                           component is ready)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/transfer", s.handleTransfer)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("GET /corpus", s.handleCorpus)
	mux.HandleFunc("GET /patches", s.handlePatches)
	mux.HandleFunc("POST /patches", s.handlePatchPut)
	mux.HandleFunc("GET /patches/{key}", s.handlePatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// handleReady serves the readiness probe: 200 with the component
// breakdown once everything is up, 503 with the same breakdown until
// then. Probing builds the corpus index, so a fresh node becomes ready
// (and warm) by being probed.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	r := s.Readiness()
	code := http.StatusOK
	if !r.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, r)
}

// writeJSON writes a JSON response body. Encode failures — a client
// that hung up mid-body, a broken pipe — cannot be reported to that
// client anymore, but they must not vanish either: each one is
// counted (phaged_response_encode_failures_total) and logged, so a
// spike of half-written responses is visible on /metrics instead of
// silently dropped on the floor.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.counter.encodeFailures.Add(1)
		s.logf("phaged: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// MaxJSONBody bounds every JSON request body the daemon accepts:
// requests are a few names and small ints, so one client must never
// be able to buffer the daemon into OOM. Patch uploads carry whole
// artifacts and get the larger MaxPatchBody.
const MaxJSONBody = 1 << 16

// MaxPatchBody bounds POST /patches upload bodies; a patch artifact
// carries both module images, so the bound is much larger than for
// plain JSON requests.
const MaxPatchBody = 16 << 20

// DecodeJSONBody decodes a size-bounded JSON request body into v,
// distinguishing an oversized body (413, the bound worked) from a
// malformed one (400). On error it returns the HTTP status to write;
// on success the status is 0. Exported so the cluster front door
// applies the identical bound before routing.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return 0, nil
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
	}
	return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
}

func (s *Server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	var req Request
	if code, err := DecodeJSONBody(w, r, MaxJSONBody, &req); err != nil {
		s.writeError(w, code, err)
		return
	}
	job, dedup, err := s.Submit(&req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Get("stream") != "":
		s.streamJob(w, r, job, dedup)
	case q.Get("async") != "":
		s.writeJSON(w, http.StatusAccepted, job.Envelope(dedup))
	default:
		select {
		case <-job.Done():
			s.writeJSON(w, http.StatusOK, job.Envelope(dedup))
		case <-r.Context().Done():
			// The client went away; the job keeps running and stays
			// addressable by ID and dedupable by key.
		}
	}
}

// streamJob writes one NDJSON line per status transition, then the
// terminal envelope as the final line.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job, dedup bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		if err := enc.Encode(v); err != nil {
			s.counter.encodeFailures.Add(1)
			s.logf("phaged: encoding stream event: %v", err)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for st := range job.Watch() {
		if st.Terminal() {
			break
		}
		emit(map[string]any{"id": job.ID, "status": st})
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
	select {
	case <-job.Done():
		// The trace record precedes the terminal envelope so consumers
		// that keep only the last line (the client's Stream helper)
		// still end on the envelope.
		if tr := job.Trace(); tr != nil {
			emit(map[string]any{"id": job.ID, "trace": tr})
		}
		emit(job.Envelope(dedup))
	case <-r.Context().Done():
	}
}

// handleJobTrace serves a completed job's span tree. Traces are
// observability data beside the report surface: they live on their own
// endpoint so the report stays byte-identical with tracing on or off.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	tr := job.Trace()
	if tr == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("job %q has no trace (status %s)", job.ID, job.Status()))
		return
	}
	s.writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, job.Envelope(false))
}

// TargetInfo is one catalogue entry of the /v1/targets listing.
type TargetInfo struct {
	Recipient string   `json:"recipient"`
	Target    string   `json:"target"`
	Kind      string   `json:"kind"`
	Format    string   `json:"format"`
	Donors    []string `json:"donors"`
}

func (s *Server) handleTargets(w http.ResponseWriter, _ *http.Request) {
	var out []TargetInfo
	for _, t := range apps.Targets() {
		out = append(out, TargetInfo{
			Recipient: t.Recipient,
			Target:    t.ID,
			Kind:      string(t.Kind),
			Format:    t.Format,
			Donors:    t.Donors,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// CorpusInfo is the /corpus payload: the warm index plus the
// selector's activity counters.
type CorpusInfo struct {
	Stats corpus.SelectorStats `json:"stats"`
	Index *corpus.Index        `json:"index"`
}

// handleCorpus serves the donor knowledge base, establishing the
// index on first access (the same lazy build the first auto-donor
// transfer would trigger).
func (s *Server) handleCorpus(w http.ResponseWriter, _ *http.Request) {
	ix, err := s.corpus.Index()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, CorpusInfo{Stats: s.corpus.Stats(), Index: ix})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("phaged_requests_total %d\n", st.Requests)
	p("phaged_jobs_accepted_total %d\n", st.Accepted)
	p("phaged_jobs_rejected_total %d\n", st.Rejected)
	p("phaged_dedup_hits_total %d\n", st.DedupHits)
	p("phaged_engine_runs_total %d\n", st.EngineRuns)
	p("phaged_jobs_completed_total %d\n", st.Completed)
	p("phaged_jobs_failed_total %d\n", st.Failed)
	p("phaged_response_encode_failures_total %d\n", st.EncodeFailures)
	p("phaged_patch_artifacts %d\n", st.PatchArtifacts)
	p("phaged_patch_store_puts_total %d\n", st.PatchPuts)
	p("phaged_patch_fetches_total %d\n", st.PatchFetches)
	p("phaged_jobs_queued %d\n", st.Queued)
	p("phaged_compile_cache_hits_total %d\n", st.Compile.Hits)
	p("phaged_compile_cache_misses_total %d\n", st.Compile.Misses)
	p("phaged_compile_cache_evictions_total %d\n", st.Compile.Evictions)
	p("phaged_compile_cache_entries %d\n", st.Compile.Entries)
	p("phaged_auto_transfers_total %d\n", st.AutoTransfers)
	p("phaged_corpus_built %d\n", boolMetric(st.Corpus.Built))
	p("phaged_corpus_entries %d\n", st.Corpus.Entries)
	p("phaged_corpus_signatures_rebuilt %d\n", st.Corpus.Rebuilt)
	p("phaged_corpus_selections_total %d\n", st.Corpus.Selections)
	p("phaged_corpus_candidates_total %d\n", st.Corpus.Candidates)
	p("phaged_corpus_survivors_total %d\n", st.Corpus.Survivors)
	p("phaged_corpus_prefilter_queries_total %d\n", st.Corpus.PrefilterQueries)
	p("phaged_corpus_prefilter_candidates_total %d\n", st.Corpus.PrefilterCandidates)
	p("phaged_corpus_prefilter_skipped_total %d\n", st.Corpus.PrefilterSkipped)
	p("phaged_corpus_prefilter_fallbacks_total %d\n", st.Corpus.PrefilterFallbacks)
	p("phaged_solver_sessions_total %d\n", st.Solver.Sessions)
	p("phaged_solver_queries_total %d\n", st.Solver.Queries)
	p("phaged_solver_memo_hits_total %d\n", st.Solver.MemoHits)
	p("phaged_solver_memo_misses_total %d\n", st.Solver.MemoMisses)
	p("phaged_solver_memo_evictions_total %d\n", st.Solver.MemoEvictions)
	p("phaged_solver_memo_entries %d\n", st.Solver.MemoEntries)
	p("phaged_solver_sat_calls_total %d\n", st.Solver.SATCalls)
	p("phaged_solver_sat_time_seconds %f\n", st.Solver.SATTime.Seconds())
	p("phaged_solver_cnf_memo_hits_total %d\n", st.Solver.CNFHits)
	p("phaged_solver_cnf_memo_misses_total %d\n", st.Solver.CNFMisses)
	p("phaged_solver_core_resets_total %d\n", st.Solver.SolverResets)
	p("phaged_solver_core_vars %d\n", st.Solver.Vars)
	p("phaged_solver_core_clauses %d\n", st.Solver.Clauses)
	p("phaged_solver_sat_conflicts_total %d\n", st.Solver.SATConflicts)
	p("phaged_solver_sat_decisions_total %d\n", st.Solver.SATDecisions)
	p("phaged_solver_sat_propagations_total %d\n", st.Solver.SATPropagations)
	p("phaged_solver_sat_restarts_total %d\n", st.Solver.SATRestarts)
	p("phaged_solver_portfolio_races_total %d\n", st.Solver.PortfolioRaces)
	p("phaged_solver_portfolio_wins_total %d\n", st.Solver.PortfolioWins)
	p("phaged_solver_portfolio_losses_total %d\n", st.Solver.PortfolioLosses)
	p("phaged_solver_imported_clauses_total %d\n", st.Solver.ImportedClauses)
	p("phaged_solver_memo_loaded_entries %d\n", st.Solver.MemoLoaded)
	p("phaged_solver_memo_loaded_hits_total %d\n", st.Solver.MemoLoadedHits)
	p("phaged_solver_memo_snapshot_saves_total %d\n", st.Solver.SnapshotSaves)
	p("phaged_interned_terms %d\n", st.Intern.Terms)
	p("phaged_interned_hits_total %d\n", st.Intern.Hits)
	p("phaged_interned_misses_total %d\n", st.Intern.Misses)
	p("phaged_interned_overflow_total %d\n", st.Intern.Overflow)
	p("phaged_interned_simplify_hits_total %d\n", st.Intern.SimplifyHits)
	p("phaged_interned_simplify_misses_total %d\n", st.Intern.SimplifyMisses)
	for i, es := range st.ShardStats {
		p("phaged_shard_solver_queries_total{shard=\"%d\"} %d\n", i, es.Solver.Queries)
		p("phaged_shard_solver_cache_hits_total{shard=\"%d\"} %d\n", i, es.Solver.CacheHits)
		p("phaged_shard_solver_sat_calls_total{shard=\"%d\"} %d\n", i, es.Solver.SATCalls)
		p("phaged_shard_baseline_cache_entries{shard=\"%d\"} %d\n", i, es.Baselines)
		p("phaged_shard_proof_cache_entries{shard=\"%d\"} %d\n", i, es.Proofs)
	}
	// Cluster families are always present (zero-valued on a standalone
	// node) so dashboards never see a family appear out of nowhere when
	// a node joins a ring.
	cs := s.clusterStats()
	p("phaged_cluster_peers %d\n", cs.Peers)
	p("phaged_cluster_draining %d\n", boolMetric(cs.Draining))
	p("phaged_cluster_forwards_total %d\n", cs.Forwards)
	p("phaged_cluster_forward_failures_total %d\n", cs.ForwardFailures)
	p("phaged_cluster_steals_total %d\n", cs.Steals)
	p("phaged_cluster_handoffs_total %d\n", cs.Handoffs)
	p("phaged_cluster_artifact_pulls_total %d\n", cs.ArtifactPulls)
	s.telemetry.WriteMetrics(w)
}
