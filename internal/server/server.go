// Package server implements phaged, the long-running Code Phage
// transfer service. It exposes the staged transfer engine
// (internal/pipeline) over HTTP/JSON: clients submit transfer requests
// naming a catalogued recipient error and donor, jobs flow through a
// sharded bounded queue onto warm per-shard engines (requests with the
// same content key always land on the same shard, so that shard's
// baseline and proof caches stay hot; the content-keyed compile cache
// is shared across every shard), identical requests deduplicate onto a
// single engine run, and results come back as deterministic Row-style
// JSON reports built from immutable pipeline.Snapshot copies.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/corpus"
	"codephage/internal/figure8"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
	"codephage/internal/telemetry"
)

// Config tunes a Server.
type Config struct {
	// Shards is the number of engine shards (0 = 2). Each shard owns
	// one pipeline.Engine and a bounded job queue.
	Shards int
	// WorkersPerShard bounds concurrent transfers per shard
	// (0 = GOMAXPROCS divided across the shards, at least 1).
	WorkersPerShard int
	// QueueDepth bounds queued-but-not-running jobs per shard (0 = 64).
	// Submissions beyond the bound are rejected with ErrQueueFull.
	QueueDepth int
	// MaxCachedJobs bounds completed jobs retained for request dedup
	// (0 = 1024). In-flight jobs are never evicted.
	MaxCachedJobs int
	// CorpusPath persists the donor knowledge-base index here
	// ("" = in-memory only). The index is established lazily on the
	// first auto-donor request or /corpus query.
	CorpusPath string
	// CorpusDonors overrides the indexed donor set (nil = the
	// application registry). The scenario soak harness scopes a
	// server's knowledge base to its generated donors, so the lazy
	// index build covers exactly the suite under test rather than
	// whatever the registry holds at build time.
	CorpusDonors []corpus.Donor
	// CorpusLoader overrides donor binary loading for the survival
	// probe (nil = registry builds).
	CorpusLoader corpus.ModuleLoader
	// MemoPath persists the constraint service's warm state — the
	// verdict memo and the incremental core's CNF — here ("" = none).
	// Loaded at construction, saved on graceful shutdown and every
	// MemoSaveInterval while serving. The snapshot is a cache: a
	// missing or invalid file means a cold start, never an error, and
	// loading one cannot change any verdict (definite entries are pure
	// semantic facts; budget-exhausted entries are dropped unless they
	// were recorded under the identical resolution procedure).
	MemoPath string
	// MemoSaveInterval is the periodic snapshot cadence when MemoPath
	// is set: 0 means the default of 5 minutes, and a negative value
	// (ParseMemoInterval's "off" spelling) disables periodic snapshots
	// entirely — the boot-time load and the final drain-time save still
	// happen.
	MemoSaveInterval time.Duration
	// PatchDir persists every successful transfer's verifiable patch
	// artifact here, content-addressed by key ("" = in-memory only).
	// Artifacts written by a previous daemon are reloaded at boot.
	PatchDir string
	// Logf receives server-side operational complaints — response
	// encode failures, persistence errors — that have no client to
	// report to (nil = silent). The daemon loop wires its own logger
	// through here.
	Logf func(string, ...any)
	// Log receives request-scoped structured records (one per job
	// start and finish, carrying job ID, content key, catalogue
	// coordinates, status and duration). nil = structured logging off.
	// cmd/phaged builds this from -log-format text|json.
	Log *slog.Logger
	// DebugAddr, when non-empty, makes the daemon loop serve
	// net/http/pprof on a second listener at this address, so
	// profiling never rides the public API port.
	DebugAddr string
	// BeforeRun, when set, runs at the start of every job execution on
	// the worker goroutine, after the job transitions to running and
	// before the engine is invoked. It exists for the cluster
	// drain/steal/dedup tests, which need a job deterministically held
	// in the running state; production configs leave it nil.
	BeforeRun func(*Job)
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 2
}

func (c Config) workersPerShard() int {
	if c.WorkersPerShard > 0 {
		return c.WorkersPerShard
	}
	w := runtime.GOMAXPROCS(0) / c.shards()
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) maxCachedJobs() int {
	if c.MaxCachedJobs > 0 {
		return c.MaxCachedJobs
	}
	return 1024
}

// memoSaveInterval resolves the periodic snapshot cadence: the
// configured positive interval, 5 minutes for the zero value, and 0
// (disabled) when the config is negative.
func (c Config) memoSaveInterval() time.Duration {
	switch {
	case c.MemoSaveInterval > 0:
		return c.MemoSaveInterval
	case c.MemoSaveInterval < 0:
		return 0
	}
	return 5 * time.Minute
}

// logf forwards to the configured operational logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submission errors.
var (
	ErrShuttingDown = errors.New("server is shutting down")
	ErrQueueFull    = errors.New("shard queue is full")
)

// shard is one engine with affinity for a slice of the key space.
type shard struct {
	id     int
	engine *pipeline.Engine
	queue  chan *Job
}

// Server is the phaged service core: shards, the job table, and the
// dedup index. The HTTP layer in http.go is a thin veneer over Submit.
type Server struct {
	cfg      Config
	compiler *compile.Cache
	corpus   *corpus.Selector
	solver   *smt.Service
	shards   []*shard
	// telemetry is the one sink every shard engine feeds: per-stage
	// and per-solver-query-class latency histograms, exported on
	// /metrics beside the counter lines.
	telemetry *telemetry.Sink
	// memoReady records that the boot-time warm-state load attempt
	// finished (true even on a cold start — the snapshot is a cache);
	// /readyz reports it.
	memoReady bool

	mu        sync.Mutex
	accepting bool
	stopped   bool // Shutdown ran; the shard queues are closed for good
	seq       int64
	jobs      map[string]*Job // job ID -> job
	byKey     map[string]*Job // content key -> job (dedup index)
	keyOrder  []string        // completed-key eviction order (FIFO)

	wg      sync.WaitGroup // shard workers
	counter counters
	patches *patchRegistry

	// memoSaveHook, when non-nil, runs inside every SaveMemo before the
	// snapshot write; the daemon saver-ordering regression test uses it
	// to hold a save in flight while stop is called.
	memoSaveHook func()

	// clusterMetrics, when set via SetClusterMetrics, supplies the
	// phaged_cluster_* families for /metrics. nil = standalone node,
	// every family reads zero.
	clusterMetrics func() ClusterStats
}

// New assembles a server; call Start before submitting jobs.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		compiler:  compile.NewCache(0),
		corpus:    corpus.NewSelector(cfg.CorpusPath),
		solver:    smt.NewService(smt.Config{}),
		telemetry: telemetry.NewSink(),
		jobs:      map[string]*Job{},
		byKey:     map[string]*Job{},
	}
	// Corpus signature building canonicalizes through the same service
	// the shard engines query, so its verdicts (and counters) live in
	// the one place /metrics watches.
	s.corpus.Service = s.solver
	s.corpus.Donors = cfg.CorpusDonors
	s.corpus.Loader = cfg.CorpusLoader
	reg, err := newPatchRegistry(cfg.PatchDir, s.logf)
	if err != nil {
		// An unusable artifact directory degrades to in-memory serving
		// rather than refusing to boot: the registry is derived state.
		s.logf("phaged: patch store: %v (serving artifacts from memory)", err)
		reg, _ = newPatchRegistry("", s.logf)
	}
	s.patches = reg
	if cfg.MemoPath != "" {
		// Best effort: the snapshot is a cache, and every decode
		// failure (missing file, stale version, corruption) means
		// exactly what an absent snapshot means — start cold.
		_ = s.solver.LoadMemo(cfg.MemoPath)
	}
	s.memoReady = true
	for i := 0; i < cfg.shards(); i++ {
		eng := pipeline.NewEngine()
		eng.Compiler = s.compiler
		// Every shard answers auto-donor requests from the one shared
		// warm index, and every shard's symbolic queries route through
		// the one shared constraint service: a verdict proven for any
		// request is a memo hit for every later request on any shard.
		eng.Selector = s.corpus
		eng.Service = s.solver
		// One sink across every shard: the sink also turns on trace
		// capture, so every job's span tree is retrievable afterwards.
		eng.Telemetry = s.telemetry
		s.shards = append(s.shards, &shard{
			id:     i,
			engine: eng,
			queue:  make(chan *Job, cfg.queueDepth()),
		})
	}
	return s
}

// Start launches the shard worker pools and begins accepting jobs.
// Shutdown is permanent: calling Start again afterwards is a no-op
// (submissions keep failing with ErrShuttingDown) rather than a
// re-arm onto the closed shard queues.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.accepting || s.stopped {
		return
	}
	s.accepting = true
	for _, sh := range s.shards {
		for w := 0; w < s.cfg.workersPerShard(); w++ {
			s.wg.Add(1)
			go func(sh *shard) {
				defer s.wg.Done()
				for job := range sh.queue {
					s.runJob(sh, job)
				}
			}(sh)
		}
	}
}

// Shutdown stops accepting new jobs and drains the queues: every job
// already accepted (queued or running) completes before Shutdown
// returns, unless the context expires first. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return nil
	}
	s.accepting = false
	s.stopped = true
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Drained cleanly: persist the warm solver state the run built,
		// so the next boot starts from today's verdicts.
		_ = s.SaveMemo()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SaveMemo persists the constraint service's warm state to the
// configured MemoPath (no-op when unset). The daemon loop also calls
// this periodically so a crash loses at most one interval's verdicts.
func (s *Server) SaveMemo() error {
	if s.cfg.MemoPath == "" {
		return nil
	}
	if s.memoSaveHook != nil {
		s.memoSaveHook()
	}
	return s.solver.SaveMemo(s.cfg.MemoPath)
}

// contentKey is the dedup identity of a request: the hash of every
// field that affects the engine's (deterministic) result.
func contentKey(req *Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%d\x00%d\x00%d\x00%v",
		req.Recipient, req.Target, req.Donor, req.mode(),
		req.MaxChecks, req.MaxRounds, req.MaxSteps, req.NoRescan)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// ContentKey is the exported spelling of a request's dedup identity,
// used by the cluster router: the ring is keyed on exactly the hash
// the dedup index uses, so "forward to the owner" and "dedup
// identical requests" agree by construction.
func ContentKey(req *Request) string { return contentKey(req) }

// shardFor routes a content key to its home shard.
func (s *Server) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Submit validates and enqueues a request. If an identical request
// (same content key) is in flight or already completed, the existing
// job is returned with dedup=true and no new engine run happens.
// Every submission counts toward Stats.Requests, rejected ones toward
// Stats.Rejected too — under overload the rejection rate is the signal
// that matters.
func (s *Server) Submit(req *Request) (job *Job, dedup bool, err error) {
	s.counter.requests.Add(1)
	if err := req.validate(); err != nil {
		s.counter.rejected.Add(1)
		return nil, false, err
	}
	key := contentKey(req)

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.counter.rejected.Add(1)
		return nil, false, ErrShuttingDown
	}
	if j, ok := s.byKey[key]; ok {
		s.counter.dedupHits.Add(1)
		s.mu.Unlock()
		return j, true, nil
	}
	s.seq++
	job = newJob(fmt.Sprintf("job-%06d", s.seq), key, req)
	sh := s.shardFor(key)
	select {
	case sh.queue <- job:
	default:
		s.mu.Unlock()
		s.counter.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.byKey[key] = job
	s.counter.accepted.Add(1)
	s.mu.Unlock()
	return job, false, nil
}

// Job returns the job with the given ID, if it exists.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// TakeQueued removes up to max queued-but-not-yet-running jobs from
// the shard queues (max <= 0 = all currently queued) and returns
// them. The jobs stay in the job table and dedup index; the caller
// owns their completion and must finish each one via FinishRemote,
// FailRemote, or Requeue. The cluster uses this for drain handoff
// (forward my queue to the new owners) and work stealing (hand jobs
// to an idle peer).
func (s *Server) TakeQueued(max int) []*Job {
	var out []*Job
	for _, sh := range s.shards {
	drain:
		for max <= 0 || len(out) < max {
			select {
			case job, ok := <-sh.queue:
				if !ok {
					// Queue already closed by Shutdown; nothing to take.
					break drain
				}
				out = append(out, job)
			default:
				break drain
			}
		}
	}
	return out
}

// Requeue returns a job previously removed by TakeQueued to its home
// shard queue, e.g. when a drain-time handoff found no peer to take
// it. Fails with ErrShuttingDown once the queues are closed and
// ErrQueueFull when the shard is saturated.
func (s *Server) Requeue(job *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrShuttingDown
	}
	sh := s.shardFor(job.Key)
	select {
	case sh.queue <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// FinishRemote completes a job whose report was produced by another
// cluster node (drain handoff or a stolen job's result). The job
// passes through running first so its envelope timing fields stay
// well-formed, then publishes the peer's report exactly as a local
// engine run would.
func (s *Server) FinishRemote(job *Job, rep *Report, trace *telemetry.Span) {
	job.setStatus(StatusRunning)
	job.finish(rep, trace)
	s.counter.completed.Add(1)
	s.retireKey(job.Key)
}

// FailRemote fails a job on behalf of another cluster node, the error
// analogue of FinishRemote.
func (s *Server) FailRemote(job *Job, err error) {
	job.setStatus(StatusRunning)
	job.fail(err)
	s.counter.failed.Add(1)
	s.retireKey(job.Key)
}

// Corpus returns the server's donor selector. The cluster artifact
// replication path installs replicated indexes through it.
func (s *Server) Corpus() *corpus.Selector { return s.corpus }

// ClusterStats is the cluster layer's contribution to /metrics. A
// standalone server reports the zero value, so the phaged_cluster_*
// families exist (at zero) whether or not the node is in a ring.
type ClusterStats struct {
	// Peers is the current member count, this node included.
	Peers int
	// Draining reports that this node has left the ring and is
	// handing off its work.
	Draining bool
	// Forwards counts requests this node routed to their ring owner;
	// ForwardFailures counts forwards that failed and fell back to
	// local execution.
	Forwards        int64
	ForwardFailures int64
	// Steals counts jobs this node stole from a deeper peer queue and
	// ran locally.
	Steals int64
	// Handoffs counts queued jobs this node forwarded to peers while
	// draining.
	Handoffs int64
	// ArtifactPulls counts corpus artifacts pulled from the ring
	// leader and hot-swapped in.
	ArtifactPulls int64
}

// SetClusterMetrics registers the provider of the phaged_cluster_*
// metric families; the cluster node installs itself here.
func (s *Server) SetClusterMetrics(fn func() ClusterStats) {
	s.mu.Lock()
	s.clusterMetrics = fn
	s.mu.Unlock()
}

func (s *Server) clusterStats() ClusterStats {
	s.mu.Lock()
	fn := s.clusterMetrics
	s.mu.Unlock()
	if fn == nil {
		return ClusterStats{}
	}
	return fn()
}

// runJob executes one job on its shard's engine and publishes the
// result. Jobs never panic the worker: catalogue and engine errors
// become failed jobs.
func (s *Server) runJob(sh *shard, job *Job) {
	job.setStatus(StatusRunning)
	if s.cfg.BeforeRun != nil {
		s.cfg.BeforeRun(job)
	}
	log := s.cfg.Log
	if log != nil {
		log = log.With(
			slog.String("job", job.ID),
			slog.String("key", job.Key),
			slog.String("recipient", job.Req.Recipient),
			slog.String("target", job.Req.Target),
			slog.String("donor", job.Req.Donor),
			slog.Int("shard", sh.id))
		log.Info("job started")
	}
	start := time.Now()

	report, trace, err := s.execute(sh, job.Req)
	if err != nil {
		job.fail(err)
		s.counter.failed.Add(1)
		if log != nil {
			log.Error("job failed", slog.Duration("elapsed", time.Since(start)), slog.String("error", err.Error()))
		}
	} else {
		job.finish(report, trace)
		s.counter.completed.Add(1)
		if log != nil {
			log.Info("job done",
				slog.Duration("elapsed", time.Since(start)),
				slog.String("donor_resolved", report.Donor),
				slog.Int("used_checks", report.UsedChecks))
		}
	}
	s.retireKey(job.Key)
}

// execute resolves the catalogue entry and runs the transfer on the
// shard engine, returning the deterministic report plus the run's span
// tree. The trace travels beside the report, never inside it: report
// bytes stay identical whether or not anyone looks at the trace.
func (s *Server) execute(sh *shard, req *Request) (*Report, *telemetry.Span, error) {
	tgt, err := apps.TargetByID(req.Recipient, req.Target)
	if err != nil {
		return nil, nil, err
	}
	opts, err := req.options()
	if err != nil {
		return nil, nil, err
	}
	// Route the whole request — error-input discovery inside
	// NewTransfer included — through the server's shared constraint
	// service, so every symbolic verdict lands in the one memo
	// /metrics watches. (The shard engine would default to it anyway
	// via Engine.Service; discovery would not.)
	opts.Service = s.solver
	if opts.Workers == 0 {
		// Divide the CPU budget across the server's total worker count
		// so concurrent jobs do not oversubscribe quadratically, the
		// same policy pipeline.Batch applies.
		per := runtime.GOMAXPROCS(0) / (len(s.shards) * s.cfg.workersPerShard())
		if per < 1 {
			per = 1
		}
		opts.Workers = per
	}
	tr, err := figure8.NewTransfer(tgt, req.Donor, opts)
	if err != nil {
		return nil, nil, err
	}
	// Counted here, after catalogue/option resolution: requests that
	// fail before reaching the engine are not engine runs.
	s.counter.engineRuns.Add(1)
	res, err := sh.engine.Run(tr)
	if err != nil {
		return nil, nil, err
	}
	snap := res.Snapshot()
	donor := req.Donor
	auto := donor == pipeline.AutoDonor
	if auto {
		donor = snap.Donor
		s.counter.autoTransfers.Add(1)
	}
	if snap.Patch != nil {
		if _, fresh, err := s.patches.add(snap.Patch); err != nil {
			// Registration is best effort: the transfer succeeded and the
			// report must not fail because the artifact directory did not
			// cooperate. The key still appears in the report (it is a pure
			// function of the artifact), so the client can tell what failed
			// to persist.
			s.logf("phaged: storing patch artifact: %v", err)
		} else if fresh {
			s.counter.patchPuts.Add(1)
		}
	}
	rep := BuildReport(req.Recipient, req.Target, donor, snap)
	rep.AutoSelected = auto
	return rep, snap.Trace, nil
}

// retireKey records a completed key for FIFO eviction and trims the
// dedup cache to its bound. In-flight keys are never evicted (eviction
// only considers keys that have reached this point).
func (s *Server) retireKey(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keyOrder = append(s.keyOrder, key)
	for len(s.keyOrder) > s.cfg.maxCachedJobs() {
		old := s.keyOrder[0]
		s.keyOrder = s.keyOrder[1:]
		if j, ok := s.byKey[old]; ok {
			delete(s.byKey, old)
			delete(s.jobs, j.ID)
		}
	}
}

// Stats is a point-in-time view of the server and its shard engines,
// the data backing the /metrics endpoint.
type Stats struct {
	Requests int64
	Accepted int64
	// Rejected counts submissions refused before job creation:
	// validation failures, queue-full, and shutting-down refusals.
	Rejected   int64
	DedupHits  int64
	EngineRuns int64
	// AutoTransfers counts engine runs whose donor the corpus
	// selected automatically.
	AutoTransfers int64
	Completed     int64
	Failed        int64
	// EncodeFailures counts JSON response bodies that could not be
	// fully written to the client (broken pipe mid-encode).
	EncodeFailures int64
	// PatchArtifacts is the number of stored patch artifacts;
	// PatchPuts/PatchFetches count registrations and key fetches.
	PatchArtifacts int
	PatchPuts      int64
	PatchFetches   int64
	Queued         int // jobs accepted but not yet running
	Compile        compile.CacheStats
	// Corpus is the donor knowledge-base state (zero until the first
	// auto-donor request or /corpus query builds the index).
	Corpus corpus.SelectorStats
	// Solver is the shared constraint service: verdict-memo hit/miss/
	// eviction counters, incremental-core gauges and SAT totals.
	Solver smt.ServiceStats
	// Intern is the process-wide bitvec interner state backing the
	// hash-consed term table.
	Intern     bitvec.InternStats
	ShardStats []pipeline.EngineStats
}

// Stats snapshots the server counters and per-shard engine state.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:       s.counter.requests.Load(),
		Accepted:       s.counter.accepted.Load(),
		Rejected:       s.counter.rejected.Load(),
		DedupHits:      s.counter.dedupHits.Load(),
		EngineRuns:     s.counter.engineRuns.Load(),
		AutoTransfers:  s.counter.autoTransfers.Load(),
		Completed:      s.counter.completed.Load(),
		Failed:         s.counter.failed.Load(),
		EncodeFailures: s.counter.encodeFailures.Load(),
		PatchArtifacts: s.patches.len(),
		PatchPuts:      s.counter.patchPuts.Load(),
		PatchFetches:   s.counter.patchFetches.Load(),
		Compile:        s.compiler.Stats(),
		Corpus:         s.corpus.Stats(),
		Solver:         s.solver.Stats(),
		Intern:         bitvec.Interned(),
	}
	for _, sh := range s.shards {
		st.Queued += len(sh.queue)
		es := sh.engine.StatsSnapshot()
		// The compile cache is shared; report it once at the top level
		// rather than duplicated per shard.
		es.Compile = compile.CacheStats{}
		st.ShardStats = append(st.ShardStats, es)
	}
	return st
}

// Readiness is the /readyz payload: the server is ready exactly when
// every component is.
type Readiness struct {
	Ready bool `json:"ready"`
	// CorpusReady reports that the donor knowledge-base index is built.
	// The index is lazily established, so the first readiness probe
	// triggers the build — a fresh node becomes ready by being probed,
	// which also warms it for its first auto-donor request.
	CorpusReady bool `json:"corpus_ready"`
	// MemoReady reports that the boot-time warm-state load attempt
	// finished (cold starts count: the snapshot is a cache).
	MemoReady bool `json:"memo_ready"`
	// Accepting reports that the shard queues accept submissions.
	Accepting bool `json:"accepting"`
}

// Readiness probes every startup-gated component. Building the corpus
// index can take a moment on the first call; later calls are cheap.
func (s *Server) Readiness() Readiness {
	r := Readiness{MemoReady: s.memoReady}
	if _, err := s.corpus.Index(); err == nil {
		r.CorpusReady = true
	}
	s.mu.Lock()
	r.Accepting = s.accepting
	s.mu.Unlock()
	r.Ready = r.CorpusReady && r.MemoReady && r.Accepting
	return r
}

// nowMs converts a duration to whole milliseconds for JSON envelopes.
func nowMs(d time.Duration) int64 { return d.Milliseconds() }
