package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestClientDefaultTimeout pins the client-side hang fix: the default
// (non-streaming) client must carry an overall deadline, so a daemon
// that accepts the connection and then never answers surfaces as an
// error instead of hanging codephage -remote forever.
func TestClientDefaultTimeout(t *testing.T) {
	saved := DefaultTimeout
	DefaultTimeout = 200 * time.Millisecond
	defer func() { DefaultTimeout = saved }()

	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answer
	}))
	defer hung.Close()

	cli := &Client{BaseURL: hung.URL}
	start := time.Now()
	err := cli.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a hung server returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Health took %v; the default timeout did not fire", elapsed)
	}
}

// TestClientStreamHasNoDeadline pins the other half of the fix: the
// streaming client must NOT carry an overall deadline — an NDJSON
// stream legitimately stays open for the whole transfer — and relies
// on context cancellation instead.
func TestClientStreamHasNoDeadline(t *testing.T) {
	cli := &Client{}
	if d := cli.streamHTTP().Timeout; d != 0 {
		t.Fatalf("streaming client timeout = %v, want 0 (context-governed)", d)
	}
	if d := cli.http().Timeout; d != DefaultTimeout {
		t.Fatalf("default client timeout = %v, want %v", d, DefaultTimeout)
	}

	// Cancellation must still end a stream promptly.
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer hung.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := cli.For(hung.URL).Stream(ctx, &Request{}, nil); err == nil {
		t.Fatal("Stream with an expired context returned nil error")
	}
}

// TestServerDropsSlowHeaderClient pins the slowloris fix: a connection
// that dribbles its request headers must be cut off by
// ReadHeaderTimeout instead of pinning the daemon forever.
func TestServerDropsSlowHeaderClient(t *testing.T) {
	savedHdr, savedRead := ReadHeaderTimeout, ReadTimeout
	ReadHeaderTimeout, ReadTimeout = 200*time.Millisecond, 500*time.Millisecond
	defer func() { ReadHeaderTimeout, ReadTimeout = savedHdr, savedRead }()

	hs := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	if hs.ReadHeaderTimeout != ReadHeaderTimeout || hs.ReadTimeout != ReadTimeout ||
		hs.IdleTimeout != IdleTimeout {
		t.Fatalf("NewHTTPServer timeouts = %v/%v/%v, want %v/%v/%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout,
			ReadHeaderTimeout, ReadTimeout, IdleTimeout)
	}
	if hs.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (streams hold responses open)", hs.WriteTimeout)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never finish the header block.
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: phaged\r\n"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	n, err := conn.Read(make([]byte, 1))
	if err == nil && n > 0 {
		// A 408 response body also proves the server gave up on us.
		t.Logf("server answered the half-sent request (likely 408)")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server kept the half-sent connection open for %v", time.Since(start))
	}
	// EOF / reset before our deadline: the slow client was dropped.
}

// TestServerStreamsOutliveReadTimeouts proves the hardening did not
// break streaming: a response that takes far longer than every
// read-side timeout still reaches the client whole, because
// WriteTimeout is deliberately unset.
func TestServerStreamsOutliveReadTimeouts(t *testing.T) {
	savedHdr, savedRead, savedIdle := ReadHeaderTimeout, ReadTimeout, IdleTimeout
	ReadHeaderTimeout, ReadTimeout, IdleTimeout =
		50*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond
	defer func() {
		ReadHeaderTimeout, ReadTimeout, IdleTimeout = savedHdr, savedRead, savedIdle
	}()

	const chunks = 5
	hs := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fl := w.(http.Flusher)
		for i := 0; i < chunks; i++ {
			fmt.Fprintf(w, "chunk %d\n", i)
			fl.Flush()
			time.Sleep(100 * time.Millisecond) // each gap > ReadHeaderTimeout
		}
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading streamed body: %v", err)
	}
	if got := strings.Count(string(body), "chunk"); got != chunks {
		t.Fatalf("streamed %d chunks, want %d; body %q", got, chunks, body)
	}
}

// TestDebugServerShutdown pins the pprof-sidecar leak fix: the debug
// listener must be owned by a real http.Server that the daemon shuts
// down during drain — the port frees up and its serve goroutine exits.
func TestDebugServerShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	addr, stop := startDebugServer("127.0.0.1:0", t.Logf)
	if addr == "" {
		t.Fatal("startDebugServer returned an empty address")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stop(ctx)

	// The freed port proves the listener really closed.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s after stop: %v", addr, err)
	}
	ln.Close()

	// And the serve goroutine must be gone, not merely idle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines after stop = %d, baseline %d: debug server leaked", n, baseline)
	}

	// Disabled sidecar: empty address, no-op stop.
	addr2, stop2 := startDebugServer("", t.Logf)
	if addr2 != "" {
		t.Fatalf("disabled debug server returned addr %q", addr2)
	}
	stop2(ctx)
}

// TestBodyLimits drives every body-reading endpoint with an oversized
// and a malformed body: oversize must come back as 413 (the bound
// worked) and malformed as 400, never a generic 400 for both.
func TestBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	bigJSON := `{"recipient":"` + strings.Repeat("a", MaxJSONBody) + `"}`
	bigPatch := strings.Repeat("x", MaxPatchBody+1)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"transfer oversize", "/v1/transfer", bigJSON, http.StatusRequestEntityTooLarge},
		{"transfer malformed", "/v1/transfer", "{not json", http.StatusBadRequest},
		{"patch oversize", "/patches", bigPatch, http.StatusRequestEntityTooLarge},
		{"patch malformed", "/patches", "not a patch artifact", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.path, "application/octet-stream", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("POST %s: status %d, want %d", c.path, resp.StatusCode, c.want)
			}
		})
	}
}
