package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/figure8"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
)

// newTestServer starts a phaged core on a loopback HTTP listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// rawEnvelope decodes the envelope but keeps the report's raw bytes,
// so tests can compare the exact bytes that crossed the network.
type rawEnvelope struct {
	ID      string          `json:"id"`
	Status  Status          `json:"status"`
	Dedup   bool            `json:"dedup"`
	Error   string          `json:"error"`
	Report  json.RawMessage `json:"report"`
	QueueMs int64           `json:"queue_ms"`
	RunMs   int64           `json:"run_ms"`
}

func postTransfer(t *testing.T, base string, req *Request, query string) *rawEnvelope {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/transfer"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env rawEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v (status %s)", err, resp.Status)
	}
	return &env
}

// allTargetRequests returns one request per Figure 8 target (its first
// catalogued donor), the satellite workload of 10 concurrent jobs.
func allTargetRequests() []*Request {
	var reqs []*Request
	for _, tgt := range apps.Targets() {
		reqs = append(reqs, &Request{
			Recipient: tgt.Recipient,
			Target:    tgt.ID,
			Donor:     tgt.Donors[0],
		})
	}
	return reqs
}

// directReportBytes runs the same requests through a direct
// pipeline.Batch over a fresh engine and renders the reports with the
// same BuildReport the service uses.
func directReportBytes(t *testing.T, reqs []*Request, workers int) map[string][]byte {
	t.Helper()
	var tasks []pipeline.BatchTask
	for _, req := range reqs {
		tgt, err := apps.TargetByID(req.Recipient, req.Target)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := figure8.NewTransfer(tgt, req.Donor, phage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, pipeline.BatchTask{ID: contentKey(req), Transfer: tr})
	}
	eng := pipeline.NewEngine()
	eng.Compiler = compile.NewCache(0)
	batch := &pipeline.Batch{Engine: eng, Workers: workers}
	if workers == 1 {
		eng.Workers = 1
	}
	results, stats := batch.Run(tasks)
	if stats.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("direct batch %s: %v", r.ID, r.Err)
			}
		}
	}
	out := map[string][]byte{}
	for i, br := range results {
		req := reqs[i]
		rep := BuildReport(req.Recipient, req.Target, req.Donor, br.Result.Snapshot())
		bytes, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out[br.ID] = bytes
	}
	return out
}

// TestServiceMatchesDirectBatch is the end-to-end determinism
// contract: all 10 Figure 8 targets submitted concurrently over the
// network must produce report bytes identical to a direct
// pipeline.Batch run of the same transfers.
func TestServiceMatchesDirectBatch(t *testing.T) {
	reqs := allTargetRequests()
	want := directReportBytes(t, reqs, 0)

	srv, ts := newTestServer(t, Config{Shards: 3})
	var wg sync.WaitGroup
	envs := make([]*rawEnvelope, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			envs[i] = postTransfer(t, ts.URL, req, "")
		}(i, req)
	}
	wg.Wait()

	for i, req := range reqs {
		env := envs[i]
		label := fmt.Sprintf("%s/%s<-%s", req.Recipient, req.Target, req.Donor)
		if env.Status != StatusDone {
			t.Errorf("%s: status %s (%s)", label, env.Status, env.Error)
			continue
		}
		if got, wantB := string(env.Report), string(want[contentKey(req)]); got != wantB {
			t.Errorf("%s: service report differs from direct batch report\n got: %.300s\nwant: %.300s", label, got, wantB)
		}
	}
	if st := srv.Stats(); st.EngineRuns != int64(len(reqs)) {
		t.Errorf("engine runs = %d, want %d", st.EngineRuns, len(reqs))
	}
}

// determinismRequests are the three determinism-test Figure 8 rows
// (catalogued error inputs, all three error kinds).
func determinismRequests() []*Request {
	return []*Request{
		{Recipient: "jasper", Target: "jpc_dec.c@492", Donor: "openjpeg"},
		{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"},
		{Recipient: "wireshark14", Target: "packet-dcp-etsi.c@258", Donor: "wireshark18"},
	}
}

// TestServiceDeterminismAgainstSequentialEngine: concurrent phaged
// responses for the determinism rows must be byte-identical to fully
// sequential direct-engine runs (Workers: 1, cold cache) — the
// acceptance criterion for determinism across the network boundary.
func TestServiceDeterminismAgainstSequentialEngine(t *testing.T) {
	reqs := determinismRequests()
	want := directReportBytes(t, reqs, 1)

	_, ts := newTestServer(t, Config{Shards: 2})
	var wg sync.WaitGroup
	envs := make([]*rawEnvelope, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			envs[i] = postTransfer(t, ts.URL, req, "")
		}(i, req)
	}
	wg.Wait()
	for i, req := range reqs {
		if envs[i].Status != StatusDone {
			t.Fatalf("%s: %s (%s)", req.Recipient, envs[i].Status, envs[i].Error)
		}
		if got, wantB := string(envs[i].Report), string(want[contentKey(req)]); got != wantB {
			t.Errorf("%s: concurrent service response != sequential engine run", req.Recipient)
		}
	}
}

// TestServiceDedup: the same request twice — sequentially and then
// concurrently — must run the engine exactly once; later responses are
// served from the dedup index.
func TestServiceDedup(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1})
	req := &Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"}

	first := postTransfer(t, ts.URL, req, "")
	if first.Status != StatusDone {
		t.Fatalf("first: %s (%s)", first.Status, first.Error)
	}
	if first.Dedup {
		t.Error("first response claims dedup")
	}

	const repeats = 8
	var wg sync.WaitGroup
	envs := make([]*rawEnvelope, repeats)
	for i := 0; i < repeats; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			envs[i] = postTransfer(t, ts.URL, req, "")
		}(i)
	}
	wg.Wait()
	for i, env := range envs {
		if env.Status != StatusDone {
			t.Fatalf("repeat %d: %s (%s)", i, env.Status, env.Error)
		}
		if !env.Dedup {
			t.Errorf("repeat %d: not served from the dedup index", i)
		}
		if string(env.Report) != string(first.Report) {
			t.Errorf("repeat %d: report differs from the first run", i)
		}
		if env.ID != first.ID {
			t.Errorf("repeat %d: job id %s, want the original %s", i, env.ID, first.ID)
		}
	}
	st := srv.Stats()
	if st.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want 1 (dedup must reuse the run)", st.EngineRuns)
	}
	if st.DedupHits != repeats {
		t.Errorf("dedup hits = %d, want %d", st.DedupHits, repeats)
	}
}

// TestServiceStreamAndJobEndpoints: the NDJSON stream delivers status
// events ending in a terminal envelope, and the job stays addressable
// by ID afterwards.
func TestServiceStreamAndJobEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	body, _ := json.Marshal(&Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"})
	resp, err := http.Post(ts.URL+"/v1/transfer?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var lines []json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		lines = append(lines, json.RawMessage(append([]byte(nil), sc.Bytes()...)))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want status events plus a terminal envelope", len(lines))
	}
	var final rawEnvelope
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || len(final.Report) == 0 {
		t.Fatalf("terminal line: status %s, report %d bytes", final.Status, len(final.Report))
	}

	// The same job must be retrievable by ID.
	cli := &Client{BaseURL: ts.URL}
	env, err := cli.Job(context.Background(), final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone || env.Report == nil {
		t.Errorf("GET /v1/jobs/%s: status %s, report nil=%v", final.ID, env.Status, env.Report == nil)
	}
}

// TestServiceValidationAndErrors: bad requests are rejected up front,
// unknown catalogue entries fail the job with the engine untouched
// beyond one run, and failed jobs are dedup-cached too.
func TestServiceValidationAndErrors(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1})

	resp, err := http.Post(ts.URL+"/v1/transfer", "application/json",
		bytes.NewReader([]byte(`{"recipient":"dillo"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fields: status %d, want 400", resp.StatusCode)
	}

	env := postTransfer(t, ts.URL, &Request{Recipient: "nosuch", Target: "x", Donor: "feh"}, "")
	if env.Status != StatusFailed || env.Error == "" {
		t.Errorf("unknown target: status %s, error %q", env.Status, env.Error)
	}
	env2 := postTransfer(t, ts.URL, &Request{Recipient: "nosuch", Target: "x", Donor: "feh"}, "")
	if !env2.Dedup {
		t.Error("repeated failing request did not dedup")
	}
	st := srv.Stats()
	if st.Failed != 1 || st.EngineRuns != 0 {
		t.Errorf("failed=%d engineRuns=%d, want failed=1 and no engine runs (catalogue lookup fails first)", st.Failed, st.EngineRuns)
	}
	// 3 submissions reached Submit: the invalid one was rejected, the
	// nosuch pair was accepted once and deduped once.
	if st.Requests != 3 || st.Rejected != 1 || st.Accepted != 1 || st.DedupHits != 1 {
		t.Errorf("requests=%d rejected=%d accepted=%d dedup=%d, want 3/1/1/1",
			st.Requests, st.Rejected, st.Accepted, st.DedupHits)
	}
}

// TestServiceShutdownDrainsInFlight: jobs accepted before Shutdown
// complete during the drain; submissions after Shutdown are refused.
func TestServiceShutdownDrainsInFlight(t *testing.T) {
	srv := New(Config{Shards: 1, WorkersPerShard: 1})
	srv.Start()
	reqs := determinismRequests()
	var jobs []*Job
	for _, req := range reqs {
		job, dedup, err := srv.Submit(req)
		if err != nil || dedup {
			t.Fatalf("submit: dedup=%v err=%v", dedup, err)
		}
		jobs = append(jobs, job)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, job := range jobs {
		if st := job.Status(); st != StatusDone {
			t.Errorf("job %d: status %s after drain, want done", i, st)
		}
	}
	if _, _, err := srv.Submit(reqs[0]); err != ErrShuttingDown {
		t.Errorf("submit after shutdown: err %v, want ErrShuttingDown", err)
	}

	// Shutdown is permanent: Start must not re-arm submissions onto the
	// closed shard queues.
	srv.Start()
	if _, _, err := srv.Submit(reqs[0]); err != ErrShuttingDown {
		t.Errorf("submit after shutdown+restart: err %v, want ErrShuttingDown", err)
	}
}

// TestServiceMetricsAndTargets sanity-checks the read-only endpoints.
func TestServiceMetricsAndTargets(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	cli := &Client{BaseURL: ts.URL}
	if err := cli.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	targets, err := cli.Targets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != len(apps.Targets()) {
		t.Errorf("targets = %d, want %d", len(targets), len(apps.Targets()))
	}

	if _, err := cli.Transfer(context.Background(), &Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, metric := range []string{
		"phaged_engine_runs_total 1",
		"phaged_compile_cache_misses_total",
		"phaged_shard_solver_queries_total{shard=\"0\"}",
		"phaged_shard_solver_queries_total{shard=\"1\"}",
		"phaged_solver_queries_total",
		"phaged_solver_memo_hits_total",
		"phaged_solver_memo_misses_total",
		"phaged_solver_memo_evictions_total",
		"phaged_solver_memo_entries",
		"phaged_solver_sat_calls_total",
		"phaged_solver_cnf_memo_hits_total",
		"phaged_interned_terms",
		"phaged_interned_simplify_hits_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(metric)) {
			t.Errorf("/metrics is missing %q", metric)
		}
	}
	// The transfer above ran real symbolic queries through the shared
	// service: its counters must be live, not zero placeholders.
	st := mustStats(t, buf.String())
	if st["phaged_solver_queries_total"] == 0 {
		t.Error("shared solver service observed no queries")
	}
	if st["phaged_interned_terms"] == 0 {
		t.Error("interner holds no terms after a transfer")
	}
}

// mustStats parses "name value" lines of the Prometheus payload.
func mustStats(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		var name string
		var val float64
		if n, _ := fmt.Sscanf(line, "%s %f", &name, &val); n == 2 {
			out[name] = val
		}
	}
	return out
}

// TestClientStream exercises the client's streaming decode against a
// live server.
func TestClientStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	cli := &Client{BaseURL: ts.URL}
	var seen []Status
	env, err := cli.Stream(context.Background(), &Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"},
		func(st Status) { seen = append(seen, st) })
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone || env.Report == nil {
		t.Fatalf("stream terminal: %s report nil=%v (%s)", env.Status, env.Report == nil, env.Error)
	}
	if len(seen) == 0 {
		t.Error("no status events observed before the terminal envelope")
	}
}
