package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"codephage/internal/telemetry"
)

// DefaultTimeout bounds every non-streaming client call end to end:
// a hung or half-dead daemon must surface as an error, never hang
// codephage -remote (or a cluster forward) forever. Transfers
// legitimately run for minutes, so the bound is generous; callers
// with tighter needs pass a context deadline or their own HTTP
// client. Streaming calls are exempt (they are long-lived by design)
// and rely on context cancellation instead.
var DefaultTimeout = 10 * time.Minute

// NodeHeader is the response header a cluster node sets when it
// forwarded the request to the ring owner: its value is the base URL
// of the node that actually ran the job, so clients can follow the
// forward for later job/trace lookups. Absent on locally-served
// responses.
const NodeHeader = "X-Phaged-Node"

// Client is a thin phaged API client, used by the codephage CLI's
// -remote mode, cluster-internal forwards, and tests. Every method
// takes a context so callers (and cluster forwards) can carry
// cancellation and deadlines.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTP overrides the transport for non-streaming calls
	// (nil = a shared client bounded by DefaultTimeout).
	HTTP *http.Client
	// StreamHTTP overrides the transport for streaming calls
	// (nil = a shared client with no overall deadline — an NDJSON
	// stream may legitimately stay open for a long transfer, so only
	// context cancellation ends it early).
	StreamHTTP *http.Client
}

// The two default clients share the process transport: one carries
// the overall deadline, the streaming one deliberately does not.
var (
	defaultClient       = &http.Client{Timeout: DefaultTimeout}
	defaultStreamClient = &http.Client{}
)

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if defaultClient.Timeout != DefaultTimeout {
		// DefaultTimeout is a var so tests can shrink it; honor the
		// current value without racing on the shared client.
		return &http.Client{Timeout: DefaultTimeout}
	}
	return defaultClient
}

func (c *Client) streamHTTP() *http.Client {
	if c.StreamHTTP != nil {
		return c.StreamHTTP
	}
	return defaultStreamClient
}

// For returns a client addressing another node of the same cluster,
// keeping any transport overrides. Use it with Envelope.Node to
// follow a forwarded job to the node that owns it.
func (c *Client) For(baseURL string) *Client {
	if baseURL == "" || baseURL == c.BaseURL {
		return c
	}
	return &Client{BaseURL: baseURL, HTTP: c.HTTP, StreamHTTP: c.StreamHTTP}
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// responseError renders a non-2xx response as an error, preferring the
// server's JSON error body over the bare status line.
func responseError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("phaged: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("phaged: %s", resp.Status)
}

func decodeBody[T any](resp *http.Response) (*T, error) {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, responseError(resp)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("phaged: decoding response: %w", err)
	}
	return &v, nil
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	return c.http().Do(req)
}

func (c *Client) post(ctx context.Context, path string, req *Request, stream bool) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if stream {
		return c.streamHTTP().Do(hreq)
	}
	return c.http().Do(hreq)
}

// decodeEnvelope decodes an envelope response and stamps the serving
// node from the forward header, so callers can follow cluster
// forwards for later job/trace lookups.
func decodeEnvelope(resp *http.Response) (*Envelope, error) {
	node := resp.Header.Get(NodeHeader)
	env, err := decodeBody[Envelope](resp)
	if err != nil {
		return nil, err
	}
	env.Node = node
	return env, nil
}

// Transfer submits a request and waits for the terminal envelope.
func (c *Client) Transfer(ctx context.Context, req *Request) (*Envelope, error) {
	resp, err := c.post(ctx, "/v1/transfer", req, false)
	if err != nil {
		return nil, err
	}
	return decodeEnvelope(resp)
}

// Submit enqueues a request and returns its envelope immediately.
func (c *Client) Submit(ctx context.Context, req *Request) (*Envelope, error) {
	resp, err := c.post(ctx, "/v1/transfer?async=1", req, false)
	if err != nil {
		return nil, err
	}
	return decodeEnvelope(resp)
}

// Stream submits a request and streams status transitions to onStatus
// (which may be nil), returning the terminal envelope. The call rides
// the no-deadline streaming client: cancel ctx to abandon the stream.
func (c *Client) Stream(ctx context.Context, req *Request, onStatus func(Status)) (*Envelope, error) {
	resp, err := c.post(ctx, "/v1/transfer?stream=1", req, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, responseError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var last []byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		last = append(last[:0], line...)
		if onStatus != nil {
			var ev struct {
				Status Status `json:"status"`
			}
			if json.Unmarshal(line, &ev) == nil && ev.Status != "" {
				onStatus(ev.Status)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(last) == 0 {
		return nil, fmt.Errorf("phaged: stream ended without a terminal envelope")
	}
	var env Envelope
	if err := json.Unmarshal(last, &env); err != nil {
		return nil, fmt.Errorf("phaged: decoding terminal envelope: %w", err)
	}
	// A truncated stream's last line is a status event, which decodes
	// into Envelope too — only a terminal status marks a complete stream.
	if !env.Status.Terminal() {
		return nil, fmt.Errorf("phaged: stream ended without a terminal envelope (last status %q)", env.Status)
	}
	env.Node = resp.Header.Get(NodeHeader)
	return &env, nil
}

// Job fetches the envelope of a previously submitted job.
func (c *Client) Job(ctx context.Context, id string) (*Envelope, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	return decodeEnvelope(resp)
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*Envelope, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		env, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if env.Status.Terminal() {
			return env, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Targets lists the daemon's transferable error catalogue.
func (c *Client) Targets(ctx context.Context) ([]TargetInfo, error) {
	resp, err := c.get(ctx, "/v1/targets")
	if err != nil {
		return nil, err
	}
	out, err := decodeBody[[]TargetInfo](resp)
	if err != nil {
		return nil, err
	}
	return *out, nil
}

// Corpus fetches the daemon's donor knowledge base (triggering the
// index build on first access).
func (c *Client) Corpus(ctx context.Context) (*CorpusInfo, error) {
	resp, err := c.get(ctx, "/corpus")
	if err != nil {
		return nil, err
	}
	return decodeBody[CorpusInfo](resp)
}

// Trace fetches a completed job's span tree.
func (c *Client) Trace(ctx context.Context, id string) (*telemetry.Span, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/trace")
	if err != nil {
		return nil, err
	}
	return decodeBody[telemetry.Span](resp)
}

// Metrics fetches the raw Prometheus-style exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", responseError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Ready probes the daemon's readiness endpoint, returning the
// component breakdown regardless of the response code (a 503 body is
// still a well-formed Readiness).
func (c *Client) Ready(ctx context.Context) (*Readiness, error) {
	resp, err := c.get(ctx, "/readyz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var r Readiness
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("phaged: decoding readiness: %w", err)
	}
	return &r, nil
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("phaged: health: %s", resp.Status)
	}
	return nil
}
