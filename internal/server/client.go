package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"codephage/internal/telemetry"
)

// Client is a thin phaged API client, used by the codephage CLI's
// -remote mode and by tests.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTP overrides the transport (nil = a client with no timeout;
	// transfers legitimately run for a while).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// responseError renders a non-2xx response as an error, preferring the
// server's JSON error body over the bare status line.
func responseError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("phaged: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("phaged: %s", resp.Status)
}

func decodeBody[T any](resp *http.Response) (*T, error) {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, responseError(resp)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("phaged: decoding response: %w", err)
	}
	return &v, nil
}

func (c *Client) post(path string, req *Request) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.http().Post(c.url(path), "application/json", bytes.NewReader(body))
}

// Transfer submits a request and waits for the terminal envelope.
func (c *Client) Transfer(req *Request) (*Envelope, error) {
	resp, err := c.post("/v1/transfer", req)
	if err != nil {
		return nil, err
	}
	return decodeBody[Envelope](resp)
}

// Submit enqueues a request and returns its envelope immediately.
func (c *Client) Submit(req *Request) (*Envelope, error) {
	resp, err := c.post("/v1/transfer?async=1", req)
	if err != nil {
		return nil, err
	}
	return decodeBody[Envelope](resp)
}

// Stream submits a request and streams status transitions to onStatus
// (which may be nil), returning the terminal envelope.
func (c *Client) Stream(req *Request, onStatus func(Status)) (*Envelope, error) {
	resp, err := c.post("/v1/transfer?stream=1", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, responseError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var last []byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		last = append(last[:0], line...)
		if onStatus != nil {
			var ev struct {
				Status Status `json:"status"`
			}
			if json.Unmarshal(line, &ev) == nil && ev.Status != "" {
				onStatus(ev.Status)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(last) == 0 {
		return nil, fmt.Errorf("phaged: stream ended without a terminal envelope")
	}
	var env Envelope
	if err := json.Unmarshal(last, &env); err != nil {
		return nil, fmt.Errorf("phaged: decoding terminal envelope: %w", err)
	}
	// A truncated stream's last line is a status event, which decodes
	// into Envelope too — only a terminal status marks a complete stream.
	if !env.Status.Terminal() {
		return nil, fmt.Errorf("phaged: stream ended without a terminal envelope (last status %q)", env.Status)
	}
	return &env, nil
}

// Job fetches the envelope of a previously submitted job.
func (c *Client) Job(id string) (*Envelope, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id))
	if err != nil {
		return nil, err
	}
	return decodeBody[Envelope](resp)
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(id string, interval time.Duration) (*Envelope, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		env, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		if env.Status.Terminal() {
			return env, nil
		}
		time.Sleep(interval)
	}
}

// Targets lists the daemon's transferable error catalogue.
func (c *Client) Targets() ([]TargetInfo, error) {
	resp, err := c.http().Get(c.url("/v1/targets"))
	if err != nil {
		return nil, err
	}
	out, err := decodeBody[[]TargetInfo](resp)
	if err != nil {
		return nil, err
	}
	return *out, nil
}

// Corpus fetches the daemon's donor knowledge base (triggering the
// index build on first access).
func (c *Client) Corpus() (*CorpusInfo, error) {
	resp, err := c.http().Get(c.url("/corpus"))
	if err != nil {
		return nil, err
	}
	return decodeBody[CorpusInfo](resp)
}

// Trace fetches a completed job's span tree.
func (c *Client) Trace(id string) (*telemetry.Span, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/trace"))
	if err != nil {
		return nil, err
	}
	return decodeBody[telemetry.Span](resp)
}

// Ready probes the daemon's readiness endpoint, returning the
// component breakdown regardless of the response code (a 503 body is
// still a well-formed Readiness).
func (c *Client) Ready() (*Readiness, error) {
	resp, err := c.http().Get(c.url("/readyz"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var r Readiness
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("phaged: decoding readiness: %w", err)
	}
	return &r, nil
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health() error {
	resp, err := c.http().Get(c.url("/healthz"))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("phaged: health: %s", resp.Status)
	}
	return nil
}
