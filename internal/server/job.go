package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"codephage/internal/phage"
	"codephage/internal/telemetry"
)

// Request is one transfer submission. Recipient, Target and Donor name
// entries of the apps catalogue, exactly like the codephage CLI flags.
// Donor "auto" requests automatic donor selection from the corpus
// index; the report then carries the resolved donor.
type Request struct {
	Recipient string `json:"recipient"`
	Target    string `json:"target"`
	Donor     string `json:"donor"`
	// Mode selects the patch reaction: "exit" (default) or "return0".
	Mode string `json:"mode,omitempty"`
	// MaxChecks bounds the candidate checks tried per round (0 = all).
	MaxChecks int `json:"max_checks,omitempty"`
	// MaxRounds bounds residual-error elimination (0 = engine default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// MaxSteps bounds each VM run (0 = VM default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// NoRescan disables the DIODE residual scan.
	NoRescan bool `json:"no_rescan,omitempty"`
	// Workers bounds candidate-validation fan-out for this job
	// (0 = the server divides GOMAXPROCS across its worker pool).
	Workers int `json:"workers,omitempty"`
}

func (r *Request) mode() string {
	if r.Mode == "" {
		return "exit"
	}
	return r.Mode
}

func (r *Request) validate() error {
	if r.Recipient == "" || r.Target == "" || r.Donor == "" {
		return fmt.Errorf("recipient, target and donor are required")
	}
	switch r.mode() {
	case "exit", "return0":
	default:
		return fmt.Errorf("unknown mode %q (want exit or return0)", r.Mode)
	}
	return nil
}

func (r *Request) options() (phage.Options, error) {
	opts := phage.Options{
		MaxChecks:          r.MaxChecks,
		MaxRounds:          r.MaxRounds,
		MaxSteps:           r.MaxSteps,
		DisableDiodeRescan: r.NoRescan,
		Workers:            r.Workers,
	}
	if r.mode() == "return0" {
		opts.ExitMode = phage.ReturnZero
	}
	return opts, nil
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// Job is one accepted transfer request and its (eventual) outcome.
type Job struct {
	ID  string
	Key string
	Req *Request

	queuedAt time.Time

	mu         sync.Mutex
	status     Status
	report     *Report
	trace      *telemetry.Span
	errMsg     string
	startedAt  time.Time
	finishedAt time.Time
	watchers   []chan Status
	done       chan struct{}
}

func newJob(id, key string, req *Request) *Job {
	return &Job{
		ID:       id,
		Key:      key,
		Req:      req,
		queuedAt: time.Now(),
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Watch subscribes to status transitions: the current status is
// delivered immediately, later transitions as they happen. The channel
// is closed after a terminal status is delivered.
func (j *Job) Watch() <-chan Status {
	ch := make(chan Status, 8)
	j.mu.Lock()
	ch <- j.status
	if j.status.Terminal() {
		close(ch)
	} else {
		j.watchers = append(j.watchers, ch)
	}
	j.mu.Unlock()
	return ch
}

func (j *Job) setStatus(st Status) {
	j.mu.Lock()
	j.status = st
	if st == StatusRunning {
		j.startedAt = time.Now()
	}
	if st.Terminal() {
		j.finishedAt = time.Now()
	}
	watchers := j.watchers
	if st.Terminal() {
		j.watchers = nil
	}
	for _, ch := range watchers {
		select {
		case ch <- st:
		default: // a stalled watcher never blocks the worker
		}
		if st.Terminal() {
			close(ch)
		}
	}
	j.mu.Unlock()
	if st.Terminal() {
		close(j.done)
	}
}

func (j *Job) finish(rep *Report, trace *telemetry.Span) {
	j.mu.Lock()
	j.report = rep
	j.trace = trace
	j.mu.Unlock()
	j.setStatus(StatusDone)
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.errMsg = err.Error()
	j.mu.Unlock()
	j.setStatus(StatusFailed)
}

// Report returns the job's deterministic report (nil until done).
func (j *Job) Report() *Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Trace returns the job's span tree (nil until done). The tree is an
// immutable snapshot copy: callers may render it without locking.
func (j *Job) Trace() *telemetry.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Err returns the failure message ("" unless status is failed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Envelope is the JSON wrapper around a job's state. Report is the
// deterministic payload; timing lives only here in the envelope, so
// report bytes are byte-identical across runs.
type Envelope struct {
	ID     string  `json:"id"`
	Key    string  `json:"key"`
	Status Status  `json:"status"`
	Dedup  bool    `json:"dedup,omitempty"`
	Error  string  `json:"error,omitempty"`
	Report *Report `json:"report,omitempty"`
	// QueueMs and RunMs are wall-clock milliseconds spent queued and
	// running (0 until the respective phase completes).
	QueueMs int64 `json:"queue_ms"`
	RunMs   int64 `json:"run_ms"`
	// Node is the base URL of the cluster node that actually served
	// the request, stamped client-side from the forward header. Empty
	// for locally-served (non-forwarded) responses. Never part of the
	// wire body: response bytes stay identical whether or not a
	// forward happened.
	Node string `json:"-"`
}

// Envelope snapshots the job as a response envelope.
func (j *Job) Envelope(dedup bool) *Envelope {
	j.mu.Lock()
	defer j.mu.Unlock()
	env := &Envelope{
		ID:     j.ID,
		Key:    j.Key,
		Status: j.status,
		Dedup:  dedup,
		Error:  j.errMsg,
		Report: j.report,
	}
	if !j.startedAt.IsZero() {
		env.QueueMs = nowMs(j.startedAt.Sub(j.queuedAt))
	}
	if !j.finishedAt.IsZero() {
		env.RunMs = nowMs(j.finishedAt.Sub(j.startedAt))
	}
	return env
}

// counters aggregates the server's atomic activity counters.
type counters struct {
	requests      atomic.Int64
	accepted      atomic.Int64
	rejected      atomic.Int64
	dedupHits     atomic.Int64
	engineRuns    atomic.Int64
	autoTransfers atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	// encodeFailures counts JSON response bodies the server could not
	// fully write (typically a client that hung up mid-response).
	encodeFailures atomic.Int64
	// patchPuts counts fresh artifact registrations; patchFetches
	// counts GET /patches/{key} hits.
	patchPuts    atomic.Int64
	patchFetches atomic.Int64
}
