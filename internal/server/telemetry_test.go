package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"codephage/internal/telemetry"
)

// documentedMetrics is the golden list of every metric family phaged
// exports on /metrics. The exposition test below asserts each one
// appears, and that README.md documents each one — adding a metric
// means extending this list and the README table together.
var documentedMetrics = []string{
	"phaged_requests_total",
	"phaged_jobs_accepted_total",
	"phaged_jobs_rejected_total",
	"phaged_dedup_hits_total",
	"phaged_engine_runs_total",
	"phaged_jobs_completed_total",
	"phaged_jobs_failed_total",
	"phaged_response_encode_failures_total",
	"phaged_patch_artifacts",
	"phaged_patch_store_puts_total",
	"phaged_patch_fetches_total",
	"phaged_jobs_queued",
	"phaged_cluster_peers",
	"phaged_cluster_draining",
	"phaged_cluster_forwards_total",
	"phaged_cluster_forward_failures_total",
	"phaged_cluster_steals_total",
	"phaged_cluster_handoffs_total",
	"phaged_cluster_artifact_pulls_total",
	"phaged_compile_cache_hits_total",
	"phaged_compile_cache_misses_total",
	"phaged_compile_cache_evictions_total",
	"phaged_compile_cache_entries",
	"phaged_auto_transfers_total",
	"phaged_corpus_built",
	"phaged_corpus_entries",
	"phaged_corpus_signatures_rebuilt",
	"phaged_corpus_selections_total",
	"phaged_corpus_candidates_total",
	"phaged_corpus_survivors_total",
	"phaged_corpus_prefilter_queries_total",
	"phaged_corpus_prefilter_candidates_total",
	"phaged_corpus_prefilter_skipped_total",
	"phaged_corpus_prefilter_fallbacks_total",
	"phaged_solver_sessions_total",
	"phaged_solver_queries_total",
	"phaged_solver_memo_hits_total",
	"phaged_solver_memo_misses_total",
	"phaged_solver_memo_evictions_total",
	"phaged_solver_memo_entries",
	"phaged_solver_sat_calls_total",
	"phaged_solver_sat_time_seconds",
	"phaged_solver_cnf_memo_hits_total",
	"phaged_solver_cnf_memo_misses_total",
	"phaged_solver_core_resets_total",
	"phaged_solver_core_vars",
	"phaged_solver_core_clauses",
	"phaged_solver_sat_conflicts_total",
	"phaged_solver_sat_decisions_total",
	"phaged_solver_sat_propagations_total",
	"phaged_solver_sat_restarts_total",
	"phaged_solver_portfolio_races_total",
	"phaged_solver_portfolio_wins_total",
	"phaged_solver_portfolio_losses_total",
	"phaged_solver_imported_clauses_total",
	"phaged_solver_memo_loaded_entries",
	"phaged_solver_memo_loaded_hits_total",
	"phaged_solver_memo_snapshot_saves_total",
	"phaged_interned_terms",
	"phaged_interned_hits_total",
	"phaged_interned_misses_total",
	"phaged_interned_overflow_total",
	"phaged_interned_simplify_hits_total",
	"phaged_interned_simplify_misses_total",
	// Labeled families.
	"phaged_shard_solver_queries_total",
	"phaged_shard_solver_cache_hits_total",
	"phaged_shard_solver_sat_calls_total",
	"phaged_shard_baseline_cache_entries",
	"phaged_shard_proof_cache_entries",
	"phaged_stage_duration_seconds",
	"phaged_solver_query_duration_seconds",
}

// metricLine matches one Prometheus text-exposition sample:
// `name value` or `name{labels} value`.
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	return string(body)
}

// TestMetricsExposition is the /metrics contract: every line parses as
// a sample, no sample is emitted twice, every documented metric
// appears, the per-stage latency histograms cover all seven pipeline
// stages after a batch that includes an auto-donor transfer, and the
// README documents every exported family.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Three explicit-donor transfers plus one auto-donor transfer: the
	// Select stage only runs (and is only observed) when the corpus
	// resolves the donor.
	reqs := []*Request{
		{Recipient: "jasper", Target: "jpc_dec.c@492", Donor: "openjpeg"},
		{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"},
		{Recipient: "wireshark14", Target: "packet-dcp-etsi.c@258", Donor: "wireshark18"},
		{Recipient: "dillo", Target: "png.c@203", Donor: "auto"},
	}
	for _, req := range reqs {
		env := postTransfer(t, ts.URL, req, "")
		if env.Status != StatusDone {
			t.Fatalf("%s/%s <- %s: %s (%s)", req.Recipient, req.Target, req.Donor, env.Status, env.Error)
		}
	}

	metrics := fetchMetrics(t, ts.URL)
	seen := map[string]bool{}
	families := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable /metrics line: %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Errorf("%s: value %q is not a number", m[1], m[3])
		}
		sample := m[1] + m[2]
		if seen[sample] {
			t.Errorf("duplicate sample %q", sample)
		}
		seen[sample] = true
		name := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		families[name] = true
	}
	for _, want := range documentedMetrics {
		if !families[want] {
			t.Errorf("/metrics lacks documented metric %s", want)
		}
	}
	for fam := range families {
		if !documented(fam) {
			t.Errorf("undocumented metric %s on /metrics — add it to documentedMetrics and the README table", fam)
		}
	}

	// All seven pipeline stages must have histogram observations.
	for _, stage := range telemetry.Stages {
		count := fmt.Sprintf("phaged_stage_duration_seconds_count{stage=%q}", stage)
		if !seen[count] {
			t.Errorf("/metrics lacks %s", count)
			continue
		}
		re := regexp.MustCompile(regexp.QuoteMeta(count) + ` (\d+)`)
		m := re.FindStringSubmatch(metrics)
		if m == nil || m[1] == "0" {
			t.Errorf("stage %s recorded no observations: %v", stage, m)
		}
	}
	// The solver query-class histograms see the batch's query traffic.
	if !strings.Contains(metrics, `phaged_solver_query_duration_seconds_count{class=`) {
		t.Error("/metrics lacks solver query-class histograms")
	}

	// The README's observability section must document every family.
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range documentedMetrics {
		if !bytes.Contains(readme, []byte(want)) {
			t.Errorf("README.md does not document %s", want)
		}
	}
}

func documented(family string) bool {
	for _, d := range documentedMetrics {
		if d == family {
			return true
		}
	}
	return false
}

// TestReadyzLifecycle pins the readiness contract: 503 with the
// component breakdown before Start, 200 with every component true
// after — and probing builds the corpus index as a side effect.
func TestReadyzLifecycle(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli := &Client{BaseURL: ts.URL}

	r, err := cli.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ready || r.Accepting {
		t.Fatalf("server reports ready before Start: %+v", r)
	}
	if !r.MemoReady {
		t.Errorf("memo not ready after construction: %+v", r)
	}
	if !r.CorpusReady {
		t.Errorf("readiness probe did not build the corpus index: %+v", r)
	}

	// The raw status code must be 503 while not ready.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before Start: %s, want 503", resp.Status)
	}

	srv.Start()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Error(err)
		}
	}()
	r, err = cli.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ready || !r.Accepting || !r.CorpusReady || !r.MemoReady {
		t.Fatalf("server not ready after Start: %+v", r)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after Start: %s, want 200", resp.Status)
	}

	if err := cli.Health(context.Background()); err != nil {
		t.Errorf("healthz: %v", err)
	}
}

// TestJobTraceEndpoint: every job the daemon runs has a retrievable
// span tree on /v1/jobs/{id}/trace, rooted at Transfer with the
// pipeline stages as children; unknown jobs 404.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cli := &Client{BaseURL: ts.URL}

	env, err := cli.Transfer(context.Background(), &Request{Recipient: "gif2tiff", Target: "gif2tiff.c@355", Donor: "magick9"})
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone {
		t.Fatalf("transfer: %s (%s)", env.Status, env.Error)
	}
	sp, err := cli.Trace(context.Background(), env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "Transfer" {
		t.Fatalf("trace root %q, want Transfer", sp.Name)
	}
	structure := sp.Structure()
	for _, stage := range []string{"Discover", "AnalyzePoints", "Translate", "Insert", "Validate", "Rescan"} {
		if !strings.Contains(structure, stage) {
			t.Errorf("trace lacks stage %s:\n%s", stage, structure)
		}
	}
	// The report surface must not embed the trace: the envelope's
	// report bytes carry no trace field.
	if env.Report == nil {
		t.Fatal("no report on the envelope")
	}
	repBytes, err := json.Marshal(env.Report)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(repBytes, []byte(`"trace"`)) {
		t.Error("report embeds the trace — it must live beside the report, not inside it")
	}

	if _, err := cli.Trace(context.Background(), "job-999999"); err == nil {
		t.Error("trace of an unknown job did not fail")
	}
}

// TestStreamEmitsTraceRecord: the NDJSON stream carries a trace record
// immediately before the terminal envelope, and the Client.Stream
// helper (which keeps only the final line) still returns the envelope.
func TestStreamEmitsTraceRecord(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &Request{Recipient: "jasper", Target: "jpc_dec.c@492", Donor: "openjpeg"}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/transfer?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var lines [][]byte
	for sc.Scan() {
		if line := bytes.TrimSpace(sc.Bytes()); len(line) > 0 {
			lines = append(lines, append([]byte(nil), line...))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want at least a trace record and the envelope", len(lines))
	}
	var traceRec struct {
		ID    string          `json:"id"`
		Trace *telemetry.Span `json:"trace"`
	}
	if err := json.Unmarshal(lines[len(lines)-2], &traceRec); err != nil {
		t.Fatalf("decoding trace record: %v", err)
	}
	if traceRec.Trace == nil || traceRec.Trace.Name != "Transfer" {
		t.Fatalf("penultimate stream line is not a trace record: %s", lines[len(lines)-2])
	}
	var env Envelope
	if err := json.Unmarshal(lines[len(lines)-1], &env); err != nil {
		t.Fatal(err)
	}
	if !env.Status.Terminal() {
		t.Fatalf("final stream line is not a terminal envelope: %s", lines[len(lines)-1])
	}

	// The client helper still lands on the envelope (dedup path).
	cli := &Client{BaseURL: ts.URL}
	env2, err := cli.Stream(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env2.Status != StatusDone {
		t.Fatalf("client stream: %s (%s)", env2.Status, env2.Error)
	}
}
