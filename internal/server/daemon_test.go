package server

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestMemoSaverStopJoinsInFlightSave pins the shutdown-ordering fix:
// stop() must not return while a ticker-triggered SaveMemo is still
// running, because the drain path writes the daemon's final snapshot
// immediately after and a straggling ticker save would overwrite it
// with stale warm state. The test holds a save in flight via the
// server's test hook and asserts stop() blocks until it completes.
func TestMemoSaverStopJoinsInFlightSave(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{
		MemoPath:         filepath.Join(dir, "memo.snap"),
		MemoSaveInterval: 5 * time.Millisecond,
	})
	srv.Start()
	defer shutdown(t, srv)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	srv.memoSaveHook = func() {
		// Hold exactly one save open; later ticks run unimpeded.
		if !once {
			once = true
			close(entered)
			<-release
		}
	}

	stop := startMemoSaver(srv, t.Logf)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("ticker save never started")
	}

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("stop() returned while a save was still in flight")
	case <-time.After(50 * time.Millisecond):
		// Still joined on the in-flight save: the fix is holding.
	}
	close(release)
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() did not return after the in-flight save finished")
	}

	// After stop returns, no further ticker save may fire: remove the
	// snapshot and verify several intervals pass without it reappearing.
	if err := os.Remove(srv.cfg.MemoPath); err != nil {
		t.Fatalf("removing snapshot: %v", err)
	}
	time.Sleep(20 * srv.cfg.memoSaveInterval())
	if _, err := os.Stat(srv.cfg.MemoPath); !os.IsNotExist(err) {
		t.Fatalf("snapshot recreated after stop (stat err=%v)", err)
	}
}

// TestMemoSaverDisabled verifies that the saver is a no-op both when
// no memo path is configured and when the interval is explicitly off.
func TestMemoSaverDisabled(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{MemoPath: filepath.Join(t.TempDir(), "memo.snap"), MemoSaveInterval: MemoIntervalOff},
	} {
		srv := New(cfg)
		srv.Start()
		stop := startMemoSaver(srv, t.Logf)
		stop()
		stop() // idempotent
		if cfg.MemoPath != "" {
			if _, err := os.Stat(cfg.MemoPath); !os.IsNotExist(err) {
				t.Fatalf("disabled saver wrote a snapshot (stat err=%v)", err)
			}
		}
		shutdown(t, srv)
	}
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestParseMemoInterval(t *testing.T) {
	cases := []struct {
		in      string
		want    time.Duration
		wantErr bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{" 0 ", 0, false},
		{"off", MemoIntervalOff, false},
		{"OFF", MemoIntervalOff, false},
		{"-10s", MemoIntervalOff, false},
		{"5m", 5 * time.Minute, false},
		{"750ms", 750 * time.Millisecond, false},
		{"never", 0, true},
		{"5", 0, true}, // bare numbers other than 0 are ambiguous
	}
	for _, c := range cases {
		got, err := ParseMemoInterval(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMemoInterval(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMemoInterval(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMemoInterval(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
