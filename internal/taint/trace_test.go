package taint

import (
	"testing"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/vm"
)

// mvxTrace mirrors the `mvx -trace` path exactly: a raw-label tracker
// (no dissection, no relevance filter) attached to a plain VM run.
func mvxTrace(t *testing.T, src string, input []byte) (*Tracker, *vm.Result) {
	t.Helper()
	mod, err := compile.CompileSource("trace-test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr := NewTracker(mod, Options{})
	v := vm.New(mod, input)
	v.Tracer = tr
	return tr, v.Run()
}

// TestTraceReporting is the table-driven coverage for the tainted
// branch and tainted allocation reports the mvx -trace path prints.
func TestTraceReporting(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		input []byte
		// wantBranches counts reported (tainted) branches;
		// wantAllocs counts all allocation records;
		// wantTaintedAllocs counts records with a symbolic size.
		wantBranches      int
		wantAllocs        int
		wantTaintedAllocs int
		check             func(t *testing.T, tr *Tracker)
	}{
		{
			name: "tainted branch and alloc",
			src: `
void main() {
	u32 n = (u32)in_u8();
	if (n > 3) {
		u8* p = alloc(n * 2);
		if (p == 0) { exit(1); }
		out(1);
	}
	exit(0);
}
`,
			input:             []byte{10},
			wantBranches:      1,
			wantAllocs:        1,
			wantTaintedAllocs: 1,
			check: func(t *testing.T, tr *Tracker) {
				b := tr.Branches()[0]
				if !b.Taken {
					t.Error("n > 3 must be taken for n = 10")
				}
				a := tr.Allocs()[0]
				if a.Size != 20 {
					t.Errorf("alloc size = %d, want 20", a.Size)
				}
				env := bitvec.MapEnv{Fields: hachoir.Raw([]byte{10}).FieldValues([]byte{10})}
				v, err := bitvec.Eval(a.SizeExpr, env)
				if err != nil {
					t.Fatal(err)
				}
				if v != a.Size {
					t.Errorf("symbolic size %d != concrete %d", v, a.Size)
				}
			},
		},
		{
			name: "untainted branch unreported, untainted alloc kept",
			src: `
void main() {
	u32 n = (u32)in_u8();
	u32 k = 7;
	if (k > 3) { out(1); }
	u8* p = alloc(16);
	if (p == 0) { exit(1); }
	out(n);
	exit(0);
}
`,
			input:             []byte{1},
			wantBranches:      0,
			wantAllocs:        1,
			wantTaintedAllocs: 0,
			check: func(t *testing.T, tr *Tracker) {
				if tr.Allocs()[0].SizeExpr != nil {
					t.Error("constant-size alloc must have nil SizeExpr")
				}
			},
		},
		{
			name: "branch direction not-taken",
			src: `
void main() {
	u32 n = (u32)in_u8();
	if (n > 200) { out(1); }
	exit(0);
}
`,
			input:        []byte{7},
			wantBranches: 1,
			check: func(t *testing.T, tr *Tracker) {
				if tr.Branches()[0].Taken {
					t.Error("n > 200 must not be taken for n = 7")
				}
			},
		},
		{
			name: "loop reports one record per evaluation",
			src: `
void main() {
	u32 n = (u32)in_u8();
	u32 i = 0;
	while (i < n) {
		i = i + 1;
	}
	out(i);
	exit(0);
}
`,
			input:        []byte{3},
			wantBranches: 4, // 3 taken evaluations + the final exit test
			check: func(t *testing.T, tr *Tracker) {
				br := tr.Branches()
				for i, b := range br {
					want := i < 3
					if b.Taken != want {
						t.Errorf("iteration %d: taken = %v, want %v", i, b.Taken, want)
					}
					if i > 0 && br[i].Seq <= br[i-1].Seq {
						t.Error("branch records out of execution order")
					}
				}
			},
		},
		{
			name: "taint overwritten before alloc",
			src: `
void main() {
	u32 n = (u32)in_u8();
	n = 8;
	u8* p = alloc(n);
	if (p == 0) { exit(1); }
	out(1);
	exit(0);
}
`,
			input:             []byte{200},
			wantBranches:      0,
			wantAllocs:        1,
			wantTaintedAllocs: 0,
		},
		{
			name: "two allocation sites in order",
			src: `
void main() {
	u32 a = (u32)in_u8();
	u32 b = (u32)in_u8();
	u8* p = alloc(a + 1);
	if (p == 0) { exit(1); }
	u8* q = alloc(b * 3);
	if (q == 0) { exit(1); }
	out(2);
	exit(0);
}
`,
			input:             []byte{4, 5},
			wantAllocs:        2,
			wantTaintedAllocs: 2,
			check: func(t *testing.T, tr *Tracker) {
				al := tr.Allocs()
				if al[0].Size != 5 || al[1].Size != 15 {
					t.Errorf("alloc sizes = %d, %d, want 5, 15", al[0].Size, al[1].Size)
				}
				if al[0].Seq >= al[1].Seq {
					t.Error("allocation records out of execution order")
				}
				d0, d1 := al[0].SizeExpr.ByteDeps(), al[1].SizeExpr.ByteDeps()
				if len(d0) != 1 || d0[0] != 0 {
					t.Errorf("first alloc deps = %v, want [0]", d0)
				}
				if len(d1) != 1 || d1[0] != 1 {
					t.Errorf("second alloc deps = %v, want [1]", d1)
				}
			},
		},
		{
			name: "failed allocation records zero address",
			src: `
void main() {
	u32 n = in_u32be();
	u8* p = alloc(n);
	if (p == 0) { exit(3); }
	out(1);
	exit(0);
}
`,
			input:             []byte{0xFF, 0xFF, 0xFF, 0xFF},
			wantBranches:      0, // alloc's result is untainted, so p == 0 is not reported
			wantAllocs:        1,
			wantTaintedAllocs: 1,
			check: func(t *testing.T, tr *Tracker) {
				if tr.Allocs()[0].Addr != 0 {
					t.Errorf("failed alloc addr = %#x, want 0", tr.Allocs()[0].Addr)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, r := mvxTrace(t, tc.src, tc.input)
			if !r.OK() {
				t.Fatalf("trap: %v", r.Trap)
			}
			if got := len(tr.Branches()); got != tc.wantBranches {
				t.Errorf("branches = %d, want %d", got, tc.wantBranches)
			}
			if got := len(tr.Allocs()); got != tc.wantAllocs {
				t.Errorf("allocs = %d, want %d", got, tc.wantAllocs)
			}
			tainted := 0
			for _, a := range tr.Allocs() {
				if a.SizeExpr != nil {
					tainted++
				}
			}
			if tainted != tc.wantTaintedAllocs {
				t.Errorf("tainted allocs = %d, want %d", tainted, tc.wantTaintedAllocs)
			}
			if tc.check != nil {
				tc.check(t, tr)
			}
		})
	}
}
