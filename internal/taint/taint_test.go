package taint

import (
	"testing"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/vm"
)

// traceRun compiles src and executes it with a tracker attached.
func traceRun(t *testing.T, src string, input []byte, opts Options) (*Tracker, *vm.Result) {
	t.Helper()
	mod, err := compile.CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr := NewTracker(mod, opts)
	v := vm.New(mod, input)
	v.Tracer = tr
	return tr, v.Run()
}

func mjpgInput(w, h uint16) []byte {
	img := hachoir.MJPG{Version: 1, Height: h, Width: w, Components: 3,
		HSamp: 1, VSamp: 1, Data: []byte{1, 2, 3}}
	return img.Encode()
}

func TestBranchRecording(t *testing.T) {
	src := `
void main() {
	in_seek(8);
	u32 w = (u32)in_u16be();
	if (w > 100) {
		out(1);
	} else {
		out(0);
	}
	if (in_len() > 0) { out(2); } /* untainted condition: not recorded */
}
`
	input := mjpgInput(500, 300)
	dis, err := hachoir.ByName("mjpg")
	if err2 := error(nil); err2 != nil {
		t.Fatal(err2)
	}
	_ = err
	d, derr := dis.Dissect(input)
	if derr != nil {
		t.Fatal(derr)
	}
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	br := tr.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d, want 1 (only the tainted one)", len(br))
	}
	if !br[0].Taken {
		t.Error("w > 100 must be taken for w = 500")
	}
	// The condition must reference the width field.
	fields := br[0].Cond.Fields()
	if len(fields) != 1 || fields[0] != "/start_frame/content/width" {
		t.Errorf("condition fields = %v", fields)
	}
	// Evaluating the condition under the field environment must agree
	// with the concrete direction.
	env := bitvec.MapEnv{Fields: d.FieldValues(input)}
	v, everr := bitvec.Eval(br[0].Cond, env)
	if everr != nil {
		t.Fatal(everr)
	}
	if (v != 0) != br[0].Taken {
		t.Error("symbolic condition disagrees with concrete direction")
	}
}

func TestBigEndianReadCollapsesToField(t *testing.T) {
	// in_u16be reading a big-endian dissected field must produce the
	// bare field expression after the Figure 5 rules.
	src := `
u32 g = 0;
void main() {
	in_seek(8);
	g = (u32)in_u16be();
	if (g > 0) { out(g); }
}
`
	input := mjpgInput(1234, 777)
	dis, _ := hachoir.ByName("mjpg")
	d, _ := dis.Dissect(input)
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	br := tr.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d, want 1", len(br))
	}
	cond := br[0].Cond
	// Expect ULess(0, ZExt32(field)) or similar with a bare HachField.
	found := false
	cond.Walk(func(n *bitvec.Expr) {
		if n.Op == bitvec.OpField && n.Name == "/start_frame/content/width" && n.W == 16 {
			found = true
		}
	})
	if !found {
		t.Errorf("condition does not contain the bare width field: %s", cond)
	}
	if cond.OpCount() > 4 {
		t.Errorf("condition not collapsed, %d ops: %s", cond.OpCount(), cond)
	}
}

func TestManualByteCombineCollapses(t *testing.T) {
	// An application that reads bytes individually and reassembles the
	// big-endian value with shifts and ors — the FEH pattern — must
	// still collapse to the field.
	src := `
void main() {
	in_seek(8);
	u32 hi = (u32)in_u8();
	u32 lo = (u32)in_u8();
	u32 w = (hi << 8) | lo;
	if (w > 100) { out(w); }
}
`
	input := mjpgInput(999, 5)
	dis, _ := hachoir.ByName("mjpg")
	d, _ := dis.Dissect(input)
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 1 {
		t.Fatalf("branches = %d, want 1", len(tr.Branches()))
	}
	cond := tr.Branches()[0].Cond
	if cond.OpCount() > 4 {
		t.Errorf("manual reassembly did not collapse (%d ops): %s", cond.OpCount(), cond)
	}
}

func TestShadowThroughMemoryAndStructs(t *testing.T) {
	// Taint must survive stores into struct fields, loads back, and
	// passes through function calls.
	src := `
struct Img { u32 w; u32 h; };
u32 check(Img* im) {
	if (im->w * im->h > 1000) {
		return 0;
	}
	return 1;
}
void main() {
	Img im;
	in_seek(8);
	im.w = (u32)in_u16be();
	in_seek(6);
	im.h = (u32)in_u16be();
	if (!check(&im)) { exit(1); }
	out(im.w);
}
`
	input := mjpgInput(40, 50) // 40*50 = 2000 > 1000
	dis, _ := hachoir.ByName("mjpg")
	d, _ := dis.Dissect(input)
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if r.ExitCode != 1 {
		t.Fatalf("exit = %d, want 1", r.ExitCode)
	}
	var mulBranch *BranchRecord
	for i := range tr.Branches() {
		b := &tr.Branches()[i]
		if len(b.Cond.Fields()) == 2 {
			mulBranch = b
		}
	}
	if mulBranch == nil {
		t.Fatalf("no branch depending on both fields; branches: %d", len(tr.Branches()))
	}
	env := bitvec.MapEnv{Fields: d.FieldValues(input)}
	v, err := bitvec.Eval(mulBranch.Cond, env)
	if err != nil {
		t.Fatal(err)
	}
	if (v != 0) != mulBranch.Taken {
		t.Error("symbolic multiply condition disagrees with direction")
	}
}

func TestAllocRecording(t *testing.T) {
	src := `
void main() {
	in_seek(8);
	u32 w = (u32)in_u16be();
	in_seek(6);
	u32 h = (u32)in_u16be();
	u8* p = alloc(w * h * 4);
	if (p == 0) { exit(2); }
	out(1);
}
`
	input := mjpgInput(100, 50)
	dis, _ := hachoir.ByName("mjpg")
	d, _ := dis.Dissect(input)
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	al := tr.Allocs()
	if len(al) != 1 {
		t.Fatalf("allocs = %d, want 1", len(al))
	}
	if al[0].Size != 100*50*4 {
		t.Errorf("alloc size = %d, want 20000", al[0].Size)
	}
	if al[0].SizeExpr == nil {
		t.Fatal("alloc size expression is nil")
	}
	fs := al[0].SizeExpr.Fields()
	if len(fs) != 2 {
		t.Errorf("size expr fields = %v, want width and height", fs)
	}
	env := bitvec.MapEnv{Fields: d.FieldValues(input)}
	v, err := bitvec.Eval(al[0].SizeExpr, env)
	if err != nil {
		t.Fatal(err)
	}
	if v != al[0].Size {
		t.Errorf("symbolic size = %d, concrete = %d", v, al[0].Size)
	}
}

func TestRelevantByteFiltering(t *testing.T) {
	src := `
void main() {
	u32 v = (u32)in_u8();       /* offset 0 */
	u32 w = (u32)in_u8();       /* offset 1 */
	if (v > 1) { out(1); }
	if (w > 1) { out(2); }
}
`
	// Only offset 1 is relevant.
	tr, r := traceRun(t, src, []byte{9, 9}, Options{Relevant: map[int]bool{1: true}})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 1 {
		t.Fatalf("branches = %d, want 1 after relevant-byte filtering", len(tr.Branches()))
	}
	deps := tr.Branches()[0].Cond.ByteDeps()
	if len(deps) != 1 || deps[0] != 1 {
		t.Errorf("branch deps = %v, want [1]", deps)
	}
}

func TestLittleEndianRead(t *testing.T) {
	src := `
void main() {
	in_seek(4);
	u32 w = (u32)in_u16le();
	if (w == 0x2211) { out(1); }
}
`
	input := append([]byte("MGIF"), 0x11, 0x22, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	dis, _ := hachoir.ByName("mgif")
	d, derr := dis.Dissect(input)
	if derr != nil {
		t.Fatal(derr)
	}
	tr, r := traceRun(t, src, input, Options{Labels: d})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(r.Output) != 1 || r.Output[0] != 1 {
		t.Fatalf("output = %v", r.Output)
	}
	br := tr.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d", len(br))
	}
	// LE read of an LE field collapses to the bare field.
	found := false
	br[0].Cond.Walk(func(n *bitvec.Expr) {
		if n.Op == bitvec.OpField && n.Name == "/screen/width" {
			found = true
		}
	})
	if !found {
		t.Errorf("cond = %s, want bare /screen/width", br[0].Cond)
	}
}

func TestRawModeLabels(t *testing.T) {
	src := `
void main() {
	u32 a = (u32)in_u8();
	if (a > 5) { out(1); }
}
`
	tr, r := traceRun(t, src, []byte{10}, Options{}) // nil labels = raw
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	br := tr.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d", len(br))
	}
	fs := br[0].Cond.Fields()
	if len(fs) != 1 || fs[0] != "@0" {
		t.Errorf("fields = %v, want [@0]", fs)
	}
}

func TestTaintClearedByConstantStore(t *testing.T) {
	src := `
u32 g = 0;
void main() {
	g = (u32)in_u8();
	g = 7; /* overwrite kills taint */
	if (g > 5) { out(1); }
}
`
	tr, r := traceRun(t, src, []byte{200}, Options{})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 0 {
		t.Fatalf("branches = %d, want 0 (taint overwritten)", len(tr.Branches()))
	}
}

func TestPartialFieldLoad(t *testing.T) {
	// Store a tainted 32-bit value, load one byte of it: the shadow
	// must be the matching extract.
	src := `
u32 g = 0;
void main() {
	g = in_u32be();
	u8* p = (u8*)&g;
	u8 b = p[0]; /* lowest byte (LE memory) = least significant */
	if (b > 5) { out(1); }
}
`
	tr, r := traceRun(t, src, []byte{1, 2, 3, 10}, Options{})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	br := tr.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d, want 1", len(br))
	}
	deps := br[0].Cond.ByteDeps()
	if len(deps) != 1 || deps[0] != 3 {
		t.Errorf("deps = %v, want [3] (last input byte is the LSB of a BE read)", deps)
	}
}

func TestShortCircuitBranchesRecorded(t *testing.T) {
	src := `
void main() {
	u32 a = (u32)in_u8();
	u32 b = (u32)in_u8();
	if (a > 1 && b > 2) { out(1); }
}
`
	tr, r := traceRun(t, src, []byte{5, 5}, Options{})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	// Two tainted branch evaluations: the && operand branch and the if.
	if len(tr.Branches()) < 2 {
		t.Fatalf("branches = %d, want >= 2 (short-circuit exposes both)", len(tr.Branches()))
	}
}

func TestReturnValueCarriesTaint(t *testing.T) {
	src := `
u32 readw() { return (u32)in_u16be(); }
void main() {
	u32 w = readw();
	if (w > 10) { out(1); }
}
`
	tr, r := traceRun(t, src, []byte{0x01, 0x00}, Options{})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 1 {
		t.Fatalf("branches = %d, want 1 (taint through return)", len(tr.Branches()))
	}
}

func TestArgumentCarriesTaint(t *testing.T) {
	src := `
void checkw(u32 w) {
	if (w > 10) { out(1); }
}
void main() {
	checkw((u32)in_u16be());
}
`
	tr, r := traceRun(t, src, []byte{0x01, 0x00}, Options{})
	if !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 1 {
		t.Fatalf("branches = %d, want 1 (taint through argument)", len(tr.Branches()))
	}
}
