// Package taint implements the fine-grained dynamic taint and symbolic
// expression tracking of Code Phage's execution monitor (paper §3.2).
// It mirrors VM execution through the vm.Tracer interface: every input
// byte receives a unique label at its in_* read, shadow registers and
// shadow memory carry symbolic bitvector expressions describing how
// each value was computed from input bytes and constants, and the
// tracker records conditional branch directions with their symbolic
// conditions and allocation sites with their symbolic sizes.
package taint

import (
	"codephage/internal/bitvec"
	"codephage/internal/ir"
	"codephage/internal/vm"
)

// ByteLabeler supplies the symbolic expression for one input byte —
// typically a hachoir.Dissection; nil means raw mode.
type ByteLabeler interface {
	ByteExpr(off int) *bitvec.Expr
}

// BranchRecord is one executed conditional branch whose condition was
// influenced by (relevant) input bytes.
type BranchRecord struct {
	Fn    int32
	PC    int32
	Line  int32
	Seq   int          // execution order across the whole run
	Taken bool         // direction
	Cond  *bitvec.Expr // width-1 symbolic condition (nonzero = taken)
	Raw   *bitvec.Expr // condition before the Figure 5 rewrite rules
}

// Site identifies a static branch/allocation site.
type Site struct {
	Fn int32
	PC int32
}

// SiteOf returns the record's static site.
func (b *BranchRecord) SiteOf() Site { return Site{b.Fn, b.PC} }

// AllocRecord is one executed allocation site with its symbolic size.
type AllocRecord struct {
	Fn       int32
	PC       int32
	Line     int32
	Seq      int
	Size     uint64       // concrete requested size
	SizeExpr *bitvec.Expr // symbolic size (nil if untainted)
	Addr     uint64       // returned address (0 = failed)
}

// shadow is a symbolic expression with a cached node count, so the
// tracker can bound shadow growth on adversarial computations.
type shadow struct {
	e *bitvec.Expr
	n int
}

// memCell shadows one memory byte: byte idx (little-endian position)
// of expression e.
type memCell struct {
	e   *bitvec.Expr
	n   int
	idx uint8
}

type shadowFrame struct {
	regs   []shadow
	retDst ir.Reg
}

// Options configures a Tracker.
type Options struct {
	// Labels supplies input byte labels (nil = raw mode labels).
	Labels ByteLabeler
	// Relevant restricts branch/alloc recording to expressions that
	// depend on at least one of these input byte offsets (nil = all).
	Relevant map[int]bool
	// MaxShadowNodes drops taint on expressions growing beyond this
	// node count (0 = default 50000).
	MaxShadowNodes int
	// NoSimplify disables the Figure 5 rewrite rules on recorded
	// branch conditions and allocation sizes (the rewrite-rule
	// ablation); simplification is on by default.
	NoSimplify bool
}

// Tracker mirrors a VM execution, maintaining shadow state. It
// implements vm.Tracer.
type Tracker struct {
	mod  *ir.Module
	opts Options

	frames []shadowFrame
	mem    map[uint64]memCell

	branches []BranchRecord
	allocs   []AllocRecord
	seq      int

	// OnStep, if set, runs after the tracker has applied an event's
	// shadow effects. The phage insertion-point analysis hooks here.
	OnStep func(ev *vm.Event)
}

// NewTracker returns a Tracker for the module.
func NewTracker(mod *ir.Module, opts Options) *Tracker {
	if opts.MaxShadowNodes == 0 {
		opts.MaxShadowNodes = 50000
	}
	return &Tracker{mod: mod, opts: opts, mem: map[uint64]memCell{}}
}

// Branches returns the recorded branch records in execution order.
func (t *Tracker) Branches() []BranchRecord { return t.branches }

// Allocs returns the recorded allocation records in execution order.
func (t *Tracker) Allocs() []AllocRecord { return t.allocs }

func (t *Tracker) label(off int) *bitvec.Expr {
	if t.opts.Labels != nil {
		return t.opts.Labels.ByteExpr(off)
	}
	return bitvec.Field(bitvec.RawByteName(off), 8, off)
}

// relevant reports whether the expression depends on a relevant byte.
func (t *Tracker) relevant(e *bitvec.Expr) bool {
	if e == nil {
		return false
	}
	if t.opts.Relevant == nil {
		return true
	}
	for _, off := range e.ByteDeps() {
		if t.opts.Relevant[off] {
			return true
		}
	}
	return false
}

func (t *Tracker) top() *shadowFrame { return &t.frames[len(t.frames)-1] }

// reg returns the shadow of a register in the current frame.
func (t *Tracker) reg(r ir.Reg) shadow {
	f := t.top()
	if int(r) < len(f.regs) {
		return f.regs[r]
	}
	return shadow{}
}

func (t *Tracker) setReg(r ir.Reg, s shadow) {
	if s.n > t.opts.MaxShadowNodes {
		s = shadow{} // drop taint on runaway expressions
	}
	t.top().regs[r] = s
}

// RegShadow exposes the current frame's register shadow (for the
// insertion point analysis and tests).
func (t *Tracker) RegShadow(r ir.Reg) *bitvec.Expr { return t.reg(r).e }

// operand returns the symbolic expression for an operand at width w:
// the shadow coerced to w, or a constant from the concrete value.
func operand(s shadow, w uint8, concrete uint64) (*bitvec.Expr, int) {
	if s.e == nil {
		return bitvec.Const(w, concrete), 1
	}
	e, n := s.e, s.n
	switch {
	case e.W < w:
		e, n = bitvec.ZExt(w, e), n+1
	case e.W > w:
		e, n = bitvec.Trunc(w, e), n+1
	}
	return e, n
}

// MemShadow reconstructs the symbolic expression for an n-byte
// little-endian value at addr, or nil if untainted. Adjacent cells of
// the same expression reconstitute the original expression.
func (t *Tracker) MemShadow(addr uint64, n int, concrete uint64) *bitvec.Expr {
	cells := make([]memCell, n)
	any := false
	for i := 0; i < n; i++ {
		cells[i] = t.mem[addr+uint64(i)]
		if cells[i].e != nil {
			any = true
		}
	}
	if !any {
		return nil
	}
	// Fast path: bytes 0..n-1 of a single expression of width 8n.
	first := cells[0]
	if first.e != nil && first.idx == 0 && int(first.e.W) == 8*n {
		whole := true
		for i := 1; i < n; i++ {
			if cells[i].e != first.e || cells[i].idx != uint8(i) {
				whole = false
				break
			}
		}
		if whole {
			return first.e
		}
	}
	// General path: concatenate per-byte extracts (high byte first).
	var parts []*bitvec.Expr
	for i := n - 1; i >= 0; i-- {
		c := cells[i]
		if c.e == nil {
			parts = append(parts, bitvec.Const(8, concrete>>(8*uint(i))))
			continue
		}
		lo := 8 * c.idx
		parts = append(parts, bitvec.Extract(lo+7, lo, c.e))
	}
	out := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		out = bitvec.Concat(parts[i], out)
	}
	return bitvec.Simplify(out)
}

// storeShadow writes the shadow of an n-byte value to memory.
func (t *Tracker) storeShadow(addr uint64, n int, s shadow) {
	if s.e == nil {
		for i := 0; i < n; i++ {
			delete(t.mem, addr+uint64(i))
		}
		return
	}
	e := s.e
	en := s.n
	if int(e.W) != 8*n {
		// Coerce the expression to the stored width.
		if int(e.W) > 8*n {
			e, en = bitvec.Trunc(uint8(8*n), e), en+1
		} else {
			e, en = bitvec.ZExt(uint8(8*n), e), en+1
		}
	}
	for i := 0; i < n; i++ {
		t.mem[addr+uint64(i)] = memCell{e: e, n: en, idx: uint8(i)}
	}
}

// Step implements vm.Tracer.
func (t *Tracker) Step(ev *vm.Event) {
	t.apply(ev)
	if t.OnStep != nil {
		t.OnStep(ev)
	}
}

func (t *Tracker) apply(ev *vm.Event) {
	in := ev.In
	// Lazily create the entry frame.
	if len(t.frames) == 0 {
		f := t.mod.Funcs[ev.Fn]
		t.frames = append(t.frames, shadowFrame{regs: make([]shadow, f.NumRegs)})
	}

	switch in.Op {
	case ir.Nop:

	case ir.ConstOp, ir.FrameAddr, ir.GlobalAddr:
		t.setReg(in.Dst, shadow{})

	case ir.Mov:
		s := t.reg(in.A)
		if s.e != nil && s.e.W != uint8(in.W) {
			e, n := operand(s, uint8(in.W), ev.Val)
			s = shadow{e, n}
		}
		t.setReg(in.Dst, s)

	case ir.ZExt:
		s := t.reg(in.A)
		if s.e == nil {
			t.setReg(in.Dst, shadow{})
			break
		}
		e, n := operand(s, uint8(in.SrcW), ev.A)
		t.setReg(in.Dst, shadow{bitvec.ZExt(uint8(in.W), e), n + 1})

	case ir.SExt:
		s := t.reg(in.A)
		if s.e == nil {
			t.setReg(in.Dst, shadow{})
			break
		}
		e, n := operand(s, uint8(in.SrcW), ev.A)
		t.setReg(in.Dst, shadow{bitvec.SExt(uint8(in.W), e), n + 1})

	case ir.Trunc:
		s := t.reg(in.A)
		if s.e == nil {
			t.setReg(in.Dst, shadow{})
			break
		}
		e, n := operand(s, uint8(in.SrcW), ev.A)
		t.setReg(in.Dst, shadow{bitvec.Trunc(uint8(in.W), e), n + 1})

	case ir.Load:
		n := int(in.W.Bytes())
		e := t.MemShadow(ev.Addr, n, ev.Val)
		if e == nil {
			t.setReg(in.Dst, shadow{})
		} else {
			t.setReg(in.Dst, shadow{e, e.Size()})
		}

	case ir.Store:
		t.storeShadow(ev.Addr, int(in.W.Bytes()), t.reg(in.B))

	case ir.Jmp:

	case ir.Br:
		s := t.reg(in.A)
		if s.e != nil && t.relevant(s.e) {
			raw := bitvec.BoolOf(s.e)
			cond := raw
			if !t.opts.NoSimplify {
				cond = bitvec.Simplify(raw)
			}
			t.branches = append(t.branches, BranchRecord{
				Fn: ev.Fn, PC: ev.PC, Line: in.Line, Seq: t.seq,
				Taken: ev.Taken, Cond: cond, Raw: raw,
			})
		}
		t.seq++

	case ir.Ret:
		var s shadow
		f := t.mod.Funcs[ev.Fn]
		if f.RetW != 0 {
			s = t.reg(in.A)
		}
		retDst := t.top().retDst
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) > 0 {
			t.setReg(retDst, s)
		}

	case ir.Call:
		callee := t.mod.Funcs[in.Fn]
		argShadows := make([]shadow, len(in.Args))
		for i, r := range in.Args {
			argShadows[i] = t.reg(r)
		}
		t.frames = append(t.frames, shadowFrame{
			regs:   make([]shadow, callee.NumRegs),
			retDst: in.Dst,
		})
		// Mirror the VM's argument stores into the callee frame.
		for i, p := range callee.Params {
			t.storeShadow(ev.CalleeFP+uint64(p.Off), int(p.W.Bytes()), argShadows[i])
		}

	case ir.CallB:
		t.applyBuiltin(ev)

	default:
		if in.Op.IsBinary() {
			t.applyBinary(ev)
			break
		}
	}
}

func (t *Tracker) applyBinary(ev *vm.Event) {
	in := ev.In
	sa, sb := t.reg(in.A), t.reg(in.B)
	if sa.e == nil && sb.e == nil {
		t.setReg(in.Dst, shadow{})
		return
	}
	w := uint8(in.W)
	ea, na := operand(sa, w, ev.A)
	eb, nb := operand(sb, w, ev.B)
	n := na + nb + 1

	var e *bitvec.Expr
	switch in.Op {
	case ir.Add:
		e = bitvec.Add(ea, eb)
	case ir.Sub:
		e = bitvec.Sub(ea, eb)
	case ir.Mul:
		e = bitvec.Mul(ea, eb)
	case ir.UDiv:
		e = bitvec.UDiv(ea, eb)
	case ir.SDiv:
		e = bitvec.SDiv(ea, eb)
	case ir.URem:
		e = bitvec.URem(ea, eb)
	case ir.SRem:
		e = bitvec.SRem(ea, eb)
	case ir.And:
		e = bitvec.And(ea, eb)
	case ir.Or:
		e = bitvec.Or(ea, eb)
	case ir.Xor:
		e = bitvec.Xor(ea, eb)
	case ir.Shl:
		e = bitvec.Shl(ea, eb)
	case ir.LShr:
		e = bitvec.LShr(ea, eb)
	case ir.AShr:
		e = bitvec.AShr(ea, eb)
	case ir.Eq:
		e = cmp32(bitvec.Eq(ea, eb))
	case ir.Ne:
		e = cmp32(bitvec.Ne(ea, eb))
	case ir.ULt:
		e = cmp32(bitvec.Ult(ea, eb))
	case ir.ULe:
		e = cmp32(bitvec.Ule(ea, eb))
	case ir.SLt:
		e = cmp32(bitvec.Slt(ea, eb))
	case ir.SLe:
		e = cmp32(bitvec.Sle(ea, eb))
	default:
		t.setReg(in.Dst, shadow{})
		return
	}
	t.setReg(in.Dst, shadow{e, n + 1})
}

// cmp32 widens a width-1 comparison to the 32-bit 0/1 value the VM
// register holds (C comparison results have type int).
func cmp32(e *bitvec.Expr) *bitvec.Expr { return bitvec.ZExt(32, e) }

func (t *Tracker) applyBuiltin(ev *vm.Event) {
	in := ev.In
	switch in.Builtin {
	case ir.BInU8, ir.BInU16BE, ir.BInU16LE, ir.BInU32BE, ir.BInU32LE:
		t.setReg(in.Dst, t.inputShadow(in.Builtin, ev))
	case ir.BAlloc:
		sizeShadow := shadow{}
		if len(in.Args) > 0 {
			sizeShadow = t.reg(in.Args[0])
		}
		var sizeExpr *bitvec.Expr
		if t.relevant(sizeShadow.e) {
			sizeExpr = sizeShadow.e
			if !t.opts.NoSimplify {
				sizeExpr = bitvec.Simplify(sizeExpr)
			}
		}
		t.allocs = append(t.allocs, AllocRecord{
			Fn: ev.Fn, PC: ev.PC, Line: in.Line, Seq: t.seq,
			Size: ev.AllocSz, SizeExpr: sizeExpr, Addr: ev.Val,
		})
		t.seq++
		t.setReg(in.Dst, shadow{})
	default:
		// Other builtins produce untainted results.
		t.setReg(in.Dst, shadow{})
	}
}

// inputShadow builds the labelled expression for an input read.
func (t *Tracker) inputShadow(b ir.Builtin, ev *vm.Event) shadow {
	var n int
	be := true
	switch b {
	case ir.BInU8:
		n = 1
	case ir.BInU16BE:
		n = 2
	case ir.BInU16LE:
		n, be = 2, false
	case ir.BInU32BE:
		n = 4
	case ir.BInU32LE:
		n, be = 4, false
	}
	if ev.InLen == 0 {
		return shadow{} // read past EOF: constant zero, untainted
	}
	// Byte i of the stream (0-based from InOff). BE: first byte is most
	// significant. LE: first byte is least significant.
	bytes := make([]*bitvec.Expr, n) // most significant first
	for i := 0; i < n; i++ {
		var lbl *bitvec.Expr
		if i < ev.InLen {
			lbl = t.label(ev.InOff + i)
		} else {
			lbl = bitvec.Const(8, 0) // short read filled with zero
		}
		if be {
			bytes[i] = lbl
		} else {
			bytes[n-1-i] = lbl
		}
	}
	e := bytes[n-1]
	for i := n - 2; i >= 0; i-- {
		e = bitvec.Concat(bytes[i], e)
	}
	e = bitvec.Simplify(e)
	return shadow{e, e.Size()}
}
