package taint

import (
	"testing"
	"testing/quick"

	"codephage/internal/bitvec"
	"codephage/internal/compile"

	"codephage/internal/vm"
)

// newTestTracker builds a tracker with a dummy module (shadow memory
// operations do not consult the module).
func newTestTracker(t *testing.T) *Tracker {
	t.Helper()
	mod, err := compile.CompileSource("t", `void main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	return NewTracker(mod, Options{})
}

func TestMemShadowRoundTrip(t *testing.T) {
	tr := newTestTracker(t)
	f := bitvec.Field("f", 32, 0)
	tr.storeShadow(0x1000, 4, shadow{f, 1})
	got := tr.MemShadow(0x1000, 4, 0)
	if !bitvec.Equal(got, f) {
		t.Fatalf("round trip = %s, want the bare field", got)
	}
}

func TestMemShadowPartialLoad(t *testing.T) {
	tr := newTestTracker(t)
	f := bitvec.Field("f", 32, 0)
	tr.storeShadow(0x1000, 4, shadow{f, 1})
	// Low half (LE bytes 0-1) = Extract(15,0).
	lo := tr.MemShadow(0x1000, 2, 0)
	if !bitvec.Equal(lo, bitvec.Extract(15, 0, f)) {
		t.Errorf("low half = %s", lo)
	}
	// High half = Extract(31,16).
	hi := tr.MemShadow(0x1002, 2, 0)
	if !bitvec.Equal(hi, bitvec.Extract(31, 16, f)) {
		t.Errorf("high half = %s", hi)
	}
}

func TestMemShadowMixedTaintedUntainted(t *testing.T) {
	tr := newTestTracker(t)
	b := bitvec.Field("b", 8, 0)
	tr.storeShadow(0x1001, 1, shadow{b, 1})
	// Load 2 bytes: the untainted byte contributes its concrete value.
	got := tr.MemShadow(0x1000, 2, 0x00AB) // concrete low byte 0xAB
	if got == nil {
		t.Fatal("mixed load lost taint")
	}
	env := bitvec.MapEnv{Fields: map[string]uint64{"b": 0x7F}}
	v, err := bitvec.Eval(got, env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x7FAB {
		t.Errorf("mixed value = %#x, want 0x7FAB", v)
	}
}

func TestMemShadowUntainted(t *testing.T) {
	tr := newTestTracker(t)
	if got := tr.MemShadow(0x2000, 8, 123); got != nil {
		t.Fatalf("untainted memory has shadow %s", got)
	}
}

func TestStoreUntaintedClearsShadow(t *testing.T) {
	tr := newTestTracker(t)
	f := bitvec.Field("f", 16, 0)
	tr.storeShadow(0x1000, 2, shadow{f, 1})
	tr.storeShadow(0x1000, 2, shadow{})
	if got := tr.MemShadow(0x1000, 2, 0); got != nil {
		t.Fatalf("overwrite did not clear shadow: %s", got)
	}
}

func TestStoreShadowWidthCoercion(t *testing.T) {
	tr := newTestTracker(t)
	f := bitvec.Field("f", 32, 0)
	// Store only one byte of a 32-bit shadowed value: the stored
	// expression must be the truncation.
	tr.storeShadow(0x1000, 1, shadow{f, 1})
	got := tr.MemShadow(0x1000, 1, 0)
	want := bitvec.Trunc(8, f)
	if !bitvec.Equal(got, want) {
		t.Errorf("coerced store = %s, want %s", got, want)
	}
}

// Property: storing any 1-8 byte shadowed field and loading the same
// range reconstructs an expression with identical evaluation.
func TestQuickShadowStoreLoadAgree(t *testing.T) {
	tr := newTestTracker(t)
	prop := func(val uint64, sz uint8) bool {
		n := int(sz%8) + 1
		w := uint8(n * 8)
		f := bitvec.Field("f", w, 0)
		addr := uint64(0x9000)
		tr.storeShadow(addr, n, shadow{f, 1})
		got := tr.MemShadow(addr, n, 0)
		if got == nil {
			return false
		}
		env := bitvec.MapEnv{Fields: map[string]uint64{"f": val & bitvec.Mask(w)}}
		a, err1 := bitvec.Eval(f, env)
		b, err2 := bitvec.Eval(got, env)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShadowNodeCap(t *testing.T) {
	// A loop folding input into an accumulator grows the shadow; the
	// cap must drop taint rather than let the expression explode.
	src := `
void main() {
	u32 acc = 1;
	u32 i = 0;
	while (i < 64) {
		acc = acc * acc + (u32)in_u8();
		in_seek(0);
		i = i + 1;
	}
	if (acc > 0) { out(1); }
}
`
	mod, err := compile.CompileSource("cap", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(mod, Options{MaxShadowNodes: 100})
	v := vm.New(mod, []byte{3})
	v.Tracer = tr
	if r := v.Run(); !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	// The run must terminate promptly (cap prevents exponential
	// expression blowup) — reaching here is the assertion; branch
	// records may or may not survive the taint drop.
}

func TestBranchRecordsCarryRaw(t *testing.T) {
	src := `
void main() {
	u32 hi = (u32)in_u8();
	u32 lo = (u32)in_u8();
	u32 w = (hi << 8) | lo;
	if (w > 5) { out(1); }
}
`
	mod, err := compile.CompileSource("raw", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(mod, Options{})
	v := vm.New(mod, []byte{1, 2})
	v.Tracer = tr
	if r := v.Run(); !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	if len(tr.Branches()) != 1 {
		t.Fatalf("branches = %d", len(tr.Branches()))
	}
	b := tr.Branches()[0]
	if b.Raw == nil || b.Cond == nil {
		t.Fatal("missing raw or simplified condition")
	}
	if b.Raw.OpCount() <= b.Cond.OpCount() {
		t.Errorf("raw (%d ops) not larger than simplified (%d ops)",
			b.Raw.OpCount(), b.Cond.OpCount())
	}
}

func TestNoSimplifyOption(t *testing.T) {
	src := `
void main() {
	u32 hi = (u32)in_u8();
	u32 lo = (u32)in_u8();
	u32 w = (hi << 8) | lo;
	if (w > 5) { out(1); }
}
`
	mod, err := compile.CompileSource("nosimp", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(mod, Options{NoSimplify: true})
	v := vm.New(mod, []byte{1, 2})
	v.Tracer = tr
	if r := v.Run(); !r.OK() {
		t.Fatalf("trap: %v", r.Trap)
	}
	b := tr.Branches()[0]
	if !bitvec.Equal(b.Raw, b.Cond) {
		t.Error("NoSimplify must record the raw condition as Cond")
	}
}

func TestSiteOf(t *testing.T) {
	b := BranchRecord{Fn: 3, PC: 7}
	if b.SiteOf() != (Site{3, 7}) {
		t.Errorf("SiteOf = %v", b.SiteOf())
	}
}

var _ vm.Tracer = (*Tracker)(nil)
