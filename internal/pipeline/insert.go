package pipeline

import (
	"fmt"
	"strings"
)

// InsertPatchLine inserts the patch statement into MiniC source text
// immediately after the given 1-based source line, preserving the
// indentation of that line. This is the source-level patch insertion
// of §3.3: the recipient is subsequently recompiled.
func InsertPatchLine(src string, afterLine int32, patch string) (string, error) {
	lines := strings.Split(src, "\n")
	if afterLine < 1 || int(afterLine) > len(lines) {
		return "", fmt.Errorf("phage: insertion line %d out of range (%d lines)", afterLine, len(lines))
	}
	anchor := lines[afterLine-1]
	indent := anchor[:len(anchor)-len(strings.TrimLeft(anchor, " \t"))]

	out := make([]string, 0, len(lines)+1)
	out = append(out, lines[:afterLine]...)
	out = append(out, indent+patch)
	out = append(out, lines[afterLine:]...)
	return strings.Join(out, "\n"), nil
}

// InsertBeforeLine inserts the patch immediately before the given
// 1-based source line, taking that line's indentation. Insertion
// points identify the statement execution reaches with every check
// field available, so the guard runs just before it.
func InsertBeforeLine(src string, line int32, patch string) (string, error) {
	lines := strings.Split(src, "\n")
	if line < 1 || int(line) > len(lines) {
		return "", fmt.Errorf("phage: insertion line %d out of range (%d lines)", line, len(lines))
	}
	anchor := lines[line-1]
	indent := anchor[:len(anchor)-len(strings.TrimLeft(anchor, " \t"))]

	out := make([]string, 0, len(lines)+1)
	out = append(out, lines[:line-1]...)
	out = append(out, indent+patch)
	out = append(out, lines[line-1:]...)
	return strings.Join(out, "\n"), nil
}
