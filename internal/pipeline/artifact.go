package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"codephage/internal/ir"
	"codephage/internal/patch"
)

// String names the mode for patch artifacts and diagnostics.
func (m ExitMode) String() string {
	if m == ReturnZero {
		return "return0"
	}
	return "exit"
}

// fingerprintVersion bumps whenever the set of fingerprinted fields
// or their encoding changes, so artifacts from older engines never
// alias newer configurations.
const fingerprintVersion = 1

// Fingerprint hashes the option fields that affect transfer verdicts
// — the exit mode, the search budgets, the simplifier and rescan
// toggles, and the rescan seed. Execution-shape knobs (Workers, the
// service override) are deliberately excluded: they change how fast a
// verdict arrives, never which verdict, and the engine's
// rank-then-reduce merge guarantees parallel runs are byte-identical
// to sequential ones. Two artifacts with equal fingerprints were
// produced under interchangeable configurations.
func (o *Options) Fingerprint() string {
	var b []byte
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	u64(fingerprintVersion)
	u64(uint64(o.ExitMode))
	u64(uint64(o.MaxChecks))
	u64(uint64(o.MaxRounds))
	u64(uint64(o.MaxSteps))
	flag(o.NoSimplify)
	flag(o.DisableDiodeRescan)
	u64(uint64(o.DiodeRandSeed))
	u64(uint64(o.ProofConflicts))
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// buildArtifact packages a successful transfer as a verifiable patch
// artifact: the byte delta between the original and the validated
// patched module image, both endpoints checksummed, with the
// transfer's provenance and its oracle inputs embedded. The artifact
// is a pure function of the transfer and its result — no wall-clock
// data — so the same transfer yields the same content key wherever it
// runs.
func buildArtifact(t *Transfer, orig *ir.Module, res *Result) (*patch.Artifact, error) {
	origBytes, err := orig.Bytes()
	if err != nil {
		return nil, fmt.Errorf("encoding original module: %w", err)
	}
	patchedBytes, err := res.FinalModule.Bytes()
	if err != nil {
		return nil, fmt.Errorf("encoding patched module: %w", err)
	}
	a, err := patch.New(origBytes, patchedBytes)
	if err != nil {
		return nil, err
	}
	a.Recipient = t.RecipientName
	a.Target = t.TargetID
	a.Donor = res.Donor
	a.Format = t.Format
	a.Mode = t.Opts.ExitMode.String()
	a.Fingerprint = t.Opts.Fingerprint()
	for i := range res.Rounds {
		pr := &res.Rounds[i]
		a.Checks = append(a.Checks, patch.Check{
			Excised:    pr.ExcisedCheck,
			Translated: pr.TranslatedCheck,
			InsertFn:   pr.InsertFn,
			InsertLine: pr.InsertLine,
		})
		a.ErrorInputs = append(a.ErrorInputs, append([]byte(nil), pr.ErrorInput...))
	}
	if t.Seed != nil {
		a.Benign = append(a.Benign, append([]byte(nil), t.Seed...))
	}
	for _, in := range t.Regression {
		a.Benign = append(a.Benign, append([]byte(nil), in...))
	}
	return a, nil
}
