package pipeline

import (
	"bytes"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
)

// TestResultPatchArtifact pins the cross-layer invariant the patch
// subsystem rests on: the artifact a successful transfer produces,
// applied to the original module image, is byte-identical to the
// patched module image the pipeline itself validated — and rolls back
// to the byte-identical original. It also re-runs the artifact's
// embedded conformance oracle, which must accept the genuine patch.
func TestResultPatchArtifact(t *testing.T) {
	tgt, err := apps.TargetByID("jasper", "jpc_dec.c@492")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "openjpeg")
	tr.TargetID = tgt.ID
	res, err := NewEngine().Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("transfer produced no rounds")
	}
	a := res.Patch
	if a == nil {
		t.Fatal("successful transfer produced no patch artifact")
	}

	// Provenance is populated from the transfer.
	if a.Recipient != tr.RecipientName || a.Target != tgt.ID || a.Donor != res.Donor {
		t.Fatalf("provenance = %s/%s/%s, want %s/%s/%s",
			a.Recipient, a.Target, a.Donor, tr.RecipientName, tgt.ID, res.Donor)
	}
	if len(a.Checks) != len(res.Rounds) || len(a.ErrorInputs) != len(res.Rounds) {
		t.Fatalf("artifact carries %d checks / %d error inputs for %d rounds",
			len(a.Checks), len(a.ErrorInputs), len(res.Rounds))
	}
	if a.Fingerprint != tr.Opts.Fingerprint() {
		t.Fatal("artifact fingerprint does not match the transfer options")
	}

	orig, err := compile.Cached(tr.RecipientName, tr.RecipientSrc)
	if err != nil {
		t.Fatal(err)
	}
	origBytes, err := orig.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	finalBytes, err := res.FinalModule.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// The invariant: apply == the pipeline's own patched image.
	applied, err := a.ApplyBytes(origBytes)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(applied, finalBytes) {
		t.Fatal("applied artifact differs from the pipeline's patched module image")
	}
	back, err := a.RollbackBytes(applied)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if !bytes.Equal(back, origBytes) {
		t.Fatal("rollback is not byte-identical to the original image")
	}
	if err := a.Verify(origBytes, applied); err != nil {
		t.Fatalf("conformance oracle rejected the genuine artifact: %v", err)
	}

	// Content addressing is deterministic: an independent engine run
	// of the same transfer yields the same key.
	res2, err := NewEngine().Run(buildTransferLike(t, tgt, "openjpeg"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Patch == nil || res2.Patch.Key() != a.Key() {
		t.Fatal("identical transfers produced different artifact keys")
	}

	// The snapshot carries a private deep copy.
	snap := res.Snapshot()
	if snap.Patch == a {
		t.Fatal("snapshot aliases the result's artifact")
	}
	if snap.Patch.Key() != a.Key() {
		t.Fatal("snapshot artifact diverged from the result's")
	}
}

func buildTransferLike(t *testing.T, tgt *apps.Target, donor string) *Transfer {
	tr := buildTransfer(t, tgt, donor)
	tr.TargetID = tgt.ID
	return tr
}
