package pipeline

import (
	"strings"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/ir"
)

// noopDonor compiles a donor that processes every input without ever
// branching on it: it survives the seed and the error input (so the
// engine accepts it) but yields no flipped branches, making every
// transfer attempt fail deterministically after donor vetting.
func noopDonor(t *testing.T, name string) *ir.Module {
	t.Helper()
	mod, err := compile.CompileSource(name, "void main() { exit(0); }")
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// goodTemplate returns a transfer template for a catalogued target
// whose error input needs no discovery, plus its working donor.
func goodTemplate(t *testing.T) (*Transfer, DonorCandidate) {
	t.Helper()
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "magick9")
	good := DonorCandidate{Name: "magick9", Module: tr.Donor}
	return tr, good
}

// TestTryDonorsSuccessAfterRetry: the first donor fails (no flipped
// branches), the second validates; TryDonors must return the second
// donor's result and name.
func TestTryDonorsSuccessAfterRetry(t *testing.T) {
	tr, good := goodTemplate(t)
	res, name, err := TryDonors(tr, []DonorCandidate{
		{Name: "noop", Module: noopDonor(t, "noop")},
		good,
	})
	if err != nil {
		t.Fatalf("TryDonors: %v", err)
	}
	if name != good.Name {
		t.Errorf("winning donor = %q, want %q", name, good.Name)
	}
	if res == nil || res.UsedChecks() == 0 {
		t.Fatal("no transferred checks in the retried result")
	}
	if res.Donor != good.Name {
		t.Errorf("Result.Donor = %q, want %q", res.Donor, good.Name)
	}
}

// TestTryDonorsExhaustion: when no donor validates, the error must
// name every attempted donor with its failure.
func TestTryDonorsExhaustion(t *testing.T) {
	tr, _ := goodTemplate(t)
	res, name, err := TryDonors(tr, []DonorCandidate{
		{Name: "noop-a", Module: noopDonor(t, "noop-a")},
		{Name: "noop-b", Module: noopDonor(t, "noop-b")},
	})
	if err == nil {
		t.Fatalf("TryDonors succeeded with donor %q, want exhaustion", name)
	}
	if res != nil || name != "" {
		t.Errorf("exhausted TryDonors returned res=%v name=%q, want nil/empty", res, name)
	}
	for _, donor := range []string{"noop-a", "noop-b"} {
		if !strings.Contains(err.Error(), donor) {
			t.Errorf("exhaustion error does not name %s: %v", donor, err)
		}
	}
}

// TestTryDonorsDeterministic: the result that survives the retry loop
// must be byte-identical to a direct run with the winning donor — the
// failed attempts leave no trace in the outcome.
func TestTryDonorsDeterministic(t *testing.T) {
	tr, good := goodTemplate(t)
	retried, name, err := TryDonors(tr, []DonorCandidate{
		{Name: "noop", Module: noopDonor(t, "noop")},
		good,
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != good.Name {
		t.Fatalf("winning donor = %q, want %q", name, good.Name)
	}
	direct := *tr
	directRes, err := (&Engine{Compiler: compile.NewCache(0)}).Run(&direct)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "retry-vs-direct", directRes, retried)
}
