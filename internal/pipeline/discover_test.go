package pipeline

import (
	"testing"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/smt"
)

// compileMod compiles MiniC source for tests.
func compileMod(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := compile.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A tiny donor: rejects inputs whose first byte exceeds 10.
const toyDonorSrc = `
void main() {
	u32 v = (u32)in_u8();
	u32 w = (u32)in_u8();
	if (v > 10) {
		exit(1);
	}
	out((u64)(v + w));
	exit(0);
}
`

func TestDiscoverChecksFlipAndPolarity(t *testing.T) {
	donor := compileMod(t, toyDonorSrc)
	donor.Strip()
	seed := []byte{5, 1}
	errIn := []byte{200, 1}
	dis := hachoir.Raw(seed)
	d, err := DiscoverChecks(donor, seed, errIn, dis, map[int]bool{0: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.FlippedSites != 1 || len(d.Checks) != 1 {
		t.Fatalf("flipped = %d, checks = %d, want 1/1", d.FlippedSites, len(d.Checks))
	}
	ck := d.Checks[0]
	// Seed does NOT take the v > 10 branch, so the excised check is the
	// negation: it must hold (nonzero) on the seed and fail on the error.
	if ck.SeedTaken {
		t.Error("seed should not take the rejection branch")
	}
	evalWith := func(v uint64) uint64 {
		env := bitvec.MapEnv{Fields: map[string]uint64{"@0": v, "@1": 1}}
		got, err := bitvec.Eval(ck.Cond, env)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if evalWith(5) == 0 {
		t.Error("check fails on the seed value")
	}
	if evalWith(200) != 0 {
		t.Error("check holds on the error value")
	}
	if ck.Raw == nil {
		t.Error("raw condition missing")
	}
}

func TestDiscoverChecksRelevantFiltering(t *testing.T) {
	donor := compileMod(t, toyDonorSrc)
	seed := []byte{5, 1}
	errIn := []byte{200, 1}
	dis := hachoir.Raw(seed)
	// With only byte 1 relevant, the v > 10 branch is filtered out.
	d, err := DiscoverChecks(donor, seed, errIn, dis, map[int]bool{1: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.FlippedSites != 0 {
		t.Fatalf("flipped = %d, want 0 after relevance filtering", d.FlippedSites)
	}
}

func TestDiscoverChecksOrderedByExecution(t *testing.T) {
	donor := compileMod(t, `
void main() {
	u32 a = (u32)in_u8();
	u32 b = (u32)in_u8();
	if (a > 100) {
		exit(1);
	}
	if (b > 100) {
		exit(1);
	}
	exit(0);
}
`)
	seed := []byte{1, 1}
	errIn := []byte{200, 200} // flips both branches? No: first exits.
	dis := hachoir.Raw(seed)
	d, err := DiscoverChecks(donor, seed, errIn, dis, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first branch executes on the error input (it exits), so
	// exactly one flip, and it is the a-branch.
	if len(d.Checks) != 1 {
		t.Fatalf("checks = %d, want 1", len(d.Checks))
	}
	deps := d.Checks[0].Cond.ByteDeps()
	if len(deps) != 1 || deps[0] != 0 {
		t.Errorf("first check depends on %v, want byte 0", deps)
	}
}

func TestDiscoverChecksDonorCrashRejected(t *testing.T) {
	donor := compileMod(t, `
void main() {
	u32 v = (u32)in_u8();
	u32 x = 100 / v; /* traps on zero */
	out((u64)x);
}
`)
	seed := []byte{5}
	errIn := []byte{0}
	dis := hachoir.Raw(seed)
	if _, err := DiscoverChecks(donor, seed, errIn, dis, nil, false); err == nil {
		t.Fatal("donor crash on error input must be reported")
	}
}

func TestSelectDonors(t *testing.T) {
	good := compileMod(t, toyDonorSrc)
	crasher := compileMod(t, `
void main() {
	u32 v = (u32)in_u8();
	out((u64)(100 / (v - 200)));  /* traps when byte 0 == 200 */
}
`)
	seed := []byte{5, 1}
	errIn := []byte{200, 1}
	selected := SelectDonors([]*ir.Module{good, crasher}, seed, errIn)
	if len(selected) != 1 || selected[0] != good {
		t.Fatalf("selected %d donors, want only the surviving one", len(selected))
	}
}

func TestRewriteDecomposition(t *testing.T) {
	solver := smt.NewService(smt.Config{}).Session()
	w := bitvec.Field("w", 16, 0)
	h := bitvec.Field("h", 16, 2)
	names := []Name{
		{Path: "img.w", W: 32, Expr: bitvec.ZExt(32, w)},
		{Path: "img.h", W: 32, Expr: bitvec.ZExt(32, h)},
	}
	// w + h has no single recipient value: decomposition required.
	e := bitvec.Add(bitvec.ZExt(32, w), bitvec.ZExt(32, h))
	tr := Rewrite(e, names, solver)
	if tr == nil {
		t.Fatal("rewrite failed")
	}
	if tr.Op != bitvec.OpAdd || tr.X.Op != bitvec.OpRef || tr.Y.Op != bitvec.OpRef {
		t.Fatalf("translated = %s, want Add(Ref, Ref)", tr)
	}
}

func TestRewriteCastBridging(t *testing.T) {
	solver := smt.NewService(smt.Config{}).Session()
	w := bitvec.Field("w", 16, 0)
	names := []Name{{Path: "img.w", W: 32, Expr: bitvec.ZExt(32, w)}}
	// A 64-bit use of the field must match through a widening cast.
	e := bitvec.ZExt(64, w)
	tr := Rewrite(e, names, solver)
	if tr == nil {
		t.Fatal("rewrite failed")
	}
	if tr.Op != bitvec.OpZExt || tr.X.Op != bitvec.OpRef || tr.X.Name != "img.w" {
		t.Fatalf("translated = %s, want ZExt(Ref(img.w))", tr)
	}
	// A 8-bit use must match through a truncation.
	e8 := bitvec.Trunc(8, w)
	tr8 := Rewrite(e8, names, solver)
	if tr8 == nil {
		t.Fatal("narrow rewrite failed")
	}
}

func TestRewriteFailsWithoutValues(t *testing.T) {
	solver := smt.NewService(smt.Config{}).Session()
	w := bitvec.Field("w", 16, 0)
	h := bitvec.Field("h", 16, 2)
	names := []Name{{Path: "img.w", W: 32, Expr: bitvec.ZExt(32, w)}}
	// h is not available anywhere: the rewrite must fail, not invent.
	e := bitvec.Add(bitvec.ZExt(32, w), bitvec.ZExt(32, h))
	if tr := Rewrite(e, names, solver); tr != nil {
		t.Fatalf("rewrite fabricated a translation: %s", tr)
	}
}

func TestRewriteConstantsTranslateDirectly(t *testing.T) {
	solver := smt.NewService(smt.Config{}).Session()
	e := bitvec.Const(32, 42)
	tr := Rewrite(e, nil, solver)
	if tr == nil || tr.Op != bitvec.OpConst || tr.Val != 42 {
		t.Fatalf("constant rewrite = %v", tr)
	}
}

func TestRewriteEquivalentComputationRecognised(t *testing.T) {
	// The JasPer scenario: the recipient stores the product tw*th; the
	// donor check recomputes it. The solver must equate them.
	solver := smt.NewService(smt.Config{}).Session()
	tx := bitvec.Field("tx", 8, 0)
	ty := bitvec.Field("ty", 8, 1)
	product := bitvec.Mul(bitvec.ZExt(32, tx), bitvec.ZExt(32, ty))
	names := []Name{{Path: "dec->numtiles", W: 32, Expr: product}}
	tr := Rewrite(bitvec.Mul(bitvec.ZExt(32, tx), bitvec.ZExt(32, ty)), names, solver)
	if tr == nil || tr.Op != bitvec.OpRef || tr.Name != "dec->numtiles" {
		t.Fatalf("translated = %v, want Ref(dec->numtiles)", tr)
	}
}

func TestCheckHolds(t *testing.T) {
	w := bitvec.Field("w", 16, 0)
	names := []Name{{Path: "img.w", W: 32, Expr: bitvec.ZExt(32, w)}}
	translated := bitvec.Ule(bitvec.Ref("img.w", 32), bitvec.Const(32, 100))
	ok, err := CheckHolds(translated, map[string]uint64{"w": 50}, names)
	if err != nil || !ok {
		t.Fatalf("CheckHolds(50) = %v, %v", ok, err)
	}
	ok, err = CheckHolds(translated, map[string]uint64{"w": 500}, names)
	if err != nil || ok {
		t.Fatalf("CheckHolds(500) = %v, %v", ok, err)
	}
}
