package pipeline

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"codephage/internal/compile"
)

// stubSelector returns a fixed ranked candidate list (or an error).
// Selectors are consulted concurrently by batch workers, so the call
// counter is atomic (the corpus implementation uses atomics too).
type stubSelector struct {
	ranked []DonorCandidate
	err    error
	calls  atomic.Int64
}

func (s *stubSelector) SelectDonors(format string, seed, errIn []byte) ([]DonorCandidate, error) {
	s.calls.Add(1)
	return s.ranked, s.err
}

// TestSelectStageResolvesDonor: a nil-donor transfer runs the Select
// stage, retries past a failing candidate, and produces a result
// byte-identical to naming the winning donor directly.
func TestSelectStageResolvesDonor(t *testing.T) {
	tr, good := goodTemplate(t)
	sel := &stubSelector{ranked: []DonorCandidate{
		{Name: "noop", Module: noopDonor(t, "noop")},
		good,
	}}
	eng := &Engine{Compiler: compile.NewCache(0), Selector: sel}
	auto := *tr
	auto.Donor, auto.DonorName = nil, ""
	autoRes, err := eng.Run(&auto)
	if err != nil {
		t.Fatalf("auto run: %v", err)
	}
	if got := sel.calls.Load(); got != 1 {
		t.Errorf("selector consulted %d times, want 1", got)
	}
	if autoRes.Donor != good.Name {
		t.Errorf("Result.Donor = %q, want %q", autoRes.Donor, good.Name)
	}
	if snap := autoRes.Snapshot(); snap.Donor != good.Name {
		t.Errorf("Snapshot.Donor = %q, want %q", snap.Donor, good.Name)
	}

	manual := *tr
	manualRes, err := eng.Run(&manual)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "auto-vs-manual", manualRes, autoRes)
}

// TestSelectStageErrors: a nil-donor transfer must fail cleanly when
// no selector is configured, when selection errors, and when no
// candidate survives.
func TestSelectStageErrors(t *testing.T) {
	tr, _ := goodTemplate(t)
	auto := *tr
	auto.Donor, auto.DonorName = nil, ""

	if _, err := (&Engine{Compiler: compile.NewCache(0)}).Run(&auto); err == nil ||
		!strings.Contains(err.Error(), "no donor selector") {
		t.Errorf("no-selector run: %v, want donor-selector error", err)
	}

	eng := &Engine{Compiler: compile.NewCache(0), Selector: &stubSelector{err: fmt.Errorf("index corrupt")}}
	if _, err := eng.Run(&auto); err == nil || !strings.Contains(err.Error(), "index corrupt") {
		t.Errorf("selector-error run: %v, want wrapped selection error", err)
	}

	eng = &Engine{Compiler: compile.NewCache(0), Selector: &stubSelector{}}
	if _, err := eng.Run(&auto); err == nil || !strings.Contains(err.Error(), "no candidate donor") {
		t.Errorf("empty-selection run: %v, want no-candidate error", err)
	}

	eng = &Engine{Compiler: compile.NewCache(0), Selector: &stubSelector{
		ranked: []DonorCandidate{{Name: "noop", Module: noopDonor(t, "noop")}},
	}}
	if _, err := eng.Run(&auto); err == nil || !strings.Contains(err.Error(), "noop") {
		t.Errorf("all-candidates-fail run: %v, want error naming the failed donor", err)
	}
}

// TestBatchAutoDonorJobs: auto-donor tasks flow through Batch exactly
// like explicit ones, resolving through the shared engine's selector.
func TestBatchAutoDonorJobs(t *testing.T) {
	tr, good := goodTemplate(t)
	eng := &Engine{Compiler: compile.NewCache(0), Selector: &stubSelector{ranked: []DonorCandidate{good}}}

	manual := *tr
	want, err := eng.Run(&manual)
	if err != nil {
		t.Fatal(err)
	}

	var tasks []BatchTask
	for i := 0; i < 3; i++ {
		auto := *tr
		auto.Donor, auto.DonorName = nil, ""
		tasks = append(tasks, BatchTask{ID: fmt.Sprintf("auto-%d", i), Transfer: &auto})
	}
	results, stats := (&Batch{Engine: eng, Workers: 3}).Run(tasks)
	if stats.Failed != 0 {
		t.Fatalf("failed auto tasks: %d", stats.Failed)
	}
	for _, br := range results {
		if br.Result.Donor != good.Name {
			t.Errorf("%s: resolved donor %q, want %q", br.ID, br.Result.Donor, good.Name)
		}
		requireIdenticalResults(t, br.ID, want, br.Result)
	}
}

// TestSelectStageName pins the new stage's published name alongside
// the existing ones.
func TestSelectStageName(t *testing.T) {
	if (stageSelect{}).Name() != "Select" {
		t.Error("Select stage name changed")
	}
}
