package pipeline

import (
	"fmt"
	"strings"

	"codephage/internal/bitvec"
)

// This file converts translated bitvector expressions into MiniC
// source text. Every node is rendered as a C expression whose value,
// held in the smallest MiniC unsigned type that fits the node's width,
// equals the bitvector value (high bits zero). Non-power-of-two widths
// are computed in the containing type and masked after every
// operation, preserving exact wrap semantics.

// ErrUnrenderable reports a construct with no MiniC equivalent.
type ErrUnrenderable struct{ Op bitvec.Op }

func (e ErrUnrenderable) Error() string {
	return fmt.Sprintf("phage: cannot render %s in MiniC", e.Op.Name())
}

// ctypeBits returns the MiniC container width for a bitvector width.
func ctypeBits(w uint8) uint8 {
	switch {
	case w <= 8:
		return 8
	case w <= 16:
		return 16
	case w <= 32:
		return 32
	default:
		return 64
	}
}

func utype(w uint8) string { return fmt.Sprintf("u%d", ctypeBits(w)) }
func itype(w uint8) string { return fmt.Sprintf("i%d", ctypeBits(w)) }

// mask wraps the rendered text with the width mask when the width is
// not the container width.
func mask(text string, w uint8) string {
	if w == ctypeBits(w) {
		return text
	}
	return fmt.Sprintf("(%s & %d)", text, bitvec.Mask(w))
}

// RenderExpr renders a translated expression (Refs + constants +
// operations) as a MiniC expression.
func RenderExpr(e *bitvec.Expr) (string, error) {
	r := &renderer{}
	text, err := r.render(e)
	if err != nil {
		return "", err
	}
	return text, nil
}

type renderer struct{}

// render produces text whose MiniC value equals e's value
// zero-extended into the container type.
func (r *renderer) render(e *bitvec.Expr) (string, error) {
	switch e.Op {
	case bitvec.OpConst:
		return fmt.Sprintf("(%s)%d", utype(e.W), e.Val), nil
	case bitvec.OpRef:
		// Cast normalises the stored type to the expression width.
		return fmt.Sprintf("(%s)(%s)", utype(e.W), e.Name), nil
	case bitvec.OpField:
		return "", fmt.Errorf("phage: untranslated input field %q in patch", e.Name)
	}

	bin := func(op string) (string, error) {
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		y, err := r.render(e.Y)
		if err != nil {
			return "", err
		}
		// Operand renderings carry container-typed values with zero
		// high bits, but MiniC promotes u8/u16 operands to i32, so the
		// result is cast back to the container; the mask then restores
		// exact wrap semantics for sub-container widths.
		return mask(fmt.Sprintf("(%s)(%s %s %s)", utype(e.W), x, op, y), e.W), nil
	}
	sbin := func(op string) (string, error) {
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		y, err := r.render(e.Y)
		if err != nil {
			return "", err
		}
		if e.W != ctypeBits(e.W) {
			return "", ErrUnrenderable{e.Op} // signed ops at odd widths
		}
		t := itype(e.W)
		return fmt.Sprintf("(%s)((%s)%s %s (%s)%s)", utype(e.W), t, x, op, t, y), nil
	}
	cmp := func(op string, signed bool) (string, error) {
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		y, err := r.render(e.Y)
		if err != nil {
			return "", err
		}
		w := e.X.W
		if signed {
			if w != ctypeBits(w) {
				return "", ErrUnrenderable{e.Op}
			}
			t := itype(w)
			return fmt.Sprintf("((%s)%s %s (%s)%s)", t, x, op, t, y), nil
		}
		return fmt.Sprintf("(%s %s %s)", x, op, y), nil
	}

	switch e.Op {
	case bitvec.OpAdd:
		return bin("+")
	case bitvec.OpSub:
		return bin("-")
	case bitvec.OpMul:
		return bin("*")
	case bitvec.OpUDiv:
		return bin("/")
	case bitvec.OpURem:
		return bin("%")
	case bitvec.OpAnd:
		return bin("&")
	case bitvec.OpOr:
		return bin("|")
	case bitvec.OpXor:
		return bin("^")
	case bitvec.OpShl:
		return bin("<<")
	case bitvec.OpLShr:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		y, err := r.render(e.Y)
		if err != nil {
			return "", err
		}
		// High container bits are zero, so a logical shift is plain >>
		// (the promoted value is non-negative); cast restores the type.
		return fmt.Sprintf("(%s)(%s >> %s)", utype(e.W), x, y), nil
	case bitvec.OpSDiv:
		return sbin("/")
	case bitvec.OpSRem:
		return sbin("%")
	case bitvec.OpAShr:
		return sbin(">>")
	case bitvec.OpEq:
		return cmp("==", false)
	case bitvec.OpNe:
		return cmp("!=", false)
	case bitvec.OpUlt:
		return cmp("<", false)
	case bitvec.OpUle:
		return cmp("<=", false)
	case bitvec.OpSlt:
		return cmp("<", true)
	case bitvec.OpSle:
		return cmp("<=", true)

	case bitvec.OpNot:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		return mask(fmt.Sprintf("((%s)(~%s))", utype(e.W), x), e.W), nil
	case bitvec.OpNeg:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		return mask(fmt.Sprintf("((%s)((%s)0 - %s))", utype(e.W), utype(e.W), x), e.W), nil
	case bitvec.OpZExt:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s)%s", utype(e.W), x), nil
	case bitvec.OpSExt:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		if e.X.W != ctypeBits(e.X.W) || e.W != ctypeBits(e.W) {
			return "", ErrUnrenderable{e.Op}
		}
		return fmt.Sprintf("(%s)((%s)((%s)%s))", utype(e.W), itype(e.W), itype(e.X.W), x), nil
	case bitvec.OpExtr:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		shifted := fmt.Sprintf("((u64)%s >> %d)", x, e.Lo)
		return fmt.Sprintf("(%s)(%s & %d)", utype(e.W), shifted, bitvec.Mask(e.W)), nil
	case bitvec.OpConcat:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		y, err := r.render(e.Y)
		if err != nil {
			return "", err
		}
		t := utype(e.W)
		return mask(fmt.Sprintf("(((%s)((u64)%s << %d)) | (%s)%s)", t, x, e.Y.W, t, y), e.W), nil
	case bitvec.OpBool:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s != 0)", x), nil
	case bitvec.OpLNot:
		x, err := r.render(e.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s == 0)", x), nil
	}
	return "", ErrUnrenderable{e.Op}
}

// ExitMode selects what a firing patch does.
type ExitMode int

// Patch reaction modes.
const (
	// ExitOnFail exits the application before the error can occur
	// (the paper's default: exit(-1)).
	ExitOnFail ExitMode = iota
	// ReturnZero returns 0 from the enclosing function instead — the
	// alternate divide-by-zero strategy of §4.5 that enables continued
	// execution.
	ReturnZero
)

// PatchText renders the complete guard statement for a translated
// check: the patch fires when the check does NOT hold.
func PatchText(translated *bitvec.Expr, mode ExitMode) (string, error) {
	cond, err := RenderExpr(bitvec.BoolOf(translated))
	if err != nil {
		return "", err
	}
	action := "exit(-1);"
	if mode == ReturnZero {
		action = "return 0;"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "if (!%s) { %s }", cond, action)
	return sb.String(), nil
}
