package pipeline

import (
	"codephage/internal/bitvec"
	"codephage/internal/smt"
)

// Rewrite implements Figure 7: translate the application-independent
// expression E into the name space of the recipient using the Names
// produced by the data structure traversal. For every subtree it first
// asks the SMT solver for a single recipient value with the same
// symbolic meaning; failing that it decomposes the expression and
// rewrites the operands recursively. Constants translate directly.
// It returns nil when the expression cannot be expressed at the point.
// The solver session rides the shared constraint service, so repeated
// subtree queries across points, checks, rounds and transfers resolve
// from the engine-wide memo.
func Rewrite(e *bitvec.Expr, names []Name, solver *smt.Session) *bitvec.Expr {
	// A single recipient value equivalent to the whole expression?
	for _, n := range names {
		if n.W != e.W {
			continue
		}
		eq, err := solver.Equiv(e, n.Expr)
		if err == nil && eq {
			return bitvec.Ref(n.Path, e.W)
		}
	}
	// A recipient value equivalent modulo a width cast? This generates
	// the casts the paper's patches carry, e.g.
	// (unsigned long long)dinfo.output_height for a 64-bit subtree
	// matched by a 32-bit recipient field (§3.3: "appropriately
	// generating any casts, shifts, and masks").
	for _, n := range names {
		switch {
		case n.W < e.W:
			eq, err := solver.Equiv(e, bitvec.ZExt(e.W, n.Expr))
			if err == nil && eq {
				return bitvec.ZExt(e.W, bitvec.Ref(n.Path, n.W))
			}
		case n.W > e.W:
			eq, err := solver.Equiv(e, bitvec.Trunc(e.W, n.Expr))
			if err == nil && eq {
				return bitvec.Trunc(e.W, bitvec.Ref(n.Path, n.W))
			}
		}
	}
	switch {
	case e.Op == bitvec.OpConst:
		return e
	case e.Op.IsLeaf():
		return nil // an input field with no recipient value: untranslatable
	}
	ops := e.Operands()
	newOps := make([]*bitvec.Expr, len(ops))
	for i, o := range ops {
		r := Rewrite(o, names, solver)
		if r == nil {
			return nil
		}
		newOps[i] = r
	}
	// Rebuild through the interning constructors so translated
	// expressions stay hash-consed (struct-copying would bypass the
	// interner and forfeit O(1) keys downstream).
	return bitvec.Rebuild(e, newOps)
}

// CheckHolds evaluates the translated check against concrete recipient
// values: refs resolve through the env built from traversal names.
// Used by tests and validation sanity checks.
func CheckHolds(translated *bitvec.Expr, fieldEnv map[string]uint64, names []Name) (bool, error) {
	refs := map[string]uint64{}
	env := bitvec.MapEnv{Fields: fieldEnv, Refs: refs}
	for _, n := range names {
		v, err := bitvec.Eval(n.Expr, env)
		if err != nil {
			continue
		}
		refs[n.Path] = v
	}
	v, err := bitvec.Eval(translated, env)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}
