package pipeline

import (
	"fmt"
	"sort"

	"codephage/internal/bitvec"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/taint"
	"codephage/internal/vm"
)

// Name is one data-structure traversal result (Figure 6): a recipient
// program path and the symbolic expression of the value it stores.
type Name struct {
	Path string
	W    uint8
	Expr *bitvec.Expr
}

// Point is one candidate insertion point: a source line of a recipient
// function that execution reaches with all of the check's input fields
// already read; the patch is inserted immediately before the line.
type Point struct {
	Fn     int32
	FnName string
	Line   int32
	Names  []Name
	Stable bool // false: different executions saw different values
	Execs  int
}

// InsertionAnalysis is the result of the recipient-side run.
type InsertionAnalysis struct {
	Points []Point
}

// Candidates returns the total number of candidate points (Figure 8's
// X), the unstable count (Y), and the stable points.
func (a *InsertionAnalysis) Candidates() (total, unstable int, stable []*Point) {
	for i := range a.Points {
		p := &a.Points[i]
		total++
		if p.Stable {
			stable = append(stable, p)
		} else {
			unstable++
		}
	}
	return total, unstable, stable
}

// maxExecsPerPoint bounds stability sampling at loop-resident points.
const maxExecsPerPoint = 8

// maxArrayElems bounds the traversal of array types.
const maxArrayElems = 4

type invocation struct {
	fn       int32
	fp       uint64
	accessed map[string]bool
	lastLine int32
}

type pointKey struct {
	fn   int32
	line int32
}

type pointState struct {
	names    []Name
	namesKey string
	stable   bool
	execs    int
}

// insertionAnalyzer implements the recipient instrumented run of §3.3.
type insertionAnalyzer struct {
	mod      *ir.Module
	tr       *taint.Tracker
	v        *vm.VM
	fields   map[string]bool // the check's input fields
	relevant map[int]bool

	stack  []invocation
	points map[pointKey]*pointState
}

// AnalyzeInsertionPoints runs the recipient on the seed input and
// finds the candidate insertion points for a check over the given
// input fields, with unstable-point detection. The recipient module
// must carry debug information.
func AnalyzeInsertionPoints(recipient *ir.Module, seed []byte, dis *hachoir.Dissection, checkFields []string, relevant map[int]bool) (*InsertionAnalysis, error) {
	if recipient.Stripped || recipient.Types == nil {
		return nil, fmt.Errorf("phage: recipient has no debug information")
	}
	a := &insertionAnalyzer{
		mod:      recipient,
		fields:   map[string]bool{},
		relevant: relevant,
		points:   map[pointKey]*pointState{},
	}
	for _, f := range checkFields {
		a.fields[f] = true
	}
	a.tr = taint.NewTracker(recipient, taint.Options{Labels: dis, Relevant: relevant})
	a.v = vm.New(recipient, seed)
	a.tr.OnStep = a.onStep
	a.v.Tracer = a.tr
	res := a.v.Run()
	if !res.OK() {
		return nil, fmt.Errorf("phage: recipient crashes on the seed input: %v", res.Trap)
	}

	out := &InsertionAnalysis{}
	for key, st := range a.points {
		out.Points = append(out.Points, Point{
			Fn: key.fn, FnName: recipient.Funcs[key.fn].Name, Line: key.line,
			Names: st.names, Stable: st.stable, Execs: st.execs,
		})
	}
	sort.Slice(out.Points, func(i, j int) bool {
		if out.Points[i].Fn != out.Points[j].Fn {
			return out.Points[i].Fn < out.Points[j].Fn
		}
		return out.Points[i].Line < out.Points[j].Line
	})
	return out, nil
}

func (a *insertionAnalyzer) top() *invocation { return &a.stack[len(a.stack)-1] }

func (a *insertionAnalyzer) onStep(ev *vm.Event) {
	if len(a.stack) == 0 {
		a.stack = append(a.stack, invocation{
			fn: ev.Fn, fp: ev.FP, accessed: map[string]bool{},
		})
	}
	inv := a.top()

	// Line transition within the executing invocation: execution
	// reaches a new statement. The accessed set reflects everything
	// read before this statement, so a patch inserted before the line
	// sees exactly these values.
	if ev.In.Op != ir.Call && ev.In.Op != ir.Ret {
		line := ev.In.Line
		if line != 0 && line != inv.lastLine {
			if inv.lastLine != 0 {
				a.lineReached(inv, line)
			}
			inv.lastLine = line
		}
	}

	// Track field accesses: any value computed from check fields.
	if dst := a.dstShadow(ev); dst != nil {
		for _, f := range dst.Fields() {
			if a.fields[f] {
				inv.accessed[f] = true
			}
		}
	}

	switch ev.In.Op {
	case ir.Call:
		a.stack = append(a.stack, invocation{
			fn: ev.In.Fn, fp: ev.CalleeFP, accessed: map[string]bool{},
		})
	case ir.Ret:
		if len(a.stack) > 0 {
			a.stack = a.stack[:len(a.stack)-1]
		}
	}
}

// dstShadow returns the shadow of the instruction's destination, if
// meaningful for access tracking.
func (a *insertionAnalyzer) dstShadow(ev *vm.Event) *bitvec.Expr {
	switch ev.In.Op {
	case ir.Jmp, ir.Br, ir.Ret, ir.Call, ir.Store:
		return nil
	}
	return a.tr.RegShadow(ev.In.Dst)
}

// covered reports whether the invocation has accessed every check field.
func (a *insertionAnalyzer) covered(inv *invocation) bool {
	if len(a.fields) == 0 {
		return false
	}
	for f := range a.fields {
		if !inv.accessed[f] {
			return false
		}
	}
	return true
}

// lineReached runs when execution reaches a new statement line within
// the invocation.
func (a *insertionAnalyzer) lineReached(inv *invocation, line int32) {
	if !a.covered(inv) {
		return
	}
	key := pointKey{inv.fn, line}
	st, seen := a.points[key]
	if seen && st.execs >= maxExecsPerPoint {
		return
	}
	names := a.traverseRoots(inv, line)
	nk := namesKey(names)
	if !seen {
		a.points[key] = &pointState{names: names, namesKey: nk, stable: true, execs: 1}
		return
	}
	st.execs++
	if st.namesKey != nk {
		st.stable = false // accesses different values on different executions
	}
}

func namesKey(names []Name) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n.Path + "=" + n.Expr.Key()
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

// traverseRoots implements Figure 6: starting from the local and
// global variables in scope at the point, traverse the recipient data
// structures to find values computed from relevant input fields,
// recording the paths that reach them.
func (a *insertionAnalyzer) traverseRoots(inv *invocation, line int32) []Name {
	var names []Name
	visited := map[uint64]bool{}
	f := a.mod.Funcs[inv.fn]
	for _, v := range f.Vars {
		if v.Line > line {
			continue // not yet declared at the insertion point
		}
		a.traverse(v.Name, inv.fp+uint64(v.Off), v.Type, visited, &names)
	}
	for _, g := range a.mod.GlobalVars {
		a.traverse(g.Name, vm.GlobalBase+uint64(g.Off), g.Type, visited, &names)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(names[i].Path) != len(names[j].Path) {
			return len(names[i].Path) < len(names[j].Path)
		}
		return names[i].Path < names[j].Path
	})
	return names
}

// traverse recursively walks one path (Figure 6's Traverse).
func (a *insertionAnalyzer) traverse(path string, addr uint64, typeIdx int32, visited map[uint64]bool, names *[]Name) {
	if visited[addr] {
		return
	}
	t := &a.mod.Types[typeIdx]
	switch t.Kind {
	case ir.KInt:
		visited[addr] = true
		concrete, ok := a.v.ReadScalar(addr, t.W)
		if !ok {
			return
		}
		e := a.tr.MemShadow(addr, int(t.W.Bytes()), concrete)
		if e == nil || !a.usefulExpr(e) {
			return
		}
		*names = append(*names, Name{Path: path, W: uint8(t.W), Expr: e})
	case ir.KPtr:
		visited[addr] = true
		ptr, ok := a.v.ReadScalar(addr, ir.W64)
		if !ok || ptr == 0 {
			return
		}
		elem := &a.mod.Types[t.Elem]
		size := int(elem.Size)
		if size <= 0 {
			size = 1
		}
		if !a.v.Readable(ptr, size) {
			return
		}
		a.traverse("(*"+path+")", ptr, t.Elem, visited, names)
	case ir.KStruct:
		for _, fld := range t.Fields {
			a.traverse(memberPath(path, fld.Name), addr+uint64(fld.Off), fld.Type, visited, names)
		}
	case ir.KArray:
		elem := &a.mod.Types[t.Elem]
		n := int(t.Count)
		if n > maxArrayElems {
			n = maxArrayElems
		}
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("%s[%d]", path, i)
			a.traverse(p, addr+uint64(i)*uint64(elem.Size), t.Elem, visited, names)
		}
	}
}

// memberPath renders a field access, folding "(*p).f" into "p->f" for
// readable generated patches.
func memberPath(base, field string) string {
	if len(base) > 3 && base[0] == '(' && base[1] == '*' && base[len(base)-1] == ')' {
		inner := base[2 : len(base)-1]
		if isSimpleIdent(inner) {
			return inner + "->" + field
		}
	}
	return base + "." + field
}

func isSimpleIdent(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// usefulExpr reports whether a traversed value can contribute to the
// check translation: it must involve at least one of the check's input
// fields. (The check may reference fields beyond the relevant bytes —
// e.g. OpenJPEG's tile bound involves the tile-grid fields even when
// only the tile number differs between seed and error inputs.)
func (a *insertionAnalyzer) usefulExpr(e *bitvec.Expr) bool {
	if len(a.fields) == 0 {
		return true
	}
	for _, f := range e.Fields() {
		if a.fields[f] {
			return true
		}
	}
	return false
}
