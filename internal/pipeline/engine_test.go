package pipeline

import (
	"fmt"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/smt"
)

// buildTransfer assembles a Transfer for a registry target and donor,
// obtaining the error input from the registry or from DIODE.
func buildTransfer(t *testing.T, tgt *apps.Target, donorName string) *Transfer {
	t.Helper()
	recipient, err := apps.ByName(tgt.Recipient)
	if err != nil {
		t.Fatal(err)
	}
	donorApp, err := apps.ByName(donorName)
	if err != nil {
		t.Fatal(err)
	}
	donorBin, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		t.Fatal(err)
	}
	errIn := tgt.Error
	if errIn == nil {
		mod, err := apps.Build(recipient)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := hachoir.ByName(tgt.Format)
		dis, derr := d.Dissect(tgt.Seed)
		if derr != nil {
			t.Fatal(derr)
		}
		finding, ferr := diode.Discover(mod, tgt.Seed, dis, diode.Options{VulnFn: tgt.VulnFn})
		if ferr != nil {
			t.Fatal(ferr)
		}
		if finding == nil {
			t.Fatalf("DIODE found no error at %s/%s", tgt.Recipient, tgt.ID)
		}
		errIn = finding.Input
	}
	vulnFn := ""
	if tgt.Kind == apps.Overflow {
		vulnFn = tgt.VulnFn
	}
	return &Transfer{
		RecipientName: tgt.Recipient,
		RecipientSrc:  recipient.Source,
		Donor:         donorBin,
		DonorName:     donorName,
		Format:        tgt.Format,
		Seed:          tgt.Seed,
		Error:         errIn,
		Regression:    apps.RegressionSuite(tgt.Format),
		VulnFn:        vulnFn,
	}
}

// determinismRows are Figure 8 rows with catalogued error inputs (no
// DIODE discovery needed), spanning all three error kinds.
var determinismRows = []struct{ recipient, target, donor string }{
	{"jasper", "jpc_dec.c@492", "openjpeg"},
	{"gif2tiff", "gif2tiff.c@355", "magick9"},
	{"wireshark14", "packet-dcp-etsi.c@258", "wireshark18"},
}

// requireIdenticalResults asserts the engine-visible outcome of two
// runs is byte-identical: rounds, patch text, insertion lines, final
// source.
func requireIdenticalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.FinalSource != b.FinalSource {
		t.Errorf("%s: final sources differ", label)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: rounds %d != %d", label, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.CheckIndex != rb.CheckIndex || ra.PatchText != rb.PatchText ||
			ra.InsertFn != rb.InsertFn || ra.InsertLine != rb.InsertLine ||
			ra.TranslatedCheck != rb.TranslatedCheck || ra.ExcisedCheck != rb.ExcisedCheck ||
			ra.CandidatePoints != rb.CandidatePoints || ra.UnstablePoints != rb.UnstablePoints ||
			ra.Untranslatable != rb.Untranslatable || ra.ViablePoints != rb.ViablePoints ||
			string(ra.ErrorInput) != string(rb.ErrorInput) {
			t.Errorf("%s: round %d diverges:\n  a: %+v\n  b: %+v", label, i, ra, rb)
		}
	}
}

// TestEngineParallelMatchesSequential is the determinism contract:
// with candidate validation fanned out across many workers, the engine
// must return byte-identical results (rounds, patch text, insert
// lines) to the sequential path. Run under -race this also exercises
// the worker pool for data races.
func TestEngineParallelMatchesSequential(t *testing.T) {
	for _, tc := range determinismRows {
		tc := tc
		t.Run(tc.recipient, func(t *testing.T) {
			tgt, err := apps.TargetByID(tc.recipient, tc.target)
			if err != nil {
				t.Fatal(err)
			}
			tr := buildTransfer(t, tgt, tc.donor)

			seqEng := &Engine{Workers: 1, Compiler: compile.NewCache(0)}
			trSeq := *tr
			seq, err := seqEng.Run(&trSeq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}

			parEng := &Engine{Workers: 8, Compiler: compile.NewCache(0)}
			trPar := *tr
			par, err := parEng.Run(&trPar)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			requireIdenticalResults(t, tc.recipient, seq, par)
		})
	}
}

// TestBatchMatchesIndividualRuns: a concurrent batch over a shared
// engine returns, per task, exactly the standalone result, in task
// order, and the shared compile cache observes hits (the same
// recipient source is compiled once, not once per task).
func TestBatchMatchesIndividualRuns(t *testing.T) {
	var tasks []BatchTask
	var want []*Result
	for _, tc := range determinismRows {
		tgt, err := apps.TargetByID(tc.recipient, tc.target)
		if err != nil {
			t.Fatal(err)
		}
		tr := buildTransfer(t, tgt, tc.donor)
		solo := *tr
		res, err := (&Engine{Compiler: compile.NewCache(0)}).Run(&solo)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
		// Duplicate each task to give the shared caches real sharing.
		for dup := 0; dup < 2; dup++ {
			cp := *tr
			tasks = append(tasks, BatchTask{
				ID:       fmt.Sprintf("%s<-%s#%d", tc.recipient, tc.donor, dup),
				Transfer: &cp,
			})
		}
	}

	eng := &Engine{Compiler: compile.NewCache(0)}
	eng.Workers = 4
	batch := &Batch{Engine: eng, Workers: 4}
	results, stats := batch.Run(tasks)
	if len(results) != len(tasks) {
		t.Fatalf("results = %d, want %d", len(results), len(tasks))
	}
	if stats.Failed != 0 {
		t.Fatalf("failed tasks: %d", stats.Failed)
	}
	for i, br := range results {
		if br.ID != tasks[i].ID {
			t.Errorf("result %d id %q, want %q (order must be task order)", i, br.ID, tasks[i].ID)
		}
		if br.Err != nil {
			t.Fatalf("task %s: %v", br.ID, br.Err)
		}
		requireIdenticalResults(t, br.ID, want[i/2], br.Result)
	}
	if stats.Compile.Hits == 0 {
		t.Error("shared compile cache saw no hits across duplicate tasks")
	}
	if stats.Solver.Queries == 0 {
		t.Error("batch aggregated no solver stats")
	}
	if stats.Tasks != len(tasks) {
		t.Errorf("stats.Tasks = %d, want %d", stats.Tasks, len(tasks))
	}
}

// TestEngineCompileCacheEliminatesRecompiles: the per-round recipient
// recompile and the baseline compile now go through the content-keyed
// cache, so a second identical transfer compiles nothing new.
func TestEngineCompileCacheEliminatesRecompiles(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "magick9")
	eng := &Engine{Compiler: compile.NewCache(0)}
	tr1 := *tr
	if _, err := eng.Run(&tr1); err != nil {
		t.Fatal(err)
	}
	first := eng.Compiler.Stats()
	if first.Misses == 0 {
		t.Fatal("first run compiled nothing")
	}
	tr2 := *tr
	if _, err := eng.Run(&tr2); err != nil {
		t.Fatal(err)
	}
	second := eng.Compiler.Stats()
	if second.Misses != first.Misses {
		t.Errorf("second identical run recompiled: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Errorf("second identical run hit no cache: hits %d -> %d", first.Hits, second.Hits)
	}
}

// TestStageNames pins the engine's published stage sequence.
func TestStageNames(t *testing.T) {
	var names []string
	for _, s := range checkStages() {
		names = append(names, s.Name())
	}
	want := []string{"AnalyzePoints", "Translate", "InsertValidate"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, names[i], want[i])
		}
	}
	if (stageDiscover{}).Name() != "Discover" || (stageRescan{}).Name() != "Rescan" {
		t.Error("outer stage names changed")
	}
}

// TestSharedServiceAcrossBatch: many concurrent tasks run over one
// shared constraint service. The engine must give each transfer a
// private session — no races under -race — and aggregate stats
// without double counting: the engine total equals the sum of the
// per-result stats. Identical tasks must share verdicts through the
// service memo instead of re-proving.
func TestSharedServiceAcrossBatch(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	svc := smt.NewService(smt.Config{})
	base := buildTransfer(t, tgt, "magick9")
	var tasks []BatchTask
	for i := 0; i < 4; i++ {
		tr := *base
		tasks = append(tasks, BatchTask{ID: fmt.Sprintf("t%d", i), Transfer: &tr})
	}
	eng := &Engine{Compiler: compile.NewCache(0), Service: svc}
	results, stats := (&Batch{Engine: eng, Workers: 4}).Run(tasks)
	if stats.Failed != 0 {
		t.Fatalf("failed: %d", stats.Failed)
	}
	var sum smt.Stats
	for _, br := range results {
		sum.Merge(br.Result.SolverStats)
	}
	if got := eng.SolverStats(); got != sum {
		t.Errorf("engine stats %+v != sum of per-result stats %+v (double count?)", got, sum)
	}
	st := svc.Stats()
	if st.MemoHits == 0 {
		t.Error("identical tasks produced no shared memo hits")
	}
	if st.Queries == 0 || st.Sessions < 4 {
		t.Errorf("service saw %d queries over %d sessions, want activity from every task",
			st.Queries, st.Sessions)
	}
}

// TestBatchEmptyTaskList: an empty batch must return cleanly, not
// panic on the worker-division arithmetic.
func TestBatchEmptyTaskList(t *testing.T) {
	results, stats := (&Batch{}).Run(nil)
	if len(results) != 0 || stats.Tasks != 0 || stats.Failed != 0 {
		t.Errorf("empty batch: results=%d stats=%+v", len(results), stats)
	}
}
