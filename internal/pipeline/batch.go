package pipeline

import (
	"runtime"
	"sync"
	"time"

	"codephage/internal/compile"
	"codephage/internal/smt"
)

// BatchTask is one transfer in a batch workload. A task whose
// Transfer.Donor is nil is an auto-donor job: the engine's Select
// stage resolves the donor through the configured DonorSelector, and
// the chosen donor comes back in Result.Donor.
type BatchTask struct {
	ID       string // caller-chosen identifier, echoed in the result
	Transfer *Transfer
}

// BatchResult is the outcome of one batch task.
type BatchResult struct {
	ID     string
	Result *Result
	Err    error
}

// BatchStats aggregates one batch run.
type BatchStats struct {
	Tasks    int
	Failed   int
	WallTime time.Duration
	// Compile counts the compile-cache activity during this batch only
	// (prior activity of a shared cache is subtracted out).
	Compile compile.CacheStats
	// Solver aggregates solver activity across this batch's tasks
	// only (prior activity of a reused engine is subtracted out).
	Solver smt.Stats
}

// subStats returns after minus before, counter-wise.
func subStats(after, before smt.Stats) smt.Stats {
	return smt.Stats{
		Queries:     after.Queries - before.Queries,
		CacheHits:   after.CacheHits - before.CacheHits,
		Prefiltered: after.Prefiltered - before.Prefiltered,
		Refuted:     after.Refuted - before.Refuted,
		Syntactic:   after.Syntactic - before.Syntactic,
		SATCalls:    after.SATCalls - before.SATCalls,
		SATTime:     after.SATTime - before.SATTime,
	}
}

// Batch runs many transfers concurrently over one shared engine: one
// compile cache, one baseline cache, aggregated statistics. Results
// come back in task order regardless of completion order, and each
// task's Result is identical to what a standalone Run would produce.
type Batch struct {
	// Engine executes the tasks (nil = a fresh NewEngine).
	Engine *Engine
	// Workers bounds the number of concurrently running transfers
	// (0 = GOMAXPROCS). Candidate validation inside each transfer
	// additionally fans out per the engine's worker setting.
	Workers int
}

// Run executes the tasks and returns per-task results in task order.
func (b *Batch) Run(tasks []BatchTask) ([]BatchResult, BatchStats) {
	start := time.Now()
	eng := b.Engine
	if eng == nil {
		eng = NewEngine()
	}
	if len(tasks) == 0 {
		return nil, BatchStats{WallTime: time.Since(start), Compile: compile.CacheStats{}}
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Divide the CPU budget between the two fan-out levels: with N
	// concurrent transfers, each task's candidate validation defaults
	// to GOMAXPROCS/N workers instead of GOMAXPROCS, so the batch does
	// not oversubscribe the machine quadratically. Explicit per-task
	// or engine-level worker settings win; the division is applied to
	// a per-run copy of the task, never written back to caller state.
	perTask := 0
	if eng.Workers == 0 {
		perTask = runtime.GOMAXPROCS(0) / workers
		if perTask < 1 {
			perTask = 1
		}
	}

	solverBefore := eng.SolverStats()
	compileBefore := eng.compiler().Stats()
	results := make([]BatchResult, len(tasks))
	var next int64
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return int(i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= len(tasks) {
					return
				}
				tr := *tasks[i].Transfer
				if perTask > 0 && tr.Opts.Workers == 0 {
					tr.Opts.Workers = perTask
				}
				res, err := eng.Run(&tr)
				results[i] = BatchResult{ID: tasks[i].ID, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()

	compileAfter := eng.compiler().Stats()
	stats := BatchStats{
		Tasks:    len(tasks),
		WallTime: time.Since(start),
		Compile: compile.CacheStats{
			Hits:      compileAfter.Hits - compileBefore.Hits,
			Misses:    compileAfter.Misses - compileBefore.Misses,
			Evictions: compileAfter.Evictions - compileBefore.Evictions,
		},
		Solver: subStats(eng.SolverStats(), solverBefore),
	}
	for i := range results {
		if results[i].Err != nil {
			stats.Failed++
		}
	}
	return results, stats
}
