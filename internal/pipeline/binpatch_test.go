package pipeline

import (
	"testing"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/hachoir"
	"codephage/internal/smt"
	"codephage/internal/vm"
)

func TestParsePath(t *testing.T) {
	cases := []string{"x", "(*p)", "p->w", "(*p).w", "img.a.b", "slots[3]", "(*(*q).r)->v"}
	for _, c := range cases {
		n, rest, err := parsePath(c)
		if err != nil || rest != "" || n == nil {
			t.Errorf("parsePath(%q) = %v, %q, %v", c, n, rest, err)
		}
	}
	for _, bad := range []string{"", "(*x", "a.", "a[", "a[x]", "->f"} {
		if _, rest, err := parsePath(bad); err == nil && rest == "" {
			t.Errorf("parsePath(%q): expected error", bad)
		}
	}
}

// TestBinaryPatchEquivalentToSourcePatch runs the full transfer to get
// the translated check and insertion point, then applies the same
// check as a binary patch to the unpatched module and verifies the two
// patched artifacts behave identically.
func TestBinaryPatchEquivalentToSourcePatch(t *testing.T) {
	for _, tc := range []struct{ recipient, target, donor string }{
		{"jasper", "jpc_dec.c@492", "openjpeg"},
		{"gif2tiff", "gif2tiff.c@355", "magick9"},
		{"wireshark14", "packet-dcp-etsi.c@258", "wireshark18"},
	} {
		tc := tc
		t.Run(tc.recipient, func(t *testing.T) {
			tgt, err := apps.TargetByID(tc.recipient, tc.target)
			if err != nil {
				t.Fatal(err)
			}
			tr := buildTransfer(t, tgt, tc.donor)
			res, err := tr.Run()
			if err != nil {
				t.Fatal(err)
			}
			pr := res.Rounds[0]

			// Reconstruct the translated expression is not retained as a
			// tree on the round; re-derive it by re-running the round's
			// translation on the original module.
			orig, err := compile.CompileSource(tc.recipient, tr.RecipientSrc)
			if err != nil {
				t.Fatal(err)
			}
			translated := reTranslate(t, tr, pr.InsertFn, pr.InsertLine)
			binMod, err := BinaryPatch(orig, pr.InsertFn, pr.InsertLine, translated, ExitOnFail)
			if err != nil {
				t.Fatalf("BinaryPatch: %v", err)
			}

			// Error input: the binary patch must reject it cleanly.
			run := vm.New(binMod, tr.Error).Run()
			if !run.OK() {
				t.Fatalf("binary-patched module traps: %v", run.Trap)
			}
			// Regression suite: identical behaviour to the source patch.
			for i, input := range tr.Regression {
				src := vm.New(res.FinalModule, input).Run()
				bin := vm.New(binMod, input).Run()
				if src.ExitCode != bin.ExitCode || len(src.Output) != len(bin.Output) {
					t.Fatalf("input %d diverges: src exit %d out %v, bin exit %d out %v",
						i, src.ExitCode, src.Output, bin.ExitCode, bin.Output)
				}
				for j := range src.Output {
					if src.Output[j] != bin.Output[j] {
						t.Fatalf("input %d output %d diverges", i, j)
					}
				}
			}
		})
	}
}

// reTranslate re-runs discovery + insertion analysis + Rewrite for the
// given point to obtain the translated expression tree.
func reTranslate(t *testing.T, tr *Transfer, fnName string, line int32) *bitvec.Expr {
	t.Helper()
	m, err := compile.CompileSource(tr.RecipientName, tr.RecipientSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := hachoir.ByName(tr.Format)
	if !ok {
		t.Fatalf("no dissector %q", tr.Format)
	}
	dis, err := d.Dissect(tr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	relevant := dis.DiffFields(tr.Seed, tr.Error)
	donorDisc, err := DiscoverChecks(tr.Donor, tr.Seed, tr.Error, dis, relevant, false)
	if err != nil {
		t.Fatal(err)
	}
	check := donorDisc.Checks[0]
	analysis, err := AnalyzeInsertionPoints(m, tr.Seed, dis, check.Cond.Fields(), relevant)
	if err != nil {
		t.Fatal(err)
	}
	_, _, stable := analysis.Candidates()
	solver := smt.NewService(smt.Config{}).Session()
	for _, p := range stable {
		if p.FnName == fnName && p.Line == line {
			tru := Rewrite(check.Cond, p.Names, solver)
			if tru == nil {
				t.Fatal("rewrite failed at the recorded point")
			}
			return tru
		}
	}
	t.Fatalf("recorded point %s:%d not found", fnName, line)
	return nil
}

// TestBinaryPatchInsideLoop verifies the jump-relocation rule: a
// branch whose target is exactly the insertion point must re-enter the
// guard on every loop iteration, matching a source-level insertion
// before the statement.
func TestBinaryPatchInsideLoop(t *testing.T) {
	src := `
u32 g;
void main() {
	g = (u32)in_u8();
	u32 i = 0;
	while (i < 4) {
		out((u64)(g + i));
		i = i + 1;
	}
	exit(0);
}
`
	mod, err := compile.CompileSource("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	// Guard g <= 10, spliced before the out() statement (line 7).
	check := bitvec.Ule(bitvec.Ref("g", 32), bitvec.Const(32, 10))
	patched, err := BinaryPatch(mod, "main", 7, check, ExitOnFail)
	if err != nil {
		t.Fatal(err)
	}
	// Passing input: loop runs 4 full iterations.
	r := vm.New(patched, []byte{5}).Run()
	if !r.OK() || len(r.Output) != 4 || r.Output[3] != 8 {
		t.Fatalf("passing run: exit=%d out=%v trap=%v", r.ExitCode, r.Output, r.Trap)
	}
	// Failing input: guard fires before the first output.
	r = vm.New(patched, []byte{200}).Run()
	if !r.OK() || r.ExitCode != -1 || len(r.Output) != 0 {
		t.Fatalf("failing run: exit=%d out=%v trap=%v", r.ExitCode, r.Output, r.Trap)
	}
	// ReturnZero mode: main returns 0 instead (exit code 0, no output).
	patched, err = BinaryPatch(mod, "main", 7, check, ReturnZero)
	if err != nil {
		t.Fatal(err)
	}
	r = vm.New(patched, []byte{200}).Run()
	if !r.OK() || len(r.Output) != 0 {
		t.Fatalf("return-zero run: exit=%d out=%v trap=%v", r.ExitCode, r.Output, r.Trap)
	}
}
