package pipeline

import (
	"strings"
	"testing"

	"codephage/internal/hachoir"
)

const insertionRecipientSrc = `
struct Img {
	u32 w;
	u32 h;
	u8* data;
};

u32 helper(u32 v) {
	if (v > 1000000) {
		return 0;
	}
	return v * 2;
}

u32 load(Img* im) {
	im->w = (u32)in_u16be();
	im->h = (u32)in_u16be();
	u32 dw = helper(im->w);
	u32 dh = helper(im->h);
	out((u64)(dw + dh));
	return 1;
}

void main() {
	Img im;
	if (!load(&im)) {
		exit(1);
	}
	exit(0);
}
`

func analyze(t *testing.T, src string, seed []byte, fields []string) *InsertionAnalysis {
	t.Helper()
	mod := compileMod(t, src)
	dis := hachoir.Raw(seed)
	a, err := AnalyzeInsertionPoints(mod, seed, dis, fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInsertionPointsRequireCoverage(t *testing.T) {
	seed := []byte{0, 10, 0, 20}
	a := analyze(t, insertionRecipientSrc, seed, []string{"@0", "@1", "@2", "@3"})
	if len(a.Points) == 0 {
		t.Fatal("no insertion points")
	}
	// No point may precede the height read (line 17): w alone does not
	// cover the check fields.
	for _, p := range a.Points {
		if p.FnName == "load" && p.Line <= 17 {
			t.Errorf("point at load line %d precedes full coverage", p.Line)
		}
		if p.FnName == "main" {
			t.Errorf("main never reads the fields itself but has point at line %d", p.Line)
		}
	}
}

func TestInsertionPointNamesContainStructPaths(t *testing.T) {
	seed := []byte{0, 10, 0, 20}
	a := analyze(t, insertionRecipientSrc, seed, []string{"@0", "@1", "@2", "@3"})
	foundStruct := false
	for _, p := range a.Points {
		for _, n := range p.Names {
			if strings.Contains(n.Path, "im->w") || strings.Contains(n.Path, "im->h") {
				foundStruct = true
			}
		}
	}
	if !foundStruct {
		t.Error("traversal never found the struct fields through the pointer")
	}
}

func TestUnstablePointsInLoop(t *testing.T) {
	// A loop-variant value computed from the tainted field makes every
	// point inside the loop body see a different expression on each
	// execution: the point is unstable and must be filtered.
	src := `
void main() {
	u32 w = (u32)in_u8();
	u32 y = 0;
	while (y < 3) {
		u32 off = y * w;
		out((u64)off);
		y = y + 1;
	}
	exit(0);
}
`
	seed := []byte{9}
	a := analyze(t, src, seed, []string{"@0"})
	sawUnstable := false
	for _, p := range a.Points {
		if !p.Stable && p.Execs > 1 {
			sawUnstable = true
		}
	}
	if !sawUnstable {
		t.Error("loop-variant tainted value produced no unstable points")
	}
}

func TestSharedHelperNeverQualifiesWithoutCoverage(t *testing.T) {
	// helper() only ever sees one of the two fields per invocation, so
	// no point inside it can cover a two-field check.
	seed := []byte{0, 10, 0, 20}
	a := analyze(t, insertionRecipientSrc, seed, []string{"@0", "@1", "@2", "@3"})
	for _, p := range a.Points {
		if p.FnName == "helper" {
			t.Errorf("helper line %d qualified despite partial coverage", p.Line)
		}
	}
}

func TestScopeFiltering(t *testing.T) {
	// A variable declared after the insertion point must not appear in
	// the point's names.
	src := `
void main() {
	u32 a = (u32)in_u8();
	out((u64)a);
	u32 late = a + 1;
	out((u64)late);
	exit(0);
}
`
	seed := []byte{7}
	a := analyze(t, src, seed, []string{"@0"})
	for _, p := range a.Points {
		for _, n := range p.Names {
			if n.Path == "late" && p.Line <= 5 {
				t.Errorf("line-%d point sees variable declared at line 5", p.Line)
			}
		}
	}
}

func TestTraversalThroughArrays(t *testing.T) {
	src := `
u32 slots[4];
void main() {
	slots[2] = (u32)in_u8();
	out((u64)slots[2]);
	exit(0);
}
`
	seed := []byte{9}
	a := analyze(t, src, seed, []string{"@0"})
	found := false
	for _, p := range a.Points {
		for _, n := range p.Names {
			if n.Path == "slots[2]" {
				found = true
			}
		}
	}
	if !found {
		t.Error("array element holding the tainted value not found")
	}
}

func TestTraversalThroughHeapPointer(t *testing.T) {
	src := `
struct Box { u32 v; };
void main() {
	Box* b = (Box*)alloc(sizeof(Box));
	if (b == 0) {
		exit(1);
	}
	b->v = (u32)in_u8();
	out((u64)b->v);
	exit(0);
}
`
	seed := []byte{42}
	a := analyze(t, src, seed, []string{"@0"})
	found := false
	for _, p := range a.Points {
		for _, n := range p.Names {
			if n.Path == "b->v" {
				found = true
			}
		}
	}
	if !found {
		t.Error("heap value b->v not reached by traversal")
	}
}

func TestStrippedRecipientRejected(t *testing.T) {
	mod := compileMod(t, `void main() { out((u64)in_u8()); }`)
	mod.Strip()
	if _, err := AnalyzeInsertionPoints(mod, []byte{1}, hachoir.Raw([]byte{1}), []string{"@0"}, nil); err == nil {
		t.Fatal("stripped recipient accepted")
	}
}

func TestMemberPathRendering(t *testing.T) {
	cases := []struct{ base, field, want string }{
		{"(*p)", "w", "p->w"},
		{"(*(*p).q)", "w", "(*(*p).q).w"},
		{"img", "w", "img.w"},
	}
	for _, c := range cases {
		if got := memberPath(c.base, c.field); got != c.want {
			t.Errorf("memberPath(%q, %q) = %q, want %q", c.base, c.field, got, c.want)
		}
	}
}
