// This file implements the Select stage: automatic donor selection
// for transfers that do not name a donor. The paper's headline
// workflow — given an error-triggering input, search a database of
// applications for one that processes the input safely and transfer
// its check — becomes the first stage of the pipeline, ahead of
// Discover. The engine only defines the stage and the retry loop over
// the ranked candidates; the knowledge base that answers "which
// donor?" (internal/corpus) plugs in through the DonorSelector
// interface, so the pipeline stays free of registry dependencies.
package pipeline

import (
	"fmt"
	"strings"
	"time"

	"codephage/internal/telemetry"
)

// AutoDonor is the reserved donor name that requests automatic donor
// selection: callers that build Transfer templates from request
// strings map it to a nil Transfer.Donor.
const AutoDonor = "auto"

// DonorSelector ranks candidate donors for a transfer that does not
// name one. Implementations triage a donor knowledge base: format
// match, donor survival on the error input, signature overlap. The
// returned slice is a deterministic ranked list (best candidate
// first); the engine tries candidates strictly in that order, so
// selection never changes the byte-level outcome of the transfer that
// ends up running.
type DonorSelector interface {
	SelectDonors(format string, seed, errIn []byte) ([]DonorCandidate, error)
}

// SelectStats describes how a donor stream produced its ranked order.
// Every field is a deterministic function of the transfer inputs and
// the donor corpus, so the values are structural trace fields.
type SelectStats struct {
	// Donors is the number of format-matching donors in the ranked
	// order.
	Donors int
	// Prefiltered reports that a similarity pre-filter answered the
	// query; Candidates/Skipped split Donors into exactly-scored and
	// pre-filtered-out donors.
	Prefiltered bool
	Candidates  int
	Skipped     int
	// Fallback reports the exhaustive-equivalent order was used (cold
	// or empty pre-filter).
	Fallback bool
}

// DonorStream yields ranked donor candidates lazily: Next returns the
// next candidate that survives the selector's screening (nil when
// exhausted), performing per-candidate work — module loading, the VM
// survival probe — only as the engine consumes the order.
type DonorStream interface {
	Next() (*DonorCandidate, error)
	Stats() SelectStats
}

// DonorStreamer is the lazy form of DonorSelector. When the engine's
// Selector implements it, the retry loop pulls candidates one at a
// time, so selection cost scales with failed attempts instead of
// corpus size. The stream order must match what SelectDonors would
// return, keeping the transfer outcome byte-identical on both paths.
type DonorStreamer interface {
	StreamDonors(format string, seed, errIn []byte) (DonorStream, error)
}

// stageSelect resolves a nil Transfer.Donor through the engine's
// Selector, populating ctx.DonorRank with the deterministic ranked
// candidate list. It runs ahead of Discover: Discover analyses one
// concrete donor, Select decides which donors are worth analysing.
type stageSelect struct{}

func (stageSelect) Name() string { return "Select" }

func (stageSelect) Run(ctx *TransferContext) error {
	t := ctx.Transfer
	sel := ctx.Engine.Selector
	if sel == nil {
		return fmt.Errorf("phage: transfer names no donor and the engine has no donor selector")
	}
	ranked, err := sel.SelectDonors(t.Format, t.Seed, t.Error)
	if err != nil {
		return fmt.Errorf("phage: donor selection: %w", err)
	}
	if len(ranked) == 0 {
		return fmt.Errorf("phage: donor selection: no candidate donor survives the error input for format %q", t.Format)
	}
	ctx.DonorRank = ranked
	return nil
}

// runAuto executes the Select stage and then the remaining pipeline
// with each ranked candidate in turn, returning the first validated
// result (the §1.1 outermost retry loop, now fed by the knowledge
// base instead of a hardcoded donor table).
func (e *Engine) runAuto(t *Transfer) (*Result, error) {
	if streamer, ok := e.Selector.(DonorStreamer); ok {
		return e.runAutoStream(t, streamer)
	}
	ctx := &TransferContext{Engine: e, Transfer: t}
	var selSpan *telemetry.Span
	if e.tracing(t) {
		selSpan = telemetry.New(telemetry.StageSelect).Field("format", t.Format)
	}
	start := time.Now()
	err := (stageSelect{}).Run(ctx)
	selSpan.SetDuration(time.Since(start))
	if err != nil {
		return nil, err
	}
	selSpan.Fieldf("donors", "%d", len(ctx.DonorRank))
	res, winner, errs := tryDonorList(e.runResolved, t, ctx.DonorRank)
	if res == nil {
		return nil, fmt.Errorf("phage: no selected donor yields a validated transfer:\n  %s",
			strings.Join(errs, "\n  "))
	}
	if res.Trace != nil && selSpan != nil {
		// The donor rank and which donors fail are deterministic, so the
		// attempt count is a structural field. The Select span is
		// grafted ahead of the winning run's stages; failed donor
		// attempts' traces are discarded with their Results.
		for i, d := range ctx.DonorRank {
			if d.Name == winner {
				selSpan.Fieldf("attempts", "%d", i+1)
				break
			}
		}
		res.Trace.Children = append([]*telemetry.Span{selSpan}, res.Trace.Children...)
	}
	return res, nil
}

// runAutoStream is runAuto over a lazy donor stream: candidates are
// pulled — and therefore loaded and survival-probed — one at a time,
// each tried through the full pipeline, first validated result wins.
// Donors past the winning attempt are never touched, so selection cost
// scales with retries, not corpus size.
func (e *Engine) runAutoStream(t *Transfer, streamer DonorStreamer) (*Result, error) {
	var selSpan *telemetry.Span
	if e.tracing(t) {
		selSpan = telemetry.New(telemetry.StageSelect).Field("format", t.Format)
	}
	var selTime time.Duration
	start := time.Now()
	stream, err := streamer.StreamDonors(t.Format, t.Seed, t.Error)
	selTime += time.Since(start)
	if err != nil {
		selSpan.SetDuration(selTime)
		return nil, fmt.Errorf("phage: donor selection: %w", err)
	}
	var errs []string
	attempts := 0
	for {
		start = time.Now()
		cand, nerr := stream.Next()
		selTime += time.Since(start)
		if nerr != nil {
			selSpan.SetDuration(selTime)
			return nil, fmt.Errorf("phage: donor selection: %w", nerr)
		}
		if cand == nil {
			break
		}
		attempts++
		tr := *t
		tr.Donor = cand.Module
		tr.DonorName = cand.Name
		res, rerr := e.runResolved(&tr)
		if rerr != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", cand.Name, rerr))
			continue
		}
		if res.Trace != nil && selSpan != nil {
			// The ranked order, the pre-filter split and which donors
			// fail are all deterministic, so these are structural
			// fields, like the eager path's donors/attempts.
			stats := stream.Stats()
			selSpan.SetDuration(selTime)
			selSpan.Fieldf("donors", "%d", stats.Donors)
			selSpan.Fieldf("attempts", "%d", attempts)
			if stats.Prefiltered {
				selSpan.Field("prefilter", "on")
				selSpan.Fieldf("candidates", "%d", stats.Candidates)
				selSpan.Fieldf("skipped", "%d", stats.Skipped)
			} else {
				selSpan.Field("prefilter", "off")
			}
			if stats.Fallback {
				selSpan.Field("fallback", "exhaustive")
			}
			res.Trace.Children = append([]*telemetry.Span{selSpan}, res.Trace.Children...)
		}
		return res, nil
	}
	if attempts == 0 {
		return nil, fmt.Errorf("phage: donor selection: no candidate donor survives the error input for format %q", t.Format)
	}
	return nil, fmt.Errorf("phage: no selected donor yields a validated transfer:\n  %s",
		strings.Join(errs, "\n  "))
}
