// This file implements the Discover stage primitives: donor
// selection, candidate check discovery and check excision (§3.2),
// over the MVX/MiniC substrate.
package pipeline

import (
	"fmt"
	"sort"

	"codephage/internal/bitvec"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/taint"
	"codephage/internal/vm"
)

// Check is one candidate check excised from the donor: a width-1
// predicate over input fields that holds on the seed input and fails
// on the error-triggering input.
type Check struct {
	Site      taint.Site
	Seq       int          // first-occurrence order in the error run
	Cond      *bitvec.Expr // simplified check (Figure 5 rules applied)
	Raw       *bitvec.Expr // check as recorded, before simplification
	SeedTaken bool         // direction the seed input takes at the branch
}

// Discovery summarises the donor analysis (the Relevant Branches and
// Flipped Branches columns of Figure 8).
type Discovery struct {
	RelevantSites int // branch sites influenced by relevant bytes
	FlippedSites  int // sites whose direction differs between runs
	Checks        []Check
}

// runTainted executes a module under the taint tracker.
func runTainted(mod *ir.Module, input []byte, dis *hachoir.Dissection, relevant map[int]bool, noSimplify bool) (*taint.Tracker, *vm.Result) {
	tr := taint.NewTracker(mod, taint.Options{
		Labels: dis, Relevant: relevant, NoSimplify: noSimplify,
	})
	v := vm.New(mod, input)
	v.Tracer = tr
	return tr, v.Run()
}

// DiscoverChecks runs the donor on the seed and error-triggering
// inputs, compares branch directions, and excises a candidate check
// from every flipped branch (paper §3.2). The donor may be stripped —
// only executed branch sites and symbolic conditions are used.
func DiscoverChecks(donor *ir.Module, seed, errIn []byte, dis *hachoir.Dissection, relevant map[int]bool, noSimplify bool) (*Discovery, error) {
	seedTr, seedRes := runTainted(donor, seed, dis, relevant, noSimplify)
	if !seedRes.OK() {
		return nil, fmt.Errorf("phage: donor crashes on the seed input: %v", seedRes.Trap)
	}
	errTr, errRes := runTainted(donor, errIn, dis, relevant, noSimplify)
	if !errRes.OK() {
		return nil, fmt.Errorf("phage: donor crashes on the error input: %v", errRes.Trap)
	}

	type siteInfo struct {
		firstSeed bool // direction of the first execution
		firstErr  bool
		seenSeed  bool
		seenErr   bool
		errCond   *bitvec.Expr
		errRaw    *bitvec.Expr
		errSeq    int
	}
	sites := map[taint.Site]*siteInfo{}
	get := func(s taint.Site) *siteInfo {
		si, ok := sites[s]
		if !ok {
			si = &siteInfo{}
			sites[s] = si
		}
		return si
	}
	for _, b := range seedTr.Branches() {
		si := get(b.SiteOf())
		if !si.seenSeed {
			si.seenSeed, si.firstSeed = true, b.Taken
		}
	}
	for i := range errTr.Branches() {
		b := &errTr.Branches()[i]
		si := get(b.SiteOf())
		if !si.seenErr {
			si.seenErr, si.firstErr = true, b.Taken
			si.errCond, si.errRaw, si.errSeq = b.Cond, b.Raw, b.Seq
		}
	}

	d := &Discovery{RelevantSites: len(sites)}
	for site, si := range sites {
		// A flipped branch must execute in both runs with different
		// first directions (paper: "branches that take different
		// directions for the seed and error-triggering inputs").
		if !si.seenSeed || !si.seenErr || si.firstSeed == si.firstErr {
			continue
		}
		d.FlippedSites++
		// Excise: orient the condition so the seed passes.
		cond, raw := si.errCond, si.errRaw
		if !si.firstSeed {
			cond = bitvec.Simplify(bitvec.LNot(cond))
			raw = bitvec.LNot(raw)
		}
		d.Checks = append(d.Checks, Check{
			Site: site, Seq: si.errSeq, Cond: cond, Raw: raw, SeedTaken: si.firstSeed,
		})
	}
	sort.Slice(d.Checks, func(i, j int) bool { return d.Checks[i].Seq < d.Checks[j].Seq })
	return d, nil
}

// SelectDonors filters a donor database down to the applications that
// process both the seed and the error-triggering input successfully
// (paper §3.1).
func SelectDonors(db []*ir.Module, seed, errIn []byte) []*ir.Module {
	var out []*ir.Module
	for _, donor := range db {
		if vm.New(donor, seed).Run().OK() && vm.New(donor, errIn).Run().OK() {
			out = append(out, donor)
		}
	}
	return out
}
