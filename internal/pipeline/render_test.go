package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/vm"
)

// evalRendered compiles a MiniC program that computes the rendered
// expression over globals holding the ref values and returns the
// 64-bit result.
func evalRendered(t *testing.T, text string, refs map[string]uint64, refW map[string]uint8) uint64 {
	t.Helper()
	var sb strings.Builder
	for name, w := range refW {
		fmt.Fprintf(&sb, "u%d %s = %d;\n", ctypeBits(w), name, refs[name]&bitvec.Mask(w))
	}
	fmt.Fprintf(&sb, "void main() { out((u64)%s); }\n", text)
	mod, err := compile.CompileSource("render", sb.String())
	if err != nil {
		t.Fatalf("rendered text does not compile: %v\nsource:\n%s", err, sb.String())
	}
	r := vm.New(mod, nil).Run()
	if !r.OK() {
		t.Fatalf("rendered program trapped: %v\nsource:\n%s", r.Trap, sb.String())
	}
	if len(r.Output) != 1 {
		t.Fatalf("no output")
	}
	return r.Output[0]
}

// randRefExpr builds random translated expressions over refs r0, r1.
func randRefExpr(rng *rand.Rand, depth int, refs []*bitvec.Expr) *bitvec.Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return refs[rng.Intn(len(refs))]
		}
		ws := []uint8{8, 16, 32, 64}
		return bitvec.Const(ws[rng.Intn(len(ws))], rng.Uint64())
	}
	x := randRefExpr(rng, depth-1, refs)
	coerce := func(e *bitvec.Expr, w uint8) *bitvec.Expr {
		switch {
		case e.W < w:
			return bitvec.ZExt(w, e)
		case e.W > w:
			return bitvec.Trunc(w, e)
		}
		return e
	}
	y := coerce(randRefExpr(rng, depth-1, refs), x.W)
	switch rng.Intn(12) {
	case 0:
		return bitvec.Add(x, y)
	case 1:
		return bitvec.Sub(x, y)
	case 2:
		return bitvec.Mul(x, y)
	case 3:
		return bitvec.And(x, y)
	case 4:
		return bitvec.Or(x, y)
	case 5:
		return bitvec.Xor(x, y)
	case 6:
		return bitvec.Not(x)
	case 7:
		if x.W < 64 {
			return bitvec.ZExt(64, x)
		}
		return bitvec.Trunc(32, x)
	case 8:
		return bitvec.ZExt(32, bitvec.Ule(x, y))
	case 9:
		return bitvec.ZExt(32, bitvec.Eq(x, y))
	case 10:
		return bitvec.Shl(x, bitvec.Const(x.W, uint64(rng.Intn(int(x.W)))))
	default:
		return bitvec.LShr(x, bitvec.Const(x.W, uint64(rng.Intn(int(x.W)))))
	}
}

// TestRenderedExpressionsMatchBitvecSemantics is the renderer's
// soundness property: compiling and executing the rendered MiniC text
// must compute exactly the bitvector value.
func TestRenderedExpressionsMatchBitvecSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	refs := []*bitvec.Expr{
		bitvec.Ref("r0", 32),
		bitvec.Ref("r1", 16),
		bitvec.Ref("r2", 64),
	}
	refW := map[string]uint8{"r0": 32, "r1": 16, "r2": 64}
	for iter := 0; iter < 200; iter++ {
		e := randRefExpr(rng, 4, refs)
		text, err := RenderExpr(e)
		if err != nil {
			continue // unrenderable constructs are allowed to bail
		}
		vals := map[string]uint64{
			"r0": rng.Uint64(), "r1": rng.Uint64(), "r2": rng.Uint64(),
		}
		env := bitvec.MapEnv{Refs: map[string]uint64{}}
		for k, v := range vals {
			env.Refs[k] = v & bitvec.Mask(refW[k])
		}
		want, err := bitvec.Eval(e, env)
		if err != nil {
			t.Fatal(err)
		}
		got := evalRendered(t, text, vals, refW)
		if got != want {
			t.Fatalf("iter %d: rendered value %d != bitvec value %d\nexpr: %s\ntext: %s",
				iter, got, want, e, text)
		}
	}
}

func TestRenderSpecificForms(t *testing.T) {
	w := bitvec.Ref("w", 32)
	h := bitvec.Ref("h", 32)
	// The paper's CWebP patch shape.
	check := bitvec.Ule(
		bitvec.Mul(bitvec.ZExt(64, w), bitvec.ZExt(64, h)),
		bitvec.Const(64, 536870911))
	text, err := PatchText(check, ExitOnFail)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"if (!", "(u64)", "536870911", "exit(-1);"} {
		if !strings.Contains(text, want) {
			t.Errorf("patch %q missing %q", text, want)
		}
	}
	text, err = PatchText(check, ReturnZero)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "return 0;") {
		t.Errorf("return-zero patch wrong: %s", text)
	}
}

func TestRenderRejectsUntranslatedField(t *testing.T) {
	e := bitvec.Field("/img/width", 16, 0)
	if _, err := RenderExpr(e); err == nil {
		t.Fatal("raw input field rendered")
	}
}

func TestRenderSignedOps(t *testing.T) {
	a := bitvec.Ref("a", 32)
	b := bitvec.Ref("b", 32)
	cases := []*bitvec.Expr{
		bitvec.ZExt(32, bitvec.Slt(a, b)),
		bitvec.ZExt(32, bitvec.Sle(a, b)),
		bitvec.SDiv(a, b),
		bitvec.AShr(a, bitvec.Const(32, 3)),
		bitvec.SExt(64, a),
	}
	vals := map[string]uint64{"a": 0xFFFFFFF0, "b": 3} // a is negative as i32
	refW := map[string]uint8{"a": 32, "b": 32}
	env := bitvec.MapEnv{Refs: map[string]uint64{"a": vals["a"], "b": vals["b"]}}
	for _, e := range cases {
		text, err := RenderExpr(e)
		if err != nil {
			t.Fatalf("render %s: %v", e, err)
		}
		want, _ := bitvec.Eval(e, env)
		got := evalRendered(t, text, vals, refW)
		if got != want {
			t.Errorf("%s: rendered %d, want %d (text %s)", e, got, want, text)
		}
	}
}

func TestRenderOddWidths(t *testing.T) {
	// Width-24 arithmetic from concatenated bytes must mask correctly.
	a := bitvec.Ref("a", 8)
	b := bitvec.Ref("b", 16)
	e := bitvec.Add(bitvec.Concat(a, b), bitvec.Const(24, 0xFFFFFF))
	text, err := RenderExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]uint64{"a": 0xAB, "b": 0xCDEF}
	env := bitvec.MapEnv{Refs: map[string]uint64{"a": 0xAB, "b": 0xCDEF}}
	want, _ := bitvec.Eval(e, env)
	got := evalRendered(t, text, vals, map[string]uint8{"a": 8, "b": 16})
	if got != want {
		t.Errorf("width-24 add = %d, want %d (text %s)", got, want, text)
	}
}
