package pipeline

import (
	"time"

	"codephage/internal/compile"
	"codephage/internal/patch"
	"codephage/internal/smt"
	"codephage/internal/telemetry"
)

// Snapshot is a self-contained copy of a Result that is safe to retain
// and share across concurrent readers: every byte slice is deep-copied,
// the overflow verdict is copied out of the engine's proof cache, and
// the module pointer and internal expression references are dropped.
// Long-lived services cache snapshots — never raw Results, whose
// FinalModule aliases shared compile-cache entries.
type Snapshot struct {
	// Donor is the donor that supplied the checks (the Select stage's
	// resolution for auto-donor transfers).
	Donor       string
	Rounds      []PatchRound
	FinalSource string
	GenTime     time.Duration
	// OverflowFreeProven is a private copy of the SMT verdict
	// (nil: unknown).
	OverflowFreeProven *bool
	SolverStats        smt.Stats
	// Patch is a private deep copy of the verifiable patch artifact
	// (nil when no check was transferred).
	Patch *patch.Artifact
	// Trace is a private deep copy of the run's span tree (nil when
	// tracing was off). It is observability data beside the report
	// surface: serving layers expose it on its own endpoint, never
	// inside the canonical report.
	Trace *telemetry.Span
}

// Snapshot returns an immutable deep copy of the result for sharing.
func (r *Result) Snapshot() *Snapshot {
	s := &Snapshot{
		Donor:       r.Donor,
		FinalSource: r.FinalSource,
		GenTime:     r.GenTime,
		SolverStats: r.SolverStats,
	}
	if r.OverflowFreeProven != nil {
		v := *r.OverflowFreeProven
		s.OverflowFreeProven = &v
	}
	s.Patch = r.Patch.Clone()
	s.Trace = r.Trace.Clone()
	s.Rounds = make([]PatchRound, len(r.Rounds))
	for i, pr := range r.Rounds {
		pr.ErrorInput = append([]byte(nil), pr.ErrorInput...)
		// The excised expression feeds the engine's overflow argument
		// and is not part of the report surface; dropping it keeps the
		// snapshot free of references into engine-owned structures.
		pr.excised = nil
		s.Rounds[i] = pr
	}
	return s
}

// UsedChecks returns the number of transferred checks.
func (s *Snapshot) UsedChecks() int { return len(s.Rounds) }

// EngineStats is a point-in-time view of one engine's shared state,
// exported for serving-layer metrics endpoints.
type EngineStats struct {
	// Solver aggregates solver activity across every transfer the
	// engine has run.
	Solver smt.Stats
	// Compile is the engine's compile-cache counters (shared caches
	// report process-wide activity, not just this engine's).
	Compile compile.CacheStats
	// Baselines is the number of cached regression baselines.
	Baselines int
	// Proofs is the number of memoised overflow-freedom verdicts.
	Proofs int
}

// StatsSnapshot returns the engine's current shared-state counters.
func (e *Engine) StatsSnapshot() EngineStats {
	st := EngineStats{Compile: e.compiler().Stats()}
	e.mu.Lock()
	st.Solver = e.stats
	st.Baselines = len(e.baselines)
	st.Proofs = len(e.proofs)
	e.mu.Unlock()
	return st
}
